/**
 * @file
 * Deterministic host-I/O fault injection and durable file wrappers.
 *
 * PR 3's FaultInjector refutes the *simulated* machine's assumptions;
 * this module does the same for the host filesystem the campaign
 * layer trusts with its spool tokens, heartbeats, checkpoints,
 * `.result` files and stats dumps.  Every campaign-visible file
 * operation routes through the `io::` wrappers below, and a
 * schedule-driven injector can make any of those operations fail the
 * way real disks and shared filesystems fail: ENOSPC mid-write, EIO
 * on read, silent short writes and reads, failed fsync, failed or
 * *lying* rename (performed but reported failed, the NFS ambiguity),
 * torn tmp files, and stale stat mtimes.
 *
 * Schedule contract: a fault spec is a comma-separated list of
 * `kind@N[~substr]` entries -- the Nth wrapper operation whose class
 * matches the kind and whose path contains `substr` (all operations
 * when omitted) delivers the fault, once.  `rand=SEED` expands to a
 * small seed-derived schedule for chaos drills.  Unknown or malformed
 * fields are fatal: a mistyped chaos campaign must not silently run
 * fault-free.  Counting is per process and deterministic for a
 * deterministic operation stream.
 *
 * When no injector is installed the wrappers take no locks and make
 * no draws -- the golden path costs one pointer test per operation.
 *
 * Durability contract of the wrappers themselves (always on, faults
 * or not): `atomicWrite` writes a pid-unique tmp file, loops over
 * short writes, fsyncs the file, renames it into place and fsyncs
 * the parent directory, so a crash at any instant leaves either the
 * old bytes or the new bytes under the real name -- durably.
 */

#ifndef UPC780_SUPPORT_IOFAULT_HH
#define UPC780_SUPPORT_IOFAULT_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vax::io
{

/** One injectable host-I/O failure mode. */
enum class FaultKind : uint8_t {
    None = 0,
    Enospc,     ///< write(2) fails mid-file with ENOSPC
    Eio,        ///< read(2) fails with EIO
    ShortWrite, ///< one write(2) silently accepts fewer bytes
    ShortRead,  ///< the read loop is cut off before the file's end
    FsyncFail,  ///< fsync(2) reports EIO (durability unknown)
    RenameFail, ///< rename(2) fails with EIO, nothing moved
    RenameLie,  ///< rename(2) happens but is *reported* failed
    TornTmp,    ///< write dies mid-file; partial tmp bytes remain
    StaleMtime, ///< stat-derived file age reads absurdly old
};

/** Printable spec-grammar name ("enospc", "eio", ...). */
const char *faultKindName(FaultKind k);

/** Operation classes the wrappers report to the injector. */
enum class OpClass : uint8_t { Write, Read, Fsync, Rename, Stat };

/** The operation class a fault kind attaches to. */
OpClass faultOpClass(FaultKind k);

/** One scheduled fault: deliver @ref kind at the Nth matching op. */
struct FaultRule
{
    FaultKind kind = FaultKind::None;
    uint64_t nth = 1;  ///< 1-based index into the matching op stream
    std::string match; ///< path substring filter ("" matches all)
};

/**
 * A parsed fault schedule.  Specs come from `--io-faults` or the
 * UPC780_IO_FAULTS environment variable; parse() is fatal on typos,
 * exactly like FaultConfig::parse.
 */
struct FaultPlan
{
    std::vector<FaultRule> rules;

    bool enabled() const { return !rules.empty(); }

    /**
     * Parse "kind@N[~substr],..." (kinds: enospc, eio, shortwrite,
     * shortread, fsync, rename, renamelie, torn, stale), or
     * "rand=SEED" which expands to randomized(SEED).  Fatal on any
     * unknown or malformed field.
     */
    static FaultPlan parse(const std::string &spec);

    /** The UPC780_IO_FAULTS environment variable, else empty plan. */
    static FaultPlan fromEnv();

    /** Canonical spec text (parse(format()) round-trips). */
    std::string format() const;

    /**
     * Seed-derived schedule for chaos drills: 1..3 rules with kinds,
     * indices and path filters drawn from a deterministic stream, so
     * `--chaos-drill SEED` reproduces the identical fault campaign.
     */
    static FaultPlan randomized(uint64_t seed);
};

/** Delivery counters (per kind) plus total operations observed. */
struct FaultStats
{
    uint64_t opsSeen = 0;      ///< wrapper ops consulted
    uint64_t delivered = 0;    ///< faults injected, all kinds
    uint64_t perKind[10] = {}; ///< indexed by FaultKind
};

/**
 * The injector: counts wrapper operations against the plan's rules
 * and says which fault (if any) the current operation must suffer.
 * Thread-safe -- SimPool workers write checkpoints concurrently.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /** Consult at an op site; FaultKind::None means run clean.  Each
     *  rule fires exactly once. */
    FaultKind check(OpClass op, const std::string &path);

    FaultStats stats() const;
    const FaultPlan &plan() const { return plan_; }

  private:
    struct RuleState
    {
        FaultRule rule;
        uint64_t seen = 0;
        bool fired = false;
    };

    mutable std::mutex mu_;
    FaultPlan plan_;
    std::vector<RuleState> states_;
    FaultStats stats_;
};

/** @{ Global injector (process-wide; nullptr = fault-free).  The
 *  campaign tool installs one from --io-faults/UPC780_IO_FAULTS;
 *  tests use ScopedInjector. */
void installFaultInjector(FaultInjector *inj);
FaultInjector *faultInjector();
/** @} */

/** RAII install/uninstall for tests. */
struct ScopedInjector
{
    explicit ScopedInjector(FaultInjector *inj)
    {
        installFaultInjector(inj);
    }
    ~ScopedInjector() { installFaultInjector(nullptr); }
    ScopedInjector(const ScopedInjector &) = delete;
    ScopedInjector &operator=(const ScopedInjector &) = delete;
};

/**
 * Outcome of a wrapper operation.  err is 0 on success, else the
 * errno of the failing stage; stage names the step that failed
 * ("open", "write", "fsync", "close", "rename", "dirsync", "read",
 * "short").  Converts to bool so existing `if (!writeFile(...))`
 * call sites keep working.
 */
struct Status
{
    int err = 0;
    const char *stage = "";

    bool ok() const { return err == 0; }
    operator bool() const { return err == 0; }
};

/** The last wrapper Status observed by this thread (so a bool-only
 *  caller can still distinguish ENOSPC from everything else, the way
 *  the campaign's degraded checkpoint mode must). */
Status lastStatus();

/**
 * Thin RAII fd wrapper routing reads/writes/fsync through the
 * injector.  Building block of atomicWrite/readFile; exposed for
 * tests and future streaming writers.
 */
class File
{
  public:
    File() = default;
    ~File() { closeQuiet(); }
    File(const File &) = delete;
    File &operator=(const File &) = delete;

    /** @{ Open for writing (O_TRUNC|O_CREAT) or reading. */
    Status openWrite(const std::string &path);
    Status openRead(const std::string &path);
    /** @} */

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /** Write all @p len bytes, looping over short writes (a genuine
     *  short write from the kernel is retried, not trusted). */
    Status writeAll(const void *data, size_t len);
    /** Read up to @p len bytes; sets @p got to the bytes read. */
    Status readSome(void *out, size_t len, size_t *got);
    /** File size via fstat. */
    Status size(uint64_t *out) const;
    Status sync();
    Status close();
    /** Close ignoring errors (destructor path). */
    void closeQuiet();

  private:
    int fd_ = -1;
    std::string path_;
};

/** @{ Durable atomic whole-file writes: pid-unique tmp, short-write
 *  loop, fsync file, rename into place, fsync parent directory.
 *  Failures warn and clean up the tmp file (best effort); the real
 *  name always holds either the old or the new bytes. */
Status atomicWrite(const std::string &path, const void *data,
                   size_t len);
Status atomicWriteText(const std::string &path,
                       const std::string &text);
/** @} */

/** @{ Whole-file reads, validated against the file's stat size: a
 *  short read (torn file, lying kernel) is a failure, never a
 *  silently truncated buffer.  maxLen guards token-sized files
 *  against absurd allocations (0 = no cap). */
Status readFile(const std::string &path, std::vector<uint8_t> *out,
                uint64_t maxLen = 0);
Status readFileText(const std::string &path, std::string *out,
                    uint64_t maxLen = 0);
/** @} */

/** rename(2) through the injector (the claim primitive's engine). */
Status renameFile(const std::string &from, const std::string &to);

/** Age of @p path in wall seconds via stat mtime (negative when
 *  missing); the StaleMtime fault makes it read absurdly old. */
double fileAgeSeconds(const std::string &path);

/** fsync the directory containing @p path (durability of a rename). */
Status syncParentDir(const std::string &path);

} // namespace vax::io

#endif // UPC780_SUPPORT_IOFAULT_HH
