#include "support/interrupt.hh"

#include <atomic>
#include <csignal>
#include <cstdio>

namespace vax::interrupt
{

namespace
{

std::atomic<bool> g_requested{false};

extern "C" void
handleSignal(int)
{
    // Async-signal-safe: one relaxed store, nothing else.  The second
    // signal falls through to the default disposition (see install).
    g_requested.store(true, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // anonymous namespace

void
install()
{
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
}

bool
requested()
{
    return g_requested.load(std::memory_order_relaxed);
}

void
request()
{
    g_requested.store(true, std::memory_order_relaxed);
}

void
reset()
{
    g_requested.store(false, std::memory_order_relaxed);
}

int
reportInterrupted(const char *what, unsigned unfinished,
                  bool resumable)
{
    std::printf("*** INTERRUPTED: %s (%u job(s) unfinished); %s ***\n",
                what, unfinished,
                resumable ? "rerun with --resume to continue"
                          : "add --checkpoint-dir to make runs "
                            "resumable");
    std::fflush(stdout);
    return exitCode;
}

} // namespace vax::interrupt
