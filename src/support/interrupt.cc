#include "support/interrupt.hh"

#include <atomic>
#include <csignal>

namespace vax::interrupt
{

namespace
{

std::atomic<bool> g_requested{false};

extern "C" void
handleSignal(int)
{
    // Async-signal-safe: one relaxed store, nothing else.  The second
    // signal falls through to the default disposition (see install).
    g_requested.store(true, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // anonymous namespace

void
install()
{
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
}

bool
requested()
{
    return g_requested.load(std::memory_order_relaxed);
}

void
request()
{
    g_requested.store(true, std::memory_order_relaxed);
}

void
reset()
{
    g_requested.store(false, std::memory_order_relaxed);
}

} // namespace vax::interrupt
