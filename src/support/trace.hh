/**
 * @file
 * Cycle-stamped trace channels.
 *
 * TRACE(Cache, "read miss pa=%06x", pa) emits a line
 *
 *     <cycle>:cache: read miss pa=001040
 *
 * to the current thread's trace sink, but only when the "cache"
 * channel is enabled -- the macro compiles to a single load-and-test
 * when tracing is off, so instrumented hot paths cost nothing in
 * normal runs.
 *
 * Channels are enabled at run time from the UPC780_TRACE environment
 * variable (comma list: UPC780_TRACE=ucode,cache) or a parsed --trace
 * flag (parseTraceFlag), or programmatically (enable/enableList).
 *
 * Cycle stamps come from a thread-local counter pointer that Cpu780
 * installs (setCycleCounter); code tracing outside a simulation
 * stamps cycle 0.  Sinks are thread-local too: the parallel driver
 * gives each job a buffering sink and flushes it in one write when
 * the job finishes, so pooled jobs' trace lines never interleave.
 */

#ifndef UPC780_SUPPORT_TRACE_HH
#define UPC780_SUPPORT_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>

namespace vax::trace
{

/** The trace channels (one bit each in the enable mask). */
enum class Channel : unsigned {
    UCode,   ///< microtraps, interrupt dispatch (EBOX sequencing)
    IDecode, ///< one line per decoded instruction
    Cache,   ///< misses, fills, invalidations
    Tb,      ///< TB misses, fills, invalidations
    Mem,     ///< MemSystem protocol events (stalls, queued writes)
    Sbi,     ///< bus transactions
    Os,      ///< VMS-lite host-visible events (mailbox, devices)
    Pool,    ///< driver job lifecycle
    Fault,   ///< injected faults and machine-check delivery
    NumChannels,
};

/** Lower-case channel name as used in UPC780_TRACE / --trace. */
const char *channelName(Channel c);

/** Enable mask; exposed only so enabled() can inline to load+test. */
extern uint32_t g_mask;

inline bool
enabled(Channel c)
{
    return g_mask & (1u << static_cast<unsigned>(c));
}

/** True if any channel is enabled. */
inline bool
anyEnabled()
{
    return g_mask != 0;
}

void enable(Channel c);
void disable(Channel c);
void disableAll();

/**
 * Enable a comma-separated channel list ("ucode,cache"; "all" for
 * everything).  Unknown names warn and are skipped.
 * @return True if every name was recognized.
 */
bool enableList(const std::string &list);

/**
 * Strip a "--trace LIST" / "--trace=LIST" flag from argv (updating
 * *argc, same contract as parseJobsFlag) and enable those channels.
 */
void parseTraceFlag(int *argc, char **argv);

/** @{ Cycle stamping: Cpu780 installs its cycle counter here. */
void setCycleCounter(const uint64_t *counter);
/** Uninstall counter if it is the thread's current one (machine
 *  teardown: never leave a dangling stamp source). */
void clearCycleCounter(const uint64_t *counter);
uint64_t currentCycle();
/** @} */

/** Where a thread's trace lines go.  write() receives one complete
 *  line (terminated with '\n') per call. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void write(const char *line, size_t len) = 0;
};

/** Collects lines in memory; the driver flushes a whole job's trace
 *  in one stdio write so pooled jobs do not interleave. */
class BufferSink : public TraceSink
{
  public:
    void
    write(const char *line, size_t len) override
    {
        buf_.append(line, len);
    }

    const std::string &text() const { return buf_; }
    void clear() { buf_.clear(); }

    /** Write the whole buffer in one fwrite and clear it. */
    void flushTo(std::FILE *f);

  private:
    std::string buf_;
};

/** Install a sink for the calling thread; nullptr restores the
 *  default (one unbuffered fwrite per line to stderr).
 *  @return The previously installed sink. */
TraceSink *setThreadSink(TraceSink *sink);

/** RAII sink redirection (used per job by the driver and in tests). */
class ScopedSink
{
  public:
    explicit ScopedSink(TraceSink *sink) : prev_(setThreadSink(sink)) {}
    ~ScopedSink() { setThreadSink(prev_); }
    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    TraceSink *prev_;
};

/** Format and emit one line (use the TRACE macro, not this). */
void emit(Channel c, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace vax::trace

/**
 * The tracing entry point: TRACE(Cache, "fill pa=%06x", pa).
 * Channel is a bare Channel enumerator name; evaluates the arguments
 * only when the channel is enabled.
 */
#define TRACE(chan, ...)                                                \
    do {                                                                \
        if (::vax::trace::enabled(::vax::trace::Channel::chan))         \
            ::vax::trace::emit(::vax::trace::Channel::chan,             \
                               __VA_ARGS__);                            \
    } while (0)

#endif // UPC780_SUPPORT_TRACE_HH
