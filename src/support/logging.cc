#include "support/logging.hh"

#include <cstdarg>

#include "support/sim_error.hh"

namespace vax
{

namespace
{

const char *
prefixFor(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list args)
{
    // Build the whole message and write it with a single fwrite so
    // warn()/inform() lines from concurrent SimPool workers cannot
    // interleave mid-line (stdio locks per call, not per line).
    char msg[1024];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    char line[1100];
    int n = std::snprintf(line, sizeof(line), "%s: %s\n",
                          prefixFor(level), msg);
    if (n > 0) {
        if (static_cast<size_t>(n) >= sizeof(line))
            n = sizeof(line) - 1;
        std::fwrite(line, 1, static_cast<size_t>(n), stderr);
    }
    // Inside a guarded pool worker a fatal/panic becomes a structured,
    // catchable SimError so one bad job cannot take down its siblings;
    // the serial (unguarded) path still dies fast and loud.
    if ((level == LogLevel::Fatal || level == LogLevel::Panic) &&
        guard::active()) {
        throw SimError::fromGuard(level == LogLevel::Panic
                                      ? SimErrorCause::Panic
                                      : SimErrorCause::Fatal,
                                  msg);
    }
    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // anonymous namespace

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Inform, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Fatal, fmt, args);
    va_end(args);
    std::exit(1); // not reached; satisfies [[noreturn]]
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Panic, fmt, args);
    va_end(args);
    std::abort(); // not reached; satisfies [[noreturn]]
}

} // namespace vax
