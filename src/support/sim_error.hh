/**
 * @file
 * Structured simulation errors and guarded execution.
 *
 * The gem5-style panic()/fatal() calls abort the whole process, which
 * is right for a single serial run but wrong inside the parallel
 * driver: one bad job would take down every sibling and lose their
 * results.  A worker therefore opens a guard::Scope around its job;
 * while the scope is active, panic()/fatal() throw a SimError carrying
 * the job name, seed, cycle and micro-PC instead of calling abort(),
 * and the pool catches it, retries once, and completes the run with
 * the surviving jobs.  Outside a scope nothing changes: the golden
 * serial path still dies fast and loud.
 *
 * The same header provides the forward-progress watchdog: a periodic
 * poke with (instructions, cycle, micro-PC) that throws a SimError
 * naming the looping micro-PC when no instruction retires within a
 * configurable cycle window.
 */

#ifndef UPC780_SUPPORT_SIM_ERROR_HH
#define UPC780_SUPPORT_SIM_ERROR_HH

#include <cstdint>
#include <exception>
#include <string>

namespace vax
{

/** Why a guarded simulation was torn down. */
enum class SimErrorCause : uint8_t {
    Panic,    ///< panic() fired inside a guarded worker
    Fatal,    ///< fatal() fired inside a guarded worker
    Watchdog, ///< no instruction retired within the watchdog window
    Timeout,  ///< per-job wall-clock budget exceeded
    Drill,    ///< scheduled recovery drill (RunLimits::tripCycle)
};

/** Printable cause name ("panic", "watchdog", ...). */
const char *simErrorCauseName(SimErrorCause c);

/**
 * A structured, catchable simulation failure.  what() is the fully
 * formatted one-line description; the individual fields are kept for
 * telemetry and tests.
 */
class SimError : public std::exception
{
  public:
    SimError(SimErrorCause cause, std::string message, std::string job,
             uint64_t seed, uint64_t cycle, uint16_t micro_pc);

    /** Build from the calling thread's guard context: job and seed
     *  from the active Scope, cycle from the trace stamp source,
     *  micro-PC from the registered EBOX pointer. */
    static SimError fromGuard(SimErrorCause cause, std::string message);

    const char *what() const noexcept override { return what_.c_str(); }

    SimErrorCause cause() const { return cause_; }
    const std::string &message() const { return message_; }
    const std::string &job() const { return job_; }
    uint64_t seed() const { return seed_; }
    uint64_t cycle() const { return cycle_; }
    uint16_t microPc() const { return microPc_; }

  private:
    SimErrorCause cause_;
    std::string message_;
    std::string job_;
    uint64_t seed_;
    uint64_t cycle_;
    uint16_t microPc_;
    std::string what_;
};

namespace guard
{

/**
 * RAII guard context for one job on the calling thread.  Nests
 * safely (the previous context is restored on destruction), though
 * the pool only ever opens one per job.
 */
class Scope
{
  public:
    Scope(const std::string &job, uint64_t seed);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::string prevJob_;
    uint64_t prevSeed_;
    bool prevActive_;
};

/** True while the calling thread is inside a guard::Scope. */
bool active();

/** Job name of the active scope ("" outside one). */
std::string jobName();

/** Machine seed of the active scope (0 outside one). */
uint64_t seed();

/** @{ Micro-PC stamping, mirroring trace::setCycleCounter: Cpu780
 *  installs a pointer to its EBOX's micro-PC so errors raised
 *  anywhere in the machine can name the microword being executed. */
void setMicroPc(const uint16_t *upc);
void clearMicroPc(const uint16_t *upc);
uint16_t currentMicroPc();
/** @} */

} // namespace guard

/**
 * Forward-progress watchdog: poke() it periodically with the retired
 * instruction count; if the count has not moved within the window, it
 * throws a SimError carrying the (looping) micro-PC of the last poke.
 * A zero window disables the check entirely.
 */
class ForwardProgressWatchdog
{
  public:
    explicit ForwardProgressWatchdog(uint64_t window_cycles)
        : window_(window_cycles) {}

    void poke(uint64_t instructions, uint64_t cycle, uint16_t upc);

    /** @{ Progress-window state, exposed so a checkpoint can carry
     *  the watchdog across a restore without this header having to
     *  know about the snapshot layer. */
    uint64_t lastInstructions() const { return lastInstructions_; }
    uint64_t lastProgressCycle() const { return lastProgressCycle_; }
    void
    restoreProgress(uint64_t instructions, uint64_t cycle)
    {
        lastInstructions_ = instructions;
        lastProgressCycle_ = cycle;
    }
    /** @} */

  private:
    uint64_t window_;
    uint64_t lastInstructions_ = ~uint64_t{0};
    uint64_t lastProgressCycle_ = 0;
};

} // namespace vax

#endif // UPC780_SUPPORT_SIM_ERROR_HH
