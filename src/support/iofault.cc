#include "support/iofault.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/random.hh"

namespace vax::io
{

namespace
{

/** Injected-stale files read this many seconds older than they are. */
constexpr double staleMtimePenalty = 1e6;

std::atomic<FaultInjector *> g_injector{nullptr};

thread_local Status t_lastStatus;

Status
record(Status st)
{
    t_lastStatus = st;
    return st;
}

Status
okStatus()
{
    return record(Status{});
}

Status
failStatus(int err, const char *stage)
{
    return record(Status{err ? err : EIO, stage});
}

/** One injector consult; None when no injector is installed. */
FaultKind
consult(OpClass op, const std::string &path)
{
    FaultInjector *inj = g_injector.load(std::memory_order_acquire);
    return inj ? inj->check(op, path) : FaultKind::None;
}

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr KindName kindNames[] = {
    {FaultKind::Enospc, "enospc"},
    {FaultKind::Eio, "eio"},
    {FaultKind::ShortWrite, "shortwrite"},
    {FaultKind::ShortRead, "shortread"},
    {FaultKind::FsyncFail, "fsync"},
    {FaultKind::RenameFail, "rename"},
    {FaultKind::RenameLie, "renamelie"},
    {FaultKind::TornTmp, "torn"},
    {FaultKind::StaleMtime, "stale"},
};

uint64_t
parseNth(const std::string &entry, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno || end == text.c_str() || *end || !v)
        fatal("io-faults: '%s': '%s' is not a positive operation "
              "index", entry.c_str(), text.c_str());
    return v;
}

std::vector<std::string>
splitList(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t end = s.find(delim, pos);
        if (end == std::string::npos)
            end = s.size();
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

} // anonymous namespace

const char *
faultKindName(FaultKind k)
{
    for (const KindName &kn : kindNames)
        if (kn.kind == k)
            return kn.name;
    return "none";
}

OpClass
faultOpClass(FaultKind k)
{
    switch (k) {
      case FaultKind::Enospc:
      case FaultKind::ShortWrite:
      case FaultKind::TornTmp:
        return OpClass::Write;
      case FaultKind::Eio:
      case FaultKind::ShortRead:
        return OpClass::Read;
      case FaultKind::FsyncFail:
        return OpClass::Fsync;
      case FaultKind::RenameFail:
      case FaultKind::RenameLie:
        return OpClass::Rename;
      case FaultKind::StaleMtime:
        return OpClass::Stat;
      case FaultKind::None:
        break;
    }
    return OpClass::Write;
}

// =============== FaultPlan ===============

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &entry : splitList(spec, ',')) {
        if (entry.compare(0, 5, "rand=") == 0) {
            FaultPlan sub = randomized(
                parseNth(entry, entry.substr(5)));
            plan.rules.insert(plan.rules.end(), sub.rules.begin(),
                              sub.rules.end());
            continue;
        }
        size_t at = entry.find('@');
        if (at == std::string::npos)
            fatal("io-faults: malformed entry '%s' (want "
                  "kind@N[~substr] or rand=SEED)", entry.c_str());
        std::string kind = entry.substr(0, at);
        std::string rest = entry.substr(at + 1);
        std::string match;
        size_t tilde = rest.find('~');
        if (tilde != std::string::npos) {
            match = rest.substr(tilde + 1);
            rest = rest.substr(0, tilde);
            if (match.empty())
                fatal("io-faults: '%s': empty ~substr filter",
                      entry.c_str());
        }
        FaultRule rule;
        rule.nth = parseNth(entry, rest);
        rule.match = match;
        for (const KindName &kn : kindNames)
            if (kind == kn.name)
                rule.kind = kn.kind;
        if (rule.kind == FaultKind::None)
            fatal("io-faults: unknown kind '%s' (have: enospc, eio, "
                  "shortwrite, shortread, fsync, rename, renamelie, "
                  "torn, stale)", kind.c_str());
        plan.rules.push_back(rule);
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("UPC780_IO_FAULTS");
    if (!env || !*env)
        return FaultPlan();
    return parse(env);
}

std::string
FaultPlan::format() const
{
    std::string out;
    for (const FaultRule &r : rules) {
        if (!out.empty())
            out += ',';
        out += faultKindName(r.kind);
        out += '@';
        out += std::to_string(r.nth);
        if (!r.match.empty())
            out += '~' + r.match;
    }
    return out;
}

FaultPlan
FaultPlan::randomized(uint64_t seed)
{
    // Deterministic per seed: the chaos drill hands each shard spawn
    // its own seed, and a failing schedule can be replayed exactly.
    Rng rng(seed ^ 0x10FA17ULL);
    static const FaultKind kinds[] = {
        FaultKind::Enospc,     FaultKind::Eio,
        FaultKind::ShortWrite, FaultKind::ShortRead,
        FaultKind::FsyncFail,  FaultKind::RenameFail,
        FaultKind::RenameLie,  FaultKind::TornTmp,
        FaultKind::StaleMtime,
    };
    // Bias the filters toward the campaign's hot files so schedules
    // actually land; "" keeps whole-stream faults in the mix.
    static const char *matches[] = {"", "", ".ckpt", ".result", ".hb",
                                    "job0"};
    FaultPlan plan;
    unsigned n = 1 + rng.below(3);
    for (unsigned i = 0; i < n; ++i) {
        FaultRule r;
        r.kind = kinds[rng.below(sizeof(kinds) / sizeof(kinds[0]))];
        r.nth = 1 + rng.below(10);
        r.match =
            matches[rng.below(sizeof(matches) / sizeof(matches[0]))];
        plan.rules.push_back(r);
    }
    return plan;
}

// =============== FaultInjector ===============

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan))
{
    for (const FaultRule &r : plan_.rules)
        states_.push_back(RuleState{r, 0, false});
}

FaultKind
FaultInjector::check(OpClass op, const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.opsSeen;
    FaultKind fire = FaultKind::None;
    for (RuleState &rs : states_) {
        if (rs.fired || faultOpClass(rs.rule.kind) != op)
            continue;
        if (!rs.rule.match.empty() &&
            path.find(rs.rule.match) == std::string::npos)
            continue;
        ++rs.seen;
        if (rs.seen < rs.rule.nth || fire != FaultKind::None)
            continue;
        rs.fired = true;
        fire = rs.rule.kind;
        ++stats_.delivered;
        ++stats_.perKind[static_cast<size_t>(fire)];
        warn("io-faults: injecting %s at op #%llu on '%s'",
             faultKindName(fire),
             static_cast<unsigned long long>(rs.seen), path.c_str());
    }
    return fire;
}

FaultStats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
installFaultInjector(FaultInjector *inj)
{
    g_injector.store(inj, std::memory_order_release);
}

FaultInjector *
faultInjector()
{
    return g_injector.load(std::memory_order_acquire);
}

Status
lastStatus()
{
    return t_lastStatus;
}

// =============== File ===============

Status
File::openWrite(const std::string &path)
{
    closeQuiet();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd_ < 0)
        return failStatus(errno, "open");
    path_ = path;
    return okStatus();
}

Status
File::openRead(const std::string &path)
{
    closeQuiet();
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        return failStatus(errno, "open");
    path_ = path;
    return okStatus();
}

Status
File::writeAll(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    size_t done = 0;
    while (done < len) {
        size_t want = len - done;
        switch (consult(OpClass::Write, path_)) {
          case FaultKind::Enospc:
            // The disk filled mid-file: some bytes land, then ENOSPC.
            if (want > 1)
                (void)!::write(fd_, p + done, want / 2);
            return failStatus(ENOSPC, "write");
          case FaultKind::TornTmp:
            // Power died mid-file: partial bytes stay on disk and the
            // writer never hears back.  Model: half the remainder is
            // written, then the operation errors out, leaving the
            // torn image for a later reader to trip over.
            if (want > 1)
                (void)!::write(fd_, p + done, want / 2);
            return failStatus(EIO, "write");
          case FaultKind::ShortWrite:
            // A lying write(2): silently accepts half.  The loop
            // below must absorb it -- that is the point.
            if (want > 1)
                want /= 2;
            break;
          default:
            break;
        }
        ssize_t n = ::write(fd_, p + done, want);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return failStatus(errno, "write");
        }
        done += static_cast<size_t>(n);
    }
    return okStatus();
}

Status
File::readSome(void *out, size_t len, size_t *got)
{
    *got = 0;
    switch (consult(OpClass::Read, path_)) {
      case FaultKind::Eio:
        return failStatus(EIO, "read");
      case FaultKind::ShortRead:
        // The stream ends early: deliver EOF with bytes missing; the
        // whole-file readers detect the size mismatch and fail.
        return okStatus();
      default:
        break;
    }
    for (;;) {
        ssize_t n = ::read(fd_, out, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return failStatus(errno, "read");
        }
        *got = static_cast<size_t>(n);
        return okStatus();
    }
}

Status
File::size(uint64_t *out) const
{
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        return failStatus(errno, "stat");
    *out = static_cast<uint64_t>(st.st_size);
    return okStatus();
}

Status
File::sync()
{
    if (consult(OpClass::Fsync, path_) == FaultKind::FsyncFail)
        return failStatus(EIO, "fsync");
    if (::fsync(fd_) != 0)
        return failStatus(errno, "fsync");
    return okStatus();
}

Status
File::close()
{
    if (fd_ < 0)
        return okStatus();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0)
        return failStatus(errno, "close");
    return okStatus();
}

void
File::closeQuiet()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

// =============== whole-file operations ===============

Status
syncParentDir(const std::string &path)
{
    size_t slash = path.rfind('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty())
        dir = "/";
    if (consult(OpClass::Fsync, dir) == FaultKind::FsyncFail)
        return failStatus(EIO, "dirsync");
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return failStatus(errno, "dirsync");
    Status st;
    if (::fsync(fd) != 0)
        st = Status{errno ? errno : EIO, "dirsync"};
    ::close(fd);
    return record(st);
}

Status
atomicWrite(const std::string &path, const void *data, size_t len)
{
    std::string tmp =
        path + ".tmp" + std::to_string(static_cast<long>(::getpid()));
    File f;
    Status st = f.openWrite(tmp);
    if (!st) {
        warn("io: cannot create '%s': %s", tmp.c_str(),
             std::strerror(st.err));
        return record(st);
    }
    st = f.writeAll(data, len);
    if (st)
        st = f.sync();
    if (st)
        st = f.close();
    if (!st) {
        warn("io: cannot write '%s' (%s: %s)", tmp.c_str(), st.stage,
             std::strerror(st.err));
        f.closeQuiet();
        ::unlink(tmp.c_str());
        return record(st);
    }
    st = renameFile(tmp, path);
    if (!st) {
        warn("io: cannot rename '%s' into place (%s)", tmp.c_str(),
             std::strerror(st.err));
        ::unlink(tmp.c_str());
        return record(st);
    }
    st = syncParentDir(path);
    if (!st) {
        // The bytes are in place; only the *rename's* durability is
        // unknown.  Report the failure -- a checkpoint writer may
        // choose to pause -- but do not undo the visible rename.
        warn("io: cannot fsync parent of '%s' (%s)", path.c_str(),
             std::strerror(st.err));
        return record(st);
    }
    return okStatus();
}

Status
atomicWriteText(const std::string &path, const std::string &text)
{
    return atomicWrite(path, text.data(), text.size());
}

Status
readFile(const std::string &path, std::vector<uint8_t> *out,
         uint64_t maxLen)
{
    out->clear();
    File f;
    Status st = f.openRead(path);
    if (!st)
        return record(st);
    uint64_t sz = 0;
    st = f.size(&sz);
    if (!st)
        return record(st);
    if (maxLen && sz > maxLen)
        return failStatus(EFBIG, "read");
    out->resize(static_cast<size_t>(sz));
    size_t done = 0;
    while (done < out->size()) {
        size_t got = 0;
        st = f.readSome(out->data() + done, out->size() - done, &got);
        if (!st)
            return record(st);
        if (got == 0)
            // EOF before the stat size: a torn or truncated file.
            return failStatus(EIO, "short");
        done += got;
    }
    return okStatus();
}

Status
readFileText(const std::string &path, std::string *out,
             uint64_t maxLen)
{
    std::vector<uint8_t> bytes;
    Status st = readFile(path, &bytes, maxLen);
    out->assign(reinterpret_cast<const char *>(bytes.data()),
                bytes.size());
    return st;
}

Status
renameFile(const std::string &from, const std::string &to)
{
    switch (consult(OpClass::Rename, to)) {
      case FaultKind::RenameFail:
        return failStatus(EIO, "rename");
      case FaultKind::RenameLie:
        // The nasty shared-filesystem case: the rename is performed,
        // but the caller is told it failed.  Callers must stay
        // correct when a "failed" rename actually happened.
        (void)::rename(from.c_str(), to.c_str());
        return failStatus(EIO, "rename");
      default:
        break;
    }
    if (::rename(from.c_str(), to.c_str()) != 0)
        return failStatus(errno, "rename");
    return okStatus();
}

double
fileAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    struct timeval tv;
    ::gettimeofday(&tv, nullptr);
    double now =
        static_cast<double>(tv.tv_sec) + tv.tv_usec * 1e-6;
    double mtime = static_cast<double>(st.st_mtim.tv_sec) +
        st.st_mtim.tv_nsec * 1e-9;
    double age = now - mtime;
    if (consult(OpClass::Stat, path) == FaultKind::StaleMtime)
        age += staleMtimePenalty;
    return age;
}

} // namespace vax::io
