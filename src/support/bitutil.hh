/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef UPC780_SUPPORT_BITUTIL_HH
#define UPC780_SUPPORT_BITUTIL_HH

#include <cstdint>
#include <type_traits>

namespace vax
{

/** Extract bits [first, last] (inclusive, last >= first) of val. */
constexpr uint32_t
bits(uint32_t val, unsigned last, unsigned first)
{
    uint32_t mask = (last - first >= 31)
        ? ~0u : ((1u << (last - first + 1)) - 1);
    return (val >> first) & mask;
}

/** Sign-extend the low n bits of val to 32 bits. */
constexpr int32_t
sext(uint32_t val, unsigned n)
{
    uint32_t m = 1u << (n - 1);
    uint32_t x = val & ((n >= 32) ? ~0u : ((1u << n) - 1));
    return static_cast<int32_t>((x ^ m) - m);
}

/** Round addr down to a multiple of align (align must be a power of 2). */
constexpr uint32_t
alignDown(uint32_t addr, uint32_t align)
{
    return addr & ~(align - 1);
}

/** Round addr up to a multiple of align (align must be a power of 2). */
constexpr uint32_t
alignUp(uint32_t addr, uint32_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True if addr is a multiple of align (align must be a power of 2). */
constexpr bool
isAligned(uint32_t addr, uint32_t align)
{
    return (addr & (align - 1)) == 0;
}

/** Floor of log2(x); x must be > 0. */
constexpr unsigned
floorLog2(uint32_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** True if x is a power of two (and nonzero). */
constexpr bool
isPowerOf2(uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace vax

#endif // UPC780_SUPPORT_BITUTIL_HH
