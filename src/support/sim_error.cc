#include "support/sim_error.hh"

#include <cstdio>

#include "support/trace.hh"

namespace vax
{

const char *
simErrorCauseName(SimErrorCause c)
{
    switch (c) {
      case SimErrorCause::Panic:    return "panic";
      case SimErrorCause::Fatal:    return "fatal";
      case SimErrorCause::Watchdog: return "watchdog";
      case SimErrorCause::Timeout:  return "timeout";
      case SimErrorCause::Drill:    return "drill";
    }
    return "?";
}

SimError::SimError(SimErrorCause cause, std::string message,
                   std::string job, uint64_t seed, uint64_t cycle,
                   uint16_t micro_pc)
    : cause_(cause), message_(std::move(message)), job_(std::move(job)),
      seed_(seed), cycle_(cycle), microPc_(micro_pc)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "[%s] job '%s' (seed %#llx) cycle %llu upc %u: ",
                  simErrorCauseName(cause_), job_.c_str(),
                  static_cast<unsigned long long>(seed_),
                  static_cast<unsigned long long>(cycle_),
                  static_cast<unsigned>(microPc_));
    what_ = std::string(buf) + message_;
}

namespace guard
{

namespace
{

thread_local bool t_active = false;
thread_local std::string t_job;
thread_local uint64_t t_seed = 0;
thread_local const uint16_t *t_microPc = nullptr;

} // anonymous namespace

Scope::Scope(const std::string &job, uint64_t seed)
    : prevJob_(std::move(t_job)), prevSeed_(t_seed),
      prevActive_(t_active)
{
    t_job = job;
    t_seed = seed;
    t_active = true;
}

Scope::~Scope()
{
    t_job = std::move(prevJob_);
    t_seed = prevSeed_;
    t_active = prevActive_;
}

bool
active()
{
    return t_active;
}

std::string
jobName()
{
    return t_job;
}

uint64_t
seed()
{
    return t_seed;
}

void
setMicroPc(const uint16_t *upc)
{
    t_microPc = upc;
}

void
clearMicroPc(const uint16_t *upc)
{
    if (t_microPc == upc)
        t_microPc = nullptr;
}

uint16_t
currentMicroPc()
{
    return t_microPc ? *t_microPc : 0;
}

} // namespace guard

SimError
SimError::fromGuard(SimErrorCause cause, std::string message)
{
    return SimError(cause, std::move(message), guard::jobName(),
                    guard::seed(), trace::currentCycle(),
                    guard::currentMicroPc());
}

void
ForwardProgressWatchdog::poke(uint64_t instructions, uint64_t cycle,
                              uint16_t upc)
{
    if (!window_)
        return;
    if (instructions != lastInstructions_) {
        lastInstructions_ = instructions;
        lastProgressCycle_ = cycle;
        return;
    }
    if (cycle - lastProgressCycle_ >= window_) {
        char msg[128];
        std::snprintf(msg, sizeof(msg),
                      "no instruction retired in %llu cycles "
                      "(looping at upc %u)",
                      static_cast<unsigned long long>(window_),
                      static_cast<unsigned>(upc));
        throw SimError(SimErrorCause::Watchdog, msg, guard::jobName(),
                       guard::seed(), cycle, upc);
    }
}

} // namespace vax
