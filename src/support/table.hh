/**
 * @file
 * Plain-text table formatter used by the bench harness to print the
 * paper's tables next to the measured values.
 */

#ifndef UPC780_SUPPORT_TABLE_HH
#define UPC780_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace vax
{

/**
 * A simple column-aligned text table.
 *
 * The first added row is treated as the header.  Numeric cells are
 * right-aligned, text cells left-aligned.  A separator line is drawn
 * under the header and wherever rule() is called.
 */
class TextTable
{
  public:
    /** Create a table with an optional caption printed above it. */
    explicit TextTable(std::string caption = "");

    /** Add a row of preformatted cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Add a horizontal rule before the next row. */
    void rule();

    /** Render the whole table. */
    std::string str() const;

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 3);

    /** Format a percentage with the given number of decimals. */
    static std::string pct(double v, int decimals = 1);

    /** Format an integer with thousands separators. */
    static std::string count(uint64_t v);

  private:
    std::string caption_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> rulesBefore_;
};

} // namespace vax

#endif // UPC780_SUPPORT_TABLE_HH
