#include "support/stats.hh"

#include <cstdio>
#include <cstring>

#include "support/iofault.hh"
#include "support/logging.hh"

namespace vax::stats
{

double
Registry::Stat::asDouble() const
{
    if (kind == Kind::Formula)
        return formula();
    return static_cast<double>(scalar());
}

uint64_t
Registry::Stat::asScalar() const
{
    if (kind == Kind::Scalar)
        return scalar();
    return 0;
}

void
Registry::add(Stat s)
{
    if (s.name.empty())
        panic("stats: empty stat name");
    auto [it, inserted] = stats_.emplace(s.name, std::move(s));
    if (!inserted)
        panic("stats: duplicate registration of '%s'",
              it->first.c_str());
}

void
Registry::addScalar(const std::string &name, const std::string &desc,
                    const uint64_t *counter)
{
    upc_assert(counter != nullptr);
    addScalar(name, desc, [counter] { return *counter; });
}

void
Registry::addScalar(const std::string &name, const std::string &desc,
                    ScalarFn fn)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Kind::Scalar;
    s.scalar = std::move(fn);
    add(std::move(s));
}

void
Registry::addVector(
    const std::string &name, const std::string &desc,
    const std::vector<std::pair<std::string, const uint64_t *>> &elems)
{
    for (const auto &[elem, counter] : elems)
        addScalar(name + "." + elem, desc + " [" + elem + "]", counter);
}

void
Registry::addFormula(const std::string &name, const std::string &desc,
                     FormulaFn fn)
{
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Kind::Formula;
    s.formula = std::move(fn);
    add(std::move(s));
}

const Registry::Stat *
Registry::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : &it->second;
}

std::vector<const Registry::Stat *>
Registry::sorted() const
{
    std::vector<const Stat *> out;
    out.reserve(stats_.size());
    for (const auto &[name, stat] : stats_)
        out.push_back(&stat);
    return out;
}

std::string
formatValue(const Registry::Stat &s)
{
    char buf[64];
    if (s.kind == Registry::Kind::Scalar) {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(s.asScalar()));
    } else {
        // %.12g is stable for identical doubles, compact for the
        // rates/ratios formulas compute, and JSON-parseable.
        std::snprintf(buf, sizeof(buf), "%.12g", s.asDouble());
    }
    return buf;
}

std::string
Registry::dumpText() const
{
    size_t name_w = 0;
    size_t val_w = 0;
    std::vector<std::string> values;
    values.reserve(stats_.size());
    for (const auto &[name, stat] : stats_) {
        values.push_back(formatValue(stat));
        if (name.size() > name_w)
            name_w = name.size();
        if (values.back().size() > val_w)
            val_w = values.back().size();
    }
    std::string out;
    size_t i = 0;
    for (const auto &[name, stat] : stats_) {
        out += name;
        out.append(name_w - name.size() + 2, ' ');
        out.append(val_w - values[i].size(), ' ');
        out += values[i];
        if (!stat.desc.empty()) {
            out += "  # ";
            out += stat.desc;
        }
        out += '\n';
        ++i;
    }
    return out;
}

namespace
{

/** CSV-quote a field (descriptions may contain commas/quotes). */
std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** JSON string escape (names/descs are plain ASCII in practice). */
std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    out += '"';
    return out;
}

} // anonymous namespace

std::string
Registry::dumpCsv() const
{
    std::string out = "name,value,desc\n";
    for (const auto &[name, stat] : stats_) {
        out += name;
        out += ',';
        out += formatValue(stat);
        out += ',';
        out += csvQuote(stat.desc);
        out += '\n';
    }
    return out;
}

std::string
Registry::dumpJson() const
{
    std::string out = "{\n  \"stats\": [\n";
    size_t i = 0;
    for (const auto &[name, stat] : stats_) {
        out += "    {\"name\": ";
        out += jsonQuote(name);
        out += ", \"value\": ";
        out += formatValue(stat);
        out += ", \"desc\": ";
        out += jsonQuote(stat.desc);
        out += '}';
        if (++i < stats_.size())
            out += ',';
        out += '\n';
    }
    out += "  ]\n}\n";
    return out;
}

bool
Registry::writeFile(const std::string &path,
                    const std::string &content)
{
    // Durable atomic write through the host-I/O fault layer: a stats
    // dump is a campaign-visible file, and a reader (or a
    // byte-identity test) must never observe a half-written one --
    // even across power loss, which plain tmp+rename does not cover.
    return static_cast<bool>(io::atomicWriteText(path, content));
}

bool
Registry::saveText(const std::string &path) const
{
    return writeFile(path, dumpText());
}

bool
Registry::saveCsv(const std::string &path) const
{
    return writeFile(path, dumpCsv());
}

bool
Registry::saveJson(const std::string &path) const
{
    return writeFile(path, dumpJson());
}

std::string
parseStatsJsonFlag(int *argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--stats-json") == 0 && i + 1 < *argc) {
            path = argv[++i];
        } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            path = arg + 13;
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return path;
}

} // namespace vax::stats
