#include "support/snapshot.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "support/iofault.hh"
#include "support/logging.hh"

namespace vax::snap
{

namespace
{

constexpr char magic[8] = {'U', 'P', 'C', '7', '8', '0', 'C', 'K'};
constexpr uint32_t trailerSentinel = 0xFFFFFFFFu;
/** Refuse absurd name/blob lengths before allocating (a corrupt
 *  length field must not become a multi-gigabyte allocation). */
constexpr uint64_t maxNameLen = 4096;

/** Formatted SnapshotError carrying the detecting file:line. */
[[noreturn]] void
failAt(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void
failAt(const char *file, int line, const char *fmt, ...)
{
    char msg[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    char full[640];
    std::snprintf(full, sizeof(full), "snapshot: %s [%s:%d]", msg,
                  file, line);
    throw SnapshotError(full);
}

#define SNAP_FAIL(...) failAt(__FILE__, __LINE__, __VA_ARGS__)

} // anonymous namespace

uint32_t
crc32(const void *data, size_t len)
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    uint32_t c = 0xFFFFFFFFu;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// ====================== Serializer ======================

Serializer::Serializer()
{
    raw(magic, sizeof(magic));
    uint8_t v[4] = {
        static_cast<uint8_t>(formatVersion),
        static_cast<uint8_t>(formatVersion >> 8),
        static_cast<uint8_t>(formatVersion >> 16),
        static_cast<uint8_t>(formatVersion >> 24),
    };
    raw(v, 4);
}

void
Serializer::raw(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
Serializer::beginSection(const std::string &name)
{
    upc_assert(!inSection_ && !finished_);
    uint32_t n = static_cast<uint32_t>(name.size());
    uint8_t hdr[4] = {
        static_cast<uint8_t>(n), static_cast<uint8_t>(n >> 8),
        static_cast<uint8_t>(n >> 16), static_cast<uint8_t>(n >> 24),
    };
    raw(hdr, 4);
    raw(name.data(), name.size());
    // Payload length placeholder, patched by endSection().
    uint8_t zero[8] = {};
    raw(zero, 8);
    sectionStart_ = buf_.size();
    inSection_ = true;
    ++sectionCount_;
}

void
Serializer::endSection()
{
    upc_assert(inSection_);
    uint64_t len = buf_.size() - sectionStart_;
    for (int i = 0; i < 8; ++i)
        buf_[sectionStart_ - 8 + i] =
            static_cast<uint8_t>(len >> (8 * i));
    uint32_t crc = crc32(buf_.data() + sectionStart_, len);
    uint8_t c[4] = {
        static_cast<uint8_t>(crc), static_cast<uint8_t>(crc >> 8),
        static_cast<uint8_t>(crc >> 16),
        static_cast<uint8_t>(crc >> 24),
    };
    inSection_ = false;
    raw(c, 4);
}

void
Serializer::putU8(uint8_t v)
{
    upc_assert(inSection_);
    raw(&v, 1);
}

void
Serializer::putU16(uint16_t v)
{
    uint8_t b[2] = {static_cast<uint8_t>(v),
                    static_cast<uint8_t>(v >> 8)};
    upc_assert(inSection_);
    raw(b, 2);
}

void
Serializer::putU32(uint32_t v)
{
    uint8_t b[4] = {
        static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
        static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24),
    };
    upc_assert(inSection_);
    raw(b, 4);
}

void
Serializer::putU64(uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
    upc_assert(inSection_);
    raw(b, 8);
}

void
Serializer::putDouble(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
Serializer::putString(const std::string &s)
{
    putU64(s.size());
    upc_assert(inSection_);
    raw(s.data(), s.size());
}

void
Serializer::putBytes(const void *data, size_t len)
{
    putU64(len);
    upc_assert(inSection_);
    raw(data, len);
}

void
Serializer::putBytesRle(const void *data, size_t len)
{
    // Pairs of (zero run, literal run) covering the image in order.
    putU64(len);
    const uint8_t *p = static_cast<const uint8_t *>(data);
    size_t i = 0;
    while (i < len) {
        size_t z = i;
        while (z < len && p[z] == 0)
            ++z;
        size_t l = z;
        // A literal run ends at a worthwhile zero gap (>= 16 bytes),
        // so short zero stretches don't fragment the encoding.
        while (l < len) {
            if (p[l] != 0) {
                ++l;
                continue;
            }
            size_t zz = l;
            while (zz < len && p[zz] == 0)
                ++zz;
            if (zz - l >= 16 || zz == len)
                break;
            l = zz;
        }
        putU64(z - i);                  // zero run
        putBytes(p + z, l - z);         // literal run
        i = l;
    }
}

void
Serializer::putVecU64(const std::vector<uint64_t> &v)
{
    // Encode through the RLE blob path: histogram banks are sparse.
    std::vector<uint8_t> bytes(v.size() * 8);
    for (size_t i = 0; i < v.size(); ++i)
        for (int k = 0; k < 8; ++k)
            bytes[i * 8 + k] = static_cast<uint8_t>(v[i] >> (8 * k));
    putU64(v.size());
    putBytesRle(bytes.data(), bytes.size());
}

std::vector<uint8_t>
Serializer::finish()
{
    upc_assert(!inSection_ && !finished_);
    uint8_t t[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    raw(t, 4);
    uint8_t n[8];
    for (int i = 0; i < 8; ++i)
        n[i] = static_cast<uint8_t>(sectionCount_ >> (8 * i));
    raw(n, 8);
    finished_ = true;
    return std::move(buf_);
}

bool
Serializer::writeFile(const std::string &path)
{
    // Durable atomic write (fsync file, rename, fsync dir) through
    // the host-I/O fault layer: a snapshot that "succeeded" must
    // survive power loss, and the chaos drills must be able to make
    // any stage of it fail.  On failure io::lastStatus() tells the
    // caller *how* (the campaign's ENOSPC degraded mode needs that).
    std::vector<uint8_t> image = finish();
    return static_cast<bool>(
        io::atomicWrite(path, image.data(), image.size()));
}

// ====================== Deserializer ======================

Deserializer::Deserializer(std::vector<uint8_t> data)
    : data_(std::move(data))
{
    if (data_.size() < sizeof(magic) + 4)
        SNAP_FAIL("image truncated at %zu bytes (no header)",
                  data_.size());
    if (std::memcmp(data_.data(), magic, sizeof(magic)) != 0)
        SNAP_FAIL("bad magic (not a upc780 snapshot)");
    pos_ = sizeof(magic);
    uint32_t ver = rawU32();
    if (ver != formatVersion)
        SNAP_FAIL("format version %u, this build reads only %u "
                  "(re-run the producing build or discard the file)",
                  ver, formatVersion);
}

Deserializer
Deserializer::fromFile(const std::string &path)
{
    // Size-validated whole-file read through the fault layer: an EIO
    // or short read surfaces as a SnapshotError, which every caller
    // already treats as "this file is damaged" (fail-soft for
    // .result ingestion, restart-from-seed for checkpoints).
    std::vector<uint8_t> bytes;
    io::Status st = io::readFile(path, &bytes);
    if (!st)
        SNAP_FAIL("cannot read '%s' (%s: %s)", path.c_str(), st.stage,
                  std::strerror(st.err));
    return Deserializer(std::move(bytes));
}

void
Deserializer::need(size_t n, const char *what)
{
    size_t limit = inSection_ ? sectionEnd_ : data_.size();
    if (pos_ + n > limit) {
        if (inSection_)
            SNAP_FAIL("section '%s': truncated reading %s at offset "
                      "%zu (%zu of %zu bytes left)",
                      sectionName_.c_str(), what, pos_,
                      limit - pos_, n);
        SNAP_FAIL("truncated reading %s at offset %zu", what, pos_);
    }
}

uint32_t
Deserializer::rawU32()
{
    need(4, "u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
Deserializer::rawU64()
{
    need(8, "u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

void
Deserializer::beginSection(const std::string &name)
{
    upc_assert(!inSection_);
    uint32_t nameLen = rawU32();
    if (nameLen == trailerSentinel)
        SNAP_FAIL("expected section '%s', found the trailer "
                  "(snapshot ends early)", name.c_str());
    if (nameLen > maxNameLen)
        SNAP_FAIL("section name length %u is implausible "
                  "(corrupt header at offset %zu)", nameLen, pos_ - 4);
    need(nameLen, "section name");
    std::string found(reinterpret_cast<const char *>(data_.data()) +
                          pos_,
                      nameLen);
    pos_ += nameLen;
    if (found != name)
        SNAP_FAIL("expected section '%s', found '%s' (layout skew "
                  "or corrupt stream)", name.c_str(), found.c_str());
    uint64_t payloadLen = rawU64();
    if (payloadLen > data_.size() - pos_)
        SNAP_FAIL("section '%s': payload length %llu exceeds the "
                  "remaining %zu bytes (truncated file)",
                  found.c_str(),
                  static_cast<unsigned long long>(payloadLen),
                  data_.size() - pos_);
    if (data_.size() - pos_ - payloadLen < 4)
        SNAP_FAIL("section '%s': missing CRC (truncated file)",
                  found.c_str());
    uint32_t want = 0;
    for (int i = 0; i < 4; ++i)
        want |= static_cast<uint32_t>(
                    data_[pos_ + payloadLen + i])
            << (8 * i);
    uint32_t got = crc32(data_.data() + pos_, payloadLen);
    if (got != want)
        SNAP_FAIL("section '%s': CRC mismatch (stored %08x, "
                  "computed %08x) -- file is corrupt",
                  found.c_str(), want, got);
    sectionName_ = found;
    sectionEnd_ = pos_ + payloadLen;
    inSection_ = true;
    ++sectionCount_;
}

void
Deserializer::endSection()
{
    upc_assert(inSection_);
    if (pos_ != sectionEnd_)
        SNAP_FAIL("section '%s': %zu unread payload bytes (layout "
                  "skew between writer and reader)",
                  sectionName_.c_str(), sectionEnd_ - pos_);
    inSection_ = false;
    sectionName_.clear();
    pos_ += 4; // the verified CRC
}

uint8_t
Deserializer::getU8()
{
    need(1, "u8");
    return data_[pos_++];
}

uint16_t
Deserializer::getU16()
{
    need(2, "u16");
    uint16_t v = static_cast<uint16_t>(
        data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
}

uint32_t
Deserializer::getU32()
{
    upc_assert(inSection_);
    return rawU32();
}

uint64_t
Deserializer::getU64()
{
    upc_assert(inSection_);
    return rawU64();
}

double
Deserializer::getDouble()
{
    uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deserializer::getString()
{
    uint64_t len = getU64();
    need(len, "string body");
    std::string s(reinterpret_cast<const char *>(data_.data()) + pos_,
                  static_cast<size_t>(len));
    pos_ += len;
    return s;
}

void
Deserializer::getBytes(void *out, size_t len)
{
    uint64_t stored = getU64();
    if (stored != len)
        SNAP_FAIL("section '%s': blob is %llu bytes, expected %zu",
                  sectionName_.c_str(),
                  static_cast<unsigned long long>(stored), len);
    need(len, "blob body");
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
}

void
Deserializer::getBytesRle(void *out, size_t len)
{
    uint64_t total = getU64();
    if (total != len)
        SNAP_FAIL("section '%s': RLE blob decodes to %llu bytes, "
                  "expected %zu", sectionName_.c_str(),
                  static_cast<unsigned long long>(total), len);
    uint8_t *p = static_cast<uint8_t *>(out);
    size_t i = 0;
    while (i < len) {
        uint64_t zeros = getU64();
        if (zeros > len - i)
            SNAP_FAIL("section '%s': RLE zero run of %llu overflows "
                      "the %zu-byte image", sectionName_.c_str(),
                      static_cast<unsigned long long>(zeros), len);
        std::memset(p + i, 0, static_cast<size_t>(zeros));
        i += static_cast<size_t>(zeros);
        uint64_t lit = getU64();
        if (lit > len - i)
            SNAP_FAIL("section '%s': RLE literal run of %llu "
                      "overflows the %zu-byte image",
                      sectionName_.c_str(),
                      static_cast<unsigned long long>(lit), len);
        need(lit, "RLE literal run");
        std::memcpy(p + i, data_.data() + pos_,
                    static_cast<size_t>(lit));
        pos_ += lit;
        i += static_cast<size_t>(lit);
        if (zeros == 0 && lit == 0 && i < len)
            SNAP_FAIL("section '%s': empty RLE pair at offset %zu "
                      "(corrupt stream would loop forever)",
                      sectionName_.c_str(), pos_);
    }
}

std::vector<uint64_t>
Deserializer::getVecU64()
{
    uint64_t count = getU64();
    // The RLE body can be far smaller than count * 8, so bound the
    // allocation independently of the remaining byte count.
    if (count > (1u << 28))
        SNAP_FAIL("section '%s': vector count %llu is implausible "
                  "(corrupt length field)", sectionName_.c_str(),
                  static_cast<unsigned long long>(count));
    std::vector<uint8_t> bytes(static_cast<size_t>(count) * 8);
    getBytesRle(bytes.data(), bytes.size());
    std::vector<uint64_t> v(static_cast<size_t>(count));
    for (size_t i = 0; i < v.size(); ++i) {
        uint64_t x = 0;
        for (int k = 0; k < 8; ++k)
            x |= static_cast<uint64_t>(bytes[i * 8 + k]) << (8 * k);
        v[i] = x;
    }
    return v;
}

void
Deserializer::expectU32(uint32_t expected, const char *field)
{
    uint32_t got = getU32();
    if (got != expected)
        SNAP_FAIL("section '%s': %s is %u in the snapshot but %u in "
                  "this machine (snapshot from a different "
                  "configuration)", sectionName_.c_str(), field, got,
                  expected);
}

void
Deserializer::expectU64(uint64_t expected, const char *field)
{
    uint64_t got = getU64();
    if (got != expected)
        SNAP_FAIL("section '%s': %s is %llu in the snapshot but %llu "
                  "in this machine (snapshot from a different "
                  "configuration)", sectionName_.c_str(), field,
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(expected));
}

void
Deserializer::finish()
{
    upc_assert(!inSection_);
    uint32_t sentinel = rawU32();
    if (sentinel != trailerSentinel)
        SNAP_FAIL("expected the trailer at offset %zu, found another "
                  "section (reader stopped early?)", pos_ - 4);
    uint64_t count = rawU64();
    if (count != sectionCount_)
        SNAP_FAIL("trailer says %llu sections, read %llu",
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(sectionCount_));
    if (pos_ != data_.size())
        SNAP_FAIL("%zu trailing bytes after the trailer",
                  data_.size() - pos_);
}

} // namespace vax::snap
