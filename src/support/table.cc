#include "support/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace vax
{

TextTable::TextTable(std::string caption)
    : caption_(std::move(caption))
{
}

void
TextTable::addRow(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

void
TextTable::rule()
{
    rulesBefore_.push_back(rows_.size());
}

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) &&
            c != '.' && c != '-' && c != '+' && c != '%' && c != ',' &&
            c != 'e' && c != 'x')
            return false;
    }
    return true;
}

} // anonymous namespace

std::string
TextTable::str() const
{
    size_t ncols = 0;
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> width(ncols, 0);
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;

    std::ostringstream out;
    if (!caption_.empty())
        out << caption_ << "\n";

    auto hrule = [&]() {
        out << std::string(total, '-') << "\n";
    };

    for (size_t i = 0; i < rows_.size(); ++i) {
        for (size_t k : rulesBefore_)
            if (k == i)
                hrule();
        const auto &r = rows_[i];
        for (size_t c = 0; c < ncols; ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            bool right = i > 0 && looksNumeric(cell);
            if (right)
                out << std::string(width[c] - cell.size(), ' ') << cell;
            else
                out << cell << std::string(width[c] - cell.size(), ' ');
            out << "  ";
        }
        out << "\n";
        if (i == 0)
            hrule();
    }
    for (size_t k : rulesBefore_)
        if (k == rows_.size())
            hrule();
    return out.str();
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::pct(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v);
    return buf;
}

std::string
TextTable::count(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int n = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (n && n % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++n;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace vax
