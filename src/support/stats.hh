/**
 * @file
 * The unified statistics registry.
 *
 * gem5-style named statistics: every component registers its counters
 * under a hierarchical dotted name ("cpu.mem.cache.readRefsD") with a
 * one-line description, and the registry renders the whole set as
 * aligned text, CSV, or JSON.  Three stat kinds:
 *
 *  - scalar: a live uint64_t counter, referenced by pointer or by a
 *    getter callable -- registration never copies a value, so a dump
 *    always reflects the current state of the machine;
 *  - vector: a named family of scalars (flattened to "name.elem");
 *  - formula: a double computed at dump time from other quantities
 *    (rates, ratios, CPI).
 *
 * Dumps are deterministic: stats are kept sorted by name and values
 * are printed with fixed formats, so two simulations of the same seed
 * produce byte-identical dumps -- serial or pooled (the simulator's
 * merge layer is bit-exact).  Wall-clock quantities therefore do NOT
 * belong in the registry; they live in the driver's PoolTelemetry.
 *
 * Lifetime: the registry stores pointers/closures over component
 * counters; it must not outlive the components it describes.
 */

#ifndef UPC780_SUPPORT_STATS_HH
#define UPC780_SUPPORT_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vax::stats
{

class Registry
{
  public:
    using ScalarFn = std::function<uint64_t()>;
    using FormulaFn = std::function<double()>;

    enum class Kind : uint8_t { Scalar, Formula };

    struct Stat
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Scalar;
        ScalarFn scalar;   ///< valid when kind == Scalar
        FormulaFn formula; ///< valid when kind == Formula

        /** Current value as a double (formulas and scalars alike). */
        double asDouble() const;
        /** Current scalar value (0 for formulas; use asDouble). */
        uint64_t asScalar() const;
    };

    /** Register a scalar backed by a live counter. */
    void addScalar(const std::string &name, const std::string &desc,
                   const uint64_t *counter);

    /** Register a scalar backed by a getter. */
    void addScalar(const std::string &name, const std::string &desc,
                   ScalarFn fn);

    /**
     * Register a vector stat: one scalar per element, flattened to
     * "name.elem" so dumps and lookups stay uniform.
     */
    void addVector(
        const std::string &name, const std::string &desc,
        const std::vector<std::pair<std::string, const uint64_t *>>
            &elems);

    /** Register a derived quantity evaluated at dump time. */
    void addFormula(const std::string &name, const std::string &desc,
                    FormulaFn fn);

    /** Look up a stat by full name; nullptr if absent. */
    const Stat *find(const std::string &name) const;

    size_t size() const { return stats_.size(); }
    bool empty() const { return stats_.empty(); }

    /** All stats in name order (the dump order). */
    std::vector<const Stat *> sorted() const;

    /** @{ Render the full registry.  Deterministic byte-for-byte. */
    std::string dumpText() const;
    std::string dumpCsv() const;
    std::string dumpJson() const;
    /** @} */

    /** @{ Write a dump to a file; false (with warn) on I/O failure. */
    bool saveText(const std::string &path) const;
    bool saveCsv(const std::string &path) const;
    bool saveJson(const std::string &path) const;
    /** @} */

  private:
    void add(Stat s);
    static bool writeFile(const std::string &path,
                          const std::string &content);

    std::map<std::string, Stat> stats_; ///< name-sorted: dump order
};

/** Render a stat value the way every dump format does (scalars as
 *  integers, formulas as shortest-round-trip decimals). */
std::string formatValue(const Registry::Stat &s);

/**
 * Strip a "--stats-json PATH" / "--stats-json=PATH" flag from argv
 * (updating *argc, same contract as parseJobsFlag) and return PATH;
 * empty when the flag is absent.
 */
std::string parseStatsJsonFlag(int *argc, char **argv);

} // namespace vax::stats

#endif // UPC780_SUPPORT_STATS_HH
