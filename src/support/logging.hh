/**
 * @file
 * Status and error reporting for the upc780 simulator.
 *
 * Follows the gem5 convention: panic() is for simulator bugs (things
 * that should never happen regardless of user input) and aborts;
 * fatal() is for user errors (bad configuration, bad workload) and
 * exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef UPC780_SUPPORT_LOGGING_HH
#define UPC780_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace vax
{

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Internal formatting and dispatch for all log messages.
 *
 * @param level Severity; Fatal exits, Panic aborts.
 * @param fmt printf-style format string.
 */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Report a condition the user should know about but not worry about. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report possibly-incorrect behaviour that may still work well enough. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminate due to a user error (bad config, bad input); exits(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminate due to a simulator bug; aborts (core dump possible). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; panics with location info on failure.
 */
#define upc_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::vax::panic("assertion '%s' failed at %s:%d",              \
                         #cond, __FILE__, __LINE__);                    \
        }                                                               \
    } while (0)

} // namespace vax

#endif // UPC780_SUPPORT_LOGGING_HH
