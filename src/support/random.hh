/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in the simulator and workload generator
 * draws from a seeded Xorshift64* stream so that all experiments are
 * reproducible bit-for-bit.
 */

#ifndef UPC780_SUPPORT_RANDOM_HH
#define UPC780_SUPPORT_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace vax
{

/**
 * Xorshift64* generator.
 *
 * Small, fast, and deterministic; quality is more than adequate for
 * workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a nonzero seed (0 is remapped internally). */
    explicit Rng(uint64_t seed = 0x780aceULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint32_t below(uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int32_t range(int32_t lo, int32_t hi);

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Geometric-ish positive count with the given mean (>= 1).
     *
     * Used for loop trip counts and string lengths; truncated at
     * 64 * mean to bound workload run time.
     */
    uint32_t geometric(double mean);

    /**
     * Pick an index according to a weight table.
     *
     * @param weights Non-negative weights; at least one must be > 0.
     * @return Index in [0, weights.size()).
     */
    size_t pickWeighted(const std::vector<double> &weights);

    /** @{ Raw generator state, for checkpoint/restore: restoring the
     *  state restores the exact future draw stream, which is what
     *  makes a resumed simulation bit-identical to an uninterrupted
     *  one.  setState() bypasses the constructor's warm-up. */
    uint64_t state() const { return state_; }
    void setState(uint64_t s) { state_ = s ? s : 1; }
    /** @} */

  private:
    uint64_t state_;
};

} // namespace vax

#endif // UPC780_SUPPORT_RANDOM_HH
