/**
 * @file
 * Graceful SIGINT/SIGTERM handling for long measurement runs.
 *
 * A pooled composite can spend minutes to hours simulating; before
 * this module existed, Ctrl-C threw every simulated cycle away.  Now
 * the drivers install a handler that only sets a flag; the experiment
 * loop polls it at its RTE poll boundary (every ~512 cycles), workers
 * drain to a final checkpoint, and the harness exits with the
 * conventional 128+SIGINT code after printing a loud INTERRUPTED
 * marker -- so an interrupted run is a resumable run, not a lost one.
 *
 * The flag is process-global and sticky: once requested, every
 * experiment and pool in the process winds down.  Tests drive the
 * same path programmatically through request()/reset().
 */

#ifndef UPC780_SUPPORT_INTERRUPT_HH
#define UPC780_SUPPORT_INTERRUPT_HH

namespace vax::interrupt
{

/** Conventional exit status for a SIGINT-terminated run (128 + 2). */
constexpr int exitCode = 130;

/**
 * Install the SIGINT/SIGTERM handlers (idempotent).  The handler is
 * async-signal-safe: it only sets the request flag; all draining and
 * checkpoint I/O happens on the polling threads.  A second signal
 * while a drain is in progress restores the default disposition, so
 * a stuck run can still be killed the ordinary way.
 */
void install();

/** True once an interrupt (signal or programmatic) was requested. */
bool requested();

/** Request an interrupt programmatically (tests, embedding code). */
void request();

/** Clear the flag (tests only; real runs stay interrupted). */
void reset();

/**
 * The one INTERRUPTED marker every drainable binary prints:
 *
 *   *** INTERRUPTED: <what> (N job(s) unfinished); <hint> ***
 *
 * where the hint is "rerun with --resume to continue" when the run
 * was checkpointed (@p resumable) and "add --checkpoint-dir to make
 * runs resumable" otherwise.  @return exitCode (130), so callers can
 * write `return interrupt::reportInterrupted(...)`.  Keeping the
 * format in one place is what lets scripts and the drill tests grep
 * for it across every tool.
 */
int reportInterrupted(const char *what, unsigned unfinished,
                      bool resumable);

} // namespace vax::interrupt

#endif // UPC780_SUPPORT_INTERRUPT_HH
