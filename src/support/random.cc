#include "support/random.hh"

#include <cmath>

#include "support/logging.hh"

namespace vax
{

Rng::Rng(uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
    // Warm the state so that small seeds diverge quickly.
    for (int i = 0; i < 4; ++i)
        next();
}

uint64_t
Rng::next()
{
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
}

uint32_t
Rng::below(uint32_t bound)
{
    upc_assert(bound > 0);
    return static_cast<uint32_t>(next() % bound);
}

int32_t
Rng::range(int32_t lo, int32_t hi)
{
    upc_assert(lo <= hi);
    uint32_t span = static_cast<uint32_t>(hi - lo) + 1;
    return lo + static_cast<int32_t>(span == 0 ? next() : below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::uniform()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0); // 2^53
}

uint32_t
Rng::geometric(double mean)
{
    upc_assert(mean >= 1.0);
    // Geometric on {1, 2, ...} with the requested mean has success
    // probability 1/mean.
    double p = 1.0 / mean;
    double u = uniform();
    // Inverse CDF; guard the log against u == 0.
    double v = std::log(1.0 - u) / std::log(1.0 - p);
    uint32_t n = 1 + static_cast<uint32_t>(v);
    uint32_t cap = static_cast<uint32_t>(64.0 * mean);
    return n > cap ? cap : n;
}

size_t
Rng::pickWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        upc_assert(w >= 0.0);
        total += w;
    }
    upc_assert(total > 0.0);
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace vax
