#include "support/trace.hh"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace vax::trace
{

namespace
{

const char *const kChannelNames[] = {
    "ucode", "idecode", "cache", "tb", "mem", "sbi", "os", "pool",
    "fault",
};
static_assert(sizeof(kChannelNames) / sizeof(kChannelNames[0]) ==
              static_cast<size_t>(Channel::NumChannels));

constexpr uint32_t kAllMask =
    (1u << static_cast<unsigned>(Channel::NumChannels)) - 1;

uint32_t
maskFromList(const std::string &list, bool *all_known)
{
    uint32_t mask = 0;
    bool known = true;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            mask = kAllMask;
            continue;
        }
        bool found = false;
        for (unsigned c = 0;
             c < static_cast<unsigned>(Channel::NumChannels); ++c) {
            if (name == kChannelNames[c]) {
                mask |= 1u << c;
                found = true;
                break;
            }
        }
        if (!found) {
            known = false;
            warn("trace: unknown channel '%s' (have: ucode, idecode, "
                 "cache, tb, mem, sbi, os, pool, fault, all)",
                 name.c_str());
        }
    }
    if (all_known)
        *all_known = known;
    return mask;
}

uint32_t
initialMask()
{
    const char *env = std::getenv("UPC780_TRACE");
    if (!env || !*env)
        return 0;
    return maskFromList(env, nullptr);
}

/** Default sink: one unbuffered fwrite per complete line, so lines
 *  from concurrent threads cannot interleave mid-line. */
class StderrSink : public TraceSink
{
  public:
    void
    write(const char *line, size_t len) override
    {
        std::fwrite(line, 1, len, stderr);
    }
};

StderrSink g_stderrSink;

thread_local TraceSink *t_sink = nullptr;
thread_local const uint64_t *t_cycleCounter = nullptr;

} // anonymous namespace

uint32_t g_mask = initialMask();

const char *
channelName(Channel c)
{
    return kChannelNames[static_cast<unsigned>(c)];
}

void
enable(Channel c)
{
    g_mask |= 1u << static_cast<unsigned>(c);
}

void
disable(Channel c)
{
    g_mask &= ~(1u << static_cast<unsigned>(c));
}

void
disableAll()
{
    g_mask = 0;
}

bool
enableList(const std::string &list)
{
    bool all_known = false;
    g_mask |= maskFromList(list, &all_known);
    return all_known;
}

void
parseTraceFlag(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--trace") == 0 && i + 1 < *argc) {
            enableList(argv[++i]);
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            enableList(arg + 8);
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
}

void
setCycleCounter(const uint64_t *counter)
{
    t_cycleCounter = counter;
}

void
clearCycleCounter(const uint64_t *counter)
{
    if (t_cycleCounter == counter)
        t_cycleCounter = nullptr;
}

uint64_t
currentCycle()
{
    return t_cycleCounter ? *t_cycleCounter : 0;
}

void
BufferSink::flushTo(std::FILE *f)
{
    if (!buf_.empty())
        std::fwrite(buf_.data(), 1, buf_.size(), f);
    buf_.clear();
}

TraceSink *
setThreadSink(TraceSink *sink)
{
    TraceSink *prev = t_sink;
    t_sink = sink;
    return prev;
}

void
emit(Channel c, const char *fmt, ...)
{
    char msg[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    va_end(args);

    char line[600];
    int n = std::snprintf(line, sizeof(line), "%llu:%s: %s\n",
                          static_cast<unsigned long long>(currentCycle()),
                          channelName(c), msg);
    if (n < 0)
        return;
    if (static_cast<size_t>(n) >= sizeof(line))
        n = sizeof(line) - 1;
    TraceSink *sink = t_sink ? t_sink : &g_stderrSink;
    sink->write(line, static_cast<size_t>(n));
}

} // namespace vax::trace
