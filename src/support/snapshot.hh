/**
 * @file
 * Deterministic binary snapshots (checkpoint/restore).
 *
 * A snapshot is a stream of named sections, each protected by its own
 * CRC-32, behind a magic number and a format version that is fatal on
 * mismatch.  Every integer is written little-endian by explicit byte
 * shifts, so a snapshot is bit-identical across hosts and a
 * save -> restore -> save round trip reproduces the original file
 * byte for byte -- the property the checkpoint tests assert.
 *
 * Error handling: any structural problem (bad magic, version skew,
 * unknown or out-of-order section, CRC mismatch, truncation, trailing
 * garbage) raises SnapshotError with a message naming the offending
 * section, the byte offset, and the file:line of the detecting check.
 * Restore never proceeds past a damaged byte: a corrupt snapshot file
 * fails loudly, it does not produce an undefined machine.
 *
 * Layout:
 *
 *   "UPC780CK"            8-byte magic
 *   u32 formatVersion
 *   section*:
 *     u32  nameLen        (0xFFFFFFFF is the trailer sentinel)
 *     byte name[nameLen]
 *     u64  payloadLen
 *     byte payload[payloadLen]
 *     u32  crc32(payload)
 *   trailer:
 *     u32  0xFFFFFFFF
 *     u64  sectionCount
 *
 * Blobs that are mostly zero (physical memory, histogram banks) use a
 * zero-run-length encoding so checkpoints of an 8 MB machine stay in
 * the tens of kilobytes.
 */

#ifndef UPC780_SUPPORT_SNAPSHOT_HH
#define UPC780_SUPPORT_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace vax::snap
{

/** Bumped on any incompatible layout change; restore of any other
 *  version is fatal (a half-understood snapshot is worse than none). */
constexpr uint32_t formatVersion = 1;

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) of a byte range. */
uint32_t crc32(const void *data, size_t len);

/** A structural defect in a snapshot stream.  what() carries the
 *  section name, byte offset and detecting file:line. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &msg)
        : std::runtime_error(msg) {}
};

class Serializer
{
  public:
    Serializer();

    /** Open a named section; sections must not nest. */
    void beginSection(const std::string &name);
    /** Close the open section, patching its length and CRC. */
    void endSection();

    /** @{ Primitive writes (inside an open section). */
    void putU8(uint8_t v);
    void putU16(uint16_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI64(int64_t v) { putU64(static_cast<uint64_t>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putDouble(double v);
    void putString(const std::string &s);
    void putBytes(const void *data, size_t len);
    /** Zero-run-length-encoded blob (mostly-zero images). */
    void putBytesRle(const void *data, size_t len);
    void putVecU64(const std::vector<uint64_t> &v);
    /** @} */

    /** Append the trailer and hand the finished image over. */
    std::vector<uint8_t> finish();

    /**
     * finish() and write the image to path atomically: the bytes go
     * to "path.tmp" first and rename into place, so a crash mid-write
     * never leaves a truncated snapshot under the real name.
     * @return False (with warn) on I/O failure.
     */
    bool writeFile(const std::string &path);

  private:
    void raw(const void *data, size_t len);

    std::vector<uint8_t> buf_;
    size_t sectionStart_ = 0; ///< payload offset of the open section
    bool inSection_ = false;
    uint64_t sectionCount_ = 0;
    bool finished_ = false;
};

class Deserializer
{
  public:
    /** Parse an in-memory image; verifies magic and version. */
    explicit Deserializer(std::vector<uint8_t> data);

    /** Read a whole snapshot file (SnapshotError on I/O failure). */
    static Deserializer fromFile(const std::string &path);

    /**
     * Open the next section, which must carry exactly this name; the
     * payload CRC is verified before any field is handed out.
     */
    void beginSection(const std::string &name);
    /** Close the section; leftover payload bytes are an error. */
    void endSection();

    /** @{ Primitive reads, bounds-checked against the section. */
    uint8_t getU8();
    uint16_t getU16();
    uint32_t getU32();
    uint64_t getU64();
    int64_t getI64() { return static_cast<int64_t>(getU64()); }
    bool getBool() { return getU8() != 0; }
    double getDouble();
    std::string getString();
    void getBytes(void *out, size_t len);
    /** Counterpart of putBytesRle; len must match the encoded size. */
    void getBytesRle(void *out, size_t len);
    std::vector<uint64_t> getVecU64();
    /** @} */

    /** @{ Configuration-fingerprint checks: read a value and require
     *  it to equal what the restoring machine was built with.  A
     *  mismatch (snapshot from a different config) is a SnapshotError
     *  naming the field and both values. */
    void expectU32(uint32_t expected, const char *field);
    void expectU64(uint64_t expected, const char *field);
    /** @} */

    /** Verify the trailer: section count and end-of-image. */
    void finish();

    /** Name of the open section ("" between sections). */
    const std::string &sectionName() const { return sectionName_; }

  private:
    void need(size_t n, const char *what);
    uint64_t rawU64();
    uint32_t rawU32();

    std::vector<uint8_t> data_;
    size_t pos_ = 0;
    size_t sectionEnd_ = 0;
    bool inSection_ = false;
    uint64_t sectionCount_ = 0;
    std::string sectionName_;
};

} // namespace vax::snap

#endif // UPC780_SUPPORT_SNAPSHOT_HH
