/**
 * @file
 * Deterministic hardware fault injection.
 *
 * The real 11/780 detected cache/TB parity errors and SBI read
 * timeouts in hardware and vectored through the machine-check SCB
 * entry; the paper's live measurements simply kept counting through
 * them.  This injector reproduces that error surface on demand: a
 * seed-driven (or exact-cycle scheduled) source of cache parity
 * errors, TB entry corruptions and SBI read timeouts, each of which
 * latches a machine-check request that the EBOX dispatches through
 * the MCHK microcode to the VMS-lite handler.
 *
 * Determinism contract: every draw comes from one Rng seeded from
 * (config seed XOR machine seed), and draws happen at fixed points of
 * the single-threaded machine's cycle stream, so the same seed always
 * produces the identical fault schedule.  When no fault class is
 * enabled the injector is not even constructed -- the golden path
 * makes zero extra RNG draws and its stats dumps stay byte-identical.
 */

#ifndef UPC780_SUPPORT_FAULTINJECT_HH
#define UPC780_SUPPORT_FAULTINJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/random.hh"

namespace vax
{

namespace stats { class Registry; }
namespace snap { class Serializer; class Deserializer; }

/** Machine-check cause codes (pushed to the guest handler). */
enum class McheckCause : uint8_t {
    None = 0,
    CacheParity = 1,
    TbCorrupt = 2,
    SbiTimeout = 3,
};

/** Printable cause name. */
const char *mcheckCauseName(McheckCause c);

struct FaultConfig
{
    uint64_t seed = 0xFA17;
    double cacheParityRate = 0.0; ///< per cache read hit
    double tbCorruptRate = 0.0;   ///< per counted TB hit
    double sbiTimeoutRate = 0.0;  ///< per SBI fill transaction
    /** Exact-cycle parity schedule: the first read hit at or after
     *  each listed cycle takes a parity error (in addition to any
     *  rate-driven errors). */
    std::vector<uint64_t> parityCycles;
    /** Parity errors tolerated before the cache is disabled as the
     *  graceful-degradation fallback (0 = never disable). */
    uint32_t cacheDisableAfter = 8;
    /** Extra SBI cycles a timed-out fill takes before completing. */
    uint32_t sbiTimeoutPenalty = 64;

    /** True when any fault class can fire. */
    bool
    enabled() const
    {
        return cacheParityRate > 0.0 || tbCorruptRate > 0.0 ||
            sbiTimeoutRate > 0.0 || !parityCycles.empty();
    }

    /**
     * Parse a spec string "parity=R,tb=R,sbi=R,seed=N,disable=N,
     * penalty=N,pcycle=C[:C...]" (any subset, any order).  Unknown or
     * malformed fields are fatal: a mistyped fault campaign must not
     * silently run fault-free.
     */
    static FaultConfig parse(const std::string &spec);

    /** The UPC780_FAULTS environment variable, else defaults. */
    static FaultConfig fromEnv();

    /** Strip a "--faults SPEC" / "--faults=SPEC" flag from argv
     *  (same contract as parseJobsFlag); falls back to fromEnv(). */
    static FaultConfig parseFlag(int *argc, char **argv);
};

/** Injection and delivery counters, merged like every other stat. */
struct FaultStats
{
    uint64_t parityErrors = 0;   ///< cache parity errors injected
    uint64_t tbCorruptions = 0;  ///< TB entries corrupted
    uint64_t sbiTimeouts = 0;    ///< SBI fills timed out
    uint64_t machineChecks = 0;  ///< MCHK microcode dispatches taken
    uint64_t cacheDisables = 0;  ///< degradation fallbacks triggered
    uint64_t osMachineChecks = 0; ///< guest handler entries observed

    bool
    any() const
    {
        return parityErrors || tbCorruptions || sbiTimeouts ||
            machineChecks || cacheDisables || osMachineChecks;
    }

    void
    accumulate(const FaultStats &o, uint64_t w = 1)
    {
        parityErrors += o.parityErrors * w;
        tbCorruptions += o.tbCorruptions * w;
        sbiTimeouts += o.sbiTimeouts * w;
        machineChecks += o.machineChecks * w;
        cacheDisables += o.cacheDisables * w;
        osMachineChecks += o.osMachineChecks * w;
    }

    /** Mirror every counter into the registry under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;
};

/**
 * One machine's fault source.  MemSystem owns it (only when the
 * config enables a fault class) and hands a raw pointer to the cache,
 * TB and SBI; a null pointer there means fault-free operation.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, uint64_t machine_seed);

    /** Advance the injector's cycle clock (MemSystem::tick). */
    void tick() { ++cycle_; }
    uint64_t cycle() const { return cycle_; }

    /** @{ Draw sites, one per fault class.  Each returns true when a
     *  fault fires this reference and counts it. */
    bool drawCacheParity();
    bool drawTbCorrupt();
    bool drawSbiTimeout();
    /** @} */

    /** Latch a machine-check request (single-depth, as the real
     *  machine summarized multiple errors into one check). */
    void postMachineCheck(McheckCause cause);
    bool
    machineCheckPending() const
    {
        return pending_ != McheckCause::None;
    }
    /** Take (and clear) the pending cause; counts the dispatch. */
    McheckCause takeMachineCheck();

    /** Record the cache's degradation fallback. */
    void noteCacheDisabled() { ++stats_.cacheDisables; }

    uint32_t cacheDisableAfter() const { return cfg_.cacheDisableAfter; }
    uint32_t sbiTimeoutPenalty() const { return cfg_.sbiTimeoutPenalty; }

    const FaultStats &stats() const { return stats_; }
    const FaultConfig &config() const { return cfg_; }

    /** @{ Checkpoint/restore: RNG state, cycle clock, schedule
     *  position, pending check and stats -- a restored machine sees
     *  the identical remaining fault schedule. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    FaultConfig cfg_;
    Rng rng_;
    uint64_t cycle_ = 0;
    size_t nextParityCycle_ = 0;
    McheckCause pending_ = McheckCause::None;
    FaultStats stats_;
};

} // namespace vax

#endif // UPC780_SUPPORT_FAULTINJECT_HH
