#include "support/faultinject.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"
#include "support/snapshot.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace vax
{

const char *
mcheckCauseName(McheckCause c)
{
    switch (c) {
      case McheckCause::None:        return "none";
      case McheckCause::CacheParity: return "cache-parity";
      case McheckCause::TbCorrupt:   return "tb-corrupt";
      case McheckCause::SbiTimeout:  return "sbi-timeout";
    }
    return "?";
}

namespace
{

/** Split on a delimiter; empty fields are skipped. */
std::vector<std::string>
splitList(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t end = s.find(delim, pos);
        if (end == std::string::npos)
            end = s.size();
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

double
parseRate(const std::string &field, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || !(v >= 0.0) || v > 1.0)
        fatal("faults: bad rate '%s=%s' (want 0..1)", field.c_str(),
              value.c_str());
    return v;
}

uint64_t
parseU64(const std::string &field, const std::string &value)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(value.c_str(), &end, 0);
    if (!end || *end != '\0' || value.empty())
        fatal("faults: bad count '%s=%s'", field.c_str(),
              value.c_str());
    return v;
}

} // anonymous namespace

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig cfg;
    for (const std::string &item : splitList(spec, ',')) {
        size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("faults: malformed field '%s' (want key=value)",
                  item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "parity") {
            cfg.cacheParityRate = parseRate(key, val);
        } else if (key == "tb") {
            cfg.tbCorruptRate = parseRate(key, val);
        } else if (key == "sbi") {
            cfg.sbiTimeoutRate = parseRate(key, val);
        } else if (key == "seed") {
            cfg.seed = parseU64(key, val);
        } else if (key == "disable") {
            cfg.cacheDisableAfter =
                static_cast<uint32_t>(parseU64(key, val));
        } else if (key == "penalty") {
            cfg.sbiTimeoutPenalty =
                static_cast<uint32_t>(parseU64(key, val));
        } else if (key == "pcycle") {
            for (const std::string &c : splitList(val, ':'))
                cfg.parityCycles.push_back(parseU64(key, c));
            std::sort(cfg.parityCycles.begin(),
                      cfg.parityCycles.end());
        } else {
            fatal("faults: unknown field '%s' (have: parity, tb, sbi, "
                  "seed, disable, penalty, pcycle)",
                  key.c_str());
        }
    }
    return cfg;
}

FaultConfig
FaultConfig::fromEnv()
{
    const char *env = std::getenv("UPC780_FAULTS");
    if (!env || !*env)
        return FaultConfig();
    return parse(env);
}

FaultConfig
FaultConfig::parseFlag(int *argc, char **argv)
{
    std::string spec;
    bool have = false;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--faults") == 0 && i + 1 < *argc) {
            spec = argv[++i];
            have = true;
        } else if (std::strncmp(arg, "--faults=", 9) == 0) {
            spec = arg + 9;
            have = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return have ? parse(spec) : fromEnv();
}

void
FaultStats::regStats(stats::Registry &r,
                     const std::string &prefix) const
{
    r.addScalar(prefix + ".parityErrors",
                "cache parity errors injected", &parityErrors);
    r.addScalar(prefix + ".tbCorruptions",
                "TB entries corrupted", &tbCorruptions);
    r.addScalar(prefix + ".sbiTimeouts",
                "SBI fill transactions timed out", &sbiTimeouts);
    r.addScalar(prefix + ".machineChecks",
                "machine-check microcode dispatches", &machineChecks);
    r.addScalar(prefix + ".cacheDisables",
                "cache degradation fallbacks", &cacheDisables);
    r.addScalar(prefix + ".osMachineChecks",
                "guest machine-check handler entries",
                &osMachineChecks);
}

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             uint64_t machine_seed)
    : cfg_(cfg), rng_(cfg.seed ^ (machine_seed * 0x9E3779B97F4A7C15ULL))
{
}

bool
FaultInjector::drawCacheParity()
{
    bool fire = false;
    if (nextParityCycle_ < cfg_.parityCycles.size() &&
        cycle_ >= cfg_.parityCycles[nextParityCycle_]) {
        ++nextParityCycle_;
        fire = true;
    }
    if (!fire && cfg_.cacheParityRate > 0.0)
        fire = rng_.chance(cfg_.cacheParityRate);
    if (fire) {
        ++stats_.parityErrors;
        TRACE(Fault, "cache parity error #%llu",
              static_cast<unsigned long long>(stats_.parityErrors));
    }
    return fire;
}

bool
FaultInjector::drawTbCorrupt()
{
    if (cfg_.tbCorruptRate <= 0.0 || !rng_.chance(cfg_.tbCorruptRate))
        return false;
    ++stats_.tbCorruptions;
    TRACE(Fault, "tb entry corrupted #%llu",
          static_cast<unsigned long long>(stats_.tbCorruptions));
    return true;
}

bool
FaultInjector::drawSbiTimeout()
{
    if (cfg_.sbiTimeoutRate <= 0.0 ||
        !rng_.chance(cfg_.sbiTimeoutRate))
        return false;
    ++stats_.sbiTimeouts;
    TRACE(Fault, "sbi read timeout #%llu (+%u cycles)",
          static_cast<unsigned long long>(stats_.sbiTimeouts),
          cfg_.sbiTimeoutPenalty);
    return true;
}

void
FaultInjector::postMachineCheck(McheckCause cause)
{
    // Single-depth latch: concurrent errors are summarized into the
    // first pending check, as on the real machine.
    if (pending_ == McheckCause::None)
        pending_ = cause;
}

McheckCause
FaultInjector::takeMachineCheck()
{
    McheckCause c = pending_;
    pending_ = McheckCause::None;
    if (c != McheckCause::None) {
        ++stats_.machineChecks;
        TRACE(Fault, "machine check dispatched (%s)",
              mcheckCauseName(c));
    }
    return c;
}

void
FaultInjector::save(snap::Serializer &s) const
{
    // The config (rates, schedule, seed) is part of the machine's
    // construction; only the draw position is state.
    s.putU64(rng_.state());
    s.putU64(cycle_);
    s.putU64(nextParityCycle_);
    s.putU8(static_cast<uint8_t>(pending_));
    s.putU64(stats_.parityErrors);
    s.putU64(stats_.tbCorruptions);
    s.putU64(stats_.sbiTimeouts);
    s.putU64(stats_.machineChecks);
    s.putU64(stats_.cacheDisables);
    s.putU64(stats_.osMachineChecks);
}

void
FaultInjector::restore(snap::Deserializer &d)
{
    rng_.setState(d.getU64());
    cycle_ = d.getU64();
    nextParityCycle_ = static_cast<size_t>(d.getU64());
    pending_ = static_cast<McheckCause>(d.getU8());
    stats_.parityErrors = d.getU64();
    stats_.tbCorruptions = d.getU64();
    stats_.sbiTimeouts = d.getU64();
    stats_.machineChecks = d.getU64();
    stats_.cacheDisables = d.getU64();
    stats_.osMachineChecks = d.getU64();
}

} // namespace vax
