/**
 * @file
 * Execute flows of the CALL/RET group: CALLG/CALLS/RET and the
 * multi-register push/pop instructions.
 *
 * These flows generate the register-save traffic that makes CALL/RET
 * the dominant row of the paper's Table 8 (large write counts through
 * the one-longword write buffer produce the group's write stalls).
 */

#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::CallRet;
constexpr Row R = Row::ExecCallRet;

/** Highest set bit index <= limit, or -1. */
int
highestBit(uint32_t mask, int limit)
{
    for (int i = limit; i >= 0; --i)
        if (mask & (1u << i))
            return i;
    return -1;
}

/** Lowest set bit index, or -1. */
int
lowestBit(uint32_t mask)
{
    for (int i = 0; i < 16; ++i)
        if (mask & (1u << i))
            return i;
    return -1;
}

void
buildCall(RomCtx &c)
{
    // Shared CALL body: t0 = register-save mask, t1 = entry address,
    // t2 = new AP, t5 = S flag (CALLS).
    ULabel shared = c.lbl();
    ULabel scan = c.lbl(), pushr = c.lbl(), pushpc = c.lbl();

    // CALLS numarg.rl, dst.ab
    execEntry(c, ExecFlow::CallS, G, "CALLS", flowFall(), [](Ebox &e) {
        e.memRead(e.lat.op[1], 2); // entry mask
    }, UMemKind::Read);
    c.emitWrite(R, "CALLS.pushn", flowFall(), [](Ebox &e) {
        e.lat.t[0] = e.md() & 0x0FFF;
        e.lat.t[1] = e.lat.op[1];
        e.lat.t[5] = 1; // S flag
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.op[0], 4);
    });
    c.emit(R, "CALLS.setap", flowTo(shared), [shared](Ebox &e) {
        e.lat.t[2] = e.r(SP);
        e.uJump(shared);
    });

    // CALLG arglist.ab, dst.ab
    execEntry(c, ExecFlow::CallG, G, "CALLG", flowFall(), [](Ebox &e) {
        e.memRead(e.lat.op[1], 2);
    }, UMemKind::Read);
    c.emit(R, "CALLG.setup", flowTo(shared), [shared](Ebox &e) {
        e.lat.t[0] = e.md() & 0x0FFF;
        e.lat.t[1] = e.lat.op[1];
        e.lat.t[2] = e.lat.op[0]; // AP = arglist
        e.lat.t[5] = 0;
        e.uJump(shared);
    });

    // Shared: push registers per mask (descending), then the frame.
    c.bind(shared);
    c.emit(R, "CALL.init", flowFall(), [](Ebox &e) {
        e.lat.t[3] = e.lat.t[0]; // working mask
        e.lat.t[6] = e.md();     // keep the raw mask word
    });
    c.bind(scan);
    c.emit(R, "CALL.scan", flowTo({pushr, pushpc}).withLoopBound(13),
           [pushr, pushpc](Ebox &e) {
        int bit = highestBit(e.lat.t[3], 11);
        if (bit < 0) {
            e.uJump(pushpc);
        } else {
            e.lat.sc = static_cast<uint32_t>(bit);
            e.uJump(pushr);
        }
    });
    c.bind(pushr);
    c.emitWrite(R, "CALL.pushr", flowTo(scan), [scan](Ebox &e) {
        e.lat.t[3] &= ~(1u << e.lat.sc);
        e.r(SP) -= 4;
        e.uJump(scan);
        e.memWrite(e.r(SP), e.r(e.lat.sc), 4);
    });
    c.bind(pushpc);
    // Stack alignment and probe cycles of the real CALL microcode.
    c.emit(R, "CALL.salign", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(R, "CALL.sprobe", flowFall(), [](Ebox &e) { (void)e; });
    c.emitWrite(R, "CALL.pushpc", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.decodePc(), 4);
    });
    c.emitWrite(R, "CALL.pushfp", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.r(FP), 4);
    });
    c.emitWrite(R, "CALL.pushap", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.r(AP), 4);
    });
    c.emitWrite(R, "CALL.pushmsk", flowFall(), [](Ebox &e) {
        uint32_t w = e.lat.t[0] | (e.lat.t[5] << 29);
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), w, 4);
    });
    c.emitWrite(R, "CALL.pushhnd", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), 0, 4);
    });
    c.emit(R, "CALL.fin", flowEnd(), [](Ebox &e) {
        e.r(FP) = e.r(SP);
        e.r(AP) = e.lat.t[2];
        e.psl().cc = CondCodes();
        e.redirect(e.lat.t[1] + 2); // skip the entry mask
        e.endInstruction();
    });
}

void
buildRet(RomCtx &c)
{
    ULabel popscan = c.lbl(), popr = c.lbl(), popdone = c.lbl();
    ULabel popargs = c.lbl(), fin = c.lbl();

    execEntry(c, ExecFlow::Ret, G, "RET", flowFall(), [](Ebox &e) {
        e.memRead(e.r(FP) + 4, 4); // mask/flags longword
    }, UMemKind::Read);
    c.emit(R, "RET.mask", flowFall(), [](Ebox &e) {
        e.lat.t[0] = e.md() & 0x0FFF;
        e.lat.t[5] = (e.md() >> 29) & 1;
        e.r(SP) = e.r(FP) + 8;
    });
    // Frame consistency checks and PSW restore of the real microcode.
    c.emit(R, "RET.chk1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(R, "RET.chk2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(R, "RET.psw", flowFall(), [](Ebox &e) { (void)e; });
    c.emitRead(R, "RET.rdap", flowFall(), [](Ebox &e) {
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    });
    c.emitRead(R, "RET.rdfp", flowFall(), [](Ebox &e) {
        e.r(AP) = e.md();
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    });
    c.emitRead(R, "RET.rdpc", flowFall(), [](Ebox &e) {
        e.r(FP) = e.md();
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    });
    c.emit(R, "RET.savepc", flowTo(popscan), [popscan](Ebox &e) {
        e.lat.t[4] = e.md();
        e.uJump(popscan);
    });
    c.bind(popscan);
    c.emit(R, "RET.scan", flowTo({popr, popdone}).withLoopBound(13),
           [popr, popdone](Ebox &e) {
        int bit = lowestBit(e.lat.t[0]);
        if (bit < 0) {
            e.uJump(popdone);
        } else {
            e.lat.sc = static_cast<uint32_t>(bit);
            e.uJump(popr);
        }
    });
    c.bind(popr);
    c.emitRead(R, "RET.popr", flowFall(), [](Ebox &e) {
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    });
    c.emit(R, "RET.wreg", flowTo(popscan), [popscan](Ebox &e) {
        e.r(e.lat.sc) = e.md();
        e.lat.t[0] &= ~(1u << e.lat.sc);
        e.uJump(popscan);
    });
    c.bind(popdone);
    c.emit(R, "RET.sflag", flowTo({popargs, fin}), [popargs, fin](Ebox &e) {
        e.uJump(e.lat.t[5] ? popargs : fin);
    });
    c.bind(popargs);
    c.emitRead(R, "RET.rdn", flowFall(), [](Ebox &e) { e.memRead(e.r(SP), 4); });
    c.emit(R, "RET.popn", flowTo(fin), [fin](Ebox &e) {
        e.r(SP) += 4 + 4 * (e.md() & 0xFF);
        e.uJump(fin);
    });
    c.bind(fin);
    c.emit(R, "RET.go", flowEnd(), [](Ebox &e) {
        e.redirect(e.lat.t[4]);
        e.endInstruction();
    });
}

void
buildPushPopR(RomCtx &c)
{
    // PUSHR mask.rw: push registers per mask, descending.
    {
        ULabel scan = c.lbl(), push = c.lbl(), done = c.lbl();
        execEntry(c, ExecFlow::PushR, G, "PUSHR", flowTo(scan), [scan](Ebox &e) {
            e.lat.t[0] = e.lat.op[0] & 0x7FFF;
            e.uJump(scan);
        });
        c.bind(scan);
        c.emit(R, "PUSHR.scan", flowTo({push, done}).withLoopBound(16),
               [push, done](Ebox &e) {
            int bit = highestBit(e.lat.t[0], 14);
            if (bit < 0) {
                e.uJump(done);
            } else {
                e.lat.sc = static_cast<uint32_t>(bit);
                e.uJump(push);
            }
        });
        c.bind(push);
        c.emitWrite(R, "PUSHR.push", flowTo(scan), [scan](Ebox &e) {
            e.lat.t[0] &= ~(1u << e.lat.sc);
            e.r(SP) -= 4;
            e.uJump(scan);
            e.memWrite(e.r(SP), e.r(e.lat.sc), 4);
        });
        c.bind(done);
        c.emit(R, "PUSHR.fin", flowEnd(), [](Ebox &e) { e.endInstruction(); });
    }

    // POPR mask.rw: pop registers per mask, ascending.
    {
        ULabel scan = c.lbl(), pop = c.lbl(), done = c.lbl();
        execEntry(c, ExecFlow::PopR, G, "POPR", flowTo(scan), [scan](Ebox &e) {
            e.lat.t[0] = e.lat.op[0] & 0x7FFF;
            e.uJump(scan);
        });
        c.bind(scan);
        c.emit(R, "POPR.scan", flowTo({pop, done}).withLoopBound(16),
               [pop, done](Ebox &e) {
            int bit = lowestBit(e.lat.t[0]);
            if (bit < 0) {
                e.uJump(done);
            } else {
                e.lat.sc = static_cast<uint32_t>(bit);
                e.uJump(pop);
            }
        });
        c.bind(pop);
        c.emitRead(R, "POPR.pop", flowFall(), [](Ebox &e) {
            e.memRead(e.r(SP), 4);
            e.r(SP) += 4;
        });
        c.emit(R, "POPR.wreg", flowTo(scan), [scan](Ebox &e) {
            e.r(e.lat.sc) = e.md();
            e.lat.t[0] &= ~(1u << e.lat.sc);
            e.uJump(scan);
        });
        c.bind(done);
        c.emit(R, "POPR.fin", flowEnd(), [](Ebox &e) { e.endInstruction(); });
    }
}

} // anonymous namespace

void
buildCallRetFlows(RomCtx &c)
{
    buildCall(c);
    buildRet(c);
    buildPushPopR(c);
}

} // namespace vax
