/**
 * @file
 * Static per-address annotations of the control store.
 *
 * The UPC monitor records only (micro-address, stalled?) counts.  To
 * turn those counts into the paper's tables, the analyst needs to know
 * what each control-store location *is*: which activity row of Table 8
 * it belongs to, whether the microinstruction issues a read or a write
 * (stall classification), whether it requests bytes from the IB, and
 * whether it marks a countable event (instruction decode, specifier
 * entry, execute-flow entry, taken branch, TB-miss service entry...).
 *
 * This mirrors what Emer & Clark did by hand with DEC's microcode
 * listings; here the annotations are emitted together with the
 * microcode itself.
 */

#ifndef UPC780_UCODE_ANNOTATIONS_HH
#define UPC780_UCODE_ANNOTATIONS_HH

#include <cstdint>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "arch/types.hh"

namespace vax
{

/** Micro-address. */
using UAddr = uint16_t;

/** Activity rows of Table 8. */
enum class Row : uint8_t {
    Decode,      ///< the one non-overlapped I-Decode cycle (IID)
    Spec1,       ///< first-specifier processing
    Spec26,      ///< specifiers 2-6 (and shared/indexed flows)
    Bdisp,       ///< branch displacement processing
    ExecSimple,
    ExecField,
    ExecFloat,
    ExecCallRet,
    ExecSystem,
    ExecCharacter,
    ExecDecimal,
    IntExcept,   ///< interrupt and exception microcode
    MemMgmt,     ///< TB miss service and alignment microcode
    Abort,       ///< abort cycles (one per microcode trap)
    NumRows,
};

/** Printable name of a Table 8 row. */
const char *rowName(Row r);

/** Map an instruction group to its execute row. */
Row execRowFor(Group g);

/** Memory behaviour of a microinstruction (stall classification). */
enum class UMemKind : uint8_t { None, Read, Write };

/** Countable-event markers attached to specific micro-addresses. */
enum class UMark : uint8_t {
    None,
    Iid,           ///< instruction decode: count = instructions
    Spec1Decode,   ///< first-specifier decode request
    Spec26Decode,  ///< subsequent-specifier decode request
    SpecModeEntry, ///< entry of a specifier-mode routine
    SpecIndexed,   ///< entry of the shared index-prefix routine
    ExecEntry,     ///< entry of an execute flow
    BranchTaken,   ///< PC actually changed (redirect cycle)
    BdispFetch,    ///< branch displacement fetched and target computed
    TbMissD,       ///< D-stream TB miss service entry
    TbMissI,       ///< I-stream TB miss service entry
    InterruptEntry,
    SwIntRequest,  ///< software interrupt requested (MTPR SIRR)
    CtxSwitch,     ///< LDPCTX entry: one per context switch
    UnalignedEntry,
    ExceptionEntry,
};

/**
 * Full annotation of one control-store location.
 */
struct UAnnotation
{
    Row row = Row::ExecSimple;
    UMemKind mem = UMemKind::None;
    bool ibRequest = false;       ///< may consume IB bytes (IB stall)
    UMark mark = UMark::None;
    // Mark parameters (valid depending on mark):
    AddrMode specMode = AddrMode::Register; ///< for SpecModeEntry
    bool spec1 = false;                     ///< for SpecModeEntry
    ExecFlow flow = ExecFlow::None;         ///< for ExecEntry
    PcChangeKind pck = PcChangeKind::None;  ///< for BranchTaken
    const char *name = "";                  ///< routine/uword label
};

/** Columns of the paper's Table 8. */
enum class TimeCol : uint8_t {
    Compute, Read, RStall, Write, WStall, IbStall, NumCols,
};

/** Printable name of a Table 8 column. */
const char *timeColName(TimeCol c);

/**
 * The (normal, stalled) Table 8 columns a word's histogram banks
 * classify into, shared between the runtime HistogramAnalyzer and the
 * static verifier so there is exactly one Row x TimeCol mapping.  A
 * word that both requests IB bytes and references memory
 * (displacement-mode operand fetch) has its stalled bank attributed
 * to the memory column: the two-bank board cannot split it, exactly
 * as on the real monitor.  stallLegal is false for words that neither
 * reference memory nor request IB bytes -- a stalled count there is a
 * simulator bug.
 */
struct TimeColPair
{
    TimeCol normal;
    TimeCol stalled;
    bool stallLegal;
};

TimeColPair timeColsFor(const UAnnotation &ann);

} // namespace vax

#endif // UPC780_UCODE_ANNOTATIONS_HH
