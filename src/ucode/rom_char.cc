/**
 * @file
 * Execute flows of the CHARACTER group.
 *
 * The MOVC inner loop is deliberately six cycles per transfer unit:
 * the real microcode was written to issue writes no more often than
 * every sixth cycle so the one-longword write buffer never stalls it
 * (the paper points this out when explaining why CHARACTER shows so
 * little write stall).
 */

#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::Character;
constexpr Row R = Row::ExecCharacter;

/** Transfer unit: 4 when both pointers are aligned and len >= 4. */
uint32_t
moveUnit(uint32_t len, uint32_t src, uint32_t dst)
{
    return (len >= 4 && (src & 3) == 0 && (dst & 3) == 0) ? 4 : 1;
}

void
buildMovc(RomCtx &c)
{
    // MOVC3 len.rw, srcaddr.ab, dstaddr.ab.
    // R0 = remaining length, R1 = src, R3 = dst (per the architecture).
    {
        ULabel loop = c.lbl(), done = c.lbl();
        execEntry(c, ExecFlow::MovC3, G, "MOVC3",
                  flowTo({loop, done}), [loop, done](Ebox &e) {
            e.r(R0) = e.lat.op[0] & 0xFFFF;
            e.r(R1) = e.lat.op[1];
            e.r(R3) = e.lat.op[2];
            e.uJump(e.r(R0) ? loop : done);
        });
        c.bind(loop);
        c.emit(R, "MOVC3.l0", flowFall(), [](Ebox &e) {
            e.lat.sc = moveUnit(e.r(R0), e.r(R1), e.r(R3));
        });
        c.emitRead(R, "MOVC3.read", flowFall(), [](Ebox &e) {
            e.memRead(e.r(R1), e.lat.sc);
        });
        c.emit(R, "MOVC3.hold", flowFall(), [](Ebox &e) { e.lat.t[1] = e.md(); });
        c.emit(R, "MOVC3.pad", flowFall(), [](Ebox &e) {
            // Pointer update bookkeeping; spaces the writes six cycles
            // apart so they never stall on the write buffer.
            e.r(R1) += e.lat.sc;
        });
        c.emitWrite(R, "MOVC3.write", flowFall(), [](Ebox &e) {
            e.memWrite(e.r(R3), e.lat.t[1], e.lat.sc);
        });
        c.emit(R, "MOVC3.next", flowTo({loop, done}).withLoopBound(65535),
               [loop, done](Ebox &e) {
            e.r(R3) += e.lat.sc;
            e.r(R0) -= e.lat.sc;
            e.uJump(e.r(R0) ? loop : done);
        });
        c.bind(done);
        c.emit(R, "MOVC3.fin", flowEnd(), [](Ebox &e) {
            e.r(R2) = 0;
            e.r(R4) = 0;
            e.r(R5) = 0;
            e.psl().cc = CondCodes();
            e.psl().cc.z = true;
            e.endInstruction();
        });
    }

    // MOVC5 srclen.rw, srcaddr.ab, fill.rb, dstlen.rw, dstaddr.ab.
    {
        ULabel loop = c.lbl(), fill = c.lbl(), done = c.lbl();
        execEntry(c, ExecFlow::MovC5, G, "MOVC5",
                  flowTo({loop, fill, done}), [loop, fill, done](Ebox &e) {
                      uint32_t srclen = e.lat.op[0] & 0xFFFF;
                      uint32_t dstlen = e.lat.op[3] & 0xFFFF;
                      e.r(R1) = e.lat.op[1];
                      e.r(R3) = e.lat.op[4];
                      uint32_t n = srclen < dstlen ? srclen : dstlen;
                      e.r(R0) = srclen - n;   // unmoved source bytes
                      e.lat.t[0] = n;         // bytes to move
                      e.lat.t[2] = dstlen - n; // bytes to fill
                      // Condition codes per srclen vs dstlen.
                      cmpCc(srclen, dstlen, DataType::Word, &e.psl());
                      if (n)
                          e.uJump(loop);
                      else if (e.lat.t[2])
                          e.uJump(fill);
                      else
                          e.uJump(done);
                  });
        c.bind(loop);
        c.emit(R, "MOVC5.l0", flowFall(), [](Ebox &e) {
            e.lat.sc = moveUnit(e.lat.t[0], e.r(R1), e.r(R3));
        });
        c.emitRead(R, "MOVC5.read", flowFall(), [](Ebox &e) {
            e.memRead(e.r(R1), e.lat.sc);
        });
        c.emit(R, "MOVC5.hold", flowFall(), [](Ebox &e) { e.lat.t[1] = e.md(); });
        c.emit(R, "MOVC5.pad", flowFall(), [](Ebox &e) { e.r(R1) += e.lat.sc; });
        c.emitWrite(R, "MOVC5.write", flowFall(), [](Ebox &e) {
            e.memWrite(e.r(R3), e.lat.t[1], e.lat.sc);
        });
        c.emit(R, "MOVC5.next",
               flowTo({loop, fill, done}).withLoopBound(65535),
               [loop, fill, done](Ebox &e) {
            e.r(R3) += e.lat.sc;
            e.lat.t[0] -= e.lat.sc;
            if (e.lat.t[0])
                e.uJump(loop);
            else if (e.lat.t[2])
                e.uJump(fill);
            else
                e.uJump(done);
        });
        c.bind(fill);
        c.emit(R, "MOVC5.f0", flowFall(), [](Ebox &e) {
            uint32_t u = (e.lat.t[2] >= 4 && (e.r(R3) & 3) == 0) ? 4
                                                                 : 1;
            e.lat.sc = u;
            uint32_t f = e.lat.op[2] & 0xFF;
            e.lat.t[1] = f | (f << 8) | (f << 16) | (f << 24);
        });
        c.emit(R, "MOVC5.fpad", flowFall(), [](Ebox &e) { (void)e; });
        c.emitWrite(R, "MOVC5.fwrite", flowFall(), [](Ebox &e) {
            e.memWrite(e.r(R3), e.lat.t[1], e.lat.sc);
        });
        c.emit(R, "MOVC5.fnext", flowTo({fill, done}).withLoopBound(65535),
               [fill, done](Ebox &e) {
            e.r(R3) += e.lat.sc;
            e.lat.t[2] -= e.lat.sc;
            e.uJump(e.lat.t[2] ? fill : done);
        });
        c.bind(done);
        c.emit(R, "MOVC5.fin", flowEnd(), [](Ebox &e) {
            e.r(R2) = 0;
            e.r(R4) = 0;
            e.r(R5) = 0;
            e.endInstruction();
        });
    }
}

void
buildCmpc(RomCtx &c)
{
    // CMPC3 len.rw, src1addr.ab, src2addr.ab (CMPC5 shares the flow;
    // its extra operands make the lengths differ and add a fill
    // comparison, which we fold into the same loop semantics).
    ULabel loop = c.lbl(), done = c.lbl(), neq = c.lbl();
    execEntry(c, ExecFlow::CmpC, G, "CMPC", flowTo({loop, done}),
              [loop, done](Ebox &e) {
        bool five = e.lat.opcode == op::CMPC5;
        uint32_t len1 = e.lat.op[0] & 0xFFFF;
        e.r(R1) = e.lat.op[1];
        if (five) {
            e.lat.t[3] = e.lat.op[2] & 0xFF; // fill
            e.lat.t[4] = e.lat.op[3] & 0xFFFF; // len2
            e.r(R3) = e.lat.op[4];
        } else {
            e.lat.t[4] = len1;
            e.r(R3) = e.lat.op[2];
        }
        e.r(R0) = len1;
        e.r(R2) = e.lat.t[4];
        e.psl().cc = CondCodes();
        e.psl().cc.z = true;
        e.uJump((e.r(R0) || e.r(R2)) ? loop : done);
    });
    c.bind(loop);
    c.emitRead(R, "CMPC.read1", flowFall(), [](Ebox &e) {
        // Reading past a string's end compares against the fill byte;
        // model the read only when bytes remain.
        if (e.r(R0))
            e.memRead(e.r(R1), 1);
        else
            e.setMd(e.lat.t[3]);
    });
    c.emit(R, "CMPC.hold", flowFall(), [](Ebox &e) { e.lat.t[1] = e.md() & 0xFF; });
    c.emitRead(R, "CMPC.read2", flowFall(), [](Ebox &e) {
        if (e.r(R2))
            e.memRead(e.r(R3), 1);
        else
            e.setMd(e.lat.t[3]);
    });
    c.emit(R, "CMPC.cmp", flowTo({loop, done, neq}).withLoopBound(65535),
           [loop, done, neq](Ebox &e) {
        uint32_t b2 = e.md() & 0xFF;
        if (e.lat.t[1] != b2) {
            e.uJump(neq);
            return;
        }
        if (e.r(R0)) {
            --e.r(R0);
            ++e.r(R1);
        }
        if (e.r(R2)) {
            --e.r(R2);
            ++e.r(R3);
        }
        e.uJump((e.r(R0) || e.r(R2)) ? loop : done);
    });
    c.bind(neq);
    c.emit(R, "CMPC.neq", flowEnd(), [](Ebox &e) {
        cmpCc(e.lat.t[1], e.md() & 0xFF, DataType::Byte, &e.psl());
        e.endInstruction();
    });
    c.bind(done);
    c.emit(R, "CMPC.fin", flowEnd(), [](Ebox &e) { e.endInstruction(); });
}

void
buildScan(RomCtx &c)
{
    // LOCC/SKPC char.rb, len.rw, addr.ab: find the (first byte ==
    // char) / (first byte != char).  R0 = remaining, R1 = location.
    {
        ULabel loop = c.lbl(), found = c.lbl(), done = c.lbl();
        execEntry(c, ExecFlow::Locc, G, "LOCC", flowTo({loop, done}),
                  [loop, done](Ebox &e) {
            e.r(R0) = e.lat.op[1] & 0xFFFF;
            e.r(R1) = e.lat.op[2];
            e.lat.t[0] = e.lat.op[0] & 0xFF;
            e.uJump(e.r(R0) ? loop : done);
        });
        c.bind(loop);
        c.emit(R, "LOCC.l0", flowFall(), [](Ebox &e) {
            e.lat.sc = (e.r(R0) >= 4 && (e.r(R1) & 3) == 0) ? 4 : 1;
        });
        c.emitRead(R, "LOCC.read", flowFall(), [](Ebox &e) {
            e.memRead(e.r(R1), e.lat.sc);
        });
        c.emit(R, "LOCC.scan",
               flowTo({loop, found, done}).withLoopBound(65535),
               [loop, found, done](Ebox &e) {
            bool want_eq = e.lat.opcode == op::LOCC;
            for (uint32_t i = 0; i < e.lat.sc; ++i) {
                uint32_t b = (e.md() >> (8 * i)) & 0xFF;
                if ((b == e.lat.t[0]) == want_eq) {
                    e.r(R0) -= i;
                    e.r(R1) += i;
                    e.uJump(found);
                    return;
                }
            }
            e.r(R0) -= e.lat.sc;
            e.r(R1) += e.lat.sc;
            e.uJump(e.r(R0) ? loop : done);
        });
        c.bind(found);
        c.emit(R, "LOCC.found", flowEnd(), [](Ebox &e) {
            e.psl().cc = CondCodes();
            e.psl().cc.z = false;
            e.endInstruction();
        });
        c.bind(done);
        c.emit(R, "LOCC.done", flowEnd(), [](Ebox &e) {
            e.psl().cc = CondCodes();
            e.psl().cc.z = true; // not found: R0 == 0
            e.endInstruction();
        });
    }

    // SCANC/SPANC len.rw, addr.ab, tbladdr.ab, mask.rb: per-byte
    // table lookup (two reads per byte, as on the real machine).
    {
        ULabel loop = c.lbl(), found = c.lbl(), done = c.lbl();
        execEntry(c, ExecFlow::Scanc, G, "SCANC", flowTo({loop, done}),
                  [loop, done](Ebox &e) {
            e.r(R0) = e.lat.op[0] & 0xFFFF;
            e.r(R1) = e.lat.op[1];
            e.r(R3) = e.lat.op[2];         // table
            e.lat.t[0] = e.lat.op[3] & 0xFF; // mask
            e.uJump(e.r(R0) ? loop : done);
        });
        c.bind(loop);
        c.emitRead(R, "SCANC.rbyte", flowFall(), [](Ebox &e) {
            e.memRead(e.r(R1), 1);
        });
        c.emitRead(R, "SCANC.rtbl", flowFall(), [](Ebox &e) {
            e.memRead(e.r(R3) + (e.md() & 0xFF), 1);
        });
        c.emit(R, "SCANC.test",
               flowTo({loop, found, done}).withLoopBound(65535),
               [loop, found, done](Ebox &e) {
            bool hit = (e.md() & e.lat.t[0]) != 0;
            if (e.lat.opcode == op::SPANC)
                hit = !hit;
            if (hit) {
                e.uJump(found);
                return;
            }
            --e.r(R0);
            ++e.r(R1);
            e.uJump(e.r(R0) ? loop : done);
        });
        c.bind(found);
        c.emit(R, "SCANC.found", flowEnd(), [](Ebox &e) {
            e.psl().cc = CondCodes();
            e.psl().cc.z = false;
            e.endInstruction();
        });
        c.bind(done);
        c.emit(R, "SCANC.done", flowEnd(), [](Ebox &e) {
            e.psl().cc = CondCodes();
            e.psl().cc.z = true;
            e.endInstruction();
        });
    }
}

} // anonymous namespace

void
buildCharacterFlows(RomCtx &c)
{
    buildMovc(c);
    buildCmpc(c);
    buildScan(c);
}

} // namespace vax
