#include "ucode/control_store.hh"

#include "support/logging.hh"

namespace vax
{

const char *
rowName(Row r)
{
    switch (r) {
      case Row::Decode:        return "Decode";
      case Row::Spec1:         return "SPEC1";
      case Row::Spec26:        return "SPEC2-6";
      case Row::Bdisp:         return "B-DISP";
      case Row::ExecSimple:    return "Simple";
      case Row::ExecField:     return "Field";
      case Row::ExecFloat:     return "Float";
      case Row::ExecCallRet:   return "Call/Ret";
      case Row::ExecSystem:    return "System";
      case Row::ExecCharacter: return "Character";
      case Row::ExecDecimal:   return "Decimal";
      case Row::IntExcept:     return "Int/Except";
      case Row::MemMgmt:       return "Mem Mgmt";
      case Row::Abort:         return "Abort";
      default:                 return "?";
    }
}

Row
execRowFor(Group g)
{
    switch (g) {
      case Group::Simple:    return Row::ExecSimple;
      case Group::Field:     return Row::ExecField;
      case Group::Float:     return Row::ExecFloat;
      case Group::CallRet:   return Row::ExecCallRet;
      case Group::System:    return Row::ExecSystem;
      case Group::Character: return Row::ExecCharacter;
      case Group::Decimal:   return Row::ExecDecimal;
      default: panic("bad group");
    }
}

SpecAccClass
specAccClass(Access a)
{
    switch (a) {
      case Access::Read:    return SpecAccClass::Read;
      case Access::Write:   return SpecAccClass::Write;
      case Access::Modify:  return SpecAccClass::Modify;
      case Access::Address:
      case Access::Field:   return SpecAccClass::Addr;
      case Access::Branch:  break;
    }
    panic("branch operand has no specifier class");
}

UAddr
ControlStore::labelAddr(ULabel l) const
{
    upc_assert(l < labels_.size());
    int32_t a = labels_[l];
    if (a < 0)
        panic("microcode label %u used but never bound", l);
    return static_cast<UAddr>(a);
}

UAddr
MicroAssembler::emit(const UAnnotation &ann, USem sem)
{
    if (cs_.words_.size() >= ControlStore::capacity)
        panic("control store exceeds the %u-location histogram board",
              ControlStore::capacity);
    cs_.words_.push_back(MicroWord{std::move(sem), ann});
    return static_cast<UAddr>(cs_.words_.size() - 1);
}

ULabel
MicroAssembler::newLabel()
{
    cs_.labels_.push_back(-1);
    return static_cast<ULabel>(cs_.labels_.size() - 1);
}

void
MicroAssembler::bind(ULabel l)
{
    bindAt(l, here());
}

void
MicroAssembler::bindAt(ULabel l, UAddr a)
{
    upc_assert(l < cs_.labels_.size());
    upc_assert(cs_.labels_[l] < 0);
    cs_.labels_[l] = a;
}

} // namespace vax
