#include "ucode/control_store.hh"

#include <algorithm>
#include <cstddef>

#include "support/logging.hh"

namespace vax
{

const char *
rowName(Row r)
{
    switch (r) {
      case Row::Decode:        return "Decode";
      case Row::Spec1:         return "SPEC1";
      case Row::Spec26:        return "SPEC2-6";
      case Row::Bdisp:         return "B-DISP";
      case Row::ExecSimple:    return "Simple";
      case Row::ExecField:     return "Field";
      case Row::ExecFloat:     return "Float";
      case Row::ExecCallRet:   return "Call/Ret";
      case Row::ExecSystem:    return "System";
      case Row::ExecCharacter: return "Character";
      case Row::ExecDecimal:   return "Decimal";
      case Row::IntExcept:     return "Int/Except";
      case Row::MemMgmt:       return "Mem Mgmt";
      case Row::Abort:         return "Abort";
      default:                 return "?";
    }
}

Row
execRowFor(Group g)
{
    switch (g) {
      case Group::Simple:    return Row::ExecSimple;
      case Group::Field:     return Row::ExecField;
      case Group::Float:     return Row::ExecFloat;
      case Group::CallRet:   return Row::ExecCallRet;
      case Group::System:    return Row::ExecSystem;
      case Group::Character: return Row::ExecCharacter;
      case Group::Decimal:   return Row::ExecDecimal;
      default: panic("bad group");
    }
}

const char *
timeColName(TimeCol c)
{
    switch (c) {
      case TimeCol::Compute: return "Compute";
      case TimeCol::Read:    return "Read";
      case TimeCol::RStall:  return "R-Stall";
      case TimeCol::Write:   return "Write";
      case TimeCol::WStall:  return "W-Stall";
      case TimeCol::IbStall: return "IB-Stall";
      default:               return "?";
    }
}

TimeColPair
timeColsFor(const UAnnotation &ann)
{
    switch (ann.mem) {
      case UMemKind::Read:
        return {TimeCol::Read, TimeCol::RStall, true};
      case UMemKind::Write:
        return {TimeCol::Write, TimeCol::WStall, true};
      case UMemKind::None:
        break;
    }
    // Only IB requesters may stall at a non-memory word.
    return {TimeCol::Compute, TimeCol::IbStall, ann.ibRequest};
}

void
badBranchOperandClass()
{
    panic("branch operand has no specifier class");
}

void
badMicroAddress(UAddr a, size_t size)
{
    if (a == kInvalidUAddr)
        panic("micro-address is the kInvalidUAddr sentinel: dispatch "
              "through an unset entry-point slot");
    panic("micro-address %u outside the %zu-word control store",
          static_cast<unsigned>(a), size);
}

void
ControlStore::badLabel(ULabel l) const
{
    if (l >= labels_.size())
        panic("micro-label %u outside the %zu-entry label table", l,
              labels_.size());
    panic("microcode label %u used but never bound", l);
}

namespace
{

void
pushValid(std::vector<UAddr> &v, UAddr a)
{
    if (a != kInvalidUAddr)
        v.push_back(a);
}

} // anonymous namespace

void
ControlStore::resolveFlows()
{
    const size_t n = words_.size();
    succ_.assign(n, {});

    // The decode dispatch set: everything trySpecDispatch(),
    // decodeOpcode() and nextSpecOrExec() can select.  A single set
    // for both specifier positions is a deliberate over-approximation;
    // the verifier's entry checks keep the tables themselves honest.
    std::vector<UAddr> dispatch_set;
    pushValid(dispatch_set, entries.specWait[0]);
    pushValid(dispatch_set, entries.specWait[1]);
    pushValid(dispatch_set, entries.indexPrefix[0]);
    pushValid(dispatch_set, entries.indexPrefix[1]);
    for (const auto &mode : entries.spec)
        for (const auto &pos : mode)
            for (UAddr cls : pos)
                pushValid(dispatch_set, cls);
    for (UAddr e : entries.exec)
        pushValid(dispatch_set, e);

    // The index prefix dispatches into the SPEC2-6 copy of the base
    // mode routine (Ebox::spec26Entry).
    std::vector<UAddr> spec26_set;
    for (const auto &mode : entries.spec)
        for (UAddr cls : mode[1])
            pushValid(spec26_set, cls);

    // endInstruction() resolves to IID, or to the interrupt or
    // machine-check dispatch when one is pending.
    std::vector<UAddr> end_set;
    pushValid(end_set, entries.iid);
    pushValid(end_set, entries.interrupt);
    pushValid(end_set, entries.machineCheck);

    // uRet() returns to some recorded call site + 1.  With a single
    // micro-subroutine this global set is exact; with more it is the
    // usual sound over-approximation.
    std::vector<UAddr> ret_set;
    for (size_t a = 0; a < n; ++a)
        if (!flows_[a].calls.empty() && a + 1 < n)
            ret_set.push_back(static_cast<UAddr>(a + 1));

    for (size_t a = 0; a < n; ++a) {
        const UFlow &f = flows_[a];
        std::vector<UAddr> &s = succ_[a];
        if (f.fall && a + 1 < n)
            s.push_back(static_cast<UAddr>(a + 1));
        for (ULabel l : f.targets) {
            int32_t t = labelBinding(l);
            if (t >= 0 && static_cast<size_t>(t) < n)
                s.push_back(static_cast<UAddr>(t));
        }
        for (ULabel l : f.calls) {
            int32_t t = labelBinding(l);
            if (t >= 0 && static_cast<size_t>(t) < n)
                s.push_back(static_cast<UAddr>(t));
        }
        for (UAddr t : f.rawTargets)
            if (t < n)
                s.push_back(t);
        if (f.end)
            s.insert(s.end(), end_set.begin(), end_set.end());
        if (f.dispatch)
            s.insert(s.end(), dispatch_set.begin(), dispatch_set.end());
        if (f.spec26)
            s.insert(s.end(), spec26_set.begin(), spec26_set.end());
        if (f.ret)
            s.insert(s.end(), ret_set.begin(), ret_set.end());
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    resolved_ = true;
}

const std::vector<UAddr> &
ControlStore::successors(UAddr a) const
{
    upc_assert(resolved_);
    check(a);
    return succ_[a];
}

bool
ControlStore::flowAllows(UAddr from, UAddr to) const
{
    const std::vector<UAddr> &s = successors(from);
    return std::binary_search(s.begin(), s.end(), to);
}

void *
ControlStore::semArenaAlloc(size_t size, size_t align)
{
    constexpr size_t chunkBytes = 64 * 1024;
    upc_assert(size <= chunkBytes && align <= alignof(std::max_align_t));
    size_t at = (semChunkUsed_ + align - 1) & ~(align - 1);
    if (semChunks_.empty() || at + size > chunkBytes) {
        semChunks_.push_back(
            std::make_unique<unsigned char[]>(chunkBytes));
        at = 0;
    }
    semChunkUsed_ = at + size;
    return semChunks_.back().get() + at;
}

UAddr
MicroAssembler::emitWord(const UAnnotation &ann, UFlow flow, USem sem,
                         DecodedWord decoded)
{
    if (cs_.words_.size() >= ControlStore::capacity)
        panic("control store exceeds the %u-location histogram board",
              ControlStore::capacity);
    cs_.words_.push_back(MicroWord{std::move(sem), ann});
    cs_.decoded_.push_back(decoded);
    cs_.flows_.push_back(std::move(flow));
    cs_.resolved_ = false;
    return static_cast<UAddr>(cs_.words_.size() - 1);
}

ULabel
MicroAssembler::newLabel()
{
    cs_.labels_.push_back(-1);
    return static_cast<ULabel>(cs_.labels_.size() - 1);
}

void
MicroAssembler::bind(ULabel l)
{
    bindAt(l, here());
}

void
MicroAssembler::bindAt(ULabel l, UAddr a)
{
    upc_assert(l < cs_.labels_.size());
    upc_assert(cs_.labels_[l] < 0);
    cs_.labels_[l] = a;
}

} // namespace vax
