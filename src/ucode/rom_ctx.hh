/**
 * @file
 * Internal context shared by the rom_*.cc microcode builders.
 *
 * Every emit helper takes an explicit UFlow: the builder declares the
 * successor edges of each microword alongside its annotation, and the
 * static verifier (src/analysis) lints the declared micro-CFG while
 * the EBOX can check executed transitions against it.
 */

#ifndef UPC780_UCODE_ROM_CTX_HH
#define UPC780_UCODE_ROM_CTX_HH

#include "cpu/ebox.hh"
#include "ucode/control_store.hh"
#include "ucode/uops.hh"

namespace vax
{

struct RomCtx
{
    explicit RomCtx(ControlStore &cs) : ua(cs), ep(cs.entries) {}

    MicroAssembler ua;
    EntryPoints &ep;

    UAnnotation
    ann(Row row, const char *name) const
    {
        UAnnotation a;
        a.row = row;
        a.name = name;
        return a;
    }

    // The emit helpers forward the callable's concrete type to
    // MicroAssembler::emit, which packs its captures into the decoded
    // dispatch table (type-erasing here would force every word onto
    // the boxed fallback path).

    /** Plain compute microword. */
    template <typename F>
    UAddr
    emit(Row row, const char *name, UFlow f, F &&s)
    {
        return ua.emit(ann(row, name), std::move(f),
                       std::forward<F>(s));
    }

    /** Microword that issues a D-stream (or physical) read. */
    template <typename F>
    UAddr
    emitRead(Row row, const char *name, UFlow f, F &&s)
    {
        UAnnotation a = ann(row, name);
        a.mem = UMemKind::Read;
        return ua.emit(a, std::move(f), std::forward<F>(s));
    }

    /** Microword that issues a write. */
    template <typename F>
    UAddr
    emitWrite(Row row, const char *name, UFlow f, F &&s)
    {
        UAnnotation a = ann(row, name);
        a.mem = UMemKind::Write;
        return ua.emit(a, std::move(f), std::forward<F>(s));
    }

    /** Microword that requests bytes from the IB (may IB-stall). */
    template <typename F>
    UAddr
    emitIb(Row row, const char *name, UFlow f, F &&s)
    {
        UAnnotation a = ann(row, name);
        a.ibRequest = true;
        return ua.emit(a, std::move(f), std::forward<F>(s));
    }

    /** Fully-specified microword. */
    template <typename F>
    UAddr
    emitFull(UAnnotation a, UFlow f, F &&s)
    {
        return ua.emit(a, std::move(f), std::forward<F>(s));
    }

    ULabel lbl() { return ua.newLabel(); }
    void bind(ULabel l) { ua.bind(l); }
};

/** @{ Builders, one per microcode area (rom_*.cc). */
void buildFramework(RomCtx &c);
void buildSpecifierRoutines(RomCtx &c);
void buildMmMicrocode(RomCtx &c);
void buildSimpleFlows(RomCtx &c);
void buildFieldFlows(RomCtx &c);
void buildFloatFlows(RomCtx &c);
void buildCallRetFlows(RomCtx &c);
void buildSystemFlows(RomCtx &c);
void buildCharacterFlows(RomCtx &c);
void buildDecimalFlows(RomCtx &c);
/** @} */

/**
 * Register an execute-flow entry point.  The entry microword carries
 * the ExecEntry mark so the analyzer can count Table 1 frequencies.
 */
template <typename F>
inline UAddr
execEntry(RomCtx &c, ExecFlow flow, Group group, const char *name,
          UFlow f, F &&s, UMemKind mem = UMemKind::None,
          bool ib_request = false)
{
    UAnnotation a = c.ann(execRowFor(group), name);
    a.mark = UMark::ExecEntry;
    a.flow = flow;
    a.mem = mem;
    a.ibRequest = ib_request;
    UAddr addr = c.ua.emit(a, std::move(f), std::forward<F>(s));
    c.ep.exec[static_cast<size_t>(flow)] = addr;
    return addr;
}

/**
 * Emit the store-result tail of a flow: two microwords (register
 * destination / memory destination) that store lat.t[0] into
 * lat.dst[0], set N/Z, and end the instruction.  Flows jump into the
 * right one with jumpStore().  Keeping the memory variant distinct
 * means every execution of a write-annotated microword really is a
 * write -- the property Table 5's counting relies on.
 */
struct StoreTail
{
    ULabel reg;
    ULabel mem;
};

StoreTail makeStoreTail(RomCtx &c, Row row, const char *name);

/** Jump to the right store tail for dst[dst_idx]. */
inline void
jumpStore(Ebox &e, const StoreTail &st, unsigned dst_idx = 0)
{
    e.uJump(e.lat.dst[dst_idx].kind == DstLatch::Kind::Reg ? st.reg
                                                           : st.mem);
}

/** Successor declaration matching jumpStore(): either tail. */
inline UFlow
flowStore(const StoreTail &st)
{
    return flowTo({st.reg, st.mem});
}

/**
 * Emit the taken-branch tail of a PC-changing flow: a B-DISP microword
 * that fetches the displacement and computes the target into lat.t[7],
 * and a redirect microword (marked BranchTaken) in the flow's own row.
 * Returns the label of the B-DISP microword.
 */
ULabel makeTakenTail(RomCtx &c, Row exec_row, PcChangeKind pck,
                     const char *name);

/** Not-taken epilogue: skip the displacement bytes and end. */
inline void
branchNotTaken(Ebox &e)
{
    e.ibSkip(e.lat.info->bdispBytes);
    e.endInstruction();
}

} // namespace vax

#endif // UPC780_UCODE_ROM_CTX_HH
