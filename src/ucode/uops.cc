#include "ucode/uops.hh"

#include "support/bitutil.hh"
#include "support/logging.hh"

namespace vax
{

uint32_t
truncTo(uint32_t v, DataType t)
{
    switch (dataTypeBytes(t)) {
      case 1: return v & 0xFF;
      case 2: return v & 0xFFFF;
      default: return v;
    }
}

int32_t
sextTo(uint32_t v, DataType t)
{
    unsigned bits = 8 * dataTypeBytes(t);
    if (bits >= 32)
        return static_cast<int32_t>(v);
    return sext(v, bits);
}

bool
signBit(uint32_t v, DataType t)
{
    unsigned bits = 8 * dataTypeBytes(t);
    return (v >> (bits - 1)) & 1;
}

namespace
{

void
setNzvc(Psl *psl, uint32_t result, DataType t, bool v, bool c)
{
    psl->cc.n = signBit(result, t);
    psl->cc.z = truncTo(result, t) == 0;
    psl->cc.v = v;
    psl->cc.c = c;
}

} // anonymous namespace

uint32_t
addCc(uint32_t a, uint32_t b, bool subtract, DataType t, Psl *psl)
{
    uint32_t aa = truncTo(a, t);
    uint32_t bb = truncTo(b, t);
    unsigned bits = 8 * dataTypeBytes(t);
    uint64_t wide;
    uint32_t result;
    bool v, c;
    if (subtract) {
        // result = b - a (VAX SUBx: dif = min - sub).
        wide = static_cast<uint64_t>(bb) - aa;
        result = truncTo(static_cast<uint32_t>(wide), t);
        // C is borrow.
        c = bb < aa;
        v = signBit(bb ^ aa, t) && signBit(bb ^ result, t);
    } else {
        wide = static_cast<uint64_t>(bb) + aa;
        result = truncTo(static_cast<uint32_t>(wide), t);
        c = (wide >> bits) & 1;
        v = !signBit(aa ^ bb, t) && signBit(aa ^ result, t);
    }
    setNzvc(psl, result, t, v, c);
    return result;
}

uint32_t
aluCompute(uint8_t opcode, uint32_t src, uint32_t dst, DataType t,
           Psl *psl)
{
    // The ALU function is selected by hardware from the opcode; the
    // microcode flow itself is shared (ADD/SUB indistinguishable to
    // the UPC monitor, as the paper notes).
    switch (opcode) {
      case op::ADDB2: case op::ADDB3:
      case op::ADDW2: case op::ADDW3:
      case op::ADDL2: case op::ADDL3:
        return addCc(src, dst, false, t, psl);
      case op::SUBB2: case op::SUBB3:
      case op::SUBW2: case op::SUBW3:
      case op::SUBL2: case op::SUBL3:
        return addCc(src, dst, true, t, psl);
      case op::BISB2: case op::BISB3:
      case op::BISW2: case op::BISW3:
      case op::BISL2: case op::BISL3: {
        uint32_t r = truncTo(dst | src, t);
        setNzvc(psl, r, t, false, psl->cc.c);
        return r;
      }
      case op::BICB2: case op::BICB3:
      case op::BICW2: case op::BICW3:
      case op::BICL2: case op::BICL3: {
        uint32_t r = truncTo(dst & ~src, t);
        setNzvc(psl, r, t, false, psl->cc.c);
        return r;
      }
      case op::XORB2: case op::XORB3:
      case op::XORW2: case op::XORW3:
      case op::XORL2: case op::XORL3: {
        uint32_t r = truncTo(dst ^ src, t);
        setNzvc(psl, r, t, false, psl->cc.c);
        return r;
      }
      default:
        panic("aluCompute: opcode %#x is not an ALU op", opcode);
    }
}

void
cmpCc(uint32_t src1, uint32_t src2, DataType t, Psl *psl)
{
    int32_t a = sextTo(src1, t);
    int32_t b = sextTo(src2, t);
    psl->cc.n = a < b;
    psl->cc.z = a == b;
    psl->cc.v = false;
    psl->cc.c = truncTo(src1, t) < truncTo(src2, t);
}

uint32_t
shiftCompute(uint8_t opcode, int8_t count, uint32_t src, Psl *psl)
{
    uint32_t r;
    if (opcode == op::ROTL) {
        unsigned c = static_cast<unsigned>(count) & 31;
        r = c == 0 ? src : ((src << c) | (src >> (32 - c)));
        setNzvc(psl, r, DataType::Long, false, psl->cc.c);
        return r;
    }
    upc_assert(opcode == op::ASHL);
    if (count >= 0) {
        unsigned c = count > 31 ? 31 : static_cast<unsigned>(count);
        r = count > 31 ? 0 : (src << c);
        bool v = (sextTo(r, DataType::Long) >> c) !=
            sextTo(src, DataType::Long) && count <= 31;
        setNzvc(psl, r, DataType::Long, v, false);
    } else {
        unsigned c = static_cast<unsigned>(-count);
        if (c > 31)
            c = 31;
        r = static_cast<uint32_t>(sextTo(src, DataType::Long) >>
                                  static_cast<int>(c));
        setNzvc(psl, r, DataType::Long, false, false);
    }
    return r;
}

bool
branchCond(uint8_t opcode, const Psl &psl)
{
    const CondCodes &cc = psl.cc;
    switch (opcode) {
      case op::BRB: case op::BRW: return true;
      case op::BNEQ:  return !cc.z;
      case op::BEQL:  return cc.z;
      case op::BGTR:  return !(cc.n || cc.z);
      case op::BLEQ:  return cc.n || cc.z;
      case op::BGEQ:  return !cc.n;
      case op::BLSS:  return cc.n;
      case op::BGTRU: return !(cc.c || cc.z);
      case op::BLEQU: return cc.c || cc.z;
      case op::BVC:   return !cc.v;
      case op::BVS:   return cc.v;
      case op::BCC:   return !cc.c;
      case op::BCS:   return cc.c;
      default:
        panic("branchCond: opcode %#x is not a simple branch", opcode);
    }
}

void
writeRegSized(uint32_t *reg, uint32_t v, DataType t)
{
    switch (dataTypeBytes(t)) {
      case 1:
        *reg = (*reg & ~0xFFu) | (v & 0xFF);
        break;
      case 2:
        *reg = (*reg & ~0xFFFFu) | (v & 0xFFFF);
        break;
      default:
        *reg = v;
        break;
    }
}

uint32_t
cvtCompute(uint8_t opcode, uint32_t v, Psl *psl)
{
    uint32_t r;
    DataType dst_t;
    switch (opcode) {
      case op::MOVZBL: r = v & 0xFF; dst_t = DataType::Long; break;
      case op::MOVZBW: r = v & 0xFF; dst_t = DataType::Word; break;
      case op::MOVZWL: r = v & 0xFFFF; dst_t = DataType::Long; break;
      case op::CVTBL:
        r = static_cast<uint32_t>(sext(v, 8));
        dst_t = DataType::Long;
        break;
      case op::CVTBW:
        r = static_cast<uint32_t>(sext(v, 8)) & 0xFFFF;
        dst_t = DataType::Word;
        break;
      case op::CVTWL:
        r = static_cast<uint32_t>(sext(v, 16));
        dst_t = DataType::Long;
        break;
      case op::CVTWB: r = v & 0xFF; dst_t = DataType::Byte; break;
      case op::CVTLB: r = v & 0xFF; dst_t = DataType::Byte; break;
      case op::CVTLW: r = v & 0xFFFF; dst_t = DataType::Word; break;
      default:
        panic("cvtCompute: opcode %#x is not a convert", opcode);
    }
    psl->cc.n = signBit(r, dst_t);
    psl->cc.z = truncTo(r, dst_t) == 0;
    psl->cc.v = false;
    return r;
}

} // namespace vax
