#include "ucode/uops.hh"

#include "support/logging.hh"

namespace vax
{

void
badAluOpcode(uint8_t opcode)
{
    panic("aluCompute: opcode %#x is not an ALU op", opcode);
}

void
badBranchOpcode(uint8_t opcode)
{
    panic("branchCond: opcode %#x is not a simple branch", opcode);
}

uint32_t
shiftCompute(uint8_t opcode, int8_t count, uint32_t src, Psl *psl)
{
    uint32_t r;
    if (opcode == op::ROTL) {
        unsigned c = static_cast<unsigned>(count) & 31;
        r = c == 0 ? src : ((src << c) | (src >> (32 - c)));
        setNzvc(psl, r, DataType::Long, false, psl->cc.c);
        return r;
    }
    upc_assert(opcode == op::ASHL);
    if (count >= 0) {
        unsigned c = count > 31 ? 31 : static_cast<unsigned>(count);
        r = count > 31 ? 0 : (src << c);
        bool v = (sextTo(r, DataType::Long) >> c) !=
            sextTo(src, DataType::Long) && count <= 31;
        setNzvc(psl, r, DataType::Long, v, false);
    } else {
        unsigned c = static_cast<unsigned>(-count);
        if (c > 31)
            c = 31;
        r = static_cast<uint32_t>(sextTo(src, DataType::Long) >>
                                  static_cast<int>(c));
        setNzvc(psl, r, DataType::Long, false, false);
    }
    return r;
}

uint32_t
cvtCompute(uint8_t opcode, uint32_t v, Psl *psl)
{
    uint32_t r;
    DataType dst_t;
    switch (opcode) {
      case op::MOVZBL: r = v & 0xFF; dst_t = DataType::Long; break;
      case op::MOVZBW: r = v & 0xFF; dst_t = DataType::Word; break;
      case op::MOVZWL: r = v & 0xFFFF; dst_t = DataType::Long; break;
      case op::CVTBL:
        r = static_cast<uint32_t>(sext(v, 8));
        dst_t = DataType::Long;
        break;
      case op::CVTBW:
        r = static_cast<uint32_t>(sext(v, 8)) & 0xFFFF;
        dst_t = DataType::Word;
        break;
      case op::CVTWL:
        r = static_cast<uint32_t>(sext(v, 16));
        dst_t = DataType::Long;
        break;
      case op::CVTWB: r = v & 0xFF; dst_t = DataType::Byte; break;
      case op::CVTLB: r = v & 0xFF; dst_t = DataType::Byte; break;
      case op::CVTLW: r = v & 0xFFFF; dst_t = DataType::Word; break;
      default:
        panic("cvtCompute: opcode %#x is not a convert", opcode);
    }
    psl->cc.n = signBit(r, dst_t);
    psl->cc.z = truncTo(r, dst_t) == 0;
    psl->cc.v = false;
    return r;
}

} // namespace vax
