/**
 * @file
 * The EBOX control store and its assembler.
 *
 * Each control-store location holds one microinstruction: a semantic
 * action (the register-transfer work, expressed as a callable on the
 * EBOX) plus the static annotation the UPC analysis needs.  The
 * 11/780's control store held 4K-6K 99-bit words; the histogram board
 * had 16K buckets, which bounds our store too.
 *
 * Semantic actions exist in two representations (see DESIGN.md §9):
 * the decoded dispatch table -- a flat array of plain function
 * pointers with per-word operand records packed into an arena, which
 * is what the EBOX executes -- and the legacy std::function copies,
 * kept so the two engines can be verified byte-identical.
 *
 * Micro-branch targets are label ids resolved through the store's
 * label table, so forward references inside a routine are cheap.
 *
 * Because the semantic action is an opaque callable, every microword
 * also carries an explicit successor declaration (UFlow): the set of
 * micro-CFG edges its action may take.  The declarations are what the
 * static verifier (src/analysis) lints, and the EBOX can optionally
 * check every executed transition against them (Ebox::setFlowCheck),
 * so a declaration that disagrees with the lambda dies in the tests.
 */

#ifndef UPC780_UCODE_CONTROL_STORE_HH
#define UPC780_UCODE_CONTROL_STORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "ucode/annotations.hh"

namespace vax
{

class Ebox;

/**
 * Semantic action of one microinstruction, type-erased.  This is the
 * *legacy* dispatch representation: the EBOX's decoded fast path calls
 * through DecodedWord instead (below), and the std::function copy is
 * kept so the engines can be A/B-compared for byte-identical
 * histograms (Ebox::setLegacyDispatch, tests/test_dispatch_equiv.cc).
 */
using USem = std::function<void(Ebox &)>;

/**
 * Decoded dispatch: a plain function pointer plus a pointer to the
 * microword's packed operand record (the builder lambda's captures,
 * placed in the control store's operand arena).  One flat array of
 * these is the interpreter's inner-loop table -- a single predictable
 * indirect call per cycle, no std::function machinery, and operands
 * packed contiguously in emission (≈ execution) order.
 */
using USemFn = void (*)(Ebox &, const void *);

struct DecodedWord
{
    USemFn fn;
    const void *ops;
};

/** A micro-branch label (index into the store's label table). */
using ULabel = uint32_t;

/**
 * The "no such micro-address" sentinel.  Address 0 is a legal
 * control-store location, so unset EntryPoints slots must be
 * distinguishable from it; 0xFFFF is above the 16K histogram bound
 * and can never name a real microword.
 */
constexpr UAddr kInvalidUAddr = 0xFFFF;

/**
 * Static successor declaration of one microword: which micro-CFG
 * edges its semantic action may take.  Built with the flow*()
 * factories below and the or*() combinators, e.g.
 * flowTo(taken).orEnd() for "uJump(taken) or endInstruction()".
 */
struct UFlow
{
    bool fall = false;     ///< may fall through to address + 1
    bool end = false;      ///< may endInstruction() (IID/INT/MCHK)
    bool dispatch = false; ///< decode dispatch (spec or exec entries)
    bool spec26 = false;   ///< index prefix: jump into a SPEC2-6 entry
    bool ret = false;      ///< uRet() to a recorded call site + 1
    bool trapRet = false;  ///< uTrapRet[Satisfied](): resumes trapper
    bool stop = false;     ///< setHalted() or unconditional fault()
    bool reserved = false; ///< intentionally unreachable guard word
    std::vector<ULabel> targets;   ///< uJump()/uIf() label targets
    std::vector<ULabel> calls;     ///< uCall() subroutine entries
    std::vector<UAddr> rawTargets; ///< uJumpAddr() absolute targets
    /**
     * Loop-bound annotation: when this word sits on a micro-loop (it
     * is a member of a cyclic SCC of the declared micro-CFG), the
     * maximum number of times any word of that loop can execute per
     * entry into the flow.  0 means "not annotated"; the static bound
     * analyzer (src/analysis/ubound) requires every reachable cycle
     * to carry a non-zero bound on at least one member word and uses
     * it for the worst-case cycle ceiling.
     */
    uint32_t loopBound = 0;

    UFlow &orFall()          { fall = true; return *this; }
    UFlow &orEnd()           { end = true; return *this; }
    UFlow &orDispatch()      { dispatch = true; return *this; }
    UFlow &orStop()          { stop = true; return *this; }
    UFlow &orTrapRet()       { trapRet = true; return *this; }
    UFlow &
    orTo(ULabel l)
    {
        targets.push_back(l);
        return *this;
    }
    UFlow &
    orToAddr(UAddr a)
    {
        rawTargets.push_back(a);
        return *this;
    }
    /** Attach a loop-bound annotation (see loopBound). */
    UFlow &
    withLoopBound(uint32_t n)
    {
        loopBound = n;
        return *this;
    }

    /** True when this word declares no successors at all (a terminal
     *  or reserved word). */
    bool
    terminal() const
    {
        return !fall && !end && !dispatch && !spec26 && !ret &&
            !trapRet && targets.empty() && calls.empty() &&
            rawTargets.empty();
    }
};

/** @{ UFlow factories, named for the dominant edge kind. */
inline UFlow
flowFall()
{
    UFlow f;
    f.fall = true;
    return f;
}

inline UFlow
flowEnd()
{
    UFlow f;
    f.end = true;
    return f;
}

inline UFlow
flowTo(std::initializer_list<ULabel> ls)
{
    UFlow f;
    f.targets.assign(ls.begin(), ls.end());
    return f;
}

inline UFlow
flowTo(ULabel l)
{
    return flowTo({l});
}

inline UFlow
flowToAddr(UAddr a)
{
    UFlow f;
    f.rawTargets.push_back(a);
    return f;
}

inline UFlow
flowCall(ULabel sub)
{
    UFlow f;
    f.calls.push_back(sub);
    return f;
}

inline UFlow
flowDispatch()
{
    UFlow f;
    f.dispatch = true;
    return f;
}

inline UFlow
flowSpec26()
{
    UFlow f;
    f.spec26 = true;
    return f;
}

inline UFlow
flowRet()
{
    UFlow f;
    f.ret = true;
    return f;
}

inline UFlow
flowTrapRet()
{
    UFlow f;
    f.trapRet = true;
    return f;
}

inline UFlow
flowStop()
{
    UFlow f;
    f.stop = true;
    return f;
}

inline UFlow
flowReserved()
{
    UFlow f;
    f.reserved = true;
    return f;
}
/** @} */

struct MicroWord
{
    USem sem;
    UAnnotation ann;
};

/**
 * Well-known dispatch targets, filled in by the microcode ROM builder
 * and consulted by the EBOX's hardware-decode services.
 */
/** Access classes used to select a specifier routine variant. */
enum class SpecAccClass : uint8_t { Read, Write, Modify, Addr, NumClasses };

/** Cold panic: branch operands have no specifier routine class. */
[[noreturn]] void badBranchOperandClass();

/** Map an operand access type to its routine class.  Inline: runs for
 *  every dispatched operand specifier. */
inline SpecAccClass
specAccClass(Access a)
{
    switch (a) {
      case Access::Read:    return SpecAccClass::Read;
      case Access::Write:   return SpecAccClass::Write;
      case Access::Modify:  return SpecAccClass::Modify;
      case Access::Address:
      case Access::Field:   return SpecAccClass::Addr;
      case Access::Branch:  break;
    }
    badBranchOperandClass();
}

/** Out-of-line panic for an out-of-range micro-address (e.g. a
 *  dispatch through an unset kInvalidUAddr entry slot). */
[[noreturn]] void badMicroAddress(UAddr a, size_t size);

struct EntryPoints
{
    UAddr iid = kInvalidUAddr; ///< instruction decode microinstruction
    /**
     * The "insufficient bytes in the IB" dispatch locations for
     * specifier decode, one per position class.  Executions here are
     * IB-stall cycles, exactly as the paper describes the counting.
     */
    std::array<UAddr, 2> specWait{kInvalidUAddr, kInvalidUAddr};
    UAddr abort = kInvalidUAddr;      ///< abort-cycle count location
    UAddr tbMissD = kInvalidUAddr;    ///< D-stream TB miss service
    UAddr tbMissI = kInvalidUAddr;    ///< I-stream TB miss service
    UAddr alignRead = kInvalidUAddr;  ///< unaligned read service
    UAddr alignWrite = kInvalidUAddr; ///< unaligned write service
    UAddr interrupt = kInvalidUAddr;  ///< interrupt dispatch microcode
    UAddr exception = kInvalidUAddr;  ///< exception dispatch microcode
    UAddr machineCheck = kInvalidUAddr; ///< machine-check dispatch
    /** Execute-flow entries, indexed by ExecFlow. */
    std::array<UAddr, static_cast<size_t>(ExecFlow::NumFlows)> exec;
    /**
     * Specifier-mode routine entries: [mode][0=spec1,1=spec2-6][class].
     * The decode hardware dispatches directly here (zero cycles), as
     * the real machine's decode ROM did.
     */
    UAddr spec[static_cast<size_t>(AddrMode::NumModes)][2]
              [static_cast<size_t>(SpecAccClass::NumClasses)];
    /**
     * Index-prefix routines (per position class).  Both fall into the
     * SPEC2-6 copy of the base-mode routine -- the microcode sharing
     * that makes the paper report indexed first-specifier base
     * calculation under SPEC2-6.
     */
    std::array<UAddr, 2> indexPrefix{kInvalidUAddr, kInvalidUAddr};

    EntryPoints()
    {
        exec.fill(kInvalidUAddr);
        for (auto &mode : spec)
            for (auto &pos : mode)
                for (auto &cls : pos)
                    cls = kInvalidUAddr;
    }
};

class ControlStore
{
  public:
    /** Histogram-board capacity: 16K count locations. */
    static constexpr unsigned capacity = 16384;

    UAddr size() const { return static_cast<UAddr>(words_.size()); }

    const MicroWord &
    word(UAddr a) const
    {
        check(a);
        return words_[a];
    }

    const UAnnotation &
    annotation(UAddr a) const
    {
        check(a);
        return words_[a].ann;
    }

    /** Declared successor set of a microword. */
    const UFlow &
    flow(UAddr a) const
    {
        check(a);
        return flows_[a];
    }

    /** Resolve a label to its bound address (panics if unbound).
     *  Inline: micro-jumps resolve their target through this every
     *  execution, so the good case must be one load and one test. */
    UAddr
    labelAddr(ULabel l) const
    {
        if (l >= labels_.size() || labels_[l] < 0) [[unlikely]]
            badLabel(l);
        return static_cast<UAddr>(labels_[l]);
    }

    /** @{ Label-table introspection for the static verifier. */
    size_t labelCount() const { return labels_.size(); }
    /** Bound address of a label, or -1 while unbound. */
    int32_t
    labelBinding(ULabel l) const
    {
        return l < labels_.size() ? labels_[l] : -1;
    }
    /** @} */

    /**
     * Resolve every declared edge to absolute addresses: per-word
     * sorted successor sets with dispatch tables, end targets and
     * micro-subroutine return sites expanded.  Called once by the ROM
     * builder after all entries are registered; edges through unbound
     * labels are skipped here (the verifier reports them).
     */
    void resolveFlows();

    bool flowsResolved() const { return resolved_; }

    /** Resolved successors of a word (resolveFlows() first). */
    const std::vector<UAddr> &successors(UAddr a) const;

    /** True when the declared flow of `from` admits a transition to
     *  `to` (membership in the resolved successor set). */
    bool flowAllows(UAddr from, UAddr to) const;

    /**
     * The decoded dispatch table, one entry per microword.  The
     * pointer is only stable once the ROM is fully built (the EBOX is
     * constructed after buildMicrocodeRom(), so it caches this).
     */
    const DecodedWord *decodedTable() const { return decoded_.data(); }

    EntryPoints entries;

  private:
    friend class MicroAssembler;

    /** Out-of-line panic for an unbound or unknown label. */
    [[noreturn]] void badLabel(ULabel l) const;

    void
    check(UAddr a) const
    {
        if (a >= words_.size())
            badMicroAddress(a, words_.size());
    }

    /** Reserve packed, aligned storage in the operand arena. */
    void *semArenaAlloc(size_t size, size_t align);

    std::vector<MicroWord> words_;
    std::vector<DecodedWord> decoded_;
    std::vector<UFlow> flows_;
    std::vector<int32_t> labels_; ///< -1 = unbound
    std::vector<std::vector<UAddr>> succ_;
    bool resolved_ = false;

    /** Operand arena: chunked so records never move once placed. */
    std::vector<std::unique_ptr<unsigned char[]>> semChunks_;
    size_t semChunkUsed_ = 0; ///< bytes used in the newest chunk
    /** Keep-alive for the rare non-trivially-copyable callable. */
    std::vector<std::shared_ptr<const void>> semBoxed_;
};

/**
 * Emits microinstructions into a ControlStore.
 *
 * The ROM builder functions (rom_*.cc) use this to lay down routines
 * and record entry points, annotations and successor declarations.
 */
class MicroAssembler
{
  public:
    explicit MicroAssembler(ControlStore &cs) : cs_(cs) {}

    /** Next address to be emitted. */
    UAddr here() const { return cs_.size(); }

    /**
     * Emit one microinstruction; returns its address.
     *
     * The callable is decoded once, here: its captures are packed into
     * the store's operand arena and a plain trampoline function pointer
     * is recorded in the flat dispatch table, so the per-cycle path is
     * one indirect call.  A std::function copy of the same callable is
     * kept as the legacy engine for A/B histogram verification.
     */
    template <typename F>
    UAddr
    emit(const UAnnotation &ann, UFlow flow, F &&sem)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, const Fn &, Ebox &>,
                      "microword semantics must be callable as "
                      "void(Ebox &)");
        const Fn *packed;
        if constexpr (std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>) {
            void *slot = cs_.semArenaAlloc(sizeof(Fn), alignof(Fn));
            packed = ::new (slot) Fn(sem);
        } else {
            // Rare: a callable with non-trivial captures cannot live
            // in the arena; box it and keep it alive with the store.
            auto box = std::make_shared<Fn>(sem);
            packed = box.get();
            cs_.semBoxed_.push_back(std::move(box));
        }
        return emitWord(ann, std::move(flow), USem(*packed),
                        DecodedWord{&invokeSem<Fn>, packed});
    }

    /** Allocate an unbound label. */
    ULabel newLabel();

    /** Bind a label to the current address. */
    void bind(ULabel l);

    /** Bind a label to a specific address. */
    void bindAt(ULabel l, UAddr a);

    ControlStore &store() { return cs_; }

  private:
    /** Trampoline giving every callable type one plain entry point. */
    template <typename Fn>
    static void
    invokeSem(Ebox &e, const void *ops)
    {
        (*static_cast<const Fn *>(ops))(e);
    }

    /** Append a fully decoded word (capacity check lives here). */
    UAddr emitWord(const UAnnotation &ann, UFlow flow, USem sem,
                   DecodedWord decoded);

    ControlStore &cs_;
};

} // namespace vax

#endif // UPC780_UCODE_CONTROL_STORE_HH
