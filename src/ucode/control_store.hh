/**
 * @file
 * The EBOX control store and its assembler.
 *
 * Each control-store location holds one microinstruction: a semantic
 * action (the register-transfer work, expressed as a callable on the
 * EBOX) plus the static annotation the UPC analysis needs.  The
 * 11/780's control store held 4K-6K 99-bit words; the histogram board
 * had 16K buckets, which bounds our store too.
 *
 * Micro-branch targets are label ids resolved through the store's
 * label table, so forward references inside a routine are cheap.
 */

#ifndef UPC780_UCODE_CONTROL_STORE_HH
#define UPC780_UCODE_CONTROL_STORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "ucode/annotations.hh"

namespace vax
{

class Ebox;

/** Semantic action of one microinstruction. */
using USem = std::function<void(Ebox &)>;

/** A micro-branch label (index into the store's label table). */
using ULabel = uint32_t;

struct MicroWord
{
    USem sem;
    UAnnotation ann;
};

/**
 * Well-known dispatch targets, filled in by the microcode ROM builder
 * and consulted by the EBOX's hardware-decode services.
 */
/** Access classes used to select a specifier routine variant. */
enum class SpecAccClass : uint8_t { Read, Write, Modify, Addr, NumClasses };

/** Map an operand access type to its routine class. */
SpecAccClass specAccClass(Access a);

struct EntryPoints
{
    UAddr iid = 0;             ///< instruction decode microinstruction
    /**
     * The "insufficient bytes in the IB" dispatch locations for
     * specifier decode, one per position class.  Executions here are
     * IB-stall cycles, exactly as the paper describes the counting.
     */
    std::array<UAddr, 2> specWait{};
    UAddr abort = 0;           ///< counting location for abort cycles
    UAddr tbMissD = 0;         ///< D-stream TB miss service
    UAddr tbMissI = 0;         ///< I-stream TB miss service
    UAddr alignRead = 0;       ///< unaligned read service
    UAddr alignWrite = 0;      ///< unaligned write service
    UAddr interrupt = 0;       ///< interrupt dispatch microcode
    UAddr exception = 0;       ///< exception dispatch microcode
    UAddr machineCheck = 0;    ///< machine-check (MCHK) dispatch
    /** Execute-flow entries, indexed by ExecFlow. */
    std::array<UAddr, static_cast<size_t>(ExecFlow::NumFlows)> exec{};
    /**
     * Specifier-mode routine entries: [mode][0=spec1,1=spec2-6][class].
     * The decode hardware dispatches directly here (zero cycles), as
     * the real machine's decode ROM did.
     */
    UAddr spec[static_cast<size_t>(AddrMode::NumModes)][2]
              [static_cast<size_t>(SpecAccClass::NumClasses)] = {};
    /**
     * Index-prefix routines (per position class).  Both fall into the
     * SPEC2-6 copy of the base-mode routine -- the microcode sharing
     * that makes the paper report indexed first-specifier base
     * calculation under SPEC2-6.
     */
    std::array<UAddr, 2> indexPrefix{};
};

class ControlStore
{
  public:
    /** Histogram-board capacity: 16K count locations. */
    static constexpr unsigned capacity = 16384;

    UAddr size() const { return static_cast<UAddr>(words_.size()); }

    const MicroWord &
    word(UAddr a) const
    {
        return words_[a];
    }

    const UAnnotation &
    annotation(UAddr a) const
    {
        return words_[a].ann;
    }

    /** Resolve a label to its bound address (panics if unbound). */
    UAddr labelAddr(ULabel l) const;

    EntryPoints entries;

  private:
    friend class MicroAssembler;
    std::vector<MicroWord> words_;
    std::vector<int32_t> labels_; ///< -1 = unbound
};

/**
 * Emits microinstructions into a ControlStore.
 *
 * The ROM builder functions (rom_*.cc) use this to lay down routines
 * and record entry points and annotations.
 */
class MicroAssembler
{
  public:
    explicit MicroAssembler(ControlStore &cs) : cs_(cs) {}

    /** Next address to be emitted. */
    UAddr here() const { return cs_.size(); }

    /** Emit one microinstruction; returns its address. */
    UAddr emit(const UAnnotation &ann, USem sem);

    /** Allocate an unbound label. */
    ULabel newLabel();

    /** Bind a label to the current address. */
    void bind(ULabel l);

    /** Bind a label to a specific address. */
    void bindAt(ULabel l, UAddr a);

    ControlStore &store() { return cs_; }

  private:
    ControlStore &cs_;
};

} // namespace vax

#endif // UPC780_UCODE_CONTROL_STORE_HH
