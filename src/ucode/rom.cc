#include "ucode/rom.hh"

#include <cstring>
#include <string>

#include "ucode/rom_ctx.hh"

namespace vax
{

void
buildFramework(RomCtx &c)
{
    // IID: the single non-overlapped instruction-decode cycle.  It
    // requests an opcode decode from the IB; starvation here is the
    // Decode row's IB stall (the dominant case after taken branches).
    {
        UAnnotation a = c.ann(Row::Decode, "IID");
        a.ibRequest = true;
        a.mark = UMark::Iid;
        c.ep.iid = c.emitFull(a, flowDispatch(), [](Ebox &e) {
            if (!e.decodeOpcode())
                return;
        });
    }

    // The "insufficient bytes" specifier-decode dispatch targets.
    // Executions here are specifier IB-stall cycles (paper §4.3).
    {
        UAnnotation a = c.ann(Row::Spec1, "SPEC1.wait");
        a.ibRequest = true;
        c.ep.specWait[0] = c.emitFull(a, flowDispatch(), [](Ebox &e) {
            if (!e.decodeSpec())
                return;
        });
        UAnnotation b = c.ann(Row::Spec26, "SPEC26.wait");
        b.ibRequest = true;
        c.ep.specWait[1] = c.emitFull(b, flowDispatch(), [](Ebox &e) {
            if (!e.decodeSpec())
                return;
        });
    }

    // The abort location.  Never executed: the EBOX counts the cycle
    // in which a microtrap is recognized here (Table 8's Abort row)
    // and enters the service microcode directly.
    c.ep.abort = c.emit(Row::Abort, "ABORT", flowReserved(), [](Ebox &) {
        panic("the abort count location is not executable microcode");
    });

    // Exceptions other than microtraps are not survivable for our
    // synthetic workloads; the EBOX faults before reaching here.
    c.ep.exception =
        c.emit(Row::IntExcept, "EXC.stub", flowReserved(), [](Ebox &) {
            panic("exception microcode entered");
        });
}

StoreTail
makeStoreTail(RomCtx &c, Row row, const char *name)
{
    StoreTail st{c.lbl(), c.lbl()};

    std::string reg_name = std::string(name) + ".streg";
    std::string mem_name = std::string(name) + ".stmem";
    // Names must outlive the builder; leak a tiny string copy (the ROM
    // is built once per control store).
    const char *rn = strdup(reg_name.c_str());
    const char *mn = strdup(mem_name.c_str());

    // Condition codes are set by the flow's compute microword (so that
    // arithmetic V/C survive); these words only store and end.
    c.bind(st.reg);
    c.emit(row, rn, flowEnd(), [](Ebox &e) {
        DstLatch &d = e.lat.dst[0];
        writeRegSized(&e.r(d.reg), e.lat.t[0], d.type);
        e.endInstruction();
    });

    c.bind(st.mem);
    c.emitWrite(row, mn, flowEnd(), [](Ebox &e) {
        DstLatch &d = e.lat.dst[0];
        e.memWrite(d.addr, truncTo(e.lat.t[0], d.type),
                   dataTypeBytes(d.type));
        e.endInstruction();
    });

    return st;
}

ULabel
makeTakenTail(RomCtx &c, Row exec_row, PcChangeKind pck, const char *name)
{
    ULabel bdisp = c.lbl();
    std::string bd_name = std::string(name) + ".bdisp";
    std::string tk_name = std::string(name) + ".taken";
    const char *bn = strdup(bd_name.c_str());
    const char *tn = strdup(tk_name.c_str());

    c.bind(bdisp);
    {
        UAnnotation a = c.ann(Row::Bdisp, bn);
        a.ibRequest = true;
        a.mark = UMark::BdispFetch;
        c.emitFull(a, flowFall(), [](Ebox &e) {
            unsigned n = e.lat.info->bdispBytes;
            if (!e.ibGet(n, true))
                return;
            e.hw().bdispBytes += n;
            e.lat.t[7] = e.pcForSpec() + e.lat.q;
        });
    }
    {
        UAnnotation a = c.ann(exec_row, tn);
        a.mark = UMark::BranchTaken;
        a.pck = pck;
        c.emitFull(a, flowEnd(), [](Ebox &e) {
            e.redirect(e.lat.t[7]);
            e.endInstruction();
        });
    }
    return bdisp;
}

void
buildMicrocodeRom(ControlStore &cs)
{
    upc_assert(cs.size() == 0);
    RomCtx c(cs);

    // Address 0 stays a reserved guard word: a jump that decodes to 0
    // by accident (cleared latches) lands on a loud panic rather than
    // on real microcode.  Unset entry slots are kInvalidUAddr.
    c.emit(Row::Abort, "RESERVED0", flowReserved(), [](Ebox &) {
        panic("control store location 0 executed");
    });

    buildFramework(c);
    buildSpecifierRoutines(c);
    buildMmMicrocode(c);
    buildSimpleFlows(c);
    buildFieldFlows(c);
    buildFloatFlows(c);
    buildCallRetFlows(c);
    buildSystemFlows(c);
    buildCharacterFlows(c);
    buildDecimalFlows(c);

    // Verify that every implemented opcode has an execute entry.
    for (unsigned i = 0; i < 256; ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(i));
        if (info.valid &&
            cs.entries.exec[static_cast<size_t>(info.flow)] ==
                kInvalidUAddr) {
            panic("opcode %s has no execute-flow microcode",
                  info.mnemonic);
        }
    }

    // Resolve the declared successor edges now that every label is
    // bound and every entry slot registered: the EBOX's optional
    // flow check and the static verifier both read the result.
    cs.resolveFlows();
}

} // namespace vax
