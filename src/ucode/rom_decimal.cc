/**
 * @file
 * Execute flows of the DECIMAL group: packed-decimal arithmetic.
 *
 * Operands are read byte-by-byte into the string datapath buffer,
 * processed one digit per cycle (the digit loop), and written back
 * byte-by-byte -- giving the order-of-100-cycle costs Table 9 reports
 * for this group.
 */

#include <cstring>
#include <string>
#include <vector>

#include "arch/decimal.hh"
#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::Decimal;
constexpr Row R = Row::ExecDecimal;

/**
 * Read helpers shared by the decimal flows.
 *
 * Layout of the latches while a decimal flow runs:
 *   t[0] = current string address, t[1] = bytes remaining,
 *   t[2] = buffer index, sc = digit-loop counter,
 *   wide[0] / wide[1] = decoded operand values.
 */

/** Emit a byte-read loop: reads t[1] bytes from t[0] into strBuf at
 *  t[2].  Two cycles per byte.  Returns the loop-entry label. */
ULabel
emitReadLoop(RomCtx &c, const char *name, ULabel after)
{
    ULabel loop = c.lbl();
    std::string n(name);
    c.bind(loop);
    c.emitRead(R, strdup((n + ".rd").c_str()), flowFall(),
               [](Ebox &e) { e.memRead(e.lat.t[0], 1); });
    // packedBytes(31 digits) = 16: the architectural byte bound.
    c.emit(R, strdup((n + ".st").c_str()),
           flowTo({loop, after}).withLoopBound(16),
           [loop, after](Ebox &e) {
        e.lat.strBuf[e.lat.t[2]++] = static_cast<uint8_t>(e.md());
        ++e.lat.t[0];
        if (--e.lat.t[1])
            e.uJump(loop);
        else
            e.uJump(after);
    });
    return loop;
}

/** Emit a byte-write loop: writes t[1] bytes from strBuf at t[2] to
 *  t[0].  Two cycles per byte. */
ULabel
emitWriteLoop(RomCtx &c, const char *name, ULabel after)
{
    ULabel loop = c.lbl();
    std::string n(name);
    c.bind(loop);
    c.emitWrite(R, strdup((n + ".wr").c_str()), flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.t[0], e.lat.strBuf[e.lat.t[2]], 1);
    });
    c.emit(R, strdup((n + ".nx").c_str()),
           flowTo({loop, after}).withLoopBound(16),
           [loop, after](Ebox &e) {
        ++e.lat.t[2];
        ++e.lat.t[0];
        if (--e.lat.t[1])
            e.uJump(loop);
        else
            e.uJump(after);
    });
    return loop;
}

/** Emit a digit-processing loop burning sc cycles. */
ULabel
emitDigitLoop(RomCtx &c, const char *name, ULabel after)
{
    ULabel loop = c.lbl();
    c.bind(loop);
    // One cycle per digit, at most 31 digits per operand.
    c.emit(R, name, flowTo({loop, after}).withLoopBound(31),
           [loop, after](Ebox &e) {
        if (e.lat.sc > 1) {
            --e.lat.sc;
            e.uJump(loop);
        } else {
            e.uJump(after);
        }
    });
    return loop;
}

/** Decode strBuf[lo..) as packed decimal of `digits` digits. */
int64_t
decodeBuf(Ebox &e, unsigned lo, unsigned digits)
{
    std::vector<uint8_t> bytes(e.lat.strBuf + lo,
                               e.lat.strBuf + lo +
                                   packedBytes(digits));
    return packedToInt(bytes, digits);
}

/** Encode value into strBuf at lo. */
void
encodeBuf(Ebox &e, unsigned lo, unsigned digits, int64_t value)
{
    auto bytes = intToPacked(value, digits);
    for (size_t i = 0; i < bytes.size(); ++i)
        e.lat.strBuf[lo + i] = bytes[i];
}

void
setDecimalCc(Ebox &e, int64_t value)
{
    e.psl().cc.n = value < 0;
    e.psl().cc.z = value == 0;
    e.psl().cc.v = false;
    e.psl().cc.c = false;
}

void
buildAddP(RomCtx &c)
{
    // ADDP4/SUBP4 srclen.rw, srcaddr.ab, dstlen.rw, dstaddr.ab.
    ULabel rd_dst_setup = c.lbl(), decode = c.lbl(), digits = c.lbl();
    ULabel wb_setup = c.lbl(), fin = c.lbl();

    ULabel rd_src = c.lbl();
    execEntry(c, ExecFlow::AddP, G, "ADDP", flowTo(rd_src), [rd_src](Ebox &e) {
        e.lat.t[4] = e.lat.op[0] & 31;      // src digits
        e.lat.t[5] = e.lat.op[2] & 31;      // dst digits
        e.lat.t[0] = e.lat.op[1];
        e.lat.t[1] = packedBytes(e.lat.t[4]);
        e.lat.t[2] = 0;
        e.uJump(rd_src);
    });
    c.ua.bindAt(rd_src, c.ua.here());
    emitReadLoop(c, "ADDP.src", rd_dst_setup);

    c.bind(rd_dst_setup);
    c.emit(R, "ADDP.dsetup", flowFall(), [](Ebox &e) {
        e.lat.wide[0] = decodeBuf(e, 0, e.lat.t[4]);
        e.lat.t[0] = e.lat.op[3];
        e.lat.t[1] = packedBytes(e.lat.t[5]);
        e.lat.t[2] = 32;
    });
    emitReadLoop(c, "ADDP.dst", decode);

    c.bind(decode);
    c.emit(R, "ADDP.compute", flowTo(digits), [digits](Ebox &e) {
        int64_t src = e.lat.wide[0];
        int64_t dst = decodeBuf(e, 32, e.lat.t[5]);
        bool sub = e.lat.opcode == op::SUBP4;
        e.lat.wide[1] = sub ? dst - src : dst + src;
        e.lat.sc = e.lat.t[5] ? e.lat.t[5] : 1;
        e.uJump(digits);
    });
    c.ua.bindAt(digits, c.ua.here());
    emitDigitLoop(c, "ADDP.digit", wb_setup);

    c.bind(wb_setup);
    c.emit(R, "ADDP.wsetup", flowFall(), [](Ebox &e) {
        encodeBuf(e, 32, e.lat.t[5], e.lat.wide[1]);
        setDecimalCc(e, e.lat.wide[1]);
        e.lat.t[0] = e.lat.op[3];
        e.lat.t[1] = packedBytes(e.lat.t[5]);
        e.lat.t[2] = 32;
    });
    emitWriteLoop(c, "ADDP.wb", fin);

    c.bind(fin);
    c.emit(R, "ADDP.fin", flowEnd(), [](Ebox &e) {
        e.r(R0) = 0;
        e.r(R1) = e.lat.op[1];
        e.r(R2) = 0;
        e.r(R3) = e.lat.op[3];
        e.endInstruction();
    });
}

void
buildCmpMovP(RomCtx &c)
{
    // CMPP3 len.rw, src1addr.ab, src2addr.ab.
    {
        ULabel rd2_setup = c.lbl(), fin = c.lbl(), rd1 = c.lbl();
        execEntry(c, ExecFlow::CmpP, G, "CMPP", flowTo(rd1), [rd1](Ebox &e) {
            e.lat.t[4] = e.lat.op[0] & 31;
            e.lat.t[0] = e.lat.op[1];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 0;
            e.uJump(rd1);
        });
        c.ua.bindAt(rd1, c.ua.here());
        emitReadLoop(c, "CMPP.s1", rd2_setup);
        c.bind(rd2_setup);
        c.emit(R, "CMPP.s2setup", flowFall(), [](Ebox &e) {
            e.lat.wide[0] = decodeBuf(e, 0, e.lat.t[4]);
            e.lat.t[0] = e.lat.op[2];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 32;
        });
        emitReadLoop(c, "CMPP.s2", fin);
        c.bind(fin);
        c.emit(R, "CMPP.fin", flowEnd(), [](Ebox &e) {
            int64_t a = e.lat.wide[0];
            int64_t b = decodeBuf(e, 32, e.lat.t[4]);
            e.psl().cc.n = a < b;
            e.psl().cc.z = a == b;
            e.psl().cc.v = false;
            e.psl().cc.c = false;
            e.endInstruction();
        });
    }

    // MOVP len.rw, srcaddr.ab, dstaddr.ab.
    {
        ULabel wb_setup = c.lbl(), fin = c.lbl(), rd = c.lbl();
        execEntry(c, ExecFlow::MovP, G, "MOVP", flowTo(rd), [rd](Ebox &e) {
            e.lat.t[4] = e.lat.op[0] & 31;
            e.lat.t[0] = e.lat.op[1];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 0;
            e.uJump(rd);
        });
        c.ua.bindAt(rd, c.ua.here());
        emitReadLoop(c, "MOVP.rd", wb_setup);
        c.bind(wb_setup);
        c.emit(R, "MOVP.wsetup", flowFall(), [](Ebox &e) {
            setDecimalCc(e, decodeBuf(e, 0, e.lat.t[4]));
            e.lat.t[0] = e.lat.op[2];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 0;
        });
        emitWriteLoop(c, "MOVP.wb", fin);
        c.bind(fin);
        c.emit(R, "MOVP.fin", flowEnd(), [](Ebox &e) {
            e.r(R0) = 0;
            e.r(R1) = e.lat.op[1];
            e.r(R2) = 0;
            e.r(R3) = e.lat.op[2];
            e.endInstruction();
        });
    }
}

void
buildCvtAshP(RomCtx &c)
{
    // CVTPL len.rw, srcaddr.ab, dst.wl.
    {
        StoreTail st = makeStoreTail(c, R, "CVTPL");
        ULabel digits = c.lbl(), fin = c.lbl(), rd = c.lbl();
        execEntry(c, ExecFlow::CvtPL, G, "CVTPL", flowTo(rd), [rd](Ebox &e) {
            e.lat.t[4] = e.lat.op[0] & 31;
            e.lat.t[0] = e.lat.op[1];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 0;
            e.uJump(rd);
        });
        c.ua.bindAt(rd, c.ua.here());
        emitReadLoop(c, "CVTPL.rd", digits);
        c.bind(digits);
        c.emit(R, "CVTPL.dec", flowFall(), [](Ebox &e) {
            e.lat.wide[0] = decodeBuf(e, 0, e.lat.t[4]);
            e.lat.sc = e.lat.t[4] ? e.lat.t[4] : 1;
        });
        emitDigitLoop(c, "CVTPL.digit", fin);
        c.bind(fin);
        c.emit(R, "CVTPL.fin", flowStore(st), [st](Ebox &e) {
            e.lat.t[0] = static_cast<uint32_t>(e.lat.wide[0]);
            setDecimalCc(e, e.lat.wide[0]);
            jumpStore(e, st);
        });
    }

    // CVTLP src.rl, len.rw, dstaddr.ab.
    {
        ULabel wb = c.lbl(), fin = c.lbl(), digits = c.lbl();
        execEntry(c, ExecFlow::CvtLP, G, "CVTLP", flowTo(digits),
                  [digits](Ebox &e) {
            e.lat.t[4] = e.lat.op[1] & 31;
            e.lat.wide[0] = static_cast<int32_t>(e.lat.op[0]);
            e.lat.sc = e.lat.t[4] ? e.lat.t[4] : 1;
            e.uJump(digits);
        });
        c.ua.bindAt(digits, c.ua.here());
        emitDigitLoop(c, "CVTLP.digit", wb);
        c.bind(wb);
        c.emit(R, "CVTLP.wsetup", flowFall(), [](Ebox &e) {
            encodeBuf(e, 0, e.lat.t[4], e.lat.wide[0]);
            setDecimalCc(e, e.lat.wide[0]);
            e.lat.t[0] = e.lat.op[2];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 0;
        });
        emitWriteLoop(c, "CVTLP.wb", fin);
        c.bind(fin);
        c.emit(R, "CVTLP.fin", flowEnd(), [](Ebox &e) {
            e.r(R0) = 0;
            e.r(R1) = 0;
            e.r(R2) = 0;
            e.r(R3) = e.lat.op[2];
            e.endInstruction();
        });
    }

    // ASHP cnt.rb, srclen.rw, srcaddr.ab, round.rb, dstlen.rw,
    // dstaddr.ab: decimal scale by a power of ten.
    {
        ULabel decode = c.lbl(), digits = c.lbl(), wb = c.lbl();
        ULabel fin = c.lbl(), rd = c.lbl();
        execEntry(c, ExecFlow::AshP, G, "ASHP", flowTo(rd), [rd](Ebox &e) {
            e.lat.t[4] = e.lat.op[1] & 31; // src digits
            e.lat.t[5] = e.lat.op[4] & 31; // dst digits
            e.lat.t[0] = e.lat.op[2];
            e.lat.t[1] = packedBytes(e.lat.t[4]);
            e.lat.t[2] = 0;
            e.uJump(rd);
        });
        c.ua.bindAt(rd, c.ua.here());
        emitReadLoop(c, "ASHP.rd", decode);
        c.bind(decode);
        c.emit(R, "ASHP.scale", flowTo(digits), [digits](Ebox &e) {
            int64_t v = decodeBuf(e, 0, e.lat.t[4]);
            int8_t cnt = static_cast<int8_t>(e.lat.op[0]);
            if (cnt >= 0) {
                for (int i = 0; i < cnt && i < 18; ++i)
                    v *= 10;
            } else {
                int64_t div = 1;
                for (int i = 0; i < -cnt && i < 18; ++i)
                    div *= 10;
                int64_t round =
                    (static_cast<int64_t>(e.lat.op[3] & 0xFF)) *
                    (div / 10);
                v = (v + (v < 0 ? -round : round)) / div;
            }
            e.lat.wide[0] = v;
            e.lat.sc = e.lat.t[5] ? e.lat.t[5] : 1;
            e.uJump(digits);
        });
        c.ua.bindAt(digits, c.ua.here());
        emitDigitLoop(c, "ASHP.digit", wb);
        c.bind(wb);
        c.emit(R, "ASHP.wsetup", flowFall(), [](Ebox &e) {
            encodeBuf(e, 0, e.lat.t[5], e.lat.wide[0]);
            setDecimalCc(e, e.lat.wide[0]);
            e.lat.t[0] = e.lat.op[5];
            e.lat.t[1] = packedBytes(e.lat.t[5]);
            e.lat.t[2] = 0;
        });
        emitWriteLoop(c, "ASHP.wb", fin);
        c.bind(fin);
        c.emit(R, "ASHP.fin", flowEnd(), [](Ebox &e) {
            e.r(R0) = 0;
            e.r(R1) = e.lat.op[2];
            e.endInstruction();
        });
    }
}

} // anonymous namespace

void
buildDecimalFlows(RomCtx &c)
{
    buildAddP(c);
    buildCmpMovP(c);
    buildCvtAshP(c);
}

} // namespace vax
