/**
 * @file
 * Execute flows of the SYSTEM group: change-mode and REI, context
 * switch (SVPCTX/LDPCTX), protection probes, interlocked queues, and
 * processor-register access.
 *
 * PCB layout (physical memory at PCBB):
 *   +0 KSP, +4 USP, +8..+60 R0-R13, +64 PC, +68 PSL,
 *   +72 P0BR, +76 P0LR, +80 P1BR, +84 P1LR.
 */

#include "cpu/pregs.hh"
#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::System;
constexpr Row R = Row::ExecSystem;

constexpr uint32_t pcbKsp = 0;
constexpr uint32_t pcbUsp = 4;
constexpr uint32_t pcbGpr = 8;   // R0-R13
constexpr uint32_t pcbPc = 64;
constexpr uint32_t pcbPsl = 68;
constexpr uint32_t pcbP0br = 72;
constexpr uint32_t pcbP0lr = 76;
constexpr uint32_t pcbP1br = 80;
constexpr uint32_t pcbP1lr = 84;

/** SCB vector index used by CHMK (interrupt levels use 0-31). */
constexpr uint32_t scbChmk = 32;

void
buildChmRei(RomCtx &c)
{
    // CHMK code.rw: trap into the kernel through the SCB.
    execEntry(c, ExecFlow::Chmk, G, "CHMK", flowFall(), [](Ebox &e) {
        ++e.hw().chmkCalls;
        e.lat.t[0] = e.psl().pack();
        e.lat.t[1] = e.decodePc();
        CpuMode old = e.psl().cur;
        e.switchMode(CpuMode::Kernel);
        e.psl().prev = old;
    });
    c.emitWrite(R, "CHMK.pushpsl", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[0], 4);
    });
    c.emitWrite(R, "CHMK.pushpc", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[1], 4);
    });
    c.emitWrite(R, "CHMK.pushcode", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.op[0], 4);
    });
    c.emitRead(R, "CHMK.vec", flowFall(), [](Ebox &e) {
        e.memReadPhys(e.prRaw(pr::SCBB) + 4 * scbChmk);
    });
    c.emit(R, "CHMK.go", flowEnd(), [](Ebox &e) {
        e.redirect(e.md());
        e.endInstruction();
    });

    // REI: pop PC and PSL, drop back to the interrupted context.
    execEntry(c, ExecFlow::Rei, G, "REI", flowFall(), [](Ebox &e) {
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    }, UMemKind::Read);
    c.emitRead(R, "REI.rdpsl", flowFall(), [](Ebox &e) {
        e.lat.t[1] = e.md();
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    });
    c.emit(R, "REI.chk", flowFall(), [](Ebox &e) {
        e.lat.t[2] = e.md();
        // Consistency checks of the restored PSL happen here.
    });
    c.emit(R, "REI.go", flowEnd(), [](Ebox &e) {
        Psl np = Psl::unpack(e.lat.t[2]);
        e.switchMode(np.cur);
        e.psl() = np;
        e.redirect(e.lat.t[1]);
        e.endInstruction();
    });
}

void
buildContextSwitch(RomCtx &c)
{
    // SVPCTX: pop PC/PSL from the kernel stack into the PCB and save
    // the general state.
    {
        ULabel loop = c.lbl();
        execEntry(c, ExecFlow::SvPctx, G, "SVPCTX", flowFall(), [](Ebox &e) {
            if (e.psl().cur != CpuMode::Kernel)
                e.fault(FaultKind::PrivilegedInstruction, "SVPCTX");
            e.lat.t[0] = e.prRaw(pr::PCBB);
        });
        c.emitRead(R, "SVPCTX.poppc", flowFall(), [](Ebox &e) {
            e.memRead(e.r(SP), 4);
            e.r(SP) += 4;
        });
        c.emitRead(R, "SVPCTX.poppsl", flowFall(), [](Ebox &e) {
            e.lat.t[1] = e.md();
            e.memRead(e.r(SP), 4);
            e.r(SP) += 4;
        });
        c.emitWrite(R, "SVPCTX.wpc", flowFall(), [](Ebox &e) {
            e.lat.t[2] = e.md();
            e.memWritePhys(e.lat.t[0] + pcbPc, e.lat.t[1], 4);
        });
        c.emitWrite(R, "SVPCTX.wpsl", flowFall(), [](Ebox &e) {
            e.memWritePhys(e.lat.t[0] + pcbPsl, e.lat.t[2], 4);
        });
        c.emitWrite(R, "SVPCTX.wksp", flowFall(), [](Ebox &e) {
            e.memWritePhys(e.lat.t[0] + pcbKsp, e.r(SP), 4);
        });
        c.emitWrite(R, "SVPCTX.wusp", flowFall(), [](Ebox &e) {
            e.memWritePhys(e.lat.t[0] + pcbUsp, e.mfpr(pr::USP), 4);
        });
        c.emit(R, "SVPCTX.linit", flowTo(loop), [loop](Ebox &e) {
            e.lat.sc = 0;
            e.uJump(loop);
        });
        c.bind(loop);
        c.emitWrite(R, "SVPCTX.wreg",
                    flowTo(loop).orEnd().withLoopBound(14), [loop](Ebox &e) {
            uint32_t r = e.lat.sc;
            if (r + 1 < 14) {
                e.lat.sc = r + 1;
                e.uJump(loop);
            } else {
                e.endInstruction();
            }
            e.memWritePhys(e.lat.t[0] + pcbGpr + 4 * r, e.r(r), 4);
        });
    }

    // LDPCTX: load the new process's state, flush the process TB,
    // and push PC/PSL for the REI that follows.
    {
        ULabel rloop = c.lbl();
        UAnnotation a = c.ann(R, "LDPCTX");
        a.mark = UMark::CtxSwitch;
        a.flow = ExecFlow::LdPctx;
        // LDPCTX is both an execute entry and the context-switch
        // event marker; register the entry by hand.
        UAddr entry = c.emitFull(a, flowFall(), [](Ebox &e) {
            if (e.psl().cur != CpuMode::Kernel)
                e.fault(FaultKind::PrivilegedInstruction, "LDPCTX");
            ++e.hw().contextSwitches;
            e.lat.t[0] = e.prRaw(pr::PCBB);
            e.lat.sc = 0;
        });
        c.ep.exec[static_cast<size_t>(ExecFlow::LdPctx)] = entry;
        c.bind(rloop);
        c.emitRead(R, "LDPCTX.rreg", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbGpr + 4 * e.lat.sc);
        });
        c.emit(R, "LDPCTX.wreg",
               flowTo(rloop).orFall().withLoopBound(14), [rloop](Ebox &e) {
            e.r(e.lat.sc) = e.md();
            if (++e.lat.sc < 14)
                e.uJump(rloop);
        });
        c.emitRead(R, "LDPCTX.rusp", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbUsp);
        });
        c.emit(R, "LDPCTX.wusp", flowFall(), [](Ebox &e) {
            e.mtpr(pr::USP, e.md());
        });
        c.emitRead(R, "LDPCTX.rp0br", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbP0br);
        });
        c.emit(R, "LDPCTX.wp0br", flowFall(), [](Ebox &e) {
            e.setPrRaw(pr::P0BR, e.md());
        });
        c.emitRead(R, "LDPCTX.rp0lr", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbP0lr);
        });
        c.emit(R, "LDPCTX.wp0lr", flowFall(), [](Ebox &e) {
            e.setPrRaw(pr::P0LR, e.md());
        });
        c.emitRead(R, "LDPCTX.rp1br", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbP1br);
        });
        c.emit(R, "LDPCTX.wp1br", flowFall(), [](Ebox &e) {
            e.setPrRaw(pr::P1BR, e.md());
        });
        c.emitRead(R, "LDPCTX.rp1lr", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbP1lr);
        });
        c.emit(R, "LDPCTX.wp1lr", flowFall(), [](Ebox &e) {
            e.setPrRaw(pr::P1LR, e.md());
        });
        c.emit(R, "LDPCTX.tbflush", flowFall(), [](Ebox &e) {
            e.tbInvalidateProcess();
        });
        c.emitRead(R, "LDPCTX.rksp", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbKsp);
        });
        c.emit(R, "LDPCTX.wksp", flowFall(), [](Ebox &e) { e.r(SP) = e.md(); });
        c.emitRead(R, "LDPCTX.rpc", flowFall(), [](Ebox &e) {
            e.memReadPhys(e.lat.t[0] + pcbPc);
        });
        c.emitRead(R, "LDPCTX.rpsl", flowFall(), [](Ebox &e) {
            e.lat.t[1] = e.md();
            e.memReadPhys(e.lat.t[0] + pcbPsl);
        });
        c.emitWrite(R, "LDPCTX.pushpsl", flowFall(), [](Ebox &e) {
            e.lat.t[2] = e.md();
            e.r(SP) -= 4;
            e.memWrite(e.r(SP), e.lat.t[2], 4);
        });
        c.emitWrite(R, "LDPCTX.pushpc", flowEnd(), [](Ebox &e) {
            e.r(SP) -= 4;
            e.memWrite(e.r(SP), e.lat.t[1], 4);
            e.endInstruction();
        });
    }
}

void
buildQueueProbeMisc(RomCtx &c)
{
    // PROBER/PROBEW mode.rb, len.rw, base.ab.
    execEntry(c, ExecFlow::Probe, G, "PROBE", flowFall(), [](Ebox &e) {
        CpuMode m = static_cast<CpuMode>(e.lat.op[0] & 3);
        // Check against the less privileged of operand/previous mode.
        if (static_cast<unsigned>(e.psl().prev) >
            static_cast<unsigned>(m)) {
            m = e.psl().prev;
        }
        bool is_write = e.lat.opcode == op::PROBEW;
        e.lat.t[0] = e.probeAccess(e.lat.op[2], is_write, m);
        e.lat.t[1] = static_cast<uint32_t>(m);
    });
    c.emit(R, "PROBE.fin", flowEnd(), [](Ebox &e) {
        bool last_ok = e.probeAccess(
            e.lat.op[2] + (e.lat.op[1] & 0xFFFF) - 1,
            e.lat.opcode == op::PROBEW,
            static_cast<CpuMode>(e.lat.t[1]));
        bool ok = e.lat.t[0] && last_ok;
        e.psl().cc.z = !ok; // Z set when access NOT allowed
        e.endInstruction();
    });

    // INSQUE entry.ab, pred.ab.
    execEntry(c, ExecFlow::InsQue, G, "INSQUE", flowFall(), [](Ebox &e) {
        e.memRead(e.lat.op[1], 4); // successor = pred.flink
    }, UMemKind::Read);
    c.emit(R, "INSQUE.t", flowFall(), [](Ebox &e) { e.lat.t[0] = e.md(); });
    c.emitWrite(R, "INSQUE.w1", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.op[0], e.lat.t[0], 4); // entry.flink
    });
    c.emitWrite(R, "INSQUE.w2", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.op[0] + 4, e.lat.op[1], 4); // entry.blink
    });
    c.emitWrite(R, "INSQUE.w3", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.op[1], e.lat.op[0], 4); // pred.flink
    });
    c.emitWrite(R, "INSQUE.w4", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.t[0] + 4, e.lat.op[0], 4); // succ.blink
        e.psl().cc.z = e.lat.t[0] == e.lat.op[1]; // queue was empty
        e.endInstruction();
    });

    // REMQUE entry.ab, addr.wl.
    StoreTail rq_st = makeStoreTail(c, R, "REMQUE");
    execEntry(c, ExecFlow::RemQue, G, "REMQUE", flowFall(), [](Ebox &e) {
        e.memRead(e.lat.op[0], 4); // flink
    }, UMemKind::Read);
    c.emitRead(R, "REMQUE.r2", flowFall(), [](Ebox &e) {
        e.lat.t[1] = e.md();
        e.memRead(e.lat.op[0] + 4, 4); // blink
    });
    c.emit(R, "REMQUE.t", flowFall(), [](Ebox &e) { e.lat.t[2] = e.md(); });
    c.emitWrite(R, "REMQUE.w1", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.t[2], e.lat.t[1], 4); // blink.flink = flink
    });
    c.emitWrite(R, "REMQUE.w2", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.t[1] + 4, e.lat.t[2], 4); // flink.blink
    });
    c.emit(R, "REMQUE.fin", flowStore(rq_st), [rq_st](Ebox &e) {
        e.lat.t[0] = e.lat.op[0];
        e.psl().cc.z = e.lat.t[1] == e.lat.t[2]; // queue now empty
        jumpStore(e, rq_st);
    });

    // MTPR src.rl, procreg.rl -- with the SIRR request marked so the
    // analyzer can count software-interrupt requests (Table 7).
    {
        ULabel sirr = c.lbl();
        execEntry(c, ExecFlow::Mtpr, G, "MTPR",
                  flowTo(sirr).orEnd(), [sirr](Ebox &e) {
            if (e.lat.op[1] == pr::SIRR) {
                e.uJump(sirr);
                return;
            }
            e.mtpr(e.lat.op[1], e.lat.op[0]);
            e.endInstruction();
        });
        c.bind(sirr);
        UAnnotation a = c.ann(R, "MTPR.sirr");
        a.mark = UMark::SwIntRequest;
        c.emitFull(a, flowEnd(), [](Ebox &e) {
            e.mtpr(pr::SIRR, e.lat.op[0]);
            e.endInstruction();
        });
    }

    StoreTail mfpr_st = makeStoreTail(c, R, "MFPR");
    execEntry(c, ExecFlow::Mfpr, G, "MFPR", flowStore(mfpr_st),
              [mfpr_st](Ebox &e) {
        e.lat.t[0] = e.mfpr(e.lat.op[0]);
        e.setCcNz(e.lat.t[0], DataType::Long);
        jumpStore(e, mfpr_st);
    });

    // BISPSW/BICPSW: set/clear PSW condition-code and trap-enable
    // bits (we model the condition codes).
    execEntry(c, ExecFlow::Psw, G, "xxxPSW", flowEnd(), [](Ebox &e) {
        uint32_t mask = e.lat.op[0] & 0xF; // cc bits only
        uint32_t cur = e.psl().pack() & 0xF;
        uint32_t next = e.lat.opcode == op::BISPSW ? (cur | mask)
                                                   : (cur & ~mask);
        Psl p = e.psl();
        p.cc.c = next & 1;
        p.cc.v = next & 2;
        p.cc.z = next & 4;
        p.cc.n = next & 8;
        e.psl() = p;
        e.endInstruction();
    });

    execEntry(c, ExecFlow::Halt, G, "HALT", flowStop(), [](Ebox &e) {
        if (e.psl().cur != CpuMode::Kernel)
            e.fault(FaultKind::PrivilegedInstruction, "HALT");
        e.setHalted();
    });

    execEntry(c, ExecFlow::Nop, G, "NOP", flowEnd(), [](Ebox &e) {
        e.endInstruction();
    });

    execEntry(c, ExecFlow::Bpt, G, "BPT", flowStop(), [](Ebox &e) {
        e.fault(FaultKind::Breakpoint);
    });
}

} // anonymous namespace

void
buildSystemFlows(RomCtx &c)
{
    buildChmRei(c);
    buildContextSwitch(c);
    buildQueueProbeMisc(c);
}

} // namespace vax
