/**
 * @file
 * Memory-management and interrupt microcode.
 *
 * TB-miss service (the routine whose entry counts give the paper its
 * 0.029 misses/instruction and whose cycle counts give the 21.6
 * cycles/miss, including the read stalls on PTE fetches), unaligned
 * reference service, and the interrupt dispatch microcode.
 */

#include "cpu/pregs.hh"
#include "mem/page_table.hh"
#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

/**
 * Emit one copy of the TB-fill routine.
 *
 * @param istream True for the I-stream variant (clears the I-Fetch
 *                miss flag before returning).
 * @return Entry address.
 */
UAddr
emitTbFill(RomCtx &c, bool istream)
{
    const char *base = istream ? "MM.TBI" : "MM.TBD";
    ULabel sys = c.lbl();
    ULabel have_spte = c.lbl();
    ULabel fin = c.lbl();

    // t0 = faulting VA, t1 = VPN, t2 = PTE system VA, t3 = PTE PA.
    UAnnotation entry_ann = c.ann(Row::MemMgmt, base);
    entry_ann.mark = istream ? UMark::TbMissI : UMark::TbMissD;
    UAddr entry = c.emitFull(entry_ann, flowTo(sys).orFall(),
                             [sys](Ebox &e) {
        e.lat.mm[0] = e.trapVaTop();
        e.lat.mm[1] = vaVpn(e.lat.mm[0]);
        e.uIf(vaRegion(e.lat.mm[0]) == VaRegion::S0, sys);
    });

    // ---- Process-space path ----
    c.emit(Row::MemMgmt, "MM.pbr", flowFall(), [](Ebox &e) {
        bool p1 = vaRegion(e.lat.mm[0]) == VaRegion::P1;
        uint32_t br = e.prRaw(p1 ? pr::P1BR : pr::P0BR);
        uint32_t lr = e.prRaw(p1 ? pr::P1LR : pr::P0LR);
        if (e.lat.mm[1] >= lr)
            e.fault(FaultKind::AccessViolation, "page-table length");
        e.lat.mm[2] = br + 4 * e.lat.mm[1];
    });
    c.emit(Row::MemMgmt, "MM.save", flowFall(), [](Ebox &e) {
        // Internal-state save cycle (the real routine preserved its
        // working registers; ours are a dedicated bank).
        (void)e;
    });
    c.emit(Row::MemMgmt, "MM.save2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.save3", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.save4", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.save5", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.save6", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.probe", flowTo(have_spte).orFall(), [have_spte](Ebox &e) {
        PhysAddr pa;
        if (e.tbProbeSystem(e.lat.mm[2], &pa)) {
            e.lat.mm[3] = pa;
            e.uJump(have_spte);
        }
    });
    // Double miss: fetch the system PTE mapping the page table page.
    c.emit(Row::MemMgmt, "MM.sptadr", flowFall(), [](Ebox &e) {
        uint32_t svpn = vaVpn(e.lat.mm[2]);
        if (svpn >= e.prRaw(pr::SLR))
            e.fault(FaultKind::AccessViolation, "system PT length");
        e.lat.mm[4] = e.prRaw(pr::SBR) + 4 * svpn;
    });
    c.emitRead(Row::MemMgmt, "MM.sptread", flowFall(),
               [](Ebox &e) { e.memReadPhys(e.lat.mm[4]); });
    c.emit(Row::MemMgmt, "MM.sptins", flowFall(), [](Ebox &e) {
        e.tbInsert(e.lat.mm[2], e.md());
    });
    c.emit(Row::MemMgmt, "MM.reprobe", flowFall(), [](Ebox &e) {
        PhysAddr pa;
        bool hit = e.tbProbeSystem(e.lat.mm[2], &pa);
        upc_assert(hit);
        e.lat.mm[3] = pa;
    });

    c.bind(have_spte);
    c.emitRead(Row::MemMgmt, "MM.pteread", flowFall(),
               [](Ebox &e) { e.memReadPhys(e.lat.mm[3]); });
    c.emit(Row::MemMgmt, "MM.prot", flowFall(), [](Ebox &e) {
        // Protection / valid check of the fetched PTE.
        if (!pte::valid(e.md()))
            e.fault(FaultKind::TranslationNotValid, "process page");
    });
    c.emit(Row::MemMgmt, "MM.ins", flowFall(), [](Ebox &e) {
        e.tbInsert(e.lat.mm[0], e.md());
    });
    c.emit(Row::MemMgmt, "MM.mbit", flowFall(), [](Ebox &e) {
        // Modify-bit bookkeeping (modelled as a cycle, no state).
        (void)e;
    });
    c.emit(Row::MemMgmt, "MM.rest1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.rest2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.rest3", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.rest4", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.rest5", flowTo(fin), [fin](Ebox &e) { e.uJump(fin); });

    // ---- System-space path ----
    c.bind(sys);
    c.emit(Row::MemMgmt, "MM.sadr", flowFall(), [](Ebox &e) {
        if (e.lat.mm[1] >= e.prRaw(pr::SLR))
            e.fault(FaultKind::AccessViolation, "system PT length");
        e.lat.mm[3] = e.prRaw(pr::SBR) + 4 * e.lat.mm[1];
    });
    c.emitRead(Row::MemMgmt, "MM.sread", flowFall(),
               [](Ebox &e) { e.memReadPhys(e.lat.mm[3]); });
    c.emit(Row::MemMgmt, "MM.scheck", flowFall(), [](Ebox &e) {
        if (!pte::valid(e.md()))
            e.fault(FaultKind::TranslationNotValid, "system page");
    });
    c.emit(Row::MemMgmt, "MM.sins", flowFall(), [](Ebox &e) {
        e.tbInsert(e.lat.mm[0], e.md());
    });
    c.emit(Row::MemMgmt, "MM.spad1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::MemMgmt, "MM.spad2", flowTo(fin), [fin](Ebox &e) { e.uJump(fin); });

    // ---- Common epilogue ----
    c.bind(fin);
    if (istream) {
        c.emit(Row::MemMgmt, "MM.iclear", flowFall(), [](Ebox &e) {
            e.clearItbMissFlag();
        });
    }
    c.emit(Row::MemMgmt, istream ? "MM.iret" : "MM.dret",
           flowTrapRet(), [](Ebox &e) { e.uTrapRet(); });

    return entry;
}

void
emitAlignment(RomCtx &c)
{
    // Unaligned read: two aligned references merged, as the alignment
    // microcode on the real machine did.
    {
        UAnnotation a = c.ann(Row::MemMgmt, "MM.alignR");
        a.mark = UMark::UnalignedEntry;
        c.ep.alignRead = c.emitFull(a, flowFall(), [](Ebox &e) {
            VirtAddr va;
            uint32_t data;
            unsigned bytes;
            e.trappedOp(&va, &data, &bytes);
            e.lat.alg[0] = va;
            e.lat.alg[1] = bytes;
            e.lat.alg[3] = 4 - (va & 3); // bytes in the first part
        });
        c.emitRead(Row::MemMgmt, "MM.alignR1", flowFall(), [](Ebox &e) {
            e.memRead(e.lat.alg[0], e.lat.alg[3]);
        });
        c.emitRead(Row::MemMgmt, "MM.alignR2", flowFall(), [](Ebox &e) {
            e.lat.alg[2] = e.md();
            e.memRead(e.lat.alg[0] + e.lat.alg[3],
                      e.lat.alg[1] - e.lat.alg[3]);
        });
        c.emit(Row::MemMgmt, "MM.alignRm", flowTrapRet(), [](Ebox &e) {
            e.setMd(e.lat.alg[2] | (e.md() << (8 * e.lat.alg[3])));
            e.uTrapRetSatisfied();
        });
    }

    // Unaligned write: two aligned partial writes.
    {
        UAnnotation a = c.ann(Row::MemMgmt, "MM.alignW");
        a.mark = UMark::UnalignedEntry;
        c.ep.alignWrite = c.emitFull(a, flowFall(), [](Ebox &e) {
            VirtAddr va;
            uint32_t data;
            unsigned bytes;
            e.trappedOp(&va, &data, &bytes);
            e.lat.alg[0] = va;
            e.lat.alg[1] = bytes;
            e.lat.alg[2] = data;
            e.lat.alg[3] = 4 - (va & 3);
        });
        c.emitWrite(Row::MemMgmt, "MM.alignW1", flowFall(), [](Ebox &e) {
            uint32_t mask = (1u << (8 * e.lat.alg[3])) - 1;
            e.memWrite(e.lat.alg[0], e.lat.alg[2] & mask, e.lat.alg[3]);
        });
        c.emitWrite(Row::MemMgmt, "MM.alignW2", flowFall(), [](Ebox &e) {
            e.memWrite(e.lat.alg[0] + e.lat.alg[3],
                       e.lat.alg[2] >> (8 * e.lat.alg[3]),
                       e.lat.alg[1] - e.lat.alg[3]);
        });
        c.emit(Row::MemMgmt, "MM.alignWf", flowTrapRet(), [](Ebox &e) {
            e.uTrapRetSatisfied();
        });
    }
}

void
emitInterrupt(RomCtx &c)
{
    UAnnotation a = c.ann(Row::IntExcept, "INT.entry");
    a.mark = UMark::InterruptEntry;
    c.ep.interrupt = c.emitFull(a, flowFall(), [](Ebox &e) {
        // Pack the interrupted PSL/PC, then switch to kernel.
        e.lat.t[0] = e.psl().pack();
        e.lat.t[1] = e.decodePc();
        CpuMode old = e.psl().cur;
        e.switchMode(CpuMode::Kernel);
        e.psl().prev = old;
    });
    c.emit(Row::IntExcept, "INT.vec", flowFall(), [](Ebox &e) {
        e.lat.t[2] = e.prRaw(pr::SCBB) +
            4 * e.pendingIntLevel();
    });
    // IPL arbitration, mode/stack selection and consistency checking
    // cycles of the real interrupt microcode.
    c.emit(Row::IntExcept, "INT.arb1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.arb2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.stksel", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.chk1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.chk2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.ast1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.ast2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.save1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.save2", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "INT.save3", flowFall(), [](Ebox &e) { (void)e; });
    c.emitWrite(Row::IntExcept, "INT.pushpsl", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[0], 4);
    });
    c.emitWrite(Row::IntExcept, "INT.pushpc", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[1], 4);
    });
    c.emitRead(Row::IntExcept, "INT.scbread", flowFall(),
               [](Ebox &e) { e.memReadPhys(e.lat.t[2]); });
    c.emit(Row::IntExcept, "INT.disp", flowEnd(), [](Ebox &e) {
        e.psl().ipl = static_cast<uint8_t>(e.pendingIntLevel());
        e.redirect(e.md());
        e.endInstruction();
    });
}

/** SCB vector index for machine checks (matches abi::vecMachineCheck;
 *  interrupt levels use 0-31, CHMK uses 32). */
constexpr uint32_t scbMachineCheck = 33;

/**
 * Machine-check dispatch: like an interrupt, but pushes a third
 * longword (the cause code latched by the fault injector) on top of
 * the PC so the handler can pop it before REI.  Runs at IPL 31 --
 * nothing interrupts a machine check.
 */
void
emitMachineCheck(RomCtx &c)
{
    UAnnotation a = c.ann(Row::IntExcept, "MCHK.entry");
    a.mark = UMark::InterruptEntry;
    c.ep.machineCheck = c.emitFull(a, flowFall(), [](Ebox &e) {
        e.lat.t[0] = e.psl().pack();
        e.lat.t[1] = e.decodePc();
        CpuMode old = e.psl().cur;
        e.switchMode(CpuMode::Kernel);
        e.psl().prev = old;
    });
    c.emit(Row::IntExcept, "MCHK.vec", flowFall(), [](Ebox &e) {
        e.lat.t[2] = e.prRaw(pr::SCBB) + 4 * scbMachineCheck;
    });
    // Error-register scan cycles: the real MCHK flow read out the
    // cache/TB/SBI error status before building its stack frame.
    c.emit(Row::IntExcept, "MCHK.scan1", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(Row::IntExcept, "MCHK.scan2", flowFall(), [](Ebox &e) { (void)e; });
    c.emitWrite(Row::IntExcept, "MCHK.pushpsl", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[0], 4);
    });
    c.emitWrite(Row::IntExcept, "MCHK.pushpc", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[1], 4);
    });
    c.emitWrite(Row::IntExcept, "MCHK.pushcause", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.mcheckCause(), 4);
    });
    c.emitRead(Row::IntExcept, "MCHK.scbread", flowFall(),
               [](Ebox &e) { e.memReadPhys(e.lat.t[2]); });
    c.emit(Row::IntExcept, "MCHK.disp", flowEnd(), [](Ebox &e) {
        e.psl().ipl = 31;
        e.redirect(e.md());
        e.endInstruction();
    });
}

} // anonymous namespace

void
buildMmMicrocode(RomCtx &c)
{
    c.ep.tbMissD = emitTbFill(c, false);
    c.ep.tbMissI = emitTbFill(c, true);
    emitAlignment(c);
    emitInterrupt(c);
    emitMachineCheck(c);
}

} // namespace vax
