/**
 * @file
 * Execute flows of the FLOAT group: F_floating arithmetic (with
 * FPA-class timing) and integer multiply/divide, which the paper's
 * Table 1 places in this group.
 *
 * Multi-cycle arithmetic is modelled the way real microcode looped:
 * a step microinstruction that re-executes itself, so the histogram
 * shows the iteration count at one control-store location.
 */

#include "arch/ffloat.hh"
#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::Float;
constexpr Row R = Row::ExecFloat;

/** Emit a self-looping step word burning lat.sc cycles.  `bound` is
 *  the static loop-bound annotation: the largest value the preceding
 *  setup word ever loads into lat.sc (ubound's worst-case ceiling). */
ULabel
emitStepLoop(RomCtx &c, const char *name, uint32_t bound)
{
    ULabel step = c.lbl();
    c.bind(step);
    c.emit(R, name, flowTo(step).orFall().withLoopBound(bound),
           [step](Ebox &e) {
        if (e.lat.sc > 1) {
            --e.lat.sc;
            e.uJump(step);
        }
    });
    return step;
}

void
buildFFlows(RomCtx &c)
{
    // ADDF/SUBF (shared; FPA does the work in a couple of passes).
    StoreTail st = makeStoreTail(c, R, "FADD");
    execEntry(c, ExecFlow::FAddSub, G, "FADD", flowFall(), [](Ebox &e) {
        double a = fToDouble(e.lat.op[0]);
        double b = fToDouble(e.lat.op[1]);
        bool sub = e.lat.opcode == op::SUBF2 ||
            e.lat.opcode == op::SUBF3;
        double r = sub ? b - a : a + b;
        e.lat.t[0] = doubleToF(r);
        e.setCcFromF(r);
    });
    c.emit(R, "FADD.align", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(R, "FADD.add", flowFall(), [](Ebox &e) { (void)e; });
    c.emit(R, "FADD.norm", flowStore(st), [st](Ebox &e) {
        // Normalization / round pass.
        jumpStore(e, st);
    });

    // MULF: three FPA multiply passes.
    StoreTail mul_st = makeStoreTail(c, R, "FMUL");
    ULabel mul_step = c.lbl();
    execEntry(c, ExecFlow::FMul, G, "FMUL", flowTo(mul_step),
              [mul_step](Ebox &e) {
        double r = fToDouble(e.lat.op[0]) * fToDouble(e.lat.op[1]);
        e.lat.t[0] = doubleToF(r);
        e.setCcFromF(r);
        e.lat.sc = 5;
        e.uJump(mul_step);
    });
    c.ua.bindAt(mul_step, c.ua.here());
    {
        ULabel self = c.lbl();
        c.ua.bindAt(self, c.ua.here());
        c.emit(R, "FMUL.step", flowTo(self).orFall().withLoopBound(5),
               [self](Ebox &e) {
            if (e.lat.sc > 1) {
                --e.lat.sc;
                e.uJump(self);
            }
        });
    }
    c.emit(R, "FMUL.fin", flowStore(mul_st), [mul_st](Ebox &e) { jumpStore(e, mul_st); });

    // DIVF: six divide passes.
    StoreTail div_st = makeStoreTail(c, R, "FDIV");
    execEntry(c, ExecFlow::FDiv, G, "FDIV", flowFall(), [](Ebox &e) {
        double a = fToDouble(e.lat.op[0]);
        double b = fToDouble(e.lat.op[1]);
        double r;
        if (a == 0.0) {
            // Divide by zero: set V, deliver the dividend (workloads
            // avoid this; semantics kept non-trapping).
            e.psl().cc.v = true;
            r = b;
        } else {
            r = b / a;
        }
        e.lat.t[0] = doubleToF(r);
        e.setCcFromF(r);
        e.lat.sc = 9;
    });
    emitStepLoop(c, "FDIV.step", 9);
    c.emit(R, "FDIV.fin", flowStore(div_st), [div_st](Ebox &e) { jumpStore(e, div_st); });

    // MOVF / MNEGF.
    StoreTail fmov_st = makeStoreTail(c, R, "FMOV");
    execEntry(c, ExecFlow::FMov, G, "FMOV", flowStore(fmov_st),
              [fmov_st](Ebox &e) {
        uint32_t v = e.lat.op[0];
        if (e.lat.opcode == op::MNEGF && !(v == 0))
            v ^= 0x8000u; // flip the F_floating sign bit
        e.lat.t[0] = v;
        e.setCcFromF(fToDouble(v));
        jumpStore(e, fmov_st);
    });

    // CMPF / TSTF.
    execEntry(c, ExecFlow::FCmp, G, "FCMP", flowEnd(), [](Ebox &e) {
        double a = fToDouble(e.lat.op[0]);
        double b = e.lat.opcode == op::CMPF ? fToDouble(e.lat.op[1])
                                            : 0.0;
        e.psl().cc.n = a < b;
        e.psl().cc.z = a == b;
        e.psl().cc.v = false;
        e.psl().cc.c = false;
        e.endInstruction();
    });

    // CVTFL / CVTLF.
    StoreTail cvt_st = makeStoreTail(c, R, "FCVT");
    execEntry(c, ExecFlow::CvtFI, G, "CVTFL", flowFall(), [](Ebox &e) {
        double d = fToDouble(e.lat.op[0]);
        e.lat.t[0] = static_cast<uint32_t>(static_cast<int64_t>(d));
        e.setCcNz(e.lat.t[0], DataType::Long);
    });
    c.emit(R, "CVTFL.fin", flowStore(cvt_st), [cvt_st](Ebox &e) { jumpStore(e, cvt_st); });
    execEntry(c, ExecFlow::CvtIF, G, "CVTLF", flowFall(), [](Ebox &e) {
        double d = static_cast<int32_t>(e.lat.op[0]);
        e.lat.t[0] = doubleToF(d);
        e.setCcFromF(d);
    });
    c.emit(R, "CVTLF.fin", flowStore(cvt_st), [cvt_st](Ebox &e) { jumpStore(e, cvt_st); });
}

void
buildIntegerMulDiv(RomCtx &c)
{
    // MULL: eight 4-bit multiply steps.
    StoreTail mull_st = makeStoreTail(c, R, "MULL");
    execEntry(c, ExecFlow::MulL, G, "MULL", flowFall(), [](Ebox &e) {
        int64_t p = static_cast<int64_t>(
                        static_cast<int32_t>(e.lat.op[0])) *
            static_cast<int32_t>(e.lat.op[1]);
        e.lat.t[0] = static_cast<uint32_t>(p);
        e.psl().cc.v = p != static_cast<int32_t>(p);
        e.psl().cc.n = (e.lat.t[0] >> 31) & 1;
        e.psl().cc.z = e.lat.t[0] == 0;
        e.psl().cc.c = false;
        e.lat.sc = 10;
    });
    emitStepLoop(c, "MULL.step", 10);
    c.emit(R, "MULL.fin", flowStore(mull_st), [mull_st](Ebox &e) { jumpStore(e, mull_st); });

    // DIVL: sixteen divide steps.
    StoreTail divl_st = makeStoreTail(c, R, "DIVL");
    execEntry(c, ExecFlow::DivL, G, "DIVL", flowFall(), [](Ebox &e) {
        int32_t divisor = static_cast<int32_t>(e.lat.op[0]);
        int32_t dividend = static_cast<int32_t>(e.lat.op[1]);
        if (divisor == 0 ||
            (divisor == -1 && dividend == INT32_MIN)) {
            e.psl().cc.v = true;
            e.lat.t[0] = static_cast<uint32_t>(dividend);
        } else {
            e.lat.t[0] = static_cast<uint32_t>(dividend / divisor);
            e.psl().cc.v = false;
        }
        e.psl().cc.n = (e.lat.t[0] >> 31) & 1;
        e.psl().cc.z = e.lat.t[0] == 0;
        e.psl().cc.c = false;
        e.lat.sc = 18;
    });
    emitStepLoop(c, "DIVL.step", 18);
    c.emit(R, "DIVL.fin", flowStore(divl_st), [divl_st](Ebox &e) { jumpStore(e, divl_st); });

    // EMUL mulr.rl, muld.rl, add.rl, prod.wq.
    ULabel emul_qreg = c.lbl(), emul_qmem = c.lbl();
    execEntry(c, ExecFlow::Emul, G, "EMUL", flowFall(), [](Ebox &e) {
        int64_t p = static_cast<int64_t>(
                        static_cast<int32_t>(e.lat.op[0])) *
            static_cast<int32_t>(e.lat.op[1]) +
            static_cast<int32_t>(e.lat.op[2]);
        e.lat.t[0] = static_cast<uint32_t>(p);
        e.lat.t[1] = static_cast<uint32_t>(p >> 32);
        e.psl().cc.n = p < 0;
        e.psl().cc.z = p == 0;
        e.psl().cc.v = false;
        e.lat.sc = 8;
    });
    emitStepLoop(c, "EMUL.step", 8);
    c.emit(R, "EMUL.fin", flowTo({emul_qreg, emul_qmem}),
           [emul_qreg, emul_qmem](Ebox &e) {
        e.uJump(e.lat.dst[0].kind == DstLatch::Kind::Reg ? emul_qreg
                                                         : emul_qmem);
    });
    c.bind(emul_qreg);
    c.emit(R, "EMUL.streg", flowEnd(), [](Ebox &e) {
        e.r(e.lat.dst[0].reg) = e.lat.t[0];
        e.r((e.lat.dst[0].reg + 1) & 0xF) = e.lat.t[1];
        e.endInstruction();
    });
    c.bind(emul_qmem);
    c.emitWrite(R, "EMUL.stmem1", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.dst[0].addr, e.lat.t[0], 4);
    });
    c.emitWrite(R, "EMUL.stmem2", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.dst[0].addr + 4, e.lat.t[1], 4);
        e.endInstruction();
    });

    // EDIV divr.rl, divd.rq, quo.wl, rem.wl (two destinations).
    ULabel ediv_st0r = c.lbl(), ediv_st0m = c.lbl();
    ULabel ediv_st1 = c.lbl(), ediv_st1r = c.lbl(), ediv_st1m = c.lbl();
    execEntry(c, ExecFlow::Ediv, G, "EDIV", flowFall(), [](Ebox &e) {
        int64_t dividend =
            (static_cast<int64_t>(e.lat.opHi[1]) << 32) |
            e.lat.op[1];
        int32_t divisor = static_cast<int32_t>(e.lat.op[0]);
        int64_t q, r;
        if (divisor == 0) {
            e.psl().cc.v = true;
            q = static_cast<int32_t>(dividend);
            r = 0;
        } else {
            q = dividend / divisor;
            r = dividend % divisor;
            e.psl().cc.v = q != static_cast<int32_t>(q);
        }
        e.lat.t[0] = static_cast<uint32_t>(q); // quotient
        e.lat.t[1] = static_cast<uint32_t>(r); // remainder
        e.psl().cc.n = q < 0;
        e.psl().cc.z = q == 0;
        e.psl().cc.c = false;
        e.lat.sc = 16;
    });
    emitStepLoop(c, "EDIV.step", 16);
    c.emit(R, "EDIV.fin", flowTo({ediv_st0r, ediv_st0m}),
           [ediv_st0r, ediv_st0m](Ebox &e) {
        e.uJump(e.lat.dst[0].kind == DstLatch::Kind::Reg ? ediv_st0r
                                                         : ediv_st0m);
    });
    c.bind(ediv_st0r);
    c.emit(R, "EDIV.st0r", flowTo(ediv_st1), [ediv_st1](Ebox &e) {
        e.r(e.lat.dst[0].reg) = e.lat.t[0];
        e.uJump(ediv_st1);
    });
    c.bind(ediv_st0m);
    c.emitWrite(R, "EDIV.st0m", flowTo(ediv_st1), [ediv_st1](Ebox &e) {
        e.uJump(ediv_st1);
        e.memWrite(e.lat.dst[0].addr, e.lat.t[0], 4);
    });
    c.bind(ediv_st1);
    c.emit(R, "EDIV.st1", flowTo({ediv_st1r, ediv_st1m}),
           [ediv_st1r, ediv_st1m](Ebox &e) {
        e.uJump(e.lat.dst[1].kind == DstLatch::Kind::Reg ? ediv_st1r
                                                         : ediv_st1m);
    });
    c.bind(ediv_st1r);
    c.emit(R, "EDIV.st1r", flowEnd(), [](Ebox &e) {
        e.r(e.lat.dst[1].reg) = e.lat.t[1];
        e.endInstruction();
    });
    c.bind(ediv_st1m);
    c.emitWrite(R, "EDIV.st1m", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.dst[1].addr, e.lat.t[1], 4);
        e.endInstruction();
    });
}

} // anonymous namespace

void
buildFloatFlows(RomCtx &c)
{
    buildFFlows(c);
    buildIntegerMulDiv(c);
}

} // namespace vax
