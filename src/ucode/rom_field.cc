/**
 * @file
 * Execute flows of the FIELD group: variable bit-field operations and
 * bit branches.
 *
 * Field extraction is a micro-subroutine shared by EXTV/EXTZV, CMPV/
 * CMPZV and FFS/FFC (microcode sharing as on the real machine).
 */

#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::Field;
constexpr Row R = Row::ExecField;

/** Mask of the low n bits (n <= 32). */
uint32_t
fieldMask(uint32_t n)
{
    return n >= 32 ? ~0u : ((1u << n) - 1);
}

/**
 * Emit the field-extract micro-subroutine.
 *
 * Inputs: op[0] = position, op[1] = size (<= 32), v latches = base.
 * Output: t5 = zero-extended field.  Clobbers t2-t4.
 * Call with uCall; ends with uRet.
 */
ULabel
emitFieldExtract(RomCtx &c)
{
    ULabel entry = c.lbl();
    ULabel reg = c.lbl(), two = c.lbl(), done = c.lbl();

    c.bind(entry);
    c.emit(R, "FLD.x0", flowTo({reg, two}).orFall(), [reg, two](Ebox &e) {
        e.lat.t[4] = e.lat.op[1] & 63; // size
        upc_assert(e.lat.t[4] <= 32);
        if (e.lat.vIsReg) {
            e.uJump(reg);
            return;
        }
        uint32_t pos = e.lat.op[0];
        uint32_t ba = e.lat.vAddr + (pos >> 3);
        uint32_t shift = (ba & 3) * 8 + (pos & 7);
        e.lat.t[2] = ba & ~3u;          // aligned longword
        e.lat.t[3] = shift;
        if (shift + e.lat.t[4] > 32)
            e.uJump(two);
    });
    c.emitRead(R, "FLD.x1", flowFall(), [](Ebox &e) { e.memRead(e.lat.t[2], 4); });
    c.emit(R, "FLD.x2", flowTo(done), [done](Ebox &e) {
        e.lat.t[5] = (e.md() >> e.lat.t[3]) & fieldMask(e.lat.t[4]);
        e.uJump(done);
    });

    c.bind(two);
    c.emitRead(R, "FLD.x2a", flowFall(), [](Ebox &e) { e.memRead(e.lat.t[2], 4); });
    c.emitRead(R, "FLD.x2b", flowFall(), [](Ebox &e) {
        e.lat.t[6] = e.md();
        e.memRead(e.lat.t[2] + 4, 4);
    });
    c.emit(R, "FLD.x2c", flowTo(done), [done](Ebox &e) {
        uint64_t window = (static_cast<uint64_t>(e.md()) << 32) |
            e.lat.t[6];
        e.lat.t[5] = static_cast<uint32_t>(window >> e.lat.t[3]) &
            fieldMask(e.lat.t[4]);
        e.uJump(done);
    });

    c.bind(reg);
    c.emit(R, "FLD.xreg", flowFall(), [](Ebox &e) {
        uint32_t pos = e.lat.op[0];
        upc_assert(pos < 32 && pos + e.lat.t[4] <= 32);
        e.lat.t[5] = (e.r(e.lat.vReg) >> pos) & fieldMask(e.lat.t[4]);
    });

    c.bind(done);
    c.emit(R, "FLD.xret", flowRet(), [](Ebox &e) { e.uRet(); });
    return entry;
}

void
buildExtract(RomCtx &c, ULabel extract)
{
    // EXTV / EXTZV.
    StoreTail st = makeStoreTail(c, R, "EXT");
    ULabel fin = c.lbl();
    execEntry(c, ExecFlow::Ext, G, "EXT", flowCall(extract),
              [extract](Ebox &e) {
        e.uCall(extract);
    });
    c.bind(fin);
    // (uCall returns to the word after the entry, which is this one.)
    c.emit(R, "EXT.fin", flowStore(st), [st](Ebox &e) {
        uint32_t v = e.lat.t[5];
        if (e.lat.opcode == op::EXTV && e.lat.t[4] > 0 &&
            e.lat.t[4] < 32 && (v >> (e.lat.t[4] - 1)) & 1) {
            v |= ~fieldMask(e.lat.t[4]);
        }
        e.lat.t[0] = v;
        e.setCcNz(v, DataType::Long);
        jumpStore(e, st);
    });

    // CMPV / CMPZV.
    execEntry(c, ExecFlow::CmpV, G, "CMPV", flowCall(extract),
              [extract](Ebox &e) {
        e.uCall(extract);
    });
    c.emit(R, "CMPV.fin", flowEnd(), [](Ebox &e) {
        uint32_t v = e.lat.t[5];
        if (e.lat.opcode == op::CMPV && e.lat.t[4] > 0 &&
            e.lat.t[4] < 32 && (v >> (e.lat.t[4] - 1)) & 1) {
            v |= ~fieldMask(e.lat.t[4]);
        }
        cmpCc(v, e.lat.op[3], DataType::Long, &e.psl());
        e.endInstruction();
    });

    // FFS / FFC.
    StoreTail ffs_st = makeStoreTail(c, R, "FFS");
    execEntry(c, ExecFlow::Ffs, G, "FFS", flowCall(extract),
              [extract](Ebox &e) {
        e.uCall(extract);
    });
    c.emit(R, "FFS.scan", flowFall(), [](Ebox &e) {
        uint32_t v = e.lat.t[5];
        if (e.lat.opcode == op::FFC)
            v = ~v & fieldMask(e.lat.t[4]);
        e.lat.t[6] = 0;
        e.psl().cc.z = true;
        for (uint32_t i = 0; i < e.lat.t[4]; ++i) {
            if ((v >> i) & 1) {
                e.lat.t[6] = i;
                e.psl().cc.z = false;
                break;
            }
        }
    });
    c.emit(R, "FFS.fin", flowStore(ffs_st), [ffs_st](Ebox &e) {
        e.lat.t[0] = e.lat.op[0] +
            (e.psl().cc.z ? e.lat.t[4] : e.lat.t[6]);
        e.psl().cc.n = false;
        e.psl().cc.v = false;
        e.psl().cc.c = false;
        jumpStore(e, ffs_st);
    });
}

void
buildInsv(RomCtx &c)
{
    ULabel reg = c.lbl(), two = c.lbl();
    // INSV src.rl, pos.rl, size.rb, base.vb
    execEntry(c, ExecFlow::Insv, G, "INSV",
              flowTo({reg, two}).orFall(), [reg, two](Ebox &e) {
        e.lat.t[4] = e.lat.op[2] & 63; // size
        upc_assert(e.lat.t[4] <= 32);
        if (e.lat.vIsReg) {
            e.uJump(reg);
            return;
        }
        uint32_t pos = e.lat.op[1];
        uint32_t ba = e.lat.vAddr + (pos >> 3);
        e.lat.t[2] = ba & ~3u;
        e.lat.t[3] = (ba & 3) * 8 + (pos & 7);
        if (e.lat.t[3] + e.lat.t[4] > 32)
            e.uJump(two);
    });
    // Single-longword case.
    c.emitRead(R, "INSV.r1", flowFall(), [](Ebox &e) { e.memRead(e.lat.t[2], 4); });
    c.emit(R, "INSV.m1", flowFall(), [](Ebox &e) {
        uint32_t m = fieldMask(e.lat.t[4]) << e.lat.t[3];
        e.lat.t[5] = (e.md() & ~m) |
            ((e.lat.op[0] << e.lat.t[3]) & m);
    });
    c.emitWrite(R, "INSV.w1", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.t[2], e.lat.t[5], 4);
        e.endInstruction();
    });

    // Two-longword case.
    c.bind(two);
    c.emitRead(R, "INSV.r2a", flowFall(), [](Ebox &e) { e.memRead(e.lat.t[2], 4); });
    c.emitRead(R, "INSV.r2b", flowFall(), [](Ebox &e) {
        e.lat.t[6] = e.md();
        e.memRead(e.lat.t[2] + 4, 4);
    });
    c.emit(R, "INSV.m2", flowFall(), [](Ebox &e) {
        uint64_t window = (static_cast<uint64_t>(e.md()) << 32) |
            e.lat.t[6];
        uint64_t m = static_cast<uint64_t>(fieldMask(e.lat.t[4]))
            << e.lat.t[3];
        window = (window & ~m) |
            ((static_cast<uint64_t>(e.lat.op[0]) << e.lat.t[3]) & m);
        e.lat.t[5] = static_cast<uint32_t>(window);
        e.lat.t[6] = static_cast<uint32_t>(window >> 32);
    });
    c.emitWrite(R, "INSV.w2a", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.t[2], e.lat.t[5], 4);
    });
    c.emitWrite(R, "INSV.w2b", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.t[2] + 4, e.lat.t[6], 4);
        e.endInstruction();
    });

    // Register case.
    c.bind(reg);
    c.emit(R, "INSV.mreg", flowEnd(), [](Ebox &e) {
        uint32_t pos = e.lat.op[1];
        upc_assert(pos < 32 && pos + e.lat.t[4] <= 32);
        uint32_t m = fieldMask(e.lat.t[4]) << pos;
        uint32_t &reg_val = e.r(e.lat.vReg);
        reg_val = (reg_val & ~m) | ((e.lat.op[0] << pos) & m);
        e.endInstruction();
    });
}

void
buildBitBranches(RomCtx &c)
{
    // Shared bit-test + branch tails.  op[0] = position, v latches =
    // base, then the branch displacement.
    ULabel taken = makeTakenTail(c, R, PcChangeKind::BitBranch, "BB");

    auto cond_word = [&c, taken](const char *name, bool modify) {
        // t5 = old bit value; decide branch (and for the modify forms
        // the write already happened).
        (void)modify;
        return c.emit(R, name, flowTo(taken).orEnd(), [taken](Ebox &e) {
            bool on_set = e.lat.opcode == op::BBS ||
                e.lat.opcode == op::BBSS || e.lat.opcode == op::BBSC;
            if ((e.lat.t[5] != 0) == on_set)
                e.uJump(taken);
            else
                branchNotTaken(e);
        });
    };

    // BBS / BBC (test only).
    {
        ULabel regc = c.lbl(), decide = c.lbl();
        execEntry(c, ExecFlow::BitBr, G, "BB",
              flowTo(regc).orFall(), [regc](Ebox &e) {
            if (e.lat.vIsReg) {
                e.uJump(regc);
                return;
            }
            e.lat.t[2] = e.lat.vAddr + (e.lat.op[0] >> 3);
            e.lat.t[3] = e.lat.op[0] & 7;
        }, UMemKind::None);
        c.emitRead(R, "BB.read", flowFall(), [](Ebox &e) {
            e.memRead(e.lat.t[2], 1);
        });
        c.emit(R, "BB.test", flowTo(decide), [decide](Ebox &e) {
            e.lat.t[5] = (e.md() >> e.lat.t[3]) & 1;
            e.uJump(decide);
        });
        c.bind(regc);
        c.emit(R, "BB.treg", flowTo(decide), [decide](Ebox &e) {
            upc_assert(e.lat.op[0] < 32);
            e.lat.t[5] = (e.r(e.lat.vReg) >> e.lat.op[0]) & 1;
            e.uJump(decide);
        });
        c.bind(decide);
        cond_word("BB.cond", false);
    }

    // BBSS/BBCS/BBSC/BBCC (test and modify).
    {
        ULabel regc = c.lbl(), decide = c.lbl();
        execEntry(c, ExecFlow::BitBrMod, G, "BBM",
              flowTo(regc).orFall(), [regc](Ebox &e) {
            if (e.lat.vIsReg) {
                e.uJump(regc);
                return;
            }
            e.lat.t[2] = e.lat.vAddr + (e.lat.op[0] >> 3);
            e.lat.t[3] = e.lat.op[0] & 7;
        });
        c.emitRead(R, "BBM.read", flowFall(), [](Ebox &e) {
            e.memRead(e.lat.t[2], 1);
        });
        c.emit(R, "BBM.mod", flowFall(), [](Ebox &e) {
            e.lat.t[5] = (e.md() >> e.lat.t[3]) & 1;
            bool set = e.lat.opcode == op::BBSS ||
                e.lat.opcode == op::BBCS;
            uint32_t b = e.md();
            if (set)
                b |= 1u << e.lat.t[3];
            else
                b &= ~(1u << e.lat.t[3]);
            e.lat.t[6] = b;
        });
        c.emitWrite(R, "BBM.write", flowTo(decide), [decide](Ebox &e) {
            e.uJump(decide);
            e.memWrite(e.lat.t[2], e.lat.t[6] & 0xFF, 1);
        });
        c.bind(regc);
        c.emit(R, "BBM.treg", flowTo(decide), [decide](Ebox &e) {
            upc_assert(e.lat.op[0] < 32);
            uint32_t &reg_val = e.r(e.lat.vReg);
            e.lat.t[5] = (reg_val >> e.lat.op[0]) & 1;
            bool set = e.lat.opcode == op::BBSS ||
                e.lat.opcode == op::BBCS;
            if (set)
                reg_val |= 1u << e.lat.op[0];
            else
                reg_val &= ~(1u << e.lat.op[0]);
            e.uJump(decide);
        });
        c.bind(decide);
        cond_word("BBM.cond", true);
    }
}

} // anonymous namespace

void
buildFieldFlows(RomCtx &c)
{
    ULabel extract = emitFieldExtract(c);
    buildExtract(c, extract);
    buildInsv(c);
    buildBitBranches(c);
}

} // namespace vax
