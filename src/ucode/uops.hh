/**
 * @file
 * Pure datapath helpers used by microcode semantic lambdas: ALU
 * operations with condition-code computation, branch-condition
 * evaluation, sized register writeback.
 *
 * These model the EBOX ALU and condition-code logic; they are pure
 * functions so the test suite can verify instruction semantics
 * directly.
 */

#ifndef UPC780_UCODE_UOPS_HH
#define UPC780_UCODE_UOPS_HH

#include <cstdint>

#include "arch/opcodes.hh"
#include "arch/types.hh"
#include "cpu/psl.hh"
#include "support/bitutil.hh"

namespace vax
{

// The two-operand ALU, compare and branch-condition helpers below are
// inline: they run once per executed arithmetic/branch instruction and
// their call sites (microcode semantic lambdas in rom_*.cc) otherwise
// pay a cross-TU call per operand.  The cold "not that kind of opcode"
// panics stay out of line.

/** Cold panic: opcode is not an ALU op. */
[[noreturn]] void badAluOpcode(uint8_t opcode);

/** Cold panic: opcode is not a simple branch. */
[[noreturn]] void badBranchOpcode(uint8_t opcode);

/** Truncate a value to its data-type width. */
inline uint32_t
truncTo(uint32_t v, DataType t)
{
    switch (dataTypeBytes(t)) {
      case 1: return v & 0xFF;
      case 2: return v & 0xFFFF;
      default: return v;
    }
}

/** Sign-extend a value of the given width to 32 bits. */
inline int32_t
sextTo(uint32_t v, DataType t)
{
    unsigned bits = 8 * dataTypeBytes(t);
    if (bits >= 32)
        return static_cast<int32_t>(v);
    return sext(v, bits);
}

/** Sign bit of a value of the given width. */
inline bool
signBit(uint32_t v, DataType t)
{
    unsigned bits = 8 * dataTypeBytes(t);
    return (v >> (bits - 1)) & 1;
}

/** Set all four condition codes from a sized result. */
inline void
setNzvc(Psl *psl, uint32_t result, DataType t, bool v, bool c)
{
    psl->cc.n = signBit(result, t);
    psl->cc.z = truncTo(result, t) == 0;
    psl->cc.v = v;
    psl->cc.c = c;
}

/** Add/subtract with full NZVC (INC/DEC, loop branches). */
inline uint32_t
addCc(uint32_t a, uint32_t b, bool subtract, DataType t, Psl *psl)
{
    uint32_t aa = truncTo(a, t);
    uint32_t bb = truncTo(b, t);
    unsigned bits = 8 * dataTypeBytes(t);
    uint64_t wide;
    uint32_t result;
    bool v, c;
    if (subtract) {
        // result = b - a (VAX SUBx: dif = min - sub).
        wide = static_cast<uint64_t>(bb) - aa;
        result = truncTo(static_cast<uint32_t>(wide), t);
        // C is borrow.
        c = bb < aa;
        v = signBit(bb ^ aa, t) && signBit(bb ^ result, t);
    } else {
        wide = static_cast<uint64_t>(bb) + aa;
        result = truncTo(static_cast<uint32_t>(wide), t);
        c = (wide >> bits) & 1;
        v = !signBit(aa ^ bb, t) && signBit(aa ^ result, t);
    }
    setNzvc(psl, result, t, v, c);
    return result;
}

/**
 * Two-operand ALU for the shared ADD/SUB/BIS/BIC/XOR flow.
 *
 * Computes dst' for the given opcode (the hardware derives the ALU
 * function from the opcode, which is why the flows can be shared) and
 * sets all four condition codes.
 *
 * @param opcode The instruction opcode byte.
 * @param src    The src operand.
 * @param dst    The dst (2-operand) or second source (3-operand).
 */
inline uint32_t
aluCompute(uint8_t opcode, uint32_t src, uint32_t dst, DataType t,
           Psl *psl)
{
    // The ALU function is selected by hardware from the opcode; the
    // microcode flow itself is shared (ADD/SUB indistinguishable to
    // the UPC monitor, as the paper notes).
    switch (opcode) {
      case op::ADDB2: case op::ADDB3:
      case op::ADDW2: case op::ADDW3:
      case op::ADDL2: case op::ADDL3:
        return addCc(src, dst, false, t, psl);
      case op::SUBB2: case op::SUBB3:
      case op::SUBW2: case op::SUBW3:
      case op::SUBL2: case op::SUBL3:
        return addCc(src, dst, true, t, psl);
      case op::BISB2: case op::BISB3:
      case op::BISW2: case op::BISW3:
      case op::BISL2: case op::BISL3: {
        uint32_t r = truncTo(dst | src, t);
        setNzvc(psl, r, t, false, psl->cc.c);
        return r;
      }
      case op::BICB2: case op::BICB3:
      case op::BICW2: case op::BICW3:
      case op::BICL2: case op::BICL3: {
        uint32_t r = truncTo(dst & ~src, t);
        setNzvc(psl, r, t, false, psl->cc.c);
        return r;
      }
      case op::XORB2: case op::XORB3:
      case op::XORW2: case op::XORW3:
      case op::XORL2: case op::XORL3: {
        uint32_t r = truncTo(dst ^ src, t);
        setNzvc(psl, r, t, false, psl->cc.c);
        return r;
      }
      default:
        badAluOpcode(opcode);
    }
}

/** CMPx condition codes (src1 - src2 without storing). */
inline void
cmpCc(uint32_t src1, uint32_t src2, DataType t, Psl *psl)
{
    int32_t a = sextTo(src1, t);
    int32_t b = sextTo(src2, t);
    psl->cc.n = a < b;
    psl->cc.z = a == b;
    psl->cc.v = false;
    psl->cc.c = truncTo(src1, t) < truncTo(src2, t);
}

/** ASHL/ROTL. */
uint32_t shiftCompute(uint8_t opcode, int8_t count, uint32_t src,
                      Psl *psl);

/** Evaluate a simple branch condition for the BCOND flow. */
inline bool
branchCond(uint8_t opcode, const Psl &psl)
{
    const CondCodes &cc = psl.cc;
    switch (opcode) {
      case op::BRB: case op::BRW: return true;
      case op::BNEQ:  return !cc.z;
      case op::BEQL:  return cc.z;
      case op::BGTR:  return !(cc.n || cc.z);
      case op::BLEQ:  return cc.n || cc.z;
      case op::BGEQ:  return !cc.n;
      case op::BLSS:  return cc.n;
      case op::BGTRU: return !(cc.c || cc.z);
      case op::BLEQU: return cc.c || cc.z;
      case op::BVC:   return !cc.v;
      case op::BVS:   return cc.v;
      case op::BCC:   return !cc.c;
      case op::BCS:   return cc.c;
      default:
        badBranchOpcode(opcode);
    }
}

/** Write a value into a register honouring operand size. */
inline void
writeRegSized(uint32_t *reg, uint32_t v, DataType t)
{
    switch (dataTypeBytes(t)) {
      case 1:
        *reg = (*reg & ~0xFFu) | (v & 0xFF);
        break;
      case 2:
        *reg = (*reg & ~0xFFFFu) | (v & 0xFFFF);
        break;
      default:
        *reg = v;
        break;
    }
}

/** Convert for the CVT/MOVZ flow (sign- or zero-extends/truncates). */
uint32_t cvtCompute(uint8_t opcode, uint32_t v, Psl *psl);

} // namespace vax

#endif // UPC780_UCODE_UOPS_HH
