/**
 * @file
 * Pure datapath helpers used by microcode semantic lambdas: ALU
 * operations with condition-code computation, branch-condition
 * evaluation, sized register writeback.
 *
 * These model the EBOX ALU and condition-code logic; they are pure
 * functions so the test suite can verify instruction semantics
 * directly.
 */

#ifndef UPC780_UCODE_UOPS_HH
#define UPC780_UCODE_UOPS_HH

#include <cstdint>

#include "arch/opcodes.hh"
#include "arch/types.hh"
#include "cpu/psl.hh"

namespace vax
{

/** Truncate a value to its data-type width. */
uint32_t truncTo(uint32_t v, DataType t);

/** Sign-extend a value of the given width to 32 bits. */
int32_t sextTo(uint32_t v, DataType t);

/** Sign bit of a value of the given width. */
bool signBit(uint32_t v, DataType t);

/**
 * Two-operand ALU for the shared ADD/SUB/BIS/BIC/XOR flow.
 *
 * Computes dst' for the given opcode (the hardware derives the ALU
 * function from the opcode, which is why the flows can be shared) and
 * sets all four condition codes.
 *
 * @param opcode The instruction opcode byte.
 * @param src    The src operand.
 * @param dst    The dst (2-operand) or second source (3-operand).
 */
uint32_t aluCompute(uint8_t opcode, uint32_t src, uint32_t dst,
                    DataType t, Psl *psl);

/** CMPx condition codes (src1 - src2 without storing). */
void cmpCc(uint32_t src1, uint32_t src2, DataType t, Psl *psl);

/** Add/subtract with full NZVC (INC/DEC, loop branches). */
uint32_t addCc(uint32_t a, uint32_t b, bool subtract, DataType t,
               Psl *psl);

/** ASHL/ROTL. */
uint32_t shiftCompute(uint8_t opcode, int8_t count, uint32_t src,
                      Psl *psl);

/** Evaluate a simple branch condition for the BCOND flow. */
bool branchCond(uint8_t opcode, const Psl &psl);

/** Write a value into a register honouring operand size. */
void writeRegSized(uint32_t *reg, uint32_t v, DataType t);

/** Convert for the CVT/MOVZ flow (sign- or zero-extends/truncates). */
uint32_t cvtCompute(uint8_t opcode, uint32_t v, Psl *psl);

} // namespace vax

#endif // UPC780_UCODE_UOPS_HH
