/**
 * @file
 * Execute flows of the SIMPLE group: moves, simple arithmetic and
 * boolean operations, branches, and subroutine linkage.
 *
 * Microcode sharing follows the real machine: ADD/SUB (and the other
 * ALU pairs) share one flow with the ALU function derived from the
 * opcode, and BRB/BRW share the simple-conditional-branch flow -- the
 * sharing that limits what the UPC histogram can distinguish.
 */

#include <cstring>
#include <string>

#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

constexpr Group G = Group::Simple;
constexpr Row R = Row::ExecSimple;

void
buildMoves(RomCtx &c)
{
    // MOV / MOVA: one compute cycle plus the store cycle.
    StoreTail mov_st = makeStoreTail(c, R, "MOV");
    execEntry(c, ExecFlow::Mov, G, "MOV", flowStore(mov_st),
              [mov_st](Ebox &e) {
        e.lat.t[0] = e.lat.op[0];
        e.setCcNz(e.lat.t[0], e.lat.dst[0].type);
        jumpStore(e, mov_st);
    });
    execEntry(c, ExecFlow::MovAddr, G, "MOVA", flowStore(mov_st),
              [mov_st](Ebox &e) {
        e.lat.t[0] = e.lat.op[0];
        e.setCcNz(e.lat.t[0], DataType::Long);
        jumpStore(e, mov_st);
    });

    // MOVQ: quad store tails of its own.
    ULabel qreg = c.lbl(), qmem = c.lbl();
    execEntry(c, ExecFlow::MovQ, G, "MOVQ", flowTo({qreg, qmem}),
              [qreg, qmem](Ebox &e) {
        e.lat.t[0] = e.lat.op[0];
        e.lat.t[1] = e.lat.opHi[0];
        e.psl().cc.z = e.lat.t[0] == 0 && e.lat.t[1] == 0;
        e.psl().cc.n = (e.lat.t[1] >> 31) & 1;
        e.psl().cc.v = false;
        e.uJump(e.lat.dst[0].kind == DstLatch::Kind::Reg ? qreg : qmem);
    });
    c.bind(qreg);
    c.emit(R, "MOVQ.streg", flowEnd(), [](Ebox &e) {
        e.r(e.lat.dst[0].reg) = e.lat.t[0];
        e.r((e.lat.dst[0].reg + 1) & 0xF) = e.lat.t[1];
        e.endInstruction();
    });
    c.bind(qmem);
    c.emitWrite(R, "MOVQ.stmem1", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.dst[0].addr, e.lat.t[0], 4);
    });
    c.emitWrite(R, "MOVQ.stmem2", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.dst[0].addr + 4, e.lat.t[1], 4);
        e.endInstruction();
    });

    // PUSHL / PUSHAB / PUSHAL: one cycle, one write.
    execEntry(c, ExecFlow::Push, G, "PUSH", flowEnd(), [](Ebox &e) {
        e.setCcNz(e.lat.op[0], DataType::Long);
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.op[0], 4);
        e.endInstruction();
    }, UMemKind::Write);

    // CLR: shares the MOV store shape.
    StoreTail clr_st = makeStoreTail(c, R, "CLR");
    ULabel clrq_reg = c.lbl(), clrq_mem = c.lbl();
    execEntry(c, ExecFlow::Clr, G, "CLR",
              flowStore(clr_st).orTo(clrq_reg).orTo(clrq_mem),
              [clr_st, clrq_reg, clrq_mem](Ebox &e) {
                  e.lat.t[0] = 0;
                  e.lat.t[1] = 0;
                  e.psl().cc.z = true;
                  e.psl().cc.n = false;
                  e.psl().cc.v = false;
                  if (e.lat.dst[0].type == DataType::Quad) {
                      e.uJump(e.lat.dst[0].kind == DstLatch::Kind::Reg
                              ? clrq_reg : clrq_mem);
                  } else {
                      jumpStore(e, clr_st);
                  }
              });
    c.bind(clrq_reg);
    c.emit(R, "CLRQ.streg", flowEnd(), [](Ebox &e) {
        e.r(e.lat.dst[0].reg) = 0;
        e.r((e.lat.dst[0].reg + 1) & 0xF) = 0;
        e.endInstruction();
    });
    c.bind(clrq_mem);
    c.emitWrite(R, "CLRQ.stmem1", flowFall(), [](Ebox &e) {
        e.memWrite(e.lat.dst[0].addr, 0, 4);
    });
    c.emitWrite(R, "CLRQ.stmem2", flowEnd(), [](Ebox &e) {
        e.memWrite(e.lat.dst[0].addr + 4, 0, 4);
        e.endInstruction();
    });
}

void
buildAlu(RomCtx &c)
{
    execEntry(c, ExecFlow::Tst, G, "TST", flowEnd(), [](Ebox &e) {
        e.setCcNz(e.lat.op[0], e.lat.info->sizeLatch());
        e.psl().cc.c = false;
        e.endInstruction();
    });

    execEntry(c, ExecFlow::Cmp, G, "CMP", flowEnd(), [](Ebox &e) {
        cmpCc(e.lat.op[0], e.lat.op[1], e.lat.info->sizeLatch(),
              &e.psl());
        e.endInstruction();
    });

    execEntry(c, ExecFlow::Bit, G, "BIT", flowEnd(), [](Ebox &e) {
        e.setCcNz(e.lat.op[0] & e.lat.op[1], e.lat.info->sizeLatch());
        e.endInstruction();
    });

    StoreTail mcom_st = makeStoreTail(c, R, "MCOM");
    execEntry(c, ExecFlow::MCom, G, "MCOM", flowStore(mcom_st),
              [mcom_st](Ebox &e) {
        e.lat.t[0] = ~e.lat.op[0];
        e.setCcNz(e.lat.t[0], e.lat.dst[0].type);
        jumpStore(e, mcom_st);
    });

    StoreTail mneg_st = makeStoreTail(c, R, "MNEG");
    execEntry(c, ExecFlow::MNeg, G, "MNEG", flowStore(mneg_st),
              [mneg_st](Ebox &e) {
        e.lat.t[0] = addCc(e.lat.op[0], 0, true,
                           e.lat.info->sizeLatch(), &e.psl());
        jumpStore(e, mneg_st);
    });

    StoreTail incdec_st = makeStoreTail(c, R, "INCDEC");
    execEntry(c, ExecFlow::IncDec, G, "INCDEC",
              flowStore(incdec_st), [incdec_st](Ebox &e) {
        bool dec = e.lat.opcode == op::DECB ||
            e.lat.opcode == op::DECW || e.lat.opcode == op::DECL;
        e.lat.t[0] = addCc(1, e.lat.op[0], dec,
                           e.lat.info->sizeLatch(), &e.psl());
        jumpStore(e, incdec_st);
    });

    // The shared 2- and 3-operand ALU flows.  The hardware derives the
    // ALU function from the opcode; the flow is one compute cycle plus
    // the store.
    StoreTail alu_st = makeStoreTail(c, R, "ALU");
    execEntry(c, ExecFlow::Alu2, G, "ALU2", flowStore(alu_st),
              [alu_st](Ebox &e) {
        e.lat.t[0] = aluCompute(e.lat.opcode, e.lat.op[0], e.lat.op[1],
                                e.lat.info->sizeLatch(), &e.psl());
        jumpStore(e, alu_st);
    });
    execEntry(c, ExecFlow::Alu3, G, "ALU3", flowStore(alu_st),
              [alu_st](Ebox &e) {
        e.lat.t[0] = aluCompute(e.lat.opcode, e.lat.op[0], e.lat.op[1],
                                e.lat.info->sizeLatch(), &e.psl());
        jumpStore(e, alu_st);
    });

    StoreTail ash_st = makeStoreTail(c, R, "ASH");
    execEntry(c, ExecFlow::Ash, G, "ASH", flowStore(ash_st),
              [ash_st](Ebox &e) {
        e.lat.t[0] = shiftCompute(e.lat.opcode,
                                  static_cast<int8_t>(e.lat.op[0]),
                                  e.lat.op[1], &e.psl());
        jumpStore(e, ash_st);
    });

    StoreTail cvt_st = makeStoreTail(c, R, "CVT");
    execEntry(c, ExecFlow::Cvt, G, "CVT", flowStore(cvt_st),
              [cvt_st](Ebox &e) {
        e.lat.t[0] = cvtCompute(e.lat.opcode, e.lat.op[0], &e.psl());
        jumpStore(e, cvt_st);
    });
}

void
buildBranches(RomCtx &c)
{
    // Simple conditional branches + BRB/BRW (one shared flow).
    ULabel bc_taken = makeTakenTail(c, R, PcChangeKind::SimpleCond,
                                    "BCOND");
    execEntry(c, ExecFlow::BCond, G, "BCOND",
              flowTo(bc_taken).orEnd(), [bc_taken](Ebox &e) {
        if (branchCond(e.lat.opcode, e.psl()))
            e.uJump(bc_taken);
        else
            branchNotTaken(e);
    });

    // Loop branches: SOB (decrement), AOB (increment), ACB (add).
    auto build_loop = [&c](ExecFlow flow, const char *name,
                           auto compute, auto cond) {
        ULabel taken =
            makeTakenTail(c, R, PcChangeKind::LoopBranch, name);
        ULabel wr_reg = c.lbl(), wr_mem = c.lbl();
        execEntry(c, flow, G, name, flowTo({wr_reg, wr_mem}),
                  [compute, wr_reg, wr_mem](Ebox &e) {
                      e.lat.t[0] = compute(e);
                      e.uJump(e.lat.dst[0].kind == DstLatch::Kind::Reg
                              ? wr_reg : wr_mem);
                  });
        std::string n(name);
        c.bind(wr_reg);
        c.emit(R, strdup((n + ".wreg").c_str()),
               flowTo(taken).orEnd(), [cond, taken](Ebox &e) {
                   writeRegSized(&e.r(e.lat.dst[0].reg), e.lat.t[0],
                                 DataType::Long);
                   if (cond(e))
                       e.uJump(taken);
                   else
                       branchNotTaken(e);
               });
        c.bind(wr_mem);
        c.emitWrite(R, strdup((n + ".wmem").c_str()),
                    flowTo(taken).orEnd(), [cond, taken](Ebox &e) {
                        if (cond(e))
                            e.uJump(taken);
                        else
                            branchNotTaken(e);
                        e.memWrite(e.lat.dst[0].addr, e.lat.t[0], 4);
                    });
    };

    build_loop(ExecFlow::Sob, "SOB",
               [](Ebox &e) {
                   return addCc(1, e.lat.op[0], true, DataType::Long,
                                &e.psl());
               },
               [](Ebox &e) {
                   int32_t v = static_cast<int32_t>(e.lat.t[0]);
                   return e.lat.opcode == op::SOBGEQ ? v >= 0 : v > 0;
               });
    build_loop(ExecFlow::Aob, "AOB",
               [](Ebox &e) {
                   return addCc(1, e.lat.op[1], false, DataType::Long,
                                &e.psl());
               },
               [](Ebox &e) {
                   int32_t v = static_cast<int32_t>(e.lat.t[0]);
                   int32_t limit = static_cast<int32_t>(e.lat.op[0]);
                   return e.lat.opcode == op::AOBLSS ? v < limit
                                                     : v <= limit;
               });
    build_loop(ExecFlow::Acb, "ACB",
               [](Ebox &e) {
                   return addCc(e.lat.op[1], e.lat.op[2], false,
                                DataType::Long, &e.psl());
               },
               [](Ebox &e) {
                   int32_t v = static_cast<int32_t>(e.lat.t[0]);
                   int32_t limit = static_cast<int32_t>(e.lat.op[0]);
                   return static_cast<int32_t>(e.lat.op[1]) >= 0
                       ? v <= limit : v >= limit;
               });

    // Low-bit tests.
    ULabel blb_taken =
        makeTakenTail(c, R, PcChangeKind::LowBitTest, "BLB");
    execEntry(c, ExecFlow::Blb, G, "BLB", flowTo(blb_taken).orEnd(),
              [blb_taken](Ebox &e) {
        bool set = e.lat.op[0] & 1;
        bool want = e.lat.opcode == op::BLBS;
        if (set == want)
            e.uJump(blb_taken);
        else
            branchNotTaken(e);
    });

    // BSB: push the return PC, then fall into its B-DISP/taken tail.
    execEntry(c, ExecFlow::Bsb, G, "BSB", flowFall(), [](Ebox &e) {
        e.lat.t[0] = e.decodePc() + e.lat.info->bdispBytes;
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.lat.t[0], 4);
    }, UMemKind::Write);
    makeTakenTail(c, R, PcChangeKind::SubrCallRet, "BSB");

    execEntry(c, ExecFlow::Jsb, G, "JSB", flowFall(), [](Ebox &e) {
        e.r(SP) -= 4;
        e.memWrite(e.r(SP), e.decodePc(), 4);
    }, UMemKind::Write);
    c.emit(R, "JSB.go", flowEnd(), [](Ebox &e) {
        e.redirect(e.lat.op[0]);
        e.endInstruction();
    });

    execEntry(c, ExecFlow::Rsb, G, "RSB", flowFall(), [](Ebox &e) {
        e.memRead(e.r(SP), 4);
        e.r(SP) += 4;
    }, UMemKind::Read);
    c.emit(R, "RSB.go", flowEnd(), [](Ebox &e) {
        e.redirect(e.md());
        e.endInstruction();
    });

    execEntry(c, ExecFlow::Jmp, G, "JMP", flowEnd(), [](Ebox &e) {
        e.redirect(e.lat.op[0]);
        e.endInstruction();
    });

    // CASE: selector arithmetic, a D-stream read of the in-line
    // displacement table, and a redirect (always PC-changing).
    ULabel case_fall = c.lbl();
    execEntry(c, ExecFlow::Case, G, "CASE",
              flowTo(case_fall).orFall(), [case_fall](Ebox &e) {
        e.lat.t[0] = e.lat.op[0] - e.lat.op[1]; // selector - base
        e.lat.t[1] = e.decodePc();              // table address
        cmpCc(e.lat.t[0], e.lat.op[2], DataType::Long, &e.psl());
        if (e.lat.t[0] > e.lat.op[2]) // unsigned compare
            e.uJump(case_fall);
    });
    c.emitRead(R, "CASE.read", flowFall(), [](Ebox &e) {
        e.memRead(e.lat.t[1] + 2 * e.lat.t[0], 2);
    });
    {
        UAnnotation a = c.ann(R, "CASE.go");
        a.mark = UMark::BranchTaken;
        a.pck = PcChangeKind::CaseBranch;
        c.emitFull(a, flowEnd(), [](Ebox &e) {
            e.redirect(e.lat.t[1] +
                       static_cast<uint32_t>(sextTo(e.md(),
                                                    DataType::Word)));
            e.endInstruction();
        });
    }
    c.bind(case_fall);
    {
        UAnnotation a = c.ann(R, "CASE.fall");
        a.mark = UMark::BranchTaken;
        a.pck = PcChangeKind::CaseBranch;
        c.emitFull(a, flowEnd(), [](Ebox &e) {
            e.redirect(e.lat.t[1] + 2 * (e.lat.op[2] + 1));
            e.endInstruction();
        });
    }
}

} // anonymous namespace

void
buildSimpleFlows(RomCtx &c)
{
    buildMoves(c);
    buildAlu(c);
    buildBranches(c);
}

} // namespace vax
