/**
 * @file
 * Microcode ROM builder.
 *
 * Fills a ControlStore with the complete 11/780 microcode of this
 * implementation: the decode framework, all specifier routines, the
 * memory-management and interrupt microcode, and the execute flows of
 * every instruction group.
 */

#ifndef UPC780_UCODE_ROM_HH
#define UPC780_UCODE_ROM_HH

#include "ucode/control_store.hh"

namespace vax
{

/** Build the full microcode ROM into cs (must be empty). */
void buildMicrocodeRom(ControlStore &cs);

} // namespace vax

#endif // UPC780_UCODE_ROM_HH
