/**
 * @file
 * Operand-specifier microcode.
 *
 * One routine per (addressing mode, position class, access class).
 * The SPEC1 and SPEC2-6 copies are separate control-store locations so
 * the histogram can distinguish them (as on the real machine); indexed
 * specifiers go through the index-prefix routine and then the SPEC2-6
 * copy of the base-mode routine -- the microcode sharing that makes
 * the paper report indexed first-specifier address calculation under
 * SPEC2-6.
 */

#include <cstring>
#include <string>

#include "ucode/rom_ctx.hh"

namespace vax
{

namespace
{

using DK = DstLatch::Kind;

/** Operand size in bytes of the current specifier. */
unsigned
specSize(Ebox &e)
{
    return dataTypeBytes(e.lat.specType);
}

/** Apply the index-prefix value if this specifier was indexed. */
uint32_t
applyIdx(Ebox &e, uint32_t addr)
{
    return addr + (e.lat.specIndexed ? e.lat.idxVal : 0);
}

void
recordDstMem(Ebox &e)
{
    upc_assert(e.lat.dstCount < 2);
    DstLatch &d = e.lat.dst[e.lat.dstCount++];
    d.kind = DK::Mem;
    d.addr = e.lat.va;
    d.type = e.lat.specType;
}

void
recordDstReg(Ebox &e)
{
    upc_assert(e.lat.dstCount < 2);
    DstLatch &d = e.lat.dst[e.lat.dstCount++];
    d.kind = DK::Reg;
    d.reg = e.lat.specReg;
    d.type = e.lat.specType;
}

/** Route a computed address per access type (Address vs. Field). */
void
finishAddrClass(Ebox &e)
{
    if (e.lat.specAccess == Access::Field) {
        e.lat.vIsReg = false;
        e.lat.vAddr = e.lat.va;
    } else {
        e.lat.op[e.lat.specOpIndex] = e.lat.va;
    }
    e.nextSpecOrExec();
}

/**
 * Address former: computes the operand address into lat.va.  Returns
 * false if an IB fetch stalled (the microword lambda must return).
 */
using Former = bool (*)(Ebox &);

bool
formRegDef(Ebox &e)
{
    e.lat.va = applyIdx(e, e.r(e.lat.specReg));
    return true;
}

bool
formAutoInc(Ebox &e)
{
    uint32_t s = specSize(e);
    uint32_t a = e.r(e.lat.specReg);
    e.lat.va = applyIdx(e, a);
    e.r(e.lat.specReg) = a + s;
    return true;
}

bool
formAutoDec(Ebox &e)
{
    uint32_t a = e.r(e.lat.specReg) - specSize(e);
    e.r(e.lat.specReg) = a;
    e.lat.va = applyIdx(e, a);
    return true;
}

template <unsigned N>
bool
formDisp(Ebox &e)
{
    if (!e.ibGet(N, true))
        return false;
    e.hw().dispBytes += N;
    uint32_t base = e.lat.specReg == PC ? e.pcForSpec()
                                        : e.r(e.lat.specReg);
    e.lat.va = applyIdx(e, base + e.lat.q);
    return true;
}

bool
formAbsolute(Ebox &e)
{
    if (!e.ibGet(4, false))
        return false;
    e.hw().dispBytes += 4;
    e.lat.va = applyIdx(e, e.lat.q);
    return true;
}

// Deferred-mode pointer formers: the index value applies to the final
// (dereferenced) address, not the pointer address.

bool
formPtrAutoIncDef(Ebox &e)
{
    uint32_t a = e.r(e.lat.specReg);
    e.lat.va = a;
    e.r(e.lat.specReg) = a + 4;
    return true;
}

template <unsigned N>
bool
formPtrDispDef(Ebox &e)
{
    if (!e.ibGet(N, true))
        return false;
    e.hw().dispBytes += N;
    uint32_t base = e.lat.specReg == PC ? e.pcForSpec()
                                        : e.r(e.lat.specReg);
    e.lat.va = base + e.lat.q;
    return true;
}

/** Leaked-name helper for annotation labels built at ROM time. */
const char *
leakName(const std::string &s)
{
    return strdup(s.c_str());
}

const char *accNames[] = {"r", "w", "m", "a"};

UAnnotation
entryAnn(RomCtx &c, AddrMode mode, unsigned pos, SpecAccClass acc,
         bool ib_request, UMemKind mem)
{
    std::string name = std::string("SPEC") + (pos == 0 ? "1." : "26.") +
        addrModeName(mode) + "." + accNames[static_cast<unsigned>(acc)];
    UAnnotation a = c.ann(pos == 0 ? Row::Spec1 : Row::Spec26,
                          leakName(name));
    a.mark = UMark::SpecModeEntry;
    a.specMode = mode;
    a.spec1 = pos == 0;
    a.ibRequest = ib_request;
    a.mem = mem;
    return a;
}

/** Non-entry microword inside a specifier routine. */
UAnnotation
bodyAnn(RomCtx &c, AddrMode mode, unsigned pos, const char *suffix,
        UMemKind mem = UMemKind::None)
{
    std::string name = std::string("SPEC") + (pos == 0 ? "1." : "26.") +
        addrModeName(mode) + suffix;
    UAnnotation a = c.ann(pos == 0 ? Row::Spec1 : Row::Spec26,
                          leakName(name));
    a.mem = mem;
    return a;
}

void
setEntry(RomCtx &c, AddrMode mode, unsigned pos, SpecAccClass acc,
         UAddr addr)
{
    c.ep.spec[static_cast<size_t>(mode)][pos]
        [static_cast<size_t>(acc)] = addr;
}

/**
 * Emit the quad-read continuation: the second longword read of a
 * quadword memory operand.  Returns the address of its first word.
 */
UAddr
emitQuadReadTail(RomCtx &c, AddrMode mode, unsigned pos)
{
    UAddr a0 = c.emitFull(bodyAnn(c, mode, pos, ".q1", UMemKind::Read),
                          flowFall(),
                          [](Ebox &e) { e.memRead(e.lat.va + 4, 4); });
    c.emitFull(bodyAnn(c, mode, pos, ".q2"), flowDispatch(), [](Ebox &e) {
        e.lat.opHi[e.lat.specOpIndex] = e.md();
        e.nextSpecOrExec();
    });
    return a0;
}

/** Build the four access-class routines of a direct memory mode. */
void
buildDirectMode(RomCtx &c, AddrMode mode, unsigned pos, Former former,
                bool uses_ib)
{
    // --- Read ---
    ULabel quad = c.lbl();
    UAddr rd = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Read, uses_ib,
                 UMemKind::Read),
        flowFall(),
        [former](Ebox &e) {
            if (!former(e))
                return;
            unsigned n = specSize(e);
            e.memRead(e.lat.va, n > 4 ? 4 : n);
        });
    setEntry(c, mode, pos, SpecAccClass::Read, rd);
    c.emitFull(bodyAnn(c, mode, pos, ".rmv"),
               flowTo(quad).orDispatch(), [quad](Ebox &e) {
        e.lat.op[e.lat.specOpIndex] = e.md();
        if (e.lat.specType == DataType::Quad)
            e.uJump(quad);
        else
            e.nextSpecOrExec();
    });
    c.ua.bindAt(quad, emitQuadReadTail(c, mode, pos));

    // --- Write ---
    UAddr wr = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Write, uses_ib,
                 UMemKind::None),
        flowDispatch(),
        [former](Ebox &e) {
            if (!former(e))
                return;
            recordDstMem(e);
            e.nextSpecOrExec();
        });
    setEntry(c, mode, pos, SpecAccClass::Write, wr);

    // --- Modify ---
    UAddr md = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Modify, uses_ib,
                 UMemKind::Read),
        flowFall(),
        [former](Ebox &e) {
            if (!former(e))
                return;
            upc_assert(e.lat.specType != DataType::Quad);
            e.memRead(e.lat.va, specSize(e));
        });
    setEntry(c, mode, pos, SpecAccClass::Modify, md);
    c.emitFull(bodyAnn(c, mode, pos, ".mmv"), flowDispatch(),
               [](Ebox &e) {
        e.lat.op[e.lat.specOpIndex] = e.md();
        recordDstMem(e);
        e.nextSpecOrExec();
    });

    // --- Address / Field ---
    UAddr ad = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Addr, uses_ib,
                 UMemKind::None),
        flowDispatch(),
        [former](Ebox &e) {
            if (!former(e))
                return;
            finishAddrClass(e);
        });
    setEntry(c, mode, pos, SpecAccClass::Addr, ad);
}

/** Build the four access-class routines of a deferred memory mode. */
void
buildDeferredMode(RomCtx &c, AddrMode mode, unsigned pos, Former ptr_former,
                  bool uses_ib)
{
    // --- Read ---
    ULabel quad = c.lbl();
    UAddr rd = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Read, uses_ib,
                 UMemKind::Read),
        flowFall(),
        [ptr_former](Ebox &e) {
            if (!ptr_former(e))
                return;
            e.memRead(e.lat.va, 4); // fetch the pointer
        });
    setEntry(c, mode, pos, SpecAccClass::Read, rd);
    c.emitFull(bodyAnn(c, mode, pos, ".rd2", UMemKind::Read),
               flowFall(),
               [](Ebox &e) {
                   e.lat.va = applyIdx(e, e.md());
                   unsigned n = specSize(e);
                   e.memRead(e.lat.va, n > 4 ? 4 : n);
               });
    c.emitFull(bodyAnn(c, mode, pos, ".rmv"),
               flowTo(quad).orDispatch(), [quad](Ebox &e) {
        e.lat.op[e.lat.specOpIndex] = e.md();
        if (e.lat.specType == DataType::Quad)
            e.uJump(quad);
        else
            e.nextSpecOrExec();
    });
    c.ua.bindAt(quad, emitQuadReadTail(c, mode, pos));

    // --- Write ---
    UAddr wr = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Write, uses_ib,
                 UMemKind::Read),
        flowFall(),
        [ptr_former](Ebox &e) {
            if (!ptr_former(e))
                return;
            e.memRead(e.lat.va, 4);
        });
    setEntry(c, mode, pos, SpecAccClass::Write, wr);
    c.emitFull(bodyAnn(c, mode, pos, ".wfin"), flowDispatch(),
               [](Ebox &e) {
        e.lat.va = applyIdx(e, e.md());
        recordDstMem(e);
        e.nextSpecOrExec();
    });

    // --- Modify ---
    UAddr md = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Modify, uses_ib,
                 UMemKind::Read),
        flowFall(),
        [ptr_former](Ebox &e) {
            if (!ptr_former(e))
                return;
            e.memRead(e.lat.va, 4);
        });
    setEntry(c, mode, pos, SpecAccClass::Modify, md);
    c.emitFull(bodyAnn(c, mode, pos, ".mrd2", UMemKind::Read),
               flowFall(),
               [](Ebox &e) {
                   e.lat.va = applyIdx(e, e.md());
                   upc_assert(e.lat.specType != DataType::Quad);
                   e.memRead(e.lat.va, specSize(e));
               });
    c.emitFull(bodyAnn(c, mode, pos, ".mmv"), flowDispatch(),
               [](Ebox &e) {
        e.lat.op[e.lat.specOpIndex] = e.md();
        recordDstMem(e);
        e.nextSpecOrExec();
    });

    // --- Address / Field ---
    UAddr ad = c.emitFull(
        entryAnn(c, mode, pos, SpecAccClass::Addr, uses_ib,
                 UMemKind::Read),
        flowFall(),
        [ptr_former](Ebox &e) {
            if (!ptr_former(e))
                return;
            e.memRead(e.lat.va, 4);
        });
    setEntry(c, mode, pos, SpecAccClass::Addr, ad);
    c.emitFull(bodyAnn(c, mode, pos, ".afin"), flowDispatch(),
               [](Ebox &e) {
        e.lat.va = applyIdx(e, e.md());
        finishAddrClass(e);
    });
}

void
buildRegisterMode(RomCtx &c, unsigned pos)
{
    AddrMode m = AddrMode::Register;
    UAddr rd = c.emitFull(
        entryAnn(c, m, pos, SpecAccClass::Read, false, UMemKind::None),
        flowDispatch(),
        [](Ebox &e) {
            unsigned k = e.lat.specOpIndex;
            e.lat.op[k] = e.r(e.lat.specReg);
            if (e.lat.specType == DataType::Quad)
                e.lat.opHi[k] = e.r((e.lat.specReg + 1) & 0xF);
            e.nextSpecOrExec();
        });
    setEntry(c, m, pos, SpecAccClass::Read, rd);

    UAddr wr = c.emitFull(
        entryAnn(c, m, pos, SpecAccClass::Write, false, UMemKind::None),
        flowDispatch(),
        [](Ebox &e) {
            recordDstReg(e);
            e.nextSpecOrExec();
        });
    setEntry(c, m, pos, SpecAccClass::Write, wr);

    UAddr md = c.emitFull(
        entryAnn(c, m, pos, SpecAccClass::Modify, false, UMemKind::None),
        flowDispatch(),
        [](Ebox &e) {
            e.lat.op[e.lat.specOpIndex] = e.r(e.lat.specReg);
            recordDstReg(e);
            e.nextSpecOrExec();
        });
    setEntry(c, m, pos, SpecAccClass::Modify, md);

    // Field operands may live in a register; Address access on a
    // register is a fault caught at decode.
    UAddr ad = c.emitFull(
        entryAnn(c, m, pos, SpecAccClass::Addr, false, UMemKind::None),
        flowDispatch(),
        [](Ebox &e) {
            upc_assert(e.lat.specAccess == Access::Field);
            e.lat.vIsReg = true;
            e.lat.vReg = e.lat.specReg;
            e.nextSpecOrExec();
        });
    setEntry(c, m, pos, SpecAccClass::Addr, ad);
}

void
buildLiteralMode(RomCtx &c, unsigned pos)
{
    AddrMode m = AddrMode::ShortLiteral;
    UAddr rd = c.emitFull(
        entryAnn(c, m, pos, SpecAccClass::Read, false, UMemKind::None),
        flowDispatch(),
        [](Ebox &e) {
            unsigned k = e.lat.specOpIndex;
            e.lat.op[k] =
                e.expandLiteral(e.lat.specLiteral, e.lat.specType);
            if (e.lat.specType == DataType::Quad)
                e.lat.opHi[k] = 0;
            e.nextSpecOrExec();
        });
    setEntry(c, m, pos, SpecAccClass::Read, rd);
}

void
buildImmediateMode(RomCtx &c, unsigned pos)
{
    AddrMode m = AddrMode::Immediate;
    ULabel quad = c.lbl();
    UAddr rd = c.emitFull(
        entryAnn(c, m, pos, SpecAccClass::Read, true, UMemKind::None),
        flowTo(quad).orDispatch(),
        [quad](Ebox &e) {
            unsigned n = specSize(e);
            unsigned take = n > 4 ? 4 : n;
            if (!e.ibGet(take, false))
                return;
            e.hw().immediateBytes += take;
            e.lat.op[e.lat.specOpIndex] = e.lat.q;
            if (e.lat.specType == DataType::Quad)
                e.uJump(quad);
            else
                e.nextSpecOrExec();
        });
    setEntry(c, m, pos, SpecAccClass::Read, rd);
    c.bind(quad);
    UAnnotation qa = bodyAnn(c, m, pos, ".q");
    qa.ibRequest = true;
    c.emitFull(qa, flowDispatch(), [](Ebox &e) {
        if (!e.ibGet(4, false))
            return;
        e.hw().immediateBytes += 4;
        e.lat.opHi[e.lat.specOpIndex] = e.lat.q;
        e.nextSpecOrExec();
    });
}

void
buildIndexPrefix(RomCtx &c, unsigned pos)
{
    std::string name =
        std::string(pos == 0 ? "SPEC1" : "SPEC26") + ".index";
    UAnnotation a = c.ann(pos == 0 ? Row::Spec1 : Row::Spec26,
                          leakName(name));
    a.mark = UMark::SpecIndexed;
    a.spec1 = pos == 0;
    c.ep.indexPrefix[pos] = c.emitFull(a, flowSpec26(), [](Ebox &e) {
        e.lat.idxVal = e.r(e.lat.specIndexReg) * specSize(e);
        // Shared base processing: always the SPEC2-6 copy.
        e.uJumpAddr(e.spec26Entry(e.lat.specMode,
                                  specAccClass(e.lat.specAccess)));
    });
}

} // anonymous namespace

void
buildSpecifierRoutines(RomCtx &c)
{
    for (unsigned pos = 0; pos < 2; ++pos) {
        buildLiteralMode(c, pos);
        buildRegisterMode(c, pos);
        buildImmediateMode(c, pos);
        buildDirectMode(c, AddrMode::RegDeferred, pos, formRegDef, false);
        buildDirectMode(c, AddrMode::AutoInc, pos, formAutoInc, false);
        buildDirectMode(c, AddrMode::AutoDec, pos, formAutoDec, false);
        buildDirectMode(c, AddrMode::ByteDisp, pos, formDisp<1>, true);
        buildDirectMode(c, AddrMode::WordDisp, pos, formDisp<2>, true);
        buildDirectMode(c, AddrMode::LongDisp, pos, formDisp<4>, true);
        buildDirectMode(c, AddrMode::Absolute, pos, formAbsolute, true);
        buildDeferredMode(c, AddrMode::AutoIncDef, pos,
                          formPtrAutoIncDef, false);
        buildDeferredMode(c, AddrMode::ByteDispDef, pos,
                          formPtrDispDef<1>, true);
        buildDeferredMode(c, AddrMode::WordDispDef, pos,
                          formPtrDispDef<2>, true);
        buildDeferredMode(c, AddrMode::LongDispDef, pos,
                          formPtrDispDef<4>, true);
        buildIndexPrefix(c, pos);
    }
}

} // namespace vax
