#include "workload/uchar_corpus.hh"

#include <cctype>
#include <cstring>
#include <initializer_list>
#include <sstream>

#include "arch/assembler.hh"
#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "support/logging.hh"

namespace vax
{

namespace
{

// ---------------------------------------------------------------
// Memory layout (all physical, mapping off, well under 1 MB)
// ---------------------------------------------------------------

constexpr uint32_t kCodeBase = 0x1000;
constexpr uint32_t kStackTop = 0x30000;

/** Two fill regions per data flavour: the second sits exactly
 *  longDisp above the first so l^d(Rn) lands in initialized data. */
constexpr uint32_t kRegionBytes = 0x2000;
constexpr uint32_t kIntBase1 = 0x40000;
constexpr uint32_t kIntBase2 = 0x50000;
constexpr uint32_t kMidInt = 0x41000;
constexpr uint32_t kPtrTabInt = 0x48000;
constexpr uint32_t kFloatBase1 = 0x60000;
constexpr uint32_t kFloatBase2 = 0x70000;
constexpr uint32_t kMidFloat = 0x61000;
constexpr uint32_t kPtrTabFloat = 0x68000;

/** Character-op regions: source/table inside int fill region 1,
 *  destination in bare (all-zero) RAM. */
constexpr uint32_t kCharTbl = 0x40000;
constexpr uint32_t kCharSrc = 0x40100;
constexpr uint32_t kCharDst = 0x46000;

/** Packed-decimal scratch numbers P0..P3. */
constexpr uint32_t kPackedBase = 0x4A000;
constexpr uint32_t kPackedStride = 0x100;

/** Self-linked queue header for INSQUE/REMQUE. */
constexpr uint32_t kQueueHead = 0x4C000;

/** Pointer slots the jump-destination scaffolds write through. */
constexpr uint32_t kJumpSlots = 0x4E000;

/** F_floating 1.0 as a little-endian longword. */
constexpr uint32_t kFloatOne = 0x4080;

/** Varied-operand displacements.  Plain displacements address fill
 *  data directly; deferred displacements address pointer slots that
 *  point back at the region midpoint. */
constexpr int32_t kByteDisp = 8;
constexpr int32_t kWordDisp = 0x180;
constexpr int32_t kLongDisp = 0x10000;
constexpr int32_t kByteDispDef = 0x70;
constexpr int32_t kWordDispDef = 0x200;
constexpr int32_t kLongDispDef = 0x10100;

/** The engine retires HALT as a (final) instruction. */
constexpr uint64_t kHaltRetires = 1;

// ---------------------------------------------------------------
// The specifier-class axis
// ---------------------------------------------------------------

struct VMode
{
    AddrMode mode;
    bool indexed;
};

/** Enumeration order of the 15 specifier classes: AddrMode order,
 *  then the indexed pseudo-class. */
constexpr VMode kModes[] = {
    {AddrMode::ShortLiteral, false},
    {AddrMode::Register, false},
    {AddrMode::RegDeferred, false},
    {AddrMode::AutoDec, false},
    {AddrMode::AutoInc, false},
    {AddrMode::Immediate, false},
    {AddrMode::AutoIncDef, false},
    {AddrMode::Absolute, false},
    {AddrMode::ByteDisp, false},
    {AddrMode::ByteDispDef, false},
    {AddrMode::WordDisp, false},
    {AddrMode::WordDispDef, false},
    {AddrMode::LongDisp, false},
    {AddrMode::LongDispDef, false},
    {AddrMode::RegDeferred, true},
};

std::string
modeKey(const VMode &vm)
{
    return vm.indexed ? "indexed" : addrModeName(vm.mode);
}

/** The spec matrix: why a class is illegal for an access type, or
 *  nullptr if it is legal (mirrors ulint's slot rules). */
const char *
modeIllegalReason(const VMode &vm, Access acc)
{
    if (vm.indexed)
        return nullptr; // base is (Rn); legal for every access class
    if (vm.mode == AddrMode::ShortLiteral ||
        vm.mode == AddrMode::Immediate) {
        if (acc != Access::Read)
            return "short-literal/immediate specifiers are read-only "
                   "(spec matrix)";
    } else if (vm.mode == AddrMode::Register) {
        if (acc == Access::Address)
            return "register mode has no address";
    }
    return nullptr;
}

// ---------------------------------------------------------------
// Harness selection
// ---------------------------------------------------------------

/** How the measured instruction must be embedded in the loop body. */
enum class Harness : uint8_t {
    Plain,    ///< instruction stands alone; any branch disp targets
              ///< the fall-through
    Jump,     ///< JMP: destination scaffold per mode, lands at the
              ///< next copy
    JsbJump,  ///< JSB: like Jump, destination is the shared RSB
    BsbPair,  ///< BSBB/BSBW/RSB: call the shared RSB and return
    Case,     ///< CASEx: inline 2-entry table, all roads lead to next
    CallMask, ///< CALLG/CALLS: entry mask inline, no return
    RetPair,  ///< RET: CALLS/RET pair per copy
    Rei,      ///< REI: push PSL/PC, REI to the next copy
    Skip,     ///< cannot run in the bare loop at all
};

Harness
harnessFor(const OpcodeInfo &info, const char **skip_reason)
{
    *skip_reason = nullptr;
    switch (info.flow) {
      case ExecFlow::Halt:
        *skip_reason = "halts the machine mid-loop";
        return Harness::Skip;
      case ExecFlow::Bpt:
        *skip_reason =
            "faults through the SCB; no handler in the bare harness";
        return Harness::Skip;
      case ExecFlow::Chmk:
        *skip_reason =
            "faults through the SCB; no handler in the bare harness";
        return Harness::Skip;
      case ExecFlow::SvPctx:
      case ExecFlow::LdPctx:
        *skip_reason = "requires process-context (PCB) setup";
        return Harness::Skip;
      case ExecFlow::Jmp:
        return Harness::Jump;
      case ExecFlow::Jsb:
        return Harness::JsbJump;
      case ExecFlow::Bsb:
      case ExecFlow::Rsb:
        return Harness::BsbPair;
      case ExecFlow::Case:
        return Harness::Case;
      case ExecFlow::CallG:
      case ExecFlow::CallS:
        return Harness::CallMask;
      case ExecFlow::Ret:
        return Harness::RetPair;
      case ExecFlow::Rei:
        return Harness::Rei;
      default:
        return Harness::Plain;
    }
}

// ---------------------------------------------------------------
// Program builder
// ---------------------------------------------------------------

struct Builder
{
    const OpcodeInfo &info;
    const UcharParams &p;
    VMode vm{AddrMode::Register, false};
    bool noSpec = false;
    Harness h = Harness::Plain;

    bool floatRegion = false;
    uint32_t mid = kMidInt;
    uint32_t ptrTab = kPtrTabInt;
    uint32_t aux = kPtrTabInt; ///< preamble value of R8
    uint32_t ipc = 1;          ///< dynamic instructions per copy
    bool needRsb = false;

    Assembler a{kCodeBase};
    std::vector<uint32_t> offsets;

    /** Static instruction profile, built by the assembler hook: each
     *  emitted instruction is recorded with the dynamic multiplicity
     *  of the image section being laid down (hookMult). */
    std::vector<UcharProfileEntry> profile;
    uint64_t hookMult = 1;

    Builder(const OpcodeInfo &info_, const UcharParams &p_)
        : info(info_), p(p_)
    {
    }

    void
    recordInstr(const OpcodeInfo &ii, const std::vector<Operand> &ops)
    {
        if (hookMult == 0)
            return;
        std::vector<UcharSpecUse> specs;
        for (const Operand &o : ops) {
            if (o.isBranch())
                continue; // branch displacements are not specifiers
            specs.push_back(UcharSpecUse{o.specMode(), o.isIndexed()});
        }
        for (UcharProfileEntry &e : profile) {
            if (e.opcode == ii.opcode && e.specs == specs) {
                e.count += hookMult;
                return;
            }
        }
        profile.push_back(
            UcharProfileEntry{ii.opcode, hookMult, std::move(specs)});
    }

    std::string
    copyLabel(uint32_t k, const char *tag) const
    {
        std::ostringstream os;
        os << "uch_" << tag << "_" << k;
        return os.str();
    }

    /** Mark the next emitted instruction as the measured one. */
    void
    markTarget()
    {
        offsets.push_back(
            static_cast<uint32_t>(a.here() - a.base()));
    }

    Operand
    variedOperand() const
    {
        Access acc = info.operands[0].access;
        bool isRead = acc == Access::Read;
        if (vm.indexed)
            return Operand::regDef(R10).idx(R3);
        switch (vm.mode) {
          case AddrMode::ShortLiteral:
            return Operand::lit(1);
          case AddrMode::Register:
            if (floatRegion)
                return Operand::reg(isRead ? R4 : R5);
            return Operand::reg(isRead ? R2 : R3);
          case AddrMode::RegDeferred:
            return Operand::regDef(R10);
          case AddrMode::AutoDec:
            return Operand::autoDec(R10);
          case AddrMode::AutoInc:
            return Operand::autoInc(R10);
          case AddrMode::Immediate:
            return Operand::imm(floatRegion ? kFloatOne : 1);
          case AddrMode::AutoIncDef:
            return Operand::autoIncDef(R8);
          case AddrMode::Absolute:
            return Operand::absolute(mid);
          case AddrMode::ByteDisp:
            return Operand::dispWidth(kByteDisp, R10, 1);
          case AddrMode::ByteDispDef:
            return Operand::dispDefWidth(kByteDispDef, R10, 1);
          case AddrMode::WordDisp:
            return Operand::dispWidth(kWordDisp, R10, 2);
          case AddrMode::WordDispDef:
            return Operand::dispDefWidth(kWordDispDef, R10, 2);
          case AddrMode::LongDisp:
            return Operand::dispWidth(kLongDisp, R10, 4);
          case AddrMode::LongDispDef:
            return Operand::dispDefWidth(kLongDispDef, R10, 4);
          default:
            fatal("uchar: unreachable varied mode");
        }
    }

    /** Fixed operand for position i > 0 (or i == 0 of a no-spec op's
     *  non-branch operand, which does not occur). */
    Operand
    defaultOperand(unsigned i, unsigned addr_seq) const
    {
        const OperandDef &def = info.operands[i];
        if (info.opcode == op::MTPR && i == 1)
            return Operand::lit(63); // unmodeled, safely writable IPR
        switch (def.access) {
          case Access::Address:
            return Operand::absolute(addressFor(addr_seq));
          case Access::Field:
            // Memory base: no 32-bit position limit, and the
            // bit-setting branches (BBSS) cannot feed the base back
            // into their own position operand.
            return Operand::absolute(mid);
          case Access::Read:
            if (def.type == DataType::FFloat)
                return Operand::reg(R4);
            if (def.type == DataType::Quad)
                return Operand::reg(R2);
            return Operand::lit(1);
          default: // Write / Modify
            if (def.type == DataType::FFloat)
                return Operand::reg(R5);
            return Operand::reg(R3);
        }
    }

    /** Address for the addr_seq'th fixed Address operand. */
    uint32_t
    addressFor(unsigned addr_seq) const
    {
        switch (info.flow) {
          case ExecFlow::MovC3:
          case ExecFlow::MovC5:
          case ExecFlow::CmpC:
            return addr_seq == 0 ? kCharSrc : kCharDst;
          case ExecFlow::Locc:
            return kCharSrc;
          case ExecFlow::Scanc:
            return addr_seq == 0 ? kCharSrc : kCharTbl;
          case ExecFlow::InsQue:
            return kQueueHead; // predecessor
          default:
            if (info.group == Group::Decimal)
                return kPackedBase + kPackedStride * addr_seq;
            return mid;
        }
    }

    void
    emitPreamble()
    {
        a.instr(op::MOVL, {Operand::imm(1), Operand::reg(R2)});
        a.instr(op::MOVL, {Operand::imm(0), Operand::reg(R3)});
        a.instr(op::MOVL, {Operand::imm(kFloatOne), Operand::reg(R4)});
        a.instr(op::MOVL, {Operand::imm(kFloatOne), Operand::reg(R5)});
        a.instr(op::MOVL, {Operand::imm(aux), Operand::reg(R8)});
        a.instr(op::MOVL, {Operand::imm(mid), Operand::reg(R10)});
        a.instr(op::MOVL, {Operand::imm(kStackTop), Operand::reg(SP)});
    }

    void
    emitPlainCopy(uint32_t k)
    {
        std::string next = copyLabel(k, "next");
        std::vector<Operand> ops;
        unsigned addr_seq = 0;
        for (unsigned i = 0; i < info.numOperands; ++i) {
            const OperandDef &def = info.operands[i];
            if (def.access == Access::Branch) {
                ops.push_back(Operand::branch(next));
            } else if (i == 0) {
                ops.push_back(variedOperand());
            } else {
                ops.push_back(defaultOperand(i, addr_seq));
                if (def.access == Access::Address)
                    ++addr_seq;
            }
        }
        markTarget();
        a.instr(info.opcode, ops);
        a.label(next);
    }

    /** JMP/JSB destination scaffold: make the varied address operand
     *  resolve to `dest`, then emit the measured instruction. */
    void
    emitJumpCopy(uint32_t k, const std::string &dest)
    {
        std::string next = copyLabel(k, "next");
        auto loadR10 = [&] {
            a.instr(op::MOVL,
                    {Operand::immAddr(dest), Operand::reg(R10)});
        };
        auto loadSlot = [&](uint32_t slot) {
            a.instr(op::MOVL, {Operand::immAddr(dest),
                               Operand::absolute(slot)});
        };
        Operand target = Operand::reg(R10); // overwritten below
        if (vm.indexed) {
            loadR10();
            target = Operand::regDef(R10).idx(R3);
        } else {
            switch (vm.mode) {
              case AddrMode::Absolute:
                target = Operand::absoluteLabel(dest);
                break;
              case AddrMode::RegDeferred:
                loadR10();
                target = Operand::regDef(R10);
                break;
              case AddrMode::AutoInc:
                loadR10();
                target = Operand::autoInc(R10);
                break;
              case AddrMode::AutoIncDef:
                loadSlot(kJumpSlots + 4 * k);
                target = Operand::autoIncDef(R8);
                break;
              case AddrMode::ByteDisp:
                loadR10();
                target = Operand::dispWidth(0, R10, 1);
                break;
              case AddrMode::WordDisp:
                loadR10();
                target = Operand::dispWidth(0, R10, 2);
                break;
              case AddrMode::LongDisp:
                loadR10();
                target = Operand::dispWidth(0, R10, 4);
                break;
              case AddrMode::ByteDispDef:
                loadSlot(kJumpSlots);
                target = Operand::dispDefWidth(0, R8, 1);
                break;
              case AddrMode::WordDispDef:
                loadSlot(kJumpSlots);
                target = Operand::dispDefWidth(0, R8, 2);
                break;
              case AddrMode::LongDispDef:
                loadSlot(kJumpSlots);
                target = Operand::dispDefWidth(0, R8, 4);
                break;
              default:
                fatal("uchar: unreachable jump mode");
            }
        }
        markTarget();
        a.instr(info.opcode, {target});
        a.label(next);
    }

    void
    emitCaseCopy(uint32_t k)
    {
        std::string next = copyLabel(k, "next");
        markTarget();
        a.instr(info.opcode,
                {variedOperand(), Operand::lit(0), Operand::lit(1)});
        a.caseTable({next, next});
        a.label(next);
    }

    void
    emitCallCopy(uint32_t k)
    {
        std::string entry = copyLabel(k, "entry");
        markTarget();
        a.instr(info.opcode,
                {variedOperand(), Operand::rel(entry)});
        a.label(entry);
        a.entryMask(0); // execution continues right after the mask
    }

    void
    emitRetCopy(uint32_t k)
    {
        std::string entry = copyLabel(k, "entry");
        std::string next = copyLabel(k, "next");
        a.instr(op::CALLS, {Operand::lit(0), Operand::rel(entry)});
        a.instr(op::BRB, {Operand::branch(next)});
        a.label(entry);
        a.entryMask(0);
        markTarget();
        a.instr(op::RET);
        a.label(next);
    }

    void
    emitReiCopy(uint32_t k)
    {
        std::string next = copyLabel(k, "next");
        a.instr(op::PUSHL, {Operand::imm(0)}); // new PSL: kernel, IPL 0
        a.instr(op::PUSHL, {Operand::immAddr(next)}); // new PC on top
        markTarget();
        a.instr(info.opcode);
        a.label(next);
    }

    void
    emitBsbCopy()
    {
        if (info.flow != ExecFlow::Rsb)
            markTarget();
        uint8_t bsb =
            info.flow == ExecFlow::Rsb ? op::BSBB : info.opcode;
        a.instr(bsb, {Operand::branch("uch_rsb")});
    }

    void
    emitCopy(uint32_t k)
    {
        switch (h) {
          case Harness::Plain:
            emitPlainCopy(k);
            break;
          case Harness::Jump:
            emitJumpCopy(k, copyLabel(k, "next"));
            break;
          case Harness::JsbJump:
            emitJumpCopy(k, "uch_rsb");
            break;
          case Harness::BsbPair:
            emitBsbCopy();
            break;
          case Harness::Case:
            emitCaseCopy(k);
            break;
          case Harness::CallMask:
            emitCallCopy(k);
            break;
          case Harness::RetPair:
            emitRetCopy(k);
            break;
          case Harness::Rei:
            emitReiCopy(k);
            break;
          case Harness::Skip:
            fatal("uchar: emitCopy on a skipped harness");
        }
    }

    /** Dynamic instructions per copy for the chosen harness/mode. */
    uint32_t
    copyIpc() const
    {
        switch (h) {
          case Harness::Plain:
          case Harness::Case:
          case Harness::CallMask:
            return 1;
          case Harness::BsbPair:
            return 2; // BSBx + RSB
          case Harness::RetPair:
          case Harness::Rei:
            return 3;
          case Harness::Jump:
          case Harness::JsbJump: {
            // Absolute mode needs no scaffold; all others burn one
            // MOVL to plant the destination.  JSB additionally
            // returns through the shared RSB.
            uint32_t scaffold =
                !vm.indexed && vm.mode == AddrMode::Absolute ? 0 : 1;
            uint32_t ret = h == Harness::JsbJump ? 1 : 0;
            return scaffold + 1 + ret;
          }
          case Harness::Skip:
            break;
        }
        fatal("uchar: copyIpc on a skipped harness");
    }

    void
    addPokes(UcharProgram &prog) const
    {
        auto fill = [&](uint32_t base, uint32_t value, size_t bytes) {
            std::vector<uint8_t> img(bytes);
            for (size_t i = 0; i < bytes; ++i)
                img[i] =
                    static_cast<uint8_t>(value >> (8 * (i % 4)));
            prog.pokes.emplace_back(base, std::move(img));
        };
        auto longs = [&](uint32_t addr,
                         std::initializer_list<uint32_t> vals) {
            std::vector<uint8_t> img;
            for (uint32_t v : vals)
                for (unsigned b = 0; b < 4; ++b)
                    img.push_back(static_cast<uint8_t>(v >> (8 * b)));
            prog.pokes.emplace_back(addr, std::move(img));
        };

        uint32_t fillVal = floatRegion ? kFloatOne : 1;
        uint32_t base1 = floatRegion ? kFloatBase1 : kIntBase1;
        uint32_t base2 = floatRegion ? kFloatBase2 : kIntBase2;
        fill(base1, fillVal, kRegionBytes);
        fill(base2, fillVal, kRegionBytes);
        // Deferred-displacement pointer slots, all pointing back at
        // the region midpoint.
        longs(mid + kByteDispDef, {mid});
        longs(mid + kWordDispDef, {mid});
        longs(mid + kLongDispDef, {mid});
        // @(Rn)+ pointer table: one slot per unrolled copy and room
        // to spare.
        {
            std::vector<uint8_t> tab;
            for (unsigned s = 0; s < 16; ++s)
                for (unsigned b = 0; b < 4; ++b)
                    tab.push_back(
                        static_cast<uint8_t>(mid >> (8 * b)));
            prog.pokes.emplace_back(ptrTab, std::move(tab));
        }
        if (info.group == Group::Decimal) {
            // P0..P3: the packed number +1 (digit 1, sign C).
            for (unsigned k = 0; k < 4; ++k) {
                std::vector<uint8_t> packed(8, 0x1C);
                prog.pokes.emplace_back(
                    kPackedBase + kPackedStride * k,
                    std::move(packed));
            }
        }
        if (info.flow == ExecFlow::InsQue ||
            info.flow == ExecFlow::RemQue) {
            longs(kQueueHead, {kQueueHead, kQueueHead});
        }
        if (info.flow == ExecFlow::RemQue) {
            // Pre-linked entries at every address the non-marching
            // modes resolve to, all self-consistently linked to the
            // header.
            for (uint32_t at : {mid, mid + 8,
                                mid + static_cast<uint32_t>(kWordDisp),
                                mid + static_cast<uint32_t>(kLongDisp)})
                longs(at, {kQueueHead, kQueueHead});
        }
    }

    /** Assemble the full program.  vm/noSpec/h must be set. */
    UcharProgram
    build()
    {
        floatRegion = !noSpec && info.numSpecifiers > 0 &&
            info.operands[0].type == DataType::FFloat;
        mid = floatRegion ? kMidFloat : kMidInt;
        ptrTab = floatRegion ? kPtrTabFloat : kPtrTabInt;
        aux = ptrTab;
        if ((h == Harness::Jump || h == Harness::JsbJump) &&
            !vm.indexed &&
            (vm.mode == AddrMode::AutoIncDef ||
             vm.mode == AddrMode::ByteDispDef ||
             vm.mode == AddrMode::WordDispDef ||
             vm.mode == AddrMode::LongDispDef))
            aux = kJumpSlots;
        needRsb = h == Harness::JsbJump || h == Harness::BsbPair;
        ipc = copyIpc();

        UcharProgram prog;
        prog.op = info.mnemonic;
        prog.ipc = ipc;
        prog.base = kCodeBase;
        prog.sp = kStackTop;

        const uint64_t iters = p.iters;
        a.setInstrHook([this](const OpcodeInfo &ii,
                              const std::vector<Operand> &ops) {
            recordInstr(ii, ops);
        });

        hookMult = 1;
        a.instr(op::MOVL,
                {Operand::imm(p.iters), Operand::reg(R11)});
        a.label("uch_loop");
        hookMult = iters; // loop body: preamble + copies + SOBGTR
        emitPreamble();
        for (uint32_t k = 0; k < p.unroll; ++k)
            emitCopy(k);
        a.instr(op::SOBGTR,
                {Operand::reg(R11), Operand::branch("uch_again")});
        hookMult = 1; // fall-through after the final iteration
        a.instr(op::BRB, {Operand::branch("uch_done")});
        a.label("uch_again");
        hookMult = iters - 1; // back-jump on all but the last
        a.instr(op::JMP, {Operand::absoluteLabel("uch_loop")});
        a.label("uch_done");
        hookMult = kHaltRetires;
        a.instr(op::HALT);
        if (needRsb) {
            a.label("uch_rsb");
            if (info.flow == ExecFlow::Rsb)
                markTarget();
            // The shared RSB returns from every BSBx/JSB copy.
            hookMult = iters * p.unroll;
            a.instr(op::RSB);
        }
        prog.image = a.finish();
        prog.targetOffsets = offsets;
        prog.profile = std::move(profile);
        addPokes(prog);

        // 1 counter init + per iteration (7 preamble + body + SOBGTR)
        // + back-JMP on all but the last iteration + BRB + HALT.
        prog.expectedInstructions = 1 +
            iters * (7 + static_cast<uint64_t>(p.unroll) * ipc + 1) +
            (iters - 1) + 1 + kHaltRetires;

        // The profile and the retire-count prediction are derived
        // independently; they must agree exactly or the bound
        // composition would be unsound.
        uint64_t profiled = 0;
        for (const UcharProfileEntry &e : prog.profile)
            profiled += e.count;
        if (profiled != prog.expectedInstructions)
            fatal("uchar: %s/%s instruction profile (%llu) disagrees "
                  "with expected retire count (%llu)",
                  prog.op.c_str(), prog.mode.c_str(),
                  static_cast<unsigned long long>(profiled),
                  static_cast<unsigned long long>(
                      prog.expectedInstructions));
        return prog;
    }
};

/** The empty loop, measured once per suite: identical preamble and
 *  loop-closing shape, zero copies. */
struct CalibrationInfo
{
};

bool
filterMatch(const std::string &filter, const char *mnemonic)
{
    if (filter.empty())
        return true;
    std::string item;
    std::istringstream is(filter);
    while (std::getline(is, item, ',')) {
        if (item.size() != std::strlen(mnemonic))
            continue;
        bool eq = true;
        for (size_t i = 0; i < item.size(); ++i)
            if (std::toupper(static_cast<unsigned char>(item[i])) !=
                mnemonic[i])
                eq = false;
        if (eq)
            return true;
    }
    return false;
}

/** Build one variant cell, classifying it as runnable or skipped. */
UcharVariant
makeVariant(const OpcodeInfo &info, const VMode *vm,
            const UcharParams &params)
{
    UcharVariant v;
    v.op = info.mnemonic;
    v.mode = vm ? modeKey(*vm) : "none";

    const char *harness_skip = nullptr;
    Harness h = harnessFor(info, &harness_skip);

    if (vm) {
        const char *illegal =
            modeIllegalReason(*vm, info.operands[0].access);
        if (illegal) {
            v.skipReason = illegal;
            return v;
        }
    }
    if (h == Harness::Skip) {
        v.skipReason = harness_skip;
        return v;
    }
    if ((h == Harness::Jump || h == Harness::JsbJump) && vm &&
        !vm->indexed && vm->mode == AddrMode::AutoDec) {
        v.skipReason =
            "no deterministic autodecrement destination scaffold";
        return v;
    }
    if (info.flow == ExecFlow::RemQue && vm && !vm->indexed &&
        (vm->mode == AddrMode::AutoInc ||
         vm->mode == AddrMode::AutoDec)) {
        v.skipReason =
            "autoincrement cannot walk pre-linked queue entries";
        return v;
    }

    Builder b(info, params);
    if (vm)
        b.vm = *vm;
    b.noSpec = vm == nullptr;
    b.h = h;
    v.prog = b.build();
    v.prog.mode = v.mode;
    v.runnable = true;
    return v;
}

} // anonymous namespace

std::vector<UcharVariant>
ucharEnumerate(const UcharParams &params, const UcharSuiteOptions &opts)
{
    std::vector<UcharVariant> out;
    for (unsigned opc = 0; opc < 256; ++opc) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(opc));
        if (!info.valid)
            continue;
        if (!filterMatch(opts.opcodeFilter, info.mnemonic))
            continue;
        if (info.numSpecifiers == 0) {
            out.push_back(makeVariant(info, nullptr, params));
            continue;
        }
        for (const VMode &vm : kModes)
            out.push_back(makeVariant(info, &vm, params));
    }
    return out;
}

UcharProgram
ucharCalibration(const UcharParams &params)
{
    UcharParams p = params;
    p.unroll = 0;
    const OpcodeInfo &nop = opcodeInfo(op::NOP);
    Builder b(nop, p);
    b.noSpec = true;
    b.h = Harness::Plain;
    UcharProgram prog = b.build();
    prog.op = "(calibration)";
    prog.mode = "empty";
    prog.ipc = 0;
    prog.targetOffsets.clear();
    return prog;
}

UcharReport
runUcharSuite(const UcharParams &params, const ParallelFor &pf,
              const UcharSuiteOptions &opts)
{
    UcharReport rep;
    rep.params = params;

    UcharProgram calib = ucharCalibration(params);
    UcharOutcome co = runUcharProgram(calib, params);
    if (!co.ok)
        fatal("ucharacterize: calibration loop failed: %s",
              co.reason.c_str());
    rep.calibration = co.run;

    std::vector<UcharVariant> variants = ucharEnumerate(params, opts);
    std::vector<UcharOutcome> outcomes(variants.size());
    auto work = [&](size_t i) {
        if (variants[i].runnable)
            outcomes[i] = runUcharProgram(variants[i].prog, params);
    };
    if (pf)
        pf(variants.size(), work);
    else
        for (size_t i = 0; i < variants.size(); ++i)
            work(i);

    for (size_t i = 0; i < variants.size(); ++i) {
        const UcharVariant &v = variants[i];
        if (v.runnable && outcomes[i].ok) {
            rep.rows.push_back(
                {v.op, v.mode, v.prog.ipc, outcomes[i].run});
        } else {
            rep.skipped.push_back(
                {v.op, v.mode,
                 v.runnable ? outcomes[i].reason : v.skipReason});
        }
    }
    return rep;
}

} // namespace vax
