#include "workload/profile.hh"

#include "support/logging.hh"

namespace vax
{

namespace
{

/** Base block mix tuned so the composite lands near Table 1. */
std::vector<double>
baseWeights()
{
    std::vector<double> w(static_cast<size_t>(BlockKind::NumKinds), 0.0);
    w[static_cast<size_t>(BlockKind::Move)] = 20.0;
    w[static_cast<size_t>(BlockKind::Arith)] = 16.0;
    w[static_cast<size_t>(BlockKind::Boolean)] = 5.0;
    w[static_cast<size_t>(BlockKind::CondBranch)] = 46.0;
    w[static_cast<size_t>(BlockKind::Loop)] = 7.0;
    w[static_cast<size_t>(BlockKind::Subroutine)] = 13.0;
    w[static_cast<size_t>(BlockKind::ProcCall)] = 22.0;
    w[static_cast<size_t>(BlockKind::Field)] = 26.0;
    w[static_cast<size_t>(BlockKind::Float)] = 4.5;
    w[static_cast<size_t>(BlockKind::Character)] = 0.9;
    w[static_cast<size_t>(BlockKind::Decimal)] = 0.08;
    w[static_cast<size_t>(BlockKind::Case)] = 2.5;
    w[static_cast<size_t>(BlockKind::Queue)] = 3.2;
    w[static_cast<size_t>(BlockKind::Syscall)] = 5.5;
    return w;
}

void
scale(std::vector<double> &w, BlockKind k, double f)
{
    w[static_cast<size_t>(k)] *= f;
}

} // anonymous namespace

WorkloadProfile::WorkloadProfile()
    : blockWeights(baseWeights())
{
}

WorkloadProfile
timesharingLightProfile()
{
    // General timesharing and some performance data analysis:
    // text editing, program development, electronic mail; ~15 users,
    // lightly loaded.
    WorkloadProfile p;
    p.name = "timesharing-light";
    p.seed = 0x11780A;
    p.numUsers = 15;
    scale(p.blockWeights, BlockKind::Character, 2.0); // editing
    scale(p.blockWeights, BlockKind::Syscall, 1.4);   // mail, editing
    p.waitProb = 0.10;       // interactive: blocks regularly
    p.thinkCycles = 370000.0; // lightly loaded
    return p;
}

WorkloadProfile
timesharingHeavyProfile()
{
    // Same general use plus circuit simulation and microcode
    // development; ~30 users, heavier load.
    WorkloadProfile p;
    p.name = "timesharing-heavy";
    p.seed = 0x11780B;
    p.numUsers = 30;
    scale(p.blockWeights, BlockKind::Float, 2.2);     // simulation
    scale(p.blockWeights, BlockKind::Field, 1.3);     // bit fiddling
    scale(p.blockWeights, BlockKind::Loop, 1.2);
    p.waitProb = 0.06;       // more compute-bound
    p.thinkCycles = 280000.0;
    return p;
}

WorkloadProfile
educationalProfile()
{
    // 40 simulated users doing program development in various
    // languages and some file manipulation.
    WorkloadProfile p;
    p.name = "educational";
    p.seed = 0x11780C;
    p.numUsers = 40;
    scale(p.blockWeights, BlockKind::ProcCall, 1.5);  // compilers
    scale(p.blockWeights, BlockKind::Subroutine, 1.3);
    scale(p.blockWeights, BlockKind::Character, 1.6); // file handling
    scale(p.blockWeights, BlockKind::Case, 1.4);      // parsers
    p.waitProb = 0.09;
    p.thinkCycles = 370000.0;
    return p;
}

WorkloadProfile
scientificProfile()
{
    // 40 simulated users doing scientific computation and program
    // development.
    WorkloadProfile p;
    p.name = "scientific";
    p.seed = 0x11780D;
    p.numUsers = 40;
    scale(p.blockWeights, BlockKind::Float, 4.0);
    scale(p.blockWeights, BlockKind::Loop, 1.6);
    scale(p.blockWeights, BlockKind::Arith, 1.2);
    scale(p.blockWeights, BlockKind::Character, 0.5);
    p.loopMean = 12.0;
    p.waitProb = 0.05;       // long computations
    p.thinkCycles = 460000.0;
    return p;
}

WorkloadProfile
commercialProfile()
{
    // 32 simulated users doing transactional database inquiries and
    // updates.
    WorkloadProfile p;
    p.name = "commercial";
    p.seed = 0x11780E;
    p.numUsers = 32;
    scale(p.blockWeights, BlockKind::Decimal, 14.0);
    scale(p.blockWeights, BlockKind::Character, 4.0);
    scale(p.blockWeights, BlockKind::Queue, 2.0);
    scale(p.blockWeights, BlockKind::Syscall, 1.8);   // transactions
    scale(p.blockWeights, BlockKind::Float, 0.4);
    p.waitProb = 0.12;       // transaction per terminal interaction
    p.thinkCycles = 230000.0;
    return p;
}

std::vector<WorkloadProfile>
allProfiles()
{
    return {timesharingLightProfile(), timesharingHeavyProfile(),
            educationalProfile(), scientificProfile(),
            commercialProfile()};
}

} // namespace vax
