#include "workload/experiments.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "os/vms.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/sim_error.hh"
#include "support/snapshot.hh"
#include "support/stats.hh"
#include "workload/codegen.hh"

namespace vax
{

void
HwTotals::add(const HwTotals &other, uint64_t weight)
{
    counters.accumulate(other.counters, weight);
    cache.accumulate(other.cache, weight);
    tb.accumulate(other.tb, weight);
    faults.accumulate(other.faults, weight);
    ibLongwordFetches += other.ibLongwordFetches * weight;
    dataReads += other.dataReads * weight;
    dataWrites += other.dataWrites * weight;
    terminalLinesIn += other.terminalLinesIn * weight;
    terminalLinesOut += other.terminalLinesOut * weight;
    diskTransfers += other.diskTransfers * weight;
}

void
HwTotals::regStats(stats::Registry &r, const std::string &prefix) const
{
    counters.regStats(r, prefix);
    cache.regStats(r, prefix + ".cache");
    tb.regStats(r, prefix + ".tb");
    // Registered only when something actually fired: a fault-free
    // run's stats dump stays byte-identical to one built before
    // fault injection existed.
    if (faults.any())
        faults.regStats(r, prefix + ".faults");
    r.addScalar(prefix + ".ibLongwordFetches",
                "I-stream longwords fetched into the IB",
                &ibLongwordFetches);
    r.addScalar(prefix + ".dataReads", "EBOX D-stream reads",
                &dataReads);
    r.addScalar(prefix + ".dataWrites", "EBOX D-stream writes",
                &dataWrites);
    r.addScalar(prefix + ".terminalLinesIn",
                "terminal lines injected by the RTE",
                &terminalLinesIn);
    r.addScalar(prefix + ".terminalLinesOut",
                "terminal lines written by the kernel",
                &terminalLinesOut);
    r.addScalar(prefix + ".diskTransfers",
                "disk transfers completed", &diskTransfers);
}

void
registerCompositeStats(stats::Registry &r, const CompositeResult &comp)
{
    comp.hw.regStats(r, "composite");
    comp.hist.regStats(r, "composite.upc");
    // Failed parts carry no measurements; numbering only the
    // survivors keeps a run with one failed job byte-identical to a
    // run that never had it.
    size_t reg = 0;
    for (const ExperimentResult &part : comp.parts) {
        if (part.failed)
            continue;
        std::string prefix =
            "part" + std::to_string(reg++) + "." + part.name;
        part.hw.regStats(r, prefix);
        part.hist.regStats(r, prefix + ".upc");
    }
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles)
{
    SimConfig sim;
    sim.seed = profile.seed;
    return runExperiment(profile, cycles, sim);
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles,
              const SimConfig &sim)
{
    VmsConfig vcfg;
    vcfg.timerIntervalCycles = 20000;
    vcfg.quantumTicks = 4;
    return runExperiment(profile, cycles, sim, vcfg);
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles,
              const SimConfig &sim, const VmsConfig &vcfg)
{
    return runExperiment(profile, cycles, sim, vcfg, RunLimits());
}

namespace
{

/** RTE poll granularity in machine cycles.  Chunk boundaries also
 *  land only on these iteration boundaries, so chunked runs replay
 *  the one-shot cycle stream exactly. */
constexpr uint64_t rtePoll = 512;

} // anonymous namespace

Experiment::Experiment(const WorkloadProfile &profile, uint64_t cycles,
                       const SimConfig &sim, const VmsConfig &vms,
                       const RunLimits &limits)
    : profile_(profile), cycles_(cycles), limits_(limits), cpu_(sim),
      os_(cpu_, monitor_, vms), diskRng_(profile.seed ^ 0xD15C),
      rte_(profile.seed ^ 0x57E57E), watchdog_(limits.watchdogCycles),
      nextPoll_(rtePoll)
{
    // Every deterministic construction step below happens in the
    // same order as the original one-shot runner, so the machine
    // state and all RNG streams match it draw for draw.
    cpu_.setCycleSink(&monitor_);
    result_.name = profile_.name;

    os_.onTerminalOutput([this](uint32_t) {
        ++result_.hw.terminalLinesOut;
    });

    for (unsigned u = 0; u < profile_.numUsers; ++u) {
        CodeGenerator gen(profile_,
                          profile_.seed * 0x9E3779B1ULL + 17 * u + 1);
        os_.addProcess(gen.generate(u));
    }
    // Disk controller model: completions arrive a (deterministic,
    // exponential) seek+transfer latency after each request.
    os_.onDiskRequest([this](uint32_t proc) {
        double u = diskRng_.uniform();
        uint64_t latency = 8000 +
            static_cast<uint64_t>(-std::log(1.0 - u) * 25000.0);
        diskQueue_.push_back({cpu_.cycles() + latency, proc});
    });
    os_.boot();

    // The RTE: independent think-time clocks per simulated user.
    nextLine_.resize(profile_.numUsers);
    for (unsigned u = 0; u < profile_.numUsers; ++u)
        nextLine_[u] = thinkDraw();

    wallStart_ = std::chrono::steady_clock::now();
}

uint64_t
Experiment::thinkDraw()
{
    double u = rte_.uniform();
    double t = -std::log(1.0 - u) * profile_.thinkCycles;
    return static_cast<uint64_t>(t) + 500;
}

void
Experiment::pollRte()
{
    nextPoll_ = cpu_.cycles() + rtePoll;
    watchdog_.poke(cpu_.hw().instructions, cpu_.cycles(),
                   cpu_.ebox().currentUpc());
    if (limits_.timeoutSeconds > 0.0) {
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - wallStart_;
        if (elapsed.count() > limits_.timeoutSeconds) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "wall-clock budget of %.1fs exceeded",
                          limits_.timeoutSeconds);
            throw SimError::fromGuard(SimErrorCause::Timeout, msg);
        }
    }
    if (limits_.tripCycle && cpu_.cycles() >= limits_.tripCycle) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "scheduled recovery drill at cycle %llu",
                      static_cast<unsigned long long>(
                          limits_.tripCycle));
        throw SimError::fromGuard(SimErrorCause::Drill, msg);
    }
    for (unsigned u = 0; u < profile_.numUsers; ++u) {
        if (nextLine_[u] <= cpu_.cycles()) {
            os_.postTerminalLine(u);
            ++result_.hw.terminalLinesIn;
            nextLine_[u] = cpu_.cycles() + thinkDraw();
        }
    }
    for (size_t i = 0; i < diskQueue_.size();) {
        if (diskQueue_[i].due <= cpu_.cycles()) {
            os_.postDiskCompletion(diskQueue_[i].proc);
            ++result_.hw.diskTransfers;
            diskQueue_[i] = diskQueue_.back();
            diskQueue_.pop_back();
        } else {
            ++i;
        }
    }
}

bool
Experiment::runChunk(uint64_t chunk)
{
    uint64_t stop = cycles_;
    if (chunk && cpu_.cycles() + chunk < stop)
        stop = cpu_.cycles() + chunk;
    while (cpu_.cycles() < stop) {
        cpu_.tick();
        if (cpu_.cycles() >= nextPoll_)
            pollRte();
        if (cpu_.halted())
            panic("machine halted during experiment '%s'",
                  profile_.name.c_str());
    }
    return done();
}

ExperimentResult
Experiment::takeResult()
{
    result_.hist = monitor_.histogram();
    result_.hw.counters = cpu_.hw();
    result_.hw.cache = cpu_.mem().cache().stats();
    result_.hw.tb = cpu_.mem().tb().stats();
    result_.hw.ibLongwordFetches = cpu_.mem().ibLongwordFetches();
    result_.hw.dataReads = cpu_.mem().dataReads();
    result_.hw.dataWrites = cpu_.mem().dataWrites();
    if (const FaultInjector *fi = cpu_.mem().faultInjector()) {
        result_.hw.faults = fi->stats();
        result_.hw.faults.osMachineChecks = os_.machineChecks();
    }
    return std::move(result_);
}

void
Experiment::save(snap::Serializer &s) const
{
    s.beginSection("exp.meta");
    s.putString(profile_.name);
    s.putU64(profile_.seed);
    s.putU32(profile_.numUsers);
    s.putU64(cycles_);
    s.endSection();

    cpu_.save(s);
    monitor_.save(s);
    os_.save(s);

    s.beginSection("exp.rte");
    s.putU64(diskRng_.state());
    s.putU64(rte_.state());
    s.putU64(nextPoll_);
    s.putVecU64(nextLine_);
    s.putU64(diskQueue_.size());
    for (const DiskOp &op : diskQueue_) {
        s.putU64(op.due);
        s.putU32(op.proc);
    }
    // Partial result counters accumulated by the RTE hooks.
    s.putU64(result_.hw.terminalLinesIn);
    s.putU64(result_.hw.terminalLinesOut);
    s.putU64(result_.hw.diskTransfers);
    // Watchdog progress, so a restored run times out at the same
    // simulated point as an uninterrupted one.
    s.putU64(watchdog_.lastInstructions());
    s.putU64(watchdog_.lastProgressCycle());
    s.endSection();
}

void
Experiment::restore(snap::Deserializer &d)
{
    d.beginSection("exp.meta");
    std::string name = d.getString();
    if (name != profile_.name)
        throw snap::SnapshotError(
            "snapshot: checkpoint is for workload '" + name +
            "', this experiment runs '" + profile_.name + "'");
    d.expectU64(profile_.seed, "workload seed");
    d.expectU32(profile_.numUsers, "user count");
    d.expectU64(cycles_, "cycle budget");
    d.endSection();

    cpu_.restore(d);
    monitor_.restore(d);
    os_.restore(d);

    d.beginSection("exp.rte");
    diskRng_.setState(d.getU64());
    rte_.setState(d.getU64());
    nextPoll_ = d.getU64();
    nextLine_ = d.getVecU64();
    if (nextLine_.size() != profile_.numUsers)
        throw snap::SnapshotError(
            "snapshot: RTE clock count mismatch (corrupt exp.rte "
            "section)");
    uint64_t nDisk = d.getU64();
    if (nDisk > (1u << 20))
        throw snap::SnapshotError(
            "snapshot: disk queue length is implausible (corrupt "
            "exp.rte section)");
    diskQueue_.clear();
    diskQueue_.resize(static_cast<size_t>(nDisk));
    for (DiskOp &op : diskQueue_) {
        op.due = d.getU64();
        op.proc = d.getU32();
    }
    result_.hw.terminalLinesIn = d.getU64();
    result_.hw.terminalLinesOut = d.getU64();
    result_.hw.diskTransfers = d.getU64();
    uint64_t wdInstr = d.getU64();
    uint64_t wdCycle = d.getU64();
    watchdog_.restoreProgress(wdInstr, wdCycle);
    d.endSection();

    // The wall clock restarts: timeouts budget each attempt, not the
    // job's cumulative history.
    wallStart_ = std::chrono::steady_clock::now();
}

bool
Experiment::saveFile(const std::string &path) const
{
    snap::Serializer s;
    save(s);
    return s.writeFile(path);
}

void
Experiment::restoreFile(const std::string &path)
{
    snap::Deserializer d = snap::Deserializer::fromFile(path);
    restore(d);
    d.finish();
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles,
              const SimConfig &sim, const VmsConfig &vcfg,
              const RunLimits &limits)
{
    Experiment exp(profile, cycles, sim, vcfg, limits);
    exp.runChunk();
    return exp.takeResult();
}

CompositeResult
runComposite(uint64_t cycles_per_experiment)
{
    CompositeResult comp;
    for (const auto &prof : allProfiles()) {
        ExperimentResult r = runExperiment(prof, cycles_per_experiment);
        comp.hist.add(r.hist);
        comp.hw.add(r.hw);
        comp.parts.push_back(std::move(r));
    }
    return comp;
}

uint64_t
benchCycles(uint64_t def)
{
    const char *env = std::getenv("UPC780_CYCLES");
    if (!env)
        return def;
    uint64_t v = std::strtoull(env, nullptr, 0);
    return v ? v : def;
}

} // namespace vax
