#include "workload/experiments.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "os/vms.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/sim_error.hh"
#include "support/stats.hh"
#include "workload/codegen.hh"

namespace vax
{

void
HwTotals::add(const HwTotals &other, uint64_t weight)
{
    counters.accumulate(other.counters, weight);
    cache.accumulate(other.cache, weight);
    tb.accumulate(other.tb, weight);
    faults.accumulate(other.faults, weight);
    ibLongwordFetches += other.ibLongwordFetches * weight;
    dataReads += other.dataReads * weight;
    dataWrites += other.dataWrites * weight;
    terminalLinesIn += other.terminalLinesIn * weight;
    terminalLinesOut += other.terminalLinesOut * weight;
    diskTransfers += other.diskTransfers * weight;
}

void
HwTotals::regStats(stats::Registry &r, const std::string &prefix) const
{
    counters.regStats(r, prefix);
    cache.regStats(r, prefix + ".cache");
    tb.regStats(r, prefix + ".tb");
    // Registered only when something actually fired: a fault-free
    // run's stats dump stays byte-identical to one built before
    // fault injection existed.
    if (faults.any())
        faults.regStats(r, prefix + ".faults");
    r.addScalar(prefix + ".ibLongwordFetches",
                "I-stream longwords fetched into the IB",
                &ibLongwordFetches);
    r.addScalar(prefix + ".dataReads", "EBOX D-stream reads",
                &dataReads);
    r.addScalar(prefix + ".dataWrites", "EBOX D-stream writes",
                &dataWrites);
    r.addScalar(prefix + ".terminalLinesIn",
                "terminal lines injected by the RTE",
                &terminalLinesIn);
    r.addScalar(prefix + ".terminalLinesOut",
                "terminal lines written by the kernel",
                &terminalLinesOut);
    r.addScalar(prefix + ".diskTransfers",
                "disk transfers completed", &diskTransfers);
}

void
registerCompositeStats(stats::Registry &r, const CompositeResult &comp)
{
    comp.hw.regStats(r, "composite");
    comp.hist.regStats(r, "composite.upc");
    // Failed parts carry no measurements; numbering only the
    // survivors keeps a run with one failed job byte-identical to a
    // run that never had it.
    size_t reg = 0;
    for (const ExperimentResult &part : comp.parts) {
        if (part.failed)
            continue;
        std::string prefix =
            "part" + std::to_string(reg++) + "." + part.name;
        part.hw.regStats(r, prefix);
        part.hist.regStats(r, prefix + ".upc");
    }
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles)
{
    SimConfig sim;
    sim.seed = profile.seed;
    return runExperiment(profile, cycles, sim);
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles,
              const SimConfig &sim)
{
    VmsConfig vcfg;
    vcfg.timerIntervalCycles = 20000;
    vcfg.quantumTicks = 4;
    return runExperiment(profile, cycles, sim, vcfg);
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles,
              const SimConfig &sim, const VmsConfig &vcfg)
{
    return runExperiment(profile, cycles, sim, vcfg, RunLimits());
}

ExperimentResult
runExperiment(const WorkloadProfile &profile, uint64_t cycles,
              const SimConfig &sim, const VmsConfig &vcfg,
              const RunLimits &limits)
{
    Cpu780 cpu(sim);
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);

    VmsLite os(cpu, monitor, vcfg);

    ExperimentResult result;
    result.name = profile.name;

    os.onTerminalOutput([&result](uint32_t) {
        ++result.hw.terminalLinesOut;
    });

    // Disk controller model: completions arrive a (deterministic,
    // exponential) seek+transfer latency after each request.
    struct DiskOp
    {
        uint64_t due;
        uint32_t proc;
    };
    std::vector<DiskOp> disk_queue;
    Rng disk_rng(profile.seed ^ 0xD15C);

    for (unsigned u = 0; u < profile.numUsers; ++u) {
        CodeGenerator gen(profile,
                          profile.seed * 0x9E3779B1ULL + 17 * u + 1);
        os.addProcess(gen.generate(u));
    }
    os.onDiskRequest([&](uint32_t proc) {
        double u = disk_rng.uniform();
        uint64_t latency = 8000 +
            static_cast<uint64_t>(-std::log(1.0 - u) * 25000.0);
        disk_queue.push_back({cpu.cycles() + latency, proc});
    });
    os.boot();

    // The RTE: independent think-time clocks per simulated user.
    Rng rte(profile.seed ^ 0x57E57E);
    auto think = [&rte, &profile]() -> uint64_t {
        double u = rte.uniform();
        double t = -std::log(1.0 - u) * profile.thinkCycles;
        return static_cast<uint64_t>(t) + 500;
    };
    std::vector<uint64_t> next_line(profile.numUsers);
    for (unsigned u = 0; u < profile.numUsers; ++u)
        next_line[u] = think();

    ForwardProgressWatchdog watchdog(limits.watchdogCycles);
    auto wall_start = std::chrono::steady_clock::now();

    constexpr uint64_t rte_poll = 512;
    uint64_t next_poll = rte_poll;
    while (cpu.cycles() < cycles) {
        cpu.tick();
        if (cpu.cycles() >= next_poll) {
            next_poll = cpu.cycles() + rte_poll;
            watchdog.poke(cpu.hw().instructions, cpu.cycles(),
                          cpu.ebox().currentUpc());
            if (limits.timeoutSeconds > 0.0) {
                std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - wall_start;
                if (elapsed.count() > limits.timeoutSeconds) {
                    char msg[96];
                    std::snprintf(msg, sizeof(msg),
                                  "wall-clock budget of %.1fs exceeded",
                                  limits.timeoutSeconds);
                    throw SimError::fromGuard(SimErrorCause::Timeout,
                                              msg);
                }
            }
            for (unsigned u = 0; u < profile.numUsers; ++u) {
                if (next_line[u] <= cpu.cycles()) {
                    os.postTerminalLine(u);
                    ++result.hw.terminalLinesIn;
                    next_line[u] = cpu.cycles() + think();
                }
            }
            for (size_t i = 0; i < disk_queue.size();) {
                if (disk_queue[i].due <= cpu.cycles()) {
                    os.postDiskCompletion(disk_queue[i].proc);
                    ++result.hw.diskTransfers;
                    disk_queue[i] = disk_queue.back();
                    disk_queue.pop_back();
                } else {
                    ++i;
                }
            }
        }
        if (cpu.halted())
            panic("machine halted during experiment '%s'",
                  profile.name.c_str());
    }

    result.hist = monitor.histogram();
    result.hw.counters = cpu.hw();
    result.hw.cache = cpu.mem().cache().stats();
    result.hw.tb = cpu.mem().tb().stats();
    result.hw.ibLongwordFetches = cpu.mem().ibLongwordFetches();
    result.hw.dataReads = cpu.mem().dataReads();
    result.hw.dataWrites = cpu.mem().dataWrites();
    if (const FaultInjector *fi = cpu.mem().faultInjector()) {
        result.hw.faults = fi->stats();
        result.hw.faults.osMachineChecks = os.machineChecks();
    }
    return result;
}

CompositeResult
runComposite(uint64_t cycles_per_experiment)
{
    CompositeResult comp;
    for (const auto &prof : allProfiles()) {
        ExperimentResult r = runExperiment(prof, cycles_per_experiment);
        comp.hist.add(r.hist);
        comp.hw.add(r.hw);
        comp.parts.push_back(std::move(r));
    }
    return comp;
}

uint64_t
benchCycles(uint64_t def)
{
    const char *env = std::getenv("UPC780_CYCLES");
    if (!env)
        return def;
    uint64_t v = std::strtoull(env, nullptr, 0);
    return v ? v : def;
}

} // namespace vax
