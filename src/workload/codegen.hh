/**
 * @file
 * Synthetic VAX program generator.
 *
 * Emits runnable user programs whose instruction mix, addressing-mode
 * mix, loop geometry, call behaviour and data locality follow a
 * WorkloadProfile.  Programs run forever: an outer iteration of
 * activity blocks, optional system services, an optional wait for
 * terminal input, and a branch back.
 *
 * Register conventions of generated code:
 *   R0-R5  volatile (string instructions and CHMK services clobber)
 *   R6, R7 accumulator / value registers
 *   R8, R9 hot / cold data-region base pointers (never changed)
 *   R10    loop counter (loops are self-contained)
 *   R11    index register (kept in [0,7] for indexed modes)
 */

#ifndef UPC780_WORKLOAD_CODEGEN_HH
#define UPC780_WORKLOAD_CODEGEN_HH

#include <string>

#include "arch/assembler.hh"
#include "os/vms.hh"
#include "support/random.hh"
#include "workload/profile.hh"

namespace vax
{

class CodeGenerator
{
  public:
    /**
     * @param profile The workload profile to follow.
     * @param seed    Per-program seed (each user gets its own).
     */
    CodeGenerator(const WorkloadProfile &profile, uint64_t seed);

    /** Generate one user program bound to the given terminal. */
    UserProgram generate(unsigned terminal_id);

  private:
    // Block emitters (see BlockKind).
    void emitBlock(BlockKind k, bool top_level);
    void emitMove(bool top_level);
    void emitArith();
    void emitBoolean();
    void emitCondBranch();
    void emitLoop();
    void emitSubroutineCall();
    void emitProcCall();
    void emitField();
    void emitFloat();
    void emitCharacter();
    void emitDecimal();
    void emitCase();
    void emitQueue();
    void emitSyscall();

    void emitFiller(unsigned n);
    void emitLoopBody(unsigned n);
    void emitLoopFlavor();

    // Operand construction.
    Operand readOperand(DataType t, bool mem_biased = false);
    Operand writeOperand(DataType t);
    Operand memOperand(DataType t, bool write);
    uint32_t dataOffset(unsigned region_longs, unsigned size_bytes);

    // Data and code pools.
    void emitDataRegions();
    void emitSubroutines();
    void emitProcedures();

    std::string uniq(const char *stem);
    uint32_t dataAddr(const std::string &label);
    Operand dataOperand(const std::string &label);

    const WorkloadProfile &prof_;
    Rng rng_;
    uint32_t hotVa_ = 0;     ///< VA of the hot region
    uint32_t fdatOff_ = 0;   ///< offset of the float pool off R8
    uint32_t ptrtabOff_ = 0; ///< offset of the pointer table off R8
    Assembler a_{0};
    unsigned label_ = 0;
    unsigned curSub_ = 0;    ///< index while emitting subroutines
    bool inSub_ = false;
    BlockKind lastKind_ = BlockKind::NumKinds;
};

} // namespace vax

#endif // UPC780_WORKLOAD_CODEGEN_HH
