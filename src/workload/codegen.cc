#include "workload/codegen.hh"

#include <cmath>

#include "arch/decimal.hh"
#include "arch/ffloat.hh"
#include "os/abi.hh"
#include "support/logging.hh"

namespace vax
{

namespace
{

/** Small prime-ish constants for divisors (never zero). */
const uint32_t divisors[] = {3, 5, 7, 11, 13, 17, 23, 37, 53, 97};

} // anonymous namespace

CodeGenerator::CodeGenerator(const WorkloadProfile &profile,
                             uint64_t seed)
    : prof_(profile), rng_(seed)
{
}

std::string
CodeGenerator::uniq(const char *stem)
{
    return std::string(stem) + "_" + std::to_string(label_++);
}

uint32_t
CodeGenerator::dataAddr(const std::string &label)
{
    // Data is emitted before code, so addresses are already bound.
    return a_.addrOf(label);
}

Operand
CodeGenerator::dataOperand(const std::string &label)
{
    // Address a data object either off the hot base register or with
    // absolute mode, both range-free.
    uint32_t addr = dataAddr(label);
    if (rng_.chance(0.5))
        return Operand::disp(
            static_cast<int32_t>(addr - hotVa_), R8);
    return Operand::absolute(addr);
}

uint32_t
CodeGenerator::dataOffset(unsigned region_longs, unsigned size_bytes)
{
    uint32_t span = region_longs * 4 - 8 * size_bytes;
    uint32_t off = rng_.below(span);
    return off & ~(size_bytes - 1); // align to the operand size
}

Operand
CodeGenerator::memOperand(DataType t, bool write)
{
    unsigned size = dataTypeBytes(t);
    bool cold = rng_.chance(prof_.coldFraction);
    uint8_t base = cold ? R9 : R8;
    // R9 points at a window that the outer loop slides across the
    // cold region, so the cold working set is bounded per iteration.
    unsigned longs = cold ? prof_.coldWindowLongs : prof_.hotLongs;

    double w_disp = prof_.wOpDisp;
    double w_regdef = prof_.wOpRegDef;
    double w_dispdef = prof_.wOpDispDef;
    double w_abs = prof_.wOpAbsolute;
    size_t pick =
        rng_.pickWeighted({w_disp, w_regdef, w_dispdef, w_abs});

    Operand o = Operand::reg(R6);
    switch (pick) {
      case 0:
        o = Operand::disp(
            static_cast<int32_t>(dataOffset(longs, size)), base);
        break;
      case 1:
        // (R8)/(R9) point at the region base; fine for any size.
        o = Operand::regDef(base);
        break;
      case 2: {
        // Pointer table: @disp(R8) via ptrtab offsets; the table has
        // 16 longword pointers into the hot region.
        uint32_t slot = rng_.below(16);
        o = Operand::dispDef(
            static_cast<int32_t>(ptrtabOff_ + 4 * slot), R8);
        break;
      }
      case 3:
        o = Operand::absolute(hotVa_ + dataOffset(prof_.hotLongs,
                                                  size));
        break;
    }
    if (rng_.chance(prof_.pIndexed) && pick == 0 && size <= 4) {
        // Indexed: R11 is kept in [0,7]; leave room at region end.
        o = Operand::disp(
            static_cast<int32_t>(dataOffset(longs, size)), base)
            .idx(R11);
    } else if (pick == 0 && size >= 2 &&
               rng_.chance(prof_.unalignedProb)) {
        // Occasional unaligned reference (paper: 0.016/instruction).
        o = Operand::disp(
            static_cast<int32_t>(dataOffset(longs, size) + 1), base);
    }
    (void)write;
    return o;
}

Operand
CodeGenerator::readOperand(DataType t, bool mem_biased)
{
    // Source (usually first) operands come from memory more often
    // than destinations do -- the asymmetry behind the paper's
    // Table 4 position classes.
    double w_reg = mem_biased ? prof_.wOpRegister * 0.45
                              : prof_.wOpRegister;
    size_t pick = rng_.pickWeighted(
        {w_reg, prof_.wOpLiteral, prof_.wOpImmediate,
         prof_.wOpDisp + prof_.wOpRegDef + prof_.wOpDispDef +
             prof_.wOpAbsolute});
    switch (pick) {
      case 0:
        return Operand::reg(rng_.chance(0.5) ? R6 : R7);
      case 1:
        return Operand::lit(static_cast<uint8_t>(rng_.below(64)));
      case 2:
        return Operand::imm(rng_.next() & 0xFFFF);
      default:
        return memOperand(t, false);
    }
}

Operand
CodeGenerator::writeOperand(DataType t)
{
    size_t pick = rng_.pickWeighted(
        {prof_.wOpRegister * 1.6,
         prof_.wOpDisp + prof_.wOpRegDef + prof_.wOpDispDef +
             prof_.wOpAbsolute});
    if (pick == 0)
        return Operand::reg(rng_.chance(0.5) ? R6 : R7);
    return memOperand(t, true);
}

void
CodeGenerator::emitFiller(unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        switch (rng_.below(4)) {
          case 0:
            a_.instr(op::MOVL, {readOperand(DataType::Long),
                                writeOperand(DataType::Long)});
            break;
          case 1:
            a_.instr(op::ADDL2, {readOperand(DataType::Long),
                                 Operand::reg(R6)});
            break;
          case 2:
            a_.instr(op::INCL, {Operand::reg(R7)});
            break;
          case 3:
            a_.instr(op::BISL2, {Operand::lit(
                                     static_cast<uint8_t>(
                                         rng_.below(64))),
                                 Operand::reg(R7)});
            break;
        }
    }
}

void
CodeGenerator::emitMove(bool top_level)
{
    unsigned n = 2 + rng_.below(3);
    for (unsigned i = 0; i < n; ++i) {
        switch (rng_.below(8)) {
          case 0:
            a_.instr(op::MOVB, {readOperand(DataType::Byte),
                                writeOperand(DataType::Byte)});
            break;
          case 1:
            a_.instr(op::MOVW, {readOperand(DataType::Word),
                                writeOperand(DataType::Word)});
            break;
          case 2:
          case 3:
          case 4:
            a_.instr(op::MOVL, {readOperand(DataType::Long, true),
                                writeOperand(DataType::Long)});
            break;
          case 5:
            a_.instr(op::MOVZBL, {readOperand(DataType::Byte),
                                  writeOperand(DataType::Long)});
            break;
          case 6:
            a_.instr(op::CLRL, {writeOperand(DataType::Long)});
            break;
          case 7:
            a_.instr(op::MOVAB,
                     {memOperand(DataType::Byte, true),
                      Operand::reg(rng_.chance(0.5) ? R6 : R7)});
            break;
        }
    }
    if (top_level && rng_.chance(0.35)) {
        // Balanced stack traffic: save and restore through the stack,
        // with PUSHL for the save half some of the time.
        if (rng_.chance(0.5)) {
            a_.instr(op::PUSHL, {readOperand(DataType::Long)});
        } else {
            a_.instr(op::MOVL,
                     {Operand::reg(R6), Operand::autoDec(SP)});
        }
        emitFiller(1);
        a_.instr(op::MOVL, {Operand::autoInc(SP), Operand::reg(R7)});
    }
}

void
CodeGenerator::emitArith()
{
    unsigned n = 2 + rng_.below(3);
    for (unsigned i = 0; i < n; ++i) {
        switch (rng_.below(8)) {
          case 0:
            a_.instr(op::ADDL2, {readOperand(DataType::Long, true),
                                 rng_.chance(0.35)
                                     ? memOperand(DataType::Long, true)
                                     : Operand::reg(R6)});
            break;
          case 1:
            a_.instr(op::SUBL2, {readOperand(DataType::Long, true),
                                 rng_.chance(0.35)
                                     ? memOperand(DataType::Long, true)
                                     : Operand::reg(R6)});
            break;
          case 2:
            a_.instr(op::ADDL3, {readOperand(DataType::Long, true),
                                 Operand::reg(R7),
                                 writeOperand(DataType::Long)});
            break;
          case 3:
            a_.instr(op::INCL, {rng_.chance(0.4)
                                    ? memOperand(DataType::Long, true)
                                    : Operand::reg(R6)});
            break;
          case 4:
            a_.instr(op::DECL, {Operand::reg(R7)});
            break;
          case 5:
            a_.instr(op::CMPL, {Operand::reg(R6),
                                readOperand(DataType::Long)});
            break;
          case 6:
            a_.instr(op::TSTL, {readOperand(DataType::Long)});
            break;
          case 7:
            a_.instr(op::ASHL, {Operand::lit(rng_.below(8)),
                                Operand::reg(R7),
                                Operand::reg(R7)});
            break;
        }
    }
    if (rng_.chance(0.2)) {
        a_.instr(op::ADDW2, {readOperand(DataType::Word),
                             Operand::reg(R6)});
    }
    if (rng_.chance(0.15)) {
        a_.instr(op::CVTWL, {readOperand(DataType::Word),
                             Operand::reg(R7)});
    }
}

void
CodeGenerator::emitBoolean()
{
    unsigned n = 1 + rng_.below(3);
    for (unsigned i = 0; i < n; ++i) {
        uint8_t ops[] = {op::BISL2, op::BICL2, op::XORL2};
        a_.instr(ops[rng_.below(3)],
                 {readOperand(DataType::Long), Operand::reg(R6)});
    }
    if (rng_.chance(0.4)) {
        a_.instr(op::BITL, {Operand::lit(rng_.below(64)),
                            Operand::reg(R6)});
    }
    if (rng_.chance(0.3)) {
        a_.instr(rng_.chance(0.5) ? op::MCOML : op::MNEGL,
                 {Operand::reg(R7), Operand::reg(R7)});
    }
}

void
CodeGenerator::emitCondBranch()
{
    std::string skip = uniq("skip");
    if (rng_.chance(0.02)) {
        // Rare JMP over the fallthrough path.
        a_.instr(op::JMP, {Operand::rel(skip)});
    } else if (rng_.chance(0.35)) {
        // Branch on whatever condition codes are live, as most
        // compiled branches did (no fresh compare).
        static const uint8_t conds[] = {op::BNEQ, op::BEQL, op::BGTR,
                                        op::BLEQ, op::BGEQ, op::BLSS};
        a_.instr(conds[rng_.below(6)], {Operand::branch(skip)});
    } else if (rng_.chance(prof_.condTakenBias)) {
        // Unconditional BRB (shares the BCOND flow, as the paper
        // describes for BRB/BRW).
        a_.instr(op::BRB, {Operand::branch(skip)});
    } else if (rng_.chance(0.5)) {
        // Data-dependent low-bit test on a fresh value (~50% taken).
        a_.instr(op::MOVL, {memOperand(DataType::Long, false),
                            Operand::reg(R7)});
        a_.instr(rng_.chance(0.5) ? op::BLBS : op::BLBC,
                 {Operand::reg(R7), Operand::branch(skip)});
    } else {
        static const uint8_t conds[] = {op::BNEQ, op::BEQL, op::BGTR,
                                        op::BLEQ, op::BGEQ, op::BLSS,
                                        op::BGTRU, op::BLEQU};
        a_.instr(op::MOVL, {memOperand(DataType::Long, false),
                            Operand::reg(R7)});
        a_.instr(op::CMPL, {Operand::reg(R7),
                            readOperand(DataType::Long)});
        a_.instr(conds[rng_.below(8)], {Operand::branch(skip)});
    }
    emitFiller(1 + rng_.below(3));
    a_.label(skip);
}

void
CodeGenerator::emitLoopBody(unsigned n)
{
    // Loop bodies carry most of the dynamic instruction stream (every
    // slot executes once per trip), so this mix dominates: data
    // movement, arithmetic, and -- as in real loop code -- plenty of
    // conditional branches, with occasional calls to leaf
    // subroutines (which never touch the loop counter).
    for (unsigned i = 0; i < n; ++i) {
        switch (rng_.below(10)) {
          case 0:
            a_.instr(op::ADDL2, {Operand::reg(R10), Operand::reg(R6)});
            break;
          case 1:
            a_.instr(op::MOVL, {memOperand(DataType::Long, false),
                                Operand::reg(R7)});
            break;
          case 2:
            a_.instr(op::ADDL2, {readOperand(DataType::Long),
                                 Operand::reg(R6)});
            break;
          case 3:
            a_.instr(op::XORL2, {Operand::reg(R10),
                                 Operand::reg(R7)});
            break;
          case 4:
            a_.instr(op::MOVL, {Operand::reg(R6),
                                memOperand(DataType::Long, true)});
            break;
          case 5:
          case 6:
          case 7:
          case 8: {
            // In-loop conditional branch over a short then-part.
            std::string skip = uniq("ls");
            if (rng_.chance(0.13)) {
                // Unconditional BRB through the shared BCOND flow.
                a_.instr(op::BRB, {Operand::branch(skip)});
            } else if (rng_.chance(0.80)) {
                static const uint8_t conds[] = {op::BNEQ, op::BEQL,
                                                op::BGTR, op::BLEQ,
                                                op::BGEQ, op::BLSS};
                if (rng_.chance(0.45)) {
                    a_.instr(op::CMPL,
                             {memOperand(DataType::Long, false),
                              Operand::reg(R7)});
                } else {
                    a_.instr(op::CMPL, {Operand::reg(R7),
                                        readOperand(DataType::Long)});
                }
                a_.instr(conds[rng_.below(6)],
                         {Operand::branch(skip)});
            } else if (rng_.chance(0.5)) {
                a_.instr(rng_.chance(0.5) ? op::BLBS : op::BLBC,
                         {Operand::reg(R7), Operand::branch(skip)});
            } else {
                a_.instr(rng_.chance(0.5) ? op::BBS : op::BBC,
                         {Operand::lit(rng_.below(28)),
                          Operand::reg(R6), Operand::branch(skip)});
            }
            a_.instr(op::INCL, {Operand::reg(R6)});
            a_.label(skip);
            break;
          }
          case 9:
            if (rng_.chance(0.55)) {
                // Call a leaf subroutine (R10-safe).
                a_.instr(op::BSBW,
                         {Operand::branch(
                             "leaf_" + std::to_string(rng_.below(3)))});
            } else {
                emitLoopFlavor();
            }
            break;
        }
    }
}

void
CodeGenerator::emitLoopFlavor()
{
    // Profile-flavored work inside loop bodies: scientific loops do
    // floating point, commercial loops walk queues and strings,
    // call-heavy loads save registers.
    auto w = [this](BlockKind k) {
        return prof_.blockWeights[static_cast<size_t>(k)];
    };
    size_t pick = rng_.pickWeighted(
        {w(BlockKind::Float), w(BlockKind::ProcCall) * 0.5,
         w(BlockKind::Queue), w(BlockKind::Character) * 0.8,
         w(BlockKind::Move)});
    switch (pick) {
      case 0: {
        uint32_t s = 4 * rng_.below(16);
        a_.instr(op::MOVF,
                 {Operand::disp(static_cast<int32_t>(fdatOff_ + s),
                                R8),
                  Operand::reg(R4)});
        a_.instr(rng_.chance(0.5) ? op::ADDF2 : op::MULF2,
                 {Operand::imm(doubleToF(1.0 + rng_.uniform())),
                  Operand::reg(R4)});
        break;
      }
      case 1: {
        uint32_t mask = (1u << (2 + rng_.below(4))) |
            (1u << (2 + rng_.below(4)));
        a_.instr(op::PUSHR,
                 {Operand::lit(static_cast<uint8_t>(mask))});
        a_.instr(op::POPR,
                 {Operand::lit(static_cast<uint8_t>(mask))});
        break;
      }
      case 2: {
        a_.instr(op::MOVAB,
                 {dataOperand("qent_" + std::to_string(rng_.below(6))),
                  Operand::reg(R1)});
        int32_t qoff =
            static_cast<int32_t>(dataAddr("qhdr") - hotVa_);
        a_.instr(op::INSQUE,
                 {Operand::regDef(R1), Operand::disp(qoff, R8)});
        a_.instr(op::REMQUE,
                 {Operand::dispDef(qoff, R8), Operand::reg(R2)});
        break;
      }
      case 3:
        a_.instr(op::LOCC, {Operand::lit(32), Operand::imm(24),
                            dataOperand("str_a")});
        break;
      default:
        a_.instr(op::MOVL, {memOperand(DataType::Long, false),
                            Operand::reg(R7)});
        break;
    }
}

void
CodeGenerator::emitLoop()
{
    std::string top = uniq("loop");
    uint32_t trips = rng_.geometric(prof_.loopMean);
    if (trips > 200)
        trips = 200;
    // Loop limits are I-stream constants: short literals when they
    // fit (as compilers emitted them), immediates otherwise.
    auto trip_op = [&](uint32_t t) {
        return t < 64 ? Operand::lit(static_cast<uint8_t>(t))
                      : Operand::imm(t);
    };

    unsigned style = rng_.below(4);
    if (style == 0) {
        // Autoincrement scan over the hot region.
        uint32_t n = 4 + rng_.below(12);
        a_.instr(op::MOVAB, {Operand::disp(0, R8), Operand::reg(R3)});
        a_.instr(op::MOVL, {trip_op(n), Operand::reg(R10)});
        a_.label(top);
        a_.instr(op::ADDL2, {Operand::autoInc(R3), Operand::reg(R6)});
        emitLoopBody(1 + rng_.below(3));
        a_.instr(op::SOBGTR, {Operand::reg(R10), Operand::branch(top)});
    } else if (style == 1) {
        a_.instr(op::MOVL, {trip_op(trips), Operand::reg(R10)});
        a_.label(top);
        emitLoopBody(3 + rng_.below(6));
        a_.instr(op::SOBGTR, {Operand::reg(R10), Operand::branch(top)});
    } else if (style == 2) {
        a_.instr(op::CLRL, {Operand::reg(R10)});
        a_.label(top);
        emitLoopBody(3 + rng_.below(5));
        a_.instr(op::AOBLSS, {trip_op(trips), Operand::reg(R10),
                              Operand::branch(top)});
    } else {
        a_.instr(op::CLRL, {Operand::reg(R10)});
        a_.label(top);
        emitLoopBody(2 + rng_.below(5));
        a_.instr(op::ACBL, {trip_op(trips), Operand::lit(2),
                            Operand::reg(R10), Operand::branch(top)});
    }
}

void
CodeGenerator::emitSubroutineCall()
{
    unsigned target = inSub_
        ? curSub_ + 1 + rng_.below(
              prof_.numSubroutines - curSub_ > 1
                  ? prof_.numSubroutines - curSub_ - 1 : 1)
        : rng_.below(prof_.numSubroutines);
    if (target >= prof_.numSubroutines)
        return;
    std::string name = "sub_" + std::to_string(target);
    if (rng_.chance(0.25)) {
        a_.instr(op::JSB, {Operand::rel(name)});
    } else {
        a_.instr(op::BSBW, {Operand::branch(name)});
    }
}

void
CodeGenerator::emitProcCall()
{
    if (rng_.chance(0.4)) {
        // PUSHR/POPR pair: multi-register save/restore traffic.
        // Small masks (R2-R5) fit in short literals, as compiled
        // code emitted them; larger sets need immediates.
        uint32_t mask = 0;
        unsigned bits = 2 + rng_.below(4);
        bool wide = rng_.chance(0.3);
        for (unsigned i = 0; i < bits; ++i)
            mask |= 1u << (2 + rng_.below(wide ? 8 : 4));
        Operand mop = mask < 64
            ? Operand::lit(static_cast<uint8_t>(mask))
            : Operand::imm(mask & 0xFFFF);
        a_.instr(op::PUSHR, {mop});
        emitFiller(1 + rng_.below(2));
        a_.instr(op::POPR, {mop});
        return;
    }
    unsigned target = rng_.below(prof_.numProcedures);
    unsigned nargs = rng_.below(3);
    for (unsigned i = 0; i < nargs; ++i)
        a_.instr(op::PUSHL, {readOperand(DataType::Long)});
    a_.instr(op::CALLS, {Operand::lit(static_cast<uint8_t>(nargs)),
                         Operand::rel("proc_" + std::to_string(target))});
}

void
CodeGenerator::emitField()
{
    unsigned n = 1 + rng_.below(2);
    for (unsigned i = 0; i < n; ++i) {
        uint8_t pos = static_cast<uint8_t>(rng_.below(24));
        uint8_t size = static_cast<uint8_t>(1 + rng_.below(8));
        bool reg_base = rng_.chance(0.4);
        Operand base = reg_base
            ? Operand::reg(R7)
            : memOperand(DataType::Byte, false);
        switch (rng_.below(4)) {
          case 0:
            a_.instr(rng_.chance(0.5) ? op::EXTV : op::EXTZV,
                     {Operand::lit(pos), Operand::lit(size), base,
                      Operand::reg(R6)});
            break;
          case 1:
            a_.instr(op::INSV, {Operand::reg(R6), Operand::lit(pos),
                                Operand::lit(size), base});
            break;
          case 2:
            a_.instr(op::FFS, {Operand::lit(0), Operand::lit(24),
                               base, Operand::reg(R7)});
            break;
          case 3:
            a_.instr(op::CMPV, {Operand::lit(pos), Operand::lit(size),
                                base, Operand::reg(R6)});
            break;
        }
    }
    // Bit branches.
    if (rng_.chance(0.85)) {
        std::string skip = uniq("bb");
        uint8_t bit = static_cast<uint8_t>(rng_.below(28));
        static const uint8_t bbs[] = {op::BBS, op::BBC, op::BBSS,
                                      op::BBCC, op::BBCS, op::BBSC};
        uint8_t o = bbs[rng_.below(6)];
        bool reg_base = rng_.chance(0.5);
        Operand base = reg_base ? Operand::reg(R6)
                                : memOperand(DataType::Byte, false);
        // Modify forms need a writable base.
        if ((o == op::BBSS || o == op::BBCC || o == op::BBCS ||
             o == op::BBSC) && !reg_base) {
            base = memOperand(DataType::Byte, true);
        }
        a_.instr(o, {Operand::lit(bit), base, Operand::branch(skip)});
        emitFiller(1 + rng_.below(2));
        a_.label(skip);
    }
}

void
CodeGenerator::emitFloat()
{
    // Load, operate, store against the F_floating data pool.
    uint32_t slot = 4 * rng_.below(16);
    a_.instr(op::MOVF,
             {Operand::disp(static_cast<int32_t>(fdatOff_ + slot), R8),
              Operand::reg(R4)});
    unsigned n = 1 + rng_.below(3);
    for (unsigned i = 0; i < n; ++i) {
        uint32_t s2 = 4 * rng_.below(16);
        Operand src = Operand::disp(
            static_cast<int32_t>(fdatOff_ + s2), R8);
        switch (rng_.below(5)) {
          case 0:
            a_.instr(op::ADDF2, {src, Operand::reg(R4)});
            break;
          case 1:
            a_.instr(op::SUBF2, {src, Operand::reg(R4)});
            break;
          case 2:
            a_.instr(op::MULF2,
                     {Operand::imm(doubleToF(1.0 + rng_.uniform())),
                      Operand::reg(R4)});
            break;
          case 3:
            a_.instr(op::DIVF2,
                     {Operand::imm(doubleToF(1.0 + rng_.uniform())),
                      Operand::reg(R4)});
            break;
          case 4:
            a_.instr(op::CMPF, {Operand::reg(R4), src});
            break;
        }
    }
    a_.instr(op::MOVF,
             {Operand::reg(R4),
              Operand::disp(static_cast<int32_t>(
                                fdatOff_ + 4 * rng_.below(16)), R8)});

    // Integer multiply/divide (FLOAT group per Table 1).
    if (rng_.chance(0.6)) {
        a_.instr(op::MULL2, {Operand::imm(divisors[rng_.below(10)]),
                             Operand::reg(R6)});
    }
    if (rng_.chance(0.4)) {
        a_.instr(op::DIVL2, {Operand::imm(divisors[rng_.below(10)]),
                             Operand::reg(R6)});
    }
    if (rng_.chance(0.15)) {
        a_.instr(op::EMUL, {Operand::reg(R6), Operand::reg(R7),
                            Operand::lit(3), Operand::reg(R2)});
    }
    if (rng_.chance(0.1)) {
        a_.instr(op::CVTLF, {Operand::reg(R6), Operand::reg(R4)});
        a_.instr(op::CVTFL, {Operand::reg(R4), Operand::reg(R7)});
    }
}

void
CodeGenerator::emitCharacter()
{
    unsigned len = rng_.geometric(prof_.strLenMean);
    if (len < 8)
        len = 8;
    if (len > 64)
        len = 64;
    static const char *bufs[] = {"str_a", "str_b", "str_c"};
    const char *src = bufs[rng_.below(3)];
    const char *dst = bufs[rng_.below(3)];
    // Some strings are unaligned (substrings), forcing the byte loop.
    uint32_t skew = rng_.chance(0.45) ? 1 + rng_.below(3) : 0;
    switch (rng_.below(4)) {
      case 0:
        a_.instr(op::MOVC3,
                 {Operand::imm(len),
                  Operand::disp(static_cast<int32_t>(
                                    dataAddr(src) - hotVa_ + skew),
                                R8),
                  dataOperand(dst)});
        break;
      case 1:
        a_.instr(op::CMPC3, {Operand::imm(len), dataOperand(src),
                             dataOperand(dst)});
        break;
      case 2:
        a_.instr(rng_.chance(0.7) ? op::LOCC : op::SKPC,
                 {Operand::lit(32), Operand::imm(len),
                  dataOperand(src)});
        break;
      case 3:
        a_.instr(op::SCANC, {Operand::imm(len), dataOperand(src),
                             dataOperand("char_tab"),
                             Operand::lit(1)});
        break;
    }
}

void
CodeGenerator::emitDecimal()
{
    unsigned digits = prof_.decDigitsMean;
    std::string s0 = "pk_" + std::to_string(rng_.below(6));
    std::string s1 = "pk_" + std::to_string(rng_.below(6));
    switch (rng_.below(4)) {
      case 0:
        a_.instr(rng_.chance(0.6) ? op::ADDP4 : op::SUBP4,
                 {Operand::imm(digits), dataOperand(s0),
                  Operand::imm(digits), dataOperand(s1)});
        break;
      case 1:
        a_.instr(op::CMPP3, {Operand::imm(digits), dataOperand(s0),
                             dataOperand(s1)});
        break;
      case 2:
        a_.instr(op::MOVP, {Operand::imm(digits), dataOperand(s0),
                            dataOperand(s1)});
        break;
      case 3:
        a_.instr(op::CVTLP, {Operand::reg(R6), Operand::imm(digits),
                             dataOperand(s0)});
        break;
    }
}

void
CodeGenerator::emitCase()
{
    std::string c0 = uniq("cs"), c1 = uniq("cs"), c2 = uniq("cs");
    std::string c3 = uniq("cs"), end = uniq("csend");
    a_.instr(op::MOVL, {memOperand(DataType::Long, false),
                        Operand::reg(R7)});
    a_.instr(op::BICL3, {Operand::imm(~3u), Operand::reg(R7),
                         Operand::reg(R7)});
    a_.instr(op::CASEL, {Operand::reg(R7), Operand::lit(0),
                         Operand::lit(3)});
    a_.caseTable({c0, c1, c2, c3});
    a_.label(c0);
    emitFiller(1);
    a_.instr(op::BRB, {Operand::branch(end)});
    a_.label(c1);
    emitFiller(1);
    a_.instr(op::BRB, {Operand::branch(end)});
    a_.label(c2);
    emitFiller(1);
    a_.instr(op::BRB, {Operand::branch(end)});
    a_.label(c3);
    emitFiller(1);
    a_.label(end);
}

void
CodeGenerator::emitQueue()
{
    uint32_t ent = rng_.below(6);
    a_.instr(op::MOVAB,
             {dataOperand("qent_" + std::to_string(ent)),
              Operand::reg(R1)});
    int32_t qoff = static_cast<int32_t>(dataAddr("qhdr") - hotVa_);
    a_.instr(op::INSQUE,
             {Operand::regDef(R1), Operand::disp(qoff, R8)});
    a_.instr(op::REMQUE,
             {Operand::dispDef(qoff, R8), Operand::reg(R2)});
}

void
CodeGenerator::emitSyscall()
{
    if (rng_.chance(0.02)) {
        // Synchronous disk read: the process blocks until the
        // controller completes the transfer.  Rare: real loads did a
        // disk transfer every tens of thousands of instructions.
        a_.instr(op::CHMK, {Operand::lit(abi::sysDiskRead)});
        return;
    }
    switch (rng_.below(3)) {
      case 0:
        a_.instr(op::CHMK, {Operand::lit(abi::sysGetTime)});
        break;
      case 1:
        a_.instr(op::MOVAB, {dataOperand("io_buf"), Operand::reg(R1)});
        a_.instr(op::MOVL, {Operand::lit(32), Operand::reg(R2)});
        a_.instr(op::CHMK, {Operand::lit(abi::sysPuts)});
        break;
      case 2:
        a_.instr(op::MOVAB, {dataOperand("io_buf"), Operand::reg(R1)});
        a_.instr(op::CHMK, {Operand::lit(abi::sysGets)});
        break;
    }
}

void
CodeGenerator::emitBlock(BlockKind k, bool top_level)
{
    lastKind_ = k;
    switch (k) {
      case BlockKind::Move:       emitMove(top_level); break;
      case BlockKind::Arith:      emitArith(); break;
      case BlockKind::Boolean:    emitBoolean(); break;
      case BlockKind::CondBranch: emitCondBranch(); break;
      case BlockKind::Loop:       emitLoop(); break;
      case BlockKind::Subroutine:
        if (top_level || inSub_)
            emitSubroutineCall();
        else
            emitArith();
        break;
      case BlockKind::ProcCall:
        if (top_level)
            emitProcCall();
        else
            emitMove(false);
        break;
      case BlockKind::Field:      emitField(); break;
      case BlockKind::Float:      emitFloat(); break;
      case BlockKind::Character:  emitCharacter(); break;
      case BlockKind::Decimal:    emitDecimal(); break;
      case BlockKind::Case:       emitCase(); break;
      case BlockKind::Queue:      emitQueue(); break;
      case BlockKind::Syscall:
        if (top_level)
            emitSyscall();
        else
            emitArith();
        break;
      default:
        panic("bad block kind");
    }
}

void
CodeGenerator::emitSubroutines()
{
    // Leaf subroutines callable from loop bodies: straight-line code,
    // no loops, no calls, and no use of the loop counter.
    for (unsigned i = 0; i < 3; ++i) {
        a_.label("leaf_" + std::to_string(i));
        unsigned n = 2 + rng_.below(4);
        for (unsigned k = 0; k < n; ++k) {
            switch (rng_.below(3)) {
              case 0:
                a_.instr(op::ADDL2, {readOperand(DataType::Long),
                                     Operand::reg(R6)});
                break;
              case 1:
                a_.instr(op::MOVL, {memOperand(DataType::Long, false),
                                    Operand::reg(R7)});
                break;
              case 2:
                a_.instr(op::BICL2, {Operand::lit(rng_.below(64)),
                                     Operand::reg(R7)});
                break;
            }
        }
        a_.instr(op::RSB);
    }

    for (unsigned i = 0; i < prof_.numSubroutines; ++i) {
        a_.label("sub_" + std::to_string(i));
        inSub_ = true;
        curSub_ = i;
        unsigned blocks = 2 + rng_.below(3);
        for (unsigned b = 0; b < blocks; ++b) {
            BlockKind k = static_cast<BlockKind>(
                rng_.pickWeighted(prof_.blockWeights));
            // Subroutines avoid services and procedure calls.
            if (k == BlockKind::Syscall || k == BlockKind::ProcCall)
                k = BlockKind::Arith;
            emitBlock(k, false);
        }
        inSub_ = false;
        a_.instr(op::RSB);
    }
}

void
CodeGenerator::emitProcedures()
{
    for (unsigned i = 0; i < prof_.numProcedures; ++i) {
        a_.align(2);
        a_.label("proc_" + std::to_string(i));
        // Entry mask: R6, R7, R10, R11 plus a couple of extras.
        uint16_t mask = (1u << 6) | (1u << 7) | (1u << 10) | (1u << 11);
        unsigned extras = rng_.below(3);
        for (unsigned b = 0; b < extras; ++b)
            mask |= 1u << (2 + rng_.below(4)); // R2-R5
        a_.entryMask(mask);
        // Touch the arguments.
        a_.instr(op::MOVL, {Operand::disp(0, AP), Operand::reg(R7)});
        unsigned blocks = 1 + rng_.below(3);
        for (unsigned b = 0; b < blocks; ++b) {
            BlockKind k = static_cast<BlockKind>(
                rng_.pickWeighted(prof_.blockWeights));
            if (k == BlockKind::Syscall || k == BlockKind::ProcCall ||
                k == BlockKind::Subroutine)
                k = BlockKind::Move;
            emitBlock(k, false);
        }
        a_.instr(op::RET);
    }
}

void
CodeGenerator::emitDataRegions()
{
    a_.lword(0); // keep P0 address 0 unused
    a_.align(4);
    a_.label("hot");
    hotVa_ = a_.here();
    for (unsigned i = 0; i < prof_.hotLongs; ++i)
        a_.lword(static_cast<uint32_t>(rng_.next()));

    // The F_floating pool sits inside the hot region's addressing
    // reach via R8 displacements.
    a_.label("fdat");
    fdatOff_ = a_.here() - hotVa_;
    for (unsigned i = 0; i < 16; ++i)
        a_.lword(doubleToF((rng_.uniform() - 0.5) * 1000.0));

    // Pointer table for deferred modes (points into the hot region).
    a_.label("ptrtab");
    ptrtabOff_ = a_.here() - hotVa_;
    for (unsigned i = 0; i < 16; ++i)
        a_.lword(hotVa_ + 4 * rng_.below(prof_.hotLongs));

    // Queue header and entries.
    a_.label("qhdr");
    uint32_t qhdr = a_.here();
    a_.lword(qhdr);
    a_.lword(qhdr);
    for (unsigned i = 0; i < 6; ++i) {
        a_.label("qent_" + std::to_string(i));
        a_.lword(0);
        a_.lword(0);
    }

    // Strings and scan table.
    static const char *names[] = {"str_a", "str_b", "str_c"};
    for (const char *n : names) {
        a_.align(4);
        a_.label(n);
        for (unsigned i = 0; i < 64; ++i)
            a_.byte(static_cast<uint8_t>(0x20 + rng_.below(0x5F)));
    }
    a_.align(4);
    a_.label("char_tab");
    for (unsigned i = 0; i < 256; ++i)
        a_.byte(rng_.chance(0.05) ? 1 : 0);

    // Packed-decimal slots.
    a_.align(4);
    for (unsigned i = 0; i < 6; ++i) {
        a_.label("pk_" + std::to_string(i));
        auto bytes = intToPacked(
            static_cast<int64_t>(rng_.next() % 1000000000ULL),
            prof_.decDigitsMean);
        for (uint8_t b : bytes)
            a_.byte(b);
        a_.space(16 - bytes.size());
    }

    a_.align(4);
    a_.label("io_buf");
    a_.space(64, ' ');

    // The cold region comes last (it is big).
    a_.align(4);
    a_.label("cold");
    for (unsigned i = 0; i < prof_.coldLongs; ++i)
        a_.lword(static_cast<uint32_t>(rng_.next()));
}

UserProgram
CodeGenerator::generate(unsigned terminal_id)
{
    // Layout: all data first (so every address is known while code is
    // emitted), then the main loop, subroutines and procedures.  The
    // OS starts the process at `entry` directly.
    emitDataRegions();

    a_.label("entry");
    a_.instr(op::MOVL, {Operand::imm(dataAddr("hot")),
                        Operand::reg(R8)});
    a_.instr(op::MOVL, {Operand::imm(dataAddr("cold")),
                        Operand::reg(R9)});
    a_.instr(op::CLRL, {Operand::reg(R6)});
    a_.instr(op::MOVL,
             {Operand::imm(static_cast<uint32_t>(rng_.next())),
              Operand::reg(R7)});
    a_.label("outer");
    // Slide the cold window; wrap at the end of the region.
    a_.instr(op::ADDL2,
             {Operand::imm(prof_.coldWindowLongs * 4),
              Operand::reg(R9)});
    a_.instr(op::CMPL,
             {Operand::reg(R9),
              Operand::imm(dataAddr("cold") +
                           (prof_.coldLongs - prof_.coldWindowLongs) *
                               4)});
    a_.instr(op::BCS, {Operand::branch("outer_w")});
    a_.instr(op::MOVL, {Operand::imm(dataAddr("cold")),
                        Operand::reg(R9)});
    a_.label("outer_w");
    a_.instr(op::BICL3, {Operand::imm(~7u), Operand::reg(R7),
                         Operand::reg(R11)});
    for (unsigned b = 0; b < prof_.blocksPerIteration; ++b) {
        BlockKind k = static_cast<BlockKind>(
            rng_.pickWeighted(prof_.blockWeights));
        emitBlock(k, true);
        if (rng_.chance(0.1)) {
            // Refresh the index register invariant.
            a_.instr(op::BICL3, {Operand::imm(~7u), Operand::reg(R7),
                                 Operand::reg(R11)});
        }
    }
    if (rng_.chance(prof_.getsProb)) {
        a_.instr(op::MOVAB, {dataOperand("io_buf"), Operand::reg(R1)});
        a_.instr(op::CHMK, {Operand::lit(abi::sysGets)});
    }
    if (rng_.chance(prof_.putsProb)) {
        a_.instr(op::MOVAB, {dataOperand("io_buf"), Operand::reg(R1)});
        a_.instr(op::MOVL, {Operand::lit(32), Operand::reg(R2)});
        a_.instr(op::CHMK, {Operand::lit(abi::sysPuts)});
    }
    if (rng_.chance(prof_.waitProb))
        a_.instr(op::CHMK, {Operand::lit(abi::sysWaitTerm)});
    a_.instr(op::BRW, {Operand::branch("outer")});

    emitSubroutines();
    emitProcedures();

    UserProgram prog;
    prog.entry = a_.addrOf("entry");
    prog.terminalId = terminal_id;
    prog.image = a_.finish();
    return prog;
}

} // namespace vax
