/**
 * @file
 * Measurement experiments: run one workload profile on a freshly
 * booted machine with the UPC monitor attached and an RTE injecting
 * terminal traffic, then collect the histogram; run all five and sum
 * them into the composite, exactly as the paper reports its results.
 */

#ifndef UPC780_WORKLOAD_EXPERIMENTS_HH
#define UPC780_WORKLOAD_EXPERIMENTS_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "cpu/hw_counters.hh"
#include "os/vms.hh"
#include "mem/cache.hh"
#include "mem/tb.hh"
#include "support/sim_error.hh"
#include "upc/monitor.hh"
#include "workload/profile.hh"

namespace vax
{

/**
 * Hardware-side measurements the UPC technique cannot see (the paper
 * took these from the separate cache study [2]); collected from the
 * simulator's event counters and reported separately.
 */
struct HwTotals
{
    HwCounters counters;
    CacheStats cache;
    TbStats tb;
    FaultStats faults; ///< injected-fault counters (all zero when off)
    uint64_t ibLongwordFetches = 0;
    uint64_t dataReads = 0;
    uint64_t dataWrites = 0;
    uint64_t terminalLinesIn = 0;
    uint64_t terminalLinesOut = 0;
    uint64_t diskTransfers = 0;

    /** Weighted accumulate (weight 1 = the paper's plain sum). */
    void add(const HwTotals &other, uint64_t weight = 1);

    /** Register every total (counters, cache, TB, I/O) under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;
};

struct ExperimentResult
{
    std::string name;
    Histogram hist;
    HwTotals hw;
    /** Host wall-clock seconds spent simulating (filled by the
     *  driver layer; 0 when the experiment ran un-timed). */
    double wallSeconds = 0.0;
    /** Start offset in seconds from the pool's start (0 when the
     *  experiment ran outside a pool). */
    double startSeconds = 0.0;
    /** Worker-thread index that ran the job (0 outside a pool). */
    unsigned worker = 0;
    /** @{ Guarded execution: set by the pool when the job's simulation
     *  raised a SimError even after its deterministic retry. */
    bool failed = false;
    std::string error;   ///< SimError::what() of the final failure
    unsigned retries = 0; ///< retry attempts consumed (0 or 1)
    /** @} */
    /** @{ Recovery cost (pool telemetry).  resumeCycle is the machine
     *  cycle the successful attempt restarted from (0 = ran from the
     *  beginning); retryWallSeconds is host time burned in attempts
     *  that were thrown away.  interrupted marks a job abandoned by a
     *  graceful-drain request (its measurements are partial). */
    uint64_t resumeCycle = 0;
    double retryWallSeconds = 0.0;
    bool interrupted = false;
    /** @} */
    /** Claim epoch the producing shard held when it wrote this result
     *  (campaign fencing; 0 outside a campaign).  The campaign merge
     *  rejects a result whose fence is below the job's durable
     *  high-water mark -- see driver/campaign.hh. */
    uint64_t fence = 0;
};

/**
 * Runtime guard-rails for one experiment.  Both default off, so the
 * plain overloads behave exactly as before.
 */
struct RunLimits
{
    /** Cycles without a retired instruction before the forward-
     *  progress watchdog raises a SimError (0 = disabled). */
    uint64_t watchdogCycles = 0;
    /** Wall-clock budget per experiment in seconds (0 = disabled). */
    double timeoutSeconds = 0.0;
    /** Recovery drill: deliberately raise a SimError at the first
     *  poll at or after this cycle (0 = disabled).  Models a
     *  transient host-side failure; the pool's checkpointed retry
     *  clears it, which is how the checkpoint/recovery tests drive
     *  the resume path deterministically. */
    uint64_t tripCycle = 0;
};

/**
 * One resumable measurement experiment: a freshly booted machine with
 * the UPC monitor attached and the RTE injecting terminal traffic.
 *
 * Construction reproduces, in order, every deterministic step the
 * original one-shot runner performed (machine build, process code
 * generation, boot, initial think-time draws), so a fresh Experiment
 * is always in the same state as a one-shot run at cycle 0.  The run
 * loop is exposed in chunks whose boundaries fall only between whole
 * tick-then-poll iterations -- chunked execution is therefore
 * bit-identical to a single runChunk(0) call, which is what makes
 * checkpoint/restore byte-transparent.
 *
 * Checkpointing: save() serializes the entire simulation (machine,
 * monitor, OS fingerprint, RTE clocks and disk queue); restore() must
 * be called on a freshly constructed Experiment with the same
 * profile/config (fingerprints verified) and resumes the cycle stream
 * exactly where save() left it.  Both are valid only between chunks.
 */
class Experiment
{
  public:
    Experiment(const WorkloadProfile &profile, uint64_t cycles,
               const SimConfig &sim, const VmsConfig &vms,
               const RunLimits &limits = RunLimits());

    /**
     * Advance the simulation.  Throws SimError on watchdog, timeout
     * or recovery-drill trips (when inside a guard::Scope).
     *
     * @param chunk Max cycles to advance (0 = run to the budget).
     * @return True once the cycle budget is reached.
     */
    bool runChunk(uint64_t chunk = 0);

    bool done() const { return cpu_.cycles() >= cycles_; }
    uint64_t cycle() const { return cpu_.cycles(); }
    uint64_t budget() const { return cycles_; }

    /** Disarm a pending recovery drill (checkpointed retry path). */
    void clearTrip() { limits_.tripCycle = 0; }

    /** @{ Whole-simulation checkpoint (valid between chunks). */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** Checkpoint straight to a file (atomic tmp+rename). */
    bool saveFile(const std::string &path) const;
    /** Restore from a file; SnapshotError on damage or mismatch. */
    void restoreFile(const std::string &path);
    /** @} */

    /** Collect the measurements; call once, after done(). */
    ExperimentResult takeResult();

  private:
    struct DiskOp
    {
        uint64_t due;
        uint32_t proc;
    };

    uint64_t thinkDraw();
    void pollRte();

    WorkloadProfile profile_;
    uint64_t cycles_;
    RunLimits limits_;
    Cpu780 cpu_;
    UpcMonitor monitor_;
    VmsLite os_;
    ExperimentResult result_;
    std::vector<DiskOp> diskQueue_;
    Rng diskRng_;
    Rng rte_;
    std::vector<uint64_t> nextLine_;
    ForwardProgressWatchdog watchdog_;
    std::chrono::steady_clock::time_point wallStart_;
    uint64_t nextPoll_;
};

/**
 * Run one experiment.
 *
 * @param profile The workload to run.
 * @param cycles  Machine cycles to simulate (200 ns each).
 */
ExperimentResult runExperiment(const WorkloadProfile &profile,
                               uint64_t cycles);

/** Same, with an explicit machine configuration (what-if studies). */
ExperimentResult runExperiment(const WorkloadProfile &profile,
                               uint64_t cycles, const SimConfig &sim);

/** Same, also overriding the OS configuration (quantum studies). */
ExperimentResult runExperiment(const WorkloadProfile &profile,
                               uint64_t cycles, const SimConfig &sim,
                               const VmsConfig &vms);

/** Same, with watchdog / wall-clock guard-rails. */
ExperimentResult runExperiment(const WorkloadProfile &profile,
                               uint64_t cycles, const SimConfig &sim,
                               const VmsConfig &vms,
                               const RunLimits &limits);

struct CompositeResult
{
    Histogram hist;   ///< sum of the five histograms
    HwTotals hw;      ///< sum of the hardware counters
    std::vector<ExperimentResult> parts;
};

/** Run all five experiments and composite them. */
CompositeResult runComposite(uint64_t cycles_per_experiment);

/**
 * Mirror a composite into a stats registry: the merged totals under
 * "composite" (hardware counters plus histogram banks) and each part
 * under "part<i>.<name>".  Only deterministic simulation quantities
 * are registered -- wall-clock telemetry stays out so same-seed dumps
 * are byte-identical, serial or pooled.  The registry keeps pointers
 * into comp: dump before comp goes away.
 */
void registerCompositeStats(stats::Registry &r,
                            const CompositeResult &comp);

/**
 * Cycles per experiment for the bench harness: the UPC780_CYCLES
 * environment variable if set, else the given default.
 */
uint64_t benchCycles(uint64_t def = 2'000'000);

} // namespace vax

#endif // UPC780_WORKLOAD_EXPERIMENTS_HH
