/**
 * @file
 * Workload profiles: the tunable description of what a synthetic user
 * population does.
 *
 * Five built-in profiles correspond to the paper's five experiments:
 * two live-timesharing stand-ins (light: ~15 users of editing, mail
 * and program development; heavy: ~30 users plus circuit simulation
 * and microcode development) and three RTE script sets (educational,
 * scientific/engineering, commercial transaction processing).  The
 * composite is the sum of all five, as in the paper.
 */

#ifndef UPC780_WORKLOAD_PROFILE_HH
#define UPC780_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vax
{

/** Activity-block kinds the generator can emit. */
enum class BlockKind : uint8_t {
    Move,       ///< MOVx/MOVA/PUSHL/CLR/MCOM/MOVZ chains
    Arith,      ///< ADD/SUB/INC/DEC/CMP/TST (+ occasional ASH/CVT)
    Boolean,    ///< BIS/BIC/XOR/BIT
    CondBranch, ///< compare + conditional branch over a short block
    Loop,       ///< SOB/AOB/ACB counted loops (incl. autoinc scans)
    Subroutine, ///< BSB/JSB to a generated subroutine
    ProcCall,   ///< CALLS to a generated procedure
    Field,      ///< EXTV/INSV/FFS and bit branches
    Float,      ///< F_floating ops and integer multiply/divide
    Character,  ///< MOVC/CMPC/LOCC/SCANC on string buffers
    Decimal,    ///< packed-decimal arithmetic
    Case,       ///< CASEx dispatch
    Queue,      ///< INSQUE/REMQUE pairs
    Syscall,    ///< CHMK services (gettime/puts/gets)
    NumKinds,
};

struct WorkloadProfile
{
    std::string name;
    uint64_t seed = 1;
    unsigned numUsers = 8;

    /** Relative weight per BlockKind (indexed by the enum). */
    std::vector<double> blockWeights;

    /** @{ Operand-style weights for scalar operands. */
    double wOpRegister = 2.8;
    double wOpLiteral = 1.8;
    double wOpImmediate = 0.25;
    double wOpDisp = 5.5;
    double wOpRegDef = 1.4;
    double wOpAutoStack = 0.5;  ///< balanced -(SP)/(SP)+ pairs
    double wOpDispDef = 0.9;
    double wOpAbsolute = 0.3;
    double pIndexed = 0.45;     ///< chance a disp operand is indexed
    double unalignedProb = 0.12; ///< unaligned share of word/long refs
    /** @} */

    /** @{ Behavioural knobs. */
    double loopMean = 10.0;          ///< mean loop trip count
    double condTakenBias = 0.2;      ///< share of always-taken tests
    unsigned procMaskBitsMean = 4;   ///< registers saved by CALLS
    unsigned strLenMean = 40;        ///< string lengths (36-44 paper)
    unsigned decDigitsMean = 12;     ///< packed-decimal digits
    double coldFraction = 0.35;      ///< D-stream refs to the cold set
    unsigned hotLongs = 192;         ///< hot data region (longwords)
    unsigned coldLongs = 14336;      ///< cold data region (56 KB)
    unsigned coldWindowLongs = 2048; ///< 8 KB working window that the
                                     ///< outer loop slides across cold
    unsigned numSubroutines = 10;
    unsigned numProcedures = 4;
    unsigned blocksPerIteration = 260;
    double waitProb = 0.5;           ///< WAITTERM at end of iteration
    double putsProb = 0.3;
    double getsProb = 0.3;
    /** @} */

    /** Mean cycles of think time between terminal lines per user. */
    double thinkCycles = 40000.0;

    WorkloadProfile();
};

/** @{ The five experimental settings of the paper. */
WorkloadProfile timesharingLightProfile();
WorkloadProfile timesharingHeavyProfile();
WorkloadProfile educationalProfile();
WorkloadProfile scientificProfile();
WorkloadProfile commercialProfile();
/** @} */

/** All five, in paper order. */
std::vector<WorkloadProfile> allProfiles();

} // namespace vax

#endif // UPC780_WORKLOAD_PROFILE_HH
