/**
 * @file
 * Corpus generation for the per-instruction characterization suite:
 * the opcode x specifier-class product, and the steady-state
 * microbenchmark each variant assembles to.
 *
 * Every implemented opcode is crossed with every addressing-mode
 * class its first specifier operand can legally take (legality comes
 * from the same access-class rules ulint's spec matrix encodes), plus
 * the "indexed" pseudo-class and a "none" class for operand-free
 * opcodes.  Illegal or un-harnessable combinations are enumerated
 * anyway and carry a static skip reason -- the suite's no-silent-skips
 * contract is that |rows| + |skipped| == |product|.
 *
 * Each runnable variant becomes a self-checking program in the
 * nanoBench mold: one shared calibration loop shape (counter init,
 * 7-instruction register preamble, unrolled body, SOBGTR/JMP loop
 * close, HALT), with the measured instruction repeated `unroll` times
 * in the body.  The builder knows the exact dynamic instruction count
 * the clean run must retire, so a variant that faults or strays is
 * detected and skipped with a reason rather than polluting the table.
 */

#ifndef UPC780_WORKLOAD_UCHAR_CORPUS_HH
#define UPC780_WORKLOAD_UCHAR_CORPUS_HH

#include <string>
#include <vector>

#include "upc/ucharacterize.hh"

namespace vax
{

/** One cell of the opcode x mode product. */
struct UcharVariant
{
    std::string op;
    std::string mode;
    bool runnable = false;
    std::string skipReason; ///< set when !runnable
    UcharProgram prog;      ///< valid when runnable
};

/** Options narrowing the generated product (CLI filters). */
struct UcharSuiteOptions
{
    /** Comma-separated mnemonics; empty = every implemented opcode. */
    std::string opcodeFilter;
};

/**
 * Enumerate the full opcode x specifier-class product, building the
 * microbenchmark program for every runnable cell.  Order is
 * deterministic: opcode byte ascending, then mode in AddrMode order
 * with "indexed" last ("none" for operand-free opcodes).
 */
std::vector<UcharVariant>
ucharEnumerate(const UcharParams &params,
               const UcharSuiteOptions &opts = {});

/** The shared empty-body calibration loop (same shape, zero copies). */
UcharProgram ucharCalibration(const UcharParams &params);

/**
 * Run the whole suite: calibration once, then every runnable variant,
 * optionally fanned out through the ParallelFor hook (empty = serial).
 * Results are stored by index, so the report is byte-identical for
 * any worker count.  A variant that fails at runtime moves to the
 * skipped list with its reason.
 */
UcharReport runUcharSuite(const UcharParams &params,
                          const ParallelFor &pf = {},
                          const UcharSuiteOptions &opts = {});

} // namespace vax

#endif // UPC780_WORKLOAD_UCHAR_CORPUS_HH
