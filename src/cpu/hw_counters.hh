/**
 * @file
 * Hardware event counters.
 *
 * These model the events the paper says are NOT visible to the UPC
 * technique (and which Emer & Clark took from separate studies, e.g.
 * the cache measurements of [2]): they are used for the Section 4
 * implementation-events report and as cross-checks in the test suite.
 * The analysis for Tables 1-9 uses only the histogram + annotations.
 */

#ifndef UPC780_CPU_HW_COUNTERS_HH
#define UPC780_CPU_HW_COUNTERS_HH

#include <cstdint>

namespace vax
{

struct HwCounters
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;       ///< retired (decode-complete)
    uint64_t specifiers = 0;         ///< all operand specifiers decoded
    uint64_t firstSpecifiers = 0;
    uint64_t indexedSpecifiers = 0;
    uint64_t bdispBytes = 0;         ///< total branch-displacement bytes
    uint64_t bdispCount = 0;         ///< instructions with a bdisp field
    uint64_t immediateBytes = 0;     ///< immediate/absolute spec bytes
    uint64_t dispBytes = 0;          ///< displacement bytes in specifiers
    uint64_t unalignedRefs = 0;      ///< alignment microtraps
    uint64_t microTraps = 0;         ///< all microtraps (abort cycles)
    uint64_t interrupts = 0;         ///< interrupt microcode entries
    uint64_t contextSwitches = 0;    ///< LDPCTX executions
    uint64_t chmkCalls = 0;

    /** Weighted accumulate (composite merges across simulations). */
    void
    accumulate(const HwCounters &o, uint64_t w = 1)
    {
        cycles += o.cycles * w;
        instructions += o.instructions * w;
        specifiers += o.specifiers * w;
        firstSpecifiers += o.firstSpecifiers * w;
        indexedSpecifiers += o.indexedSpecifiers * w;
        bdispBytes += o.bdispBytes * w;
        bdispCount += o.bdispCount * w;
        immediateBytes += o.immediateBytes * w;
        dispBytes += o.dispBytes * w;
        unalignedRefs += o.unalignedRefs * w;
        microTraps += o.microTraps * w;
        interrupts += o.interrupts * w;
        contextSwitches += o.contextSwitches * w;
        chmkCalls += o.chmkCalls * w;
    }

    HwCounters &
    operator+=(const HwCounters &o)
    {
        accumulate(o);
        return *this;
    }
};

} // namespace vax

#endif // UPC780_CPU_HW_COUNTERS_HH
