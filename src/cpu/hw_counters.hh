/**
 * @file
 * Hardware event counters.
 *
 * These model the events the paper says are NOT visible to the UPC
 * technique (and which Emer & Clark took from separate studies, e.g.
 * the cache measurements of [2]): they are used for the Section 4
 * implementation-events report and as cross-checks in the test suite.
 * The analysis for Tables 1-9 uses only the histogram + annotations.
 */

#ifndef UPC780_CPU_HW_COUNTERS_HH
#define UPC780_CPU_HW_COUNTERS_HH

#include <cstdint>
#include <string>

#include "support/stats.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

struct HwCounters
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;       ///< retired (decode-complete)
    uint64_t specifiers = 0;         ///< all operand specifiers decoded
    uint64_t firstSpecifiers = 0;
    uint64_t indexedSpecifiers = 0;
    uint64_t bdispBytes = 0;         ///< total branch-displacement bytes
    uint64_t bdispCount = 0;         ///< instructions with a bdisp field
    uint64_t immediateBytes = 0;     ///< immediate/absolute spec bytes
    uint64_t dispBytes = 0;          ///< displacement bytes in specifiers
    uint64_t unalignedRefs = 0;      ///< alignment microtraps
    uint64_t microTraps = 0;         ///< all microtraps (abort cycles)
    uint64_t interrupts = 0;         ///< interrupt microcode entries
    uint64_t contextSwitches = 0;    ///< LDPCTX executions
    uint64_t chmkCalls = 0;

    /** Weighted accumulate (composite merges across simulations). */
    void
    accumulate(const HwCounters &o, uint64_t w = 1)
    {
        cycles += o.cycles * w;
        instructions += o.instructions * w;
        specifiers += o.specifiers * w;
        firstSpecifiers += o.firstSpecifiers * w;
        indexedSpecifiers += o.indexedSpecifiers * w;
        bdispBytes += o.bdispBytes * w;
        bdispCount += o.bdispCount * w;
        immediateBytes += o.immediateBytes * w;
        dispBytes += o.dispBytes * w;
        unalignedRefs += o.unalignedRefs * w;
        microTraps += o.microTraps * w;
        interrupts += o.interrupts * w;
        contextSwitches += o.contextSwitches * w;
        chmkCalls += o.chmkCalls * w;
    }

    HwCounters &
    operator+=(const HwCounters &o)
    {
        accumulate(o);
        return *this;
    }

    /** @{ Checkpoint/restore: every counter, in declaration order. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

    /** Mirror every counter into the registry under prefix. */
    void
    regStats(stats::Registry &r, const std::string &prefix) const
    {
        r.addScalar(prefix + ".cycles", "machine cycles (200 ns each)",
                    &cycles);
        r.addScalar(prefix + ".instructions",
                    "instructions retired (decode-complete)",
                    &instructions);
        r.addScalar(prefix + ".specifiers",
                    "operand specifiers decoded", &specifiers);
        r.addScalar(prefix + ".firstSpecifiers",
                    "first specifiers decoded", &firstSpecifiers);
        r.addScalar(prefix + ".indexedSpecifiers",
                    "indexed specifiers decoded", &indexedSpecifiers);
        r.addScalar(prefix + ".bdispBytes",
                    "branch-displacement bytes consumed", &bdispBytes);
        r.addScalar(prefix + ".bdispCount",
                    "instructions with a bdisp field", &bdispCount);
        r.addScalar(prefix + ".immediateBytes",
                    "immediate/absolute specifier bytes",
                    &immediateBytes);
        r.addScalar(prefix + ".dispBytes",
                    "displacement bytes in specifiers", &dispBytes);
        r.addScalar(prefix + ".unalignedRefs",
                    "alignment microtraps", &unalignedRefs);
        r.addScalar(prefix + ".microTraps",
                    "microtraps taken (abort cycles)", &microTraps);
        r.addScalar(prefix + ".interrupts",
                    "interrupt microcode entries", &interrupts);
        r.addScalar(prefix + ".contextSwitches",
                    "LDPCTX executions", &contextSwitches);
        r.addScalar(prefix + ".chmkCalls", "CHMK system services",
                    &chmkCalls);
    }
};

} // namespace vax

#endif // UPC780_CPU_HW_COUNTERS_HH
