/**
 * @file
 * The instruction buffer.
 *
 * A byte FIFO between the I-Fetch unit and I-Decode; 8 bytes on the
 * 11/780, configurable here for what-if studies.  The front byte
 * always corresponds to the EBOX's decode PC.  Skips (displacement
 * bytes of untaken branches) drop bytes as they become available
 * without stalling the EBOX.
 */

#ifndef UPC780_CPU_IB_HH
#define UPC780_CPU_IB_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

class InstructionBuffer
{
  public:
    explicit InstructionBuffer(unsigned capacity = 8)
        : bytes_(capacity, 0)
    {
        upc_assert(capacity >= 4);
    }

    unsigned capacity() const
    {
        return static_cast<unsigned>(bytes_.size());
    }

    unsigned avail() const { return count_; }
    unsigned freeBytes() const { return capacity() - count_; }
    unsigned pendingSkip() const { return pendingSkip_; }

    /** Look at the i-th buffered byte (i < avail()). */
    uint8_t
    peek(unsigned i) const
    {
        upc_assert(i < count_);
        // head_ < capacity and i < count_ <= capacity, so one
        // conditional subtract wraps the index -- these run several
        // times per decoded byte, and a real `%` is a hardware divide.
        unsigned idx = head_ + i;
        if (idx >= capacity())
            idx -= capacity();
        return bytes_[idx];
    }

    /** Remove n bytes from the front. */
    void
    consume(unsigned n)
    {
        upc_assert(n <= count_);
        head_ += n;
        if (head_ >= capacity())
            head_ -= capacity();
        count_ -= n;
    }

    /**
     * Drop n upcoming bytes: available ones now, the rest as they
     * arrive.  Never stalls.
     */
    void
    skip(unsigned n)
    {
        unsigned now = n < count_ ? n : count_;
        consume(now);
        pendingSkip_ += n - now;
    }

    /** Append a fetched byte (skipped bytes are dropped here). */
    void
    push(uint8_t b)
    {
        if (pendingSkip_ > 0) {
            --pendingSkip_;
            return;
        }
        upc_assert(count_ < capacity());
        unsigned idx = head_ + count_;
        if (idx >= capacity())
            idx -= capacity();
        bytes_[idx] = b;
        ++count_;
    }

    /** Room for another fetched byte (skips absorb without room). */
    bool
    canAccept() const
    {
        return pendingSkip_ > 0 || count_ < capacity();
    }

    void
    flush()
    {
        head_ = 0;
        count_ = 0;
        pendingSkip_ = 0;
    }

    /** @{ Checkpoint/restore (capacity is config, checked only). */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    std::vector<uint8_t> bytes_;
    unsigned head_ = 0;
    unsigned count_ = 0;
    unsigned pendingSkip_ = 0;
};

} // namespace vax

#endif // UPC780_CPU_IB_HH
