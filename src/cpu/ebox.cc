#include "cpu/ebox.hh"

#include "arch/ffloat.hh"
#include "cpu/pregs.hh"
#include "support/bitutil.hh"
#include "support/logging.hh"
#include "support/trace.hh"
#include "upc/monitor.hh"

namespace vax
{

Ebox::Ebox(const ControlStore &cs, MemSystem &mem, InstructionBuffer &ib,
           IFetch &ifetch, InterruptController &intc, IntervalTimer &timer,
           HwCounters &hw)
    : cs_(cs), mem_(mem), ib_(ib), ifetch_(ifetch), intc_(intc),
      timer_(timer), hw_(hw), dtab_(cs.decodedTable()), dsize_(cs.size()),
      optab_(opcodeTable().data())
{
}

Ebox::~Ebox()
{
    if (mon_) {
        flushCycleBatch();
        mon_->detachEbox(this);
    }
}

void
Ebox::setCycleSink(CycleSink *sink)
{
    flushCycleBatch();
    if (mon_)
        mon_->detachEbox(this);
    mon_ = nullptr;
    sink_ = sink;
    refreshBatchOn();
}

void
Ebox::setCycleSink(UpcMonitor *mon)
{
    flushCycleBatch();
    if (mon_ && mon_ != mon)
        mon_->detachEbox(this);
    mon_ = mon;
    sink_ = mon;
    if (mon)
        mon->attachEbox(this);
    refreshBatchOn();
}

void
Ebox::detachMonitor(UpcMonitor *mon)
{
    if (mon_ != mon)
        return;
    // The monitor's destructor synced before detaching; anything still
    // batched has nowhere to go.
    batchN_ = 0;
    mon_ = nullptr;
    sink_ = nullptr;
    batchOn_ = false;
}

void
Ebox::setFlowCheck(bool on)
{
    flowCheck_ = on;
    refreshBatchOn();
}

void
Ebox::refreshBatchOn()
{
    // collecting() folds the monitor's CSR into the one flag the
    // per-cycle path tests; UpcMonitor::start/stop/restore call back
    // here whenever it changes.  A stopped monitor drops to the
    // virtual count(), which discards.
    batchOn_ = mon_ && mon_->collecting() && !flowCheck_ &&
               !trace::anyEnabled();
}

void
Ebox::flushCycleBatch() const
{
    if (batchN_ == 0)
        return;
    mon_->applyBatch(batch_, batchN_);
    batchN_ = 0;
}

void
Ebox::reset(VirtAddr pc, CpuMode mode)
{
    flushCycleBatch();
    refreshBatchOn();
    psl_ = Psl();
    psl_.cur = mode;
    psl_.ipl = mode == CpuMode::Kernel ? 31 : 0;
    state_ = State::Running;
    halted_ = false;
    trapStack_.clear();
    microStack_.clear();
    redirect(pc);
    upc_ = cs_.entries.iid;
}

void
Ebox::setGpr(unsigned r, uint32_t v)
{
    upc_assert(r < NumGpr);
    gpr_[r] = v;
}

UAddr
Ebox::endTarget()
{
    // Instruction boundary: drain the batched counts and re-sample the
    // cached fast-path flag (the trace mask can change between
    // instructions; CSR start/stop is handled per record).
    flushCycleBatch();
    refreshBatchOn();
    // Machine checks outrank interrupts: a latched hardware error is
    // dispatched at the first instruction boundary, before any device.
    if (mem_.machineCheckPending()) {
        mcheckCause_ = static_cast<uint32_t>(mem_.takeMachineCheck());
        ++hw_.microTraps;
        TRACE(UCode, "machine check dispatch cause=%u", mcheckCause_);
        return cs_.entries.machineCheck;
    }
    int level = intc_.pendingAbove(psl_.ipl);
    if (level > 0) {
        intc_.acknowledge(static_cast<unsigned>(level));
        pendingIntLevel_ = static_cast<unsigned>(level);
        ++hw_.interrupts;
        TRACE(UCode, "interrupt dispatch ipl=%d", level);
        return cs_.entries.interrupt;
    }
    return cs_.entries.iid;
}

UAddr
Ebox::resolveNext()
{
    if (pendingEnd_)
        return endTarget();
    if (seqSet_)
        return nextUpc_;
    return static_cast<UAddr>(upc_ + 1);
}

UAddr
Ebox::handlerFor(TrapKind kind) const
{
    switch (kind) {
      case TrapKind::TbMissD:    return cs_.entries.tbMissD;
      case TrapKind::TbMissI:    return cs_.entries.tbMissI;
      case TrapKind::AlignRead:  return cs_.entries.alignRead;
      case TrapKind::AlignWrite: return cs_.entries.alignWrite;
    }
    panic("bad trap kind");
}

namespace
{

const char *
trapKindName(unsigned kind)
{
    static const char *const names[] = {
        "tbMissD", "tbMissI", "alignRead", "alignWrite",
    };
    return kind < 4 ? names[kind] : "?";
}

} // anonymous namespace

void
Ebox::takeTrap(TrapKind kind, VirtAddr va, const PendingMemOp &op)
{
    TRACE(UCode, "microtrap %s va=%08x upc=%u",
          trapKindName(static_cast<unsigned>(kind)), va,
          static_cast<unsigned>(upc_));
    ++hw_.microTraps;
    if (kind == TrapKind::AlignRead || kind == TrapKind::AlignWrite)
        ++hw_.unalignedRefs;
    TrapFrame f;
    f.kind = kind;
    f.trapUpc = upc_;
    f.resumeIsEnd = pendingEnd_;
    f.resumeUpc = seqSet_ ? nextUpc_ : static_cast<UAddr>(upc_ + 1);
    f.op = op;
    f.va = va;
    trapStack_.push_back(f);
    // The cycle in which the trap is recognized is the abort cycle; it
    // is counted at the dedicated abort location (Table 8's Abort row)
    // and the machine enters the service microcode directly.
    upc_ = handlerFor(kind);
}

void
Ebox::cycleSlow()
{
    switch (state_) {
      case State::Halted:
        return;

      case State::ReadStall:
        if (!mem_.eboxReadDone()) {
            emitCycle(upc_, true);
            return;
        }
        md_ = mem_.takeEboxReadData();
        state_ = State::Running;
        upc_ = afterMemIsEnd_ ? endTarget() : afterMem_;
        afterMemIsEnd_ = false;
        break; // fall through: execute the next microword this cycle

      case State::WriteStall:
        if (!mem_.eboxWriteDone()) {
            emitCycle(upc_, true);
            return;
        }
        mem_.ackEboxWriteDone();
        // The delayed issue consumes this cycle as the microword's
        // normal cycle.
        emitCycle(upc_, false);
        state_ = State::Running;
        upc_ = afterMemIsEnd_ ? endTarget() : afterMem_;
        afterMemIsEnd_ = false;
        return;

      case State::Reissue: {
        const PendingMemOp &op = reissueFrame_.op;
        MemResult res;
        switch (op.kind) {
          case PendingMemOp::Kind::Read:
            res = mem_.dataRead(op.va, op.bytes, psl_.cur);
            break;
          case PendingMemOp::Kind::PhysRead:
            res = mem_.physRead(op.va);
            break;
          case PendingMemOp::Kind::Write:
            res = mem_.dataWrite(op.va, op.data, op.bytes, psl_.cur);
            break;
          default:
            panic("reissue with no pending op");
        }
        switch (res.status) {
          case MemStatus::Ok:
            if (op.kind != PendingMemOp::Kind::Write)
                md_ = res.data;
            emitCycle(reissueFrame_.trapUpc, false);
            state_ = State::Running;
            upc_ = reissueFrame_.resumeIsEnd ? endTarget()
                                             : reissueFrame_.resumeUpc;
            return;
          case MemStatus::Stall:
            upc_ = reissueFrame_.trapUpc;
            afterMem_ = reissueFrame_.resumeUpc;
            afterMemIsEnd_ = reissueFrame_.resumeIsEnd;
            if (op.kind == PendingMemOp::Kind::Write) {
                emitCycle(upc_, true);
                state_ = State::WriteStall;
            } else {
                emitCycle(upc_, false);
                state_ = State::ReadStall;
            }
            return;
          case MemStatus::TbMiss:
          case MemStatus::Unaligned: {
            // Nested trap during the re-issue: push a fresh frame that
            // preserves the original resume point.
            ++hw_.microTraps;
            TrapFrame f = reissueFrame_;
            f.kind = res.status == MemStatus::TbMiss
                ? TrapKind::TbMissD
                : (op.kind == PendingMemOp::Kind::Write
                   ? TrapKind::AlignWrite : TrapKind::AlignRead);
            f.va = op.va;
            trapStack_.push_back(f);
            upc_ = handlerFor(f.kind);
            state_ = State::Running;
            emitCycle(cs_.entries.abort, false);
            return;
          }
          case MemStatus::AccessViolation:
            fault(FaultKind::AccessViolation, "on re-issue");
        }
        return;
      }

      case State::Running:
        break;
    }

    runMicroword();
}

void
Ebox::runMicroword()
{
    if (upc_ >= dsize_) [[unlikely]]
        badMicroAddress(upc_, dsize_);

    seqSet_ = false;
    pendingEnd_ = false;
    ibFailed_ = false;
    memIssued_ = false;
    memTrapped_ = false;
    reissuePending_ = false;
    trapRetSatisfied_ = false;

    if (!legacyDispatch_) [[likely]] {
        // Decoded dispatch: one predictable indirect call through the
        // flat table, operands pre-packed at ROM build time.
        const DecodedWord &d = dtab_[upc_];
        d.fn(*this, d.ops);
    } else {
        cs_.word(upc_).sem(*this);
    }

    if (ibFailed_ || memTrapped_ || reissuePending_) [[unlikely]] {
        microwordEvent();
        return;
    }

    if (flowCheck_) [[unlikely]]
        checkDeclaredFlow(cs_.word(upc_));

    if (memIssued_ && memStatus_ == MemStatus::Stall) {
        afterMemIsEnd_ = pendingEnd_;
        afterMem_ = seqSet_ ? nextUpc_ : static_cast<UAddr>(upc_ + 1);
        if (curOp_.kind == PendingMemOp::Kind::Write) {
            // Write stall: stall cycles first, the issue cycle follows.
            emitCycle(upc_, true);
            state_ = State::WriteStall;
        } else {
            // Read: the issue cycle is a normal cycle, then stalls.
            emitCycle(upc_, false);
            state_ = State::ReadStall;
        }
        return;
    }

    emitCycle(upc_, false);
    if (halted_) [[unlikely]] {
        flushCycleBatch();
        state_ = State::Halted;
        return;
    }
    upc_ = resolveNext();
}

void
Ebox::microwordEvent()
{
    if (ibFailed_) {
        // IB starvation.  If the I-stream took a TB miss, service it
        // (abort cycle, then the fill microcode); otherwise count an
        // IB-stall cycle at the requesting microword and retry.
        if (ifetch_.itbMiss()) {
            PendingMemOp none;
            VirtAddr va = ifetch_.itbMissVa();
            // Resume by re-running this microword.
            seqSet_ = true;
            nextUpc_ = upc_;
            pendingEnd_ = false;
            takeTrap(TrapKind::TbMissI, va, none);
            emitCycle(cs_.entries.abort, false);
            return;
        }
        if (flowCheck_ && !cs_.annotation(upc_).ibRequest)
            panic("microword %s (upc=%u) IB-stalled but is not "
                  "annotated ibRequest",
                  cs_.annotation(upc_).name,
                  static_cast<unsigned>(upc_));
        emitCycle(upc_, true);
        return; // upc_ unchanged: retry next cycle
    }

    if (memTrapped_) {
        takeTrap(curTrapKind_, curTrapVa_, curOp_);
        emitCycle(cs_.entries.abort, false);
        return;
    }

    // reissuePending_: uTrapRet consumed this cycle; the re-issue
    // starts next cycle.
    emitCycle(upc_, false);
    state_ = State::Reissue;
}

void
Ebox::checkDeclaredFlow(const MicroWord &w)
{
    if (!cs_.flowsResolved())
        return;
    const UFlow &f = cs_.flow(upc_);
    // Trap-return words resume through a trap frame; their successor
    // is any word that can issue a memory op, so the check skips them.
    if (f.trapRet)
        return;
    const unsigned at = upc_;
    if (memIssued_) {
        bool is_write = curOp_.kind == PendingMemOp::Kind::Write;
        UMemKind want = is_write ? UMemKind::Write : UMemKind::Read;
        if (w.ann.mem != want)
            panic("microword %s (upc=%u) issued a %s but is annotated "
                  "mem=%u", w.ann.name, at,
                  is_write ? "write" : "read",
                  static_cast<unsigned>(w.ann.mem));
    }
    if (halted_) {
        if (!f.stop)
            panic("microword %s (upc=%u) halted without a declared "
                  "stop edge", w.ann.name, at);
        return;
    }
    if (pendingEnd_) {
        if (!f.end)
            panic("microword %s (upc=%u) ended the instruction without "
                  "a declared end edge", w.ann.name, at);
        return;
    }
    if (seqSet_) {
        if (!cs_.flowAllows(upc_, nextUpc_))
            panic("microword %s (upc=%u) jumped to undeclared "
                  "successor %u", w.ann.name, at,
                  static_cast<unsigned>(nextUpc_));
        return;
    }
    if (!f.fall)
        panic("microword %s (upc=%u) fell through without a declared "
              "fall edge", w.ann.name, at);
}

// ===================== sequencing services =====================

void
Ebox::uTrapRet()
{
    upc_assert(!trapStack_.empty());
    TrapFrame f = trapStack_.back();
    trapStack_.pop_back();
    if (f.op.kind == PendingMemOp::Kind::None) {
        // IB-retry trap: re-run the stalled microword.
        seqSet_ = true;
        nextUpc_ = f.trapUpc;
    } else {
        reissueFrame_ = f;
        reissuePending_ = true;
    }
}

void
Ebox::uTrapRetSatisfied()
{
    upc_assert(!trapStack_.empty());
    TrapFrame f = trapStack_.back();
    trapStack_.pop_back();
    if (f.resumeIsEnd) {
        pendingEnd_ = true;
    } else {
        seqSet_ = true;
        nextUpc_ = f.resumeUpc;
    }
}

// ===================== memory services =====================

void
Ebox::memRead(VirtAddr va, unsigned bytes)
{
    if (bytes < 1 || bytes > 4) {
        panic("memRead of %u bytes at upc=%u (%s) pc=%#x opcode=%s",
              bytes, upc_, cs_.annotation(upc_).name, lat.instrPc,
              lat.info ? lat.info->mnemonic : "?");
    }
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    PendingMemOp op{PendingMemOp::Kind::Read, va, 0, bytes};
    MemResult res = mem_.dataRead(va, bytes, psl_.cur);
    issueResult(res, op);
}

void
Ebox::memReadPhys(PhysAddr pa)
{
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    PendingMemOp op{PendingMemOp::Kind::PhysRead, pa, 0, 4};
    MemResult res = mem_.physRead(pa);
    issueResult(res, op);
}

void
Ebox::memWrite(VirtAddr va, uint32_t data, unsigned bytes)
{
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    PendingMemOp op{PendingMemOp::Kind::Write, va, data, bytes};
    MemResult res = mem_.dataWrite(va, data, bytes, psl_.cur);
    issueResult(res, op);
}

void
Ebox::memWritePhys(PhysAddr pa, uint32_t data, unsigned bytes)
{
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    // Physical writes (PCB save/restore) are always aligned and never
    // TB-miss, so they need no re-issue path.
    PendingMemOp op{PendingMemOp::Kind::Write, pa, data, bytes};
    MemResult res = mem_.physWrite(pa, data, bytes);
    issueResult(res, op);
}

void
Ebox::issueResult(const MemResult &res, const PendingMemOp &op)
{
    curOp_ = op;
    switch (res.status) {
      case MemStatus::Ok:
        memIssued_ = true;
        memStatus_ = MemStatus::Ok;
        if (op.kind != PendingMemOp::Kind::Write)
            md_ = res.data;
        break;
      case MemStatus::Stall:
        memIssued_ = true;
        memStatus_ = MemStatus::Stall;
        break;
      case MemStatus::TbMiss:
        memTrapped_ = true;
        curTrapKind_ = TrapKind::TbMissD;
        curTrapVa_ = op.va;
        break;
      case MemStatus::Unaligned:
        memTrapped_ = true;
        curTrapKind_ = op.kind == PendingMemOp::Kind::Write
            ? TrapKind::AlignWrite : TrapKind::AlignRead;
        curTrapVa_ = op.va;
        break;
      case MemStatus::AccessViolation:
        fault(FaultKind::AccessViolation);
    }
}

// ===================== TB / trap services =====================

void
Ebox::tbInsert(VirtAddr va, uint32_t pte_value)
{
    if (!pte::valid(pte_value))
        fault(FaultKind::TranslationNotValid);
    mem_.tb().insert(va, pte_value);
}

bool
Ebox::tbProbeSystem(VirtAddr va, PhysAddr *pa)
{
    return mem_.probe(va, false, CpuMode::Kernel, pa) == TbResult::Hit;
}

bool
Ebox::trapIsWrite() const
{
    upc_assert(!trapStack_.empty());
    return trapStack_.back().op.kind == PendingMemOp::Kind::Write;
}

void
Ebox::trappedOp(VirtAddr *va, uint32_t *data, unsigned *bytes) const
{
    upc_assert(!trapStack_.empty());
    const PendingMemOp &op = trapStack_.back().op;
    *va = op.va;
    *data = op.data;
    *bytes = op.bytes;
}

VirtAddr
Ebox::trapVaTop() const
{
    upc_assert(!trapStack_.empty());
    return trapStack_.back().va;
}

uint8_t
Ebox::trapKindTop() const
{
    upc_assert(!trapStack_.empty());
    return static_cast<uint8_t>(trapStack_.back().kind);
}

// ===================== misc services =====================

void
Ebox::redirect(VirtAddr target)
{
    ifetch_.redirect(target);
    decodePc_ = target;
}

void
Ebox::fault(FaultKind kind, const char *detail)
{
    const char *names[] = {
        "reserved instruction", "reserved operand",
        "reserved addressing mode", "access violation",
        "translation not valid", "privileged instruction",
        "breakpoint", "arithmetic trap",
    };
    panic("architectural fault: %s (%s) at pc=%#x upc=%u opcode=%s",
          names[static_cast<unsigned>(kind)], detail, lat.instrPc, upc_,
          lat.info ? lat.info->mnemonic : "?");
}

void
Ebox::switchMode(CpuMode m)
{
    if (m == psl_.cur)
        return;
    spBank_[static_cast<unsigned>(psl_.cur)] = gpr_[SP];
    gpr_[SP] = spBank_[static_cast<unsigned>(m)];
    psl_.cur = m;
}

void
Ebox::mtpr(uint32_t regnum, uint32_t value)
{
    if (psl_.cur != CpuMode::Kernel)
        fault(FaultKind::PrivilegedInstruction, "MTPR in user mode");
    if (regnum >= pr::NumPr)
        fault(FaultKind::ReservedOperand, "bad processor register");
    switch (regnum) {
      case pr::KSP:
        if (psl_.cur == CpuMode::Kernel)
            gpr_[SP] = value;
        else
            spBank_[static_cast<unsigned>(CpuMode::Kernel)] = value;
        break;
      case pr::USP:
        spBank_[static_cast<unsigned>(CpuMode::User)] = value;
        break;
      case pr::IPL:
        psl_.ipl = static_cast<uint8_t>(value & 0x1F);
        break;
      case pr::SIRR:
        if (value >= 1 && value <= 15)
            intc_.requestSoftware(value);
        break;
      case pr::SISR:
        intc_.setSisr(static_cast<uint16_t>(value));
        break;
      case pr::TBIA:
        mem_.tb().invalidateAll();
        break;
      case pr::TBIS:
        mem_.tb().invalidateSingle(value);
        break;
      case pr::MAPEN:
        mem_.setMapEnable(value & 1);
        break;
      case pr::ICCS:
        timer_.setIccs(value);
        break;
      case pr::NICR:
        timer_.setNicr(value);
        break;
      default:
        pr_[regnum] = value;
        break;
    }
}

uint32_t
Ebox::mfpr(uint32_t regnum)
{
    if (psl_.cur != CpuMode::Kernel)
        fault(FaultKind::PrivilegedInstruction, "MFPR in user mode");
    if (regnum >= pr::NumPr)
        fault(FaultKind::ReservedOperand, "bad processor register");
    switch (regnum) {
      case pr::KSP:
        return psl_.cur == CpuMode::Kernel
            ? gpr_[SP]
            : spBank_[static_cast<unsigned>(CpuMode::Kernel)];
      case pr::USP:
        return psl_.cur == CpuMode::User
            ? gpr_[SP]
            : spBank_[static_cast<unsigned>(CpuMode::User)];
      case pr::IPL:
        return psl_.ipl;
      case pr::SISR:
        return intc_.sisr();
      case pr::ICCS:
        return timer_.iccs();
      case pr::ICR:
        return timer_.icr();
      case pr::NICR:
        return timer_.nicr();
      case pr::MAPEN:
        return mem_.mapEnable() ? 1 : 0;
      default:
        return pr_[regnum];
    }
}

uint32_t
Ebox::expandLiteral(uint8_t literal, DataType type) const
{
    if (type == DataType::FFloat) {
        uint32_t exp = 128u + ((literal >> 3) & 7);
        uint32_t frac_hi = (literal & 7) << 4;
        return (exp << 7) | frac_hi;
    }
    return literal;
}

} // namespace vax
