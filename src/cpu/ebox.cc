#include "cpu/ebox.hh"

#include "arch/ffloat.hh"
#include "cpu/pregs.hh"
#include "support/bitutil.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace vax
{

Ebox::Ebox(const ControlStore &cs, MemSystem &mem, InstructionBuffer &ib,
           IFetch &ifetch, InterruptController &intc, IntervalTimer &timer,
           HwCounters &hw)
    : cs_(cs), mem_(mem), ib_(ib), ifetch_(ifetch), intc_(intc),
      timer_(timer), hw_(hw)
{
}

void
Ebox::reset(VirtAddr pc, CpuMode mode)
{
    psl_ = Psl();
    psl_.cur = mode;
    psl_.ipl = mode == CpuMode::Kernel ? 31 : 0;
    state_ = State::Running;
    halted_ = false;
    trapStack_.clear();
    microStack_.clear();
    redirect(pc);
    upc_ = cs_.entries.iid;
}

void
Ebox::setGpr(unsigned r, uint32_t v)
{
    upc_assert(r < NumGpr);
    gpr_[r] = v;
}

void
Ebox::emitCycle(UAddr upc, bool stalled)
{
    if (sink_)
        sink_->count(upc, stalled);
}

UAddr
Ebox::endTarget()
{
    // Machine checks outrank interrupts: a latched hardware error is
    // dispatched at the first instruction boundary, before any device.
    if (mem_.machineCheckPending()) {
        mcheckCause_ = static_cast<uint32_t>(mem_.takeMachineCheck());
        ++hw_.microTraps;
        TRACE(UCode, "machine check dispatch cause=%u", mcheckCause_);
        return cs_.entries.machineCheck;
    }
    int level = intc_.pendingAbove(psl_.ipl);
    if (level > 0) {
        intc_.acknowledge(static_cast<unsigned>(level));
        pendingIntLevel_ = static_cast<unsigned>(level);
        ++hw_.interrupts;
        TRACE(UCode, "interrupt dispatch ipl=%d", level);
        return cs_.entries.interrupt;
    }
    return cs_.entries.iid;
}

UAddr
Ebox::resolveNext()
{
    if (pendingEnd_)
        return endTarget();
    if (seqSet_)
        return nextUpc_;
    return static_cast<UAddr>(upc_ + 1);
}

UAddr
Ebox::handlerFor(TrapKind kind) const
{
    switch (kind) {
      case TrapKind::TbMissD:    return cs_.entries.tbMissD;
      case TrapKind::TbMissI:    return cs_.entries.tbMissI;
      case TrapKind::AlignRead:  return cs_.entries.alignRead;
      case TrapKind::AlignWrite: return cs_.entries.alignWrite;
    }
    panic("bad trap kind");
}

namespace
{

const char *
trapKindName(unsigned kind)
{
    static const char *const names[] = {
        "tbMissD", "tbMissI", "alignRead", "alignWrite",
    };
    return kind < 4 ? names[kind] : "?";
}

} // anonymous namespace

void
Ebox::takeTrap(TrapKind kind, VirtAddr va, const PendingMemOp &op)
{
    TRACE(UCode, "microtrap %s va=%08x upc=%u",
          trapKindName(static_cast<unsigned>(kind)), va,
          static_cast<unsigned>(upc_));
    ++hw_.microTraps;
    if (kind == TrapKind::AlignRead || kind == TrapKind::AlignWrite)
        ++hw_.unalignedRefs;
    TrapFrame f;
    f.kind = kind;
    f.trapUpc = upc_;
    f.resumeIsEnd = pendingEnd_;
    f.resumeUpc = seqSet_ ? nextUpc_ : static_cast<UAddr>(upc_ + 1);
    f.op = op;
    f.va = va;
    trapStack_.push_back(f);
    // The cycle in which the trap is recognized is the abort cycle; it
    // is counted at the dedicated abort location (Table 8's Abort row)
    // and the machine enters the service microcode directly.
    upc_ = handlerFor(kind);
}

void
Ebox::cycle()
{
    switch (state_) {
      case State::Halted:
        return;

      case State::ReadStall:
        if (!mem_.eboxReadDone()) {
            emitCycle(upc_, true);
            return;
        }
        md_ = mem_.takeEboxReadData();
        state_ = State::Running;
        upc_ = afterMemIsEnd_ ? endTarget() : afterMem_;
        afterMemIsEnd_ = false;
        break; // fall through: execute the next microword this cycle

      case State::WriteStall:
        if (!mem_.eboxWriteDone()) {
            emitCycle(upc_, true);
            return;
        }
        mem_.ackEboxWriteDone();
        // The delayed issue consumes this cycle as the microword's
        // normal cycle.
        emitCycle(upc_, false);
        state_ = State::Running;
        upc_ = afterMemIsEnd_ ? endTarget() : afterMem_;
        afterMemIsEnd_ = false;
        return;

      case State::Reissue: {
        const PendingMemOp &op = reissueFrame_.op;
        MemResult res;
        switch (op.kind) {
          case PendingMemOp::Kind::Read:
            res = mem_.dataRead(op.va, op.bytes, psl_.cur);
            break;
          case PendingMemOp::Kind::PhysRead:
            res = mem_.physRead(op.va);
            break;
          case PendingMemOp::Kind::Write:
            res = mem_.dataWrite(op.va, op.data, op.bytes, psl_.cur);
            break;
          default:
            panic("reissue with no pending op");
        }
        switch (res.status) {
          case MemStatus::Ok:
            if (op.kind != PendingMemOp::Kind::Write)
                md_ = res.data;
            emitCycle(reissueFrame_.trapUpc, false);
            state_ = State::Running;
            upc_ = reissueFrame_.resumeIsEnd ? endTarget()
                                             : reissueFrame_.resumeUpc;
            return;
          case MemStatus::Stall:
            upc_ = reissueFrame_.trapUpc;
            afterMem_ = reissueFrame_.resumeUpc;
            afterMemIsEnd_ = reissueFrame_.resumeIsEnd;
            if (op.kind == PendingMemOp::Kind::Write) {
                emitCycle(upc_, true);
                state_ = State::WriteStall;
            } else {
                emitCycle(upc_, false);
                state_ = State::ReadStall;
            }
            return;
          case MemStatus::TbMiss:
          case MemStatus::Unaligned: {
            // Nested trap during the re-issue: push a fresh frame that
            // preserves the original resume point.
            ++hw_.microTraps;
            TrapFrame f = reissueFrame_;
            f.kind = res.status == MemStatus::TbMiss
                ? TrapKind::TbMissD
                : (op.kind == PendingMemOp::Kind::Write
                   ? TrapKind::AlignWrite : TrapKind::AlignRead);
            f.va = op.va;
            trapStack_.push_back(f);
            upc_ = handlerFor(f.kind);
            state_ = State::Running;
            emitCycle(cs_.entries.abort, false);
            return;
          }
          case MemStatus::AccessViolation:
            fault(FaultKind::AccessViolation, "on re-issue");
        }
        return;
      }

      case State::Running:
        break;
    }

    runMicroword();
}

void
Ebox::runMicroword()
{
    const MicroWord &w = cs_.word(upc_);

    seqSet_ = false;
    pendingEnd_ = false;
    ibFailed_ = false;
    memIssued_ = false;
    memTrapped_ = false;
    reissuePending_ = false;
    trapRetSatisfied_ = false;

    w.sem(*this);

    if (ibFailed_) {
        // IB starvation.  If the I-stream took a TB miss, service it
        // (abort cycle, then the fill microcode); otherwise count an
        // IB-stall cycle at the requesting microword and retry.
        if (ifetch_.itbMiss()) {
            PendingMemOp none;
            VirtAddr va = ifetch_.itbMissVa();
            // Resume by re-running this microword.
            seqSet_ = true;
            nextUpc_ = upc_;
            pendingEnd_ = false;
            takeTrap(TrapKind::TbMissI, va, none);
            emitCycle(cs_.entries.abort, false);
            return;
        }
        if (flowCheck_ && !w.ann.ibRequest)
            panic("microword %s (upc=%u) IB-stalled but is not "
                  "annotated ibRequest",
                  w.ann.name, static_cast<unsigned>(upc_));
        emitCycle(upc_, true);
        return; // upc_ unchanged: retry next cycle
    }

    if (memTrapped_) {
        takeTrap(curTrapKind_, curTrapVa_, curOp_);
        emitCycle(cs_.entries.abort, false);
        return;
    }

    if (reissuePending_) {
        // uTrapRet consumed this cycle; re-issue starts next cycle.
        emitCycle(upc_, false);
        state_ = State::Reissue;
        return;
    }

    if (flowCheck_)
        checkDeclaredFlow(w);

    if (memIssued_ && memStatus_ == MemStatus::Stall) {
        afterMemIsEnd_ = pendingEnd_;
        afterMem_ = seqSet_ ? nextUpc_ : static_cast<UAddr>(upc_ + 1);
        if (curOp_.kind == PendingMemOp::Kind::Write) {
            // Write stall: stall cycles first, the issue cycle follows.
            emitCycle(upc_, true);
            state_ = State::WriteStall;
        } else {
            // Read: the issue cycle is a normal cycle, then stalls.
            emitCycle(upc_, false);
            state_ = State::ReadStall;
        }
        return;
    }

    emitCycle(upc_, false);
    if (halted_) {
        state_ = State::Halted;
        return;
    }
    upc_ = resolveNext();
}

void
Ebox::checkDeclaredFlow(const MicroWord &w)
{
    if (!cs_.flowsResolved())
        return;
    const UFlow &f = cs_.flow(upc_);
    // Trap-return words resume through a trap frame; their successor
    // is any word that can issue a memory op, so the check skips them.
    if (f.trapRet)
        return;
    const unsigned at = upc_;
    if (memIssued_) {
        bool is_write = curOp_.kind == PendingMemOp::Kind::Write;
        UMemKind want = is_write ? UMemKind::Write : UMemKind::Read;
        if (w.ann.mem != want)
            panic("microword %s (upc=%u) issued a %s but is annotated "
                  "mem=%u", w.ann.name, at,
                  is_write ? "write" : "read",
                  static_cast<unsigned>(w.ann.mem));
    }
    if (halted_) {
        if (!f.stop)
            panic("microword %s (upc=%u) halted without a declared "
                  "stop edge", w.ann.name, at);
        return;
    }
    if (pendingEnd_) {
        if (!f.end)
            panic("microword %s (upc=%u) ended the instruction without "
                  "a declared end edge", w.ann.name, at);
        return;
    }
    if (seqSet_) {
        if (!cs_.flowAllows(upc_, nextUpc_))
            panic("microword %s (upc=%u) jumped to undeclared "
                  "successor %u", w.ann.name, at,
                  static_cast<unsigned>(nextUpc_));
        return;
    }
    if (!f.fall)
        panic("microword %s (upc=%u) fell through without a declared "
              "fall edge", w.ann.name, at);
}

// ===================== sequencing services =====================

void
Ebox::uJump(ULabel l)
{
    seqSet_ = true;
    nextUpc_ = cs_.labelAddr(l);
}

void
Ebox::uJumpAddr(UAddr a)
{
    seqSet_ = true;
    nextUpc_ = a;
}

void
Ebox::uIf(bool cond, ULabel l)
{
    if (cond) {
        seqSet_ = true;
        nextUpc_ = cs_.labelAddr(l);
    }
}

void
Ebox::uCall(ULabel l)
{
    microStack_.push_back(static_cast<UAddr>(upc_ + 1));
    seqSet_ = true;
    nextUpc_ = cs_.labelAddr(l);
}

void
Ebox::uRet()
{
    upc_assert(!microStack_.empty());
    seqSet_ = true;
    nextUpc_ = microStack_.back();
    microStack_.pop_back();
}

void
Ebox::endInstruction()
{
    pendingEnd_ = true;
}

void
Ebox::nextSpecOrExec()
{
    seqSet_ = true;
    if (lat.specIndex < lat.info->numSpecifiers) {
        UAddr target;
        trySpecDispatch(&target);
        nextUpc_ = target;
    } else {
        nextUpc_ = cs_.entries.exec[static_cast<size_t>(lat.info->flow)];
        if (nextUpc_ == kInvalidUAddr)
            panic("EntryPoints.exec[%s] is unset: opcode %s has no "
                  "execute-flow microcode", lat.info->mnemonic,
                  lat.info->mnemonic);
    }
}

void
Ebox::uTrapRet()
{
    upc_assert(!trapStack_.empty());
    TrapFrame f = trapStack_.back();
    trapStack_.pop_back();
    if (f.op.kind == PendingMemOp::Kind::None) {
        // IB-retry trap: re-run the stalled microword.
        seqSet_ = true;
        nextUpc_ = f.trapUpc;
    } else {
        reissueFrame_ = f;
        reissuePending_ = true;
    }
}

void
Ebox::uTrapRetSatisfied()
{
    upc_assert(!trapStack_.empty());
    TrapFrame f = trapStack_.back();
    trapStack_.pop_back();
    if (f.resumeIsEnd) {
        pendingEnd_ = true;
    } else {
        seqSet_ = true;
        nextUpc_ = f.resumeUpc;
    }
}

// ===================== decode / IB services =====================

bool
Ebox::decodeOpcode()
{
    if (ib_.avail() < 1) {
        ibFailed_ = true;
        return false;
    }
    uint8_t opc = ib_.peek(0);
    const OpcodeInfo &info = opcodeInfo(opc);
    if (!info.valid)
        fault(FaultKind::ReservedInstruction, info.mnemonic);
    ib_.consume(1);
    lat.opcode = opc;
    lat.info = &info;
    lat.instrPc = decodePc_;
    decodePc_ += 1;
    lat.specIndex = 0;
    lat.dstCount = 0;
    lat.dst[0] = DstLatch();
    lat.dst[1] = DstLatch();
    lat.vIsReg = false;
    lat.specIndexed = false;

    ++hw_.instructions;
    if (info.bdispBytes > 0)
        ++hw_.bdispCount;
    TRACE(IDecode, "pc=%08x op=%02x %s mode=%c", lat.instrPc, opc,
          info.mnemonic,
          psl_.cur == CpuMode::Kernel ? 'K' : 'U');
    if (instrHook_)
        instrHook_(lat.instrPc, opc);

    seqSet_ = true;
    if (info.numSpecifiers > 0) {
        UAddr target;
        trySpecDispatch(&target);
        nextUpc_ = target;
    } else {
        nextUpc_ = cs_.entries.exec[static_cast<size_t>(info.flow)];
        if (nextUpc_ == kInvalidUAddr)
            panic("EntryPoints.exec[%s] is unset: opcode %s has no "
                  "execute-flow microcode", info.mnemonic,
                  info.mnemonic);
    }
    return true;
}

bool
Ebox::trySpecDispatch(UAddr *target)
{
    upc_assert(lat.specIndex < lat.info->numSpecifiers);
    unsigned pos = lat.specIndex == 0 ? 0 : 1;
    if (ib_.avail() < 1) {
        *target = cs_.entries.specWait[pos];
        return false;
    }
    uint8_t b0 = ib_.peek(0);
    bool indexed = isIndexPrefix(b0);
    unsigned need = indexed ? 2 : 1;
    if (ib_.avail() < need) {
        *target = cs_.entries.specWait[pos];
        return false;
    }
    uint8_t spec_byte = indexed ? ib_.peek(1) : b0;
    if (indexed && isIndexPrefix(spec_byte))
        fault(FaultKind::ReservedAddressingMode, "double index prefix");
    SpecByte sb = decodeSpecByte(spec_byte);
    ib_.consume(need);
    decodePc_ += need;

    const OperandDef &od = lat.info->operands[lat.specIndex];
    lat.specMode = sb.mode;
    lat.specReg = sb.reg;
    lat.specLiteral = sb.literal;
    lat.specAccess = od.access;
    lat.specType = od.type;
    lat.specOpIndex = lat.specIndex;
    lat.specIndexed = indexed;
    lat.specIndexReg = indexed ? (b0 & 0xF) : 0;

    if (indexed &&
        (sb.mode == AddrMode::ShortLiteral ||
         sb.mode == AddrMode::Register ||
         sb.mode == AddrMode::Immediate)) {
        fault(FaultKind::ReservedAddressingMode, "index on non-memory");
    }
    if (sb.mode == AddrMode::ShortLiteral && od.access != Access::Read)
        fault(FaultKind::ReservedAddressingMode, "literal as destination");
    if (sb.mode == AddrMode::Immediate && od.access != Access::Read)
        fault(FaultKind::ReservedAddressingMode, "immediate destination");
    if (sb.mode == AddrMode::Register && od.access == Access::Address)
        fault(FaultKind::ReservedAddressingMode, "register as address");

    ++lat.specIndex;
    ++hw_.specifiers;
    if (lat.specOpIndex == 0)
        ++hw_.firstSpecifiers;
    if (indexed)
        ++hw_.indexedSpecifiers;

    if (indexed) {
        *target = cs_.entries.indexPrefix[pos];
        if (*target == kInvalidUAddr)
            panic("EntryPoints.indexPrefix[%u] is unset: no index-"
                  "prefix routine for position class %u", pos, pos);
    } else {
        SpecAccClass acc = specAccClass(od.access);
        *target = cs_.entries.spec[static_cast<size_t>(sb.mode)][pos]
            [static_cast<size_t>(acc)];
        if (*target == kInvalidUAddr)
            panic("EntryPoints.spec[%s][%u][%u] is unset: no specifier "
                  "routine for mode %s access %u",
                  addrModeName(sb.mode), pos,
                  static_cast<unsigned>(acc), addrModeName(sb.mode),
                  static_cast<unsigned>(od.access));
    }
    return true;
}

bool
Ebox::decodeSpec()
{
    UAddr target;
    if (!trySpecDispatch(&target)) {
        ibFailed_ = true;
        return false;
    }
    seqSet_ = true;
    nextUpc_ = target;
    return true;
}

bool
Ebox::ibGet(unsigned bytes, bool sign_extend)
{
    upc_assert(bytes >= 1 && bytes <= 4);
    if (ib_.avail() < bytes) {
        ibFailed_ = true;
        return false;
    }
    uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<uint32_t>(ib_.peek(i)) << (8 * i);
    ib_.consume(bytes);
    decodePc_ += bytes;
    lat.q = sign_extend && bytes < 4 ? static_cast<uint32_t>(
        sext(v, 8 * bytes)) : v;
    return true;
}

void
Ebox::ibSkip(unsigned bytes)
{
    ib_.skip(bytes);
    decodePc_ += bytes;
}

// ===================== memory services =====================

void
Ebox::memRead(VirtAddr va, unsigned bytes)
{
    if (bytes < 1 || bytes > 4) {
        panic("memRead of %u bytes at upc=%u (%s) pc=%#x opcode=%s",
              bytes, upc_, cs_.annotation(upc_).name, lat.instrPc,
              lat.info ? lat.info->mnemonic : "?");
    }
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    PendingMemOp op{PendingMemOp::Kind::Read, va, 0, bytes};
    MemResult res = mem_.dataRead(va, bytes, psl_.cur);
    issueResult(res, op);
}

void
Ebox::memReadPhys(PhysAddr pa)
{
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    PendingMemOp op{PendingMemOp::Kind::PhysRead, pa, 0, 4};
    MemResult res = mem_.physRead(pa);
    issueResult(res, op);
}

void
Ebox::memWrite(VirtAddr va, uint32_t data, unsigned bytes)
{
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    PendingMemOp op{PendingMemOp::Kind::Write, va, data, bytes};
    MemResult res = mem_.dataWrite(va, data, bytes, psl_.cur);
    issueResult(res, op);
}

void
Ebox::memWritePhys(PhysAddr pa, uint32_t data, unsigned bytes)
{
    upc_assert(!memIssued_ && !memTrapped_ && !ibFailed_);
    // Physical writes (PCB save/restore) are always aligned and never
    // TB-miss, so they need no re-issue path.
    PendingMemOp op{PendingMemOp::Kind::Write, pa, data, bytes};
    MemResult res = mem_.physWrite(pa, data, bytes);
    issueResult(res, op);
}

void
Ebox::issueResult(const MemResult &res, const PendingMemOp &op)
{
    curOp_ = op;
    switch (res.status) {
      case MemStatus::Ok:
        memIssued_ = true;
        memStatus_ = MemStatus::Ok;
        if (op.kind != PendingMemOp::Kind::Write)
            md_ = res.data;
        break;
      case MemStatus::Stall:
        memIssued_ = true;
        memStatus_ = MemStatus::Stall;
        break;
      case MemStatus::TbMiss:
        memTrapped_ = true;
        curTrapKind_ = TrapKind::TbMissD;
        curTrapVa_ = op.va;
        break;
      case MemStatus::Unaligned:
        memTrapped_ = true;
        curTrapKind_ = op.kind == PendingMemOp::Kind::Write
            ? TrapKind::AlignWrite : TrapKind::AlignRead;
        curTrapVa_ = op.va;
        break;
      case MemStatus::AccessViolation:
        fault(FaultKind::AccessViolation);
    }
}

// ===================== TB / trap services =====================

void
Ebox::tbInsert(VirtAddr va, uint32_t pte_value)
{
    if (!pte::valid(pte_value))
        fault(FaultKind::TranslationNotValid);
    mem_.tb().insert(va, pte_value);
}

bool
Ebox::tbProbeSystem(VirtAddr va, PhysAddr *pa)
{
    return mem_.probe(va, false, CpuMode::Kernel, pa) == TbResult::Hit;
}

bool
Ebox::trapIsWrite() const
{
    upc_assert(!trapStack_.empty());
    return trapStack_.back().op.kind == PendingMemOp::Kind::Write;
}

void
Ebox::trappedOp(VirtAddr *va, uint32_t *data, unsigned *bytes) const
{
    upc_assert(!trapStack_.empty());
    const PendingMemOp &op = trapStack_.back().op;
    *va = op.va;
    *data = op.data;
    *bytes = op.bytes;
}

VirtAddr
Ebox::trapVaTop() const
{
    upc_assert(!trapStack_.empty());
    return trapStack_.back().va;
}

uint8_t
Ebox::trapKindTop() const
{
    upc_assert(!trapStack_.empty());
    return static_cast<uint8_t>(trapStack_.back().kind);
}

// ===================== misc services =====================

void
Ebox::redirect(VirtAddr target)
{
    ifetch_.redirect(target);
    decodePc_ = target;
}

void
Ebox::fault(FaultKind kind, const char *detail)
{
    const char *names[] = {
        "reserved instruction", "reserved operand",
        "reserved addressing mode", "access violation",
        "translation not valid", "privileged instruction",
        "breakpoint", "arithmetic trap",
    };
    panic("architectural fault: %s (%s) at pc=%#x upc=%u opcode=%s",
          names[static_cast<unsigned>(kind)], detail, lat.instrPc, upc_,
          lat.info ? lat.info->mnemonic : "?");
}

void
Ebox::switchMode(CpuMode m)
{
    if (m == psl_.cur)
        return;
    spBank_[static_cast<unsigned>(psl_.cur)] = gpr_[SP];
    gpr_[SP] = spBank_[static_cast<unsigned>(m)];
    psl_.cur = m;
}

void
Ebox::mtpr(uint32_t regnum, uint32_t value)
{
    if (psl_.cur != CpuMode::Kernel)
        fault(FaultKind::PrivilegedInstruction, "MTPR in user mode");
    if (regnum >= pr::NumPr)
        fault(FaultKind::ReservedOperand, "bad processor register");
    switch (regnum) {
      case pr::KSP:
        if (psl_.cur == CpuMode::Kernel)
            gpr_[SP] = value;
        else
            spBank_[static_cast<unsigned>(CpuMode::Kernel)] = value;
        break;
      case pr::USP:
        spBank_[static_cast<unsigned>(CpuMode::User)] = value;
        break;
      case pr::IPL:
        psl_.ipl = static_cast<uint8_t>(value & 0x1F);
        break;
      case pr::SIRR:
        if (value >= 1 && value <= 15)
            intc_.requestSoftware(value);
        break;
      case pr::SISR:
        intc_.setSisr(static_cast<uint16_t>(value));
        break;
      case pr::TBIA:
        mem_.tb().invalidateAll();
        break;
      case pr::TBIS:
        mem_.tb().invalidateSingle(value);
        break;
      case pr::MAPEN:
        mem_.setMapEnable(value & 1);
        break;
      case pr::ICCS:
        timer_.setIccs(value);
        break;
      case pr::NICR:
        timer_.setNicr(value);
        break;
      default:
        pr_[regnum] = value;
        break;
    }
}

uint32_t
Ebox::mfpr(uint32_t regnum)
{
    if (psl_.cur != CpuMode::Kernel)
        fault(FaultKind::PrivilegedInstruction, "MFPR in user mode");
    if (regnum >= pr::NumPr)
        fault(FaultKind::ReservedOperand, "bad processor register");
    switch (regnum) {
      case pr::KSP:
        return psl_.cur == CpuMode::Kernel
            ? gpr_[SP]
            : spBank_[static_cast<unsigned>(CpuMode::Kernel)];
      case pr::USP:
        return psl_.cur == CpuMode::User
            ? gpr_[SP]
            : spBank_[static_cast<unsigned>(CpuMode::User)];
      case pr::IPL:
        return psl_.ipl;
      case pr::SISR:
        return intc_.sisr();
      case pr::ICCS:
        return timer_.iccs();
      case pr::ICR:
        return timer_.icr();
      case pr::NICR:
        return timer_.nicr();
      case pr::MAPEN:
        return mem_.mapEnable() ? 1 : 0;
      default:
        return pr_[regnum];
    }
}

void
Ebox::setCcNz(uint32_t value, DataType type)
{
    unsigned bits = 8 * dataTypeBytes(type);
    uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
    uint32_t v = value & mask;
    psl_.cc.z = v == 0;
    psl_.cc.n = (v >> (bits - 1)) & 1;
    psl_.cc.v = false;
}

void
Ebox::setCcFromF(double value)
{
    psl_.cc.z = value == 0.0;
    psl_.cc.n = value < 0.0;
    psl_.cc.v = false;
    psl_.cc.c = false;
}

uint32_t
Ebox::expandLiteral(uint8_t literal, DataType type) const
{
    if (type == DataType::FFloat) {
        uint32_t exp = 128u + ((literal >> 3) & 7);
        uint32_t frac_hi = (literal & 7) << 4;
        return (exp << 7) | frac_hi;
    }
    return literal;
}

} // namespace vax
