/**
 * @file
 * Processor status longword.
 *
 * Layout (subset of the VAX PSL): condition codes in bits 3:0
 * (C, V, Z, N), IPL in bits 20:16, previous mode in bits 23:22,
 * current mode in bits 25:24.
 */

#ifndef UPC780_CPU_PSL_HH
#define UPC780_CPU_PSL_HH

#include <cstdint>

#include "arch/types.hh"

namespace vax
{

struct Psl
{
    CondCodes cc;
    uint8_t ipl = 0;                   ///< interrupt priority, 0-31
    CpuMode cur = CpuMode::Kernel;
    CpuMode prev = CpuMode::Kernel;

    uint32_t
    pack() const
    {
        uint32_t v = 0;
        v |= cc.c ? 1u : 0;
        v |= cc.v ? 2u : 0;
        v |= cc.z ? 4u : 0;
        v |= cc.n ? 8u : 0;
        v |= static_cast<uint32_t>(ipl & 0x1F) << 16;
        v |= static_cast<uint32_t>(prev) << 22;
        v |= static_cast<uint32_t>(cur) << 24;
        return v;
    }

    static Psl
    unpack(uint32_t v)
    {
        Psl p;
        p.cc.c = v & 1;
        p.cc.v = v & 2;
        p.cc.z = v & 4;
        p.cc.n = v & 8;
        p.ipl = (v >> 16) & 0x1F;
        p.prev = static_cast<CpuMode>((v >> 22) & 3);
        p.cur = static_cast<CpuMode>((v >> 24) & 3);
        return p;
    }
};

} // namespace vax

#endif // UPC780_CPU_PSL_HH
