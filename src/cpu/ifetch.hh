/**
 * @file
 * The autonomous I-Fetch unit.
 *
 * Fetches the instruction stream into the IB whenever at least one
 * byte of the buffer is empty, the EBOX did not use the cache port
 * this cycle, and no I-stream TB miss is outstanding.  Fetches are
 * aligned longwords; the unit accepts as many bytes as fit, so it can
 * re-reference the same longword (an implementation property the paper
 * calls out).  An I-stream TB miss sets a flag; the EBOX notices when
 * decode starves and runs the fill microcode.
 */

#ifndef UPC780_CPU_IFETCH_HH
#define UPC780_CPU_IFETCH_HH

#include "arch/types.hh"
#include "cpu/ib.hh"
#include "mem/mem_system.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

class IFetch
{
  public:
    IFetch(InstructionBuffer &ib, MemSystem &mem) : ib_(ib), mem_(mem) {}

    /** Attempt one fetch step; call once per machine cycle.  Inline
     *  fast path: with no fill landing, no redirect settling and no
     *  outstanding miss, the common full-IB / port-taken cycle decides
     *  in a few flag tests; anything stateful goes out of line. */
    void
    cycle(CpuMode mode)
    {
        if (mem_.ibFillDone() || redirectDelay_ > 0 || awaitingFill_ ||
            itbMiss_) {
            cycleSlow(mode);
            return;
        }
        if ((!ib_.canAccept() || ib_.freeBytes() == 0) &&
            ib_.pendingSkip() == 0)
            return;
        if (mem_.eboxPortUsed())
            return; // the EBOX had the cache this cycle
        issueFetch(mode);
    }

    /** Restart fetching at a new PC (branch taken, REI, ...). */
    void redirect(VirtAddr pc);

    bool itbMiss() const { return itbMiss_; }
    VirtAddr itbMissVa() const { return itbMissVa_; }

    /** Clear the miss flag (TB-fill microcode completed). */
    void clearItbMiss() { itbMiss_ = false; }

    VirtAddr viba() const { return viba_; }

    /** @{ Checkpoint/restore. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    void acceptLongword(uint32_t data);
    /** Fill collection, redirect settling and miss gating. */
    void cycleSlow(CpuMode mode);
    /** Issue the aligned-longword fetch and sort its outcome. */
    void issueFetch(CpuMode mode);

    InstructionBuffer &ib_;
    MemSystem &mem_;
    VirtAddr viba_ = 0;       ///< VA of next I-stream byte to fetch
    unsigned redirectDelay_ = 0; ///< dead cycles after a redirect
    bool itbMiss_ = false;
    VirtAddr itbMissVa_ = 0;
    bool awaitingFill_ = false;
    bool discardFill_ = false;
};

} // namespace vax

#endif // UPC780_CPU_IFETCH_HH
