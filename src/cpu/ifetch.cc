#include "cpu/ifetch.hh"

namespace vax
{

void
IFetch::acceptLongword(uint32_t data)
{
    unsigned offset = viba_ & 3;
    for (unsigned i = offset; i < 4; ++i) {
        if (!ib_.canAccept())
            break;
        ib_.push(static_cast<uint8_t>(data >> (8 * i)));
        ++viba_;
    }
}

void
IFetch::cycleSlow(CpuMode mode)
{
    // Collect a completed fill first.
    if (mem_.ibFillDone()) {
        uint32_t data = mem_.takeIbFillData();
        bool discard = discardFill_;
        discardFill_ = false;
        awaitingFill_ = false;
        if (!discard)
            acceptLongword(data);
    }

    if (redirectDelay_ > 0) {
        // The EBOX redirected the stream last cycle; address setup
        // takes a cycle before the first target fetch can issue.
        --redirectDelay_;
        return;
    }
    if (awaitingFill_ || itbMiss_)
        return;
    if (!ib_.canAccept() && ib_.pendingSkip() == 0)
        return;
    if (ib_.freeBytes() == 0 && ib_.pendingSkip() == 0)
        return;
    if (mem_.eboxPortUsed())
        return; // the EBOX had the cache this cycle

    issueFetch(mode);
}

void
IFetch::issueFetch(CpuMode mode)
{
    IbResult res = mem_.ibFetch(viba_ & ~3u, mode);
    switch (res.status) {
      case IbStatus::Data:
        acceptLongword(res.data);
        break;
      case IbStatus::Wait:
        awaitingFill_ = true;
        break;
      case IbStatus::TbMiss:
        itbMiss_ = true;
        itbMissVa_ = viba_;
        break;
      case IbStatus::AccessViolation:
        // Treated like a TB miss; the fill microcode will discover the
        // violation when it examines the PTE.
        itbMiss_ = true;
        itbMissVa_ = viba_;
        break;
    }
}

void
IFetch::redirect(VirtAddr pc)
{
    ib_.flush();
    viba_ = pc;
    itbMiss_ = false;
    redirectDelay_ = 2;
    if (awaitingFill_)
        discardFill_ = true;
}

} // namespace vax
