#include "cpu/tracer.hh"

#include <cstdio>

#include "cpu/cpu.hh"

namespace vax
{

void
InstructionTracer::attach(Cpu780 &cpu)
{
    cpu.ebox().setInstructionHook(
        [this, &cpu](VirtAddr pc, uint8_t opcode) {
            record(cpu.cycles(), pc, opcode, cpu.ebox().psl().cur);
        });
}

std::vector<std::string>
InstructionTracer::format(const ByteReader &read) const
{
    std::vector<std::string> out;
    out.reserve(ring_.size() + 1);
    if (dropped() > 0) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "[%llu earlier records dropped]",
                      static_cast<unsigned long long>(dropped()));
        out.emplace_back(buf);
    }
    for (const auto &r : ring_) {
        auto d = disassemble(r.pc, read);
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%10llu %c %08x  %s",
                      static_cast<unsigned long long>(r.cycle),
                      r.mode == CpuMode::Kernel ? 'K' : 'U', r.pc,
                      d.text.c_str());
        out.emplace_back(buf);
    }
    return out;
}

} // namespace vax
