/**
 * @file
 * The EBOX: the 11/780's microcoded execution engine.
 *
 * Each machine cycle either executes the microinstruction at the
 * current micro-PC or is a stall (read, write or IB).  Every cycle is
 * reported to the attached CycleSink with its micro-address -- the
 * measurement surface of the UPC histogram monitor.
 *
 * Microcode conventions (enforced by the services below):
 *  - IB requests (decodeOpcode / decodeSpec / ibGet) must be the first
 *    action of a microword's semantic lambda, and the lambda must
 *    return immediately if they fail; a stalled lambda is re-run.
 *  - A microword issues at most one memory operation, as its last
 *    action.  On a TB miss or unaligned reference, the machine takes a
 *    one-cycle abort (counted at the dedicated abort micro-address,
 *    the paper's Abort row), runs the service microcode, and then
 *    re-issues the recorded operation without re-running the lambda,
 *    so earlier register side effects are not repeated.
 */

#ifndef UPC780_CPU_EBOX_HH
#define UPC780_CPU_EBOX_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "arch/types.hh"
#include "cpu/cycle_sink.hh"
#include "cpu/hw_counters.hh"
#include "cpu/ib.hh"
#include "cpu/ifetch.hh"
#include "cpu/interrupts.hh"
#include "cpu/psl.hh"
#include "mem/mem_system.hh"
#include "ucode/control_store.hh"

namespace vax
{

class IntervalTimer;
namespace snap { class Serializer; class Deserializer; }

/** Simulator-fatal architectural faults (workloads must avoid these). */
enum class FaultKind : uint8_t {
    ReservedInstruction,
    ReservedOperand,
    ReservedAddressingMode,
    AccessViolation,
    TranslationNotValid,
    PrivilegedInstruction,
    Breakpoint,
    ArithmeticTrap,
};

/** Destination latch: where an instruction's result goes. */
struct DstLatch
{
    enum class Kind : uint8_t { None, Reg, Mem } kind = Kind::None;
    uint8_t reg = 0;
    VirtAddr addr = 0;
    DataType type = DataType::Long;
};

/**
 * Decode and operand latches visible to microcode.
 *
 * These model the 11/780's internal latches loaded by the I-Decode
 * hardware and the specifier microcode.
 */
struct Latches
{
    uint8_t opcode = 0;
    const OpcodeInfo *info = nullptr;
    VirtAddr instrPc = 0;     ///< address of the current instruction
    uint8_t specIndex = 0;    ///< number of specifiers decoded so far

    // Current specifier (set by decodeSpec).
    AddrMode specMode = AddrMode::Register;
    uint8_t specReg = 0;
    uint8_t specLiteral = 0;
    Access specAccess = Access::Read;
    DataType specType = DataType::Long;
    uint8_t specOpIndex = 0;
    bool specIndexed = false;
    uint8_t specIndexReg = 0;
    uint32_t idxVal = 0;      ///< scaled index value

    // Operand value latches (opHi holds the high half of quads).
    uint32_t op[6] = {};
    uint32_t opHi[6] = {};

    // Result destinations (two for EDIV-style double writes).
    uint8_t dstCount = 0;
    DstLatch dst[2];

    // Field (access type V) operand.
    bool vIsReg = false;
    uint8_t vReg = 0;
    VirtAddr vAddr = 0;

    // Working registers.
    uint32_t va = 0;          ///< virtual address latch
    uint32_t q = 0;           ///< IB data latch (ibGet result)
    uint32_t t[8] = {};       ///< temporaries
    uint32_t sc = 0;          ///< shift/loop counter
    uint8_t strBuf[64] = {};  ///< string datapath buffer (decimal ops)
    int64_t wide[2] = {};     ///< 64-bit scratch (decimal arithmetic)

    /**
     * Scratch registers reserved for the microtrap service routines.
     * They interrupt instruction flows mid-stream, so the services
     * must not touch t[]/sc/va; and because an alignment service's
     * partial reference can itself TB-miss (nesting the fill routine
     * inside), the two services use disjoint banks.
     */
    uint32_t mm[6] = {};   ///< TB-fill scratch
    uint32_t alg[4] = {};  ///< alignment scratch
};

class Ebox
{
  public:
    Ebox(const ControlStore &cs, MemSystem &mem, InstructionBuffer &ib,
         IFetch &ifetch, InterruptController &intc, IntervalTimer &timer,
         HwCounters &hw);

    /** Attach/detach the UPC monitor. */
    void setCycleSink(CycleSink *sink) { sink_ = sink; }

    /** Optional per-instruction hook, fired at the decode cycle. */
    void
    setInstructionHook(std::function<void(VirtAddr, uint8_t)> hook)
    {
        instrHook_ = std::move(hook);
    }

    /** Start execution at pc in the given mode (PSL reset). */
    void reset(VirtAddr pc, CpuMode mode = CpuMode::Kernel);

    /** Execute one machine cycle. */
    void cycle();

    bool halted() const { return halted_; }

    /** @{ Architectural state (for the OS builder and tests). */
    uint32_t gpr(unsigned r) const { return gpr_[r]; }
    void setGpr(unsigned r, uint32_t v);
    Psl &psl() { return psl_; }
    const Psl &psl() const { return psl_; }
    uint32_t prRaw(unsigned idx) const { return pr_[idx]; }
    void setPrRaw(unsigned idx, uint32_t v) { pr_[idx] = v; }
    VirtAddr decodePc() const { return decodePc_; }
    /** @} */

    // ================= microcode services =================

    /** @{ Sequencing. */
    void uJump(ULabel l);
    void uJumpAddr(UAddr a);
    void uIf(bool cond, ULabel l);
    void uCall(ULabel l);
    void uRet();
    void endInstruction();
    void nextSpecOrExec();
    void uTrapRet();           ///< return from MM/align service ucode
    void uTrapRetSatisfied();  ///< same, but the op was serviced inline
    /** @} */

    /** @{ I-Decode and IB requests (first action of a lambda). */
    bool decodeOpcode();
    bool decodeSpec();
    bool ibGet(unsigned bytes, bool sign_extend);
    void ibSkip(unsigned bytes);
    /** @} */

    /** @{ Memory operations (last action of a lambda). */
    void memRead(VirtAddr va, unsigned bytes);
    void memReadPhys(PhysAddr pa);
    void memWrite(VirtAddr va, uint32_t data, unsigned bytes);
    void memWritePhys(PhysAddr pa, uint32_t data, unsigned bytes);
    /** @} */

    /** Memory data register (result of the last completed read). */
    uint32_t md() const { return md_; }
    void setMd(uint32_t v) { md_ = v; }

    /** @{ TB services used by the fill microcode. */
    void tbInsert(VirtAddr va, uint32_t pte_value);
    bool tbProbeSystem(VirtAddr va, PhysAddr *pa);
    /** Faulting VA of the trap being serviced. */
    VirtAddr trapVaTop() const;
    /** Kind (as raw enum value) of the trap being serviced. */
    uint8_t trapKindTop() const;
    bool trapIsWrite() const;
    /** Details of the trapped op for the alignment microcode. */
    void trappedOp(VirtAddr *va, uint32_t *data, unsigned *bytes) const;
    void clearItbMissFlag() { ifetch_.clearItbMiss(); }
    /** @} */

    /** Expand a 6-bit short literal for the given data type. */
    uint32_t expandLiteral(uint8_t literal, DataType type) const;

    /** SPEC2-6 routine entry (used by the index-prefix microcode). */
    UAddr
    spec26Entry(AddrMode mode, SpecAccClass acc) const
    {
        return cs_.entries.spec[static_cast<size_t>(mode)][1]
            [static_cast<size_t>(acc)];
    }

    /** Hardware counters (microcode increments a few cross-checks). */
    HwCounters &hw() { return hw_; }

    /** Redirect the I-stream (branch taken). */
    void redirect(VirtAddr target);

    /** Raise a simulator-fatal architectural fault. */
    [[noreturn]] void fault(FaultKind kind, const char *detail = "");

    /** @{ Processor registers with side effects (MTPR/MFPR flows). */
    void mtpr(uint32_t regnum, uint32_t value);
    uint32_t mfpr(uint32_t regnum);
    /** @} */

    /** Switch current mode, banking stack pointers. */
    void switchMode(CpuMode m);

    /** LDPCTX: invalidate the process half of the TB. */
    void tbInvalidateProcess() { mem_.tb().invalidateProcess(); }

    /** PROBE: true if the access would be allowed in the given mode. */
    bool
    probeAccess(VirtAddr va, bool is_write, CpuMode mode)
    {
        PhysAddr pa;
        return mem_.probe(va, is_write, mode, &pa) !=
            TbResult::AccessViolation;
    }

    /** Level of the interrupt being dispatched (interrupt microcode). */
    unsigned pendingIntLevel() const { return pendingIntLevel_; }

    /** Cause code of the machine check being dispatched (MCHK flow). */
    uint32_t mcheckCause() const { return mcheckCause_; }

    /** @{ Micro-PC exposure for the guard/watchdog machinery.  The
     *  pointer stays valid for the EBOX's lifetime (guard::setMicroPc
     *  pattern, like trace::setCycleCounter). */
    UAddr currentUpc() const { return upc_; }
    const UAddr *upcPtr() const { return &upc_; }
    /** @} */

    /** Condition-code helpers for the execute flows. */
    void setCcNz(uint32_t value, DataType type);
    void setCcFromF(double value);

    /** Decode latches. */
    Latches lat;

    /** General registers, directly visible to microcode. */
    uint32_t &
    r(unsigned n)
    {
        return gpr_[n];
    }

    /** Architectural PC as specifier microcode sees it. */
    VirtAddr pcForSpec() const { return decodePc_; }

    /** The halted flag (HALT instruction in kernel mode). */
    void setHalted() { halted_ = true; }

    /**
     * Validate every executed micro-transition against the control
     * store's declared successor edges (strict mode).  Requires
     * ControlStore::resolveFlows() to have run; words declared
     * flowTrapRet() are exempt (their resume point is a trap frame).
     */
    void setFlowCheck(bool on) { flowCheck_ = on; }

    /** @{ Checkpoint/restore: the complete execution state -- PSL,
     *  GPRs, processor registers, micro-PC, decode latches, trap and
     *  micro-call stacks, in-flight memory-op bookkeeping.  The attached
     *  sink and instruction hook are wiring, not state; the restoring
     *  harness re-attaches them. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    enum class State : uint8_t {
        Running,
        ReadStall,
        WriteStall,
        Reissue,    ///< re-issue a trapped memory op
        Halted,
    };

    enum class TrapKind : uint8_t {
        TbMissD, TbMissI, AlignRead, AlignWrite,
    };

    struct PendingMemOp
    {
        enum class Kind : uint8_t { None, Read, PhysRead, Write } kind =
            Kind::None;
        VirtAddr va = 0;
        uint32_t data = 0;
        unsigned bytes = 0;
    };

    struct TrapFrame
    {
        TrapKind kind;
        UAddr trapUpc;      ///< microword that trapped
        UAddr resumeUpc;    ///< where to continue after re-issue
        bool resumeIsEnd;   ///< resume is an end-of-instruction
        PendingMemOp op;    ///< op to re-issue (Kind::None: re-run)
        VirtAddr va;        ///< faulting virtual address
    };

    void runMicroword();
    void checkDeclaredFlow(const MicroWord &w);
    UAddr resolveNext();
    UAddr endTarget();
    UAddr handlerFor(TrapKind kind) const;
    bool trySpecDispatch(UAddr *target);
    void takeTrap(TrapKind kind, VirtAddr va, const PendingMemOp &op);
    void issueResult(const MemResult &res, const PendingMemOp &op);
    void emitCycle(UAddr upc, bool stalled);

    const ControlStore &cs_;
    MemSystem &mem_;
    InstructionBuffer &ib_;
    IFetch &ifetch_;
    InterruptController &intc_;
    IntervalTimer &timer_;
    HwCounters &hw_;
    CycleSink *sink_ = nullptr;
    std::function<void(VirtAddr, uint8_t)> instrHook_;

    State state_ = State::Halted;
    bool halted_ = true;
    bool flowCheck_ = false;
    UAddr upc_ = 0;          ///< microword being executed / retried
    UAddr afterMem_ = 0;     ///< resume address once a stall resolves
    bool afterMemIsEnd_ = false;
    uint32_t gpr_[NumGpr] = {};
    Psl psl_;
    uint32_t spBank_[4] = {};  ///< per-mode stack pointers (inactive)
    uint32_t pr_[64] = {};
    VirtAddr decodePc_ = 0;
    uint32_t md_ = 0;

    // Per-lambda transient flags.
    bool seqSet_ = false;
    UAddr nextUpc_ = 0;
    bool pendingEnd_ = false;
    bool ibFailed_ = false;
    bool memIssued_ = false;
    bool memTrapped_ = false;
    bool reissuePending_ = false;
    bool trapRetSatisfied_ = false;
    MemStatus memStatus_ = MemStatus::Ok;
    PendingMemOp curOp_;
    VirtAddr curTrapVa_ = 0;
    TrapKind curTrapKind_ = TrapKind::TbMissD;

    // Reissue bookkeeping.
    TrapFrame reissueFrame_;

    std::vector<TrapFrame> trapStack_;
    std::vector<UAddr> microStack_; ///< uCall/uRet
    unsigned pendingIntLevel_ = 0;
    uint32_t mcheckCause_ = 0;
};

} // namespace vax

#endif // UPC780_CPU_EBOX_HH
