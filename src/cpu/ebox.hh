/**
 * @file
 * The EBOX: the 11/780's microcoded execution engine.
 *
 * Each machine cycle either executes the microinstruction at the
 * current micro-PC or is a stall (read, write or IB).  Every cycle is
 * reported to the attached CycleSink with its micro-address -- the
 * measurement surface of the UPC histogram monitor.
 *
 * Microcode conventions (enforced by the services below):
 *  - IB requests (decodeOpcode / decodeSpec / ibGet) must be the first
 *    action of a microword's semantic lambda, and the lambda must
 *    return immediately if they fail; a stalled lambda is re-run.
 *  - A microword issues at most one memory operation, as its last
 *    action.  On a TB miss or unaligned reference, the machine takes a
 *    one-cycle abort (counted at the dedicated abort micro-address,
 *    the paper's Abort row), runs the service microcode, and then
 *    re-issues the recorded operation without re-running the lambda,
 *    so earlier register side effects are not repeated.
 */

#ifndef UPC780_CPU_EBOX_HH
#define UPC780_CPU_EBOX_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "arch/types.hh"
#include "cpu/cycle_sink.hh"
#include "support/bitutil.hh"
#include "support/logging.hh"
#include "support/trace.hh"
#include "cpu/hw_counters.hh"
#include "cpu/ib.hh"
#include "cpu/ifetch.hh"
#include "cpu/interrupts.hh"
#include "cpu/psl.hh"
#include "mem/mem_system.hh"
#include "ucode/control_store.hh"

namespace vax
{

class IntervalTimer;
class UpcMonitor;
namespace snap { class Serializer; class Deserializer; }

/** Simulator-fatal architectural faults (workloads must avoid these). */
enum class FaultKind : uint8_t {
    ReservedInstruction,
    ReservedOperand,
    ReservedAddressingMode,
    AccessViolation,
    TranslationNotValid,
    PrivilegedInstruction,
    Breakpoint,
    ArithmeticTrap,
};

/** Destination latch: where an instruction's result goes. */
struct DstLatch
{
    enum class Kind : uint8_t { None, Reg, Mem } kind = Kind::None;
    uint8_t reg = 0;
    VirtAddr addr = 0;
    DataType type = DataType::Long;
};

/**
 * Decode and operand latches visible to microcode.
 *
 * These model the 11/780's internal latches loaded by the I-Decode
 * hardware and the specifier microcode.
 */
struct Latches
{
    uint8_t opcode = 0;
    const OpcodeInfo *info = nullptr;
    VirtAddr instrPc = 0;     ///< address of the current instruction
    uint8_t specIndex = 0;    ///< number of specifiers decoded so far

    // Current specifier (set by decodeSpec).
    AddrMode specMode = AddrMode::Register;
    uint8_t specReg = 0;
    uint8_t specLiteral = 0;
    Access specAccess = Access::Read;
    DataType specType = DataType::Long;
    uint8_t specOpIndex = 0;
    bool specIndexed = false;
    uint8_t specIndexReg = 0;
    uint32_t idxVal = 0;      ///< scaled index value

    // Operand value latches (opHi holds the high half of quads).
    uint32_t op[6] = {};
    uint32_t opHi[6] = {};

    // Result destinations (two for EDIV-style double writes).
    uint8_t dstCount = 0;
    DstLatch dst[2];

    // Field (access type V) operand.
    bool vIsReg = false;
    uint8_t vReg = 0;
    VirtAddr vAddr = 0;

    // Working registers.
    uint32_t va = 0;          ///< virtual address latch
    uint32_t q = 0;           ///< IB data latch (ibGet result)
    uint32_t t[8] = {};       ///< temporaries
    uint32_t sc = 0;          ///< shift/loop counter
    uint8_t strBuf[64] = {};  ///< string datapath buffer (decimal ops)
    int64_t wide[2] = {};     ///< 64-bit scratch (decimal arithmetic)

    /**
     * Scratch registers reserved for the microtrap service routines.
     * They interrupt instruction flows mid-stream, so the services
     * must not touch t[]/sc/va; and because an alignment service's
     * partial reference can itself TB-miss (nesting the fill routine
     * inside), the two services use disjoint banks.
     */
    uint32_t mm[6] = {};   ///< TB-fill scratch
    uint32_t alg[4] = {};  ///< alignment scratch
};

class Ebox
{
  public:
    Ebox(const ControlStore &cs, MemSystem &mem, InstructionBuffer &ib,
         IFetch &ifetch, InterruptController &intc, IntervalTimer &timer,
         HwCounters &hw);
    ~Ebox();

    /** @{ Attach/detach the per-cycle count consumer.  The UpcMonitor
     *  overload selects the devirtualized fast path: the EBOX banks
     *  cycle counts into a small batch and the monitor applies them in
     *  bulk at instruction boundaries (DESIGN.md §9).  The generic
     *  overload keeps the virtual CycleSink interface for test sinks. */
    void setCycleSink(CycleSink *sink);
    void setCycleSink(UpcMonitor *mon);
    /** @} */

    /** Called by ~UpcMonitor: a dying monitor must not leave the EBOX
     *  holding a dangling fast-path pointer. */
    void detachMonitor(UpcMonitor *mon);

    /**
     * Drain the batched cycle counts into the attached monitor.  The
     * batch can hold counts mid-instruction, so every monitor-side
     * reader syncs through this before looking at its banks; const
     * because reading totals is logically non-mutating.
     */
    void flushCycleBatch() const;

    /**
     * Select the legacy type-erased dispatch engine instead of the
     * decoded table (A/B histogram equivalence runs; see
     * tests/test_dispatch_equiv.cc).  Purely an engine choice: it must
     * never change a single simulated cycle.
     */
    void setLegacyDispatch(bool on) { legacyDispatch_ = on; }

    /** Batch-entry encoding shared with UpcMonitor::applyBatch. */
    static constexpr uint32_t kCycleStallBit = 1u << 16;

    /** Optional per-instruction hook, fired at the decode cycle. */
    void
    setInstructionHook(std::function<void(VirtAddr, uint8_t)> hook)
    {
        instrHook_ = std::move(hook);
    }

    /** Start execution at pc in the given mode (PSL reset). */
    void reset(VirtAddr pc, CpuMode mode = CpuMode::Kernel);

    /** Execute one machine cycle. */
    void
    cycle()
    {
        if (state_ == State::Running) [[likely]] {
            runMicroword();
            return;
        }
        cycleSlow();
    }

    /** Re-sample the cached "batch counts, skip trace tests" flag
     *  (monitor attached and collecting, flow check off, no trace
     *  channel enabled).  Public because UpcMonitor::start/stop call
     *  back here when the CSR changes the collecting state. */
    void refreshBatchOn();

    bool halted() const { return halted_; }

    /** @{ Architectural state (for the OS builder and tests). */
    uint32_t gpr(unsigned r) const { return gpr_[r]; }
    void setGpr(unsigned r, uint32_t v);
    Psl &psl() { return psl_; }
    const Psl &psl() const { return psl_; }
    uint32_t prRaw(unsigned idx) const { return pr_[idx]; }
    void setPrRaw(unsigned idx, uint32_t v) { pr_[idx] = v; }
    VirtAddr decodePc() const { return decodePc_; }
    /** @} */

    // ================= microcode services =================

    /** @{ Sequencing.  The small ones are inline: they run inside the
     *  microword lambdas (compiled in rom_*.cc) several times per
     *  machine cycle, and each is a store or two. */
    void
    uJump(ULabel l)
    {
        seqSet_ = true;
        nextUpc_ = cs_.labelAddr(l);
    }

    void
    uJumpAddr(UAddr a)
    {
        seqSet_ = true;
        nextUpc_ = a;
    }

    void
    uIf(bool cond, ULabel l)
    {
        if (cond) {
            seqSet_ = true;
            nextUpc_ = cs_.labelAddr(l);
        }
    }

    void
    uCall(ULabel l)
    {
        microStack_.push_back(static_cast<UAddr>(upc_ + 1));
        seqSet_ = true;
        nextUpc_ = cs_.labelAddr(l);
    }

    void
    uRet()
    {
        upc_assert(!microStack_.empty());
        seqSet_ = true;
        nextUpc_ = microStack_.back();
        microStack_.pop_back();
    }

    void endInstruction() { pendingEnd_ = true; }

    void nextSpecOrExec();
    void uTrapRet();           ///< return from MM/align service ucode
    void uTrapRetSatisfied();  ///< same, but the op was serviced inline
    /** @} */

    /** @{ I-Decode and IB requests (first action of a lambda). */
    bool decodeOpcode();
    bool decodeSpec();

    bool
    ibGet(unsigned bytes, bool sign_extend)
    {
        upc_assert(bytes >= 1 && bytes <= 4);
        if (ib_.avail() < bytes) {
            ibFailed_ = true;
            return false;
        }
        uint32_t v = 0;
        for (unsigned i = 0; i < bytes; ++i)
            v |= static_cast<uint32_t>(ib_.peek(i)) << (8 * i);
        ib_.consume(bytes);
        decodePc_ += bytes;
        lat.q = sign_extend && bytes < 4
            ? static_cast<uint32_t>(sext(v, 8 * bytes))
            : v;
        return true;
    }

    void
    ibSkip(unsigned bytes)
    {
        ib_.skip(bytes);
        decodePc_ += bytes;
    }
    /** @} */

    /** @{ Memory operations (last action of a lambda). */
    void memRead(VirtAddr va, unsigned bytes);
    void memReadPhys(PhysAddr pa);
    void memWrite(VirtAddr va, uint32_t data, unsigned bytes);
    void memWritePhys(PhysAddr pa, uint32_t data, unsigned bytes);
    /** @} */

    /** Memory data register (result of the last completed read). */
    uint32_t md() const { return md_; }
    void setMd(uint32_t v) { md_ = v; }

    /** @{ TB services used by the fill microcode. */
    void tbInsert(VirtAddr va, uint32_t pte_value);
    bool tbProbeSystem(VirtAddr va, PhysAddr *pa);
    /** Faulting VA of the trap being serviced. */
    VirtAddr trapVaTop() const;
    /** Kind (as raw enum value) of the trap being serviced. */
    uint8_t trapKindTop() const;
    bool trapIsWrite() const;
    /** Details of the trapped op for the alignment microcode. */
    void trappedOp(VirtAddr *va, uint32_t *data, unsigned *bytes) const;
    void clearItbMissFlag() { ifetch_.clearItbMiss(); }
    /** @} */

    /** Expand a 6-bit short literal for the given data type. */
    uint32_t expandLiteral(uint8_t literal, DataType type) const;

    /** SPEC2-6 routine entry (used by the index-prefix microcode). */
    UAddr
    spec26Entry(AddrMode mode, SpecAccClass acc) const
    {
        return cs_.entries.spec[static_cast<size_t>(mode)][1]
            [static_cast<size_t>(acc)];
    }

    /** Hardware counters (microcode increments a few cross-checks). */
    HwCounters &hw() { return hw_; }

    /** Redirect the I-stream (branch taken). */
    void redirect(VirtAddr target);

    /** Raise a simulator-fatal architectural fault. */
    [[noreturn]] void fault(FaultKind kind, const char *detail = "");

    /** @{ Processor registers with side effects (MTPR/MFPR flows). */
    void mtpr(uint32_t regnum, uint32_t value);
    uint32_t mfpr(uint32_t regnum);
    /** @} */

    /** Switch current mode, banking stack pointers. */
    void switchMode(CpuMode m);

    /** LDPCTX: invalidate the process half of the TB. */
    void tbInvalidateProcess() { mem_.tb().invalidateProcess(); }

    /** PROBE: true if the access would be allowed in the given mode. */
    bool
    probeAccess(VirtAddr va, bool is_write, CpuMode mode)
    {
        PhysAddr pa;
        return mem_.probe(va, is_write, mode, &pa) !=
            TbResult::AccessViolation;
    }

    /** Level of the interrupt being dispatched (interrupt microcode). */
    unsigned pendingIntLevel() const { return pendingIntLevel_; }

    /** Cause code of the machine check being dispatched (MCHK flow). */
    uint32_t mcheckCause() const { return mcheckCause_; }

    /** @{ Micro-PC exposure for the guard/watchdog machinery.  The
     *  pointer stays valid for the EBOX's lifetime (guard::setMicroPc
     *  pattern, like trace::setCycleCounter). */
    UAddr currentUpc() const { return upc_; }
    const UAddr *upcPtr() const { return &upc_; }
    /** @} */

    /** @{ Condition-code helpers for the execute flows (inline: one
     *  runs at nearly every instruction's store tail). */
    void
    setCcNz(uint32_t value, DataType type)
    {
        unsigned bits = 8 * dataTypeBytes(type);
        uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
        uint32_t v = value & mask;
        psl_.cc.z = v == 0;
        psl_.cc.n = (v >> (bits - 1)) & 1;
        psl_.cc.v = false;
    }

    void
    setCcFromF(double value)
    {
        psl_.cc.z = value == 0.0;
        psl_.cc.n = value < 0.0;
        psl_.cc.v = false;
        psl_.cc.c = false;
    }
    /** @} */

    /** Decode latches. */
    Latches lat;

    /** General registers, directly visible to microcode. */
    uint32_t &
    r(unsigned n)
    {
        return gpr_[n];
    }

    /** Architectural PC as specifier microcode sees it. */
    VirtAddr pcForSpec() const { return decodePc_; }

    /** The halted flag (HALT instruction in kernel mode). */
    void setHalted() { halted_ = true; }

    /**
     * Validate every executed micro-transition against the control
     * store's declared successor edges (strict mode).  Requires
     * ControlStore::resolveFlows() to have run; words declared
     * flowTrapRet() are exempt (their resume point is a trap frame).
     */
    void setFlowCheck(bool on);

    /** @{ Checkpoint/restore: the complete execution state -- PSL,
     *  GPRs, processor registers, micro-PC, decode latches, trap and
     *  micro-call stacks, in-flight memory-op bookkeeping.  The attached
     *  sink and instruction hook are wiring, not state; the restoring
     *  harness re-attaches them. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    enum class State : uint8_t {
        Running,
        ReadStall,
        WriteStall,
        Reissue,    ///< re-issue a trapped memory op
        Halted,
    };

    enum class TrapKind : uint8_t {
        TbMissD, TbMissI, AlignRead, AlignWrite,
    };

    struct PendingMemOp
    {
        enum class Kind : uint8_t { None, Read, PhysRead, Write } kind =
            Kind::None;
        VirtAddr va = 0;
        uint32_t data = 0;
        unsigned bytes = 0;
    };

    struct TrapFrame
    {
        TrapKind kind;
        UAddr trapUpc;      ///< microword that trapped
        UAddr resumeUpc;    ///< where to continue after re-issue
        bool resumeIsEnd;   ///< resume is an end-of-instruction
        PendingMemOp op;    ///< op to re-issue (Kind::None: re-run)
        VirtAddr va;        ///< faulting virtual address
    };

    void runMicroword();
    /** Cold continuation of runMicroword(): IB starvation, memory
     *  microtraps and uTrapRet re-issues, outlined so the common
     *  straight-line cycle stays short and branch-predictable. */
    void microwordEvent();
    void checkDeclaredFlow(const MicroWord &w);
    UAddr resolveNext();
    UAddr endTarget();
    UAddr handlerFor(TrapKind kind) const;
    bool trySpecDispatch(UAddr *target);
    void takeTrap(TrapKind kind, VirtAddr va, const PendingMemOp &op);
    void issueResult(const MemResult &res, const PendingMemOp &op);
    /** Non-Running states: stalls, re-issues, halt.  The Running case
     *  is dispatched inline by cycle(). */
    void cycleSlow();

    /**
     * Count one cycle at a micro-address.  Runs once per machine
     * cycle, so it is inline and test-light: batchOn_ pre-folds
     * "monitor attached + CSR collecting + no flow check + no trace",
     * leaving one predictable branch and a store on the hot path.
     */
    void
    emitCycle(UAddr upc, bool stalled)
    {
        if (batchOn_) {
            batch_[batchN_++] = static_cast<uint32_t>(upc) |
                (stalled ? kCycleStallBit : 0u);
            if (batchN_ == kBatchCap) [[unlikely]]
                flushCycleBatch();
            return;
        }
        if (sink_)
            sink_->count(upc, stalled);
    }

    const ControlStore &cs_;
    MemSystem &mem_;
    InstructionBuffer &ib_;
    IFetch &ifetch_;
    InterruptController &intc_;
    IntervalTimer &timer_;
    HwCounters &hw_;
    CycleSink *sink_ = nullptr;
    UpcMonitor *mon_ = nullptr; ///< set iff sink_ is the UPC monitor
    std::function<void(VirtAddr, uint8_t)> instrHook_;

    /** @{ Decoded-dispatch fast path.  dtab_/dsize_ cache the control
     *  store's flat table (stable: the ROM is fully built before the
     *  EBOX is constructed).  The batch defers monitor increments to
     *  instruction boundaries; mutable because a const reader's sync
     *  (flushCycleBatch) drains it. */
    const DecodedWord *dtab_;
    UAddr dsize_;
    /** Cached opcodeTable().data(): skips the function-local-static
     *  guard check on the per-instruction decode path. */
    const OpcodeInfo *optab_;
    bool legacyDispatch_ = false;
    bool batchOn_ = false;
    static constexpr uint32_t kBatchCap = 128;
    mutable uint32_t batchN_ = 0;
    mutable uint32_t batch_[kBatchCap];
    /** @} */

    State state_ = State::Halted;
    bool halted_ = true;
    bool flowCheck_ = false;
    UAddr upc_ = 0;          ///< microword being executed / retried
    UAddr afterMem_ = 0;     ///< resume address once a stall resolves
    bool afterMemIsEnd_ = false;
    uint32_t gpr_[NumGpr] = {};
    Psl psl_;
    uint32_t spBank_[4] = {};  ///< per-mode stack pointers (inactive)
    uint32_t pr_[64] = {};
    VirtAddr decodePc_ = 0;
    uint32_t md_ = 0;

    // Per-lambda transient flags.
    bool seqSet_ = false;
    UAddr nextUpc_ = 0;
    bool pendingEnd_ = false;
    bool ibFailed_ = false;
    bool memIssued_ = false;
    bool memTrapped_ = false;
    bool reissuePending_ = false;
    bool trapRetSatisfied_ = false;
    MemStatus memStatus_ = MemStatus::Ok;
    PendingMemOp curOp_;
    VirtAddr curTrapVa_ = 0;
    TrapKind curTrapKind_ = TrapKind::TbMissD;

    // Reissue bookkeeping.
    TrapFrame reissueFrame_;

    std::vector<TrapFrame> trapStack_;
    std::vector<UAddr> microStack_; ///< uCall/uRet
    unsigned pendingIntLevel_ = 0;
    uint32_t mcheckCause_ = 0;
};


// ================== decode / specifier dispatch ==================
// Inline: these are the per-instruction and per-specifier services
// the decode microwords (compiled in rom_*.cc) call once or twice per
// instruction; keeping them in the header lets those call sites fold
// the IB peeks and latch stores together.

inline bool
Ebox::decodeOpcode()
{
    if (ib_.avail() < 1) {
        ibFailed_ = true;
        return false;
    }
    uint8_t opc = ib_.peek(0);
    const OpcodeInfo &info = optab_[opc];
    if (!info.valid)
        fault(FaultKind::ReservedInstruction, info.mnemonic);
    ib_.consume(1);
    lat.opcode = opc;
    lat.info = &info;
    lat.instrPc = decodePc_;
    decodePc_ += 1;
    lat.specIndex = 0;
    lat.dstCount = 0;
    lat.dst[0] = DstLatch();
    lat.dst[1] = DstLatch();
    lat.vIsReg = false;
    lat.specIndexed = false;

    ++hw_.instructions;
    if (info.bdispBytes > 0)
        ++hw_.bdispCount;
    TRACE(IDecode, "pc=%08x op=%02x %s mode=%c", lat.instrPc, opc,
          info.mnemonic,
          psl_.cur == CpuMode::Kernel ? 'K' : 'U');
    if (instrHook_)
        instrHook_(lat.instrPc, opc);

    seqSet_ = true;
    if (info.numSpecifiers > 0) {
        UAddr target;
        trySpecDispatch(&target);
        nextUpc_ = target;
    } else {
        nextUpc_ = cs_.entries.exec[static_cast<size_t>(info.flow)];
        if (nextUpc_ == kInvalidUAddr)
            panic("EntryPoints.exec[%s] is unset: opcode %s has no "
                  "execute-flow microcode", info.mnemonic,
                  info.mnemonic);
    }
    return true;
}

inline bool
Ebox::trySpecDispatch(UAddr *target)
{
    upc_assert(lat.specIndex < lat.info->numSpecifiers);
    unsigned pos = lat.specIndex == 0 ? 0 : 1;
    if (ib_.avail() < 1) {
        *target = cs_.entries.specWait[pos];
        return false;
    }
    uint8_t b0 = ib_.peek(0);
    bool indexed = isIndexPrefix(b0);
    unsigned need = indexed ? 2 : 1;
    if (ib_.avail() < need) {
        *target = cs_.entries.specWait[pos];
        return false;
    }
    uint8_t spec_byte = indexed ? ib_.peek(1) : b0;
    if (indexed && isIndexPrefix(spec_byte))
        fault(FaultKind::ReservedAddressingMode, "double index prefix");
    SpecByte sb = decodeSpecByte(spec_byte);
    ib_.consume(need);
    decodePc_ += need;

    const OperandDef &od = lat.info->operands[lat.specIndex];
    lat.specMode = sb.mode;
    lat.specReg = sb.reg;
    lat.specLiteral = sb.literal;
    lat.specAccess = od.access;
    lat.specType = od.type;
    lat.specOpIndex = lat.specIndex;
    lat.specIndexed = indexed;
    lat.specIndexReg = indexed ? (b0 & 0xF) : 0;

    if (indexed &&
        (sb.mode == AddrMode::ShortLiteral ||
         sb.mode == AddrMode::Register ||
         sb.mode == AddrMode::Immediate)) {
        fault(FaultKind::ReservedAddressingMode, "index on non-memory");
    }
    if (sb.mode == AddrMode::ShortLiteral && od.access != Access::Read)
        fault(FaultKind::ReservedAddressingMode, "literal as destination");
    if (sb.mode == AddrMode::Immediate && od.access != Access::Read)
        fault(FaultKind::ReservedAddressingMode, "immediate destination");
    if (sb.mode == AddrMode::Register && od.access == Access::Address)
        fault(FaultKind::ReservedAddressingMode, "register as address");

    ++lat.specIndex;
    ++hw_.specifiers;
    if (lat.specOpIndex == 0)
        ++hw_.firstSpecifiers;
    if (indexed)
        ++hw_.indexedSpecifiers;

    if (indexed) {
        *target = cs_.entries.indexPrefix[pos];
        if (*target == kInvalidUAddr)
            panic("EntryPoints.indexPrefix[%u] is unset: no index-"
                  "prefix routine for position class %u", pos, pos);
    } else {
        SpecAccClass acc = specAccClass(od.access);
        *target = cs_.entries.spec[static_cast<size_t>(sb.mode)][pos]
            [static_cast<size_t>(acc)];
        if (*target == kInvalidUAddr)
            panic("EntryPoints.spec[%s][%u][%u] is unset: no specifier "
                  "routine for mode %s access %u",
                  addrModeName(sb.mode), pos,
                  static_cast<unsigned>(acc), addrModeName(sb.mode),
                  static_cast<unsigned>(od.access));
    }
    return true;
}

inline bool
Ebox::decodeSpec()
{
    UAddr target;
    if (!trySpecDispatch(&target)) {
        ibFailed_ = true;
        return false;
    }
    seqSet_ = true;
    nextUpc_ = target;
    return true;
}

inline void
Ebox::nextSpecOrExec()
{
    seqSet_ = true;
    if (lat.specIndex < lat.info->numSpecifiers) {
        UAddr target;
        trySpecDispatch(&target);
        nextUpc_ = target;
    } else {
        nextUpc_ = cs_.entries.exec[static_cast<size_t>(lat.info->flow)];
        if (nextUpc_ == kInvalidUAddr)
            panic("EntryPoints.exec[%s] is unset: opcode %s has no "
                  "execute-flow microcode", lat.info->mnemonic,
                  lat.info->mnemonic);
    }
}

} // namespace vax

#endif // UPC780_CPU_EBOX_HH
