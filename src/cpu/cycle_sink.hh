/**
 * @file
 * Interface through which the EBOX exposes its micro-PC stream.
 *
 * The UPC histogram monitor implements this.  The interface carries
 * exactly what the hardware monitor could see: the control-store
 * address driving the machine this cycle and whether the cycle was a
 * stall -- nothing else.
 */

#ifndef UPC780_CPU_CYCLE_SINK_HH
#define UPC780_CPU_CYCLE_SINK_HH

#include "ucode/annotations.hh"

namespace vax
{

class CycleSink
{
  public:
    virtual ~CycleSink() = default;

    /**
     * One machine cycle elapsed.
     *
     * @param upc     Control-store address of the microinstruction.
     * @param stalled True if this was a stalled cycle (read, write or
     *                IB stall -- the monitor does not distinguish; the
     *                analysis does, from the annotations).
     */
    virtual void count(UAddr upc, bool stalled) = 0;
};

} // namespace vax

#endif // UPC780_CPU_CYCLE_SINK_HH
