/**
 * @file
 * Instruction tracing.
 *
 * The EBOX exposes an optional per-instruction hook (fired at decode,
 * i.e. at the IID cycle).  InstructionTracer implements it with a
 * bounded ring of disassembled records -- the tool the 1984 authors
 * did NOT have (trace-driven studies are what the paper contrasts its
 * method against), provided here for debugging and for validating the
 * histogram against an exact instruction stream.
 */

#ifndef UPC780_CPU_TRACER_HH
#define UPC780_CPU_TRACER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "arch/disasm.hh"
#include "arch/types.hh"

namespace vax
{

class Cpu780;

/** One traced instruction. */
struct TraceRecord
{
    uint64_t cycle = 0;
    VirtAddr pc = 0;
    uint8_t opcode = 0;
    CpuMode mode = CpuMode::Kernel;
};

/**
 * Bounded instruction-trace ring.
 *
 * Attach with attach(); the records of the most recent instructions
 * are available afterwards, optionally disassembled through the
 * current address mapping.
 */
class InstructionTracer
{
  public:
    explicit InstructionTracer(size_t capacity = 64)
        : capacity_(capacity)
    {
    }

    /** Install the hook on a CPU (replaces any previous hook). */
    void attach(Cpu780 &cpu);

    /** Record one instruction (the hook target). */
    void
    record(uint64_t cycle, VirtAddr pc, uint8_t opcode, CpuMode mode)
    {
        if (ring_.size() == capacity_)
            ring_.pop_front();
        ring_.push_back({cycle, pc, opcode, mode});
        ++total_;
    }

    /** Instructions seen since attach. */
    uint64_t total() const { return total_; }

    /** Records evicted from the ring (total seen minus retained). */
    uint64_t dropped() const { return total_ - ring_.size(); }

    const std::deque<TraceRecord> &records() const { return ring_; }

    /**
     * Render the ring as disassembled text lines using the given
     * byte reader (e.g. a physical reader for unmapped machines).
     * When records were evicted, the first line reports the dropped
     * count so a truncated trace cannot be mistaken for a full one.
     */
    std::vector<std::string> format(const ByteReader &read) const;

    void
    clear()
    {
        ring_.clear();
        total_ = 0;
    }

  private:
    size_t capacity_;
    std::deque<TraceRecord> ring_;
    uint64_t total_ = 0;
};

} // namespace vax

#endif // UPC780_CPU_TRACER_HH
