/**
 * @file
 * Internal processor register numbers (MTPR/MFPR operands).
 *
 * Values follow the VAX architecture where they fit in our 64-entry
 * file; registers the simulator does not model read as zero.
 */

#ifndef UPC780_CPU_PREGS_HH
#define UPC780_CPU_PREGS_HH

#include <cstdint>

namespace vax
{
namespace pr
{

constexpr uint32_t KSP = 0;     ///< kernel stack pointer
constexpr uint32_t USP = 3;     ///< user stack pointer
constexpr uint32_t P0BR = 8;    ///< P0 base register (system VA)
constexpr uint32_t P0LR = 9;    ///< P0 length (pages)
constexpr uint32_t P1BR = 10;
constexpr uint32_t P1LR = 11;
constexpr uint32_t SBR = 12;    ///< system page table base (physical)
constexpr uint32_t SLR = 13;    ///< system page table length
constexpr uint32_t PCBB = 16;   ///< process control block base (physical)
constexpr uint32_t SCBB = 17;   ///< system control block base (physical)
constexpr uint32_t IPL = 18;
constexpr uint32_t SIRR = 20;   ///< software interrupt request (write)
constexpr uint32_t SISR = 21;   ///< software interrupt summary
constexpr uint32_t ICCS = 24;   ///< interval clock control/status
constexpr uint32_t NICR = 25;   ///< next interval count (cycles)
constexpr uint32_t ICR = 26;    ///< interval count (read)
constexpr uint32_t MAPEN = 56;  ///< memory mapping enable
constexpr uint32_t TBIA = 57;   ///< TB invalidate all (write)
constexpr uint32_t TBIS = 58;   ///< TB invalidate single (write VA)

constexpr uint32_t NumPr = 64;

} // namespace pr
} // namespace vax

#endif // UPC780_CPU_PREGS_HH
