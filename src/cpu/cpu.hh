/**
 * @file
 * Cpu780: the assembled machine.
 *
 * Owns the control store (filled by the microcode ROM builder), the
 * memory subsystem, the CPU pipeline (IB, I-Fetch, I-Decode-in-EBOX,
 * EBOX), the interrupt controller and the interval clock, and drives
 * them cycle by cycle.
 */

#ifndef UPC780_CPU_CPU_HH
#define UPC780_CPU_CPU_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/ebox.hh"
#include "cpu/hw_counters.hh"
#include "cpu/ib.hh"
#include "cpu/ifetch.hh"
#include "cpu/interrupts.hh"
#include "mem/mem_system.hh"
#include "ucode/control_store.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

/** Whole-machine configuration. */
struct SimConfig
{
    MemConfig mem;
    uint64_t seed = 0x780;
    /** Instruction-buffer size in bytes (8 on the 11/780). */
    unsigned ibBytes = 8;
    /** Interrupt level of the interval clock. */
    unsigned timerIpl = 22;
    /** Interrupt level of the terminal multiplexer. */
    unsigned terminalIpl = 21;
    /**
     * Strict mode: run the static microcode verifier at construction
     * (panic on any diagnostic) and validate every executed
     * micro-transition against the declared flows.  Also enabled by
     * the UPC780_STRICT environment variable.  Not part of the
     * snapshot fingerprint: it changes what is checked, never what is
     * simulated.
     */
    bool strict = false;
    /**
     * Run the legacy std::function microword engine instead of the
     * decoded dispatch table (A/B equivalence runs; see
     * tests/test_dispatch_equiv.cc).  Like strict, not part of the
     * snapshot fingerprint: it selects an engine, never a different
     * simulation -- which is exactly what the A/B checkpoint test
     * relies on.
     */
    bool legacyDispatch = false;
};

class Cpu780
{
  public:
    explicit Cpu780(const SimConfig &cfg = SimConfig());
    ~Cpu780();

    /** Begin execution at pc (kernel mode, mapping per MemSystem). */
    void reset(VirtAddr pc, CpuMode mode = CpuMode::Kernel);

    /** Advance the whole machine one 200 ns cycle.  Inline: this is
     *  the driver-facing inner loop, and the common no-stall cycle
     *  should be one straight-line path through the components' own
     *  inlined fast paths. */
    void
    tick()
    {
        ebox_->cycle();
        ifetch_.cycle(ebox_->psl().cur);
        mem_.tick();
        if (timer_.tick()) [[unlikely]]
            intc_.postDevice(cfg_.timerIpl);
        ++hw_.cycles;
    }

    /**
     * Run until HALT or the cycle limit.
     * @return True if the machine halted.
     */
    bool run(uint64_t max_cycles);

    bool halted() const { return ebox_->halted(); }
    uint64_t cycles() const { return hw_.cycles; }

    /** @{ Attach the UPC monitor (devirtualized, batched fast path)
     *  or any generic cycle sink (virtual per-cycle calls). */
    void setCycleSink(CycleSink *sink) { ebox_->setCycleSink(sink); }
    void setCycleSink(UpcMonitor *mon) { ebox_->setCycleSink(mon); }
    /** @} */

    /** Register the whole machine's statistics under prefix
     *  (hardware counters, CPI, memory subsystem). */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** @{ Checkpoint/restore of the whole machine.  save() writes
     *  the configuration fingerprint plus every component's mutable
     *  state; restore() must be called on a machine built from the
     *  same SimConfig (the fingerprint is verified, mismatch is a
     *  SnapshotError) and afterwards the cycle stream continues
     *  bit-identically to the saved machine's future. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

    /** Post a device interrupt (terminals, disks...). */
    void
    postDeviceInterrupt(unsigned level)
    {
        intc_.postDevice(level);
    }

    /** @{ Component access. */
    Ebox &ebox() { return *ebox_; }
    MemSystem &mem() { return mem_; }
    InterruptController &intc() { return intc_; }
    IntervalTimer &timer() { return timer_; }
    HwCounters &hw() { return hw_; }
    const HwCounters &hw() const { return hw_; }
    ControlStore &controlStore() { return cs_; }
    const ControlStore &controlStore() const { return cs_; }
    InstructionBuffer &ib() { return ib_; }
    IFetch &ifetch() { return ifetch_; }
    const SimConfig &config() const { return cfg_; }
    /** @} */

  private:
    SimConfig cfg_;
    ControlStore cs_;
    MemSystem mem_;
    InstructionBuffer ib_;
    IFetch ifetch_;
    InterruptController intc_;
    IntervalTimer timer_;
    HwCounters hw_;
    std::unique_ptr<Ebox> ebox_;
};

} // namespace vax

#endif // UPC780_CPU_CPU_HH
