/**
 * @file
 * Checkpoint/restore for the CPU side of the machine: hardware
 * counters, IB, I-Fetch, interrupt controller, interval timer, the
 * EBOX and the assembling Cpu780.
 *
 * Layout discipline: leaf components write raw fields in declaration
 * order; Cpu780::save owns the section structure ("cpu" for the small
 * components, "cpu.ebox" for the execution engine, then the memory
 * subsystem's own sections).  Every field restored must be written --
 * Deserializer::endSection rejects leftover bytes, which is what turns
 * writer/reader skew into a diagnosis instead of a corrupted machine.
 */

#include <cstddef>

#include "arch/opcodes.hh"
#include "cpu/cpu.hh"
#include "support/snapshot.hh"

namespace vax
{

// ====================== HwCounters ======================

void
HwCounters::save(snap::Serializer &s) const
{
    s.putU64(cycles);
    s.putU64(instructions);
    s.putU64(specifiers);
    s.putU64(firstSpecifiers);
    s.putU64(indexedSpecifiers);
    s.putU64(bdispBytes);
    s.putU64(bdispCount);
    s.putU64(immediateBytes);
    s.putU64(dispBytes);
    s.putU64(unalignedRefs);
    s.putU64(microTraps);
    s.putU64(interrupts);
    s.putU64(contextSwitches);
    s.putU64(chmkCalls);
}

void
HwCounters::restore(snap::Deserializer &d)
{
    cycles = d.getU64();
    instructions = d.getU64();
    specifiers = d.getU64();
    firstSpecifiers = d.getU64();
    indexedSpecifiers = d.getU64();
    bdispBytes = d.getU64();
    bdispCount = d.getU64();
    immediateBytes = d.getU64();
    dispBytes = d.getU64();
    unalignedRefs = d.getU64();
    microTraps = d.getU64();
    interrupts = d.getU64();
    contextSwitches = d.getU64();
    chmkCalls = d.getU64();
}

// ====================== InstructionBuffer ======================

void
InstructionBuffer::save(snap::Serializer &s) const
{
    s.putU32(capacity());
    s.putU32(head_);
    s.putU32(count_);
    s.putU32(pendingSkip_);
    s.putBytes(bytes_.data(), bytes_.size());
}

void
InstructionBuffer::restore(snap::Deserializer &d)
{
    d.expectU32(capacity(), "IB capacity");
    head_ = d.getU32();
    count_ = d.getU32();
    pendingSkip_ = d.getU32();
    d.getBytes(bytes_.data(), bytes_.size());
}

// ====================== IFetch ======================

void
IFetch::save(snap::Serializer &s) const
{
    s.putU32(viba_);
    s.putU32(redirectDelay_);
    s.putBool(itbMiss_);
    s.putU32(itbMissVa_);
    s.putBool(awaitingFill_);
    s.putBool(discardFill_);
}

void
IFetch::restore(snap::Deserializer &d)
{
    viba_ = d.getU32();
    redirectDelay_ = d.getU32();
    itbMiss_ = d.getBool();
    itbMissVa_ = d.getU32();
    awaitingFill_ = d.getBool();
    discardFill_ = d.getBool();
}

// ====================== InterruptController ======================

void
InterruptController::save(snap::Serializer &s) const
{
    s.putU32(deviceLines_);
    s.putU16(sisr_);
    s.putU64(devicePosts_);
    s.putU64(swRequests_);
}

void
InterruptController::restore(snap::Deserializer &d)
{
    deviceLines_ = d.getU32();
    sisr_ = d.getU16();
    devicePosts_ = d.getU64();
    swRequests_ = d.getU64();
}

// ====================== IntervalTimer ======================

void
IntervalTimer::save(snap::Serializer &s) const
{
    s.putU32(iccs_);
    s.putU32(nicr_);
    s.putU32(icr_);
}

void
IntervalTimer::restore(snap::Deserializer &d)
{
    iccs_ = d.getU32();
    nicr_ = d.getU32();
    icr_ = d.getU32();
}

// ====================== Ebox ======================

namespace
{

void
savePendingOp(snap::Serializer &s, uint8_t kind, VirtAddr va,
              uint32_t data, unsigned bytes)
{
    s.putU8(kind);
    s.putU32(va);
    s.putU32(data);
    s.putU32(static_cast<uint32_t>(bytes));
}

} // anonymous namespace

void
Ebox::save(snap::Serializer &s) const
{
    auto putOp = [&](const PendingMemOp &op) {
        savePendingOp(s, static_cast<uint8_t>(op.kind), op.va, op.data,
                      op.bytes);
    };
    auto putFrame = [&](const TrapFrame &f) {
        s.putU8(static_cast<uint8_t>(f.kind));
        s.putU16(f.trapUpc);
        s.putU16(f.resumeUpc);
        s.putBool(f.resumeIsEnd);
        putOp(f.op);
        s.putU32(f.va);
    };

    // The cycle batch is monitor data, not EBOX state: bank it now so
    // the snapshot never has counts in flight.
    flushCycleBatch();

    // Sequencer and architectural state.
    s.putU8(static_cast<uint8_t>(state_));
    s.putBool(halted_);
    s.putU16(upc_);
    s.putU16(afterMem_);
    s.putBool(afterMemIsEnd_);
    for (unsigned i = 0; i < NumGpr; ++i)
        s.putU32(gpr_[i]);
    s.putU32(psl_.pack());
    for (unsigned i = 0; i < 4; ++i)
        s.putU32(spBank_[i]);
    for (unsigned i = 0; i < 64; ++i)
        s.putU32(pr_[i]);
    s.putU32(decodePc_);
    s.putU32(md_);

    // Per-lambda transient flags (a checkpoint can land mid-stall).
    s.putBool(seqSet_);
    s.putU16(nextUpc_);
    s.putBool(pendingEnd_);
    s.putBool(ibFailed_);
    s.putBool(memIssued_);
    s.putBool(memTrapped_);
    s.putBool(reissuePending_);
    s.putBool(trapRetSatisfied_);
    s.putU8(static_cast<uint8_t>(memStatus_));
    putOp(curOp_);
    s.putU32(curTrapVa_);
    s.putU8(static_cast<uint8_t>(curTrapKind_));

    putFrame(reissueFrame_);
    s.putU64(trapStack_.size());
    for (const TrapFrame &f : trapStack_)
        putFrame(f);
    s.putU64(microStack_.size());
    for (UAddr a : microStack_)
        s.putU16(a);
    s.putU32(pendingIntLevel_);
    s.putU32(mcheckCause_);

    // Decode and operand latches.
    s.putU8(lat.opcode);
    s.putBool(lat.info != nullptr);
    s.putU32(lat.instrPc);
    s.putU8(lat.specIndex);
    s.putU8(static_cast<uint8_t>(lat.specMode));
    s.putU8(lat.specReg);
    s.putU8(lat.specLiteral);
    s.putU8(static_cast<uint8_t>(lat.specAccess));
    s.putU8(static_cast<uint8_t>(lat.specType));
    s.putU8(lat.specOpIndex);
    s.putBool(lat.specIndexed);
    s.putU8(lat.specIndexReg);
    s.putU32(lat.idxVal);
    for (unsigned i = 0; i < 6; ++i)
        s.putU32(lat.op[i]);
    for (unsigned i = 0; i < 6; ++i)
        s.putU32(lat.opHi[i]);
    s.putU8(lat.dstCount);
    for (unsigned i = 0; i < 2; ++i) {
        s.putU8(static_cast<uint8_t>(lat.dst[i].kind));
        s.putU8(lat.dst[i].reg);
        s.putU32(lat.dst[i].addr);
        s.putU8(static_cast<uint8_t>(lat.dst[i].type));
    }
    s.putBool(lat.vIsReg);
    s.putU8(lat.vReg);
    s.putU32(lat.vAddr);
    s.putU32(lat.va);
    s.putU32(lat.q);
    for (unsigned i = 0; i < 8; ++i)
        s.putU32(lat.t[i]);
    s.putU32(lat.sc);
    s.putBytes(lat.strBuf, sizeof(lat.strBuf));
    s.putI64(lat.wide[0]);
    s.putI64(lat.wide[1]);
    for (unsigned i = 0; i < 6; ++i)
        s.putU32(lat.mm[i]);
    for (unsigned i = 0; i < 4; ++i)
        s.putU32(lat.alg[i]);
}

void
Ebox::restore(snap::Deserializer &d)
{
    auto getOp = [&](PendingMemOp *op) {
        op->kind = static_cast<PendingMemOp::Kind>(d.getU8());
        op->va = d.getU32();
        op->data = d.getU32();
        op->bytes = d.getU32();
    };
    auto getFrame = [&](TrapFrame *f) {
        f->kind = static_cast<TrapKind>(d.getU8());
        f->trapUpc = d.getU16();
        f->resumeUpc = d.getU16();
        f->resumeIsEnd = d.getBool();
        getOp(&f->op);
        f->va = d.getU32();
    };

    // Counts batched before the restore were really simulated; bank
    // them into the attached monitor before the state is replaced.
    flushCycleBatch();

    state_ = static_cast<State>(d.getU8());
    halted_ = d.getBool();
    upc_ = d.getU16();
    afterMem_ = d.getU16();
    afterMemIsEnd_ = d.getBool();
    for (unsigned i = 0; i < NumGpr; ++i)
        gpr_[i] = d.getU32();
    psl_ = Psl::unpack(d.getU32());
    for (unsigned i = 0; i < 4; ++i)
        spBank_[i] = d.getU32();
    for (unsigned i = 0; i < 64; ++i)
        pr_[i] = d.getU32();
    decodePc_ = d.getU32();
    md_ = d.getU32();

    seqSet_ = d.getBool();
    nextUpc_ = d.getU16();
    pendingEnd_ = d.getBool();
    ibFailed_ = d.getBool();
    memIssued_ = d.getBool();
    memTrapped_ = d.getBool();
    reissuePending_ = d.getBool();
    trapRetSatisfied_ = d.getBool();
    memStatus_ = static_cast<MemStatus>(d.getU8());
    getOp(&curOp_);
    curTrapVa_ = d.getU32();
    curTrapKind_ = static_cast<TrapKind>(d.getU8());

    getFrame(&reissueFrame_);
    uint64_t nTraps = d.getU64();
    if (nTraps > 64)
        throw snap::SnapshotError(
            "snapshot: trap stack depth " + std::to_string(nTraps) +
            " is implausible (corrupt cpu.ebox section)");
    trapStack_.clear();
    trapStack_.resize(static_cast<size_t>(nTraps));
    for (TrapFrame &f : trapStack_)
        getFrame(&f);
    uint64_t nCalls = d.getU64();
    if (nCalls > 4096)
        throw snap::SnapshotError(
            "snapshot: micro-call stack depth " +
            std::to_string(nCalls) +
            " is implausible (corrupt cpu.ebox section)");
    microStack_.clear();
    microStack_.resize(static_cast<size_t>(nCalls));
    for (UAddr &a : microStack_)
        a = d.getU16();
    pendingIntLevel_ = d.getU32();
    mcheckCause_ = d.getU32();

    lat.opcode = d.getU8();
    lat.info = d.getBool() ? &opcodeInfo(lat.opcode) : nullptr;
    lat.instrPc = d.getU32();
    lat.specIndex = d.getU8();
    lat.specMode = static_cast<AddrMode>(d.getU8());
    lat.specReg = d.getU8();
    lat.specLiteral = d.getU8();
    lat.specAccess = static_cast<Access>(d.getU8());
    lat.specType = static_cast<DataType>(d.getU8());
    lat.specOpIndex = d.getU8();
    lat.specIndexed = d.getBool();
    lat.specIndexReg = d.getU8();
    lat.idxVal = d.getU32();
    for (unsigned i = 0; i < 6; ++i)
        lat.op[i] = d.getU32();
    for (unsigned i = 0; i < 6; ++i)
        lat.opHi[i] = d.getU32();
    lat.dstCount = d.getU8();
    for (unsigned i = 0; i < 2; ++i) {
        lat.dst[i].kind = static_cast<DstLatch::Kind>(d.getU8());
        lat.dst[i].reg = d.getU8();
        lat.dst[i].addr = d.getU32();
        lat.dst[i].type = static_cast<DataType>(d.getU8());
    }
    lat.vIsReg = d.getBool();
    lat.vReg = d.getU8();
    lat.vAddr = d.getU32();
    lat.va = d.getU32();
    lat.q = d.getU32();
    for (unsigned i = 0; i < 8; ++i)
        lat.t[i] = d.getU32();
    lat.sc = d.getU32();
    d.getBytes(lat.strBuf, sizeof(lat.strBuf));
    lat.wide[0] = d.getI64();
    lat.wide[1] = d.getI64();
    for (unsigned i = 0; i < 6; ++i)
        lat.mm[i] = d.getU32();
    for (unsigned i = 0; i < 4; ++i)
        lat.alg[i] = d.getU32();

    // The restore may land with a different monitor/trace context
    // than the one the snapshot was taken under.
    refreshBatchOn();
}

// ====================== Cpu780 ======================

void
Cpu780::save(snap::Serializer &s) const
{
    s.beginSection("cpu");
    // Configuration fingerprint: a snapshot must only be restored
    // into a machine built from the same SimConfig.
    s.putU64(cfg_.seed);
    s.putU32(cfg_.ibBytes);
    s.putU32(cfg_.timerIpl);
    s.putU32(cfg_.terminalIpl);
    hw_.save(s);
    ib_.save(s);
    ifetch_.save(s);
    intc_.save(s);
    timer_.save(s);
    s.endSection();

    s.beginSection("cpu.ebox");
    ebox_->save(s);
    s.endSection();

    mem_.save(s);
}

void
Cpu780::restore(snap::Deserializer &d)
{
    d.beginSection("cpu");
    d.expectU64(cfg_.seed, "machine seed");
    d.expectU32(cfg_.ibBytes, "IB size");
    d.expectU32(cfg_.timerIpl, "timer IPL");
    d.expectU32(cfg_.terminalIpl, "terminal IPL");
    hw_.restore(d);
    ib_.restore(d);
    ifetch_.restore(d);
    intc_.restore(d);
    timer_.restore(d);
    d.endSection();

    d.beginSection("cpu.ebox");
    ebox_->restore(d);
    d.endSection();

    mem_.restore(d);
}

} // namespace vax
