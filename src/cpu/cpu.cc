#include "cpu/cpu.hh"

#include <cstdlib>

#include "analysis/ulint.hh"
#include "support/logging.hh"
#include "support/sim_error.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "ucode/rom.hh"

namespace vax
{

Cpu780::Cpu780(const SimConfig &cfg)
    : cfg_(cfg), mem_(cfg.mem, cfg.seed), ib_(cfg.ibBytes),
      ifetch_(ib_, mem_)
{
    buildMicrocodeRom(cs_);
    ebox_ = std::make_unique<Ebox>(cs_, mem_, ib_, ifetch_, intc_,
                                   timer_, hw_);
    // Stamp this thread's trace lines with this machine's cycle
    // counter (the most recently constructed machine wins; reference
    // machines built only for their control store never tick).
    trace::setCycleCounter(&hw_.cycles);
    // Likewise let guarded-execution errors name the microword that
    // was executing when they fired.
    guard::setMicroPc(ebox_->upcPtr());
    if (cfg_.strict || std::getenv("UPC780_STRICT") != nullptr) {
        LintReport lint = lintControlStore(cs_);
        if (!lint.clean())
            panic("strict mode: the microcode verifier found %zu "
                  "diagnostic(s):\n%s",
                  lint.diags.size(), lint.text().c_str());
        ebox_->setFlowCheck(true);
    }
    if (cfg_.legacyDispatch)
        ebox_->setLegacyDispatch(true);
}

Cpu780::~Cpu780()
{
    guard::clearMicroPc(ebox_->upcPtr());
    trace::clearCycleCounter(&hw_.cycles);
}

void
Cpu780::regStats(stats::Registry &r, const std::string &prefix) const
{
    hw_.regStats(r, prefix);
    const HwCounters *hw = &hw_;
    r.addFormula(prefix + ".cpi", "cycles per instruction", [hw] {
        return hw->instructions
            ? double(hw->cycles) / double(hw->instructions)
            : 0.0;
    });
    mem_.regStats(r, prefix + ".mem");
}

void
Cpu780::reset(VirtAddr pc, CpuMode mode)
{
    ebox_->reset(pc, mode);
}

bool
Cpu780::run(uint64_t max_cycles)
{
    for (uint64_t i = 0; i < max_cycles; ++i) {
        if (ebox_->halted())
            return true;
        tick();
    }
    return ebox_->halted();
}

} // namespace vax
