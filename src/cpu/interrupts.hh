/**
 * @file
 * Interrupt controller and interval timer.
 *
 * Device interrupts arrive on levels 16-23 (we use 22 for the interval
 * clock and 21 for terminals); software interrupts on levels 1-15 via
 * the SIRR/SISR mechanism.  An interrupt is delivered between
 * instructions when its level exceeds the PSL IPL; delivery clears the
 * request (devices in this model are edge-like: the handler re-arms
 * through its mailbox protocol).
 */

#ifndef UPC780_CPU_INTERRUPTS_HH
#define UPC780_CPU_INTERRUPTS_HH

#include <bit>
#include <cstdint>

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

class InterruptController
{
  public:
    /** Assert a device interrupt (levels 16-31). */
    void postDevice(unsigned level);

    /** Request a software interrupt (levels 1-15): sets a SISR bit. */
    void requestSoftware(unsigned level);

    uint16_t sisr() const { return sisr_; }
    void setSisr(uint16_t v) { sisr_ = v & 0xFFFE; }

    /**
     * Highest pending level strictly above ipl, or -1.
     * Does not clear anything.  Runs at every instruction boundary,
     * so it is a single bit scan over the merged request lines rather
     * than a level-by-level walk.
     */
    int
    pendingAbove(unsigned ipl) const
    {
        if (ipl >= 31)
            return -1;
        uint32_t above = (deviceLines_ | sisr_) & (~0u << (ipl + 1));
        return above ? 31 - std::countl_zero(above) : -1;
    }

    /** Clear the request being delivered. */
    void acknowledge(unsigned level);

    uint64_t devicePosts() const { return devicePosts_; }
    uint64_t softwareRequests() const { return swRequests_; }

    /** @{ Checkpoint/restore. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    uint32_t deviceLines_ = 0;  ///< bit per level 16-31
    uint16_t sisr_ = 0;         ///< bit per level 1-15
    uint64_t devicePosts_ = 0;
    uint64_t swRequests_ = 0;
};

/**
 * The interval clock.  NICR holds the interval in machine cycles;
 * while ICCS<0> (run) is set, the counter counts down and fires when
 * it reaches zero, then reloads.  ICCS<6> enables the interrupt.
 */
class IntervalTimer
{
  public:
    /** Advance one cycle; true if the clock fired with ints enabled.
     *  Inline: this sits on the per-cycle path and is a handful of
     *  predictable tests either way the run bit goes. */
    bool
    tick()
    {
        if (!(iccs_ & runBit))
            return false;
        if (icr_ == 0)
            icr_ = nicr_;
        if (icr_ == 0)
            return false;
        if (--icr_ == 0) {
            icr_ = nicr_;
            return (iccs_ & intEnableBit) != 0;
        }
        return false;
    }

    void setIccs(uint32_t v);
    uint32_t iccs() const { return iccs_; }
    void
    setNicr(uint32_t v)
    {
        nicr_ = v;
        icr_ = v;
    }
    uint32_t nicr() const { return nicr_; }
    uint32_t icr() const { return icr_; }

    static constexpr uint32_t runBit = 1;
    static constexpr uint32_t intEnableBit = 1 << 6;

    /** @{ Checkpoint/restore. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    uint32_t iccs_ = 0;
    uint32_t nicr_ = 0;
    uint32_t icr_ = 0;
};

} // namespace vax

#endif // UPC780_CPU_INTERRUPTS_HH
