#include "cpu/interrupts.hh"

#include "support/logging.hh"

namespace vax
{

void
InterruptController::postDevice(unsigned level)
{
    upc_assert(level >= 16 && level < 32);
    deviceLines_ |= 1u << level;
    ++devicePosts_;
}

void
InterruptController::requestSoftware(unsigned level)
{
    upc_assert(level >= 1 && level < 16);
    sisr_ |= static_cast<uint16_t>(1u << level);
    ++swRequests_;
}

int
InterruptController::pendingAbove(unsigned ipl) const
{
    for (int level = 31; level > static_cast<int>(ipl); --level) {
        if (level >= 16) {
            if (deviceLines_ & (1u << level))
                return level;
        } else if (level >= 1) {
            if (sisr_ & (1u << level))
                return level;
        }
    }
    return -1;
}

void
InterruptController::acknowledge(unsigned level)
{
    if (level >= 16)
        deviceLines_ &= ~(1u << level);
    else
        sisr_ &= static_cast<uint16_t>(~(1u << level));
}

bool
IntervalTimer::tick()
{
    if (!(iccs_ & runBit))
        return false;
    if (icr_ == 0)
        icr_ = nicr_;
    if (icr_ == 0)
        return false;
    if (--icr_ == 0) {
        icr_ = nicr_;
        return (iccs_ & intEnableBit) != 0;
    }
    return false;
}

void
IntervalTimer::setIccs(uint32_t v)
{
    iccs_ = v;
    if (v & runBit && icr_ == 0)
        icr_ = nicr_;
}

} // namespace vax
