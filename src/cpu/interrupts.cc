#include "cpu/interrupts.hh"

#include "support/logging.hh"

namespace vax
{

void
InterruptController::postDevice(unsigned level)
{
    upc_assert(level >= 16 && level < 32);
    deviceLines_ |= 1u << level;
    ++devicePosts_;
}

void
InterruptController::requestSoftware(unsigned level)
{
    upc_assert(level >= 1 && level < 16);
    sisr_ |= static_cast<uint16_t>(1u << level);
    ++swRequests_;
}

void
InterruptController::acknowledge(unsigned level)
{
    if (level >= 16)
        deviceLines_ &= ~(1u << level);
    else
        sisr_ &= static_cast<uint16_t>(~(1u << level));
}

void
IntervalTimer::setIccs(uint32_t v)
{
    iccs_ = v;
    if (v & runBit && icr_ == 0)
        icr_ = nicr_;
}

} // namespace vax
