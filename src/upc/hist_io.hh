/**
 * @file
 * Histogram persistence.
 *
 * The paper's conclusion emphasizes that the raw UPC histogram is a
 * reusable database: "the answers to many questions concerning the
 * operation of the 11/780 running the same workload can be obtained
 * simply by doing additional interpretation of the raw histogram
 * data."  These helpers save a histogram (with the microcode
 * annotations that make it interpretable) to CSV and load it back for
 * offline analysis.
 */

#ifndef UPC780_UPC_HIST_IO_HH
#define UPC780_UPC_HIST_IO_HH

#include <string>

#include "ucode/control_store.hh"
#include "upc/monitor.hh"

namespace vax
{

/**
 * Write histogram counts to a CSV file.
 *
 * Columns: upc, name, row, mem, ib, normal, stalled.  Locations with
 * no counts are omitted.  Returns false on I/O failure.
 */
bool saveHistogramCsv(const std::string &path, const Histogram &hist,
                      const ControlStore &cs);

/**
 * Load histogram counts from a CSV produced by saveHistogramCsv.
 *
 * Only the upc/normal/stalled columns are consumed; annotations come
 * from the (identical, deterministically built) control store.
 * Returns false on I/O or format failure.
 */
bool loadHistogramCsv(const std::string &path, Histogram *hist);

} // namespace vax

#endif // UPC780_UPC_HIST_IO_HH
