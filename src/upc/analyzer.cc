#include "upc/analyzer.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace vax
{

namespace
{

/** PC-changing class of a flow (mirrors the opcode table). */
PcChangeKind
flowPck(ExecFlow f)
{
    switch (f) {
      case ExecFlow::BCond:    return PcChangeKind::SimpleCond;
      case ExecFlow::Sob:
      case ExecFlow::Aob:
      case ExecFlow::Acb:      return PcChangeKind::LoopBranch;
      case ExecFlow::Blb:      return PcChangeKind::LowBitTest;
      case ExecFlow::Bsb:
      case ExecFlow::Jsb:
      case ExecFlow::Rsb:      return PcChangeKind::SubrCallRet;
      case ExecFlow::Jmp:      return PcChangeKind::Uncond;
      case ExecFlow::Case:     return PcChangeKind::CaseBranch;
      case ExecFlow::BitBr:
      case ExecFlow::BitBrMod: return PcChangeKind::BitBranch;
      case ExecFlow::CallG:
      case ExecFlow::CallS:
      case ExecFlow::Ret:      return PcChangeKind::ProcCallRet;
      case ExecFlow::Chmk:
      case ExecFlow::Rei:      return PcChangeKind::SystemBr;
      default:                 return PcChangeKind::None;
    }
}

/** Classes whose members branch unconditionally (taken == entered). */
bool
alwaysTaken(PcChangeKind k)
{
    switch (k) {
      case PcChangeKind::SubrCallRet:
      case PcChangeKind::Uncond:
      case PcChangeKind::CaseBranch:
      case PcChangeKind::ProcCallRet:
      case PcChangeKind::SystemBr:
        return true;
      default:
        return false;
    }
}

/** Flows whose instructions carry a branch displacement field. */
bool
flowHasBdisp(ExecFlow f)
{
    switch (f) {
      case ExecFlow::BCond:
      case ExecFlow::Sob:
      case ExecFlow::Aob:
      case ExecFlow::Acb:
      case ExecFlow::Blb:
      case ExecFlow::Bsb:
      case ExecFlow::BitBr:
      case ExecFlow::BitBrMod:
        return true;
      default:
        return false;
    }
}

bool
isAlignmentWord(const UAnnotation &a)
{
    return a.row == Row::MemMgmt &&
        std::strncmp(a.name, "MM.align", 8) == 0;
}

} // anonymous namespace

HistogramAnalyzer::HistogramAnalyzer(const ControlStore &cs,
                                     const Histogram &hist)
    : cs_(cs), hist_(hist)
{
    classify();
}

HistogramAnalyzer::HistogramAnalyzer(
    const ControlStore &cs, const std::vector<const Histogram *> &parts,
    const std::vector<uint64_t> &weights)
    : cs_(cs),
      owned_(std::make_unique<Histogram>(
          weightedComposite(parts, weights))),
      hist_(*owned_)
{
    classify();
}

void
HistogramAnalyzer::classify()
{
    for (UAddr a = 0; a < cs_.size(); ++a) {
        const UAnnotation &ann = cs_.annotation(a);
        uint64_t n = hist_.normal[a];
        uint64_t s = hist_.stalled[a];
        size_t row = static_cast<size_t>(ann.row);

        // Classify cycles into the Table 8 columns via the shared
        // Row x TimeCol mapping (ucode/annotations.hh), the same one
        // the static verifier proves total over the reachable store.
        TimeColPair cols = timeColsFor(ann);
        cycles_[row][static_cast<size_t>(cols.normal)] += n;
        if (s) {
            if (!cols.stallLegal) {
                panic("stalled cycles at %s, which neither references "
                      "memory nor requests IB bytes", ann.name);
            }
            cycles_[row][static_cast<size_t>(cols.stalled)] += s;
        }
        totalCycles_ += n + s;

        // Memory operations per row (Table 5): every normal cycle of
        // a memory microword is one reference.
        if (ann.mem == UMemKind::Read)
            reads_[row] += n;
        else if (ann.mem == UMemKind::Write)
            writes_[row] += n;

        if (ann.row == Row::MemMgmt && !isAlignmentWord(ann)) {
            tbServiceCycles_ += n + s;
            tbServiceStalls_ += s;
        }

        // Event marks.
        switch (ann.mark) {
          case UMark::Iid:
            instructions_ += n;
            break;
          case UMark::SpecModeEntry:
            specEntries_[static_cast<size_t>(ann.specMode)]
                [ann.spec1 ? 0 : 1] += n;
            break;
          case UMark::SpecIndexed:
            indexEntries_[ann.spec1 ? 0 : 1] += n;
            break;
          case UMark::ExecEntry:
            flowEntries_[static_cast<size_t>(ann.flow)] += n;
            break;
          case UMark::CtxSwitch:
            // LDPCTX: both the flow entry and the context switch.
            flowEntries_[static_cast<size_t>(ann.flow)] += n;
            contextSwitches_ += n;
            break;
          case UMark::BranchTaken:
            taken_[static_cast<size_t>(ann.pck)] += n;
            break;
          case UMark::SwIntRequest:
            swIntRequests_ += n;
            break;
          case UMark::InterruptEntry:
            interrupts_ += n;
            break;
          case UMark::TbMissD:
            tbMissD_ += n;
            break;
          case UMark::TbMissI:
            tbMissI_ += n;
            break;
          case UMark::UnalignedEntry:
            unaligned_ += n;
            break;
          default:
            break;
        }
    }
}

double
HistogramAnalyzer::cell(Row r, TimeCol c) const
{
    return perInstr(static_cast<double>(
        cycles_[static_cast<size_t>(r)][static_cast<size_t>(c)]));
}

double
HistogramAnalyzer::rowTotal(Row r) const
{
    uint64_t sum = 0;
    for (size_t c = 0; c < numCols; ++c)
        sum += cycles_[static_cast<size_t>(r)][c];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::colTotal(TimeCol c) const
{
    uint64_t sum = 0;
    for (size_t r = 0; r < numRows; ++r)
        sum += cycles_[r][static_cast<size_t>(c)];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::groupFraction(Group g) const
{
    uint64_t sum = 0;
    const auto &table = opcodeTable();
    // Collect the flows belonging to the group once.
    std::array<bool, static_cast<size_t>(ExecFlow::NumFlows)> in{};
    for (const auto &info : table)
        if (info.valid && info.group == g)
            in[static_cast<size_t>(info.flow)] = true;
    for (size_t f = 0; f < in.size(); ++f)
        if (in[f])
            sum += flowEntries_[f];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::pcChangeFraction(PcChangeKind k) const
{
    uint64_t sum = 0;
    for (size_t f = 0;
         f < static_cast<size_t>(ExecFlow::NumFlows); ++f) {
        if (flowPck(static_cast<ExecFlow>(f)) == k)
            sum += flowEntries_[f];
    }
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::takenFraction(PcChangeKind k) const
{
    double entered = pcChangeFraction(k);
    if (entered == 0.0)
        return 0.0;
    if (alwaysTaken(k))
        return 1.0;
    double took = perInstr(
        static_cast<double>(taken_[static_cast<size_t>(k)]));
    return took / entered;
}

double
HistogramAnalyzer::spec1PerInstr() const
{
    // Indexed first specifiers dispatch through the SPEC1 index word
    // but are processed by the SPEC2-6 base routine (microcode
    // sharing); count them as first specifiers here.
    uint64_t sum = indexEntries_[0];
    for (size_t m = 0;
         m < static_cast<size_t>(AddrMode::NumModes); ++m)
        sum += specEntries_[m][0];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::spec26PerInstr() const
{
    uint64_t sum = 0;
    for (size_t m = 0;
         m < static_cast<size_t>(AddrMode::NumModes); ++m)
        sum += specEntries_[m][1];
    // Subtract the indexed first specifiers routed into the SPEC2-6
    // base routines.
    sum -= indexEntries_[0];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::bdispPerInstr() const
{
    uint64_t sum = 0;
    for (size_t f = 0;
         f < static_cast<size_t>(ExecFlow::NumFlows); ++f) {
        if (flowHasBdisp(static_cast<ExecFlow>(f)))
            sum += flowEntries_[f];
    }
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::specCategoryFraction(SpecCategory cat, int pos) const
{
    uint64_t in_cat = 0;
    uint64_t total = 0;
    for (size_t m = 0;
         m < static_cast<size_t>(AddrMode::NumModes); ++m) {
        SpecCategory c = specCategory(static_cast<AddrMode>(m));
        for (int p = 0; p < 2; ++p) {
            if (pos != 2 && p != pos)
                continue;
            total += specEntries_[m][p];
            if (c == cat)
                in_cat += specEntries_[m][p];
        }
    }
    return total ? static_cast<double>(in_cat) / total : 0.0;
}

double
HistogramAnalyzer::indexedFraction(int pos) const
{
    uint64_t idx = 0;
    uint64_t total = 0;
    for (int p = 0; p < 2; ++p) {
        if (pos != 2 && p != pos)
            continue;
        idx += indexEntries_[p];
    }
    for (size_t m = 0;
         m < static_cast<size_t>(AddrMode::NumModes); ++m) {
        for (int p = 0; p < 2; ++p) {
            if (pos != 2 && p != pos)
                continue;
            total += specEntries_[m][p];
        }
    }
    // Indexed specifiers pass through both the index word and a base
    // routine entry, so the base-entry total already includes them.
    return total ? static_cast<double>(idx) / total : 0.0;
}

double
HistogramAnalyzer::readsPerInstr(Row r) const
{
    return perInstr(
        static_cast<double>(reads_[static_cast<size_t>(r)]));
}

double
HistogramAnalyzer::writesPerInstr(Row r) const
{
    return perInstr(
        static_cast<double>(writes_[static_cast<size_t>(r)]));
}

double
HistogramAnalyzer::totalReadsPerInstr() const
{
    uint64_t sum = 0;
    for (size_t r = 0; r < numRows; ++r)
        sum += reads_[r];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::totalWritesPerInstr() const
{
    uint64_t sum = 0;
    for (size_t r = 0; r < numRows; ++r)
        sum += writes_[r];
    return perInstr(static_cast<double>(sum));
}

double
HistogramAnalyzer::headwaySwIntRequests() const
{
    return swIntRequests_
        ? static_cast<double>(instructions_) / swIntRequests_ : 0.0;
}

double
HistogramAnalyzer::headwayInterrupts() const
{
    return interrupts_
        ? static_cast<double>(instructions_) / interrupts_ : 0.0;
}

double
HistogramAnalyzer::headwayContextSwitches() const
{
    return contextSwitches_
        ? static_cast<double>(instructions_) / contextSwitches_ : 0.0;
}

double
HistogramAnalyzer::tbMissPerInstr() const
{
    return perInstr(static_cast<double>(tbMissD_ + tbMissI_));
}

double
HistogramAnalyzer::tbMissPerInstrD() const
{
    return perInstr(static_cast<double>(tbMissD_));
}

double
HistogramAnalyzer::tbMissPerInstrI() const
{
    return perInstr(static_cast<double>(tbMissI_));
}

double
HistogramAnalyzer::tbServiceCyclesPerMiss() const
{
    uint64_t misses = tbMissD_ + tbMissI_;
    return misses ? static_cast<double>(tbServiceCycles_) / misses
                  : 0.0;
}

double
HistogramAnalyzer::tbServiceStallPerMiss() const
{
    uint64_t misses = tbMissD_ + tbMissI_;
    return misses ? static_cast<double>(tbServiceStalls_) / misses
                  : 0.0;
}

double
HistogramAnalyzer::unalignedPerInstr() const
{
    return perInstr(static_cast<double>(unaligned_));
}

std::vector<HistogramAnalyzer::HotSpot>
HistogramAnalyzer::hottest(size_t n) const
{
    std::vector<HotSpot> all;
    all.reserve(cs_.size());
    for (UAddr a = 0; a < cs_.size(); ++a) {
        uint64_t cyc = hist_.normal[a] + hist_.stalled[a];
        if (cyc)
            all.push_back({a, cs_.annotation(a).name, cyc});
    }
    std::sort(all.begin(), all.end(),
              [](const HotSpot &x, const HotSpot &y) {
                  return x.cycles > y.cycles;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

} // namespace vax
