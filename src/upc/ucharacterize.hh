/**
 * @file
 * Per-instruction characterization: the measurement, report and
 * comparison layer of the `ucharacterize` suite.
 *
 * The paper characterizes the 780 per instruction *group* (Table 8);
 * this subsystem produces the per-opcode edition: every implemented
 * opcode x legal specifier class runs as an auto-generated
 * steady-state microbenchmark through the UPC monitor, and the
 * histogram is reduced to raw, exactly reproducible integers --
 * cycles, microwords, and the stall anatomy columns.  The approach is
 * uops.info/nanoBench's: a calibration loop with an empty body is
 * measured once, and every variant's cost is the delta against it.
 *
 * Layering: this file knows how to *run* one generated program and
 * how to render/compare reports; the corpus generator (which opcode x
 * mode variants exist and what code each assembles to) lives in
 * src/workload/uchar_corpus, above this layer.  Parallel fan-out is
 * injected through the ParallelFor hook so the driver's SimPool can
 * supply workers without a dependency cycle.
 *
 * Determinism contract: every quantity stored in a report is a raw
 * simulated-cycle integer, so a report is byte-identical across
 * hosts, runs and worker counts.  That is what lets the committed
 * UCHAR_baseline.json act as a zero-tolerance cycle-accuracy gate.
 */

#ifndef UPC780_UPC_UCHARACTERIZE_HH
#define UPC780_UPC_UCHARACTERIZE_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "arch/specifiers.hh"
#include "ucode/annotations.hh"

namespace vax
{

namespace stats
{
class Registry;
} // namespace stats

/** Fixed parameters of one suite run (part of the baseline key). */
struct UcharParams
{
    /** Steady-state loop iterations per microbenchmark. */
    uint32_t iters = 16;
    /** Copies of the measured instruction unrolled per iteration. */
    uint32_t unroll = 8;
    /** Per-variant cycle budget (a variant that neither halts nor
     *  stays inside it is reported as skipped, never hangs). */
    uint64_t maxCycles = 2'000'000;
};

/** One operand specifier of a profiled instruction (branch
 *  displacements are not specifiers and are not recorded). */
struct UcharSpecUse
{
    AddrMode mode = AddrMode::Register;
    bool indexed = false;

    bool operator==(const UcharSpecUse &o) const = default;
};

/**
 * One distinct (opcode, specifier shape) the generated image contains,
 * with its exact dynamic execution count in a clean run.  The static
 * bound analyzer composes per-instruction cycle ranges from these, so
 * a program's whole-run measurement can be checked against
 * sum(count x bound) without re-decoding the image.
 */
struct UcharProfileEntry
{
    uint8_t opcode = 0;
    uint64_t count = 0; ///< dynamic executions in the clean run
    std::vector<UcharSpecUse> specs;
};

/**
 * One generated microbenchmark, fully described by value: the
 * assembled image plus the data regions to poke into physical memory
 * and the exact dynamic instruction count the clean run must retire.
 */
struct UcharProgram
{
    std::string op;      ///< mnemonic ("MOVL")
    std::string mode;    ///< specifier-class key ("(Rn)", "none"...)
    uint32_t ipc = 1;    ///< dynamic instructions per unrolled copy
    uint32_t base = 0;   ///< load/start address
    uint32_t sp = 0;     ///< initial stack pointer
    uint64_t expectedInstructions = 0; ///< clean-run retire count
    std::vector<uint8_t> image;
    /** Data regions loaded into physical memory before the run. */
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> pokes;
    /** Image offsets of each measured-instruction copy (round-trip
     *  and disassembly checks anchor here). */
    std::vector<uint32_t> targetOffsets;
    /** Static instruction profile of the image; the counts sum to
     *  expectedInstructions exactly (generator invariant). */
    std::vector<UcharProfileEntry> profile;
};

/** Raw measurement of one program run: integers only, no division,
 *  so baseline comparison is exact. */
struct UcharRun
{
    uint64_t cycles = 0;       ///< classified cycles (analyzer total)
    uint64_t instructions = 0; ///< IID count
    uint64_t uwords = 0;       ///< microwords executed (normal bank)
    /** Table 8 column sums: Compute, Read, RStall, Write, WStall,
     *  IbStall (cache/read stalls are RStall, write-buffer stalls
     *  are WStall). */
    std::array<uint64_t, static_cast<size_t>(TimeCol::NumCols)> cols{};
    /** TB-service cycles (Row::MemMgmt total: the TB share of the
     *  stall anatomy; zero in the unmapped harness). */
    uint64_t tbService = 0;

    bool operator==(const UcharRun &o) const = default;
};

/** Result of running one UcharProgram. */
struct UcharOutcome
{
    bool ok = false;
    UcharRun run;
    std::string reason; ///< failure description when !ok
};

/**
 * Run one generated microbenchmark on a fresh bare machine (mapping
 * off, UPC monitor attached) and reduce its histogram.
 *
 * The run is guarded: a panic()/fatal() raised by an unsupported
 * variant becomes a reason string, not a process abort.  A run that
 * does not halt, or halts with the wrong dynamic instruction count
 * (e.g. it faulted through the zeroed SCB), is also classified as
 * failed -- the no-silent-skips contract.
 */
UcharOutcome runUcharProgram(const UcharProgram &prog,
                             const UcharParams &params);

/** One published row: a variant that ran cleanly. */
struct UcharRow
{
    std::string op;
    std::string mode;
    uint32_t ipc = 1;
    UcharRun run;
    /**
     * Static whole-program cycle bounds for this variant, filled by
     * the bound analyzer (tools/ucode_bounds): the clean run must
     * satisfy bcc <= run.cycles <= wcc.  Absent (hasBounds == false)
     * in reports produced by the measurement tool alone; the JSON
     * round-trips them when present and ucharCompare ignores them
     * (bounds are derived data, not measurement).
     */
    uint64_t bcc = 0;
    uint64_t wcc = 0;
    bool hasBounds = false;
};

/** One skipped variant, with the reason on the record. */
struct UcharSkip
{
    std::string op;
    std::string mode;
    std::string reason;
};

/** The full suite result. */
struct UcharReport
{
    UcharParams params;
    UcharRun calibration; ///< shared empty-body loop measurement
    std::vector<UcharRow> rows;
    std::vector<UcharSkip> skipped;

    /** Cost of one unrolled copy (scaffold included) beyond the
     *  calibration loop, in cycles -- the human-facing number. */
    double perCopyCycles(const UcharRow &r) const;
};

/**
 * Deterministic parallel-for hook: run fn(0..n-1), each exactly
 * once, in any order.  An empty function means serial.  SimPool
 * provides the pooled implementation (SimPool::forEach); the suite
 * stores every result by index, so any schedule yields byte-identical
 * reports.
 */
using ParallelFor =
    std::function<void(size_t n, const std::function<void(size_t)> &)>;

/** @{ Report rendering: aligned text, CSV, and JSON.  All three are
 *  deterministic byte-for-byte for a given report. */
std::string ucharText(const UcharReport &rep);
std::string ucharCsv(const UcharReport &rep);
std::string ucharJson(const UcharReport &rep);
/** @} */

/**
 * Parse a report previously written by ucharJson().
 * @return False with *err set on malformed input.
 */
bool ucharParseJson(const std::string &text, UcharReport *out,
                    std::string *err);

/** Comparison verdict: empty messages == identical. */
struct UcharDiff
{
    bool ok() const { return messages.empty(); }
    std::vector<std::string> messages;
};

/**
 * Compare two reports with zero tolerance: parameters, calibration,
 * the row key set, every row's raw integers, and the skip list must
 * all match.  Every difference names its opcode/mode, so a CI
 * failure reads as "MOVL (Rn)+: uwords 2816 -> 2824 (+8)".
 */
UcharDiff ucharCompare(const UcharReport &baseline,
                       const UcharReport &current);

/** Register suite-level stats under prefix (e.g. "uchar."):
 *  row/skip counts, calibration cost, aggregate cycles. */
void regUcharStats(stats::Registry &r, const std::string &prefix,
                   const UcharReport &rep);

/**
 * Register the static-bound section (`<prefix>.bounds.*`): how many
 * rows carry bounds, how many measurements violate them, and the
 * aggregate floor/measured/ceiling cycle totals.  No-op when no row
 * has bounds attached.
 */
void regUcharBounds(stats::Registry &r, const std::string &prefix,
                    const UcharReport &rep);

} // namespace vax

#endif // UPC780_UPC_UCHARACTERIZE_HH
