/**
 * @file
 * End-of-experiment invariant self-checks.
 *
 * The paper's decompositions only mean something if the accounting is
 * airtight: every cycle the machine executed must appear exactly once
 * in the histogram, the Table 8 decomposition must sum back to the
 * total, and the hardware event counters must agree with each other
 * across subsystems.  These checks assert those identities on a
 * finished ExperimentResult / CompositeResult -- they run by default
 * in the test suite and on demand (--selfcheck) in the benches, and
 * exist to catch silent accounting regressions the moment they land.
 */

#ifndef UPC780_UPC_SELFCHECK_HH
#define UPC780_UPC_SELFCHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ucode/control_store.hh"
#include "workload/experiments.hh"

namespace vax
{

/** Outcome of a self-check pass. */
struct SelfCheckReport
{
    std::vector<std::string> violations; ///< one line per broken identity
    unsigned checks = 0;                 ///< identities evaluated

    bool ok() const { return violations.empty(); }

    /** "self-check: N identities hold" or the list of violations. */
    std::string summary() const;
};

/**
 * Check one experiment's accounting identities:
 *  - histogram bank totals sum to the histogram's total cycles;
 *  - the Table 8 (row x column) decomposition conserves cycles;
 *  - monitored cycles never exceed executed cycles (the monitor is
 *    gated off while Null runs), likewise instructions;
 *  - cache/TB reference counts agree with the EBOX operation counts
 *    (reads exactly; writes within the one write the buffer may
 *    still be draining at the end of the run);
 *  - misses never exceed references.
 *
 * @param cs The control store the histogram was recorded against
 *           (a reference machine's control store works: the microcode
 *           build is deterministic).
 */
SelfCheckReport selfCheckResult(const ControlStore &cs,
                                const ExperimentResult &r);

/**
 * Check a composite: every surviving part individually, plus the
 * merge identities (composite totals equal the weighted sums of the
 * surviving parts).
 *
 * @param weights Per-part weights; missing entries default to 1.
 */
SelfCheckReport selfCheckComposite(const ControlStore &cs,
                                   const CompositeResult &comp,
                                   const std::vector<uint64_t> &weights =
                                       {});

} // namespace vax

#endif // UPC780_UPC_SELFCHECK_HH
