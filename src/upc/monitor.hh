/**
 * @file
 * The micro-PC histogram monitor -- the paper's measurement apparatus.
 *
 * A 16K-bucket histogram board with two count banks: one for normal
 * cycles and one for stalled cycles, indexed by the control-store
 * address driving the machine each cycle.  Completely passive: it
 * observes the micro-PC stream through the CycleSink interface and
 * never perturbs execution.
 *
 * As on the real machine, the board is a Unibus device: collection is
 * started, stopped and cleared by writes to its CSR, which the OS maps
 * into a device page (this is how VMS-lite gates measurement off while
 * the Null process runs, reproducing the paper's exclusion of Null).
 */

#ifndef UPC780_UPC_MONITOR_HH
#define UPC780_UPC_MONITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cycle_sink.hh"
#include "cpu/ebox.hh"
#include "support/logging.hh"
#include "ucode/control_store.hh"

namespace vax
{

namespace stats
{
class Registry;
} // namespace stats

namespace snap { class Serializer; class Deserializer; }

/** Raw histogram data: two counter banks. */
struct Histogram
{
    Histogram() : normal(ControlStore::capacity, 0),
                  stalled(ControlStore::capacity, 0) {}

    std::vector<uint64_t> normal;
    std::vector<uint64_t> stalled;

    /**
     * Merge another histogram into this one, scaled by an integral
     * weight (composite workloads; weight 1 reproduces the paper's
     * plain five-histogram sum).  Counter addition is commutative and
     * associative, so merging partial histograms in any order yields
     * bit-identical results -- the property the parallel driver's
     * determinism contract rests on.
     */
    void merge(const Histogram &other, uint64_t weight = 1);

    /** Sum another histogram into this one (composite workloads). */
    void add(const Histogram &other) { merge(other); }

    /** Total cycles recorded. */
    uint64_t cycles() const;

    /** Total cycles in the normal (non-stalled) bank. */
    uint64_t normalCycles() const;

    /** Total cycles in the stalled bank. */
    uint64_t stalledCycles() const;

    /** Register bank totals and the stall fraction under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** @{ Checkpoint/restore.  Banks are mostly zeros for short
     *  runs, so they are stored run-length encoded. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */
};

/**
 * Weighted sum of several histograms in one call (the paper's
 * five-workload composite, or any re-weighted what-if mix).
 *
 * @param parts   Histograms to merge; null entries are skipped.
 * @param weights Per-part weights; missing entries default to 1.
 */
Histogram weightedComposite(const std::vector<const Histogram *> &parts,
                            const std::vector<uint64_t> &weights = {});

class UpcMonitor : public CycleSink
{
  public:
    /** CSR command values (written to the device register). */
    static constexpr uint32_t cmdStop = 0;
    static constexpr uint32_t cmdStart = 1;
    static constexpr uint32_t cmdClear = 2;

    ~UpcMonitor() override;

    void count(UAddr upc, bool stalled) override;

    /** @{ EBOX fast-path wiring.  Ebox::setCycleSink(UpcMonitor *)
     *  attaches the back pointer; the EBOX then banks cycle counts in
     *  a batch and delivers them through applyBatch() at instruction
     *  boundaries instead of one virtual call per cycle.  Every
     *  reader syncs first, so the batching is unobservable. */
    void
    attachEbox(Ebox *e)
    {
        if (ebox_ && ebox_ != e)
            ebox_->detachMonitor(this);
        ebox_ = e;
    }

    /** Called by ~Ebox so the monitor never syncs a dead engine. */
    void
    detachEbox(const Ebox *e)
    {
        if (ebox_ == e)
            ebox_ = nullptr;
    }

    /** Apply batched cycle records (upc | Ebox::kCycleStallBit each).
     *  Records were taken while the CSR said collect, so they are
     *  applied unconditionally. */
    void
    applyBatch(const uint32_t *recs, uint32_t n)
    {
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t rec = recs[i];
            UAddr a = static_cast<UAddr>(rec & 0xFFFF);
            upc_assert(a < ControlStore::capacity);
            if (rec & Ebox::kCycleStallBit)
                ++hist_.stalled[a];
            else
                ++hist_.normal[a];
        }
    }

    /** Drain any batch the EBOX is holding into the banks. */
    void
    sync() const
    {
        if (ebox_)
            ebox_->flushCycleBatch();
    }
    /** @} */

    /** @{ Unibus command interface. */
    void
    start()
    {
        sync();
        collecting_ = true;
        if (ebox_)
            ebox_->refreshBatchOn();
    }
    void
    stop()
    {
        sync();
        collecting_ = false;
        if (ebox_)
            ebox_->refreshBatchOn();
    }
    void clear();
    bool collecting() const { return collecting_; }
    /** CSR write decode (for the device-window hook). */
    void unibusWrite(uint32_t value);
    /** @} */

    const Histogram &
    histogram() const
    {
        sync();
        return hist_;
    }

    /** Register the board's histogram totals under prefix.  The
     *  registered readers sync before totalling, so dumps taken while
     *  a batch is in flight are exact. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    uint64_t
    normalCount(UAddr a) const
    {
        sync();
        return hist_.normal[a];
    }

    uint64_t
    stalledCount(UAddr a) const
    {
        sync();
        return hist_.stalled[a];
    }

    /** @{ Checkpoint/restore: both banks and the collecting flag. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    Histogram hist_;
    bool collecting_ = true;
    Ebox *ebox_ = nullptr;
};

} // namespace vax

#endif // UPC780_UPC_MONITOR_HH
