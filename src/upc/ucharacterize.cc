#include "upc/ucharacterize.hh"

#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstring>
#include <map>

#include "cpu/cpu.hh"
#include "support/sim_error.hh"
#include "support/stats.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"

namespace vax
{

namespace
{

constexpr size_t kNumCols = static_cast<size_t>(TimeCol::NumCols);

/** JSON/CSV field names for the Table 8 column sums, in TimeCol
 *  order. */
constexpr const char *kColKeys[kNumCols] = {
    "compute", "read", "rstall", "write", "wstall", "ibstall",
};

} // anonymous namespace

UcharOutcome
runUcharProgram(const UcharProgram &prog, const UcharParams &params)
{
    UcharOutcome out;
    // Guard the run: an unsupported variant that panics inside the
    // microcode (or the engine) must become a named skip, not a
    // process abort.  The scope also labels any SimError with the
    // variant's name.
    guard::Scope scope("uchar:" + prog.op + " " + prog.mode, 0x780);
    try {
        Cpu780 cpu;
        cpu.mem().setMapEnable(false);
        UpcMonitor monitor;
        cpu.setCycleSink(&monitor);
        for (const auto &poke : prog.pokes)
            cpu.mem().phys().load(poke.first, poke.second);
        cpu.mem().phys().load(prog.base, prog.image);
        cpu.reset(prog.base);
        cpu.ebox().setGpr(SP, prog.sp);
        bool halted = cpu.run(params.maxCycles);
        if (!halted) {
            out.reason = "did not halt within the cycle budget";
            return out;
        }
        HistogramAnalyzer an(cpu.controlStore(), monitor.histogram());
        if (an.instructions() != prog.expectedInstructions) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "instruction-count mismatch (expected %llu, "
                          "got %llu)",
                          static_cast<unsigned long long>(
                              prog.expectedInstructions),
                          static_cast<unsigned long long>(
                              an.instructions()));
            out.reason = buf;
            return out;
        }
        out.run.cycles = an.totalCycles();
        out.run.instructions = an.instructions();
        out.run.uwords = monitor.histogram().normalCycles();
        for (size_t c = 0; c < kNumCols; ++c) {
            uint64_t sum = 0;
            for (size_t r = 0;
                 r < static_cast<size_t>(Row::NumRows); ++r) {
                sum += an.cellCycles(static_cast<Row>(r),
                                     static_cast<TimeCol>(c));
            }
            out.run.cols[c] = sum;
        }
        uint64_t tb = 0;
        for (size_t c = 0; c < kNumCols; ++c)
            tb += an.cellCycles(Row::MemMgmt, static_cast<TimeCol>(c));
        out.run.tbService = tb;
        out.ok = true;
    } catch (const SimError &e) {
        out.reason = std::string("fault: ") + e.what();
    }
    return out;
}

double
UcharReport::perCopyCycles(const UcharRow &r) const
{
    double copies =
        static_cast<double>(params.iters) * params.unroll;
    if (copies <= 0)
        return 0.0;
    return (static_cast<double>(r.run.cycles) -
            static_cast<double>(calibration.cycles)) /
        copies;
}

// ---------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------

namespace
{

void
appendf(std::string &s, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    s += buf;
}

/** Per-copy delta of one raw field against the calibration run. */
double
perCopy(const UcharReport &rep, uint64_t meas, uint64_t calib)
{
    double copies =
        static_cast<double>(rep.params.iters) * rep.params.unroll;
    if (copies <= 0)
        return 0.0;
    return (static_cast<double>(meas) - static_cast<double>(calib)) /
        copies;
}

} // anonymous namespace

std::string
ucharText(const UcharReport &rep)
{
    std::string s;
    appendf(s,
            "ucharacterize: per-opcode x specifier-mode "
            "characterization\n"
            "params: iters=%u unroll=%u (costs below are per "
            "unrolled copy, calibration-loop delta)\n"
            "calibration: %" PRIu64 " cycles, %" PRIu64
            " instructions, %" PRIu64 " microwords\n\n",
            rep.params.iters, rep.params.unroll,
            rep.calibration.cycles, rep.calibration.instructions,
            rep.calibration.uwords);
    appendf(s, "%-8s %-12s %2s %8s %8s %7s %7s %7s %7s %7s %7s\n",
            "op", "mode", "n", "cyc", "uword", "compute", "read",
            "rstall", "write", "wstall", "ibstall");
    for (const auto &r : rep.rows) {
        appendf(s, "%-8s %-12s %2u %8.2f %8.2f", r.op.c_str(),
                r.mode.c_str(), r.ipc, rep.perCopyCycles(r),
                perCopy(rep, r.run.uwords, rep.calibration.uwords));
        for (size_t c = 0; c < kNumCols; ++c)
            appendf(s, " %7.2f",
                    perCopy(rep, r.run.cols[c],
                            rep.calibration.cols[c]));
        s += '\n';
    }
    appendf(s, "\n%zu variants measured, %zu skipped\n",
            rep.rows.size(), rep.skipped.size());
    if (!rep.skipped.empty()) {
        s += "\nskipped (no silent omissions -- every enumerated "
             "variant is accounted for):\n";
        for (const auto &k : rep.skipped)
            appendf(s, "  %-8s %-12s %s\n", k.op.c_str(),
                    k.mode.c_str(), k.reason.c_str());
    }
    return s;
}

std::string
ucharCsv(const UcharReport &rep)
{
    std::string s = "op,mode,ipc,cycles,instructions,uwords";
    for (const char *k : kColKeys) {
        s += ',';
        s += k;
    }
    s += ",tb,cycles_per_copy\n";
    for (const auto &r : rep.rows) {
        appendf(s, "%s,%s,%u,%" PRIu64 ",%" PRIu64 ",%" PRIu64,
                r.op.c_str(), r.mode.c_str(), r.ipc, r.run.cycles,
                r.run.instructions, r.run.uwords);
        for (size_t c = 0; c < kNumCols; ++c)
            appendf(s, ",%" PRIu64, r.run.cols[c]);
        appendf(s, ",%" PRIu64 ",%.4f\n", r.run.tbService,
                rep.perCopyCycles(r));
    }
    for (const auto &k : rep.skipped)
        appendf(s, "%s,%s,skipped,\"%s\"\n", k.op.c_str(),
                k.mode.c_str(), k.reason.c_str());
    return s;
}

namespace
{

void
jsonEscape(std::string &s, const std::string &v)
{
    s += '"';
    for (char c : v) {
        switch (c) {
          case '"':  s += "\\\""; break;
          case '\\': s += "\\\\"; break;
          case '\n': s += "\\n"; break;
          case '\t': s += "\\t"; break;
          default:   s += c; break;
        }
    }
    s += '"';
}

void
jsonRun(std::string &s, const UcharRun &run)
{
    appendf(s,
            "\"cycles\": %" PRIu64 ", \"instructions\": %" PRIu64
            ", \"uwords\": %" PRIu64,
            run.cycles, run.instructions, run.uwords);
    for (size_t c = 0; c < kNumCols; ++c)
        appendf(s, ", \"%s\": %" PRIu64, kColKeys[c], run.cols[c]);
    appendf(s, ", \"tb\": %" PRIu64, run.tbService);
}

} // anonymous namespace

std::string
ucharJson(const UcharReport &rep)
{
    std::string s;
    appendf(s,
            "{\n  \"uchar_format\": 1,\n  \"iters\": %u,\n"
            "  \"unroll\": %u,\n  \"max_cycles\": %" PRIu64 ",\n",
            rep.params.iters, rep.params.unroll,
            rep.params.maxCycles);
    s += "  \"calibration\": {";
    jsonRun(s, rep.calibration);
    s += "},\n  \"rows\": [\n";
    for (size_t i = 0; i < rep.rows.size(); ++i) {
        const auto &r = rep.rows[i];
        s += "    {\"op\": ";
        jsonEscape(s, r.op);
        s += ", \"mode\": ";
        jsonEscape(s, r.mode);
        appendf(s, ", \"ipc\": %u, ", r.ipc);
        jsonRun(s, r.run);
        if (r.hasBounds)
            appendf(s, ", \"bcc\": %" PRIu64 ", \"wcc\": %" PRIu64,
                    r.bcc, r.wcc);
        s += i + 1 < rep.rows.size() ? "},\n" : "}\n";
    }
    s += "  ],\n  \"skipped\": [\n";
    for (size_t i = 0; i < rep.skipped.size(); ++i) {
        const auto &k = rep.skipped[i];
        s += "    {\"op\": ";
        jsonEscape(s, k.op);
        s += ", \"mode\": ";
        jsonEscape(s, k.mode);
        s += ", \"reason\": ";
        jsonEscape(s, k.reason);
        s += i + 1 < rep.skipped.size() ? "},\n" : "}\n";
    }
    s += "  ]\n}\n";
    return s;
}

// ---------------------------------------------------------------
// JSON parsing (the subset ucharJson emits: objects, arrays,
// strings, unsigned integers)
// ---------------------------------------------------------------

namespace
{

struct Jv
{
    enum class T : uint8_t { Num, Str, Arr, Obj } t = T::Num;
    uint64_t num = 0;
    std::string str;
    std::vector<Jv> arr;
    std::vector<std::pair<std::string, Jv>> obj;

    const Jv *
    get(const char *key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

struct JParser
{
    const char *p;
    const char *end;
    std::string err;

    explicit JParser(const std::string &s)
        : p(s.data()), end(s.data() + s.size())
    {
    }

    void
    skipWs()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    fail(const char *what)
    {
        err = what;
        return false;
    }

    bool
    parseString(std::string *out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out->clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\') {
                if (p >= end)
                    return fail("bad escape");
                char e = *p++;
                switch (e) {
                  case '"':  *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/':  *out += '/'; break;
                  case 'n':  *out += '\n'; break;
                  case 't':  *out += '\t'; break;
                  case 'r':  *out += '\r'; break;
                  default:   return fail("unsupported escape");
                }
            } else {
                *out += c;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parse(Jv *out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        char c = *p;
        if (c == '"') {
            out->t = Jv::T::Str;
            return parseString(&out->str);
        }
        if (c == '{') {
            ++p;
            out->t = Jv::T::Obj;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Jv val;
                if (!parse(&val))
                    return false;
                out->obj.emplace_back(std::move(key), std::move(val));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++p;
            out->t = Jv::T::Arr;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                Jv val;
                if (!parse(&val))
                    return false;
                out->arr.push_back(std::move(val));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            out->t = Jv::T::Num;
            uint64_t v = 0;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                v = v * 10 + static_cast<uint64_t>(*p++ - '0');
            out->num = v;
            return true;
        }
        return fail("unexpected character");
    }
};

bool
readRun(const Jv &o, UcharRun *run, std::string *err)
{
    struct Field
    {
        const char *key;
        uint64_t *dst;
    };
    std::vector<Field> fields = {
        {"cycles", &run->cycles},
        {"instructions", &run->instructions},
        {"uwords", &run->uwords},
        {"tb", &run->tbService},
    };
    for (size_t c = 0; c < kNumCols; ++c)
        fields.push_back({kColKeys[c], &run->cols[c]});
    for (const auto &f : fields) {
        const Jv *v = o.get(f.key);
        if (!v || v->t != Jv::T::Num) {
            *err = std::string("missing numeric field '") + f.key +
                "'";
            return false;
        }
        *f.dst = v->num;
    }
    return true;
}

bool
readStr(const Jv &o, const char *key, std::string *dst,
        std::string *err)
{
    const Jv *v = o.get(key);
    if (!v || v->t != Jv::T::Str) {
        *err = std::string("missing string field '") + key + "'";
        return false;
    }
    *dst = v->str;
    return true;
}

} // anonymous namespace

bool
ucharParseJson(const std::string &text, UcharReport *out,
               std::string *err)
{
    JParser parser(text);
    Jv root;
    if (!parser.parse(&root)) {
        *err = "uchar JSON: " + parser.err;
        return false;
    }
    if (root.t != Jv::T::Obj) {
        *err = "uchar JSON: top level is not an object";
        return false;
    }
    const Jv *fmt = root.get("uchar_format");
    if (!fmt || fmt->t != Jv::T::Num || fmt->num != 1) {
        *err = "uchar JSON: missing or unsupported uchar_format";
        return false;
    }
    const Jv *iters = root.get("iters");
    const Jv *unroll = root.get("unroll");
    const Jv *maxc = root.get("max_cycles");
    if (!iters || !unroll || !maxc || iters->t != Jv::T::Num ||
        unroll->t != Jv::T::Num || maxc->t != Jv::T::Num) {
        *err = "uchar JSON: missing parameters";
        return false;
    }
    *out = UcharReport();
    out->params.iters = static_cast<uint32_t>(iters->num);
    out->params.unroll = static_cast<uint32_t>(unroll->num);
    out->params.maxCycles = maxc->num;
    const Jv *calib = root.get("calibration");
    if (!calib || calib->t != Jv::T::Obj ||
        !readRun(*calib, &out->calibration, err))
        return false;
    const Jv *rows = root.get("rows");
    if (!rows || rows->t != Jv::T::Arr) {
        *err = "uchar JSON: missing rows array";
        return false;
    }
    for (const Jv &r : rows->arr) {
        if (r.t != Jv::T::Obj) {
            *err = "uchar JSON: row is not an object";
            return false;
        }
        UcharRow row;
        const Jv *ipc = r.get("ipc");
        if (!readStr(r, "op", &row.op, err) ||
            !readStr(r, "mode", &row.mode, err))
            return false;
        if (!ipc || ipc->t != Jv::T::Num) {
            *err = "uchar JSON: row missing ipc";
            return false;
        }
        row.ipc = static_cast<uint32_t>(ipc->num);
        if (!readRun(r, &row.run, err))
            return false;
        const Jv *bcc = r.get("bcc");
        const Jv *wcc = r.get("wcc");
        if (bcc && wcc && bcc->t == Jv::T::Num &&
            wcc->t == Jv::T::Num) {
            row.bcc = bcc->num;
            row.wcc = wcc->num;
            row.hasBounds = true;
        }
        out->rows.push_back(std::move(row));
    }
    const Jv *skipped = root.get("skipped");
    if (!skipped || skipped->t != Jv::T::Arr) {
        *err = "uchar JSON: missing skipped array";
        return false;
    }
    for (const Jv &k : skipped->arr) {
        if (k.t != Jv::T::Obj) {
            *err = "uchar JSON: skip entry is not an object";
            return false;
        }
        UcharSkip skip;
        if (!readStr(k, "op", &skip.op, err) ||
            !readStr(k, "mode", &skip.mode, err) ||
            !readStr(k, "reason", &skip.reason, err))
            return false;
        out->skipped.push_back(std::move(skip));
    }
    return true;
}

// ---------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------

namespace
{

void
diffRun(UcharDiff &d, const std::string &what, const UcharRun &a,
        const UcharRun &b)
{
    struct Field
    {
        const char *key;
        uint64_t a;
        uint64_t b;
    };
    std::vector<Field> fields = {
        {"cycles", a.cycles, b.cycles},
        {"instructions", a.instructions, b.instructions},
        {"uwords", a.uwords, b.uwords},
        {"tb", a.tbService, b.tbService},
    };
    for (size_t c = 0; c < kNumCols; ++c)
        fields.push_back({kColKeys[c], a.cols[c], b.cols[c]});
    for (const auto &f : fields) {
        if (f.a == f.b)
            continue;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s: %s %" PRIu64 " -> %" PRIu64 " (%+lld)",
                      what.c_str(), f.key, f.a, f.b,
                      static_cast<long long>(f.b) -
                          static_cast<long long>(f.a));
        d.messages.push_back(buf);
    }
}

} // anonymous namespace

UcharDiff
ucharCompare(const UcharReport &baseline, const UcharReport &current)
{
    UcharDiff d;
    if (baseline.params.iters != current.params.iters ||
        baseline.params.unroll != current.params.unroll) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "parameters differ: iters %u->%u, unroll "
                      "%u->%u (reports are not comparable)",
                      baseline.params.iters, current.params.iters,
                      baseline.params.unroll, current.params.unroll);
        d.messages.push_back(buf);
        return d;
    }
    diffRun(d, "calibration", baseline.calibration,
            current.calibration);

    std::map<std::string, const UcharRow *> base, cur;
    for (const auto &r : baseline.rows)
        base[r.op + " " + r.mode] = &r;
    for (const auto &r : current.rows)
        cur[r.op + " " + r.mode] = &r;
    for (const auto &kv : base) {
        auto it = cur.find(kv.first);
        if (it == cur.end()) {
            d.messages.push_back("row missing from current: " +
                                 kv.first);
            continue;
        }
        if (kv.second->ipc != it->second->ipc) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "%s: ipc %u -> %u",
                          kv.first.c_str(), kv.second->ipc,
                          it->second->ipc);
            d.messages.push_back(buf);
        }
        diffRun(d, kv.first, kv.second->run, it->second->run);
    }
    for (const auto &kv : cur)
        if (!base.count(kv.first))
            d.messages.push_back("row not in baseline: " + kv.first);

    std::map<std::string, std::string> bskip, cskip;
    for (const auto &k : baseline.skipped)
        bskip[k.op + " " + k.mode] = k.reason;
    for (const auto &k : current.skipped)
        cskip[k.op + " " + k.mode] = k.reason;
    for (const auto &kv : bskip) {
        auto it = cskip.find(kv.first);
        if (it == cskip.end())
            d.messages.push_back("skip missing from current: " +
                                 kv.first);
        else if (it->second != kv.second)
            d.messages.push_back("skip reason changed for " +
                                 kv.first + ": '" + kv.second +
                                 "' -> '" + it->second + "'");
    }
    for (const auto &kv : cskip)
        if (!bskip.count(kv.first))
            d.messages.push_back("skip not in baseline: " + kv.first);
    return d;
}

void
regUcharStats(stats::Registry &r, const std::string &prefix,
              const UcharReport &rep)
{
    uint64_t total_cycles = 0;
    uint64_t total_uwords = 0;
    for (const auto &row : rep.rows) {
        total_cycles += row.run.cycles;
        total_uwords += row.run.uwords;
    }
    uint64_t nrows = rep.rows.size();
    uint64_t nskip = rep.skipped.size();
    uint64_t calib = rep.calibration.cycles;
    r.addScalar(prefix + "variants",
                "opcode x mode variants measured",
                [nrows] { return nrows; });
    r.addScalar(prefix + "skipped",
                "enumerated variants skipped (with reasons)",
                [nskip] { return nskip; });
    r.addScalar(prefix + "calibCycles",
                "cycles of the shared calibration loop",
                [calib] { return calib; });
    r.addScalar(prefix + "totalCycles",
                "simulated cycles across all variant runs",
                [total_cycles] { return total_cycles; });
    r.addScalar(prefix + "totalUwords",
                "microwords executed across all variant runs",
                [total_uwords] { return total_uwords; });
    double copies = static_cast<double>(rep.params.iters) *
        rep.params.unroll;
    double mean = 0.0;
    if (nrows && copies > 0) {
        for (const auto &row : rep.rows)
            mean += (static_cast<double>(row.run.cycles) -
                     static_cast<double>(calib)) /
                copies;
        mean /= static_cast<double>(nrows);
    }
    r.addFormula(prefix + "meanCyclesPerCopy",
                 "mean per-copy cost over all measured variants",
                 [mean] { return mean; });
}

void
regUcharBounds(stats::Registry &r, const std::string &prefix,
               const UcharReport &rep)
{
    uint64_t with_bounds = 0, violations = 0;
    uint64_t bcc_total = 0, wcc_total = 0, measured = 0;
    for (const auto &row : rep.rows) {
        if (!row.hasBounds)
            continue;
        ++with_bounds;
        bcc_total += row.bcc;
        wcc_total += row.wcc;
        measured += row.run.cycles;
        if (row.run.cycles < row.bcc || row.run.cycles > row.wcc)
            ++violations;
    }
    if (!with_bounds)
        return;
    r.addScalar(prefix + "bounds.rows",
                "measured rows carrying static cycle bounds",
                [with_bounds] { return with_bounds; });
    r.addScalar(prefix + "bounds.violations",
                "rows measured outside their static [bcc, wcc]",
                [violations] { return violations; });
    r.addScalar(prefix + "bounds.bccTotal",
                "summed static best-case cycles of bounded rows",
                [bcc_total] { return bcc_total; });
    r.addScalar(prefix + "bounds.wccTotal",
                "summed static worst-case cycles of bounded rows",
                [wcc_total] { return wcc_total; });
    r.addScalar(prefix + "bounds.measuredTotal",
                "summed measured cycles of bounded rows",
                [measured] { return measured; });
}

} // namespace vax
