/**
 * @file
 * Histogram analysis: reconstructs every metric of the paper from the
 * raw UPC histogram plus the static control-store annotations -- the
 * same inputs Emer & Clark had (counts + the microcode listings).
 *
 * The analyzer never looks at simulator internals; the hardware event
 * counters (cache misses, IB references) that the paper also could not
 * see through the UPC technique are reported separately by the bench
 * harness, clearly labelled as coming from the "separate study" path.
 */

#ifndef UPC780_UPC_ANALYZER_HH
#define UPC780_UPC_ANALYZER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "ucode/control_store.hh"
#include "upc/monitor.hh"

namespace vax
{

// TimeCol and the shared Row x TimeCol classification helper
// (timeColsFor) live in ucode/annotations.hh, next to Row, so the
// static verifier and this analyzer agree on one mapping.

class HistogramAnalyzer
{
  public:
    HistogramAnalyzer(const ControlStore &cs, const Histogram &hist);

    /**
     * Analyze a weighted composite of several histograms in one call
     * (the paper's five-workload composite).  The merged histogram is
     * owned by the analyzer, so the parts need not outlive it.
     *
     * @param parts   Per-workload histograms; null entries skipped.
     * @param weights Per-part weights; missing entries default to 1.
     */
    HistogramAnalyzer(const ControlStore &cs,
                      const std::vector<const Histogram *> &parts,
                      const std::vector<uint64_t> &weights = {});

    /** Instructions executed (count of the IID microword). */
    uint64_t instructions() const { return instructions_; }

    /** Total classified cycles. */
    uint64_t totalCycles() const { return totalCycles_; }

    double
    cyclesPerInstruction() const
    {
        return perInstr(totalCycles_);
    }

    // ---- Table 8 ----
    /** Cycles per average instruction at (row, col). */
    double cell(Row r, TimeCol c) const;
    double rowTotal(Row r) const;
    double colTotal(TimeCol c) const;

    /** Raw cycle count at (row, col) -- the integer quantity behind
     *  cell(), so conservation checks can sum without rounding. */
    uint64_t
    cellCycles(Row r, TimeCol c) const
    {
        return cycles_[static_cast<size_t>(r)][static_cast<size_t>(c)];
    }

    // ---- Table 1 ----
    /** Fraction of instructions in the given group. */
    double groupFraction(Group g) const;

    // ---- Table 2 ----
    /** Fraction of instructions in the given PC-changing class. */
    double pcChangeFraction(PcChangeKind k) const;
    /** Fraction of that class that actually changed the PC. */
    double takenFraction(PcChangeKind k) const;

    // ---- Table 3 ----
    double spec1PerInstr() const;
    double spec26PerInstr() const;
    double bdispPerInstr() const;

    // ---- Table 4 ----
    /** Share of specifiers (in the position class) in the category.
     *  pos: 0 = SPEC1, 1 = SPEC2-6, 2 = total. */
    double specCategoryFraction(SpecCategory cat, int pos) const;
    double indexedFraction(int pos) const;

    // ---- Table 5 ----
    double readsPerInstr(Row r) const;
    double writesPerInstr(Row r) const;
    double totalReadsPerInstr() const;
    double totalWritesPerInstr() const;

    // ---- Table 7 ----
    double headwaySwIntRequests() const;
    double headwayInterrupts() const;
    double headwayContextSwitches() const;

    // ---- Section 4.2 ----
    double tbMissPerInstr() const;
    double tbMissPerInstrD() const;
    double tbMissPerInstrI() const;
    double tbServiceCyclesPerMiss() const;
    double tbServiceStallPerMiss() const;

    // ---- Section 3.3 ----
    double unalignedPerInstr() const;

    /** Hottest control-store locations (microcode profiling). */
    struct HotSpot
    {
        UAddr addr;
        const char *name;
        uint64_t cycles;
    };
    std::vector<HotSpot> hottest(size_t n) const;

  private:
    double
    perInstr(double v) const
    {
        return instructions_ ? v / static_cast<double>(instructions_)
                             : 0.0;
    }

    void classify();

    const ControlStore &cs_;
    /** Set by the composite constructor; hist_ then refers to it. */
    std::unique_ptr<Histogram> owned_;
    const Histogram &hist_;

    uint64_t instructions_ = 0;
    uint64_t totalCycles_ = 0;

    static constexpr size_t numRows = static_cast<size_t>(Row::NumRows);
    static constexpr size_t numCols =
        static_cast<size_t>(TimeCol::NumCols);
    std::array<std::array<uint64_t, numCols>, numRows> cycles_{};
    std::array<uint64_t, numRows> reads_{};
    std::array<uint64_t, numRows> writes_{};

    std::array<uint64_t, static_cast<size_t>(ExecFlow::NumFlows)>
        flowEntries_{};
    std::array<uint64_t,
               static_cast<size_t>(PcChangeKind::NumKinds)> taken_{};

    // [mode][pos] specifier-routine entry counts.
    uint64_t specEntries_[static_cast<size_t>(AddrMode::NumModes)][2] =
        {};
    uint64_t indexEntries_[2] = {};

    uint64_t swIntRequests_ = 0;
    uint64_t interrupts_ = 0;
    uint64_t contextSwitches_ = 0;
    uint64_t tbMissD_ = 0;
    uint64_t tbMissI_ = 0;
    uint64_t tbServiceCycles_ = 0;
    uint64_t tbServiceStalls_ = 0;
    uint64_t unaligned_ = 0;
};

} // namespace vax

#endif // UPC780_UPC_ANALYZER_HH
