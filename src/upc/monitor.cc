#include "upc/monitor.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/snapshot.hh"
#include "support/stats.hh"

namespace vax
{

void
Histogram::merge(const Histogram &other, uint64_t weight)
{
    for (size_t i = 0; i < normal.size(); ++i) {
        normal[i] += other.normal[i] * weight;
        stalled[i] += other.stalled[i] * weight;
    }
}

Histogram
weightedComposite(const std::vector<const Histogram *> &parts,
                  const std::vector<uint64_t> &weights)
{
    Histogram total;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (!parts[i])
            continue;
        total.merge(*parts[i], i < weights.size() ? weights[i] : 1);
    }
    return total;
}

uint64_t
Histogram::cycles() const
{
    uint64_t total = 0;
    for (size_t i = 0; i < normal.size(); ++i)
        total += normal[i] + stalled[i];
    return total;
}

uint64_t
Histogram::normalCycles() const
{
    uint64_t total = 0;
    for (uint64_t v : normal)
        total += v;
    return total;
}

uint64_t
Histogram::stalledCycles() const
{
    uint64_t total = 0;
    for (uint64_t v : stalled)
        total += v;
    return total;
}

void
Histogram::regStats(stats::Registry &r, const std::string &prefix) const
{
    const Histogram *h = this;
    r.addScalar(prefix + ".normalCycles",
                "cycles counted in the normal bank",
                [h] { return h->normalCycles(); });
    r.addScalar(prefix + ".stalledCycles",
                "cycles counted in the stalled bank",
                [h] { return h->stalledCycles(); });
    r.addScalar(prefix + ".cycles", "total cycles recorded",
                [h] { return h->cycles(); });
    r.addFormula(prefix + ".stallFraction",
                 "fraction of recorded cycles that were stalls", [h] {
                     uint64_t total = h->cycles();
                     return total
                         ? double(h->stalledCycles()) / double(total)
                         : 0.0;
                 });
}

void
Histogram::save(snap::Serializer &s) const
{
    s.putVecU64(normal);
    s.putVecU64(stalled);
}

void
Histogram::restore(snap::Deserializer &d)
{
    std::vector<uint64_t> n = d.getVecU64();
    std::vector<uint64_t> st = d.getVecU64();
    if (n.size() != normal.size() || st.size() != stalled.size())
        throw snap::SnapshotError(
            "snapshot: histogram bank size mismatch (snapshot from a "
            "different control-store capacity)");
    normal = std::move(n);
    stalled = std::move(st);
}

UpcMonitor::~UpcMonitor()
{
    // Bank anything still batched, then make sure the EBOX drops its
    // fast-path pointer to this board.
    sync();
    if (ebox_)
        ebox_->detachMonitor(this);
}

void
UpcMonitor::save(snap::Serializer &s) const
{
    // Checkpoint chunks can end mid-instruction; the banks must
    // include every cycle simulated so far.
    sync();
    s.beginSection("upc.monitor");
    hist_.save(s);
    s.putBool(collecting_);
    s.endSection();
}

void
UpcMonitor::restore(snap::Deserializer &d)
{
    sync();
    d.beginSection("upc.monitor");
    hist_.restore(d);
    collecting_ = d.getBool();
    d.endSection();
    // The restored CSR state may differ from the pre-restore one; the
    // EBOX's cached fast-path flag folds it in.
    if (ebox_)
        ebox_->refreshBatchOn();
}

void
UpcMonitor::regStats(stats::Registry &r, const std::string &prefix) const
{
    // Same names and meanings as Histogram::regStats, but syncing the
    // EBOX batch before each read so dump-time totals are exact.
    const UpcMonitor *m = this;
    r.addScalar(prefix + ".normalCycles",
                "cycles counted in the normal bank", [m] {
                    m->sync();
                    return m->hist_.normalCycles();
                });
    r.addScalar(prefix + ".stalledCycles",
                "cycles counted in the stalled bank", [m] {
                    m->sync();
                    return m->hist_.stalledCycles();
                });
    r.addScalar(prefix + ".cycles", "total cycles recorded", [m] {
        m->sync();
        return m->hist_.cycles();
    });
    r.addFormula(prefix + ".stallFraction",
                 "fraction of recorded cycles that were stalls", [m] {
                     m->sync();
                     uint64_t total = m->hist_.cycles();
                     return total ? double(m->hist_.stalledCycles()) /
                             double(total)
                                  : 0.0;
                 });
}

void
UpcMonitor::count(UAddr upc, bool stalled)
{
    if (!collecting_)
        return;
    upc_assert(upc < ControlStore::capacity);
    if (stalled)
        ++hist_.stalled[upc];
    else
        ++hist_.normal[upc];
}

void
UpcMonitor::clear()
{
    // Counts batched before the clear command belong to the cleared
    // epoch: bank them first so they are wiped, not replayed later.
    sync();
    std::fill(hist_.normal.begin(), hist_.normal.end(), 0);
    std::fill(hist_.stalled.begin(), hist_.stalled.end(), 0);
}

void
UpcMonitor::unibusWrite(uint32_t value)
{
    switch (value) {
      case cmdStop:
        stop();
        break;
      case cmdStart:
        start();
        break;
      case cmdClear:
        clear();
        break;
      default:
        warn("UPC monitor: unknown CSR command %u", value);
        break;
    }
}

} // namespace vax
