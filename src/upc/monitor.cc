#include "upc/monitor.hh"

#include <algorithm>

#include "support/logging.hh"

namespace vax
{

void
Histogram::add(const Histogram &other)
{
    for (size_t i = 0; i < normal.size(); ++i) {
        normal[i] += other.normal[i];
        stalled[i] += other.stalled[i];
    }
}

uint64_t
Histogram::cycles() const
{
    uint64_t total = 0;
    for (size_t i = 0; i < normal.size(); ++i)
        total += normal[i] + stalled[i];
    return total;
}

void
UpcMonitor::count(UAddr upc, bool stalled)
{
    if (!collecting_)
        return;
    upc_assert(upc < ControlStore::capacity);
    if (stalled)
        ++hist_.stalled[upc];
    else
        ++hist_.normal[upc];
}

void
UpcMonitor::clear()
{
    std::fill(hist_.normal.begin(), hist_.normal.end(), 0);
    std::fill(hist_.stalled.begin(), hist_.stalled.end(), 0);
}

void
UpcMonitor::unibusWrite(uint32_t value)
{
    switch (value) {
      case cmdStop:
        stop();
        break;
      case cmdStart:
        start();
        break;
      case cmdClear:
        clear();
        break;
      default:
        warn("UPC monitor: unknown CSR command %u", value);
        break;
    }
}

} // namespace vax
