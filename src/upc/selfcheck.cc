#include "upc/selfcheck.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "upc/analyzer.hh"

namespace vax
{

namespace
{

/** printf-append one violation line. */
__attribute__((format(printf, 2, 3))) void
violate(SelfCheckReport &rep, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    rep.violations.push_back(buf);
}

void
checkEq(SelfCheckReport &rep, const char *what, uint64_t a, uint64_t b)
{
    ++rep.checks;
    if (a != b)
        violate(rep, "%s: %" PRIu64 " != %" PRIu64, what, a, b);
}

void
checkLe(SelfCheckReport &rep, const char *what, uint64_t a, uint64_t b)
{
    ++rep.checks;
    if (a > b)
        violate(rep, "%s: %" PRIu64 " > %" PRIu64, what, a, b);
}

/**
 * The identities shared by a part and a composite total.
 *
 * @param write_slack Writes the buffer may still hold when the run
 *        stops: one per merged machine.
 */
void
checkTotals(SelfCheckReport &rep, const ControlStore &cs,
            const std::string &who, const Histogram &hist,
            const HwTotals &hw, uint64_t write_slack)
{
    std::string p = who + ": ";

    // Histogram bank totals must sum to the histogram total.
    checkEq(rep, (p + "normal + stalled == histogram cycles").c_str(),
            hist.normalCycles() + hist.stalledCycles(), hist.cycles());

    // Table 8 decomposition: the analyzer classifies every counted
    // cycle into exactly one (row, column) cell.
    HistogramAnalyzer an(cs, hist);
    uint64_t cells = 0;
    for (size_t r = 0; r < static_cast<size_t>(Row::NumRows); ++r)
        for (size_t c = 0; c < static_cast<size_t>(TimeCol::NumCols);
             ++c)
            cells += an.cellCycles(static_cast<Row>(r),
                                   static_cast<TimeCol>(c));
    checkEq(rep, (p + "Table 8 cells sum == classified total").c_str(),
            cells, an.totalCycles());
    checkEq(rep, (p + "classified total == histogram cycles").c_str(),
            an.totalCycles(), hist.cycles());

    // The monitor is passive and gated off while Null runs: it can
    // never count more than the machine executed.
    checkLe(rep, (p + "histogram cycles <= executed cycles").c_str(),
            hist.cycles(), hw.counters.cycles);
    checkLe(rep,
            (p + "histogram instructions <= retired").c_str(),
            an.instructions(), hw.counters.instructions);

    // Cross-subsystem identities: every EBOX data read probes the
    // cache exactly once, every IB longword fetch likewise.
    checkEq(rep, (p + "cache D-reads == EBOX data reads").c_str(),
            hw.cache.readRefsD, hw.dataReads);
    checkEq(rep, (p + "cache I-reads == IB longword fetches").c_str(),
            hw.cache.readRefsI, hw.ibLongwordFetches);
    // Writes reach the cache through the write buffer, which may
    // still hold the last write when the run stops.
    checkLe(rep, (p + "cache writes <= EBOX data writes").c_str(),
            hw.cache.writeRefs, hw.dataWrites);
    checkLe(rep, (p + "EBOX writes - cache writes <= in-flight").c_str(),
            hw.dataWrites - hw.cache.writeRefs, write_slack);

    // Misses are a subset of references.
    checkLe(rep, (p + "cache missesI <= refsI").c_str(),
            hw.cache.readMissesI, hw.cache.readRefsI);
    checkLe(rep, (p + "cache missesD <= refsD").c_str(),
            hw.cache.readMissesD, hw.cache.readRefsD);
    checkLe(rep, (p + "cache write hits <= writes").c_str(),
            hw.cache.writeHits, hw.cache.writeRefs);
    checkLe(rep, (p + "tb missesI <= lookupsI").c_str(),
            hw.tb.missesI, hw.tb.lookupsI);
    checkLe(rep, (p + "tb missesD <= lookupsD").c_str(),
            hw.tb.missesD, hw.tb.lookupsD);
}

} // anonymous namespace

std::string
SelfCheckReport::summary() const
{
    if (ok()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "self-check: %u identities hold", checks);
        return buf;
    }
    std::string s = "self-check FAILED:";
    for (const std::string &v : violations) {
        s += "\n  ";
        s += v;
    }
    return s;
}

SelfCheckReport
selfCheckResult(const ControlStore &cs, const ExperimentResult &r)
{
    SelfCheckReport rep;
    if (r.failed) {
        // A failed job carries no measurements; nothing to conserve.
        return rep;
    }
    checkTotals(rep, cs, r.name.empty() ? "result" : r.name, r.hist,
                r.hw, 1);
    return rep;
}

SelfCheckReport
selfCheckComposite(const ControlStore &cs, const CompositeResult &comp,
                   const std::vector<uint64_t> &weights)
{
    SelfCheckReport rep;

    // Each surviving part individually.
    Histogram expect_hist;
    HwTotals expect_hw;
    uint64_t slack = 0;
    for (size_t i = 0; i < comp.parts.size(); ++i) {
        const ExperimentResult &part = comp.parts[i];
        if (part.failed)
            continue;
        SelfCheckReport pr = selfCheckResult(cs, part);
        rep.checks += pr.checks;
        for (auto &v : pr.violations)
            rep.violations.push_back(std::move(v));
        uint64_t w = i < weights.size() ? weights[i] : 1;
        slack += w; // one in-flight write per machine, scaled by merge
        expect_hist.merge(part.hist, w);
        expect_hw.add(part.hw, w);
    }

    // Merge identities: the composite equals the weighted sum of the
    // surviving parts, bank by bank and counter by counter.
    checkEq(rep, "composite: histogram cycles == weighted part sum",
            comp.hist.cycles(), expect_hist.cycles());
    checkEq(rep, "composite: normal bank == weighted part sum",
            comp.hist.normalCycles(), expect_hist.normalCycles());
    checkEq(rep, "composite: stalled bank == weighted part sum",
            comp.hist.stalledCycles(), expect_hist.stalledCycles());
    checkEq(rep, "composite: executed cycles == weighted part sum",
            comp.hw.counters.cycles, expect_hw.counters.cycles);
    checkEq(rep, "composite: instructions == weighted part sum",
            comp.hw.counters.instructions,
            expect_hw.counters.instructions);

    // And the composite totals obey the same conservation identities
    // as any single result -- with the write-buffer slack scaled to
    // one in-flight write per part.
    checkTotals(rep, cs, "composite", comp.hist, comp.hw,
                slack ? slack : 1);
    return rep;
}

} // namespace vax
