#include "upc/hist_io.hh"

#include <cinttypes>
#include <cstdio>

#include "support/logging.hh"

namespace vax
{

namespace
{

const char *
memKindName(UMemKind m)
{
    switch (m) {
      case UMemKind::None:  return "none";
      case UMemKind::Read:  return "read";
      case UMemKind::Write: return "write";
    }
    return "?";
}

} // anonymous namespace

bool
saveHistogramCsv(const std::string &path, const Histogram &hist,
                 const ControlStore &cs)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    std::fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    for (UAddr a = 0; a < cs.size(); ++a) {
        uint64_t n = hist.normal[a];
        uint64_t s = hist.stalled[a];
        if (!n && !s)
            continue;
        const UAnnotation &ann = cs.annotation(a);
        std::fprintf(f, "%u,%s,%s,%s,%d,%" PRIu64 ",%" PRIu64 "\n", a,
                     ann.name, rowName(ann.row),
                     memKindName(ann.mem), ann.ibRequest ? 1 : 0, n,
                     s);
    }
    bool ok = std::fclose(f) == 0;
    return ok;
}

bool
loadHistogramCsv(const std::string &path, Histogram *hist)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        warn("cannot open '%s' for reading", path.c_str());
        return false;
    }
    *hist = Histogram();
    char line[512];
    bool header = true;
    while (std::fgets(line, sizeof(line), f)) {
        if (header) {
            header = false;
            continue;
        }
        unsigned upc = 0;
        uint64_t normal = 0, stalled = 0;
        // The name/row/mem/ib columns are informational; parse around
        // them (name never contains a comma).
        char name[128], row[64], mem[16];
        int ib = 0;
        int n = std::sscanf(line,
                            "%u,%127[^,],%63[^,],%15[^,],%d,%" SCNu64
                            ",%" SCNu64,
                            &upc, name, row, mem, &ib, &normal,
                            &stalled);
        if (n != 7) {
            warn("malformed histogram CSV line: %s", line);
            std::fclose(f);
            return false;
        }
        if (upc >= ControlStore::capacity) {
            warn("histogram CSV upc %u out of range", upc);
            std::fclose(f);
            return false;
        }
        hist->normal[upc] = normal;
        hist->stalled[upc] = stalled;
    }
    std::fclose(f);
    return true;
}

} // namespace vax
