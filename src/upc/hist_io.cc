#include "upc/hist_io.hh"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace vax
{

namespace
{

const char *
memKindName(UMemKind m)
{
    switch (m) {
      case UMemKind::None:  return "none";
      case UMemKind::Read:  return "read";
      case UMemKind::Write: return "write";
    }
    return "?";
}

} // anonymous namespace

bool
saveHistogramCsv(const std::string &path, const Histogram &hist,
                 const ControlStore &cs)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    std::fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    for (UAddr a = 0; a < cs.size(); ++a) {
        uint64_t n = hist.normal[a];
        uint64_t s = hist.stalled[a];
        if (!n && !s)
            continue;
        const UAnnotation &ann = cs.annotation(a);
        std::fprintf(f, "%u,%s,%s,%s,%d,%" PRIu64 ",%" PRIu64 "\n", a,
                     ann.name, rowName(ann.row),
                     memKindName(ann.mem), ann.ibRequest ? 1 : 0, n,
                     s);
    }
    bool ok = std::fclose(f) == 0;
    return ok;
}

namespace
{

/** Parse a non-negative decimal field; false on empty/garbage/
 *  uint64 overflow.  Digits-only by construction, so "NaN", "-1",
 *  "1e9" and friends are all rejected here rather than wrapping. */
bool
parseCount(const std::string &field, uint64_t *out)
{
    if (field.empty())
        return false;
    uint64_t v = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            return false;
        uint64_t d = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    *out = v;
    return true;
}

} // anonymous namespace

bool
loadHistogramCsv(const std::string &path, Histogram *hist)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        warn("cannot open '%s' for reading", path.c_str());
        return false;
    }
    *hist = Histogram();
    char line[512];
    bool header = true;
    unsigned lineno = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++lineno;
        if (header) {
            header = false;
            continue;
        }
        // Split on commas.  The name/row/mem/ib columns (1-4) are
        // informational and may be empty -- an unannotated
        // micro-address saves as "upc,,...," -- which is why this
        // cannot be an sscanf("%[^,]") parse: that refuses empty
        // fields and made such files unloadable.
        std::vector<std::string> fields;
        {
            std::string cur;
            for (const char *p = line; *p && *p != '\n' && *p != '\r';
                 ++p) {
                if (*p == ',') {
                    fields.push_back(std::move(cur));
                    cur.clear();
                } else {
                    cur.push_back(*p);
                }
            }
            fields.push_back(std::move(cur));
        }
        uint64_t upc = 0, normal = 0, stalled = 0;
        if (fields.size() != 7 || !parseCount(fields[0], &upc) ||
            !parseCount(fields[5], &normal) ||
            !parseCount(fields[6], &stalled)) {
            warn("%s:%u: malformed histogram CSV row: %s",
                 path.c_str(), lineno, line);
            std::fclose(f);
            return false;
        }
        if (upc >= ControlStore::capacity) {
            warn("%s:%u: histogram CSV upc %llu out of range",
                 path.c_str(), lineno,
                 static_cast<unsigned long long>(upc));
            std::fclose(f);
            return false;
        }
        hist->normal[upc] = normal;
        hist->stalled[upc] = stalled;
    }
    std::fclose(f);
    return true;
}

} // namespace vax
