/**
 * @file
 * Pool-level checkpoint/recovery plumbing.
 *
 * The snapshot layer (support/snapshot.hh) knows how to freeze one
 * Experiment; this module decides *when* and *where*.  A checkpointed
 * pool run keeps, per job, a rolling "<dir>/jobNNN-<name>.ckpt"
 * snapshot refreshed every intervalCycles, plus a
 * "<dir>/jobNNN-<name>.result" file once the job completes.  A
 * manifest fingerprinting the whole job list guards --resume: a
 * killed process restarted with --resume skips completed jobs via
 * their .result files and restores running ones from their .ckpt
 * files, but only after the manifest proves it is the same composite.
 *
 * Everything here is best-effort durable and fail-loud: a checkpoint
 * that cannot be written warns (the run continues, merely less
 * resumable), while resuming against a missing or mismatched manifest
 * is fatal -- silently re-running a different composite would be a
 * measurement error, not a convenience.
 */

#ifndef UPC780_DRIVER_CHECKPOINT_HH
#define UPC780_DRIVER_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/experiments.hh"

namespace vax
{

struct SimJob;

/** Where and how often pooled jobs checkpoint (off by default). */
struct CheckpointConfig
{
    /** Checkpoint directory; empty disables checkpointing. */
    std::string dir;
    /** Cycles between rolling checkpoints of a running job. */
    uint64_t intervalCycles = 250'000;
    /** Resume a previously interrupted run from dir's manifest. */
    bool resume = false;

    bool enabled() const { return !dir.empty(); }

    /**
     * Strip --checkpoint-dir PATH, --checkpoint-interval N and
     * --resume from argv (updating *argc, same contract as
     * parseJobsFlag).  Malformed values and options that only make
     * sense together (--resume without a directory) are fatal, so a
     * typo cannot silently run an unresumable experiment.
     */
    static CheckpointConfig parseFlags(int *argc, char **argv);
};

/**
 * Strip --watchdog-cycles N and --job-timeout SECONDS from argv and
 * return them as RunLimits (zero fields = flag absent).  Malformed
 * values are fatal, matching the --faults contract.
 */
RunLimits parseLimitsFlags(int *argc, char **argv);

/** @{ Checkpoint-file naming for job @p index named @p name (the name
 *  is sanitized for the filesystem; the index keeps duplicates
 *  distinct). */
std::string checkpointPath(const CheckpointConfig &ck, size_t index,
                           const std::string &name);
std::string resultPath(const CheckpointConfig &ck, size_t index,
                       const std::string &name);
std::string manifestPath(const CheckpointConfig &ck);
/** @} */

/** True when @p path exists and is readable. */
bool fileExists(const std::string &path);

/** Create the checkpoint directory if needed (fatal on failure). */
void ensureCheckpointDir(const CheckpointConfig &ck);

/**
 * Persist a completed job's measurements so --resume can skip the
 * job entirely.  @return False (with warn) on I/O failure.
 */
bool writeResultFile(const std::string &path,
                     const ExperimentResult &r);

/**
 * Load a completed job's .result file into @p out.  @return False
 * when the file is absent, or when it is present but truncated /
 * CRC-damaged / version-skewed (warned loudly) -- a half-written
 * result means the job is simply not finished and must be re-run,
 * never merged and never allowed to abort a campaign.
 */
bool readResultFile(const std::string &path, ExperimentResult *out);

/** Strict variant: damage in a present file raises SnapshotError
 *  (for tests and callers that must distinguish damage from
 *  absence). */
bool readResultFileChecked(const std::string &path,
                           ExperimentResult *out);

/** Write the job-list manifest for a fresh checkpointed run
 *  (fatal on I/O failure -- without it the run cannot be resumed). */
void writeManifest(const CheckpointConfig &ck,
                   const std::vector<SimJob> &jobs);

/**
 * Verify that dir's manifest describes exactly @p jobs (count, names,
 * seeds, cycle budgets, weights).  Fatal on a missing manifest or any
 * mismatch: --resume against a different composite is refused, never
 * papered over.
 */
void checkManifest(const CheckpointConfig &ck,
                   const std::vector<SimJob> &jobs);

} // namespace vax

#endif // UPC780_DRIVER_CHECKPOINT_HH
