/**
 * @file
 * The campaign layer: one characterization run sharded across a
 * supervised fleet of worker *processes*.
 *
 * SimPool scales the composite across threads in one address space;
 * at fleet scale the failures that dominate are the ones a thread
 * pool cannot survive -- whole-process death (OOM kill, node reboot),
 * hangs, and files cut off mid-write.  The campaign layer runs the
 * same job list through N shard processes supervised by a parent:
 *
 *  - The *spool* is a directory of per-job token files.  A token
 *    lives in exactly one of todo/, claimed/ or quarantine/; shards
 *    take work by an atomic claim-file rename (rename(2) of the same
 *    token within the spool), so idle shards work-steal and no job
 *    can be claimed twice.  A job retires when its `.result` file
 *    (PR-4 format, CRC-checked, written tmp+rename) exists.
 *  - Every shard refreshes a per-shard *heartbeat* file; the
 *    supervisor reaps crashed children immediately via waitpid and
 *    SIGKILLs children whose heartbeat goes stale (a hang), then
 *    reclaims their claimed tokens back into todo/.
 *  - A failed attempt (panic/fatal/watchdog/timeout surfaced as a
 *    SimError, or a crash while holding the claim) requeues the job
 *    with capped exponential backoff; after maxAttempts failures the
 *    token moves to quarantine/ and the campaign completes over the
 *    survivors, renormalized exactly like the in-process pool.
 *  - SIGINT/SIGTERM on the supervisor fans out to the shards, which
 *    drain behind their rolling per-job checkpoints and exit 130;
 *    `--resume` restarts the whole fleet from the manifest plus the
 *    per-job .result/.ckpt files and produces the byte-identical
 *    composite of an uninterrupted run (the kill-drill ctest gate).
 *  - Claims are *epoch-fenced*: every token carries a monotonic fence
 *    number, bumped (and persisted to a per-job fence file) each time
 *    the supervisor reclaims a claim from a dead or hung shard.  A
 *    shard stamps its claim's fence into the `.result` it writes, and
 *    the merge rejects any result whose fence is below the job's
 *    high-water mark -- so a hung-then-revived shard that still
 *    thinks it owns a job can never double-commit it.  This is the
 *    split-brain guard a shared-filesystem multi-node tier requires.
 *  - Every campaign-visible file moves through the `io::` durable
 *    writers (fsync file, rename, fsync directory) and the host-I/O
 *    fault layer (support/iofault.hh): `--io-faults` /
 *    UPC780_IO_FAULTS injects deterministic ENOSPC, EIO, short
 *    read/write, fsync, rename and stale-mtime failures, and
 *    `--chaos-drill SEED` fuzzes a seed-derived schedule across the
 *    fleet.  The hardening the drills forced: ENOSPC pauses
 *    checkpointing (loud degraded mode) instead of killing the shard,
 *    claim-rename EIO retries with capped backoff then quarantines,
 *    and liveness uses the heartbeat's beat *counter* (mtime only as
 *    a fallback) so coarse-mtime filesystems cannot cause false
 *    SIGKILLs.
 *
 * Every quantity that reaches the composite is a deterministic
 * simulation sum, so a campaign's stats dump is byte-identical to the
 * same job list run --in-process on a thread pool -- processes are
 * just the failure domain, never the measurement.
 */

#ifndef UPC780_DRIVER_CAMPAIGN_HH
#define UPC780_DRIVER_CAMPAIGN_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "driver/sim_pool.hh"

namespace vax
{

/**
 * Everything the campaign tool parses from its command line.  One
 * struct serves both roles: the supervisor passes the relevant subset
 * back to each shard it spawns, so a shard provably runs the same
 * campaign (and re-derives the same job list for the manifest check).
 */
struct CampaignConfig
{
    std::string spool;           ///< spool directory (required)
    unsigned shards = 2;         ///< worker processes to keep alive
    uint64_t cycles = 2'000'000; ///< machine cycles per experiment
    unsigned replicas = 1;       ///< copies of the five-workload set
    uint64_t intervalCycles = 250'000; ///< checkpoint/chunk interval

    /** @{ Liveness: shards beat at chunk boundaries (at least every
     *  heartbeatInterval seconds of host time); the supervisor
     *  declares a shard hung once its heartbeat file is older than
     *  heartbeatTimeout and SIGKILLs it.  The timeout must exceed the
     *  interval, and comfortably exceed one chunk's host time. */
    double heartbeatInterval = 1.0;
    double heartbeatTimeout = 30.0;
    /** @} */

    /** @{ Retry policy: a job failure (SimError or shard crash while
     *  holding the claim) requeues with backoffBase * 2^(attempt-1)
     *  seconds of delay, capped at backoffCap; after maxAttempts
     *  total failures the job is quarantined as poison. */
    unsigned maxAttempts = 3;
    double backoffBase = 0.25;
    double backoffCap = 8.0;
    /** @} */

    bool resume = false;    ///< continue a killed campaign's spool
    bool inProcess = false; ///< reference mode: SimPool threads instead
                            ///< of processes (identical outputs)
    std::string statsJsonPath; ///< composite stats registry as JSON
    std::string tracePath;     ///< Chrome trace-event timeline

    /** @{ Host-I/O chaos (support/iofault.hh).  ioFaults is a
     *  deterministic fault schedule for *this* process (validated at
     *  parse time: a typo exits before anything launches);
     *  chaosSeed != 0 keeps the supervisor fault-free but hands every
     *  spawned shard a schedule derived from seed and spawn id.  The
     *  two are mutually exclusive on the command line. */
    std::string ioFaults;
    uint64_t chaosSeed = 0;
    /** @} */

    /** @{ Shard-worker mode (spawned by the supervisor, not users). */
    bool shardMode = false;
    unsigned shardId = 0;
    double epoch = 0.0; ///< supervisor start (wall), for telemetry
    /** @} */

    /** @{ Crash-drill knobs for the robustness tests and CI: make a
     *  specific failure happen deterministically instead of waiting
     *  for the datacenter to provide one. */
    uint64_t drillShard0DieAfterChunks = 0; ///< shard 0 self-SIGKILLs
                                            ///< mid-job at this chunk
    unsigned drillDieAfterResults = 0; ///< supervisor SIGKILLs fleet +
                                       ///< itself once N jobs finished
    unsigned drillPoisonJob = kNoJob;  ///< job index that fails every
                                       ///< attempt (quarantine path)
    uint64_t shardDieAfterChunks = 0;  ///< shard-side form of the
                                       ///< shard-0 drill flag
    static constexpr unsigned kNoJob = ~0u;
    /** @} */

    /**
     * Parse and strip every campaign flag from argv.  Mirrors
     * CheckpointConfig::parseFlags, but the failure contract is the
     * tool's: any malformed value, unknown argument or nonsensical
     * combination (--resume without --spool, --shards 0, a heartbeat
     * timeout at or below the interval, ...) prints the usage and
     * exits 2 -- a typo must never launch a different fleet than the
     * one asked for.  --help prints the usage and exits 0.
     */
    static CampaignConfig parseFlags(int *argc, char **argv);
};

/** The campaign tool's usage text (parseFlags prints it on error). */
void campaignUsage(const char *prog, std::FILE *out);

/**
 * One job's spool token.  The token travels between todo/, claimed/
 * and quarantine/ by rename; its contents carry the retry state.
 */
struct JobToken
{
    unsigned attempts = 0; ///< failed attempts consumed so far
    double notBefore = 0.0; ///< wall time before which no shard may
                            ///< run it (capped exponential backoff)
    uint64_t fence = 0;     ///< claim epoch (monotonic per job; see
                            ///< the fencing note atop this file)
    std::string lastError;  ///< final line of the last failure
};

/** @{ Spool geometry.  Job files (.ckpt/.result) use the PR-4
 *  checkpointPath/resultPath naming in the spool root. */
std::string campaignTodoPath(const CampaignConfig &cfg, size_t job);
std::string campaignClaimPath(const CampaignConfig &cfg, size_t job,
                              unsigned shard);
std::string campaignQuarantinePath(const CampaignConfig &cfg,
                                   size_t job);
std::string campaignHeartbeatPath(const CampaignConfig &cfg,
                                  unsigned shard);
std::string campaignLogPath(const CampaignConfig &cfg, unsigned shard);
std::string campaignFencePath(const CampaignConfig &cfg, size_t job);
/** @} */

/** @{ Fence files: the durable per-job claim-epoch high-water mark.
 *  readFenceFile returns 0 when the file is missing (every job starts
 *  at epoch 0); a damaged file warns and reads as 0 -- fencing then
 *  degrades to the pre-fence behavior instead of wedging the spool.
 *  bumpJobFence advances a reclaimed token past the high-water mark
 *  and persists the new mark *before* the caller requeues the token,
 *  so a zombie holder of the old claim is fenced out even if the
 *  supervisor dies between the two steps. */
uint64_t readFenceFile(const std::string &path);
bool writeFenceFile(const std::string &path, uint64_t fence);
uint64_t bumpJobFence(const CampaignConfig &cfg, size_t job,
                      JobToken *tok);
/** @} */

/** @{ Token I/O.  Writes are atomic (tmp+rename, like every other
 *  campaign-visible file); a damaged token reads as a fresh one with
 *  a loud warning -- retry bookkeeping is never worth an abort. */
bool writeJobTokenFile(const std::string &path, const JobToken &t);
bool readJobTokenFile(const std::string &path, JobToken *out);
/** @} */

/**
 * Outcome of a claim rename.  Lost is the normal race (another shard
 * took the token, or it was retired); Error is a host-I/O failure
 * (EIO and friends) that the caller must retry with backoff and
 * eventually quarantine -- it says nothing about who owns the token.
 */
enum class ClaimOutcome
{
    Won,
    Lost,
    Error,
};

/**
 * The claim primitive: atomically move a token from @p from to @p to.
 * A rename that reports failure but demonstrably happened (the token
 * is at @p to and gone from @p from -- a "rename lie" from a flaky
 * filesystem) self-heals to Won, since rename(2) within a directory
 * either moved the file or didn't.
 */
ClaimOutcome claimByRename(const std::string &from,
                           const std::string &to);

/** Backoff delay in seconds before attempt @p attempts+1 may run. */
double backoffSeconds(const CampaignConfig &cfg, unsigned attempts);

/** @{ Heartbeats: an atomic write of pid/seq/current-job.  Liveness
 *  is judged by the beat *counter* (seq) advancing -- the supervisor
 *  remembers the last seq it saw per shard and measures how long it
 *  has been unchanged.  readHeartbeatFile parses the contents (false
 *  when missing or damaged); heartbeatAgeSeconds is the mtime-based
 *  age (negative when missing), kept only as the fallback for an
 *  unreadable heartbeat -- mtime alone is untrustworthy on
 *  coarse-timestamp or clock-skewed filesystems. */
struct HeartbeatInfo
{
    long pid = -1;
    uint64_t seq = 0;
    long job = -1;
};
bool heartbeatWrite(const std::string &path, long pid, uint64_t seq,
                    long job);
bool readHeartbeatFile(const std::string &path, HeartbeatInfo *out);
double heartbeatAgeSeconds(const std::string &path);
/** @} */

/** Wall-clock now in seconds (CLOCK_REALTIME: comparable across the
 *  supervisor and its shards, which backoff stamps require). */
double campaignWallNow();

/**
 * The campaign's job list: replicas x the five paper workloads, in a
 * fixed order so every process derives the identical list (the
 * manifest check proves it).  Replica r > 0 gets a distinct seed and
 * a "#r" name suffix.  Drill knobs that only affect RunLimits are
 * applied here too (they are invisible to the manifest).
 */
std::vector<SimJob> campaignJobs(const CampaignConfig &cfg);

/** Supervisor entry: spool setup, shard fleet, liveness, merge.
 *  @return The process exit code (0, or 130 after a drained
 *  interrupt). */
int runCampaignSupervisor(const CampaignConfig &cfg);

/** Shard-worker entry: claim, simulate in checkpointed chunks,
 *  heartbeat, retire/requeue/quarantine.  @return Exit code. */
int runCampaignShard(const CampaignConfig &cfg);

} // namespace vax

#endif // UPC780_DRIVER_CAMPAIGN_HH
