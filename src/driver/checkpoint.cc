#include "driver/checkpoint.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "driver/sim_pool.hh"
#include "support/iofault.hh"
#include "support/logging.hh"
#include "support/snapshot.hh"

namespace vax
{

namespace
{

/** Parse a flag value as a positive integer, fatal on garbage. */
uint64_t
parseCount(const char *flag, const char *val)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(val, &end, 0);
    if (errno || end == val || *end || !v)
        fatal("%s: '%s' is not a positive count", flag, val);
    return v;
}

/** Parse a flag value as a positive duration in seconds. */
double
parseSeconds(const char *flag, const char *val)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(val, &end);
    if (errno || end == val || *end || !(v > 0.0))
        fatal("%s: '%s' is not a positive duration in seconds",
              flag, val);
    return v;
}

/**
 * Strip "--<name> V" / "--<name>=V" from argv; @return the value via
 * @p val and whether the flag was seen.  A valued flag with no value
 * is fatal rather than silently eating the next positional.
 */
bool
parseValueFlag(int *argc, char **argv, const char *name,
               std::string *val)
{
    std::string flag = std::string("--") + name;
    std::string pref = flag + "=";
    bool have = false;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (flag == arg) {
            if (i + 1 >= *argc)
                fatal("%s requires a value", flag.c_str());
            *val = argv[++i];
            have = true;
        } else if (std::strncmp(arg, pref.c_str(), pref.size()) == 0) {
            *val = arg + pref.size();
            have = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return have;
}

/** Job-name characters that survive into a checkpoint filename. */
std::string
sanitizeName(const std::string &name)
{
    std::string s;
    for (char c : name)
        s += (std::isalnum(static_cast<unsigned char>(c)) ||
              c == '-' || c == '_')
            ? c
            : '_';
    return s.empty() ? std::string("job") : s;
}

std::string
jobFile(const CheckpointConfig &ck, size_t index,
        const std::string &name, const char *ext)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job%03zu-", index);
    return ck.dir + "/" + buf + sanitizeName(name) + ext;
}

} // anonymous namespace

CheckpointConfig
CheckpointConfig::parseFlags(int *argc, char **argv)
{
    CheckpointConfig ck;
    std::string val;
    if (parseValueFlag(argc, argv, "checkpoint-dir", &val)) {
        if (val.empty())
            fatal("--checkpoint-dir requires a directory path");
        ck.dir = val;
    }
    bool have_interval =
        parseValueFlag(argc, argv, "checkpoint-interval", &val);
    if (have_interval)
        ck.intervalCycles =
            parseCount("--checkpoint-interval", val.c_str());
    ck.resume = parseBoolFlag(argc, argv, "resume");
    if (!ck.enabled()) {
        if (have_interval)
            fatal("--checkpoint-interval is meaningless without "
                  "--checkpoint-dir");
        if (ck.resume)
            fatal("--resume needs --checkpoint-dir to know where the "
                  "interrupted run left its checkpoints");
    }
    return ck;
}

RunLimits
parseLimitsFlags(int *argc, char **argv)
{
    RunLimits limits;
    std::string val;
    if (parseValueFlag(argc, argv, "watchdog-cycles", &val))
        limits.watchdogCycles =
            parseCount("--watchdog-cycles", val.c_str());
    if (parseValueFlag(argc, argv, "job-timeout", &val))
        limits.timeoutSeconds =
            parseSeconds("--job-timeout", val.c_str());
    return limits;
}

std::string
checkpointPath(const CheckpointConfig &ck, size_t index,
               const std::string &name)
{
    return jobFile(ck, index, name, ".ckpt");
}

std::string
resultPath(const CheckpointConfig &ck, size_t index,
           const std::string &name)
{
    return jobFile(ck, index, name, ".result");
}

std::string
manifestPath(const CheckpointConfig &ck)
{
    return ck.dir + "/manifest.ckpt";
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

void
ensureCheckpointDir(const CheckpointConfig &ck)
{
    if (::mkdir(ck.dir.c_str(), 0777) == 0 || errno == EEXIST)
        return;
    fatal("cannot create checkpoint directory '%s': %s",
          ck.dir.c_str(), std::strerror(errno));
}

bool
writeResultFile(const std::string &path, const ExperimentResult &r)
{
    snap::Serializer s;
    s.beginSection("result.meta");
    s.putString(r.name);
    s.putDouble(r.wallSeconds);
    s.putDouble(r.startSeconds);
    s.putU32(r.worker);
    s.putU32(r.retries);
    s.putU64(r.resumeCycle);
    s.putDouble(r.retryWallSeconds);
    s.putU64(r.fence);
    s.endSection();

    s.beginSection("result.hist");
    r.hist.save(s);
    s.endSection();

    s.beginSection("result.hw");
    r.hw.counters.save(s);
    r.hw.cache.save(s);
    r.hw.tb.save(s);
    s.putU64(r.hw.faults.parityErrors);
    s.putU64(r.hw.faults.tbCorruptions);
    s.putU64(r.hw.faults.sbiTimeouts);
    s.putU64(r.hw.faults.machineChecks);
    s.putU64(r.hw.faults.cacheDisables);
    s.putU64(r.hw.faults.osMachineChecks);
    s.putU64(r.hw.ibLongwordFetches);
    s.putU64(r.hw.dataReads);
    s.putU64(r.hw.dataWrites);
    s.putU64(r.hw.terminalLinesIn);
    s.putU64(r.hw.terminalLinesOut);
    s.putU64(r.hw.diskTransfers);
    s.endSection();
    return s.writeFile(path);
}

bool
readResultFile(const std::string &path, ExperimentResult *out)
{
    if (!fileExists(path))
        return false;
    // A .result cut off at the instant of a SIGKILL (truncated, CRC
    // damage, version skew) means the job is NOT finished -- report
    // it loudly and let the caller re-run the job.  Aborting would
    // let one half-written file kill a whole campaign; skipping
    // silently would merge a lie.
    try {
        return readResultFileChecked(path, out);
    } catch (const snap::SnapshotError &e) {
        warn("result file '%s' is damaged (%s); treating the job as "
             "unfinished -- it will be re-run", path.c_str(),
             e.what());
        return false;
    }
}

bool
readResultFileChecked(const std::string &path, ExperimentResult *out)
{
    if (!fileExists(path))
        return false;
    snap::Deserializer d = snap::Deserializer::fromFile(path);
    ExperimentResult r;
    d.beginSection("result.meta");
    r.name = d.getString();
    r.wallSeconds = d.getDouble();
    r.startSeconds = d.getDouble();
    r.worker = d.getU32();
    r.retries = d.getU32();
    r.resumeCycle = d.getU64();
    r.retryWallSeconds = d.getDouble();
    r.fence = d.getU64();
    d.endSection();

    d.beginSection("result.hist");
    r.hist.restore(d);
    d.endSection();

    d.beginSection("result.hw");
    r.hw.counters.restore(d);
    r.hw.cache.restore(d);
    r.hw.tb.restore(d);
    r.hw.faults.parityErrors = d.getU64();
    r.hw.faults.tbCorruptions = d.getU64();
    r.hw.faults.sbiTimeouts = d.getU64();
    r.hw.faults.machineChecks = d.getU64();
    r.hw.faults.cacheDisables = d.getU64();
    r.hw.faults.osMachineChecks = d.getU64();
    r.hw.ibLongwordFetches = d.getU64();
    r.hw.dataReads = d.getU64();
    r.hw.dataWrites = d.getU64();
    r.hw.terminalLinesIn = d.getU64();
    r.hw.terminalLinesOut = d.getU64();
    r.hw.diskTransfers = d.getU64();
    d.endSection();
    d.finish();
    *out = std::move(r);
    return true;
}

void
writeManifest(const CheckpointConfig &ck,
              const std::vector<SimJob> &jobs)
{
    snap::Serializer s;
    s.beginSection("pool.manifest");
    s.putU64(jobs.size());
    for (const SimJob &j : jobs) {
        s.putString(j.profile.name);
        s.putU64(j.profile.seed);
        s.putU64(j.sim.seed);
        s.putU64(j.cycles);
        s.putU64(j.weight);
    }
    s.endSection();
    // Nothing about the run is resumable without the manifest, so a
    // write that stays failed is fatal -- but a *transient* failure at
    // the very first spool write (an ENOSPC race, a flaky mount) gets
    // a few tries before it is allowed to kill the whole campaign.
    std::vector<uint8_t> image = s.finish();
    for (unsigned attempt = 1; attempt <= 5; ++attempt) {
        if (io::atomicWrite(manifestPath(ck), image.data(),
                            image.size()))
            return;
        warn("cannot write checkpoint manifest to '%s' (attempt "
             "%u/5); retrying", ck.dir.c_str(), attempt);
        ::usleep(50'000u * attempt);
    }
    fatal("cannot write checkpoint manifest to '%s'", ck.dir.c_str());
}

void
checkManifest(const CheckpointConfig &ck,
              const std::vector<SimJob> &jobs)
{
    std::string path = manifestPath(ck);
    if (!fileExists(path))
        fatal("--resume: no manifest in '%s' (nothing to resume -- "
              "was the directory ever used for a checkpointed run?)",
              ck.dir.c_str());
    try {
        snap::Deserializer d = snap::Deserializer::fromFile(path);
        d.beginSection("pool.manifest");
        d.expectU64(jobs.size(), "job count");
        for (const SimJob &j : jobs) {
            std::string name = d.getString();
            if (name != j.profile.name)
                fatal("--resume: manifest job '%s' does not match "
                      "this run's job '%s' (different composite)",
                      name.c_str(), j.profile.name.c_str());
            d.expectU64(j.profile.seed, "workload seed");
            d.expectU64(j.sim.seed, "machine seed");
            d.expectU64(j.cycles, "cycle budget");
            d.expectU64(j.weight, "job weight");
        }
        d.endSection();
        d.finish();
    } catch (const snap::SnapshotError &e) {
        fatal("--resume: %s", e.what());
    }
}

} // namespace vax
