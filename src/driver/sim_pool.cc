#include "driver/sim_pool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "support/interrupt.hh"
#include "support/iofault.hh"
#include "support/logging.hh"
#include "support/sim_error.hh"
#include "support/snapshot.hh"
#include "support/trace.hh"

namespace vax
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool
envProgress()
{
    const char *env = std::getenv("UPC780_PROGRESS");
    return env && *env && std::strcmp(env, "0") != 0;
}

/** One complete heartbeat line in a single fwrite (workers race). */
void
emitHeartbeat(size_t done, size_t total, double elapsed)
{
    double eta = done
        ? elapsed * (double(total - done) / double(done))
        : 0.0;
    char line[128];
    int n = std::snprintf(line, sizeof(line),
                          "pool: %zu/%zu jobs done, %.1fs elapsed, "
                          "eta %.1fs\n",
                          done, total, elapsed, eta);
    if (n > 0)
        std::fwrite(line, 1, static_cast<size_t>(n), stderr);
}

/**
 * Chunk size when checkpointing is off: small enough that a drain
 * request is noticed promptly, large enough that the per-chunk
 * bookkeeping (one branch, one relaxed atomic load) is invisible
 * next to simulating 64k machine cycles.  Chunk boundaries never
 * change the simulated cycle stream, so any value is
 * byte-transparent.
 */
constexpr uint64_t drainChunkCycles = 65536;

/**
 * One execution attempt of a job, chunked so the experiment can be
 * checkpointed between chunks and drained on an interrupt request.
 *
 * @param ckpt_path   Rolling checkpoint file ("" = checkpointing off).
 * @param try_restore Resume from ckpt_path when it exists (retry
 *                    after a failure, or --resume of a killed run).
 *                    An unreadable checkpoint falls back, loudly, to
 *                    a fresh run -- a damaged best-effort file should
 *                    cost the saved cycles, not the job.
 * @param clear_trip  Disarm a RunLimits::tripCycle recovery drill
 *                    after a successful restore (the checkpointed-
 *                    retry path the drill exists to exercise).
 */
ExperimentResult
runJobAttempt(const SimJob &job, const std::string &ckpt_path,
              uint64_t interval, bool try_restore, bool clear_trip)
{
    auto make = [&job] {
        return std::make_unique<Experiment>(job.profile, job.cycles,
                                            job.sim, job.vms,
                                            job.limits);
    };
    std::unique_ptr<Experiment> exp = make();
    uint64_t resume_cycle = 0;
    if (try_restore && !ckpt_path.empty() && fileExists(ckpt_path)) {
        try {
            exp->restoreFile(ckpt_path);
            resume_cycle = exp->cycle();
            if (clear_trip)
                exp->clearTrip();
            TRACE(Pool, "job '%s' restored from checkpoint at "
                  "cycle %llu",
                  job.profile.name.c_str(),
                  static_cast<unsigned long long>(resume_cycle));
        } catch (const snap::SnapshotError &e) {
            warn("pool: checkpoint '%s' unusable (%s); job '%s' "
                 "restarts from its seed",
                 ckpt_path.c_str(), e.what(),
                 job.profile.name.c_str());
            // A partially applied restore is not a valid machine:
            // rebuild from scratch.
            exp = make();
            resume_cycle = 0;
        }
    }
    const uint64_t chunk =
        ckpt_path.empty() ? drainChunkCycles
                          : std::max<uint64_t>(interval, 1);
    bool interrupted = false;
    while (!exp->runChunk(chunk)) {
        if (!ckpt_path.empty())
            exp->saveFile(ckpt_path);
        if (interrupt::requested()) {
            // The checkpoint just written is the final one; the
            // partial result below carries the interrupted marker.
            interrupted = true;
            break;
        }
    }
    ExperimentResult r = exp->takeResult();
    r.resumeCycle = resume_cycle;
    r.interrupted = interrupted;
    return r;
}

/**
 * Run one job with pool bookkeeping.  When tracing is on, the job's
 * lines collect in a per-job buffer flushed in one write at the end,
 * so concurrent jobs' traces never interleave.
 */
ExperimentResult
runPooledJob(const SimJob &job, unsigned worker, Clock::time_point t0,
             const std::string &ckpt_path, uint64_t interval,
             bool try_restore, bool clear_trip)
{
    trace::BufferSink buf;
    const bool buffering = trace::anyEnabled();
    trace::ScopedSink scoped(buffering ? &buf
                                       : static_cast<trace::TraceSink *>(
                                             nullptr));
    double start = secondsSince(t0);
    TRACE(Pool, "job '%s' start (worker %u)",
          job.profile.name.c_str(), worker);
    auto a0 = Clock::now();
    ExperimentResult r =
        runJobAttempt(job, ckpt_path, interval, try_restore,
                      clear_trip);
    r.wallSeconds = secondsSince(a0);
    r.startSeconds = start;
    r.worker = worker;
    TRACE(Pool, "job '%s' done: %.2fs wall",
          job.profile.name.c_str(), r.wallSeconds);
    if (buffering)
        buf.flushTo(stderr);
    return r;
}

/**
 * Guarded variant: a panic()/fatal()/watchdog/timeout inside the job
 * surfaces as a SimError here instead of killing the process.  The
 * job is retried once -- from its last checkpoint when one exists
 * (the failed attempt's cycles up to that point are kept, and the
 * recovery cost lands in resumeCycle/retryWallSeconds), else from
 * its seed (pure by-value state, so the retry replays the identical
 * cycle stream).  A second failure yields a zeroed, failed-marked
 * result so the siblings' merge is unaffected.
 */
ExperimentResult
runGuardedJob(const SimJob &job, unsigned worker, Clock::time_point t0,
              const std::string &ckpt_path, uint64_t interval,
              bool resume)
{
    double retry_wall = 0.0;
    for (unsigned attempt = 0;; ++attempt) {
        auto a0 = Clock::now();
        try {
            guard::Scope scope(job.profile.name, job.sim.seed);
            ExperimentResult r =
                runPooledJob(job, worker, t0, ckpt_path, interval,
                             attempt > 0 || resume, attempt > 0);
            r.retries = attempt;
            r.retryWallSeconds = retry_wall;
            return r;
        } catch (const std::exception &e) {
            retry_wall += secondsSince(a0);
            bool have_ckpt =
                !ckpt_path.empty() && fileExists(ckpt_path);
            warn("pool: job '%s' failed (%s)%s",
                 job.profile.name.c_str(), e.what(),
                 attempt > 0             ? ""
                 : have_ckpt ? "; retrying from its last checkpoint"
                             : "; retrying once from its seed");
            if (attempt == 0)
                continue;
            ExperimentResult r;
            r.name = job.profile.name;
            r.failed = true;
            r.error = e.what();
            r.retries = attempt;
            r.retryWallSeconds = retry_wall;
            r.worker = worker;
            r.startSeconds = secondsSince(t0);
            return r;
        }
    }
}

} // anonymous namespace

SimJob
SimJob::forProfile(const WorkloadProfile &p, uint64_t cycles)
{
    SimConfig sim;
    sim.seed = p.seed;
    return forProfile(p, cycles, sim);
}

SimJob
SimJob::forProfile(const WorkloadProfile &p, uint64_t cycles,
                   const SimConfig &sim)
{
    SimJob job;
    job.profile = p;
    job.cycles = cycles;
    job.sim = sim;
    // The OS settings the serial experiment runner always used.
    job.vms.timerIntervalCycles = 20000;
    job.vms.quantumTicks = 4;
    return job;
}

ExperimentResult
runJob(const SimJob &job)
{
    auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r = runExperiment(job.profile, job.cycles,
                                       job.sim, job.vms, job.limits);
    r.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return r;
}

SimPool::SimPool(unsigned workers)
    : workers_(workers ? workers : hardwareWorkers()),
      progress_(envProgress()), strict_(envStrict())
{
}

unsigned
SimPool::hardwareWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
SimPool::forEach(size_t n, const std::function<void(size_t)> &fn) const
{
    unsigned nthreads =
        static_cast<unsigned>(std::min<size_t>(workers_, n));
    if (nthreads <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
            fn(i);
    };
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
}

std::vector<ExperimentResult>
SimPool::run(const std::vector<SimJob> &jobs) const
{
    std::vector<ExperimentResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const CheckpointConfig &ck = checkpoint_;
    if (ck.enabled()) {
        ensureCheckpointDir(ck);
        // --resume is only honored against the identical job list;
        // a fresh run stamps the manifest the next resume will check.
        if (ck.resume)
            checkManifest(ck, jobs);
        else
            writeManifest(ck, jobs);
    }

    unsigned nthreads = workers_;
    if (nthreads > jobs.size())
        nthreads = static_cast<unsigned>(jobs.size());

    Clock::time_point t0 = Clock::now();
    const bool progress = progress_;
    const bool strict = strict_;

    auto run_one = [&jobs, &results, &ck, strict,
                    t0](size_t i, unsigned w) {
        const SimJob &job = jobs[i];
        std::string cpath, rpath;
        if (ck.enabled()) {
            cpath = checkpointPath(ck, i, job.profile.name);
            rpath = resultPath(ck, i, job.profile.name);
            // A job the interrupted run already finished is not
            // re-simulated: its measurements are on disk.
            if (ck.resume && readResultFile(rpath, &results[i]))
                return;
        }
        // Strict mode restores fail-fast: no guard scope, so a job's
        // panic()/fatal() aborts the process as it always did.
        results[i] = strict
            ? runPooledJob(job, w, t0, cpath, ck.intervalCycles,
                           ck.resume, false)
            : runGuardedJob(job, w, t0, cpath, ck.intervalCycles,
                            ck.resume);
        if (ck.enabled() && !results[i].failed &&
            !results[i].interrupted)
            writeResultFile(rpath, results[i]);
    };

    if (nthreads <= 1) {
        for (size_t i = 0;
             i < jobs.size() && !interrupt::requested(); ++i) {
            run_one(i, 0);
            if (progress)
                emitHeartbeat(i + 1, jobs.size(), secondsSince(t0));
        }
    } else {
        // Dynamic work stealing over the job list: each worker claims
        // the next unclaimed index.  Completion order varies; result
        // order does not.  A drain request stops further claims.
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        auto worker = [&jobs, &next, &done, progress, t0,
                       &run_one](unsigned w) {
            for (size_t i; !interrupt::requested() &&
                 (i = next.fetch_add(1)) < jobs.size();) {
                run_one(i, w);
                size_t d = done.fetch_add(1) + 1;
                if (progress)
                    emitHeartbeat(d, jobs.size(), secondsSince(t0));
            }
        };
        std::vector<std::thread> threads;
        threads.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t)
            threads.emplace_back(worker, t);
        for (auto &t : threads)
            t.join();
    }

    // Jobs the drain kept from ever starting still need a name and
    // the interrupted marker so telemetry and merges can see them.
    if (interrupt::requested())
        for (size_t i = 0; i < jobs.size(); ++i)
            if (results[i].name.empty()) {
                results[i].name = jobs[i].profile.name;
                results[i].interrupted = true;
            }
    return results;
}

PoolTelemetry
computeTelemetry(const std::vector<ExperimentResult> &results)
{
    PoolTelemetry t;
    double first_start = 0.0;
    double last_end = 0.0;
    for (size_t i = 0; i < results.size(); ++i) {
        const ExperimentResult &r = results[i];
        JobTelemetry j;
        j.name = r.name;
        j.startSeconds = r.startSeconds;
        j.wallSeconds = r.wallSeconds;
        j.worker = r.worker;
        j.simCycles = r.hw.counters.cycles;
        j.instructions = r.hw.counters.instructions;
        j.failed = r.failed;
        j.error = r.error;
        j.retries = r.retries;
        j.resumeCycle = r.resumeCycle;
        j.retryWallSeconds = r.retryWallSeconds;
        j.interrupted = r.interrupted;
        if (r.failed)
            ++t.failedJobs;
        if (r.retries)
            ++t.retriedJobs;
        if (r.interrupted)
            ++t.interruptedJobs;
        t.retryWallSeconds += r.retryWallSeconds;
        t.simCycles += j.simCycles;
        t.instructions += j.instructions;
        if (i == 0 || r.startSeconds < first_start)
            first_start = r.startSeconds;
        last_end = std::max(last_end, r.startSeconds + r.wallSeconds);
        t.jobs.push_back(std::move(j));
    }
    // Span of the whole run: by construction >= any per-job wall.
    t.wallSeconds = results.empty() ? 0.0 : last_end - first_start;
    return t;
}

double
PoolTelemetry::cyclesPerSecond() const
{
    return wallSeconds > 0.0 ? double(simCycles) / wallSeconds : 0.0;
}

double
PoolTelemetry::kips() const
{
    return wallSeconds > 0.0
        ? double(instructions) / wallSeconds / 1e3
        : 0.0;
}

std::string
PoolTelemetry::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%zu jobs, %.2fs wall, %.2f Msimcycles/s, "
                  "%.1f kIPS",
                  jobs.size(), wallSeconds, cyclesPerSecond() / 1e6,
                  kips());
    std::string s = buf;
    if (retriedJobs) {
        std::snprintf(buf, sizeof(buf),
                      ", %u retried (%.2fs lost)", retriedJobs,
                      retryWallSeconds);
        s += buf;
    }
    if (failedJobs) {
        std::snprintf(buf, sizeof(buf), ", %u FAILED", failedJobs);
        s += buf;
    }
    if (interruptedJobs) {
        std::snprintf(buf, sizeof(buf), ", %u INTERRUPTED",
                      interruptedJobs);
        s += buf;
    }
    return s;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<ExperimentResult> &results)
{
    // Durable atomic write through the host-I/O fault layer: a
    // campaign supervisor may die at any instant, and a half-written
    // trace must never shadow a good one.  The JSON is rendered to
    // memory first so the file write is one all-or-nothing operation.
    std::string out = "{\"traceEvents\":[\n";
    char line[512];
    for (size_t i = 0; i < results.size(); ++i) {
        const ExperimentResult &r = results[i];
        // Recovery-cost args only when nonzero, so a clean run's
        // trace is unchanged.
        std::string extra;
        char buf[96];
        if (r.retries) {
            std::snprintf(buf, sizeof(buf),
                          ",\"retries\":%u,\"retryWallSeconds\":%.3f",
                          r.retries, r.retryWallSeconds);
            extra += buf;
        }
        if (r.resumeCycle) {
            std::snprintf(buf, sizeof(buf), ",\"resumeCycle\":%llu",
                          static_cast<unsigned long long>(
                              r.resumeCycle));
            extra += buf;
        }
        if (r.interrupted)
            extra += ",\"interrupted\":true";
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.0f,"
                      "\"dur\":%.0f,\"pid\":1,\"tid\":%u,"
                      "\"args\":{\"simCycles\":%llu%s}}%s\n",
                      r.name.c_str(), r.startSeconds * 1e6,
                      r.wallSeconds * 1e6, r.worker + 1,
                      static_cast<unsigned long long>(
                          r.hw.counters.cycles),
                      extra.c_str(),
                      i + 1 < results.size() ? "," : "");
        out += line;
    }
    out += "]}\n";
    if (!io::atomicWriteText(path, out)) {
        warn("cannot finish Chrome trace '%s'", path.c_str());
        return false;
    }
    return true;
}

CompositeResult
SimPool::runComposite(const std::vector<SimJob> &jobs) const
{
    std::vector<ExperimentResult> results = run(jobs);
    CompositeResult comp;
    uint64_t total_weight = 0;
    uint64_t lost_weight = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        total_weight += jobs[i].weight;
        // Interrupted jobs are partial measurements: like failed
        // ones, they stay out of the merge (but keep their marker in
        // parts so the caller can report them).
        if (results[i].failed || results[i].interrupted) {
            lost_weight += jobs[i].weight;
        } else {
            comp.hist.merge(results[i].hist, jobs[i].weight);
            comp.hw.add(results[i].hw, jobs[i].weight);
        }
        comp.parts.push_back(std::move(results[i]));
    }
    if (lost_weight) {
        // Deliberately loud: a composite over fewer parts is still a
        // valid weighted measurement, but it is NOT the number the
        // caller asked for.
        warn("pool: composite renormalized over surviving weight "
             "%llu of %llu -- %u job(s) failed or interrupted; "
             "absolute totals cover the survivors only, ratio stats "
             "remain comparable",
             static_cast<unsigned long long>(total_weight - lost_weight),
             static_cast<unsigned long long>(total_weight),
             static_cast<unsigned>(
                 std::count_if(comp.parts.begin(), comp.parts.end(),
                               [](const ExperimentResult &r) {
                                   return r.failed || r.interrupted;
                               })));
    }
    return comp;
}

std::vector<SimJob>
compositeJobs(uint64_t cycles_per_experiment)
{
    std::vector<SimJob> jobs;
    for (const auto &prof : allProfiles())
        jobs.push_back(SimJob::forProfile(prof, cycles_per_experiment));
    return jobs;
}

CompositeResult
runCompositePooled(uint64_t cycles_per_experiment, unsigned jobs)
{
    return SimPool(jobs).runComposite(
        compositeJobs(cycles_per_experiment));
}

unsigned
parseJobsFlag(int *argc, char **argv, unsigned def)
{
    unsigned jobs = def;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < *argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(arg + 7, nullptr, 0));
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return jobs;
}

unsigned
envJobs(unsigned def)
{
    const char *env = std::getenv("UPC780_JOBS");
    if (!env || !*env)
        return def;
    return static_cast<unsigned>(std::strtoul(env, nullptr, 0));
}

bool
parseBoolFlag(int *argc, char **argv, const char *name)
{
    std::string flag = std::string("--") + name;
    bool found = false;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        if (flag == argv[i])
            found = true;
        else
            argv[out++] = argv[i];
    }
    argv[out] = nullptr;
    *argc = out;
    return found;
}

bool
envStrict()
{
    const char *env = std::getenv("UPC780_STRICT");
    return env && *env && std::strcmp(env, "0") != 0;
}

} // namespace vax
