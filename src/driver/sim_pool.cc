#include "driver/sim_pool.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "support/logging.hh"

namespace vax
{

SimJob
SimJob::forProfile(const WorkloadProfile &p, uint64_t cycles)
{
    SimConfig sim;
    sim.seed = p.seed;
    return forProfile(p, cycles, sim);
}

SimJob
SimJob::forProfile(const WorkloadProfile &p, uint64_t cycles,
                   const SimConfig &sim)
{
    SimJob job;
    job.profile = p;
    job.cycles = cycles;
    job.sim = sim;
    // The OS settings the serial experiment runner always used.
    job.vms.timerIntervalCycles = 20000;
    job.vms.quantumTicks = 4;
    return job;
}

ExperimentResult
runJob(const SimJob &job)
{
    auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r =
        runExperiment(job.profile, job.cycles, job.sim, job.vms);
    r.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return r;
}

SimPool::SimPool(unsigned workers)
    : workers_(workers ? workers : hardwareWorkers())
{
}

unsigned
SimPool::hardwareWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

std::vector<ExperimentResult>
SimPool::run(const std::vector<SimJob> &jobs) const
{
    std::vector<ExperimentResult> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned nthreads = workers_;
    if (nthreads > jobs.size())
        nthreads = static_cast<unsigned>(jobs.size());

    if (nthreads <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            results[i] = runJob(jobs[i]);
        return results;
    }

    // Dynamic work stealing over the job list: each worker claims the
    // next unclaimed index.  Completion order varies; result order
    // does not.
    std::atomic<size_t> next{0};
    auto worker = [&jobs, &results, &next]() {
        for (size_t i; (i = next.fetch_add(1)) < jobs.size();)
            results[i] = runJob(jobs[i]);
    };
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    return results;
}

CompositeResult
SimPool::runComposite(const std::vector<SimJob> &jobs) const
{
    std::vector<ExperimentResult> results = run(jobs);
    CompositeResult comp;
    for (size_t i = 0; i < results.size(); ++i) {
        comp.hist.merge(results[i].hist, jobs[i].weight);
        comp.hw.add(results[i].hw, jobs[i].weight);
        comp.parts.push_back(std::move(results[i]));
    }
    return comp;
}

std::vector<SimJob>
compositeJobs(uint64_t cycles_per_experiment)
{
    std::vector<SimJob> jobs;
    for (const auto &prof : allProfiles())
        jobs.push_back(SimJob::forProfile(prof, cycles_per_experiment));
    return jobs;
}

CompositeResult
runCompositePooled(uint64_t cycles_per_experiment, unsigned jobs)
{
    return SimPool(jobs).runComposite(
        compositeJobs(cycles_per_experiment));
}

unsigned
parseJobsFlag(int *argc, char **argv, unsigned def)
{
    unsigned jobs = def;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < *argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(arg + 7, nullptr, 0));
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return jobs;
}

unsigned
envJobs(unsigned def)
{
    const char *env = std::getenv("UPC780_JOBS");
    if (!env || !*env)
        return def;
    return static_cast<unsigned>(std::strtoul(env, nullptr, 0));
}

} // namespace vax
