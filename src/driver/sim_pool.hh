/**
 * @file
 * The parallel simulation driver: SimJob + SimPool.
 *
 * The paper's headline numbers are composites over five independent
 * workloads, and every parameter sweep multiplies that again.  Each
 * experiment is a complete, self-contained machine (CPU, memory, OS,
 * RTE, monitor) built from a seed, so experiments are embarrassingly
 * parallel: the pool runs N jobs on a std::thread worker set and the
 * merge layer (Histogram::merge, the stats accumulate operators)
 * composites the results.
 *
 * Determinism contract:
 *  - a SimJob describes its simulation *by value* (profile, machine
 *    config, OS config, cycle budget); workers construct everything
 *    locally from the job's seeds and share no mutable state;
 *  - results are returned in job order regardless of completion
 *    order, and every merged counter is a commutative sum -- so a
 *    pooled run is bit-identical to the serial one at any worker
 *    count, which the test suite asserts.
 */

#ifndef UPC780_DRIVER_SIM_POOL_HH
#define UPC780_DRIVER_SIM_POOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "driver/checkpoint.hh"
#include "os/vms.hh"
#include "workload/experiments.hh"
#include "workload/profile.hh"

namespace vax
{

/** Host-side timing of one pooled job (derived from its result). */
struct JobTelemetry
{
    std::string name;
    double startSeconds = 0.0; ///< offset from the pool's start
    double wallSeconds = 0.0;
    unsigned worker = 0;
    uint64_t simCycles = 0;    ///< machine cycles simulated
    uint64_t instructions = 0; ///< instructions retired
    bool failed = false;       ///< job raised a SimError (after retry)
    std::string error;         ///< final failure description
    /** @{ Recovery cost, all zero for a clean first-try run. */
    unsigned retries = 0;          ///< attempts thrown away
    uint64_t resumeCycle = 0;      ///< cycle the kept attempt started at
    double retryWallSeconds = 0.0; ///< host time burned in lost attempts
    bool interrupted = false;      ///< abandoned by a graceful drain
    /** @} */
};

/**
 * Aggregate throughput of a pool run.  Wall-clock lives here, NOT in
 * the stats registry: telemetry varies run to run while stats dumps
 * must be byte-identical for a given seed.
 */
struct PoolTelemetry
{
    std::vector<JobTelemetry> jobs;
    /** Aggregate span: latest job end minus earliest job start.  By
     *  construction >= every per-job wallSeconds. */
    double wallSeconds = 0.0;
    uint64_t simCycles = 0;
    uint64_t instructions = 0;
    unsigned failedJobs = 0; ///< jobs that failed even after retry
    /** @{ Recovery cost across the run (zero when nothing went
     *  wrong, so clean summaries are unchanged). */
    unsigned retriedJobs = 0;      ///< jobs that needed a retry
    unsigned interruptedJobs = 0;  ///< jobs abandoned by a drain
    double retryWallSeconds = 0.0; ///< total host time lost to retries
    /** @} */

    /** Simulated machine cycles per host second (0 when un-timed). */
    double cyclesPerSecond() const;

    /** Simulated kilo-instructions per host second. */
    double kips() const;

    /** One human-readable line: jobs, wall, Mcycles/s, kIPS; names
     *  the failed-job count only when there is one, so fault-free
     *  output is unchanged. */
    std::string summary() const;
};

/** Derive pool telemetry from a result set (any run() output). */
PoolTelemetry
computeTelemetry(const std::vector<ExperimentResult> &results);

/**
 * Write the per-job timeline as a Chrome trace-event JSON file
 * (load in Perfetto / chrome://tracing: one row per worker, one
 * slice per job).  @return False (with warn) on I/O failure.
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<ExperimentResult> &results);

/**
 * One independent simulation, described entirely by value so it can
 * be handed to any worker thread and constructed there from scratch.
 */
struct SimJob
{
    WorkloadProfile profile;
    uint64_t cycles = 2'000'000; ///< machine cycles to simulate
    SimConfig sim;               ///< machine configuration
    VmsConfig vms;               ///< OS configuration
    uint64_t weight = 1;         ///< weighting in composite merges
    RunLimits limits;            ///< watchdog / timeout (default off)

    /** Job with the standard experiment wiring: machine seed taken
     *  from the profile, default OS settings. */
    static SimJob forProfile(const WorkloadProfile &p, uint64_t cycles);

    /** Same with an explicit machine configuration (what-if sweeps).
     *  The configuration is taken verbatim, including its seed. */
    static SimJob forProfile(const WorkloadProfile &p, uint64_t cycles,
                             const SimConfig &sim);
};

/** Run one job to completion on the calling thread (wall-clock is
 *  recorded in the result). */
ExperimentResult runJob(const SimJob &job);

class SimPool
{
  public:
    /** @param workers Worker threads; 0 means one per hardware core. */
    explicit SimPool(unsigned workers = 0);

    unsigned workers() const { return workers_; }

    /** Opt-in stderr heartbeat ("pool: 3/5 jobs, ..., eta ...")
     *  emitted as each job completes.  Also enabled by a non-zero
     *  UPC780_PROGRESS environment variable. */
    void setProgress(bool on) { progress_ = on; }
    bool progress() const { return progress_; }

    /** Strict (fail-fast) mode: a job's panic()/fatal() aborts the
     *  whole process, as before guarded execution existed.  Also
     *  enabled by a non-zero UPC780_STRICT environment variable. */
    void setStrict(bool on) { strict_ = on; }
    bool strict() const { return strict_; }

    /** @{ Checkpointed recovery: when a checkpoint directory is
     *  configured, every running job keeps a rolling snapshot there
     *  (refreshed each intervalCycles), a SimError retry restores
     *  from the job's last checkpoint instead of replaying from its
     *  seed, completed jobs persist their measurements, and a
     *  resume() run of the identical job list (manifest-verified)
     *  continues an interrupted composite where it stopped. */
    void setCheckpoint(const CheckpointConfig &ck) { checkpoint_ = ck; }
    const CheckpointConfig &checkpoint() const { return checkpoint_; }
    /** @} */

    /**
     * Run all jobs, at most workers() at a time.
     *
     * Unless strict() is set, each job runs guarded: a panic(),
     * fatal(), watchdog or timeout inside the job becomes a SimError
     * and the job is deterministically retried once -- from its last
     * checkpoint when checkpointing is on (the recovery cost lands in
     * the result's resumeCycle/retryWallSeconds), else from its seed
     * (the job is pure by-value state, so the retry replays the
     * identical cycle stream).  A second failure marks the result
     * failed instead of taking down the siblings.
     *
     * An interrupt request (SIGINT/SIGTERM via interrupt::install,
     * or interrupt::request in tests) drains the pool gracefully:
     * running jobs stop at the next chunk boundary behind a final
     * checkpoint, unstarted jobs are never claimed, and every
     * unfinished result is marked interrupted.
     *
     * @return Results in job order, independent of completion order.
     */
    std::vector<ExperimentResult>
    run(const std::vector<SimJob> &jobs) const;

    /**
     * Run all jobs and merge them into a weighted composite.  The
     * merge applies each job's weight; since the merged quantities
     * are commutative counter sums, the composite is bit-identical
     * to a serial run at any worker count.
     *
     * Failed and interrupted jobs are excluded from the merge: the
     * composite is
     * renormalized over the surviving parts (loudly warned), so the
     * absolute totals cover the survivors only while ratio-style
     * stats (CPI, miss ratios) remain comparable.
     */
    CompositeResult runComposite(const std::vector<SimJob> &jobs) const;

    /**
     * Generic deterministic fan-out: run fn(0..n-1), each exactly
     * once, on the pool's workers (serially on the calling thread
     * when workers() is 1 or n is small).  fn must not share mutable
     * state across indices; callers store results by index, which is
     * what makes the schedule unobservable.  Unlike run(), indices
     * are not guarded -- fn handles its own errors (the uchar suite
     * wraps each program in guard::Scope itself).
     */
    void forEach(size_t n,
                 const std::function<void(size_t)> &fn) const;

    /** Hardware concurrency, never 0. */
    static unsigned hardwareWorkers();

  private:
    unsigned workers_;
    bool progress_;
    bool strict_;
    CheckpointConfig checkpoint_;
};

/** The paper's five workloads as a job list (weight 1 each). */
std::vector<SimJob> compositeJobs(uint64_t cycles_per_experiment);

/** Five-workload composite on a pool: the parallel runComposite().
 *  @param jobs Worker threads; 0 means one per hardware core. */
CompositeResult runCompositePooled(uint64_t cycles_per_experiment,
                                   unsigned jobs = 0);

/**
 * Strip a "--jobs N" / "--jobs=N" flag from argv (updating *argc) and
 * return N; returns def when the flag is absent.  0 means "one worker
 * per hardware core" everywhere a job count is accepted.
 */
unsigned parseJobsFlag(int *argc, char **argv, unsigned def = 0);

/** The UPC780_JOBS environment variable, else def. */
unsigned envJobs(unsigned def = 0);

/**
 * Strip a valueless "--<name>" flag from argv (updating *argc, same
 * contract as parseJobsFlag).  @return True when the flag was present.
 */
bool parseBoolFlag(int *argc, char **argv, const char *name);

/** True when the UPC780_STRICT environment variable is set non-zero. */
bool envStrict();

} // namespace vax

#endif // UPC780_DRIVER_SIM_POOL_HH
