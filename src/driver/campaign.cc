#include "driver/campaign.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/checkpoint.hh"
#include "support/interrupt.hh"
#include "support/iofault.hh"
#include "support/logging.hh"
#include "support/sim_error.hh"
#include "support/snapshot.hh"
#include "support/stats.hh"
#include "workload/experiments.hh"

namespace vax
{

namespace
{

// =============== flag parsing (usage + exit 2) ===============

/** Campaign flag errors are *tool* errors, not simulator errors: the
 *  contract is usage on stderr and exit 2, so scripts and the
 *  EXPECT_DEATH tests can tell a bad command line from a bad run. */
[[noreturn]] void
usageError(const char *prog, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

[[noreturn]] void
usageError(const char *prog, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "%s: ", prog);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n\n");
    campaignUsage(prog, stderr);
    std::exit(2);
}

/** Strip "--<name> V" / "--<name>=V" from argv (same contract as
 *  parseJobsFlag); a valued flag with no value is a usage error. */
bool
takeValueFlag(int *argc, char **argv, const char *name,
              std::string *val)
{
    std::string flag = std::string("--") + name;
    std::string pref = flag + "=";
    bool have = false;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (flag == arg) {
            if (i + 1 >= *argc)
                usageError(argv[0], "%s requires a value",
                           flag.c_str());
            *val = argv[++i];
            have = true;
        } else if (std::strncmp(arg, pref.c_str(), pref.size()) == 0) {
            *val = arg + pref.size();
            have = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return have;
}

uint64_t
takeCount(const char *prog, const char *flag, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(val.c_str(), &end, 0);
    if (errno || end == val.c_str() || *end || !v)
        usageError(prog, "%s: '%s' is not a positive count", flag,
                   val.c_str());
    return v;
}

double
takeSeconds(const char *prog, const char *flag, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(val.c_str(), &end);
    if (errno || end == val.c_str() || *end || !(v > 0.0))
        usageError(prog, "%s: '%s' is not a positive duration in "
                   "seconds", flag, val.c_str());
    return v;
}

/** Like takeCount but zero is legal (indices, epochs-as-ids). */
uint64_t
takeIndex(const char *prog, const char *flag, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(val.c_str(), &end, 0);
    if (errno || end == val.c_str() || *end)
        usageError(prog, "%s: '%s' is not a non-negative integer",
                   flag, val.c_str());
    return v;
}

/** Non-negative finite wall-clock stamp ("12345.678900"). */
double
takeStamp(const char *prog, const char *flag, const std::string &val)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(val.c_str(), &end);
    if (errno || end == val.c_str() || *end || !std::isfinite(v) ||
        v < 0.0)
        usageError(prog, "%s: '%s' is not a non-negative wall-clock "
                   "stamp in seconds", flag, val.c_str());
    return v;
}

// =============== small filesystem helpers ===============

void
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return;
    fatal("campaign: cannot create '%s': %s", path.c_str(),
          std::strerror(errno));
}

std::string
jobTokenName(size_t job)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "job%03zu", job);
    return buf;
}

/** True when the directory holds no spool entries (tmp files from a
 *  write in flight do not count). */
bool
dirDrained(const std::string &path)
{
    DIR *d = ::opendir(path.c_str());
    if (!d)
        return true;
    bool drained = true;
    while (struct dirent *e = ::readdir(d)) {
        if (std::strcmp(e->d_name, ".") == 0 ||
            std::strcmp(e->d_name, "..") == 0)
            continue;
        if (std::strstr(e->d_name, ".tmp"))
            continue;
        drained = false;
        break;
    }
    ::closedir(d);
    return drained;
}

void
sleepMs(unsigned ms)
{
    ::usleep(ms * 1000u);
}

std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

// =============== shared emit path ===============

/**
 * Merge the per-job parts into the weighted composite and write the
 * campaign outputs.  Shared verbatim between the multi-process
 * supervisor and --in-process mode: the merge is the measurement, so
 * there must be exactly one of it.
 */
int
emitCampaignOutputs(const CampaignConfig &cfg,
                    const std::vector<SimJob> &jobs,
                    std::vector<ExperimentResult> parts)
{
    CompositeResult comp;
    uint64_t total_weight = 0;
    uint64_t lost_weight = 0;
    unsigned lost_jobs = 0;
    for (size_t i = 0; i < parts.size(); ++i) {
        total_weight += jobs[i].weight;
        if (parts[i].failed || parts[i].interrupted) {
            lost_weight += jobs[i].weight;
            ++lost_jobs;
        } else {
            comp.hist.merge(parts[i].hist, jobs[i].weight);
            comp.hw.add(parts[i].hw, jobs[i].weight);
        }
        comp.parts.push_back(std::move(parts[i]));
    }
    if (lost_weight) {
        warn("campaign: composite renormalized over surviving weight "
             "%llu of %llu -- %u job(s) quarantined or failed; "
             "absolute totals cover the survivors only, ratio stats "
             "remain comparable",
             static_cast<unsigned long long>(total_weight -
                                             lost_weight),
             static_cast<unsigned long long>(total_weight),
             lost_jobs);
    }
    PoolTelemetry tele = computeTelemetry(comp.parts);
    std::printf("campaign: %s\n", tele.summary().c_str());

    if (!cfg.statsJsonPath.empty()) {
        stats::Registry reg;
        registerCompositeStats(reg, comp);
        if (!reg.saveJson(cfg.statsJsonPath))
            fatal("campaign: cannot write stats JSON to '%s'",
                  cfg.statsJsonPath.c_str());
        std::printf("campaign: wrote %zu stats to %s\n", reg.size(),
                    cfg.statsJsonPath.c_str());
    }
    if (!cfg.tracePath.empty()) {
        if (!writeChromeTrace(cfg.tracePath, comp.parts))
            fatal("campaign: cannot write Chrome trace to '%s'",
                  cfg.tracePath.c_str());
        std::printf("campaign: wrote shard timeline to %s\n",
                    cfg.tracePath.c_str());
    }
    return 0;
}

CheckpointConfig
spoolCheckpointConfig(const CampaignConfig &cfg)
{
    CheckpointConfig ck;
    ck.dir = cfg.spool;
    ck.intervalCycles = cfg.intervalCycles;
    ck.resume = cfg.resume;
    return ck;
}

} // anonymous namespace

// =============== configuration ===============

void
campaignUsage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s --spool DIR [options]\n"
        "Run the five-workload composite as a crash-tolerant campaign\n"
        "of supervised worker processes over a shared job spool.\n"
        "  --spool DIR          spool directory (manifest, job tokens,\n"
        "                       checkpoints, results, heartbeats, logs)\n"
        "  --shards N           worker processes to keep alive"
        " (default 2)\n"
        "  --cycles N           machine cycles per experiment"
        " (default 2000000)\n"
        "  --replicas N         copies of the five-workload set"
        " (default 1)\n"
        "  --checkpoint-interval N\n"
        "                       cycles per chunk/rolling checkpoint"
        " (default 250000)\n"
        "  --heartbeat-interval S\n"
        "                       max seconds between shard heartbeats"
        " (default 1)\n"
        "  --heartbeat-timeout S\n"
        "                       stale-heartbeat SIGKILL threshold;"
        " must exceed\n"
        "                       the interval (default 30)\n"
        "  --max-retries K      attempts before a job is quarantined"
        " as poison\n"
        "                       (default 3)\n"
        "  --backoff-base S     first retry delay; doubles per attempt"
        " (default 0.25)\n"
        "  --backoff-cap S      retry delay ceiling (default 8)\n"
        "  --stats-json PATH    write the composite stats registry as"
        " JSON\n"
        "  --perfetto PATH      write the shard timeline as a Chrome"
        " trace\n"
        "  --io-faults SPEC     inject host-I/O faults into this\n"
        "                       process (kind@N[~substr],... or\n"
        "                       rand=SEED; also via UPC780_IO_FAULTS)\n"
        "  --chaos-drill SEED   fault-free supervisor, every spawned\n"
        "                       shard gets a fault schedule derived\n"
        "                       from SEED; final stats must still be\n"
        "                       byte-identical to a clean run\n"
        "  --resume             continue a killed campaign from the"
        " spool\n"
        "  --in-process         reference mode: run the identical job"
        " list on\n"
        "                       a thread pool (byte-identical"
        " outputs)\n"
        "  --help               this message\n"
        "A SIGINT/SIGTERM fans out to the shards, drains behind the\n"
        "per-job checkpoints, and exits 130; rerun with --resume.\n",
        prog);
}

CampaignConfig
CampaignConfig::parseFlags(int *argc, char **argv)
{
    const char *prog = argv[0];
    CampaignConfig cfg;
    if (parseBoolFlag(argc, argv, "help")) {
        campaignUsage(prog, stdout);
        std::exit(0);
    }
    std::string val;
    if (takeValueFlag(argc, argv, "spool", &val)) {
        if (val.empty())
            usageError(prog, "--spool requires a directory path");
        cfg.spool = val;
    }
    if (takeValueFlag(argc, argv, "shards", &val))
        cfg.shards = static_cast<unsigned>(
            takeCount(prog, "--shards", val));
    if (takeValueFlag(argc, argv, "cycles", &val))
        cfg.cycles = takeCount(prog, "--cycles", val);
    if (takeValueFlag(argc, argv, "replicas", &val))
        cfg.replicas = static_cast<unsigned>(
            takeCount(prog, "--replicas", val));
    if (takeValueFlag(argc, argv, "checkpoint-interval", &val))
        cfg.intervalCycles =
            takeCount(prog, "--checkpoint-interval", val);
    if (takeValueFlag(argc, argv, "heartbeat-interval", &val))
        cfg.heartbeatInterval =
            takeSeconds(prog, "--heartbeat-interval", val);
    if (takeValueFlag(argc, argv, "heartbeat-timeout", &val))
        cfg.heartbeatTimeout =
            takeSeconds(prog, "--heartbeat-timeout", val);
    if (takeValueFlag(argc, argv, "max-retries", &val))
        cfg.maxAttempts = static_cast<unsigned>(
            takeCount(prog, "--max-retries", val));
    if (takeValueFlag(argc, argv, "backoff-base", &val))
        cfg.backoffBase = takeSeconds(prog, "--backoff-base", val);
    if (takeValueFlag(argc, argv, "backoff-cap", &val))
        cfg.backoffCap = takeSeconds(prog, "--backoff-cap", val);
    if (takeValueFlag(argc, argv, "stats-json", &val))
        cfg.statsJsonPath = val;
    if (takeValueFlag(argc, argv, "perfetto", &val))
        cfg.tracePath = val;
    cfg.resume = parseBoolFlag(argc, argv, "resume");
    cfg.inProcess = parseBoolFlag(argc, argv, "in-process");

    bool have_io_faults = takeValueFlag(argc, argv, "io-faults", &val);
    if (have_io_faults) {
        cfg.ioFaults = val;
    } else if (const char *env = std::getenv("UPC780_IO_FAULTS")) {
        if (*env)
            cfg.ioFaults = env;
    }
    if (!cfg.ioFaults.empty())
        // Validate now: a typo in a fault spec is fatal(1) from the
        // parser before a single process launches -- a chaos drill
        // that silently injected nothing would prove nothing.
        io::FaultPlan::parse(cfg.ioFaults);
    if (takeValueFlag(argc, argv, "chaos-drill", &val))
        cfg.chaosSeed = takeCount(prog, "--chaos-drill", val);

    cfg.shardMode = parseBoolFlag(argc, argv, "shard");
    bool have_shard_id = takeValueFlag(argc, argv, "shard-id", &val);
    if (have_shard_id)
        cfg.shardId = static_cast<unsigned>(
            takeIndex(prog, "--shard-id", val));
    if (takeValueFlag(argc, argv, "epoch", &val))
        cfg.epoch = takeStamp(prog, "--epoch", val);

    // Drill knobs (tests/CI only; deliberately undocumented in the
    // usage text, but validated like everything else).
    if (takeValueFlag(argc, argv, "drill-shard0-die-after-chunks",
                      &val))
        cfg.drillShard0DieAfterChunks =
            takeCount(prog, "--drill-shard0-die-after-chunks", val);
    if (takeValueFlag(argc, argv, "drill-die-after-results", &val))
        cfg.drillDieAfterResults = static_cast<unsigned>(
            takeCount(prog, "--drill-die-after-results", val));
    if (takeValueFlag(argc, argv, "drill-poison-job", &val))
        cfg.drillPoisonJob = static_cast<unsigned>(
            takeIndex(prog, "--drill-poison-job", val));
    if (takeValueFlag(argc, argv, "drill-die-after-chunks", &val))
        cfg.shardDieAfterChunks =
            takeCount(prog, "--drill-die-after-chunks", val);

    if (*argc > 1)
        usageError(prog, "unrecognized argument '%s'", argv[1]);

    // Nonsensical combinations are fatal up front: a campaign that
    // silently dropped one of these would run the wrong fleet.
    if (cfg.spool.empty()) {
        if (cfg.resume)
            usageError(prog, "--resume needs --spool to know where "
                       "the killed campaign left its state");
        if (cfg.shardMode)
            usageError(prog, "--shard requires --spool (shards are "
                       "spawned by the supervisor, not by hand)");
        usageError(prog, "--spool DIR is required");
    }
    if (cfg.shardMode && !have_shard_id)
        usageError(prog, "--shard requires --shard-id");
    if (!cfg.shardMode && have_shard_id)
        usageError(prog, "--shard-id is meaningless without --shard");
    if (cfg.shardMode && cfg.inProcess)
        usageError(prog, "--in-process and --shard are mutually "
                   "exclusive");
    if (cfg.shards == 0)
        usageError(prog, "--shards 0 would run no workers; use "
                   "--shards 1 or more");
    if (cfg.heartbeatTimeout <= cfg.heartbeatInterval)
        usageError(prog, "--heartbeat-timeout (%.3fs) must exceed "
                   "--heartbeat-interval (%.3fs), or every healthy "
                   "shard would be declared hung",
                   cfg.heartbeatTimeout, cfg.heartbeatInterval);
    if (cfg.backoffCap < cfg.backoffBase)
        usageError(prog, "--backoff-cap (%.3fs) is below "
                   "--backoff-base (%.3fs)", cfg.backoffCap,
                   cfg.backoffBase);
    if (cfg.chaosSeed) {
        if (have_io_faults)
            usageError(prog, "--chaos-drill and --io-faults are "
                       "mutually exclusive: the drill derives each "
                       "shard's schedule from the seed and keeps the "
                       "supervisor fault-free");
        if (cfg.shardMode)
            usageError(prog, "--chaos-drill belongs to the "
                       "supervisor; shards receive their derived "
                       "--io-faults schedule from it");
        if (cfg.inProcess)
            usageError(prog, "--chaos-drill needs shard processes to "
                       "fault; it cannot combine with --in-process");
        if (!cfg.ioFaults.empty()) {
            // UPC780_IO_FAULTS is set in the environment.  The drill
            // contract is a clean supervisor, so ignore it loudly
            // rather than fault the merge process.
            warn("campaign: --chaos-drill ignores UPC780_IO_FAULTS "
                 "('%s') in this process", cfg.ioFaults.c_str());
            cfg.ioFaults.clear();
        }
    }
    return cfg;
}

// =============== spool geometry and tokens ===============

std::string
campaignTodoPath(const CampaignConfig &cfg, size_t job)
{
    return cfg.spool + "/todo/" + jobTokenName(job);
}

std::string
campaignClaimPath(const CampaignConfig &cfg, size_t job,
                  unsigned shard)
{
    return cfg.spool + "/claimed/" + jobTokenName(job) + ".shard" +
        std::to_string(shard);
}

std::string
campaignQuarantinePath(const CampaignConfig &cfg, size_t job)
{
    return cfg.spool + "/quarantine/" + jobTokenName(job);
}

std::string
campaignHeartbeatPath(const CampaignConfig &cfg, unsigned shard)
{
    return cfg.spool + "/hb/shard" + std::to_string(shard) + ".hb";
}

std::string
campaignLogPath(const CampaignConfig &cfg, unsigned shard)
{
    return cfg.spool + "/logs/shard" + std::to_string(shard) + ".log";
}

std::string
campaignFencePath(const CampaignConfig &cfg, size_t job)
{
    return cfg.spool + "/fence/" + jobTokenName(job);
}

uint64_t
readFenceFile(const std::string &path)
{
    std::string text;
    io::Status st = io::readFileText(path, &text, 256);
    if (!st) {
        if (st.err != ENOENT)
            warn("campaign: fence file '%s' unreadable (%s: %s); "
                 "treating the job's claim epoch as 0", path.c_str(),
                 st.stage, std::strerror(st.err));
        return 0;
    }
    unsigned long long fence = 0;
    if (std::sscanf(text.c_str(), "fence %llu", &fence) != 1) {
        warn("campaign: fence file '%s' is damaged; treating the "
             "job's claim epoch as 0", path.c_str());
        return 0;
    }
    return fence;
}

bool
writeFenceFile(const std::string &path, uint64_t fence)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "fence %llu\n",
                  static_cast<unsigned long long>(fence));
    return static_cast<bool>(io::atomicWriteText(path, buf));
}

uint64_t
bumpJobFence(const CampaignConfig &cfg, size_t job, JobToken *tok)
{
    std::string path = campaignFencePath(cfg, job);
    // max() guards against a fence file lost to a damaged read: the
    // token itself then carries the floor, so the epoch still never
    // regresses.
    uint64_t next = std::max(tok->fence, readFenceFile(path)) + 1;
    tok->fence = next;
    if (!writeFenceFile(path, next))
        // The requeue still proceeds: an unwritable fence file only
        // costs the split-brain guard for this job, and the next
        // bump's max() recovers the epoch from the token.
        warn("campaign: cannot persist fence %llu for job %zu",
             static_cast<unsigned long long>(next), job);
    return next;
}

bool
writeJobTokenFile(const std::string &path, const JobToken &t)
{
    std::string text = "attempts " + std::to_string(t.attempts) +
        "\nnotbefore " + fmtDouble(t.notBefore) + "\nfence " +
        std::to_string(t.fence) + "\n";
    if (!t.lastError.empty()) {
        // One line only: the token is retry bookkeeping, not a log.
        std::string err = t.lastError.substr(0, 512);
        std::replace(err.begin(), err.end(), '\n', ' ');
        text += "error " + err + "\n";
    }
    return static_cast<bool>(io::atomicWriteText(path, text));
}

bool
readJobTokenFile(const std::string &path, JobToken *out)
{
    *out = JobToken();
    // Tokens are a few lines; a multi-megabyte "token" is damage (or
    // mischief) and must not be slurped whole.  The cap makes io::
    // fail the read, which lands in the damaged-token path below.
    std::string text;
    io::Status st = io::readFileText(path, &text, 64 * 1024);
    if (!st) {
        if (st.err == ENOENT)
            return false;
        warn("campaign: token '%s' unreadable (%s: %s); treating it "
             "as a fresh attempt record", path.c_str(), st.stage,
             std::strerror(st.err));
        return true;
    }
    // Parse from memory, splitting on '\n' by index: an embedded NUL
    // terminates at most that line's sscanf, never the scan itself.
    bool sane = true;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        unsigned u = 0;
        double d = 0.0;
        unsigned long long f = 0;
        if (std::sscanf(line.c_str(), "attempts %u", &u) == 1)
            out->attempts = u;
        else if (std::sscanf(line.c_str(), "notbefore %lf", &d) == 1)
            out->notBefore = d;
        else if (std::sscanf(line.c_str(), "fence %llu", &f) == 1)
            out->fence = f;
        else if (line.compare(0, 6, "error ") == 0)
            out->lastError = line.substr(6);
        else
            sane = false;
    }
    if (!sane)
        // A half-understood token is still a token: warn and keep the
        // fields that parsed -- losing retry bookkeeping must never
        // cost the job itself.
        warn("campaign: token '%s' is damaged; treating it as a "
             "fresh attempt record", path.c_str());
    return true;
}

ClaimOutcome
claimByRename(const std::string &from, const std::string &to)
{
    if (io::renameFile(from, to))
        return ClaimOutcome::Won;
    io::Status st = io::lastStatus();
    if (st.err == ENOENT)
        return ClaimOutcome::Lost;
    if (fileExists(to) && !fileExists(from))
        // The rename reported failure but demonstrably happened (the
        // error came from somewhere past the commit point).  Within
        // one directory that makes us the owner: take the win rather
        // than abandon a token nobody else can claim.
        return ClaimOutcome::Won;
    warn("campaign: rename '%s' -> '%s' failed: %s", from.c_str(),
         to.c_str(), std::strerror(st.err));
    return ClaimOutcome::Error;
}

double
backoffSeconds(const CampaignConfig &cfg, unsigned attempts)
{
    unsigned doublings = attempts ? attempts - 1 : 0;
    // Eight doublings saturate any sane cap; avoids overflow games.
    double d = cfg.backoffBase *
        std::ldexp(1.0, static_cast<int>(std::min(doublings, 8u)));
    return std::min(d, cfg.backoffCap);
}

double
campaignWallNow()
{
    struct timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<double>(tv.tv_sec) + tv.tv_usec * 1e-6;
}

bool
heartbeatWrite(const std::string &path, long pid, uint64_t seq,
               long job)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "pid %ld\nseq %llu\njob %ld\n",
                  pid, static_cast<unsigned long long>(seq), job);
    return static_cast<bool>(io::atomicWriteText(path, buf));
}

bool
readHeartbeatFile(const std::string &path, HeartbeatInfo *out)
{
    *out = HeartbeatInfo();
    std::string text;
    if (!io::readFileText(path, &text, 4096))
        return false;
    long pid = -1;
    unsigned long long seq = 0;
    long job = -1;
    bool have_pid = false;
    bool have_seq = false;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (std::sscanf(line.c_str(), "pid %ld", &pid) == 1)
            have_pid = true;
        else if (std::sscanf(line.c_str(), "seq %llu", &seq) == 1)
            have_seq = true;
        else
            std::sscanf(line.c_str(), "job %ld", &job);
    }
    if (!have_pid || !have_seq)
        return false;
    out->pid = pid;
    out->seq = seq;
    out->job = job;
    return true;
}

double
heartbeatAgeSeconds(const std::string &path)
{
    return io::fileAgeSeconds(path);
}

std::vector<SimJob>
campaignJobs(const CampaignConfig &cfg)
{
    std::vector<SimJob> jobs;
    for (unsigned r = 0; r < cfg.replicas; ++r) {
        for (const auto &prof : allProfiles()) {
            WorkloadProfile p = prof;
            if (r) {
                p.name += "#" + std::to_string(r);
                // A fixed odd stride keeps replica seeds distinct and
                // reproducible from the manifest alone.
                p.seed += 7919ull * r;
            }
            jobs.push_back(SimJob::forProfile(p, cfg.cycles));
        }
    }
    if (cfg.drillPoisonJob < jobs.size())
        // Poison drill: this job raises a SimError at its first poll
        // of every attempt, driving the quarantine path.  RunLimits
        // are not part of the manifest, so supervisor and shards
        // agree on the job list regardless.
        jobs[cfg.drillPoisonJob].limits.tripCycle = 1;
    return jobs;
}

// =============== shard worker ===============

namespace
{

struct ShardCtx
{
    const CampaignConfig &cfg;
    std::vector<SimJob> jobs;
    CheckpointConfig ck;
    std::string hbPath;
    uint64_t seq = 0;
    uint64_t chunksDone = 0;
    double lastBeat = 0.0;
    bool ckptPaused = false;     ///< ENOSPC degraded mode (see below)
    uint64_t ckptRetryAt = 0;    ///< chunksDone at which to re-probe
};

/** Chunks between checkpoint re-probes while ENOSPC-paused. */
constexpr uint64_t kCkptRetryChunks = 8;

/**
 * Write the rolling checkpoint, with the ENOSPC degraded mode: a full
 * disk pauses checkpointing loudly and keeps the simulation running
 * (crash recovery falls back to older state or the seed) instead of
 * letting every shard die on the same full disk.  While paused, a
 * probe write every kCkptRetryChunks chunks notices a cleaned disk
 * and resumes.  Other write failures warn (inside io::) and retry at
 * the next boundary.
 */
void
shardSaveCheckpoint(ShardCtx &c, Experiment &exp,
                    const std::string &cpath)
{
    if (c.ckptPaused && c.chunksDone < c.ckptRetryAt)
        return;
    if (exp.saveFile(cpath)) {
        if (c.ckptPaused) {
            c.ckptPaused = false;
            warn("shard %u: disk space recovered; checkpointing "
                 "resumed at '%s'", c.cfg.shardId, cpath.c_str());
        }
        return;
    }
    if (io::lastStatus().err == ENOSPC) {
        if (!c.ckptPaused)
            warn("shard %u: DEGRADED: checkpoint '%s' failed with "
                 "ENOSPC; checkpointing is paused and progress "
                 "continues unprotected (a crash now falls back to "
                 "the last good checkpoint or the job seed); will "
                 "re-probe every %llu chunks", c.cfg.shardId,
                 cpath.c_str(),
                 static_cast<unsigned long long>(kCkptRetryChunks));
        c.ckptPaused = true;
        c.ckptRetryAt = c.chunksDone + kCkptRetryChunks;
    }
}

/** Refresh the heartbeat when it is due (or forced).  Cheap enough to
 *  call at every chunk boundary. */
void
beat(ShardCtx &c, long job, bool force)
{
    double now = campaignWallNow();
    if (!force && now - c.lastBeat < c.cfg.heartbeatInterval * 0.5)
        return;
    heartbeatWrite(c.hbPath, static_cast<long>(::getpid()), ++c.seq,
                   job);
    c.lastBeat = now;
}

/**
 * One guarded, chunked, checkpointed attempt at job @p i.  Restores
 * from the job's rolling checkpoint when one exists (the previous
 * holder crashed or drained mid-run); an unusable checkpoint costs
 * the saved cycles, never the job.
 *
 * @return True when the result was produced; false with *err filled
 * on a SimError, or *interrupted set when a drain request stopped the
 * attempt behind its final checkpoint.
 */
bool
runShardJobAttempt(ShardCtx &c, size_t i, ExperimentResult *out,
                   std::string *err, bool *interrupted)
{
    const SimJob &job = c.jobs[i];
    std::string cpath = checkpointPath(c.ck, i, job.profile.name);
    try {
        guard::Scope scope(job.profile.name, job.sim.seed);
        auto make = [&job] {
            return std::make_unique<Experiment>(job.profile,
                                                job.cycles, job.sim,
                                                job.vms, job.limits);
        };
        std::unique_ptr<Experiment> exp = make();
        uint64_t resume_cycle = 0;
        if (fileExists(cpath)) {
            try {
                exp->restoreFile(cpath);
                resume_cycle = exp->cycle();
            } catch (const snap::SnapshotError &e) {
                warn("shard %u: checkpoint '%s' unusable (%s); job "
                     "'%s' restarts from its seed", c.cfg.shardId,
                     cpath.c_str(), e.what(),
                     job.profile.name.c_str());
                exp = make();
            }
        }
        const uint64_t chunk =
            std::max<uint64_t>(c.ck.intervalCycles, 1);
        double a0 = campaignWallNow();
        while (!exp->runChunk(chunk)) {
            shardSaveCheckpoint(c, *exp, cpath);
            ++c.chunksDone;
            if (c.cfg.shardDieAfterChunks &&
                c.chunksDone >= c.cfg.shardDieAfterChunks) {
                // Crash drill: die the hard way, mid-job, exactly
                // like a SIGKILLed fleet member -- claim held,
                // rolling checkpoint on disk, no cleanup.
                ::raise(SIGKILL);
            }
            beat(c, static_cast<long>(i), false);
            if (interrupt::requested()) {
                // The checkpoint just written is the final one.
                *interrupted = true;
                return false;
            }
        }
        ExperimentResult r = exp->takeResult();
        r.resumeCycle = resume_cycle;
        r.wallSeconds = campaignWallNow() - a0;
        r.startSeconds =
            c.cfg.epoch > 0.0 ? a0 - c.cfg.epoch : 0.0;
        r.worker = c.cfg.shardId;
        *out = std::move(r);
        return true;
    } catch (const std::exception &e) {
        *err = e.what();
        return false;
    }
}

} // anonymous namespace

int
runCampaignShard(const CampaignConfig &cfg)
{
    interrupt::install();
    ShardCtx c{cfg, campaignJobs(cfg), spoolCheckpointConfig(cfg),
               campaignHeartbeatPath(cfg, cfg.shardId)};
    c.ck.resume = false;
    // A shard must prove it is working the campaign the spool
    // describes before touching a single token.
    checkManifest(c.ck, c.jobs);
    beat(c, -1, true);
    inform("shard %u: joined campaign '%s' (%zu jobs)", cfg.shardId,
           cfg.spool.c_str(), c.jobs.size());

    const size_t n = c.jobs.size();
    // Claim-rename I/O errors (EIO, not a lost race) per job: retried
    // with the campaign's capped backoff, quarantined for good after
    // maxAttempts -- a token on a broken disk must not spin forever.
    std::vector<unsigned> claimErrors(n, 0);
    std::vector<double> claimRetryAt(n, 0.0);
    for (;;) {
        if (interrupt::requested())
            return interrupt::reportInterrupted(
                "shard drained behind its checkpoints", 0, true);
        bool ran_one = false;
        bool backing_off = false;
        for (size_t i = 0; i < n; ++i) {
            std::string todo = campaignTodoPath(cfg, i);
            if (!fileExists(todo))
                continue;
            std::string rpath =
                resultPath(c.ck, i, c.jobs[i].profile.name);
            if (fileExists(rpath)) {
                // Defensive: a token for a finished job is stale
                // bookkeeping from some earlier crash -- retire it.
                ::unlink(todo.c_str());
                continue;
            }
            if (claimRetryAt[i] > campaignWallNow()) {
                backing_off = true;
                continue;
            }
            std::string claim =
                campaignClaimPath(cfg, i, cfg.shardId);
            ClaimOutcome got = claimByRename(todo, claim);
            if (got == ClaimOutcome::Lost)
                continue; // another shard won the rename
            if (got == ClaimOutcome::Error) {
                ++claimErrors[i];
                if (claimErrors[i] >= cfg.maxAttempts) {
                    JobToken qtok;
                    readJobTokenFile(todo, &qtok);
                    qtok.lastError = "claim rename failed " +
                        std::to_string(claimErrors[i]) + " time(s)";
                    warn("shard %u: job %zu '%s' QUARANTINED: %s",
                         cfg.shardId, i,
                         c.jobs[i].profile.name.c_str(),
                         qtok.lastError.c_str());
                    writeJobTokenFile(
                        campaignQuarantinePath(cfg, i), qtok);
                    ::unlink(todo.c_str());
                    continue;
                }
                double delay = backoffSeconds(cfg, claimErrors[i]);
                warn("shard %u: claim of job %zu hit an I/O error "
                     "(attempt %u/%u); retrying in %.2fs",
                     cfg.shardId, i, claimErrors[i], cfg.maxAttempts,
                     delay);
                claimRetryAt[i] = campaignWallNow() + delay;
                backing_off = true;
                continue;
            }
            claimErrors[i] = 0;
            JobToken tok;
            readJobTokenFile(claim, &tok);
            uint64_t highWater =
                readFenceFile(campaignFencePath(cfg, i));
            if (tok.fence < highWater) {
                // A fence-regressed token (hand-edited, or restored
                // from a backup) must not write results the merge
                // will reject: adopt the durable high-water mark.
                warn("shard %u: job %zu token fence %llu is behind "
                     "the high-water mark %llu; adopting the mark",
                     cfg.shardId, i,
                     static_cast<unsigned long long>(tok.fence),
                     static_cast<unsigned long long>(highWater));
                tok.fence = highWater;
            }
            if (tok.notBefore > campaignWallNow()) {
                // Claimed too early: hand it back and keep looking.
                // A hand-back that errors but didn't happen leaves
                // the claim with us -- running the job early is safe
                // (backoff is pacing, not correctness), so fall
                // through instead of stranding the token.
                if (claimByRename(claim, todo) != ClaimOutcome::Error
                    || fileExists(todo)) {
                    backing_off = true;
                    continue;
                }
                warn("shard %u: cannot hand back early claim of job "
                     "%zu; running it ahead of its backoff window",
                     cfg.shardId, i);
            }
            beat(c, static_cast<long>(i), true);
            ExperimentResult r;
            std::string err;
            bool interrupted = false;
            if (runShardJobAttempt(c, i, &r, &err, &interrupted)) {
                r.retries = tok.attempts;
                r.fence = tok.fence;
                if (readFenceFile(campaignFencePath(cfg, i)) >
                    tok.fence) {
                    // Fenced out mid-run: the supervisor declared us
                    // dead and requeued the job.  Our result would be
                    // rejected at merge; don't publish it, and leave
                    // the token with the new epoch's owner.
                    warn("shard %u: job %zu '%s' claim superseded "
                         "(fence advanced past %llu); discarding "
                         "this attempt's result", cfg.shardId, i,
                         c.jobs[i].profile.name.c_str(),
                         static_cast<unsigned long long>(tok.fence));
                    ::unlink(claim.c_str());
                } else if (!writeResultFile(rpath, r)) {
                    // Requeue with an attempt charged: persistent
                    // result-write failure must eventually quarantine
                    // rather than silently strand the job (the old
                    // behavior dropped the token here and the
                    // campaign could only fatal out).
                    ++tok.attempts;
                    tok.lastError = "result write failed";
                    if (tok.attempts >= cfg.maxAttempts) {
                        warn("shard %u: job %zu '%s' QUARANTINED: "
                             "finished %u time(s) but its result "
                             "could never be written", cfg.shardId, i,
                             c.jobs[i].profile.name.c_str(),
                             tok.attempts);
                        writeJobTokenFile(
                            campaignQuarantinePath(cfg, i), tok);
                    } else {
                        double delay =
                            backoffSeconds(cfg, tok.attempts);
                        warn("shard %u: job %zu '%s' finished but "
                             "its result could not be written; "
                             "requeued with %.2fs backoff",
                             cfg.shardId, i,
                             c.jobs[i].profile.name.c_str(), delay);
                        tok.notBefore = campaignWallNow() + delay;
                        writeJobTokenFile(todo, tok);
                    }
                    ::unlink(claim.c_str());
                } else {
                    ::unlink(checkpointPath(
                        c.ck, i, c.jobs[i].profile.name).c_str());
                    ::unlink(claim.c_str());
                }
            } else if (interrupted) {
                // Requeue with no attempt charged: a drain is not the
                // job's fault, and the checkpoint keeps its cycles.
                tok.notBefore = 0.0;
                writeJobTokenFile(todo, tok);
                ::unlink(claim.c_str());
            } else {
                ++tok.attempts;
                tok.lastError = err;
                if (tok.attempts >= cfg.maxAttempts) {
                    warn("shard %u: job %zu '%s' QUARANTINED after "
                         "%u attempt(s): %s", cfg.shardId, i,
                         c.jobs[i].profile.name.c_str(), tok.attempts,
                         err.c_str());
                    writeJobTokenFile(
                        campaignQuarantinePath(cfg, i), tok);
                    ::unlink(claim.c_str());
                } else {
                    double delay = backoffSeconds(cfg, tok.attempts);
                    warn("shard %u: job %zu '%s' failed (attempt "
                         "%u/%u): %s; requeued with %.2fs backoff",
                         cfg.shardId, i,
                         c.jobs[i].profile.name.c_str(), tok.attempts,
                         cfg.maxAttempts, err.c_str(), delay);
                    tok.notBefore = campaignWallNow() + delay;
                    writeJobTokenFile(todo, tok);
                    ::unlink(claim.c_str());
                }
            }
            ran_one = true;
            break; // rescan from job 0 (fresh view of the spool)
        }
        if (interrupt::requested())
            continue; // handled at the top of the loop
        if (!ran_one) {
            if (!backing_off && dirDrained(cfg.spool + "/todo") &&
                dirDrained(cfg.spool + "/claimed")) {
                inform("shard %u: spool drained, exiting",
                       cfg.shardId);
                return 0;
            }
            beat(c, -1, false);
            sleepMs(20);
        }
    }
}

// =============== supervisor ===============

namespace
{

struct Child
{
    pid_t pid = -1;
    unsigned id = 0;
    double spawned = 0.0;
    bool alive = false;
    // Beat-counter liveness: when the shard's heartbeat seq was last
    // seen to advance.  mtime is only the fallback for an unreadable
    // heartbeat file (see readHeartbeatFile).
    bool seqSeen = false;
    uint64_t lastSeq = 0;
    double lastAdvance = 0.0;
};

std::string
selfExePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "/proc/self/exe";
    buf[n] = '\0';
    return buf;
}

pid_t
spawnShard(const CampaignConfig &cfg, unsigned id,
           const std::string &self, double epoch)
{
    std::string log = campaignLogPath(cfg, id);
    pid_t pid = ::fork();
    if (pid < 0)
        fatal("campaign: fork failed: %s", std::strerror(errno));
    if (pid != 0)
        return pid;

    // Child: per-shard log, then exec ourselves in --shard mode with
    // the full campaign description so the manifest check can verify
    // we are all running the same fleet.
    int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        if (fd > 2)
            ::close(fd);
    }
    std::vector<std::string> args = {
        self, "--shard", "--spool", cfg.spool,
        "--shard-id", std::to_string(id),
        "--cycles", std::to_string(cfg.cycles),
        "--replicas", std::to_string(cfg.replicas),
        "--checkpoint-interval", std::to_string(cfg.intervalCycles),
        "--heartbeat-interval", fmtDouble(cfg.heartbeatInterval),
        "--heartbeat-timeout", fmtDouble(cfg.heartbeatTimeout),
        "--max-retries", std::to_string(cfg.maxAttempts),
        "--backoff-base", fmtDouble(cfg.backoffBase),
        "--backoff-cap", fmtDouble(cfg.backoffCap),
        "--epoch", fmtDouble(epoch),
    };
    if (cfg.drillPoisonJob != CampaignConfig::kNoJob) {
        args.emplace_back("--drill-poison-job");
        args.emplace_back(std::to_string(cfg.drillPoisonJob));
    }
    if (id == 0 && cfg.drillShard0DieAfterChunks) {
        args.emplace_back("--drill-die-after-chunks");
        args.emplace_back(
            std::to_string(cfg.drillShard0DieAfterChunks));
    }
    if (cfg.chaosSeed) {
        // Every spawn (including respawns after a chaos-induced
        // death) gets its own schedule, derived from the drill seed
        // and the spawn id so reruns of the same seed are identical.
        io::FaultPlan plan = io::FaultPlan::randomized(
            cfg.chaosSeed * 1000003ull + id);
        args.emplace_back("--io-faults");
        args.emplace_back(plan.format());
    } else if (!cfg.ioFaults.empty()) {
        args.emplace_back("--io-faults");
        args.emplace_back(cfg.ioFaults);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(self.c_str(), argv.data());
    std::fprintf(stderr, "campaign: exec '%s' failed: %s\n",
                 self.c_str(), std::strerror(errno));
    ::_exit(127);
}

/**
 * Return a dead shard's claimed tokens to todo/.  A crash while
 * holding the claim counts as a failed attempt (the job may be the
 * poison that killed the shard); supervisor restart does not.
 */
void
reclaimShardClaims(const CampaignConfig &cfg,
                   const std::vector<SimJob> &jobs,
                   const CheckpointConfig &ck, unsigned shard,
                   bool countAttempt)
{
    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string claim = campaignClaimPath(cfg, i, shard);
        if (!fileExists(claim))
            continue;
        std::string rpath = resultPath(ck, i, jobs[i].profile.name);
        if (fileExists(rpath)) {
            // Crashed between writing the result and retiring the
            // token: the measurement is safe, only cleanup was lost.
            ::unlink(claim.c_str());
            continue;
        }
        JobToken tok;
        readJobTokenFile(claim, &tok);
        if (countAttempt) {
            ++tok.attempts;
            if (tok.lastError.empty())
                tok.lastError = "shard " + std::to_string(shard) +
                    " died holding the claim";
            if (tok.attempts >= cfg.maxAttempts) {
                warn("campaign: job %zu '%s' QUARANTINED after %u "
                     "attempt(s) (last holder: shard %u)", i,
                     jobs[i].profile.name.c_str(), tok.attempts,
                     shard);
                writeJobTokenFile(campaignQuarantinePath(cfg, i),
                                  tok);
                ::unlink(claim.c_str());
                continue;
            }
            tok.notBefore =
                campaignWallNow() + backoffSeconds(cfg, tok.attempts);
        }
        // Fence the old holder out *before* the token becomes
        // claimable again: if the "dead" shard is actually a zombie
        // that finishes later, its result carries the old epoch and
        // the merge rejects it.
        bumpJobFence(cfg, i, &tok);
        warn("campaign: reclaimed job %zu '%s' from shard %u "
             "(claim epoch now %llu)", i,
             jobs[i].profile.name.c_str(), shard,
             static_cast<unsigned long long>(tok.fence));
        writeJobTokenFile(campaignTodoPath(cfg, i), tok);
        ::unlink(claim.c_str());
    }
}

/** Sweep claimed/ for tokens left by a previous fleet (resume): every
 *  claim in a freshly resumed spool is stale by construction. */
void
reclaimAllClaims(const CampaignConfig &cfg,
                 const std::vector<SimJob> &jobs,
                 const CheckpointConfig &ck)
{
    DIR *d = ::opendir((cfg.spool + "/claimed").c_str());
    if (!d)
        return;
    std::vector<std::string> names;
    while (struct dirent *e = ::readdir(d)) {
        if (e->d_name[0] != '.')
            names.emplace_back(e->d_name);
    }
    ::closedir(d);
    for (const std::string &name : names) {
        size_t job = 0;
        unsigned shard = 0;
        if (std::sscanf(name.c_str(), "job%zu.shard%u", &job,
                        &shard) != 2 ||
            job >= jobs.size()) {
            warn("campaign: ignoring unrecognized claim '%s'",
                 name.c_str());
            continue;
        }
        // No attempt charged: the fleet died around the job, which
        // says nothing about the job itself.
        reclaimShardClaims(cfg, jobs, ck, shard,
                           /*countAttempt=*/false);
    }
}

} // anonymous namespace

int
runCampaignSupervisor(const CampaignConfig &cfg)
{
    std::vector<SimJob> jobs = campaignJobs(cfg);
    CheckpointConfig ck = spoolCheckpointConfig(cfg);
    ensureCheckpointDir(ck);
    for (const char *sub : {"todo", "claimed", "quarantine", "hb",
                            "logs", "fence"})
        ensureDir(cfg.spool + "/" + sub);

    if (cfg.resume) {
        checkManifest(ck, jobs);
    } else {
        if (fileExists(manifestPath(ck)))
            fatal("campaign: spool '%s' already holds a campaign; "
                  "pass --resume to continue it or point --spool at "
                  "a fresh directory", cfg.spool.c_str());
        writeManifest(ck, jobs);
    }

    interrupt::install();

    if (cfg.inProcess) {
        // Reference mode: the identical job list on SimPool threads.
        // Same spool layout, same manifest, same emit path -- the
        // multi-process campaign must match this byte for byte.
        SimPool pool(cfg.shards);
        pool.setCheckpoint(ck);
        std::vector<ExperimentResult> results = pool.run(jobs);
        if (interrupt::requested()) {
            PoolTelemetry tele = computeTelemetry(results);
            return interrupt::reportInterrupted(
                "campaign abandoned behind per-job checkpoints",
                tele.interruptedJobs, true);
        }
        return emitCampaignOutputs(cfg, jobs, std::move(results));
    }

    // ---- Spool the tokens. ----
    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string rpath = resultPath(ck, i, jobs[i].profile.name);
        std::string todo = campaignTodoPath(cfg, i);
        if (!cfg.resume) {
            writeJobTokenFile(todo, JobToken());
            continue;
        }
        ExperimentResult scratch;
        if (readResultFile(rpath, &scratch)) {
            uint64_t highWater =
                readFenceFile(campaignFencePath(cfg, i));
            if (scratch.fence >= highWater)
                continue; // finished by the previous fleet
            // A fence-stale result is a zombie shard's write from a
            // claim epoch the previous supervisor already revoked:
            // reject it and re-run the job.
            warn("campaign: job %zu '%s' result carries stale fence "
                 "%llu < %llu; rejected, the job will be re-run", i,
                 jobs[i].profile.name.c_str(),
                 static_cast<unsigned long long>(scratch.fence),
                 static_cast<unsigned long long>(highWater));
            ::unlink(rpath.c_str());
        }
        if (fileExists(rpath)) {
            // Present but unreadable: cut off by the crash.  The
            // loud warning came from readResultFile; the job simply
            // is not finished.
            ::unlink(rpath.c_str());
        }
        if (fileExists(campaignQuarantinePath(cfg, i)))
            continue; // poison stays quarantined across resumes
        if (!fileExists(todo) &&
            !fileExists(campaignClaimPath(cfg, i, 0)))
            // May still be claimed under some shard id; the claim
            // sweep below returns those.  Anything truly lost gets a
            // fresh token here.
            writeJobTokenFile(todo, JobToken());
    }
    if (cfg.resume)
        reclaimAllClaims(cfg, jobs, ck);

    // ---- Launch the fleet. ----
    const std::string self = selfExePath();
    const double epoch = campaignWallNow();
    std::vector<Child> children;
    unsigned next_id = 0;
    unsigned spawns_left = cfg.shards +
        cfg.maxAttempts * static_cast<unsigned>(jobs.size()) + 8;
    auto launch = [&] {
        Child c;
        c.id = next_id++;
        c.spawned = campaignWallNow();
        c.pid = spawnShard(cfg, c.id, self, epoch);
        c.alive = true;
        --spawns_left;
        children.push_back(c);
    };
    inform("campaign: %zu job(s) on %u shard process(es), spool '%s'",
           jobs.size(), cfg.shards, cfg.spool.c_str());
    for (unsigned s = 0; s < cfg.shards && spawns_left; ++s)
        launch();

    // ---- Supervise. ----
    auto countResults = [&] {
        size_t done = 0;
        for (size_t i = 0; i < jobs.size(); ++i)
            if (fileExists(
                    resultPath(ck, i, jobs[i].profile.name)))
                ++done;
        return done;
    };
    std::vector<bool> validated(jobs.size(), false);
    // A job is *orphaned* when it has no result and its token exists
    // nowhere (todo/any claim/quarantine) -- the trace of a token
    // write that an injected I/O fault ate.  The claim rename is
    // atomic and every other transition writes the destination before
    // unlinking the source, so a steady state with no token is never
    // a race in progress: heal it with a fresh token at the current
    // claim epoch instead of spinning the fleet to death.
    auto jobHeldByAnyShard = [&](size_t i) {
        std::string prefix = jobTokenName(i) + ".shard";
        DIR *d = ::opendir((cfg.spool + "/claimed").c_str());
        if (!d)
            return false;
        bool held = false;
        while (struct dirent *e = ::readdir(d)) {
            if (std::strncmp(e->d_name, prefix.c_str(),
                             prefix.size()) == 0) {
                held = true;
                break;
            }
        }
        ::closedir(d);
        return held;
    };
    auto healOrphan = [&](size_t i) {
        if (fileExists(campaignTodoPath(cfg, i)) ||
            jobHeldByAnyShard(i))
            return;
        JobToken tok;
        tok.fence = readFenceFile(campaignFencePath(cfg, i));
        warn("campaign: job %zu '%s' has no token anywhere (a spool "
             "write was lost); respooling it", i,
             jobs[i].profile.name.c_str());
        writeJobTokenFile(campaignTodoPath(cfg, i), tok);
    };
    auto campaignDone = [&] {
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (validated[i] ||
                fileExists(campaignQuarantinePath(cfg, i)))
                continue;
            std::string rpath =
                resultPath(ck, i, jobs[i].profile.name);
            if (!fileExists(rpath)) {
                healOrphan(i);
                return false;
            }
            ExperimentResult scratch;
            uint64_t highWater =
                readFenceFile(campaignFencePath(cfg, i));
            if (readResultFile(rpath, &scratch)) {
                if (scratch.fence >= highWater) {
                    validated[i] = true;
                    continue;
                }
                warn("campaign: job %zu '%s' result is fence-stale "
                     "(%llu < %llu); rejected at merge, the job "
                     "will be re-run", i,
                     jobs[i].profile.name.c_str(),
                     static_cast<unsigned long long>(scratch.fence),
                     static_cast<unsigned long long>(highWater));
            }
            // Damaged or fence-stale result: not finished.  Requeue
            // (at the current claim epoch) unless some shard already
            // holds the job again.
            ::unlink(rpath.c_str());
            if (!fileExists(campaignTodoPath(cfg, i))) {
                JobToken tok;
                tok.fence = highWater;
                writeJobTokenFile(campaignTodoPath(cfg, i), tok);
            }
            return false;
        }
        return true;
    };
    const double sweep_every =
        std::clamp(cfg.heartbeatTimeout / 4.0, 0.05, 1.0);
    double last_sweep = campaignWallNow();
    bool fanned_out = false;
    bool drill_fired = false;
    for (;;) {
        // 1. Interrupt fan-out: tell every shard to drain behind its
        //    checkpoint; they exit 130 on their own.
        if (interrupt::requested() && !fanned_out) {
            warn("campaign: interrupt -- draining %zu shard(s)",
                 children.size());
            for (Child &c : children)
                if (c.alive)
                    ::kill(c.pid, SIGTERM);
            fanned_out = true;
        }
        // 2. Reap exits.  A crash (signal, nonzero exit) reclaims the
        //    shard's claims and spawns a replacement.
        int status = 0;
        pid_t p;
        while ((p = ::waitpid(-1, &status, WNOHANG)) > 0) {
            for (Child &c : children) {
                if (c.pid != p || !c.alive)
                    continue;
                c.alive = false;
                bool crashed = WIFSIGNALED(status) ||
                    (WIFEXITED(status) && WEXITSTATUS(status) != 0 &&
                     WEXITSTATUS(status) != interrupt::exitCode);
                if (crashed && !interrupt::requested()) {
                    warn("campaign: shard %u (pid %ld) died "
                         "(%s %d); reclaiming its jobs", c.id,
                         static_cast<long>(p),
                         WIFSIGNALED(status) ? "signal" : "exit",
                         WIFSIGNALED(status) ? WTERMSIG(status)
                                             : WEXITSTATUS(status));
                    reclaimShardClaims(cfg, jobs, ck, c.id,
                                       /*countAttempt=*/true);
                    if (!campaignDone() && spawns_left)
                        launch();
                }
                break;
            }
        }
        // 3. Liveness sweep: a live child with a stale heartbeat is
        //    hung -- SIGKILL it; the reap above reclaims its jobs.
        double now = campaignWallNow();
        if (now - last_sweep >= sweep_every) {
            last_sweep = now;
            for (Child &c : children) {
                if (!c.alive)
                    continue;
                std::string hb = campaignHeartbeatPath(cfg, c.id);
                HeartbeatInfo info;
                double age;
                if (readHeartbeatFile(hb, &info)) {
                    // Liveness is the beat *counter* advancing, not
                    // the file's mtime: a coarse-timestamp (or
                    // deliberately lied-about) mtime must not get a
                    // healthy shard SIGKILLed, and a shard stuck
                    // rewriting the same seq is still hung.
                    if (!c.seqSeen || info.seq != c.lastSeq) {
                        c.seqSeen = true;
                        c.lastSeq = info.seq;
                        c.lastAdvance = now;
                    }
                    age = now - c.lastAdvance;
                } else {
                    age = heartbeatAgeSeconds(hb);
                    if (age < 0.0)
                        age = now - c.spawned; // never beat yet
                }
                if (age > cfg.heartbeatTimeout) {
                    warn("campaign: shard %u (pid %ld) heartbeat "
                         "stale (%.1fs > %.1fs); SIGKILL + reclaim",
                         c.id, static_cast<long>(c.pid), age,
                         cfg.heartbeatTimeout);
                    ::kill(c.pid, SIGKILL);
                }
            }
        }
        // 4. Supervisor-death drill: once N results exist, the whole
        //    fleet loses power, supervisor included.
        if (cfg.drillDieAfterResults && !drill_fired &&
            countResults() >= cfg.drillDieAfterResults) {
            drill_fired = true;
            for (Child &c : children)
                if (c.alive)
                    ::kill(c.pid, SIGKILL);
            ::raise(SIGKILL);
        }
        bool any_alive = std::any_of(
            children.begin(), children.end(),
            [](const Child &c) { return c.alive; });
        if (!interrupt::requested() && campaignDone())
            break;
        if (interrupt::requested() && !any_alive)
            break;
        if (!any_alive && !interrupt::requested()) {
            if (!spawns_left)
                fatal("campaign: all shards dead and the respawn "
                      "budget is exhausted; the spool in '%s' is "
                      "intact -- investigate and rerun with --resume",
                      cfg.spool.c_str());
            launch();
        }
        sleepMs(20);
    }

    // Idle shards notice the drained spool and exit 0 on their own;
    // drained shards exit 130.  Either way, collect them all.
    for (Child &c : children)
        if (c.alive)
            ::waitpid(c.pid, nullptr, 0);

    if (interrupt::requested()) {
        size_t unfinished = jobs.size() - countResults();
        return interrupt::reportInterrupted(
            "campaign drained behind per-job checkpoints",
            static_cast<unsigned>(unfinished), true);
    }

    // ---- Hierarchical merge: shards emitted partial dumps (.result
    // files); composite them exactly like the in-process pool. ----
    std::vector<ExperimentResult> parts(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string rpath = resultPath(ck, i, jobs[i].profile.name);
        if (readResultFile(rpath, &parts[i])) {
            uint64_t highWater =
                readFenceFile(campaignFencePath(cfg, i));
            if (parts[i].fence >= highWater)
                continue;
            // The last line of the split-brain defense: a zombie
            // shard's write that landed after campaignDone() last
            // looked.  Its measurement is from a revoked claim epoch
            // -- refuse to composite it.
            warn("campaign: job %zu '%s' result is fence-stale "
                 "(%llu < %llu); REJECTED at merge", i,
                 jobs[i].profile.name.c_str(),
                 static_cast<unsigned long long>(parts[i].fence),
                 static_cast<unsigned long long>(highWater));
            parts[i] = ExperimentResult();
            parts[i].name = jobs[i].profile.name;
            parts[i].failed = true;
            parts[i].error = "stale-fenced result rejected at merge";
            continue;
        }
        JobToken tok;
        readJobTokenFile(campaignQuarantinePath(cfg, i), &tok);
        parts[i].name = jobs[i].profile.name;
        parts[i].failed = true;
        parts[i].retries = tok.attempts;
        parts[i].error = tok.lastError.empty()
            ? std::string("quarantined")
            : tok.lastError;
    }
    return emitCampaignOutputs(cfg, jobs, std::move(parts));
}

} // namespace vax
