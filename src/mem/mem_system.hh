/**
 * @file
 * Memory-subsystem facade: TB + cache + write buffer + SBI + memory.
 *
 * Implements the cycle-level access protocol the EBOX and the I-Fetch
 * unit use:
 *
 *  - EBOX reads: dataRead() is called once, on the issuing
 *    microinstruction's cycle.  A cache hit returns Ok with data in the
 *    same cycle.  A miss starts an SBI fill and returns Stall; the EBOX
 *    then polls eboxReadDone() each (stalled) cycle and collects the
 *    data with takeEboxReadData().
 *  - EBOX writes: dataWrite() applies the write immediately when the
 *    write buffer is free (write-through); if the buffer is busy the
 *    translated write is queued, Stall is returned, and the EBOX polls
 *    eboxWriteDone().
 *  - IB fetches: ibFetch() probes the cache when the EBOX did not use
 *    the cache port this cycle; a miss queues an SBI fill (EBOX fills
 *    have priority) and the I-Fetch unit polls ibFillDone().
 *  - TB misses and unaligned references are reported as statuses; the
 *    EBOX microtraps into the memory-management microcode, which uses
 *    physRead()/insert() to service them.
 *
 * Call tick() exactly once per machine cycle, after the EBOX and
 * I-Fetch have taken their turns.
 */

#ifndef UPC780_MEM_MEM_SYSTEM_HH
#define UPC780_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/types.hh"
#include "mem/cache.hh"
#include "mem/mem_config.hh"
#include "mem/phys_mem.hh"
#include "mem/sbi.hh"
#include "mem/tb.hh"
#include "mem/write_buffer.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

/** Status of an EBOX data-stream access. */
enum class MemStatus : uint8_t {
    Ok,              ///< completed this cycle (data valid for reads)
    Stall,           ///< in progress; poll the matching *Done()
    TbMiss,          ///< take the TB-miss microtrap
    Unaligned,       ///< take the alignment microtrap
    AccessViolation, ///< protection fault
};

struct MemResult
{
    MemStatus status;
    uint32_t data = 0;
};

/** Status of an IB fetch attempt. */
enum class IbStatus : uint8_t {
    Data,            ///< longword delivered this cycle
    Wait,            ///< fill pending or bus busy; retry/poll
    TbMiss,          ///< I-stream TB miss: set the flag, stop fetching
    AccessViolation,
};

struct IbResult
{
    IbStatus status;
    uint32_t data = 0;
};

class MemSystem
{
  public:
    explicit MemSystem(const MemConfig &cfg, uint64_t seed = 0x780);

    /** @{ EBOX D-stream access (see file comment for the protocol). */
    MemResult dataRead(VirtAddr va, unsigned bytes, CpuMode mode);
    MemResult dataWrite(VirtAddr va, uint32_t data, unsigned bytes,
                        CpuMode mode);
    bool eboxReadDone() const { return eboxReadReady_; }
    uint32_t takeEboxReadData();
    bool eboxWriteDone() const { return eboxWriteDone_; }
    void ackEboxWriteDone() { eboxWriteDone_ = false; }
    /** @} */

    /**
     * Physical longword read for the TB-miss microcode (PTE fetch).
     * Cacheable; same Ok/Stall protocol as dataRead.
     */
    MemResult physRead(PhysAddr pa);

    /**
     * Physical write (PCB save/restore microcode).  Same protocol as
     * dataWrite, without translation; pa must not cross a longword.
     */
    MemResult physWrite(PhysAddr pa, uint32_t data, unsigned bytes);

    /**
     * Register a callback fired after any processor write that lands
     * in [lo, hi] (Unibus-style device windows: monitor CSR, terminal
     * notify ports).
     */
    void addIoWriteHook(PhysAddr lo, PhysAddr hi,
                        std::function<void(PhysAddr, uint32_t)> fn);

    /** @{ I-stream fetch (aligned longword at va). */
    IbResult ibFetch(VirtAddr va, CpuMode mode);
    bool ibFillDone() const { return ibFillReady_; }
    uint32_t takeIbFillData();
    /** @} */

    /** Translate without side effects beyond TB stats (PROBE, etc.). */
    TbResult probe(VirtAddr va, bool is_write, CpuMode mode,
                   PhysAddr *pa_out);

    /** Advance all timers one cycle; completes fills and writes.
     *  Inline because it runs every machine cycle: on an idle memory
     *  cycle (no injector, nothing draining, no bus transaction, no
     *  queued write) only the port-used flag needs resetting. */
    void
    tick()
    {
        eboxPortUsed_ = false;
        if (faults_ || wb_.busy() || sbi_.busy() || eboxWritePending_)
            tickSlow();
    }

    /** True if the EBOX used the cache port this cycle. */
    bool eboxPortUsed() const { return eboxPortUsed_; }

    /** @{ Component access for the OS, analyzer and tests. */
    PhysicalMemory &phys() { return phys_; }
    const PhysicalMemory &phys() const { return phys_; }
    TranslationBuffer &tb() { return tb_; }
    const TranslationBuffer &tb() const { return tb_; }
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }
    const Sbi &sbi() const { return sbi_; }
    const WriteBuffer &writeBuffer() const { return wb_; }
    const MemConfig &config() const { return cfg_; }
    /** @} */

    /** Memory-mapping enable (MTPR MAPEN); on by default. */
    void setMapEnable(bool on) { mapEnable_ = on; }
    bool mapEnable() const { return mapEnable_; }

    /** @{ Fault injection: the injector exists only when the config
     *  enables a fault class, so the golden path stays untouched. */
    bool
    machineCheckPending() const
    {
        return faults_ && faults_->machineCheckPending();
    }
    McheckCause
    takeMachineCheck()
    {
        return faults_ ? faults_->takeMachineCheck()
                       : McheckCause::None;
    }
    const FaultInjector *faultInjector() const { return faults_.get(); }
    /** @} */

    /** @{ Aggregate counters for the implementation-events report. */
    uint64_t dataReads() const { return dataReads_; }
    uint64_t dataWrites() const { return dataWrites_; }
    uint64_t ibLongwordFetches() const { return ibFetches_; }
    /** @} */

    /** Register this subsystem (and every component) under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** @{ Checkpoint/restore of the whole memory subsystem: physical
     *  memory, cache, TB, write buffer, SBI, in-flight fill/write
     *  bookkeeping and the fault injector's schedule position.  IO
     *  write hooks are wiring (re-registered by the harness). */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    enum class FillKind : uint8_t { None, Ebox, Ib };

    /** Check containment of a scalar access in one aligned longword. */
    static bool crossesLongword(VirtAddr va, unsigned bytes);

    /** The non-idle remainder of tick(): injector and drain timers,
     *  fill completion, queued-write drain. */
    void tickSlow();

    TbResult translate(VirtAddr va, bool is_write, CpuMode mode,
                       bool istream, PhysAddr *pa_out);
    void startOrQueueEboxFill(PhysAddr pa, unsigned bytes);
    void maybeStartQueuedFill();
    void applyWrite(PhysAddr pa, uint32_t data, unsigned bytes);

    struct IoHook
    {
        PhysAddr lo;
        PhysAddr hi;
        std::function<void(PhysAddr, uint32_t)> fn;
    };
    std::vector<IoHook> ioHooks_;

    MemConfig cfg_;
    PhysicalMemory phys_;
    Cache cache_;
    TranslationBuffer tb_;
    WriteBuffer wb_;
    Sbi sbi_;
    std::unique_ptr<FaultInjector> faults_;
    bool mapEnable_ = true;

    // Active fill transaction.
    FillKind fill_ = FillKind::None;
    PhysAddr fillPa_ = 0;

    // EBOX read in flight (issued, waiting for fill).
    bool eboxReadActive_ = false;
    bool eboxReadQueued_ = false;  ///< waiting for the bus
    PhysAddr eboxReadPa_ = 0;
    unsigned eboxReadBytes_ = 0;
    bool eboxReadReady_ = false;
    uint32_t eboxReadData_ = 0;

    // EBOX write queued behind a busy write buffer.
    bool eboxWritePending_ = false;
    PhysAddr eboxWritePa_ = 0;
    uint32_t eboxWriteData_ = 0;
    unsigned eboxWriteBytes_ = 0;
    bool eboxWriteDone_ = false;

    // IB fill in flight or queued.
    bool ibFillActive_ = false;
    bool ibFillQueued_ = false;
    PhysAddr ibFillPa_ = 0;
    bool ibFillReady_ = false;
    uint32_t ibFillData_ = 0;

    bool eboxPortUsed_ = false;

    uint64_t dataReads_ = 0;
    uint64_t dataWrites_ = 0;
    uint64_t ibFetches_ = 0;
};

} // namespace vax

#endif // UPC780_MEM_MEM_SYSTEM_HH
