/**
 * @file
 * The 11/780 address translation buffer.
 *
 * 128 entries split into two 64-entry direct-mapped halves: one for
 * system-space (S0) addresses, one for process-space (P0/P1).
 * Translation (lookup) is done by hardware; on a miss the EBOX takes a
 * microtrap and the *microcode* fills the entry -- which is what makes
 * TB misses visible to the UPC histogram technique, unlike cache
 * misses.  LDPCTX invalidates the process half.
 */

#ifndef UPC780_MEM_TB_HH
#define UPC780_MEM_TB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/types.hh"
#include "mem/mem_config.hh"
#include "mem/page_table.hh"

namespace vax
{

namespace stats { class Registry; }
namespace snap { class Serializer; class Deserializer; }

class FaultInjector;

/** Outcome of a TB lookup. */
enum class TbResult : uint8_t {
    Hit,
    Miss,
    AccessViolation, ///< valid translation, insufficient privilege
};

/** TB statistics, split by stream as the paper reports them. */
struct TbStats
{
    uint64_t lookupsI = 0;
    uint64_t missesI = 0;
    uint64_t lookupsD = 0;
    uint64_t missesD = 0;
    uint64_t processFlushes = 0;

    /** Weighted accumulate (composite merges across simulations). */
    void
    accumulate(const TbStats &o, uint64_t w = 1)
    {
        lookupsI += o.lookupsI * w;
        missesI += o.missesI * w;
        lookupsD += o.lookupsD * w;
        missesD += o.missesD * w;
        processFlushes += o.processFlushes * w;
    }

    TbStats &
    operator+=(const TbStats &o)
    {
        accumulate(o);
        return *this;
    }

    /** Mirror every counter into the registry under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** @{ Checkpoint/restore. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */
};

class TranslationBuffer
{
  public:
    explicit TranslationBuffer(const MemConfig &cfg);

    /**
     * Translate a virtual address.
     *
     * @param va      Address to translate.
     * @param is_write True for write access (checks write permission).
     * @param mode    Current processor mode.
     * @param istream True for I-stream lookups (stats only).
     * @param pa_out  Receives the physical address on a hit.
     */
    TbResult lookup(VirtAddr va, bool is_write, CpuMode mode, bool istream,
                    PhysAddr *pa_out, bool count_stats = true);

    /** Install a translation (called by the TB-miss microcode). */
    void insert(VirtAddr va, uint32_t pte_value);

    /** Invalidate both halves (MTPR TBIA). */
    void invalidateAll();

    /** Invalidate the process half (LDPCTX / context switch). */
    void invalidateProcess();

    /** Invalidate a single page's entry if present (MTPR TBIS). */
    void invalidateSingle(VirtAddr va);

    /** Attach a fault injector (null = fault-free operation). */
    void setFaultInjector(FaultInjector *fi) { faults_ = fi; }

    const TbStats &stats() const { return stats_; }

    /** Register stats and derived miss ratios under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** @{ Checkpoint/restore: both entry halves and the stats. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t key = 0; ///< region (2 bits) | VPN
        uint32_t pte = 0;
    };

    Entry *entryFor(VirtAddr va);
    static uint32_t keyOf(VirtAddr va);

    std::vector<Entry> process_;
    std::vector<Entry> system_;
    TbStats stats_;
    FaultInjector *faults_ = nullptr;
};

} // namespace vax

#endif // UPC780_MEM_TB_HH
