#include "mem/mem_system.hh"

#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace vax
{

MemSystem::MemSystem(const MemConfig &cfg, uint64_t seed)
    : cfg_(cfg), phys_(cfg.memBytes), cache_(cfg, seed), tb_(cfg)
{
    // Constructed only when a fault class is enabled: a null injector
    // keeps the golden path free of extra RNG draws and stats.
    if (cfg_.faults.enabled()) {
        faults_ = std::make_unique<FaultInjector>(cfg_.faults, seed);
        cache_.setFaultInjector(faults_.get());
        tb_.setFaultInjector(faults_.get());
        sbi_.setFaultInjector(faults_.get());
    }
}

void
MemSystem::regStats(stats::Registry &r,
                    const std::string &prefix) const
{
    r.addScalar(prefix + ".dataReads",
                "EBOX D-stream read operations", &dataReads_);
    r.addScalar(prefix + ".dataWrites",
                "EBOX D-stream write operations", &dataWrites_);
    r.addScalar(prefix + ".ibLongwordFetches",
                "aligned longword fetches into the IB", &ibFetches_);
    cache_.regStats(r, prefix + ".cache");
    tb_.regStats(r, prefix + ".tb");
    wb_.regStats(r, prefix + ".wbuf");
    sbi_.regStats(r, prefix + ".sbi");
}

bool
MemSystem::crossesLongword(VirtAddr va, unsigned bytes)
{
    return (va & 3) + bytes > 4;
}

TbResult
MemSystem::translate(VirtAddr va, bool is_write, CpuMode mode,
                     bool istream, PhysAddr *pa_out)
{
    if (!mapEnable_) {
        *pa_out = va;
        return TbResult::Hit;
    }
    return tb_.lookup(va, is_write, mode, istream, pa_out);
}

MemResult
MemSystem::dataRead(VirtAddr va, unsigned bytes, CpuMode mode)
{
    upc_assert(!eboxReadActive_ && !eboxReadQueued_ && !eboxReadReady_);
    upc_assert(bytes >= 1 && bytes <= 4);

    if (crossesLongword(va, bytes))
        return {MemStatus::Unaligned};

    PhysAddr pa;
    TbResult tr = translate(va, false, mode, false, &pa);
    if (tr == TbResult::Miss)
        return {MemStatus::TbMiss};
    if (tr == TbResult::AccessViolation)
        return {MemStatus::AccessViolation};

    eboxPortUsed_ = true;
    ++dataReads_;
    if (cache_.readRef(pa, false))
        return {MemStatus::Ok, phys_.read(pa, bytes)};

    startOrQueueEboxFill(pa, bytes);
    return {MemStatus::Stall};
}

MemResult
MemSystem::physRead(PhysAddr pa)
{
    upc_assert(!eboxReadActive_ && !eboxReadQueued_ && !eboxReadReady_);
    // Symmetric with physWrite: a physical longword access that
    // straddles a cache-block boundary would silently attribute the
    // miss to the wrong block, so it is a microcode bug.
    upc_assert(!crossesLongword(pa, 4));
    eboxPortUsed_ = true;
    ++dataReads_;
    if (cache_.readRef(pa, false))
        return {MemStatus::Ok, phys_.read(pa, 4)};
    startOrQueueEboxFill(pa, 4);
    return {MemStatus::Stall};
}

void
MemSystem::startOrQueueEboxFill(PhysAddr pa, unsigned bytes)
{
    eboxReadPa_ = pa;
    eboxReadBytes_ = bytes;
    if (fill_ == FillKind::None) {
        fill_ = FillKind::Ebox;
        fillPa_ = pa;
        // +1 so that after this cycle's tick() the requester stalls for
        // exactly readMissPenalty cycles in the simplest case.
        sbi_.start(cfg_.readMissPenalty + 1);
        eboxReadActive_ = true;
        TRACE(Sbi, "ebox fill start pa=%06x",
              static_cast<unsigned>(pa));
    } else {
        eboxReadQueued_ = true;
        TRACE(Mem, "ebox fill queued behind busy bus pa=%06x",
              static_cast<unsigned>(pa));
    }
}

uint32_t
MemSystem::takeEboxReadData()
{
    upc_assert(eboxReadReady_);
    eboxReadReady_ = false;
    return eboxReadData_;
}

MemResult
MemSystem::dataWrite(VirtAddr va, uint32_t data, unsigned bytes,
                     CpuMode mode)
{
    upc_assert(bytes >= 1 && bytes <= 4);
    upc_assert(!eboxWritePending_ && !eboxWriteDone_);

    if (crossesLongword(va, bytes))
        return {MemStatus::Unaligned};

    PhysAddr pa;
    TbResult tr = translate(va, true, mode, false, &pa);
    if (tr == TbResult::Miss)
        return {MemStatus::TbMiss};
    if (tr == TbResult::AccessViolation)
        return {MemStatus::AccessViolation};

    eboxPortUsed_ = true;
    ++dataWrites_;
    if (!wb_.busy()) {
        applyWrite(pa, data, bytes);
        return {MemStatus::Ok};
    }
    TRACE(Mem, "write stall va=%08x (buffer draining)", va);
    eboxWritePending_ = true;
    eboxWritePa_ = pa;
    eboxWriteData_ = data;
    eboxWriteBytes_ = bytes;
    return {MemStatus::Stall};
}

MemResult
MemSystem::physWrite(PhysAddr pa, uint32_t data, unsigned bytes)
{
    upc_assert(bytes >= 1 && bytes <= 4);
    upc_assert(!eboxWritePending_ && !eboxWriteDone_);
    upc_assert(!crossesLongword(pa, bytes));

    eboxPortUsed_ = true;
    ++dataWrites_;
    if (!wb_.busy()) {
        applyWrite(pa, data, bytes);
        return {MemStatus::Ok};
    }
    eboxWritePending_ = true;
    eboxWritePa_ = pa;
    eboxWriteData_ = data;
    eboxWriteBytes_ = bytes;
    return {MemStatus::Stall};
}

void
MemSystem::applyWrite(PhysAddr pa, uint32_t data, unsigned bytes)
{
    phys_.write(pa, data, bytes);
    cache_.writeRef(pa);
    wb_.accept(cfg_.writeDrainCycles);
    for (const auto &h : ioHooks_)
        if (pa >= h.lo && pa <= h.hi)
            h.fn(pa, data);
}

void
MemSystem::addIoWriteHook(PhysAddr lo, PhysAddr hi,
                          std::function<void(PhysAddr, uint32_t)> fn)
{
    ioHooks_.push_back({lo, hi, std::move(fn)});
}

IbResult
MemSystem::ibFetch(VirtAddr va, CpuMode mode)
{
    upc_assert((va & 3) == 0);

    if (ibFillActive_ || ibFillQueued_ || ibFillReady_)
        return {IbStatus::Wait};

    PhysAddr pa;
    TbResult tr = translate(va, false, mode, true, &pa);
    if (tr == TbResult::Miss)
        return {IbStatus::TbMiss};
    if (tr == TbResult::AccessViolation)
        return {IbStatus::AccessViolation};

    ++ibFetches_;
    if (cache_.readRef(pa, true))
        return {IbStatus::Data, phys_.read(pa, 4)};

    ibFillPa_ = pa;
    if (fill_ == FillKind::None) {
        fill_ = FillKind::Ib;
        fillPa_ = pa;
        sbi_.start(cfg_.ibFillPenalty + 1);
        ibFillActive_ = true;
        TRACE(Sbi, "ib fill start pa=%06x", static_cast<unsigned>(pa));
    } else {
        ibFillQueued_ = true;
        TRACE(Mem, "ib fill queued behind busy bus pa=%06x",
              static_cast<unsigned>(pa));
    }
    return {IbStatus::Wait};
}

uint32_t
MemSystem::takeIbFillData()
{
    upc_assert(ibFillReady_);
    ibFillReady_ = false;
    return ibFillData_;
}

TbResult
MemSystem::probe(VirtAddr va, bool is_write, CpuMode mode,
                 PhysAddr *pa_out)
{
    if (!mapEnable_) {
        *pa_out = va;
        return TbResult::Hit;
    }
    return tb_.lookup(va, is_write, mode, false, pa_out, false);
}

void
MemSystem::maybeStartQueuedFill()
{
    if (fill_ != FillKind::None)
        return;
    // EBOX has priority over the instruction buffer.
    if (eboxReadQueued_) {
        eboxReadQueued_ = false;
        eboxReadActive_ = true;
        fill_ = FillKind::Ebox;
        fillPa_ = eboxReadPa_;
        sbi_.start(cfg_.readMissPenalty + 1);
    } else if (ibFillQueued_) {
        ibFillQueued_ = false;
        ibFillActive_ = true;
        fill_ = FillKind::Ib;
        fillPa_ = ibFillPa_;
        sbi_.start(cfg_.ibFillPenalty + 1);
    }
}

void
MemSystem::tickSlow()
{
    if (faults_)
        faults_->tick();
    wb_.tick();

    if (sbi_.tick()) {
        // Fill transaction completed: install the block, hand data to
        // the requester.
        TRACE(Sbi, "%s fill done pa=%06x",
              fill_ == FillKind::Ebox ? "ebox" : "ib",
              static_cast<unsigned>(fillPa_));
        cache_.fill(fillPa_);
        if (fill_ == FillKind::Ebox) {
            upc_assert(eboxReadActive_);
            eboxReadActive_ = false;
            eboxReadReady_ = true;
            eboxReadData_ = phys_.read(eboxReadPa_, eboxReadBytes_);
        } else if (fill_ == FillKind::Ib) {
            upc_assert(ibFillActive_);
            ibFillActive_ = false;
            ibFillReady_ = true;
            ibFillData_ = phys_.read(ibFillPa_, 4);
        }
        fill_ = FillKind::None;
        maybeStartQueuedFill();
    }

    // Apply a queued write once the buffer frees.
    if (eboxWritePending_ && !wb_.busy()) {
        applyWrite(eboxWritePa_, eboxWriteData_, eboxWriteBytes_);
        eboxWritePending_ = false;
        eboxWriteDone_ = true;
    }
}

} // namespace vax
