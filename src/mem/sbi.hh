/**
 * @file
 * Synchronous Backplane Interconnect timing model.
 *
 * One cache-fill transaction (EBOX read miss or IB fill) may be in
 * flight at a time; a second requester waits for the bus.  Write
 * drains are tracked by the write buffer and, per DESIGN.md, do not
 * contend with fills in this model.
 */

#ifndef UPC780_MEM_SBI_HH
#define UPC780_MEM_SBI_HH

#include <cstdint>
#include <string>

#include "support/faultinject.hh"
#include "support/stats.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

class Sbi
{
  public:
    bool busy() const { return remaining_ > 0; }
    uint32_t remaining() const { return remaining_; }

    /** Claim the bus for the given number of cycles.  An injected
     *  read timeout stretches the transaction by the configured
     *  penalty and latches a machine check; the fill still completes
     *  (the real machine retried the read after the check). */
    void
    start(uint32_t cycles)
    {
        if (faults_ && faults_->drawSbiTimeout()) {
            cycles += faults_->sbiTimeoutPenalty();
            faults_->postMachineCheck(McheckCause::SbiTimeout);
        }
        remaining_ = cycles;
        ++transactions_;
    }

    /** Advance one cycle; returns true if a transaction just ended. */
    bool
    tick()
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        return remaining_ == 0;
    }

    uint64_t transactions() const { return transactions_; }

    /** Attach a fault injector (null = fault-free operation). */
    void setFaultInjector(FaultInjector *fi) { faults_ = fi; }

    /** Register this bus's statistics under prefix. */
    void
    regStats(stats::Registry &r, const std::string &prefix) const
    {
        r.addScalar(prefix + ".transactions",
                    "cache-fill transactions carried", &transactions_);
    }

    /** @{ Checkpoint/restore (the injector pointer is wiring). */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    uint32_t remaining_ = 0;
    uint64_t transactions_ = 0;
    FaultInjector *faults_ = nullptr;
};

} // namespace vax

#endif // UPC780_MEM_SBI_HH
