/**
 * @file
 * Memory-subsystem configuration.
 *
 * Defaults model the VAX-11/780: 8 KB two-way write-through cache with
 * 8-byte blocks, a 128-entry translation buffer split into 64-entry
 * system and process halves, a one-longword write buffer that drains
 * in 6 cycles, and a 6-cycle read-miss penalty in the simplest case.
 */

#ifndef UPC780_MEM_MEM_CONFIG_HH
#define UPC780_MEM_MEM_CONFIG_HH

#include <cstdint>

#include "support/faultinject.hh"

namespace vax
{

struct MemConfig
{
    uint32_t memBytes = 8u << 20;        ///< 8 MB, as in the paper
    uint32_t cacheBytes = 8u << 10;      ///< data/instruction cache size
    uint32_t cacheWays = 2;
    uint32_t cacheBlockBytes = 8;
    uint32_t tbProcessEntries = 64;      ///< process-half TB entries
    uint32_t tbSystemEntries = 64;       ///< system-half TB entries
    uint32_t readMissPenalty = 6;        ///< stall cycles, simplest case
    uint32_t writeDrainCycles = 6;       ///< write-buffer busy per write
    uint32_t ibFillPenalty = 6;          ///< SBI cycles for an IB fill
    FaultConfig faults;                  ///< fault injection (off by default)
};

} // namespace vax

#endif // UPC780_MEM_MEM_CONFIG_HH
