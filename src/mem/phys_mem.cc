#include "mem/phys_mem.hh"

#include "support/logging.hh"

namespace vax
{

PhysicalMemory::PhysicalMemory(uint32_t size_bytes)
    : data_(size_bytes, 0)
{
}


void
PhysicalMemory::writeByte(PhysAddr pa, uint8_t v)
{
    upc_assert(pa < data_.size());
    data_[pa] = v;
}

void
PhysicalMemory::write(PhysAddr pa, uint32_t v, unsigned bytes)
{
    upc_assert(bytes >= 1 && bytes <= 4);
    upc_assert(static_cast<uint64_t>(pa) + bytes <= data_.size());
    for (unsigned i = 0; i < bytes; ++i)
        data_[pa + i] = static_cast<uint8_t>(v >> (8 * i));
}

void
PhysicalMemory::load(PhysAddr pa, const std::vector<uint8_t> &image)
{
    upc_assert(static_cast<uint64_t>(pa) + image.size() <= data_.size());
    for (size_t i = 0; i < image.size(); ++i)
        data_[pa + i] = image[i];
}

} // namespace vax
