#include "mem/tb.hh"

#include "support/bitutil.hh"
#include "support/logging.hh"

namespace vax
{

TranslationBuffer::TranslationBuffer(const MemConfig &cfg)
    : process_(cfg.tbProcessEntries), system_(cfg.tbSystemEntries)
{
    upc_assert(isPowerOf2(cfg.tbProcessEntries));
    upc_assert(isPowerOf2(cfg.tbSystemEntries));
}

uint32_t
TranslationBuffer::keyOf(VirtAddr va)
{
    return (static_cast<uint32_t>(vaRegion(va)) << 21) | vaVpn(va);
}

TranslationBuffer::Entry *
TranslationBuffer::entryFor(VirtAddr va)
{
    uint32_t vpn = vaVpn(va);
    if (vaRegion(va) == VaRegion::S0)
        return &system_[vpn & (system_.size() - 1)];
    return &process_[vpn & (process_.size() - 1)];
}

TbResult
TranslationBuffer::lookup(VirtAddr va, bool is_write, CpuMode mode,
                          bool istream, PhysAddr *pa_out,
                          bool count_stats)
{
    if (count_stats) {
        if (istream)
            ++stats_.lookupsI;
        else
            ++stats_.lookupsD;
    }

    Entry *e = entryFor(va);
    if (!e->valid || e->key != keyOf(va)) {
        if (count_stats) {
            if (istream)
                ++stats_.missesI;
            else
                ++stats_.missesD;
        }
        return TbResult::Miss;
    }

    if (mode != CpuMode::Kernel) {
        bool allowed = is_write ? pte::userWrite(e->pte)
                                : pte::userRead(e->pte);
        if (!allowed)
            return TbResult::AccessViolation;
    }

    *pa_out = (pte::pfn(e->pte) << pageShift) | vaOffset(va);
    return TbResult::Hit;
}

void
TranslationBuffer::insert(VirtAddr va, uint32_t pte_value)
{
    Entry *e = entryFor(va);
    e->valid = true;
    e->key = keyOf(va);
    e->pte = pte_value;
}

void
TranslationBuffer::invalidateAll()
{
    for (auto &e : process_)
        e.valid = false;
    for (auto &e : system_)
        e.valid = false;
}

void
TranslationBuffer::invalidateProcess()
{
    ++stats_.processFlushes;
    for (auto &e : process_)
        e.valid = false;
}

void
TranslationBuffer::invalidateSingle(VirtAddr va)
{
    Entry *e = entryFor(va);
    if (e->valid && e->key == keyOf(va))
        e->valid = false;
}

} // namespace vax
