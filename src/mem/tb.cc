#include "mem/tb.hh"

#include "support/bitutil.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace vax
{

void
TbStats::regStats(stats::Registry &r, const std::string &prefix) const
{
    r.addScalar(prefix + ".lookupsI", "I-stream TB lookups",
                &lookupsI);
    r.addScalar(prefix + ".missesI", "I-stream TB misses", &missesI);
    r.addScalar(prefix + ".lookupsD", "D-stream TB lookups",
                &lookupsD);
    r.addScalar(prefix + ".missesD", "D-stream TB misses", &missesD);
    r.addScalar(prefix + ".processFlushes",
                "process-half invalidations (LDPCTX)", &processFlushes);
}

void
TranslationBuffer::regStats(stats::Registry &r,
                            const std::string &prefix) const
{
    stats_.regStats(r, prefix);
    const TbStats *s = &stats_;
    r.addFormula(prefix + ".missRatio",
                 "combined TB miss ratio", [s] {
                     uint64_t lookups = s->lookupsI + s->lookupsD;
                     return lookups
                         ? double(s->missesI + s->missesD) /
                               double(lookups)
                         : 0.0;
                 });
}

TranslationBuffer::TranslationBuffer(const MemConfig &cfg)
    : process_(cfg.tbProcessEntries), system_(cfg.tbSystemEntries)
{
    upc_assert(isPowerOf2(cfg.tbProcessEntries));
    upc_assert(isPowerOf2(cfg.tbSystemEntries));
}

uint32_t
TranslationBuffer::keyOf(VirtAddr va)
{
    return (static_cast<uint32_t>(vaRegion(va)) << 21) | vaVpn(va);
}

TranslationBuffer::Entry *
TranslationBuffer::entryFor(VirtAddr va)
{
    uint32_t vpn = vaVpn(va);
    if (vaRegion(va) == VaRegion::S0)
        return &system_[vpn & (system_.size() - 1)];
    return &process_[vpn & (process_.size() - 1)];
}

TbResult
TranslationBuffer::lookup(VirtAddr va, bool is_write, CpuMode mode,
                          bool istream, PhysAddr *pa_out,
                          bool count_stats)
{
    if (count_stats) {
        if (istream)
            ++stats_.lookupsI;
        else
            ++stats_.lookupsD;
    }

    Entry *e = entryFor(va);
    if (!e->valid || e->key != keyOf(va)) {
        if (count_stats) {
            if (istream)
                ++stats_.missesI;
            else
                ++stats_.missesD;
            TRACE(Tb, "miss %c va=%08x", istream ? 'I' : 'D', va);
        }
        return TbResult::Miss;
    }

    // An injected parity error on a valid entry is self-healing: the
    // entry is dropped and the ordinary TB-miss microcode refills it
    // from the page table after the machine check is serviced.
    if (count_stats && faults_ && faults_->drawTbCorrupt()) {
        e->valid = false;
        faults_->postMachineCheck(McheckCause::TbCorrupt);
        if (istream)
            ++stats_.missesI;
        else
            ++stats_.missesD;
        TRACE(Tb, "corrupt %c va=%08x", istream ? 'I' : 'D', va);
        return TbResult::Miss;
    }

    if (mode != CpuMode::Kernel) {
        bool allowed = is_write ? pte::userWrite(e->pte)
                                : pte::userRead(e->pte);
        if (!allowed)
            return TbResult::AccessViolation;
    }

    *pa_out = (pte::pfn(e->pte) << pageShift) | vaOffset(va);
    return TbResult::Hit;
}

void
TranslationBuffer::insert(VirtAddr va, uint32_t pte_value)
{
    TRACE(Tb, "fill va=%08x pte=%08x", va, pte_value);
    Entry *e = entryFor(va);
    e->valid = true;
    e->key = keyOf(va);
    e->pte = pte_value;
}

void
TranslationBuffer::invalidateAll()
{
    TRACE(Tb, "invalidate all");
    for (auto &e : process_)
        e.valid = false;
    for (auto &e : system_)
        e.valid = false;
}

void
TranslationBuffer::invalidateProcess()
{
    TRACE(Tb, "invalidate process half");
    ++stats_.processFlushes;
    for (auto &e : process_)
        e.valid = false;
}

void
TranslationBuffer::invalidateSingle(VirtAddr va)
{
    Entry *e = entryFor(va);
    if (e->valid && e->key == keyOf(va))
        e->valid = false;
}

} // namespace vax
