/**
 * @file
 * The 11/780 one-longword write buffer.
 *
 * The machine is write-through: every data write goes to memory over
 * the SBI.  To avoid waiting for memory, a single 4-byte buffer
 * accepts the write in one cycle; a subsequent write issued before the
 * buffer drains causes a write stall.
 */

#ifndef UPC780_MEM_WRITE_BUFFER_HH
#define UPC780_MEM_WRITE_BUFFER_HH

#include <cstdint>
#include <string>

#include "support/stats.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

class WriteBuffer
{
  public:
    /** True if a previous write is still draining to memory. */
    bool busy() const { return remaining_ > 0; }

    /** Accept a write; buffer is busy for drain_cycles. */
    void
    accept(uint32_t drain_cycles)
    {
        remaining_ = drain_cycles;
        ++writesAccepted_;
    }

    /** Advance one cycle. */
    void
    tick()
    {
        if (remaining_ > 0)
            --remaining_;
    }

    uint64_t writesAccepted() const { return writesAccepted_; }

    /** Register this buffer's statistics under prefix. */
    void
    regStats(stats::Registry &r, const std::string &prefix) const
    {
        r.addScalar(prefix + ".writesAccepted",
                    "writes accepted by the one-longword buffer",
                    &writesAccepted_);
    }

    /** @{ Checkpoint/restore. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    uint32_t remaining_ = 0;
    uint64_t writesAccepted_ = 0;
};

} // namespace vax

#endif // UPC780_MEM_WRITE_BUFFER_HH
