/**
 * @file
 * The 11/780 data/instruction cache model.
 *
 * Write-through with no write-allocate, physically addressed, shared
 * by the EBOX D-stream and the instruction buffer's I-stream.  Because
 * writes go straight through, memory is always current and the cache
 * is modelled tag-only: hits and misses are timing events, data comes
 * from physical memory.
 *
 * The real 780 cache is 8 KB, two-way set-associative with 8-byte
 * blocks and random replacement; all of that is configurable here.
 */

#ifndef UPC780_MEM_CACHE_HH
#define UPC780_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/types.hh"
#include "mem/mem_config.hh"
#include "support/random.hh"

namespace vax
{

namespace stats { class Registry; }
namespace snap { class Serializer; class Deserializer; }

class FaultInjector;

/** Per-stream cache statistics (the paper's separate cache study). */
struct CacheStats
{
    uint64_t readRefsI = 0;    ///< I-stream read references
    uint64_t readMissesI = 0;
    uint64_t readRefsD = 0;    ///< D-stream read references
    uint64_t readMissesD = 0;
    uint64_t writeRefs = 0;
    uint64_t writeHits = 0;

    /** Weighted accumulate (composite merges across simulations). */
    void
    accumulate(const CacheStats &o, uint64_t w = 1)
    {
        readRefsI += o.readRefsI * w;
        readMissesI += o.readMissesI * w;
        readRefsD += o.readRefsD * w;
        readMissesD += o.readMissesD * w;
        writeRefs += o.writeRefs * w;
        writeHits += o.writeHits * w;
    }

    CacheStats &
    operator+=(const CacheStats &o)
    {
        accumulate(o);
        return *this;
    }

    /** Mirror every counter into the registry under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** @{ Checkpoint/restore. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */
};

class Cache
{
  public:
    explicit Cache(const MemConfig &cfg, uint64_t seed = 0xcac4e);

    /**
     * Look up a read reference.
     *
     * @param pa Physical address of the (aligned) reference.
     * @param istream True for IB fetches, false for EBOX D-stream.
     * @return True on hit.  A miss does NOT fill; call fill() when the
     *         SBI transaction completes.
     *
     * Inline fast path: runs for every IB fill and D-stream read, so
     * the fault-free lookup is a probe plus two counter bumps; fault
     * injection takes the out-of-line slow path.
     */
    bool
    readRef(PhysAddr pa, bool istream)
    {
        if (faults_) [[unlikely]]
            return readRefSlow(pa, istream);
        bool hit = !disabled_ && probe(pa);
        if (istream) {
            ++stats_.readRefsI;
            if (!hit)
                ++stats_.readMissesI;
        } else {
            ++stats_.readRefsD;
            if (!hit)
                ++stats_.readMissesD;
        }
        if (!hit)
            traceReadMiss(pa, istream);
        return hit;
    }

    /**
     * Look up a write reference (write-through, no allocate).
     *
     * A hit would update the stored data on a real machine; with a
     * tag-only model the call just records the hit.
     */
    void writeRef(PhysAddr pa);

    /** Install the block containing pa (end of a miss fill). */
    void fill(PhysAddr pa);

    /** Invalidate everything (power-up or explicit flush). */
    void invalidateAll();

    /** Attach a fault injector (null = fault-free operation). */
    void setFaultInjector(FaultInjector *fi) { faults_ = fi; }

    /** True once repeated parity errors forced the cache off. */
    bool disabled() const { return disabled_; }

    const CacheStats &stats() const { return stats_; }

    /** Register stats and derived miss ratios under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    uint32_t numSets() const { return sets_; }
    uint32_t numWays() const { return ways_; }

    /** @{ Checkpoint/restore: tags, replacement RNG, parity-disable
     *  state and stats (geometry is config, checked only). */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    struct Line
    {
        bool valid = false;
        uint32_t tag = 0;
    };

    /** Geometry is asserted power-of-two at construction, so the
     *  per-reference index math is two shifts and a mask. */
    uint32_t
    setIndex(PhysAddr pa) const
    {
        return (pa >> blockShift_) & (sets_ - 1);
    }

    uint32_t
    tagOf(PhysAddr pa) const
    {
        return (pa >> blockShift_) >> setShift_;
    }

    bool
    probe(PhysAddr pa) const
    {
        uint32_t set = setIndex(pa);
        uint32_t tag = tagOf(pa);
        for (uint32_t w = 0; w < ways_; ++w) {
            const Line &l = lines_[set * ways_ + w];
            if (l.valid && l.tag == tag)
                return true;
        }
        return false;
    }

    /** readRef with a fault injector attached (parity draws). */
    bool readRefSlow(PhysAddr pa, bool istream);
    /** Cold miss-trace hook, out of line to keep readRef tight. */
    void traceReadMiss(PhysAddr pa, bool istream) const;
    void invalidateBlock(PhysAddr pa);

    uint32_t blockBytes_;
    uint32_t blockShift_;
    uint32_t setShift_;
    uint32_t ways_;
    uint32_t sets_;
    std::vector<Line> lines_; ///< sets_ * ways_, way-major within set
    CacheStats stats_;
    Rng rng_;
    FaultInjector *faults_ = nullptr;
    uint32_t parityErrors_ = 0;
    bool disabled_ = false;
};

} // namespace vax

#endif // UPC780_MEM_CACHE_HH
