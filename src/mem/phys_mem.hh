/**
 * @file
 * Flat physical memory backing store.
 */

#ifndef UPC780_MEM_PHYS_MEM_HH
#define UPC780_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"
#include "support/logging.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

/**
 * The machine's physical memory.
 *
 * With a write-through cache, memory is always current, so the cache
 * model can be tag-only and all data comes from here.
 */
class PhysicalMemory
{
  public:
    explicit PhysicalMemory(uint32_t size_bytes);

    /** Total size in bytes. */
    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

    /** @{ Little-endian accessors; out-of-range addresses panic.
     *  The reads are inline: every instruction-buffer fill and data
     *  reference lands here, and a caller passing a constant width
     *  gets the byte loop unrolled away. */
    uint8_t
    readByte(PhysAddr pa) const
    {
        upc_assert(pa < data_.size());
        return data_[pa];
    }

    uint32_t
    read(PhysAddr pa, unsigned bytes) const
    {
        upc_assert(bytes >= 1 && bytes <= 4);
        upc_assert(static_cast<uint64_t>(pa) + bytes <= data_.size());
        uint32_t v = 0;
        for (unsigned i = 0; i < bytes; ++i)
            v |= static_cast<uint32_t>(data_[pa + i]) << (8 * i);
        return v;
    }

    void writeByte(PhysAddr pa, uint8_t v);
    void write(PhysAddr pa, uint32_t v, unsigned bytes);
    /** @} */

    /** Bulk-load an image (used by the OS loader). */
    void load(PhysAddr pa, const std::vector<uint8_t> &image);

    /** @{ Checkpoint/restore.  Mostly-zero pages compress well, so
     *  the image is stored run-length encoded. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    std::vector<uint8_t> data_;
};

} // namespace vax

#endif // UPC780_MEM_PHYS_MEM_HH
