/**
 * @file
 * Checkpoint/restore for the memory subsystem: physical memory (RLE,
 * since an 8 MB image is mostly zeros), cache tags, TB entries, write
 * buffer, SBI, the in-flight fill/write bookkeeping and the fault
 * injector's schedule position.
 *
 * MemSystem::save owns the section structure; leaf components write
 * raw fields.  Geometry (sizes, ways, entry counts) is configuration,
 * not state: it is written as a fingerprint and verified on restore so
 * a snapshot cannot silently restore into a differently-shaped
 * machine.
 */

#include "mem/mem_system.hh"

#include "support/snapshot.hh"

namespace vax
{

// ====================== CacheStats ======================

void
CacheStats::save(snap::Serializer &s) const
{
    s.putU64(readRefsI);
    s.putU64(readMissesI);
    s.putU64(readRefsD);
    s.putU64(readMissesD);
    s.putU64(writeRefs);
    s.putU64(writeHits);
}

void
CacheStats::restore(snap::Deserializer &d)
{
    readRefsI = d.getU64();
    readMissesI = d.getU64();
    readRefsD = d.getU64();
    readMissesD = d.getU64();
    writeRefs = d.getU64();
    writeHits = d.getU64();
}

// ====================== Cache ======================

void
Cache::save(snap::Serializer &s) const
{
    s.putU32(sets_);
    s.putU32(ways_);
    s.putU32(blockBytes_);
    for (const Line &l : lines_) {
        s.putBool(l.valid);
        s.putU32(l.tag);
    }
    stats_.save(s);
    s.putU64(rng_.state());
    s.putU32(parityErrors_);
    s.putBool(disabled_);
}

void
Cache::restore(snap::Deserializer &d)
{
    d.expectU32(sets_, "cache sets");
    d.expectU32(ways_, "cache ways");
    d.expectU32(blockBytes_, "cache block bytes");
    for (Line &l : lines_) {
        l.valid = d.getBool();
        l.tag = d.getU32();
    }
    stats_.restore(d);
    rng_.setState(d.getU64());
    parityErrors_ = d.getU32();
    disabled_ = d.getBool();
}

// ====================== TbStats ======================

void
TbStats::save(snap::Serializer &s) const
{
    s.putU64(lookupsI);
    s.putU64(missesI);
    s.putU64(lookupsD);
    s.putU64(missesD);
    s.putU64(processFlushes);
}

void
TbStats::restore(snap::Deserializer &d)
{
    lookupsI = d.getU64();
    missesI = d.getU64();
    lookupsD = d.getU64();
    missesD = d.getU64();
    processFlushes = d.getU64();
}

// ====================== TranslationBuffer ======================

void
TranslationBuffer::save(snap::Serializer &s) const
{
    auto putHalf = [&](const std::vector<Entry> &half) {
        s.putU32(static_cast<uint32_t>(half.size()));
        for (const Entry &e : half) {
            s.putBool(e.valid);
            s.putU32(e.key);
            s.putU32(e.pte);
        }
    };
    putHalf(process_);
    putHalf(system_);
    stats_.save(s);
}

void
TranslationBuffer::restore(snap::Deserializer &d)
{
    auto getHalf = [&](std::vector<Entry> &half, const char *name) {
        d.expectU32(static_cast<uint32_t>(half.size()), name);
        for (Entry &e : half) {
            e.valid = d.getBool();
            e.key = d.getU32();
            e.pte = d.getU32();
        }
    };
    getHalf(process_, "TB process entries");
    getHalf(system_, "TB system entries");
    stats_.restore(d);
}

// ====================== WriteBuffer ======================

void
WriteBuffer::save(snap::Serializer &s) const
{
    s.putU32(remaining_);
    s.putU64(writesAccepted_);
}

void
WriteBuffer::restore(snap::Deserializer &d)
{
    remaining_ = d.getU32();
    writesAccepted_ = d.getU64();
}

// ====================== Sbi ======================

void
Sbi::save(snap::Serializer &s) const
{
    s.putU32(remaining_);
    s.putU64(transactions_);
}

void
Sbi::restore(snap::Deserializer &d)
{
    remaining_ = d.getU32();
    transactions_ = d.getU64();
}

// ====================== PhysicalMemory ======================

void
PhysicalMemory::save(snap::Serializer &s) const
{
    s.putU32(size());
    s.putBytesRle(data_.data(), data_.size());
}

void
PhysicalMemory::restore(snap::Deserializer &d)
{
    d.expectU32(size(), "physical memory size");
    d.getBytesRle(data_.data(), data_.size());
}

// ====================== MemSystem ======================

void
MemSystem::save(snap::Serializer &s) const
{
    s.beginSection("mem");
    // Timing configuration is part of the fingerprint: a snapshot's
    // future depends on the penalties the machine was built with.
    s.putU32(cfg_.readMissPenalty);
    s.putU32(cfg_.writeDrainCycles);
    s.putU32(cfg_.ibFillPenalty);
    s.putBool(mapEnable_);

    s.putU8(static_cast<uint8_t>(fill_));
    s.putU32(fillPa_);

    s.putBool(eboxReadActive_);
    s.putBool(eboxReadQueued_);
    s.putU32(eboxReadPa_);
    s.putU32(static_cast<uint32_t>(eboxReadBytes_));
    s.putBool(eboxReadReady_);
    s.putU32(eboxReadData_);

    s.putBool(eboxWritePending_);
    s.putU32(eboxWritePa_);
    s.putU32(eboxWriteData_);
    s.putU32(static_cast<uint32_t>(eboxWriteBytes_));
    s.putBool(eboxWriteDone_);

    s.putBool(ibFillActive_);
    s.putBool(ibFillQueued_);
    s.putU32(ibFillPa_);
    s.putBool(ibFillReady_);
    s.putU32(ibFillData_);

    s.putBool(eboxPortUsed_);
    s.putU64(dataReads_);
    s.putU64(dataWrites_);
    s.putU64(ibFetches_);

    wb_.save(s);
    sbi_.save(s);
    s.endSection();

    s.beginSection("mem.cache");
    cache_.save(s);
    s.endSection();

    s.beginSection("mem.tb");
    tb_.save(s);
    s.endSection();

    s.beginSection("mem.phys");
    phys_.save(s);
    s.endSection();

    // The injector exists only when the config enables a fault class;
    // its presence is itself part of the fingerprint.
    s.beginSection("mem.faults");
    s.putBool(faults_ != nullptr);
    if (faults_)
        faults_->save(s);
    s.endSection();
}

void
MemSystem::restore(snap::Deserializer &d)
{
    d.beginSection("mem");
    d.expectU32(cfg_.readMissPenalty, "read-miss penalty");
    d.expectU32(cfg_.writeDrainCycles, "write-drain cycles");
    d.expectU32(cfg_.ibFillPenalty, "IB fill penalty");
    mapEnable_ = d.getBool();

    fill_ = static_cast<FillKind>(d.getU8());
    fillPa_ = d.getU32();

    eboxReadActive_ = d.getBool();
    eboxReadQueued_ = d.getBool();
    eboxReadPa_ = d.getU32();
    eboxReadBytes_ = d.getU32();
    eboxReadReady_ = d.getBool();
    eboxReadData_ = d.getU32();

    eboxWritePending_ = d.getBool();
    eboxWritePa_ = d.getU32();
    eboxWriteData_ = d.getU32();
    eboxWriteBytes_ = d.getU32();
    eboxWriteDone_ = d.getBool();

    ibFillActive_ = d.getBool();
    ibFillQueued_ = d.getBool();
    ibFillPa_ = d.getU32();
    ibFillReady_ = d.getBool();
    ibFillData_ = d.getU32();

    eboxPortUsed_ = d.getBool();
    dataReads_ = d.getU64();
    dataWrites_ = d.getU64();
    ibFetches_ = d.getU64();

    wb_.restore(d);
    sbi_.restore(d);
    d.endSection();

    d.beginSection("mem.cache");
    cache_.restore(d);
    d.endSection();

    d.beginSection("mem.tb");
    tb_.restore(d);
    d.endSection();

    d.beginSection("mem.phys");
    phys_.restore(d);
    d.endSection();

    d.beginSection("mem.faults");
    bool hadInjector = d.getBool();
    if (hadInjector != (faults_ != nullptr))
        throw snap::SnapshotError(
            std::string("snapshot: fault injector ") +
            (hadInjector ? "present" : "absent") +
            " in the snapshot but " +
            (faults_ ? "present" : "absent") +
            " in this machine (different fault configuration)");
    if (faults_)
        faults_->restore(d);
    d.endSection();
}

} // namespace vax
