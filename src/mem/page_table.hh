/**
 * @file
 * VAX page-table entry format and virtual-address fields.
 *
 * We use a simplified PTE: bit 31 valid, bit 30 user-read, bit 29
 * user-write, bits 20:0 the page frame number.  Kernel mode always has
 * full access to valid pages.  Virtual addresses follow the VAX:
 * bits 31:30 select the region (P0, P1, S0), bits 29:9 are the VPN,
 * bits 8:0 the byte within the 512-byte page.
 */

#ifndef UPC780_MEM_PAGE_TABLE_HH
#define UPC780_MEM_PAGE_TABLE_HH

#include <cstdint>

#include "arch/types.hh"

namespace vax
{

/** Virtual address regions. */
enum class VaRegion : uint8_t { P0 = 0, P1 = 1, S0 = 2, Reserved = 3 };

constexpr VaRegion
vaRegion(VirtAddr va)
{
    return static_cast<VaRegion>(va >> 30);
}

/** Virtual page number within the region (21 bits). */
constexpr uint32_t
vaVpn(VirtAddr va)
{
    return (va >> pageShift) & 0x1FFFFF;
}

constexpr uint32_t
vaOffset(VirtAddr va)
{
    return va & (pageBytes - 1);
}

/** Start of VAX system space. */
constexpr VirtAddr systemBase = 0x80000000u;

namespace pte
{

constexpr uint32_t validBit = 1u << 31;
constexpr uint32_t userReadBit = 1u << 30;
constexpr uint32_t userWriteBit = 1u << 29;
constexpr uint32_t pfnMask = 0x1FFFFF;

/** Build a PTE for the given frame with the given user rights. */
constexpr uint32_t
make(uint32_t pfn, bool user_read, bool user_write)
{
    return validBit | (user_read ? userReadBit : 0) |
        (user_write ? userWriteBit : 0) | (pfn & pfnMask);
}

constexpr bool valid(uint32_t e) { return e & validBit; }
constexpr bool userRead(uint32_t e) { return e & userReadBit; }
constexpr bool userWrite(uint32_t e) { return e & userWriteBit; }
constexpr uint32_t pfn(uint32_t e) { return e & pfnMask; }

} // namespace pte

} // namespace vax

#endif // UPC780_MEM_PAGE_TABLE_HH
