#include "mem/cache.hh"

#include <bit>

#include "support/bitutil.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace vax
{

void
CacheStats::regStats(stats::Registry &r,
                     const std::string &prefix) const
{
    r.addScalar(prefix + ".readRefsI",
                "I-stream read references", &readRefsI);
    r.addScalar(prefix + ".readMissesI",
                "I-stream read misses", &readMissesI);
    r.addScalar(prefix + ".readRefsD",
                "D-stream read references", &readRefsD);
    r.addScalar(prefix + ".readMissesD",
                "D-stream read misses", &readMissesD);
    r.addScalar(prefix + ".writeRefs",
                "write references (write-through)", &writeRefs);
    r.addScalar(prefix + ".writeHits", "write hits", &writeHits);
}

void
Cache::regStats(stats::Registry &r, const std::string &prefix) const
{
    stats_.regStats(r, prefix);
    const CacheStats *s = &stats_;
    r.addFormula(prefix + ".missRatioI",
                 "I-stream read miss ratio", [s] {
                     return s->readRefsI
                         ? double(s->readMissesI) / double(s->readRefsI)
                         : 0.0;
                 });
    r.addFormula(prefix + ".missRatioD",
                 "D-stream read miss ratio", [s] {
                     return s->readRefsD
                         ? double(s->readMissesD) / double(s->readRefsD)
                         : 0.0;
                 });
}

Cache::Cache(const MemConfig &cfg, uint64_t seed)
    : blockBytes_(cfg.cacheBlockBytes),
      blockShift_(static_cast<uint32_t>(
          std::countr_zero(cfg.cacheBlockBytes))),
      setShift_(static_cast<uint32_t>(std::countr_zero(
          cfg.cacheBytes / (cfg.cacheBlockBytes * cfg.cacheWays)))),
      ways_(cfg.cacheWays),
      sets_(cfg.cacheBytes / (cfg.cacheBlockBytes * cfg.cacheWays)),
      lines_(sets_ * ways_),
      rng_(seed)
{
    upc_assert(isPowerOf2(blockBytes_));
    upc_assert(isPowerOf2(sets_));
    upc_assert(ways_ >= 1);
}

void
Cache::invalidateBlock(PhysAddr pa)
{
    uint32_t set = setIndex(pa);
    uint32_t tag = tagOf(pa);
    for (uint32_t w = 0; w < ways_; ++w) {
        Line &l = lines_[set * ways_ + w];
        if (l.valid && l.tag == tag)
            l.valid = false;
    }
}

void
Cache::traceReadMiss(PhysAddr pa, bool istream) const
{
    TRACE(Cache, "read miss %c pa=%06x set=%u",
          istream ? 'I' : 'D', static_cast<unsigned>(pa),
          setIndex(pa));
}

bool
Cache::readRefSlow(PhysAddr pa, bool istream)
{
    bool hit = !disabled_ && probe(pa);
    // Write-through means memory is always current, so an injected
    // parity error is recoverable: drop the bad line, take the miss
    // path, and latch a machine check for the EBOX.
    if (hit && faults_ && faults_->drawCacheParity()) {
        invalidateBlock(pa);
        faults_->postMachineCheck(McheckCause::CacheParity);
        if (faults_->cacheDisableAfter() &&
            ++parityErrors_ >= faults_->cacheDisableAfter() &&
            !disabled_) {
            disabled_ = true;
            faults_->noteCacheDisabled();
            invalidateAll();
            warn("cache: %u parity errors, disabling cache "
                 "(degraded but correct)", parityErrors_);
        }
        hit = false;
    }
    if (istream) {
        ++stats_.readRefsI;
        if (!hit)
            ++stats_.readMissesI;
    } else {
        ++stats_.readRefsD;
        if (!hit)
            ++stats_.readMissesD;
    }
    if (!hit) {
        TRACE(Cache, "read miss %c pa=%06x set=%u",
              istream ? 'I' : 'D', static_cast<unsigned>(pa),
              setIndex(pa));
    }
    return hit;
}

void
Cache::writeRef(PhysAddr pa)
{
    ++stats_.writeRefs;
    bool hit = probe(pa);
    if (hit)
        ++stats_.writeHits;
    // Write-through, no allocate: tags unchanged either way.
    TRACE(Cache, "write %s pa=%06x", hit ? "hit" : "miss",
          static_cast<unsigned>(pa));
}

void
Cache::fill(PhysAddr pa)
{
    if (disabled_)
        return;
    TRACE(Cache, "fill pa=%06x set=%u", static_cast<unsigned>(pa),
          setIndex(pa));
    uint32_t set = setIndex(pa);
    uint32_t tag = tagOf(pa);
    // If it's already present (e.g. racing I/D fills of one block),
    // nothing to do.
    for (uint32_t w = 0; w < ways_; ++w) {
        Line &l = lines_[set * ways_ + w];
        if (l.valid && l.tag == tag)
            return;
    }
    // Prefer an invalid way; otherwise random replacement (as on the
    // real 780).
    for (uint32_t w = 0; w < ways_; ++w) {
        Line &l = lines_[set * ways_ + w];
        if (!l.valid) {
            l.valid = true;
            l.tag = tag;
            return;
        }
    }
    Line &victim = lines_[set * ways_ + rng_.below(ways_)];
    victim.tag = tag;
    victim.valid = true;
}

void
Cache::invalidateAll()
{
    TRACE(Cache, "invalidate all");
    for (auto &l : lines_)
        l.valid = false;
}

} // namespace vax
