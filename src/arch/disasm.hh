/**
 * @file
 * A VAX disassembler for debugging and test verification.
 */

#ifndef UPC780_ARCH_DISASM_HH
#define UPC780_ARCH_DISASM_HH

#include <cstdint>
#include <functional>
#include <string>

#include "arch/types.hh"

namespace vax
{

/** Callback that returns the byte at a virtual address. */
using ByteReader = std::function<uint8_t(VirtAddr)>;

/** Result of disassembling one instruction. */
struct DisasmResult
{
    std::string text;     ///< e.g. "MOVL R1, 8(R2)"
    unsigned length = 0;  ///< instruction length in bytes
    bool valid = false;   ///< false if the opcode is unimplemented
};

/**
 * Disassemble the instruction at addr.
 *
 * CASEx instructions report only the three specifiers; the trailing
 * displacement table is data and its length depends on the runtime
 * limit operand.
 */
DisasmResult disassemble(VirtAddr addr, const ByteReader &read);

} // namespace vax

#endif // UPC780_ARCH_DISASM_HH
