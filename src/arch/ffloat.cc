#include "arch/ffloat.hh"

#include <cmath>

namespace vax
{

double
fToDouble(uint32_t f)
{
    unsigned sign = (f >> 15) & 1;
    unsigned exp = (f >> 7) & 0xFF;
    uint32_t frac = ((f & 0x7F) << 16) | ((f >> 16) & 0xFFFF);
    if (exp == 0) {
        // Sign clear: true zero. Sign set: reserved operand; we map it
        // to zero as well (the microcode faults before using it).
        return 0.0;
    }
    double mant = 0.5 + static_cast<double>(frac) / 16777216.0; // 2^24
    double val = std::ldexp(mant, static_cast<int>(exp) - 128);
    return sign ? -val : val;
}

uint32_t
doubleToF(double d)
{
    if (d == 0.0 || std::isnan(d))
        return 0;
    unsigned sign = d < 0.0 ? 1u : 0u;
    double mag = std::fabs(d);
    int exp;
    double mant = std::frexp(mag, &exp); // mant in [0.5, 1)
    int fexp = exp + 128;
    if (fexp >= 256) {
        // Saturate at the largest finite magnitude.
        fexp = 255;
        mant = (16777215.5) / 16777216.0;
    } else if (fexp <= 0) {
        return 0; // underflow flushes to zero
    }
    uint32_t frac =
        static_cast<uint32_t>((mant - 0.5) * 16777216.0 + 0.5) & 0x7FFFFF;
    uint32_t hi7 = (frac >> 16) & 0x7F;
    uint32_t lo16 = frac & 0xFFFF;
    return (lo16 << 16) | (sign << 15) |
        (static_cast<uint32_t>(fexp) << 7) | hi7;
}

bool
fIsReserved(uint32_t f)
{
    return ((f >> 15) & 1) && ((f >> 7) & 0xFF) == 0;
}

} // namespace vax
