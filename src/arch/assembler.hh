/**
 * @file
 * A programmatic VAX assembler.
 *
 * Builds machine-code images for the simulator: the workload
 * generator, the OS image builder, the examples and the tests all
 * assemble through this interface.  Labels are resolved in finish();
 * displacement-size violations are user (generator) errors and fatal.
 */

#ifndef UPC780_ARCH_ASSEMBLER_HH
#define UPC780_ARCH_ASSEMBLER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "arch/types.hh"

namespace vax
{

/**
 * One operand of an instruction being assembled.
 *
 * Construct through the static factories; apply idx() to add an index
 * prefix to a memory-mode operand.
 */
class Operand
{
  public:
    /** Short literal 0..63 (modes 0-3). */
    static Operand lit(uint8_t value);
    /** Register direct. */
    static Operand reg(uint8_t r);
    /** Register deferred (Rn). */
    static Operand regDef(uint8_t r);
    /** Autoincrement (Rn)+. */
    static Operand autoInc(uint8_t r);
    /** Autodecrement -(Rn). */
    static Operand autoDec(uint8_t r);
    /** Autoincrement deferred @(Rn)+. */
    static Operand autoIncDef(uint8_t r);
    /** Displacement d(Rn); smallest of byte/word/long chosen. */
    static Operand disp(int32_t d, uint8_t r);
    /** Displacement deferred @d(Rn). */
    static Operand dispDef(int32_t d, uint8_t r);
    /**
     * Displacement d(Rn) with a forced field width of 1, 2 or 4
     * bytes (out-of-range d is fatal).  The auto-sizing disp() never
     * emits, say, w^0(Rn); generators that must exercise a specific
     * displacement mode -- the per-opcode characterization corpus --
     * need the width pinned.
     */
    static Operand dispWidth(int32_t d, uint8_t r, unsigned bytes);
    /** Displacement deferred @d(Rn) with a forced field width. */
    static Operand dispDefWidth(int32_t d, uint8_t r, unsigned bytes);
    /** Immediate I^#value ((PC)+); size follows the operand type. */
    static Operand imm(uint32_t value);
    /** Immediate whose value is the address of a label (long only). */
    static Operand immAddr(const std::string &label);
    /** Absolute @#address. */
    static Operand absolute(uint32_t address);
    /** Absolute @#address whose value is the address of a label. */
    static Operand absoluteLabel(const std::string &label);
    /** PC-relative reference to a label (word displacement). */
    static Operand rel(const std::string &label);
    /** PC-relative deferred reference to a label. */
    static Operand relDef(const std::string &label);
    /** Branch displacement to a label (for 'b' operands only). */
    static Operand branch(const std::string &label);

    /** Return a copy of this operand with an index register prefix. */
    Operand idx(uint8_t rx) const;

    /** @{
     * Static introspection for instruction-profile consumers: the
     * characterization corpus records every emitted instruction's
     * specifier shape so the static bound analyzer (ubound) can
     * compose per-opcode cycle bounds without re-decoding the image.
     */
    /** True for branch-displacement operands (not specifiers). */
    bool isBranch() const { return kind_ == Kind::BranchLabel; }
    /** True when an index-prefix byte precedes the specifier. */
    bool isIndexed() const { return indexed_; }
    /**
     * Addressing mode this operand encodes to, mirroring the
     * emission rules exactly (auto-sized displacements included).
     * Fatal for branch operands, which have no specifier byte.
     */
    AddrMode specMode() const;
    /** @} */

  private:
    friend class Assembler;
    Operand() = default;

    enum class Kind : uint8_t {
        Literal, Register, RegDeferred, AutoInc, AutoDec, AutoIncDef,
        Disp, DispDef, Immediate, ImmediateLabel, Absolute,
        AbsoluteLabel, RelLabel, RelDefLabel, BranchLabel,
    };

    Kind kind_ = Kind::Register;
    uint8_t reg_ = 0;
    int32_t value_ = 0;        ///< literal / displacement / immediate
    uint8_t dispBytes_ = 0;    ///< forced disp width; 0 = auto-size
    std::string label_;
    bool indexed_ = false;
    uint8_t indexReg_ = 0;
};

/**
 * Assembles instructions and data into a contiguous image at a base
 * virtual address.
 */
class Assembler
{
  public:
    explicit Assembler(VirtAddr base);

    /** Define a label at the current location. */
    void label(const std::string &name);

    /** Current location counter (virtual address). */
    VirtAddr here() const { return base_ + image_.size(); }

    /** Base virtual address of the image. */
    VirtAddr base() const { return base_; }

    /**
     * Assemble one instruction.
     *
     * The operand list must match the opcode's signature (count and
     * branch-displacement position); mismatches are fatal.
     */
    void instr(uint8_t opcode, const std::vector<Operand> &ops = {});

    /** @{ Raw data emission. */
    void byte(uint8_t v);
    void word(uint16_t v);
    void lword(uint32_t v);
    void ascii(const std::string &s);
    void space(unsigned n, uint8_t fill = 0);
    void align(unsigned a);
    /** @} */

    /** Emit a longword holding the address of a label (abs fixup). */
    void addrLong(const std::string &label);

    /**
     * Emit a CASEx displacement table.
     *
     * Word displacements relative to the table start, one per target
     * label, as the CASE instruction expects.
     */
    void caseTable(const std::vector<std::string> &targets);

    /** Entry mask longword-pair for CALLS targets: emit a 16-bit mask. */
    void entryMask(uint16_t mask);

    /** Resolve fixups and return the image. Call exactly once. */
    std::vector<uint8_t> finish();

    /** Address of a defined label (fatal if missing); valid anytime. */
    VirtAddr addrOf(const std::string &label) const;

    /** True if the label has been defined. */
    bool hasLabel(const std::string &label) const;

    /**
     * Observer called once per assembled instruction (after the
     * opcode/operand validation, before emission) with the opcode's
     * metadata and the operand list.  The characterization corpus
     * uses it to build an exact static instruction profile of the
     * image it emits.
     */
    using InstrHook = std::function<void(const OpcodeInfo &,
                                         const std::vector<Operand> &)>;
    void setInstrHook(InstrHook hook) { instrHook_ = std::move(hook); }

  private:
    enum class FixKind : uint8_t {
        BranchByte,   ///< 1-byte branch displacement
        BranchWord,   ///< 2-byte branch displacement
        RelWord,      ///< word displacement off PC in a specifier
        AbsLong,      ///< 32-bit absolute address
        CaseWord,     ///< word offset from a case-table base
    };

    struct Fixup
    {
        FixKind kind;
        size_t offset;        ///< where the field lives in the image
        VirtAddr nextPc;      ///< address just after the field
        VirtAddr tableBase;   ///< for CaseWord
        std::string label;
    };

    void emitOperand(const Operand &op, const OperandDef &def);
    void putBytes(uint64_t v, unsigned n);

    VirtAddr base_;
    InstrHook instrHook_;
    std::vector<uint8_t> image_;
    std::map<std::string, VirtAddr> labels_;
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace vax

#endif // UPC780_ARCH_ASSEMBLER_HH
