#include "arch/decimal.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace vax
{

int64_t
packedToInt(const std::vector<uint8_t> &bytes, unsigned digits, bool *ok)
{
    upc_assert(digits <= 31);
    upc_assert(bytes.size() >= packedBytes(digits));
    if (ok)
        *ok = true;
    int64_t value = 0;
    // Digits are packed from the most significant; with an even digit
    // count the first (high) nibble of byte 0 is a pad digit of 0.
    unsigned total_nibbles = packedBytes(digits) * 2;
    for (unsigned i = 0; i < total_nibbles - 1; ++i) {
        uint8_t nib = (i % 2 == 0) ? (bytes[i / 2] >> 4)
                                   : (bytes[i / 2] & 0xF);
        if (nib > 9) {
            if (ok)
                *ok = false;
            nib = 0;
        }
        value = value * 10 + nib;
    }
    uint8_t sign = bytes[packedBytes(digits) - 1] & 0xF;
    if (sign == 13 || sign == 11) // preferred and alternate '-'
        value = -value;
    else if (sign <= 9 && ok)
        *ok = false;
    return value;
}

std::vector<uint8_t>
intToPacked(int64_t value, unsigned digits)
{
    upc_assert(digits <= 31);
    std::vector<uint8_t> bytes(packedBytes(digits), 0);
    bool neg = value < 0;
    uint64_t mag = neg ? static_cast<uint64_t>(-value)
                       : static_cast<uint64_t>(value);
    unsigned total_nibbles = bytes.size() * 2;
    // Fill digit nibbles from least significant (just before the sign).
    for (unsigned i = total_nibbles - 2; ; --i) {
        uint8_t nib = static_cast<uint8_t>(mag % 10);
        mag /= 10;
        if (i % 2 == 0)
            bytes[i / 2] |= static_cast<uint8_t>(nib << 4);
        else
            bytes[i / 2] |= nib;
        if (i == 0)
            break;
    }
    bytes.back() = (bytes.back() & 0xF0) | (neg ? 13 : 12);
    return bytes;
}

} // namespace vax
