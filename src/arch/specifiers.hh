/**
 * @file
 * VAX operand specifier (addressing mode) definitions.
 *
 * A specifier is one byte -- mode in bits 7:4, register in bits 3:0 --
 * optionally followed by displacement or immediate bytes, and
 * optionally preceded by an index-prefix byte (mode 4).  PC-based
 * forms of the general modes have distinct names (immediate, absolute,
 * relative) per the architecture.
 */

#ifndef UPC780_ARCH_SPECIFIERS_HH
#define UPC780_ARCH_SPECIFIERS_HH

#include <cstdint>

#include "arch/types.hh"

namespace vax
{

/**
 * Addressing-mode classification used by I-Decode, the analyzer and
 * Table 4.  PC-based variants are split out because the paper reports
 * them separately (immediate, absolute).
 */
enum class AddrMode : uint8_t {
    ShortLiteral,  ///< modes 0-3: 6-bit literal in the specifier byte
    Register,      ///< mode 5: Rn
    RegDeferred,   ///< mode 6: (Rn)
    AutoDec,       ///< mode 7: -(Rn)
    AutoInc,       ///< mode 8: (Rn)+
    Immediate,     ///< mode 8 with Rn=PC: I-stream constant
    AutoIncDef,    ///< mode 9: @(Rn)+
    Absolute,      ///< mode 9 with Rn=PC: @#address
    ByteDisp,      ///< mode A: b^d(Rn) (incl. PC-relative)
    ByteDispDef,   ///< mode B: @b^d(Rn)
    WordDisp,      ///< mode C
    WordDispDef,   ///< mode D
    LongDisp,      ///< mode E
    LongDispDef,   ///< mode F
    NumModes,
};

/** Printable name of an addressing mode. */
const char *addrModeName(AddrMode m);

/** Decoded form of one specifier byte (index prefix handled apart). */
struct SpecByte
{
    AddrMode mode;
    uint8_t reg;       ///< register number (PC for imm/abs/relative)
    uint8_t literal;   ///< 6-bit value for short literals
};

/** True if the mode-nibble denotes the index prefix (mode 4). */
constexpr bool
isIndexPrefix(uint8_t spec_byte)
{
    return (spec_byte >> 4) == 4;
}

/** Cold panic for index-prefix bytes fed to decodeSpecByte. */
[[noreturn]] void badIndexPrefixByte();

/** Classify a (non-index-prefix) specifier byte.  Inline -- this runs
 *  for every operand specifier of every decoded instruction. */
inline SpecByte
decodeSpecByte(uint8_t spec_byte)
{
    uint8_t mode = spec_byte >> 4;
    uint8_t reg = spec_byte & 0xF;
    SpecByte out{AddrMode::Register, reg, 0};
    switch (mode) {
      case 0: case 1: case 2: case 3:
        out.mode = AddrMode::ShortLiteral;
        out.literal = spec_byte & 0x3F;
        out.reg = 0;
        break;
      case 4:
        badIndexPrefixByte();
      case 5:
        out.mode = AddrMode::Register;
        break;
      case 6:
        out.mode = AddrMode::RegDeferred;
        break;
      case 7:
        out.mode = AddrMode::AutoDec;
        break;
      case 8:
        out.mode = reg == PC ? AddrMode::Immediate : AddrMode::AutoInc;
        break;
      case 9:
        out.mode = reg == PC ? AddrMode::Absolute : AddrMode::AutoIncDef;
        break;
      case 10:
        out.mode = AddrMode::ByteDisp;
        break;
      case 11:
        out.mode = AddrMode::ByteDispDef;
        break;
      case 12:
        out.mode = AddrMode::WordDisp;
        break;
      case 13:
        out.mode = AddrMode::WordDispDef;
        break;
      case 14:
        out.mode = AddrMode::LongDisp;
        break;
      case 15:
        out.mode = AddrMode::LongDispDef;
        break;
    }
    return out;
}

/**
 * Number of I-stream bytes that follow the specifier byte.
 *
 * @param mode Decoded addressing mode.
 * @param type Operand data type (sets immediate size).
 */
unsigned specTrailingBytes(AddrMode mode, DataType type);

/** True for modes whose operand datum lives in memory. */
bool addrModeIsMemory(AddrMode m);

/** Aggregated Table 4 reporting category for an addressing mode. */
enum class SpecCategory : uint8_t {
    Register,
    ShortLiteral,
    Immediate,
    Displacement,     ///< byte/word/long displacement (incl. relative)
    RegDeferred,
    AutoIncDec,       ///< (Rn)+ and -(Rn)
    DispDeferred,     ///< displacement deferred (incl. relative def.)
    Absolute,
    AutoIncDef,
    NumCategories,
};

/** Printable name of a Table 4 category. */
const char *specCategoryName(SpecCategory c);

/** Map an addressing mode to its Table 4 category. */
SpecCategory specCategory(AddrMode m);

} // namespace vax

#endif // UPC780_ARCH_SPECIFIERS_HH
