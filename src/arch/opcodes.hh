/**
 * @file
 * VAX instruction set definition.
 *
 * We implement a substantial subset of the VAX architecture, using the
 * real single-byte opcode encodings from the VAX Architecture Reference
 * Manual.  Each opcode carries the metadata every other layer keys off:
 * its Table 1 group, its Table 2 PC-changing class, the microcode
 * execute flow it dispatches to (several opcodes share one flow, as on
 * the real machine), and its operand signature.
 */

#ifndef UPC780_ARCH_OPCODES_HH
#define UPC780_ARCH_OPCODES_HH

#include <array>
#include <cstdint>
#include <string>

#include "arch/types.hh"

namespace vax
{

/**
 * Microcode execute flows.
 *
 * One entry per execute routine in the control store.  Opcode-specific
 * behaviour inside a shared flow (e.g. add vs. subtract) is derived
 * from the latched opcode, mirroring the 11/780's hardware-assisted
 * microcode sharing -- which is why the UPC technique cannot separate
 * such opcodes, exactly as the paper reports.
 */
enum class ExecFlow : uint8_t {
    None,
    // SIMPLE
    Mov, MovAddr, MovQ, Push, Clr, Tst, Cmp, Bit, MCom, MNeg, IncDec,
    Alu2, Alu3, Ash, Cvt,
    BCond,   ///< simple conditional branches + BRB/BRW (shared)
    Sob, Aob, Acb, Blb, Bsb, Jsb, Rsb, Jmp, Case,
    // FIELD
    Ext, CmpV, Insv, Ffs, BitBr, BitBrMod,
    // FLOAT
    FAddSub, FMul, FDiv, FMov, FCmp, CvtFI, CvtIF,
    MulL, DivL, Emul, Ediv,
    // CALL/RET
    CallG, CallS, Ret, PushR, PopR,
    // SYSTEM
    Chmk, Rei, SvPctx, LdPctx, Probe, InsQue, RemQue, Mtpr, Mfpr,
    Halt, Nop, Bpt, Psw,
    // CHARACTER
    MovC3, MovC5, CmpC, Locc, Scanc,
    // DECIMAL
    AddP, CmpP, MovP, CvtPL, CvtLP, AshP,
    NumFlows,
};

/** Printable name of an execute flow. */
const char *execFlowName(ExecFlow f);

/** Definition of one instruction operand. */
struct OperandDef
{
    Access access = Access::Read;
    DataType type = DataType::Long;
};

/** Static description of one opcode. */
struct OpcodeInfo
{
    uint8_t opcode = 0;
    const char *mnemonic = "???";
    Group group = Group::Simple;
    PcChangeKind pck = PcChangeKind::None;
    ExecFlow flow = ExecFlow::None;
    /** Operands in I-stream order, including a trailing branch disp. */
    std::array<OperandDef, 6> operands{};
    uint8_t numOperands = 0;      ///< total operands incl. branch disp
    uint8_t numSpecifiers = 0;    ///< operands encoded as specifiers
    uint8_t bdispBytes = 0;       ///< 0, 1 or 2 bytes of branch disp
    bool valid = false;           ///< true if this opcode is implemented

    /** Data size latch handed to the execute flow (first operand's). */
    DataType sizeLatch() const;
};

/** Mnemonic constants (real VAX encodings). */
namespace op
{
// SIMPLE: moves
constexpr uint8_t MOVB = 0x90, MOVW = 0xB0, MOVL = 0xD0, MOVQ = 0x7D;
constexpr uint8_t MOVAB = 0x9E, MOVAL = 0xDE;
constexpr uint8_t PUSHAB = 0x9F, PUSHAL = 0xDF, PUSHL = 0xDD;
constexpr uint8_t MOVZBL = 0x9A, MOVZBW = 0x9B, MOVZWL = 0x3C;
// SIMPLE: arithmetic/boolean
constexpr uint8_t CLRB = 0x94, CLRW = 0xB4, CLRL = 0xD4, CLRQ = 0x7C;
constexpr uint8_t TSTB = 0x95, TSTW = 0xB5, TSTL = 0xD5;
constexpr uint8_t CMPB = 0x91, CMPW = 0xB1, CMPL = 0xD1;
constexpr uint8_t MCOMB = 0x92, MCOMW = 0xB2, MCOML = 0xD2;
constexpr uint8_t MNEGB = 0x8E, MNEGW = 0xAE, MNEGL = 0xCE;
constexpr uint8_t BITB = 0x93, BITW = 0xB3, BITL = 0xD3;
constexpr uint8_t INCB = 0x96, INCW = 0xB6, INCL = 0xD6;
constexpr uint8_t DECB = 0x97, DECW = 0xB7, DECL = 0xD7;
constexpr uint8_t ADDB2 = 0x80, ADDB3 = 0x81, SUBB2 = 0x82, SUBB3 = 0x83;
constexpr uint8_t ADDW2 = 0xA0, ADDW3 = 0xA1, SUBW2 = 0xA2, SUBW3 = 0xA3;
constexpr uint8_t ADDL2 = 0xC0, ADDL3 = 0xC1, SUBL2 = 0xC2, SUBL3 = 0xC3;
constexpr uint8_t BISB2 = 0x88, BISB3 = 0x89, BICB2 = 0x8A, BICB3 = 0x8B;
constexpr uint8_t XORB2 = 0x8C, XORB3 = 0x8D;
constexpr uint8_t BISW2 = 0xA8, BISW3 = 0xA9, BICW2 = 0xAA, BICW3 = 0xAB;
constexpr uint8_t XORW2 = 0xAC, XORW3 = 0xAD;
constexpr uint8_t BISL2 = 0xC8, BISL3 = 0xC9, BICL2 = 0xCA, BICL3 = 0xCB;
constexpr uint8_t XORL2 = 0xCC, XORL3 = 0xCD;
constexpr uint8_t ASHL = 0x78, ROTL = 0x9C;
constexpr uint8_t CVTBL = 0x98, CVTBW = 0x99, CVTWB = 0x33, CVTWL = 0x32;
constexpr uint8_t CVTLB = 0xF6, CVTLW = 0xF7;
// SIMPLE: branches and linkage
constexpr uint8_t BRB = 0x11, BRW = 0x31;
constexpr uint8_t BNEQ = 0x12, BEQL = 0x13, BGTR = 0x14, BLEQ = 0x15;
constexpr uint8_t BGEQ = 0x18, BLSS = 0x19, BGTRU = 0x1A, BLEQU = 0x1B;
constexpr uint8_t BVC = 0x1C, BVS = 0x1D, BCC = 0x1E, BCS = 0x1F;
constexpr uint8_t SOBGEQ = 0xF4, SOBGTR = 0xF5;
constexpr uint8_t AOBLSS = 0xF2, AOBLEQ = 0xF3, ACBL = 0xF1;
constexpr uint8_t BLBS = 0xE8, BLBC = 0xE9;
constexpr uint8_t BSBB = 0x10, BSBW = 0x30, JSB = 0x16, RSB = 0x05;
constexpr uint8_t JMP = 0x17;
constexpr uint8_t CASEB = 0x8F, CASEW = 0xAF, CASEL = 0xCF;
// FIELD
constexpr uint8_t EXTV = 0xEE, EXTZV = 0xEF, CMPV = 0xEC, CMPZV = 0xED;
constexpr uint8_t INSV = 0xF0, FFS = 0xEA, FFC = 0xEB;
constexpr uint8_t BBS = 0xE0, BBC = 0xE1, BBSS = 0xE2, BBCS = 0xE3;
constexpr uint8_t BBSC = 0xE4, BBCC = 0xE5;
// FLOAT (incl. integer multiply/divide, per Table 1)
constexpr uint8_t ADDF2 = 0x40, ADDF3 = 0x41, SUBF2 = 0x42, SUBF3 = 0x43;
constexpr uint8_t MULF2 = 0x44, MULF3 = 0x45, DIVF2 = 0x46, DIVF3 = 0x47;
constexpr uint8_t MOVF = 0x50, CMPF = 0x51, MNEGF = 0x52, TSTF = 0x53;
constexpr uint8_t CVTFL = 0x4A, CVTLF = 0x4E;
constexpr uint8_t MULL2 = 0xC4, MULL3 = 0xC5, DIVL2 = 0xC6, DIVL3 = 0xC7;
constexpr uint8_t EMUL = 0x7A, EDIV = 0x7B;
// CALL/RET
constexpr uint8_t CALLG = 0xFA, CALLS = 0xFB, RET = 0x04;
constexpr uint8_t PUSHR = 0xBB, POPR = 0xBA;
// SYSTEM
constexpr uint8_t CHMK = 0xBC, REI = 0x02, SVPCTX = 0x07, LDPCTX = 0x06;
constexpr uint8_t PROBER = 0x0C, PROBEW = 0x0D;
constexpr uint8_t INSQUE = 0x0E, REMQUE = 0x0F;
constexpr uint8_t MTPR = 0xDA, MFPR = 0xDB;
constexpr uint8_t HALT = 0x00, NOP = 0x01, BPT = 0x03;
constexpr uint8_t BISPSW = 0xB8, BICPSW = 0xB9;
// CHARACTER
constexpr uint8_t MOVC3 = 0x28, MOVC5 = 0x2C, CMPC3 = 0x29, CMPC5 = 0x2D;
constexpr uint8_t LOCC = 0x3A, SKPC = 0x3B, SCANC = 0x2A, SPANC = 0x2B;
// DECIMAL
constexpr uint8_t ADDP4 = 0x20, SUBP4 = 0x22, CMPP3 = 0x35, MOVP = 0x34;
constexpr uint8_t CVTPL = 0x36, CVTLP = 0xF9, ASHP = 0xF8;
} // namespace op

/**
 * The decode table: metadata for all 256 opcode bytes.
 *
 * Unimplemented opcodes have valid == false; executing one raises a
 * reserved-instruction fault in the simulator.
 */
const std::array<OpcodeInfo, 256> &opcodeTable();

/** Metadata for one opcode byte. */
inline const OpcodeInfo &
opcodeInfo(uint8_t opc)
{
    return opcodeTable()[opc];
}

/** Look up an opcode by mnemonic (case-insensitive); -1 if unknown. */
int opcodeByMnemonic(const std::string &mnemonic);

} // namespace vax

#endif // UPC780_ARCH_OPCODES_HH
