#include "arch/opcodes.hh"

#include <cctype>
#include <cstring>
#include <map>

#include "support/logging.hh"

namespace vax
{

const char *
groupName(Group g)
{
    switch (g) {
      case Group::Simple:    return "SIMPLE";
      case Group::Field:     return "FIELD";
      case Group::Float:     return "FLOAT";
      case Group::CallRet:   return "CALL/RET";
      case Group::System:    return "SYSTEM";
      case Group::Character: return "CHARACTER";
      case Group::Decimal:   return "DECIMAL";
      default:               return "?";
    }
}

const char *
pcChangeKindName(PcChangeKind k)
{
    switch (k) {
      case PcChangeKind::None:        return "(none)";
      case PcChangeKind::SimpleCond:  return "Simple cond. + BRB/BRW";
      case PcChangeKind::LoopBranch:  return "Loop branches";
      case PcChangeKind::LowBitTest:  return "Low-bit tests";
      case PcChangeKind::SubrCallRet: return "Subroutine call/return";
      case PcChangeKind::Uncond:      return "Unconditional (JMP)";
      case PcChangeKind::CaseBranch:  return "Case branch (CASEx)";
      case PcChangeKind::BitBranch:   return "Bit branches";
      case PcChangeKind::ProcCallRet: return "Procedure call/return";
      case PcChangeKind::SystemBr:    return "System branches";
      default:                        return "?";
    }
}

const char *
execFlowName(ExecFlow f)
{
    switch (f) {
      case ExecFlow::None:     return "none";
      case ExecFlow::Mov:      return "MOV";
      case ExecFlow::MovAddr:  return "MOVA";
      case ExecFlow::MovQ:     return "MOVQ";
      case ExecFlow::Push:     return "PUSH";
      case ExecFlow::Clr:      return "CLR";
      case ExecFlow::Tst:      return "TST";
      case ExecFlow::Cmp:      return "CMP";
      case ExecFlow::Bit:      return "BIT";
      case ExecFlow::MCom:     return "MCOM";
      case ExecFlow::MNeg:     return "MNEG";
      case ExecFlow::IncDec:   return "INC/DEC";
      case ExecFlow::Alu2:     return "ALU2";
      case ExecFlow::Alu3:     return "ALU3";
      case ExecFlow::Ash:      return "ASH";
      case ExecFlow::Cvt:      return "CVT";
      case ExecFlow::BCond:    return "BCOND";
      case ExecFlow::Sob:      return "SOB";
      case ExecFlow::Aob:      return "AOB";
      case ExecFlow::Acb:      return "ACB";
      case ExecFlow::Blb:      return "BLB";
      case ExecFlow::Bsb:      return "BSB";
      case ExecFlow::Jsb:      return "JSB";
      case ExecFlow::Rsb:      return "RSB";
      case ExecFlow::Jmp:      return "JMP";
      case ExecFlow::Case:     return "CASE";
      case ExecFlow::Ext:      return "EXTV";
      case ExecFlow::CmpV:     return "CMPV";
      case ExecFlow::Insv:     return "INSV";
      case ExecFlow::Ffs:      return "FFS";
      case ExecFlow::BitBr:    return "BB";
      case ExecFlow::BitBrMod: return "BBxx";
      case ExecFlow::FAddSub:  return "FADD/FSUB";
      case ExecFlow::FMul:     return "FMUL";
      case ExecFlow::FDiv:     return "FDIV";
      case ExecFlow::FMov:     return "FMOV";
      case ExecFlow::FCmp:     return "FCMP";
      case ExecFlow::CvtFI:    return "CVTFI";
      case ExecFlow::CvtIF:    return "CVTIF";
      case ExecFlow::MulL:     return "MULL";
      case ExecFlow::DivL:     return "DIVL";
      case ExecFlow::Emul:     return "EMUL";
      case ExecFlow::Ediv:     return "EDIV";
      case ExecFlow::CallG:    return "CALLG";
      case ExecFlow::CallS:    return "CALLS";
      case ExecFlow::Ret:      return "RET";
      case ExecFlow::PushR:    return "PUSHR";
      case ExecFlow::PopR:     return "POPR";
      case ExecFlow::Chmk:     return "CHMK";
      case ExecFlow::Rei:      return "REI";
      case ExecFlow::SvPctx:   return "SVPCTX";
      case ExecFlow::LdPctx:   return "LDPCTX";
      case ExecFlow::Probe:    return "PROBE";
      case ExecFlow::InsQue:   return "INSQUE";
      case ExecFlow::RemQue:   return "REMQUE";
      case ExecFlow::Mtpr:     return "MTPR";
      case ExecFlow::Mfpr:     return "MFPR";
      case ExecFlow::Halt:     return "HALT";
      case ExecFlow::Nop:      return "NOP";
      case ExecFlow::Bpt:      return "BPT";
      case ExecFlow::Psw:      return "xxxPSW";
      case ExecFlow::MovC3:    return "MOVC3";
      case ExecFlow::MovC5:    return "MOVC5";
      case ExecFlow::CmpC:     return "CMPC";
      case ExecFlow::Locc:     return "LOCC";
      case ExecFlow::Scanc:    return "SCANC";
      case ExecFlow::AddP:     return "ADDP/SUBP";
      case ExecFlow::CmpP:     return "CMPP";
      case ExecFlow::MovP:     return "MOVP";
      case ExecFlow::CvtPL:    return "CVTPL";
      case ExecFlow::CvtLP:    return "CVTLP";
      case ExecFlow::AshP:     return "ASHP";
      default:                 return "?";
    }
}

DataType
OpcodeInfo::sizeLatch() const
{
    if (numOperands == 0)
        return DataType::Long;
    return operands[0].type;
}

namespace
{

/**
 * Parse an operand signature such as "rl mb vb bw" into OperandDefs.
 *
 * First letter: r(ead) w(rite) m(odify) a(ddress) v(field base)
 * b(ranch displacement).  Second letter: b(yte) w(ord) l(ong) q(uad)
 * f(float).
 */
void
parseSignature(OpcodeInfo &info, const char *sig)
{
    const char *p = sig;
    while (*p) {
        while (*p == ' ')
            ++p;
        if (!*p)
            break;
        upc_assert(info.numOperands < 6);
        OperandDef od;
        switch (p[0]) {
          case 'r': od.access = Access::Read; break;
          case 'w': od.access = Access::Write; break;
          case 'm': od.access = Access::Modify; break;
          case 'a': od.access = Access::Address; break;
          case 'v': od.access = Access::Field; break;
          case 'b': od.access = Access::Branch; break;
          default: panic("bad access letter in signature '%s'", sig);
        }
        switch (p[1]) {
          case 'b': od.type = DataType::Byte; break;
          case 'w': od.type = DataType::Word; break;
          case 'l': od.type = DataType::Long; break;
          case 'q': od.type = DataType::Quad; break;
          case 'f': od.type = DataType::FFloat; break;
          default: panic("bad type letter in signature '%s'", sig);
        }
        info.operands[info.numOperands++] = od;
        if (od.access == Access::Branch) {
            info.bdispBytes = dataTypeBytes(od.type);
            upc_assert(info.bdispBytes <= 2);
        } else {
            upc_assert(info.bdispBytes == 0); // bdisp must be last
            ++info.numSpecifiers;
        }
        p += 2;
    }
}

struct OpDef
{
    uint8_t opcode;
    const char *mnemonic;
    Group group;
    PcChangeKind pck;
    ExecFlow flow;
    const char *sig;
};

constexpr Group SIM = Group::Simple;
constexpr Group FLD = Group::Field;
constexpr Group FLT = Group::Float;
constexpr Group CAL = Group::CallRet;
constexpr Group SYS = Group::System;
constexpr Group CHR = Group::Character;
constexpr Group DEC = Group::Decimal;

constexpr PcChangeKind PCK_N = PcChangeKind::None;
constexpr PcChangeKind PCK_SC = PcChangeKind::SimpleCond;
constexpr PcChangeKind PCK_LB = PcChangeKind::LoopBranch;
constexpr PcChangeKind PCK_LT = PcChangeKind::LowBitTest;
constexpr PcChangeKind PCK_SR = PcChangeKind::SubrCallRet;
constexpr PcChangeKind PCK_UN = PcChangeKind::Uncond;
constexpr PcChangeKind PCK_CS = PcChangeKind::CaseBranch;
constexpr PcChangeKind PCK_BB = PcChangeKind::BitBranch;
constexpr PcChangeKind PCK_PR = PcChangeKind::ProcCallRet;
constexpr PcChangeKind PCK_SY = PcChangeKind::SystemBr;

const OpDef defs[] = {
    // --- SIMPLE: moves ---
    {op::MOVB,   "MOVB",   SIM, PCK_N, ExecFlow::Mov, "rb wb"},
    {op::MOVW,   "MOVW",   SIM, PCK_N, ExecFlow::Mov, "rw ww"},
    {op::MOVL,   "MOVL",   SIM, PCK_N, ExecFlow::Mov, "rl wl"},
    {op::MOVQ,   "MOVQ",   SIM, PCK_N, ExecFlow::MovQ, "rq wq"},
    {op::MOVAB,  "MOVAB",  SIM, PCK_N, ExecFlow::MovAddr, "ab wl"},
    {op::MOVAL,  "MOVAL",  SIM, PCK_N, ExecFlow::MovAddr, "al wl"},
    {op::PUSHAB, "PUSHAB", SIM, PCK_N, ExecFlow::Push, "ab"},
    {op::PUSHAL, "PUSHAL", SIM, PCK_N, ExecFlow::Push, "al"},
    {op::PUSHL,  "PUSHL",  SIM, PCK_N, ExecFlow::Push, "rl"},
    {op::MOVZBL, "MOVZBL", SIM, PCK_N, ExecFlow::Cvt, "rb wl"},
    {op::MOVZBW, "MOVZBW", SIM, PCK_N, ExecFlow::Cvt, "rb ww"},
    {op::MOVZWL, "MOVZWL", SIM, PCK_N, ExecFlow::Cvt, "rw wl"},
    // --- SIMPLE: arithmetic / logical ---
    {op::CLRB, "CLRB", SIM, PCK_N, ExecFlow::Clr, "wb"},
    {op::CLRW, "CLRW", SIM, PCK_N, ExecFlow::Clr, "ww"},
    {op::CLRL, "CLRL", SIM, PCK_N, ExecFlow::Clr, "wl"},
    {op::CLRQ, "CLRQ", SIM, PCK_N, ExecFlow::Clr, "wq"},
    {op::TSTB, "TSTB", SIM, PCK_N, ExecFlow::Tst, "rb"},
    {op::TSTW, "TSTW", SIM, PCK_N, ExecFlow::Tst, "rw"},
    {op::TSTL, "TSTL", SIM, PCK_N, ExecFlow::Tst, "rl"},
    {op::CMPB, "CMPB", SIM, PCK_N, ExecFlow::Cmp, "rb rb"},
    {op::CMPW, "CMPW", SIM, PCK_N, ExecFlow::Cmp, "rw rw"},
    {op::CMPL, "CMPL", SIM, PCK_N, ExecFlow::Cmp, "rl rl"},
    {op::MCOMB, "MCOMB", SIM, PCK_N, ExecFlow::MCom, "rb wb"},
    {op::MNEGB, "MNEGB", SIM, PCK_N, ExecFlow::MNeg, "rb wb"},
    {op::MNEGW, "MNEGW", SIM, PCK_N, ExecFlow::MNeg, "rw ww"},
    {op::MNEGL, "MNEGL", SIM, PCK_N, ExecFlow::MNeg, "rl wl"},
    {op::MCOMW, "MCOMW", SIM, PCK_N, ExecFlow::MCom, "rw ww"},
    {op::MCOML, "MCOML", SIM, PCK_N, ExecFlow::MCom, "rl wl"},
    {op::BITB, "BITB", SIM, PCK_N, ExecFlow::Bit, "rb rb"},
    {op::BITW, "BITW", SIM, PCK_N, ExecFlow::Bit, "rw rw"},
    {op::BITL, "BITL", SIM, PCK_N, ExecFlow::Bit, "rl rl"},
    {op::INCB, "INCB", SIM, PCK_N, ExecFlow::IncDec, "mb"},
    {op::INCW, "INCW", SIM, PCK_N, ExecFlow::IncDec, "mw"},
    {op::INCL, "INCL", SIM, PCK_N, ExecFlow::IncDec, "ml"},
    {op::DECB, "DECB", SIM, PCK_N, ExecFlow::IncDec, "mb"},
    {op::DECW, "DECW", SIM, PCK_N, ExecFlow::IncDec, "mw"},
    {op::DECL, "DECL", SIM, PCK_N, ExecFlow::IncDec, "ml"},
    {op::ADDB2, "ADDB2", SIM, PCK_N, ExecFlow::Alu2, "rb mb"},
    {op::ADDB3, "ADDB3", SIM, PCK_N, ExecFlow::Alu3, "rb rb wb"},
    {op::SUBB2, "SUBB2", SIM, PCK_N, ExecFlow::Alu2, "rb mb"},
    {op::SUBB3, "SUBB3", SIM, PCK_N, ExecFlow::Alu3, "rb rb wb"},
    {op::ADDW2, "ADDW2", SIM, PCK_N, ExecFlow::Alu2, "rw mw"},
    {op::ADDW3, "ADDW3", SIM, PCK_N, ExecFlow::Alu3, "rw rw ww"},
    {op::SUBW2, "SUBW2", SIM, PCK_N, ExecFlow::Alu2, "rw mw"},
    {op::SUBW3, "SUBW3", SIM, PCK_N, ExecFlow::Alu3, "rw rw ww"},
    {op::ADDL2, "ADDL2", SIM, PCK_N, ExecFlow::Alu2, "rl ml"},
    {op::ADDL3, "ADDL3", SIM, PCK_N, ExecFlow::Alu3, "rl rl wl"},
    {op::SUBL2, "SUBL2", SIM, PCK_N, ExecFlow::Alu2, "rl ml"},
    {op::SUBL3, "SUBL3", SIM, PCK_N, ExecFlow::Alu3, "rl rl wl"},
    {op::BISB2, "BISB2", SIM, PCK_N, ExecFlow::Alu2, "rb mb"},
    {op::BISB3, "BISB3", SIM, PCK_N, ExecFlow::Alu3, "rb rb wb"},
    {op::BICB2, "BICB2", SIM, PCK_N, ExecFlow::Alu2, "rb mb"},
    {op::BICB3, "BICB3", SIM, PCK_N, ExecFlow::Alu3, "rb rb wb"},
    {op::XORB2, "XORB2", SIM, PCK_N, ExecFlow::Alu2, "rb mb"},
    {op::XORB3, "XORB3", SIM, PCK_N, ExecFlow::Alu3, "rb rb wb"},
    {op::BISW2, "BISW2", SIM, PCK_N, ExecFlow::Alu2, "rw mw"},
    {op::BISW3, "BISW3", SIM, PCK_N, ExecFlow::Alu3, "rw rw ww"},
    {op::BICW2, "BICW2", SIM, PCK_N, ExecFlow::Alu2, "rw mw"},
    {op::BICW3, "BICW3", SIM, PCK_N, ExecFlow::Alu3, "rw rw ww"},
    {op::XORW2, "XORW2", SIM, PCK_N, ExecFlow::Alu2, "rw mw"},
    {op::XORW3, "XORW3", SIM, PCK_N, ExecFlow::Alu3, "rw rw ww"},
    {op::BISL2, "BISL2", SIM, PCK_N, ExecFlow::Alu2, "rl ml"},
    {op::BISL3, "BISL3", SIM, PCK_N, ExecFlow::Alu3, "rl rl wl"},
    {op::BICL2, "BICL2", SIM, PCK_N, ExecFlow::Alu2, "rl ml"},
    {op::BICL3, "BICL3", SIM, PCK_N, ExecFlow::Alu3, "rl rl wl"},
    {op::XORL2, "XORL2", SIM, PCK_N, ExecFlow::Alu2, "rl ml"},
    {op::XORL3, "XORL3", SIM, PCK_N, ExecFlow::Alu3, "rl rl wl"},
    {op::ASHL, "ASHL", SIM, PCK_N, ExecFlow::Ash, "rb rl wl"},
    {op::ROTL, "ROTL", SIM, PCK_N, ExecFlow::Ash, "rb rl wl"},
    {op::CVTBL, "CVTBL", SIM, PCK_N, ExecFlow::Cvt, "rb wl"},
    {op::CVTBW, "CVTBW", SIM, PCK_N, ExecFlow::Cvt, "rb ww"},
    {op::CVTWB, "CVTWB", SIM, PCK_N, ExecFlow::Cvt, "rw wb"},
    {op::CVTWL, "CVTWL", SIM, PCK_N, ExecFlow::Cvt, "rw wl"},
    {op::CVTLB, "CVTLB", SIM, PCK_N, ExecFlow::Cvt, "rl wb"},
    {op::CVTLW, "CVTLW", SIM, PCK_N, ExecFlow::Cvt, "rl ww"},
    // --- SIMPLE: branches & linkage ---
    {op::BRB, "BRB", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BRW, "BRW", SIM, PCK_SC, ExecFlow::BCond, "bw"},
    {op::BNEQ, "BNEQ", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BEQL, "BEQL", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BGTR, "BGTR", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BLEQ, "BLEQ", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BGEQ, "BGEQ", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BLSS, "BLSS", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BGTRU, "BGTRU", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BLEQU, "BLEQU", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BVC, "BVC", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BVS, "BVS", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BCC, "BCC", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::BCS, "BCS", SIM, PCK_SC, ExecFlow::BCond, "bb"},
    {op::SOBGEQ, "SOBGEQ", SIM, PCK_LB, ExecFlow::Sob, "ml bb"},
    {op::SOBGTR, "SOBGTR", SIM, PCK_LB, ExecFlow::Sob, "ml bb"},
    {op::AOBLSS, "AOBLSS", SIM, PCK_LB, ExecFlow::Aob, "rl ml bb"},
    {op::AOBLEQ, "AOBLEQ", SIM, PCK_LB, ExecFlow::Aob, "rl ml bb"},
    {op::ACBL, "ACBL", SIM, PCK_LB, ExecFlow::Acb, "rl rl ml bw"},
    {op::BLBS, "BLBS", SIM, PCK_LT, ExecFlow::Blb, "rl bb"},
    {op::BLBC, "BLBC", SIM, PCK_LT, ExecFlow::Blb, "rl bb"},
    {op::BSBB, "BSBB", SIM, PCK_SR, ExecFlow::Bsb, "bb"},
    {op::BSBW, "BSBW", SIM, PCK_SR, ExecFlow::Bsb, "bw"},
    {op::JSB, "JSB", SIM, PCK_SR, ExecFlow::Jsb, "al"},
    {op::RSB, "RSB", SIM, PCK_SR, ExecFlow::Rsb, ""},
    {op::JMP, "JMP", SIM, PCK_UN, ExecFlow::Jmp, "al"},
    {op::CASEB, "CASEB", SIM, PCK_CS, ExecFlow::Case, "rb rb rb"},
    {op::CASEW, "CASEW", SIM, PCK_CS, ExecFlow::Case, "rw rw rw"},
    {op::CASEL, "CASEL", SIM, PCK_CS, ExecFlow::Case, "rl rl rl"},
    // --- FIELD ---
    {op::EXTV, "EXTV", FLD, PCK_N, ExecFlow::Ext, "rl rb vb wl"},
    {op::EXTZV, "EXTZV", FLD, PCK_N, ExecFlow::Ext, "rl rb vb wl"},
    {op::CMPV, "CMPV", FLD, PCK_N, ExecFlow::CmpV, "rl rb vb rl"},
    {op::CMPZV, "CMPZV", FLD, PCK_N, ExecFlow::CmpV, "rl rb vb rl"},
    {op::INSV, "INSV", FLD, PCK_N, ExecFlow::Insv, "rl rl rb vb"},
    {op::FFS, "FFS", FLD, PCK_N, ExecFlow::Ffs, "rl rb vb wl"},
    {op::FFC, "FFC", FLD, PCK_N, ExecFlow::Ffs, "rl rb vb wl"},
    {op::BBS, "BBS", FLD, PCK_BB, ExecFlow::BitBr, "rl vb bb"},
    {op::BBC, "BBC", FLD, PCK_BB, ExecFlow::BitBr, "rl vb bb"},
    {op::BBSS, "BBSS", FLD, PCK_BB, ExecFlow::BitBrMod, "rl vb bb"},
    {op::BBCS, "BBCS", FLD, PCK_BB, ExecFlow::BitBrMod, "rl vb bb"},
    {op::BBSC, "BBSC", FLD, PCK_BB, ExecFlow::BitBrMod, "rl vb bb"},
    {op::BBCC, "BBCC", FLD, PCK_BB, ExecFlow::BitBrMod, "rl vb bb"},
    // --- FLOAT ---
    {op::ADDF2, "ADDF2", FLT, PCK_N, ExecFlow::FAddSub, "rf mf"},
    {op::ADDF3, "ADDF3", FLT, PCK_N, ExecFlow::FAddSub, "rf rf wf"},
    {op::SUBF2, "SUBF2", FLT, PCK_N, ExecFlow::FAddSub, "rf mf"},
    {op::SUBF3, "SUBF3", FLT, PCK_N, ExecFlow::FAddSub, "rf rf wf"},
    {op::MULF2, "MULF2", FLT, PCK_N, ExecFlow::FMul, "rf mf"},
    {op::MULF3, "MULF3", FLT, PCK_N, ExecFlow::FMul, "rf rf wf"},
    {op::DIVF2, "DIVF2", FLT, PCK_N, ExecFlow::FDiv, "rf mf"},
    {op::DIVF3, "DIVF3", FLT, PCK_N, ExecFlow::FDiv, "rf rf wf"},
    {op::MOVF, "MOVF", FLT, PCK_N, ExecFlow::FMov, "rf wf"},
    {op::MNEGF, "MNEGF", FLT, PCK_N, ExecFlow::FMov, "rf wf"},
    {op::CMPF, "CMPF", FLT, PCK_N, ExecFlow::FCmp, "rf rf"},
    {op::TSTF, "TSTF", FLT, PCK_N, ExecFlow::FCmp, "rf"},
    {op::CVTFL, "CVTFL", FLT, PCK_N, ExecFlow::CvtFI, "rf wl"},
    {op::CVTLF, "CVTLF", FLT, PCK_N, ExecFlow::CvtIF, "rl wf"},
    {op::MULL2, "MULL2", FLT, PCK_N, ExecFlow::MulL, "rl ml"},
    {op::MULL3, "MULL3", FLT, PCK_N, ExecFlow::MulL, "rl rl wl"},
    {op::DIVL2, "DIVL2", FLT, PCK_N, ExecFlow::DivL, "rl ml"},
    {op::DIVL3, "DIVL3", FLT, PCK_N, ExecFlow::DivL, "rl rl wl"},
    {op::EMUL, "EMUL", FLT, PCK_N, ExecFlow::Emul, "rl rl rl wq"},
    {op::EDIV, "EDIV", FLT, PCK_N, ExecFlow::Ediv, "rl rq wl wl"},
    // --- CALL/RET ---
    {op::CALLG, "CALLG", CAL, PCK_PR, ExecFlow::CallG, "ab ab"},
    {op::CALLS, "CALLS", CAL, PCK_PR, ExecFlow::CallS, "rl ab"},
    {op::RET, "RET", CAL, PCK_PR, ExecFlow::Ret, ""},
    {op::PUSHR, "PUSHR", CAL, PCK_N, ExecFlow::PushR, "rw"},
    {op::POPR, "POPR", CAL, PCK_N, ExecFlow::PopR, "rw"},
    // --- SYSTEM ---
    {op::CHMK, "CHMK", SYS, PCK_SY, ExecFlow::Chmk, "rw"},
    {op::REI, "REI", SYS, PCK_SY, ExecFlow::Rei, ""},
    {op::SVPCTX, "SVPCTX", SYS, PCK_N, ExecFlow::SvPctx, ""},
    {op::LDPCTX, "LDPCTX", SYS, PCK_N, ExecFlow::LdPctx, ""},
    {op::PROBER, "PROBER", SYS, PCK_N, ExecFlow::Probe, "rb rw ab"},
    {op::PROBEW, "PROBEW", SYS, PCK_N, ExecFlow::Probe, "rb rw ab"},
    {op::INSQUE, "INSQUE", SYS, PCK_N, ExecFlow::InsQue, "ab ab"},
    {op::REMQUE, "REMQUE", SYS, PCK_N, ExecFlow::RemQue, "ab wl"},
    {op::MTPR, "MTPR", SYS, PCK_N, ExecFlow::Mtpr, "rl rl"},
    {op::MFPR, "MFPR", SYS, PCK_N, ExecFlow::Mfpr, "rl wl"},
    {op::HALT, "HALT", SYS, PCK_N, ExecFlow::Halt, ""},
    {op::NOP, "NOP", SYS, PCK_N, ExecFlow::Nop, ""},
    {op::BPT, "BPT", SYS, PCK_N, ExecFlow::Bpt, ""},
    {op::BISPSW, "BISPSW", SYS, PCK_N, ExecFlow::Psw, "rw"},
    {op::BICPSW, "BICPSW", SYS, PCK_N, ExecFlow::Psw, "rw"},
    // --- CHARACTER ---
    {op::MOVC3, "MOVC3", CHR, PCK_N, ExecFlow::MovC3, "rw ab ab"},
    {op::MOVC5, "MOVC5", CHR, PCK_N, ExecFlow::MovC5, "rw ab rb rw ab"},
    {op::CMPC3, "CMPC3", CHR, PCK_N, ExecFlow::CmpC, "rw ab ab"},
    {op::CMPC5, "CMPC5", CHR, PCK_N, ExecFlow::CmpC, "rw ab rb rw ab"},
    {op::LOCC, "LOCC", CHR, PCK_N, ExecFlow::Locc, "rb rw ab"},
    {op::SKPC, "SKPC", CHR, PCK_N, ExecFlow::Locc, "rb rw ab"},
    {op::SCANC, "SCANC", CHR, PCK_N, ExecFlow::Scanc, "rw ab ab rb"},
    {op::SPANC, "SPANC", CHR, PCK_N, ExecFlow::Scanc, "rw ab ab rb"},
    // --- DECIMAL ---
    {op::ADDP4, "ADDP4", DEC, PCK_N, ExecFlow::AddP, "rw ab rw ab"},
    {op::SUBP4, "SUBP4", DEC, PCK_N, ExecFlow::AddP, "rw ab rw ab"},
    {op::CMPP3, "CMPP3", DEC, PCK_N, ExecFlow::CmpP, "rw ab ab"},
    {op::MOVP, "MOVP", DEC, PCK_N, ExecFlow::MovP, "rw ab ab"},
    {op::CVTPL, "CVTPL", DEC, PCK_N, ExecFlow::CvtPL, "rw ab wl"},
    {op::CVTLP, "CVTLP", DEC, PCK_N, ExecFlow::CvtLP, "rl rw ab"},
    {op::ASHP, "ASHP", DEC, PCK_N, ExecFlow::AshP, "rb rw ab rb rw ab"},
};

std::array<OpcodeInfo, 256>
buildTable()
{
    std::array<OpcodeInfo, 256> table{};
    for (unsigned i = 0; i < 256; ++i) {
        table[i].opcode = static_cast<uint8_t>(i);
        table[i].valid = false;
    }
    for (const auto &d : defs) {
        OpcodeInfo &info = table[d.opcode];
        upc_assert(!info.valid); // duplicate encodings are a bug
        info.mnemonic = d.mnemonic;
        info.group = d.group;
        info.pck = d.pck;
        info.flow = d.flow;
        info.valid = true;
        parseSignature(info, d.sig);
    }
    return table;
}

} // anonymous namespace

const std::array<OpcodeInfo, 256> &
opcodeTable()
{
    static const std::array<OpcodeInfo, 256> table = buildTable();
    return table;
}

int
opcodeByMnemonic(const std::string &mnemonic)
{
    static const std::map<std::string, int> index = [] {
        std::map<std::string, int> m;
        const auto &table = opcodeTable();
        for (unsigned i = 0; i < 256; ++i)
            if (table[i].valid)
                m[table[i].mnemonic] = static_cast<int>(i);
        return m;
    }();
    std::string upper;
    for (char c : mnemonic)
        upper.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
    auto it = index.find(upper);
    return it == index.end() ? -1 : it->second;
}

} // namespace vax
