#include "arch/specifiers.hh"

#include "support/logging.hh"

namespace vax
{

const char *
addrModeName(AddrMode m)
{
    switch (m) {
      case AddrMode::ShortLiteral: return "S^#literal";
      case AddrMode::Register:     return "Rn";
      case AddrMode::RegDeferred:  return "(Rn)";
      case AddrMode::AutoDec:      return "-(Rn)";
      case AddrMode::AutoInc:      return "(Rn)+";
      case AddrMode::Immediate:    return "I^#immediate";
      case AddrMode::AutoIncDef:   return "@(Rn)+";
      case AddrMode::Absolute:     return "@#absolute";
      case AddrMode::ByteDisp:     return "b^d(Rn)";
      case AddrMode::ByteDispDef:  return "@b^d(Rn)";
      case AddrMode::WordDisp:     return "w^d(Rn)";
      case AddrMode::WordDispDef:  return "@w^d(Rn)";
      case AddrMode::LongDisp:     return "l^d(Rn)";
      case AddrMode::LongDispDef:  return "@l^d(Rn)";
      default:                     return "?";
    }
}

SpecByte
decodeSpecByte(uint8_t spec_byte)
{
    uint8_t mode = spec_byte >> 4;
    uint8_t reg = spec_byte & 0xF;
    SpecByte out{AddrMode::Register, reg, 0};
    switch (mode) {
      case 0: case 1: case 2: case 3:
        out.mode = AddrMode::ShortLiteral;
        out.literal = spec_byte & 0x3F;
        out.reg = 0;
        break;
      case 4:
        panic("index prefix byte passed to decodeSpecByte");
      case 5:
        out.mode = AddrMode::Register;
        break;
      case 6:
        out.mode = AddrMode::RegDeferred;
        break;
      case 7:
        out.mode = AddrMode::AutoDec;
        break;
      case 8:
        out.mode = reg == PC ? AddrMode::Immediate : AddrMode::AutoInc;
        break;
      case 9:
        out.mode = reg == PC ? AddrMode::Absolute : AddrMode::AutoIncDef;
        break;
      case 10:
        out.mode = AddrMode::ByteDisp;
        break;
      case 11:
        out.mode = AddrMode::ByteDispDef;
        break;
      case 12:
        out.mode = AddrMode::WordDisp;
        break;
      case 13:
        out.mode = AddrMode::WordDispDef;
        break;
      case 14:
        out.mode = AddrMode::LongDisp;
        break;
      case 15:
        out.mode = AddrMode::LongDispDef;
        break;
    }
    return out;
}

unsigned
specTrailingBytes(AddrMode mode, DataType type)
{
    switch (mode) {
      case AddrMode::ShortLiteral:
      case AddrMode::Register:
      case AddrMode::RegDeferred:
      case AddrMode::AutoDec:
      case AddrMode::AutoInc:
      case AddrMode::AutoIncDef:
        return 0;
      case AddrMode::Immediate:
        return dataTypeBytes(type);
      case AddrMode::Absolute:
        return 4;
      case AddrMode::ByteDisp:
      case AddrMode::ByteDispDef:
        return 1;
      case AddrMode::WordDisp:
      case AddrMode::WordDispDef:
        return 2;
      case AddrMode::LongDisp:
      case AddrMode::LongDispDef:
        return 4;
      default:
        panic("bad addressing mode");
    }
}

bool
addrModeIsMemory(AddrMode m)
{
    return m != AddrMode::ShortLiteral && m != AddrMode::Register &&
        m != AddrMode::Immediate;
}

const char *
specCategoryName(SpecCategory c)
{
    switch (c) {
      case SpecCategory::Register:     return "Register Rn";
      case SpecCategory::ShortLiteral: return "Short literal S^#";
      case SpecCategory::Immediate:    return "Immediate (PC)+";
      case SpecCategory::Displacement: return "Displacement d(Rn)";
      case SpecCategory::RegDeferred:  return "Register deferred (Rn)";
      case SpecCategory::AutoIncDec:   return "Autoinc/dec (Rn)+ -(Rn)";
      case SpecCategory::DispDeferred: return "Disp. deferred @d(Rn)";
      case SpecCategory::Absolute:     return "Absolute @#";
      case SpecCategory::AutoIncDef:   return "Autoinc deferred @(Rn)+";
      default:                         return "?";
    }
}

SpecCategory
specCategory(AddrMode m)
{
    switch (m) {
      case AddrMode::Register:     return SpecCategory::Register;
      case AddrMode::ShortLiteral: return SpecCategory::ShortLiteral;
      case AddrMode::Immediate:    return SpecCategory::Immediate;
      case AddrMode::ByteDisp:
      case AddrMode::WordDisp:
      case AddrMode::LongDisp:     return SpecCategory::Displacement;
      case AddrMode::RegDeferred:  return SpecCategory::RegDeferred;
      case AddrMode::AutoInc:
      case AddrMode::AutoDec:      return SpecCategory::AutoIncDec;
      case AddrMode::ByteDispDef:
      case AddrMode::WordDispDef:
      case AddrMode::LongDispDef:  return SpecCategory::DispDeferred;
      case AddrMode::Absolute:     return SpecCategory::Absolute;
      case AddrMode::AutoIncDef:   return SpecCategory::AutoIncDef;
      default: panic("bad addressing mode");
    }
}

} // namespace vax
