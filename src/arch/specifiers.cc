#include "arch/specifiers.hh"

#include "support/logging.hh"

namespace vax
{

const char *
addrModeName(AddrMode m)
{
    switch (m) {
      case AddrMode::ShortLiteral: return "S^#literal";
      case AddrMode::Register:     return "Rn";
      case AddrMode::RegDeferred:  return "(Rn)";
      case AddrMode::AutoDec:      return "-(Rn)";
      case AddrMode::AutoInc:      return "(Rn)+";
      case AddrMode::Immediate:    return "I^#immediate";
      case AddrMode::AutoIncDef:   return "@(Rn)+";
      case AddrMode::Absolute:     return "@#absolute";
      case AddrMode::ByteDisp:     return "b^d(Rn)";
      case AddrMode::ByteDispDef:  return "@b^d(Rn)";
      case AddrMode::WordDisp:     return "w^d(Rn)";
      case AddrMode::WordDispDef:  return "@w^d(Rn)";
      case AddrMode::LongDisp:     return "l^d(Rn)";
      case AddrMode::LongDispDef:  return "@l^d(Rn)";
      default:                     return "?";
    }
}

void
badIndexPrefixByte()
{
    panic("index prefix byte passed to decodeSpecByte");
}

unsigned
specTrailingBytes(AddrMode mode, DataType type)
{
    switch (mode) {
      case AddrMode::ShortLiteral:
      case AddrMode::Register:
      case AddrMode::RegDeferred:
      case AddrMode::AutoDec:
      case AddrMode::AutoInc:
      case AddrMode::AutoIncDef:
        return 0;
      case AddrMode::Immediate:
        return dataTypeBytes(type);
      case AddrMode::Absolute:
        return 4;
      case AddrMode::ByteDisp:
      case AddrMode::ByteDispDef:
        return 1;
      case AddrMode::WordDisp:
      case AddrMode::WordDispDef:
        return 2;
      case AddrMode::LongDisp:
      case AddrMode::LongDispDef:
        return 4;
      default:
        panic("bad addressing mode");
    }
}

bool
addrModeIsMemory(AddrMode m)
{
    return m != AddrMode::ShortLiteral && m != AddrMode::Register &&
        m != AddrMode::Immediate;
}

const char *
specCategoryName(SpecCategory c)
{
    switch (c) {
      case SpecCategory::Register:     return "Register Rn";
      case SpecCategory::ShortLiteral: return "Short literal S^#";
      case SpecCategory::Immediate:    return "Immediate (PC)+";
      case SpecCategory::Displacement: return "Displacement d(Rn)";
      case SpecCategory::RegDeferred:  return "Register deferred (Rn)";
      case SpecCategory::AutoIncDec:   return "Autoinc/dec (Rn)+ -(Rn)";
      case SpecCategory::DispDeferred: return "Disp. deferred @d(Rn)";
      case SpecCategory::Absolute:     return "Absolute @#";
      case SpecCategory::AutoIncDef:   return "Autoinc deferred @(Rn)+";
      default:                         return "?";
    }
}

SpecCategory
specCategory(AddrMode m)
{
    switch (m) {
      case AddrMode::Register:     return SpecCategory::Register;
      case AddrMode::ShortLiteral: return SpecCategory::ShortLiteral;
      case AddrMode::Immediate:    return SpecCategory::Immediate;
      case AddrMode::ByteDisp:
      case AddrMode::WordDisp:
      case AddrMode::LongDisp:     return SpecCategory::Displacement;
      case AddrMode::RegDeferred:  return SpecCategory::RegDeferred;
      case AddrMode::AutoInc:
      case AddrMode::AutoDec:      return SpecCategory::AutoIncDec;
      case AddrMode::ByteDispDef:
      case AddrMode::WordDispDef:
      case AddrMode::LongDispDef:  return SpecCategory::DispDeferred;
      case AddrMode::Absolute:     return SpecCategory::Absolute;
      case AddrMode::AutoIncDef:   return SpecCategory::AutoIncDef;
      default: panic("bad addressing mode");
    }
}

} // namespace vax
