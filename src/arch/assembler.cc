#include "arch/assembler.hh"

#include "support/bitutil.hh"
#include "support/logging.hh"

namespace vax
{

Operand
Operand::lit(uint8_t value)
{
    upc_assert(value < 64);
    Operand o;
    o.kind_ = Kind::Literal;
    o.value_ = value;
    return o;
}

Operand
Operand::reg(uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::Register;
    o.reg_ = r;
    return o;
}

Operand
Operand::regDef(uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::RegDeferred;
    o.reg_ = r;
    return o;
}

Operand
Operand::autoInc(uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::AutoInc;
    o.reg_ = r;
    return o;
}

Operand
Operand::autoDec(uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::AutoDec;
    o.reg_ = r;
    return o;
}

Operand
Operand::autoIncDef(uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::AutoIncDef;
    o.reg_ = r;
    return o;
}

Operand
Operand::disp(int32_t d, uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::Disp;
    o.reg_ = r;
    o.value_ = d;
    return o;
}

Operand
Operand::dispDef(int32_t d, uint8_t r)
{
    upc_assert(r < NumGpr && r != PC);
    Operand o;
    o.kind_ = Kind::DispDef;
    o.reg_ = r;
    o.value_ = d;
    return o;
}

Operand
Operand::dispWidth(int32_t d, uint8_t r, unsigned bytes)
{
    upc_assert(r < NumGpr && r != PC);
    if (!((bytes == 1 && d >= -128 && d <= 127) ||
          (bytes == 2 && d >= -32768 && d <= 32767) || bytes == 4))
        fatal("assembler: displacement %d does not fit %u byte(s)", d,
              bytes);
    Operand o;
    o.kind_ = Kind::Disp;
    o.reg_ = r;
    o.value_ = d;
    o.dispBytes_ = static_cast<uint8_t>(bytes);
    return o;
}

Operand
Operand::dispDefWidth(int32_t d, uint8_t r, unsigned bytes)
{
    Operand o = dispWidth(d, r, bytes);
    o.kind_ = Kind::DispDef;
    return o;
}

Operand
Operand::imm(uint32_t value)
{
    Operand o;
    o.kind_ = Kind::Immediate;
    o.value_ = static_cast<int32_t>(value);
    return o;
}

Operand
Operand::immAddr(const std::string &label)
{
    Operand o;
    o.kind_ = Kind::ImmediateLabel;
    o.label_ = label;
    return o;
}

Operand
Operand::absolute(uint32_t address)
{
    Operand o;
    o.kind_ = Kind::Absolute;
    o.value_ = static_cast<int32_t>(address);
    return o;
}

Operand
Operand::absoluteLabel(const std::string &label)
{
    Operand o;
    o.kind_ = Kind::AbsoluteLabel;
    o.label_ = label;
    return o;
}

Operand
Operand::rel(const std::string &label)
{
    Operand o;
    o.kind_ = Kind::RelLabel;
    o.label_ = label;
    return o;
}

Operand
Operand::relDef(const std::string &label)
{
    Operand o;
    o.kind_ = Kind::RelDefLabel;
    o.label_ = label;
    return o;
}

Operand
Operand::branch(const std::string &label)
{
    Operand o;
    o.kind_ = Kind::BranchLabel;
    o.label_ = label;
    return o;
}

Operand
Operand::idx(uint8_t rx) const
{
    upc_assert(rx < NumGpr && rx != PC);
    upc_assert(kind_ != Kind::Literal && kind_ != Kind::Register &&
               kind_ != Kind::Immediate && kind_ != Kind::BranchLabel);
    Operand o = *this;
    o.indexed_ = true;
    o.indexReg_ = rx;
    return o;
}

AddrMode
Operand::specMode() const
{
    switch (kind_) {
      case Kind::Literal:        return AddrMode::ShortLiteral;
      case Kind::Register:       return AddrMode::Register;
      case Kind::RegDeferred:    return AddrMode::RegDeferred;
      case Kind::AutoInc:        return AddrMode::AutoInc;
      case Kind::AutoDec:        return AddrMode::AutoDec;
      case Kind::AutoIncDef:     return AddrMode::AutoIncDef;
      case Kind::Immediate:
      case Kind::ImmediateLabel: return AddrMode::Immediate;
      case Kind::Absolute:
      case Kind::AbsoluteLabel:  return AddrMode::Absolute;
      case Kind::Disp:
      case Kind::DispDef: {
        bool deferred = kind_ == Kind::DispDef;
        unsigned forced = dispBytes_;
        if (forced == 1 || (!forced && value_ >= -128 && value_ <= 127))
            return deferred ? AddrMode::ByteDispDef
                            : AddrMode::ByteDisp;
        if (forced == 2 ||
            (!forced && value_ >= -32768 && value_ <= 32767))
            return deferred ? AddrMode::WordDispDef
                            : AddrMode::WordDisp;
        return deferred ? AddrMode::LongDispDef : AddrMode::LongDisp;
      }
      case Kind::RelLabel:       return AddrMode::WordDisp;
      case Kind::RelDefLabel:    return AddrMode::WordDispDef;
      case Kind::BranchLabel:    break;
    }
    fatal("assembler: branch operand has no addressing mode");
}

Assembler::Assembler(VirtAddr base)
    : base_(base)
{
}

void
Assembler::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("assembler: duplicate label '%s'", name.c_str());
    labels_[name] = here();
}

void
Assembler::putBytes(uint64_t v, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        image_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
Assembler::byte(uint8_t v)
{
    image_.push_back(v);
}

void
Assembler::word(uint16_t v)
{
    putBytes(v, 2);
}

void
Assembler::lword(uint32_t v)
{
    putBytes(v, 4);
}

void
Assembler::ascii(const std::string &s)
{
    for (char c : s)
        image_.push_back(static_cast<uint8_t>(c));
}

void
Assembler::space(unsigned n, uint8_t fill)
{
    image_.insert(image_.end(), n, fill);
}

void
Assembler::align(unsigned a)
{
    upc_assert(isPowerOf2(a));
    while (here() % a)
        image_.push_back(0);
}

void
Assembler::addrLong(const std::string &lbl)
{
    fixups_.push_back({FixKind::AbsLong, image_.size(), here() + 4, 0, lbl});
    putBytes(0, 4);
}

void
Assembler::caseTable(const std::vector<std::string> &targets)
{
    VirtAddr table_base = here();
    for (const auto &t : targets) {
        fixups_.push_back(
            {FixKind::CaseWord, image_.size(), here() + 2, table_base, t});
        putBytes(0, 2);
    }
}

void
Assembler::entryMask(uint16_t mask)
{
    word(mask);
}

void
Assembler::emitOperand(const Operand &op, const OperandDef &def)
{
    using K = Operand::Kind;

    if (def.access == Access::Branch) {
        if (op.kind_ != K::BranchLabel)
            fatal("assembler: branch operand must be a branch label");
        unsigned n = dataTypeBytes(def.type);
        fixups_.push_back({n == 1 ? FixKind::BranchByte : FixKind::BranchWord,
                           image_.size(), here() + n, 0, op.label_});
        putBytes(0, n);
        return;
    }

    if (op.kind_ == K::BranchLabel)
        fatal("assembler: branch label used as a general operand");

    if (op.indexed_)
        image_.push_back(static_cast<uint8_t>(0x40 | op.indexReg_));

    switch (op.kind_) {
      case K::Literal:
        if (def.access != Access::Read)
            fatal("assembler: literal with non-read access");
        image_.push_back(static_cast<uint8_t>(op.value_ & 0x3F));
        break;
      case K::Register:
        image_.push_back(static_cast<uint8_t>(0x50 | op.reg_));
        break;
      case K::RegDeferred:
        image_.push_back(static_cast<uint8_t>(0x60 | op.reg_));
        break;
      case K::AutoDec:
        image_.push_back(static_cast<uint8_t>(0x70 | op.reg_));
        break;
      case K::AutoInc:
        image_.push_back(static_cast<uint8_t>(0x80 | op.reg_));
        break;
      case K::AutoIncDef:
        image_.push_back(static_cast<uint8_t>(0x90 | op.reg_));
        break;
      case K::Immediate:
        if (def.access != Access::Read)
            fatal("assembler: immediate with non-read access");
        image_.push_back(0x8F);
        putBytes(static_cast<uint32_t>(op.value_),
                 dataTypeBytes(def.type));
        break;
      case K::ImmediateLabel:
        if (def.access != Access::Read ||
            dataTypeBytes(def.type) != 4)
            fatal("assembler: immAddr needs a longword read operand");
        image_.push_back(0x8F);
        fixups_.push_back({FixKind::AbsLong, image_.size(), here() + 4,
                           0, op.label_});
        putBytes(0, 4);
        break;
      case K::Absolute:
        image_.push_back(0x9F);
        putBytes(static_cast<uint32_t>(op.value_), 4);
        break;
      case K::AbsoluteLabel:
        image_.push_back(0x9F);
        fixups_.push_back({FixKind::AbsLong, image_.size(), here() + 4,
                           0, op.label_});
        putBytes(0, 4);
        break;
      case K::Disp:
      case K::DispDef: {
        bool deferred = op.kind_ == K::DispDef;
        int32_t d = op.value_;
        unsigned forced = op.dispBytes_;
        if (forced == 1 || (!forced && d >= -128 && d <= 127)) {
            image_.push_back(
                static_cast<uint8_t>((deferred ? 0xB0 : 0xA0) | op.reg_));
            putBytes(static_cast<uint32_t>(d), 1);
        } else if (forced == 2 ||
                   (!forced && d >= -32768 && d <= 32767)) {
            image_.push_back(
                static_cast<uint8_t>((deferred ? 0xD0 : 0xC0) | op.reg_));
            putBytes(static_cast<uint32_t>(d), 2);
        } else {
            image_.push_back(
                static_cast<uint8_t>((deferred ? 0xF0 : 0xE0) | op.reg_));
            putBytes(static_cast<uint32_t>(d), 4);
        }
        break;
      }
      case K::RelLabel:
      case K::RelDefLabel: {
        bool deferred = op.kind_ == K::RelDefLabel;
        // Word-displacement PC-relative form.
        image_.push_back(static_cast<uint8_t>((deferred ? 0xD0 : 0xC0) | PC));
        fixups_.push_back({FixKind::RelWord, image_.size(), here() + 2, 0,
                           op.label_});
        putBytes(0, 2);
        break;
      }
      case K::BranchLabel:
        break; // handled above
    }
}

void
Assembler::instr(uint8_t opcode, const std::vector<Operand> &ops)
{
    const OpcodeInfo &info = opcodeInfo(opcode);
    if (!info.valid)
        fatal("assembler: opcode %#x not implemented", opcode);
    if (ops.size() != info.numOperands)
        fatal("assembler: %s expects %u operands, got %zu",
              info.mnemonic, info.numOperands, ops.size());
    if (instrHook_)
        instrHook_(info, ops);
    image_.push_back(opcode);
    for (unsigned i = 0; i < info.numOperands; ++i)
        emitOperand(ops[i], info.operands[i]);
}

VirtAddr
Assembler::addrOf(const std::string &lbl) const
{
    auto it = labels_.find(lbl);
    if (it == labels_.end())
        fatal("assembler: undefined label '%s'", lbl.c_str());
    return it->second;
}

bool
Assembler::hasLabel(const std::string &lbl) const
{
    return labels_.count(lbl) != 0;
}

std::vector<uint8_t>
Assembler::finish()
{
    upc_assert(!finished_);
    finished_ = true;
    for (const auto &f : fixups_) {
        VirtAddr target = addrOf(f.label);
        int64_t value = 0;
        switch (f.kind) {
          case FixKind::BranchByte:
            value = static_cast<int64_t>(target) - f.nextPc;
            if (value < -128 || value > 127)
                fatal("assembler: byte branch to '%s' out of range (%lld)",
                      f.label.c_str(), static_cast<long long>(value));
            image_[f.offset] = static_cast<uint8_t>(value);
            break;
          case FixKind::BranchWord:
          case FixKind::RelWord:
            value = static_cast<int64_t>(target) - f.nextPc;
            if (value < -32768 || value > 32767)
                fatal("assembler: word displacement to '%s' out of range",
                      f.label.c_str());
            image_[f.offset] = static_cast<uint8_t>(value);
            image_[f.offset + 1] = static_cast<uint8_t>(value >> 8);
            break;
          case FixKind::AbsLong:
            for (unsigned i = 0; i < 4; ++i)
                image_[f.offset + i] =
                    static_cast<uint8_t>(target >> (8 * i));
            break;
          case FixKind::CaseWord:
            value = static_cast<int64_t>(target) - f.tableBase;
            if (value < -32768 || value > 32767)
                fatal("assembler: case displacement to '%s' out of range",
                      f.label.c_str());
            image_[f.offset] = static_cast<uint8_t>(value);
            image_[f.offset + 1] = static_cast<uint8_t>(value >> 8);
            break;
        }
    }
    return image_;
}

} // namespace vax
