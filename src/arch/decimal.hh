/**
 * @file
 * VAX packed-decimal string helpers.
 *
 * A packed decimal string of N digits occupies N/2 + 1 bytes; digits
 * are stored two per byte most-significant first, and the low nibble
 * of the final byte holds the sign (12 = '+', 13 = '-').
 */

#ifndef UPC780_ARCH_DECIMAL_HH
#define UPC780_ARCH_DECIMAL_HH

#include <cstdint>
#include <vector>

namespace vax
{

/** Bytes occupied by a packed decimal string of the given digit count. */
constexpr unsigned
packedBytes(unsigned digits)
{
    return digits / 2 + 1;
}

/**
 * Decode a packed decimal string to a signed integer.
 *
 * @param bytes  The packedBytes(digits) bytes of the string.
 * @param digits Digit count (0-31).
 * @param ok     Cleared if a nibble is not a valid digit/sign.
 */
int64_t packedToInt(const std::vector<uint8_t> &bytes, unsigned digits,
                    bool *ok = nullptr);

/**
 * Encode a signed integer as a packed decimal string.
 *
 * Excess high digits are truncated (decimal overflow), matching the
 * architecture's overflow behaviour for our purposes.
 */
std::vector<uint8_t> intToPacked(int64_t value, unsigned digits);

} // namespace vax

#endif // UPC780_ARCH_DECIMAL_HH
