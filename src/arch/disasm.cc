#include "arch/disasm.hh"

#include <cstdarg>
#include <cstdio>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "support/bitutil.hh"

namespace vax
{

namespace
{

const char *regNames[16] = {
    "R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7",
    "R8", "R9", "R10", "R11", "AP", "FP", "SP", "PC",
};

uint32_t
readN(VirtAddr addr, unsigned n, const ByteReader &read)
{
    uint32_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<uint32_t>(read(addr + i)) << (8 * i);
    return v;
}

std::string
fmt(const char *f, ...)
{
    char buf[128];
    va_list args;
    va_start(args, f);
    std::vsnprintf(buf, sizeof(buf), f, args);
    va_end(args);
    return buf;
}

/** Render one specifier; advances addr past it. */
std::string
renderSpecifier(VirtAddr &addr, DataType type, const ByteReader &read)
{
    uint8_t b = read(addr++);
    std::string prefix;
    if (isIndexPrefix(b)) {
        prefix = fmt("[%s]", regNames[b & 0xF]);
        b = read(addr++);
    }
    SpecByte sb = decodeSpecByte(b);
    unsigned trail = specTrailingBytes(sb.mode, type);
    uint32_t extra = trail ? readN(addr, trail, read) : 0;
    addr += trail;

    std::string body;
    switch (sb.mode) {
      case AddrMode::ShortLiteral:
        body = fmt("S^#%u", sb.literal);
        break;
      case AddrMode::Register:
        body = regNames[sb.reg];
        break;
      case AddrMode::RegDeferred:
        body = fmt("(%s)", regNames[sb.reg]);
        break;
      case AddrMode::AutoDec:
        body = fmt("-(%s)", regNames[sb.reg]);
        break;
      case AddrMode::AutoInc:
        body = fmt("(%s)+", regNames[sb.reg]);
        break;
      case AddrMode::Immediate:
        body = fmt("I^#%#x", extra);
        break;
      case AddrMode::AutoIncDef:
        body = fmt("@(%s)+", regNames[sb.reg]);
        break;
      case AddrMode::Absolute:
        body = fmt("@#%#x", extra);
        break;
      case AddrMode::ByteDisp:
        body = fmt("B^%d(%s)", sext(extra, 8), regNames[sb.reg]);
        break;
      case AddrMode::ByteDispDef:
        body = fmt("@B^%d(%s)", sext(extra, 8), regNames[sb.reg]);
        break;
      case AddrMode::WordDisp:
        body = fmt("W^%d(%s)", sext(extra, 16), regNames[sb.reg]);
        break;
      case AddrMode::WordDispDef:
        body = fmt("@W^%d(%s)", sext(extra, 16), regNames[sb.reg]);
        break;
      case AddrMode::LongDisp:
        body = fmt("L^%d(%s)", static_cast<int32_t>(extra),
                   regNames[sb.reg]);
        break;
      case AddrMode::LongDispDef:
        body = fmt("@L^%d(%s)", static_cast<int32_t>(extra),
                   regNames[sb.reg]);
        break;
      default:
        body = "?";
        break;
    }
    return body + prefix;
}

} // anonymous namespace

DisasmResult
disassemble(VirtAddr addr, const ByteReader &read)
{
    DisasmResult out;
    VirtAddr start = addr;
    uint8_t opc = read(addr++);
    const OpcodeInfo &info = opcodeInfo(opc);
    if (!info.valid) {
        out.text = fmt(".byte %#x", opc);
        out.length = 1;
        return out;
    }
    out.valid = true;
    out.text = info.mnemonic;
    for (unsigned i = 0; i < info.numOperands; ++i) {
        const OperandDef &od = info.operands[i];
        out.text += i == 0 ? " " : ", ";
        if (od.access == Access::Branch) {
            unsigned n = dataTypeBytes(od.type);
            uint32_t raw = readN(addr, n, read);
            addr += n;
            int32_t d = sext(raw, 8 * n);
            out.text += fmt("%#x", addr + d);
        } else {
            out.text += renderSpecifier(addr, od.type, read);
        }
    }
    out.length = addr - start;
    return out;
}

} // namespace vax
