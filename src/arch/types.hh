/**
 * @file
 * Fundamental VAX architecture types shared across the simulator.
 */

#ifndef UPC780_ARCH_TYPES_HH
#define UPC780_ARCH_TYPES_HH

#include <cstdint>

namespace vax
{

/** 32-bit virtual address. */
using VirtAddr = uint32_t;
/** Physical address (11/780 supported up to 2^30 bytes; we use 32 bits). */
using PhysAddr = uint32_t;

/** VAX page size: 512 bytes. */
constexpr uint32_t pageBytes = 512;
constexpr uint32_t pageShift = 9;

/** General register numbers with architectural roles. */
enum Reg : uint8_t {
    R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11,
    AP = 12,   ///< argument pointer
    FP = 13,   ///< frame pointer
    SP = 14,   ///< stack pointer
    PC = 15,   ///< program counter
    NumGpr = 16,
};

/** Scalar operand data types. */
enum class DataType : uint8_t {
    Byte,     ///< 8 bits
    Word,     ///< 16 bits
    Long,     ///< 32 bits
    Quad,     ///< 64 bits
    FFloat,   ///< VAX F_floating (32 bits)
};

/** Size in bytes of a scalar data type. */
constexpr unsigned
dataTypeBytes(DataType t)
{
    switch (t) {
      case DataType::Byte:   return 1;
      case DataType::Word:   return 2;
      case DataType::Long:   return 4;
      case DataType::Quad:   return 8;
      case DataType::FFloat: return 4;
    }
    return 4;
}

/** How an instruction accesses one of its operands. */
enum class Access : uint8_t {
    Read,     ///< operand is read
    Write,    ///< operand is written
    Modify,   ///< operand is read then written
    Address,  ///< address of operand is computed, no data access
    Field,    ///< variable-bit-field base (address-like, register ok)
    Branch,   ///< branch displacement in the I-stream (not a specifier)
};

/** Instruction groups of the paper's Table 1. */
enum class Group : uint8_t {
    Simple,     ///< moves, simple arith/boolean, branches, subroutine
    Field,      ///< bit-field ops and bit branches
    Float,      ///< floating point and integer multiply/divide
    CallRet,    ///< procedure call/return, multi-register push/pop
    System,     ///< privileged, context switch, services, queues, probes
    Character,  ///< character string instructions
    Decimal,    ///< packed decimal instructions
    NumGroups,
};

/** Printable name of an instruction group. */
const char *groupName(Group g);

/** PC-changing instruction classes of the paper's Table 2. */
enum class PcChangeKind : uint8_t {
    None,         ///< not a PC-changing instruction
    SimpleCond,   ///< simple conditional branches plus BRB/BRW (shared
                  ///< microcode, as in the paper)
    LoopBranch,   ///< SOBxxx/AOBxxx/ACBx
    LowBitTest,   ///< BLBS/BLBC
    SubrCallRet,  ///< BSBB/BSBW/JSB/RSB
    Uncond,       ///< JMP
    CaseBranch,   ///< CASEB/W/L
    BitBranch,    ///< BBS/BBC and set/clear variants (FIELD group)
    ProcCallRet,  ///< CALLG/CALLS/RET (CALL/RET group)
    SystemBr,     ///< REI, CHMx (SYSTEM group)
    NumKinds,
};

/** Printable name of a Table 2 class. */
const char *pcChangeKindName(PcChangeKind k);

/** Processor access modes (PSL current-mode values). */
enum class CpuMode : uint8_t {
    Kernel = 0,
    Executive = 1,
    Supervisor = 2,
    User = 3,
};

/** Condition codes held in the PSL low bits. */
struct CondCodes
{
    bool n = false; ///< negative
    bool z = false; ///< zero
    bool v = false; ///< overflow
    bool c = false; ///< carry
};

} // namespace vax

#endif // UPC780_ARCH_TYPES_HH
