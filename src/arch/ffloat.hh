/**
 * @file
 * VAX F_floating conversion helpers.
 *
 * F_floating is a 32-bit format with a sign bit, an 8-bit excess-128
 * exponent and a 23-bit fraction with a hidden leading bit, laid out
 * word-swapped relative to the natural little-endian longword:
 * as fetched into a register, the sign is bit 15, the exponent bits
 * 14:7, and the fraction bits 6:0 (high part) and 31:16 (low part).
 */

#ifndef UPC780_ARCH_FFLOAT_HH
#define UPC780_ARCH_FFLOAT_HH

#include <cstdint>

namespace vax
{

/** Convert an F_floating bit pattern to a host double. */
double fToDouble(uint32_t f);

/**
 * Convert a host double to the nearest F_floating bit pattern.
 *
 * Values too large to represent saturate at the largest finite
 * F_floating magnitude; values too small flush to zero (true zero
 * in F_floating has a zero sign and exponent).
 */
uint32_t doubleToF(double d);

/** True if the pattern is a reserved operand (sign set, exponent 0). */
bool fIsReserved(uint32_t f);

} // namespace vax

#endif // UPC780_ARCH_FFLOAT_HH
