/**
 * @file
 * The VMS-lite system-call and device ABI shared by the kernel
 * builder, the workload generator and the RTE.
 */

#ifndef UPC780_OS_ABI_HH
#define UPC780_OS_ABI_HH

#include <cstdint>

namespace vax
{
namespace abi
{

/** CHMK system-service codes (dispatch by CASEL in the kernel). */
constexpr uint32_t sysExit = 0;     ///< restart the process image
constexpr uint32_t sysWaitTerm = 1; ///< block until terminal input
constexpr uint32_t sysPuts = 2;     ///< write string (R1=buf, R2=len)
constexpr uint32_t sysGets = 3;     ///< read canned line into (R1)
constexpr uint32_t sysGetTime = 4;  ///< R0 = tick count
constexpr uint32_t sysDiskRead = 5; ///< block until a disk transfer

/** Interrupt levels used by the machine configuration. */
constexpr unsigned iplTimer = 22;
constexpr unsigned iplTerminal = 21;
constexpr unsigned iplDisk = 20;
constexpr unsigned iplResched = 3;  ///< software, requested via SIRR
constexpr unsigned iplFork = 2;     ///< software fork-level work

/** SCB vector index for machine checks (levels use 0-31, CHMK 32). */
constexpr unsigned vecMachineCheck = 33;

/** Bytes copied by sysGets. */
constexpr uint32_t getsLineBytes = 16;

/** Process states in the kernel process table. */
constexpr uint32_t stateRunnable = 0;
constexpr uint32_t stateWaiting = 1;
constexpr uint32_t stateNull = 2;
constexpr uint32_t stateWaitingDisk = 3;

/** Process-table entry layout (32 bytes). */
constexpr uint32_t ptQnode = 0;   ///< queue node (flink, blink)
constexpr uint32_t ptPcb = 8;     ///< PCB physical address
constexpr uint32_t ptState = 12;
constexpr uint32_t ptTermId = 16;
constexpr uint32_t ptEntry = 20;  ///< user entry point (restart)
constexpr uint32_t ptStride = 32;

/** Device mailbox (physical memory, written by the host side):
 *  +0 head (host), +4 tail (kernel), +8.. 64 ring entries of 8 bytes
 *  {id, kind}.  Kind 0 = terminal line (id = terminal), kind 1 =
 *  disk completion (id = process index). */
constexpr uint32_t mbxHead = 0;
constexpr uint32_t mbxTail = 4;
constexpr uint32_t mbxRing = 8;
constexpr uint32_t mbxEntries = 64;
constexpr uint32_t mbxEntryBytes = 8;
constexpr uint32_t mbxKindTerminal = 0;
constexpr uint32_t mbxKindDisk = 1;

} // namespace abi
} // namespace vax

#endif // UPC780_OS_ABI_HH
