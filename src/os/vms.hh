/**
 * @file
 * VMS-lite: the timesharing operating system the workloads run under.
 *
 * Built entirely as VAX machine code through the assembler, it
 * provides what the paper's measurements depend on: an interval-clock
 * driven round-robin scheduler using SVPCTX/LDPCTX (context-switch
 * headway), hardware terminal interrupts fed by the RTE and software
 * rescheduling interrupts (interrupt headways), CHMK system services
 * (kernel-mode instruction mix), and a Null process during which the
 * UPC monitor is gated off, as in the paper.
 */

#ifndef UPC780_OS_VMS_HH
#define UPC780_OS_VMS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "os/abi.hh"
#include "upc/monitor.hh"

namespace vax
{

namespace snap { class Serializer; class Deserializer; }

/** A user program image to load as a process (P0 space, base 0). */
struct UserProgram
{
    std::vector<uint8_t> image; ///< loaded at P0 virtual address 0
    VirtAddr entry = 0;
    unsigned terminalId = 0;
};

struct VmsConfig
{
    uint32_t quantumTicks = 4;           ///< timer ticks per quantum
    uint32_t timerIntervalCycles = 20000;
    uint32_t userP0Pages = 256;          ///< 128 KB of P0 per process
};

class VmsLite
{
  public:
    VmsLite(Cpu780 &cpu, UpcMonitor &monitor,
            const VmsConfig &cfg = VmsConfig());

    /** Register a process before boot. */
    void addProcess(const UserProgram &prog);

    /**
     * Build the kernel, page tables, PCBs and process images; preset
     * the console-loaded processor registers; point the CPU at the
     * boot sequence.  Call run() on the CPU afterwards.
     */
    void boot();

    /** Inject a terminal event (one input line) from the RTE. */
    void postTerminalLine(unsigned terminal_id);

    /** Inject a disk-transfer completion for a process. */
    void postDiskCompletion(unsigned process_index);

    /** Callback fired when the kernel starts a disk transfer; the
     *  argument is the requesting process index.  The host schedules
     *  postDiskCompletion() after a device latency. */
    void
    onDiskRequest(std::function<void(uint32_t)> fn)
    {
        diskFn_ = std::move(fn);
    }

    /** Set a callback fired when the kernel writes terminal output. */
    void
    onTerminalOutput(std::function<void(uint32_t)> fn)
    {
        outputFn_ = std::move(fn);
    }

    /** Kernel tick counter (read from guest memory). */
    uint64_t ticks() const;

    /** Machine checks serviced by the guest handler (from guest
     *  memory; nonzero only under fault injection). */
    uint64_t machineChecks() const;

    /** Register kernel-visible quantities (ticks, process count)
     *  under prefix. */
    void regStats(stats::Registry &r, const std::string &prefix) const;

    /** Physical address of the UPC monitor CSR (Unibus window). */
    PhysAddr monitorCsrPa() const { return mmioPa_; }

    unsigned numProcesses() const
    {
        return static_cast<unsigned>(programs_.size());
    }

    /** Physical address of process p's P0 image (for host checks). */
    PhysAddr processImagePa(unsigned p) const;

    /** @{ Checkpoint/restore.  All kernel state lives in guest
     *  physical memory (saved with the machine); the host side is a
     *  deterministic function of boot(), so this records only a
     *  layout fingerprint and verifies it on restore -- a snapshot
     *  taken under one kernel build cannot be resumed under another. */
    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
    /** @} */

  private:
    void buildKernel();
    void buildTables();
    void postMailbox(uint32_t id, uint32_t kind, unsigned ipl);

    Cpu780 &cpu_;
    UpcMonitor &monitor_;
    VmsConfig cfg_;
    std::vector<UserProgram> programs_;
    std::function<void(uint32_t)> outputFn_;
    std::function<void(uint32_t)> diskFn_;
    bool booted_ = false;

    // Physical layout (computed in boot()).
    PhysAddr scbPa_ = 0x200;
    PhysAddr pcbBasePa_ = 0x400;
    PhysAddr sptPa_ = 0x10000;
    PhysAddr kstackBasePa_ = 0x20000;
    PhysAddr mmioPa_ = 0x58000;
    PhysAddr mbxPa_ = 0x58100;
    PhysAddr kernelPa_ = 0x60000;
    PhysAddr arenaBasePa_ = 0x100000;

    uint32_t kstackBytes_ = 0x1000;
    VirtAddr kernelVa_ = 0;
    VirtAddr bootVa_ = 0;
    PhysAddr ticksPa_ = 0;
    PhysAddr mchecksPa_ = 0;
};

} // namespace vax

#endif // UPC780_OS_VMS_HH
