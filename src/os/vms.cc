#include "os/vms.hh"

#include "arch/assembler.hh"
#include "cpu/pregs.hh"
#include "mem/page_table.hh"
#include "support/bitutil.hh"
#include "support/logging.hh"
#include "support/snapshot.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace vax
{

namespace
{

constexpr uint32_t pcbStride = 128;
// PCB field offsets (must match the SVPCTX/LDPCTX microcode).
constexpr uint32_t pcbKsp = 0;
constexpr uint32_t pcbUsp = 4;
constexpr uint32_t pcbPc = 64;
constexpr uint32_t pcbPsl = 68;
constexpr uint32_t pcbP0br = 72;
constexpr uint32_t pcbP0lr = 76;

constexpr uint32_t userPslPacked = (3u << 24) | (3u << 22); // user/user

VirtAddr
sysva(PhysAddr pa)
{
    return systemBase + pa;
}

} // anonymous namespace

VmsLite::VmsLite(Cpu780 &cpu, UpcMonitor &monitor, const VmsConfig &cfg)
    : cpu_(cpu), monitor_(monitor), cfg_(cfg)
{
}

void
VmsLite::addProcess(const UserProgram &prog)
{
    upc_assert(!booted_);
    if (prog.image.size() >
        static_cast<size_t>(cfg_.userP0Pages) * pageBytes) {
        fatal("process image (%zu bytes) exceeds its P0 region",
              prog.image.size());
    }
    programs_.push_back(prog);
}

void
VmsLite::regStats(stats::Registry &r, const std::string &prefix) const
{
    const VmsLite *os = this;
    r.addScalar(prefix + ".ticks", "kernel interval-clock ticks",
                [os] { return os->ticks(); });
    r.addScalar(prefix + ".processes",
                "user processes registered at boot",
                [os] { return uint64_t(os->numProcesses()); });
}

uint64_t
VmsLite::ticks() const
{
    // The tick counter is the third kernel data longword (see the
    // data section layout in buildKernel); its address is recorded
    // during the build.
    return cpu_.mem().phys().read(ticksPa_, 4);
}

uint64_t
VmsLite::machineChecks() const
{
    return mchecksPa_ ? cpu_.mem().phys().read(mchecksPa_, 4) : 0;
}

void
VmsLite::postMailbox(uint32_t id, uint32_t kind, unsigned ipl)
{
    auto &phys = cpu_.mem().phys();
    uint32_t head = phys.read(mbxPa_ + abi::mbxHead, 4);
    uint32_t tail = phys.read(mbxPa_ + abi::mbxTail, 4);
    if (head - tail >= abi::mbxEntries) {
        // Ring full: the device silo overflows, event lost.
        TRACE(Os, "mailbox overflow id=%u kind=%u", id, kind);
        return;
    }
    TRACE(Os, "mailbox post id=%u kind=%u ipl=%u", id, kind, ipl);
    uint32_t idx = head % abi::mbxEntries;
    phys.write(mbxPa_ + abi::mbxRing + abi::mbxEntryBytes * idx, id,
               4);
    phys.write(mbxPa_ + abi::mbxRing + abi::mbxEntryBytes * idx + 4,
               kind, 4);
    phys.write(mbxPa_ + abi::mbxHead, head + 1, 4);
    cpu_.postDeviceInterrupt(ipl);
}

void
VmsLite::postTerminalLine(unsigned terminal_id)
{
    postMailbox(terminal_id, abi::mbxKindTerminal, abi::iplTerminal);
}

void
VmsLite::postDiskCompletion(unsigned process_index)
{
    postMailbox(process_index, abi::mbxKindDisk, abi::iplDisk);
}

PhysAddr
VmsLite::processImagePa(unsigned p) const
{
    uint32_t ptable_bytes = 4 * cfg_.userP0Pages;
    uint32_t arena_stride = alignUp(ptable_bytes, pageBytes) +
        cfg_.userP0Pages * pageBytes;
    return arenaBasePa_ + p * arena_stride +
        alignUp(ptable_bytes, pageBytes);
}

void
VmsLite::boot()
{
    upc_assert(!booted_);
    booted_ = true;
    if (programs_.empty())
        fatal("VMS-lite: no processes registered before boot");

    TRACE(Os, "boot: %u processes, quantum=%u ticks",
          numProcesses(), cfg_.quantumTicks);
    kernelVa_ = sysva(kernelPa_);
    buildTables();
    buildKernel();

    // Unibus device window: monitor CSR at +0, terminal-output notify
    // at +4.
    auto *mon = &monitor_;
    PhysAddr base = mmioPa_;
    auto *self = this;
    cpu_.mem().addIoWriteHook(
        mmioPa_, mmioPa_ + 11,
        [mon, base, self](PhysAddr pa, uint32_t value) {
            if (pa == base)
                mon->unibusWrite(value);
            else if (pa == base + 4 && self->outputFn_)
                self->outputFn_(value);
            else if (pa == base + 8 && self->diskFn_)
                self->diskFn_(value);
        });

    // Console-loaded processor state.
    cpu_.reset(bootVa_, CpuMode::Kernel);
    Ebox &e = cpu_.ebox();
    e.setPrRaw(pr::SBR, sptPa_);
    e.setPrRaw(pr::SLR, cpu_.mem().config().memBytes / pageBytes);
    e.setPrRaw(pr::SCBB, scbPa_);
    // Boot uses the Null process's kernel stack.
    unsigned null_index = numProcesses();
    e.setGpr(SP, sysva(kstackBasePa_ +
                       (null_index + 1) * kstackBytes_));
}

void
VmsLite::buildTables()
{
    auto &phys = cpu_.mem().phys();
    unsigned nproc = numProcesses();

    // System page table: linear map of all physical memory,
    // kernel-only.
    uint32_t spt_entries = cpu_.mem().config().memBytes / pageBytes;
    if (sptPa_ + 4 * spt_entries > kstackBasePa_)
        fatal("VMS-lite: system page table overflows its region");
    for (uint32_t i = 0; i < spt_entries; ++i)
        phys.write(sptPa_ + 4 * i, pte::make(i, false, false), 4);

    // Kernel stacks.
    uint32_t kstack_end = kstackBasePa_ + (nproc + 1) * kstackBytes_;
    if (kstack_end > mmioPa_)
        fatal("VMS-lite: too many processes for the kernel stacks");

    // Per-process arenas: P0 page table followed by the P0 image.
    uint32_t ptable_bytes = 4 * cfg_.userP0Pages;
    uint32_t arena_stride =
        alignUp(ptable_bytes, pageBytes) +
        cfg_.userP0Pages * pageBytes;
    if (arenaBasePa_ + nproc * arena_stride >
        cpu_.mem().config().memBytes) {
        fatal("VMS-lite: %u processes do not fit in physical memory",
              nproc);
    }

    for (unsigned p = 0; p < nproc; ++p) {
        PhysAddr arena = arenaBasePa_ + p * arena_stride;
        PhysAddr ptable = arena;
        PhysAddr image = arena + alignUp(ptable_bytes, pageBytes);
        // P0 PTEs: user read/write.
        for (uint32_t j = 0; j < cfg_.userP0Pages; ++j) {
            uint32_t pfn = (image >> pageShift) + j;
            phys.write(ptable + 4 * j, pte::make(pfn, true, true), 4);
        }
        phys.load(image, programs_[p].image);

        // PCB.
        PhysAddr pcb = pcbBasePa_ + p * pcbStride;
        for (uint32_t off = 0; off < pcbStride; off += 4)
            phys.write(pcb + off, 0, 4);
        phys.write(pcb + pcbKsp,
                   sysva(kstackBasePa_ + (p + 1) * kstackBytes_), 4);
        phys.write(pcb + pcbUsp,
                   cfg_.userP0Pages * pageBytes, 4); // top of P0
        phys.write(pcb + pcbPc, programs_[p].entry, 4);
        phys.write(pcb + pcbPsl, userPslPacked, 4);
        phys.write(pcb + pcbP0br, sysva(ptable), 4);
        phys.write(pcb + pcbP0lr, cfg_.userP0Pages, 4);
    }

    // Null process PCB (kernel mode, no P0).
    PhysAddr null_pcb = pcbBasePa_ + nproc * pcbStride;
    for (uint32_t off = 0; off < pcbStride; off += 4)
        phys.write(null_pcb + off, 0, 4);
    phys.write(null_pcb + pcbKsp,
               sysva(kstackBasePa_ + (nproc + 1) * kstackBytes_), 4);
    // PC and PSL are patched in buildKernel once the label is known.
}

void
VmsLite::buildKernel()
{
    using Op = Operand;
    auto &phys = cpu_.mem().phys();
    unsigned nproc = numProcesses();
    PhysAddr null_pcb = pcbBasePa_ + nproc * pcbStride;

    VirtAddr csr = sysva(mmioPa_);
    VirtAddr notify = sysva(mmioPa_ + 4);
    VirtAddr diskreq = sysva(mmioPa_ + 8);
    VirtAddr mbx_head = sysva(mbxPa_ + abi::mbxHead);
    VirtAddr mbx_tail = sysva(mbxPa_ + abi::mbxTail);
    VirtAddr mbx_ring = sysva(mbxPa_ + abi::mbxRing);

    Assembler a(kernelVa_);

    // ================= boot =================
    a.label("boot");
    a.instr(op::MOVL, {Op::immAddr("runq_f"), Op::rel("runq_f")});
    a.instr(op::MOVL, {Op::immAddr("runq_f"), Op::rel("runq_b")});
    a.instr(op::MOVL, {Op::immAddr("proctab"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(nproc), Op::reg(R2)});
    a.label("boot_q");
    a.instr(op::INSQUE, {Op::regDef(R1), Op::relDef("runq_b")});
    a.instr(op::ADDL2, {Op::imm(abi::ptStride), Op::reg(R1)});
    a.instr(op::SOBGTR, {Op::reg(R2), Op::branch("boot_q")});
    a.instr(op::MOVL,
            {Op::imm(cfg_.quantumTicks), Op::rel("quantum")});
    a.instr(op::MTPR,
            {Op::imm(cfg_.timerIntervalCycles), Op::imm(pr::NICR)});
    a.instr(op::MTPR, {Op::imm(0x41), Op::imm(pr::ICCS)});
    a.instr(op::REMQUE, {Op::relDef("runq_f"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::reg(R1), Op::rel("curproc")});
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStart), Op::absolute(csr)});
    a.instr(op::MTPR,
            {Op::disp(abi::ptPcb, R1), Op::imm(pr::PCBB)});
    a.instr(op::LDPCTX);
    a.instr(op::REI);

    // ================= interval-clock ISR =================
    a.label("timer_isr");
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStart), Op::absolute(csr)});
    a.instr(op::INCL, {Op::rel("ticks")});
    // Queue fork-level processing on alternate ticks, as VMS's clock
    // service drained its fork queues.
    a.instr(op::BLBC, {Op::rel("ticks"), Op::branch("timer_nofork")});
    a.instr(op::MTPR, {Op::imm(abi::iplFork), Op::imm(pr::SIRR)});
    a.label("timer_nofork");
    a.instr(op::DECL, {Op::rel("quantum")});
    a.instr(op::BGTR, {Op::branch("timer_done")});
    a.instr(op::MOVL,
            {Op::imm(cfg_.quantumTicks), Op::rel("quantum")});
    a.instr(op::MTPR,
            {Op::imm(abi::iplResched), Op::imm(pr::SIRR)});
    a.label("timer_done");
    a.instr(op::CMPL,
            {Op::rel("curproc"), Op::immAddr("null_entry")});
    a.instr(op::BNEQ, {Op::branch("timer_rei")});
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStop), Op::absolute(csr)});
    a.label("timer_rei");
    a.instr(op::REI);

    // ================= terminal ISR =================
    a.label("term_isr");
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStart), Op::absolute(csr)});
    a.instr(op::PUSHR, {Op::imm(0x7C)}); // save R2-R6
    a.label("term_loop");
    a.instr(op::CMPL,
            {Op::absolute(mbx_head), Op::absolute(mbx_tail)});
    a.instr(op::BEQL, {Op::branch("term_done")});
    a.instr(op::MOVL, {Op::absolute(mbx_tail), Op::reg(R2)});
    a.instr(op::BICL3, {Op::imm(~uint32_t(abi::mbxEntries - 1)),
                        Op::reg(R2), Op::reg(R3)});
    a.instr(op::ASHL, {Op::lit(3), Op::reg(R3), Op::reg(R3)});
    a.instr(op::ADDL2, {Op::imm(mbx_ring), Op::reg(R3)});
    a.instr(op::MOVL, {Op::regDef(R3), Op::reg(R4)});
    // Disk completions name the process directly.
    a.instr(op::TSTL, {Op::disp(4, R3)});
    a.instr(op::BEQL, {Op::branch("term_lookup")});
    a.instr(op::ASHL, {Op::imm(5), Op::reg(R4), Op::reg(R5)});
    a.instr(op::ADDL2, {Op::immAddr("proctab"), Op::reg(R5)});
    a.instr(op::BRB, {Op::branch("term_found")});
    a.label("term_lookup");
    // Find the process attached to this terminal.
    a.instr(op::MOVL, {Op::immAddr("proctab"), Op::reg(R5)});
    a.instr(op::MOVL, {Op::imm(nproc), Op::reg(R6)});
    a.label("term_scan");
    a.instr(op::CMPL, {Op::disp(abi::ptTermId, R5), Op::reg(R4)});
    a.instr(op::BEQL, {Op::branch("term_found")});
    a.instr(op::ADDL2, {Op::imm(abi::ptStride), Op::reg(R5)});
    a.instr(op::SOBGTR, {Op::reg(R6), Op::branch("term_scan")});
    a.instr(op::BRB, {Op::branch("term_consume")});
    a.label("term_found");
    a.instr(op::TSTL, {Op::disp(abi::ptState, R5)});
    a.instr(op::BEQL, {Op::branch("term_consume")});
    a.instr(op::CLRL, {Op::disp(abi::ptState, R5)});
    a.instr(op::INSQUE, {Op::regDef(R5), Op::relDef("runq_b")});
    a.instr(op::MTPR,
            {Op::imm(abi::iplResched), Op::imm(pr::SIRR)});
    a.label("term_consume");
    a.instr(op::INCL, {Op::absolute(mbx_tail)});
    a.instr(op::BRW, {Op::branch("term_loop")});
    a.label("term_done");
    a.instr(op::POPR, {Op::imm(0x7C)});
    a.instr(op::CMPL,
            {Op::rel("curproc"), Op::immAddr("null_entry")});
    a.instr(op::BNEQ, {Op::branch("term_rei")});
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStop), Op::absolute(csr)});
    a.label("term_rei");
    a.instr(op::REI);

    // ================= fork-level processing ====================
    a.label("fork_isr");
    a.instr(op::INCL, {Op::rel("forks")});
    a.instr(op::REI);

    // ================= reschedule (software interrupt) ===========
    a.label("resched_isr");
    a.instr(op::SVPCTX);
    a.instr(op::MOVL, {Op::rel("curproc"), Op::reg(R1)});
    a.instr(op::TSTL, {Op::disp(abi::ptState, R1)});
    a.instr(op::BNEQ, {Op::branch("res_pick")});
    a.instr(op::INSQUE, {Op::regDef(R1), Op::relDef("runq_b")});
    a.label("res_pick");
    a.instr(op::CMPL, {Op::rel("runq_f"), Op::immAddr("runq_f")});
    a.instr(op::BEQL, {Op::branch("res_null")});
    a.instr(op::REMQUE, {Op::relDef("runq_f"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::reg(R1), Op::rel("curproc")});
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStart), Op::absolute(csr)});
    a.instr(op::MTPR,
            {Op::disp(abi::ptPcb, R1), Op::imm(pr::PCBB)});
    a.instr(op::LDPCTX);
    a.instr(op::REI);
    a.label("res_null");
    a.instr(op::MOVL, {Op::immAddr("null_entry"), Op::rel("curproc")});
    a.instr(op::MOVL,
            {Op::imm(UpcMonitor::cmdStop), Op::absolute(csr)});
    a.instr(op::MTPR, {Op::imm(null_pcb), Op::imm(pr::PCBB)});
    a.instr(op::LDPCTX);
    a.instr(op::REI);

    // ================= CHMK service dispatcher =================
    a.label("chmk_handler");
    a.instr(op::MOVL, {Op::autoInc(SP), Op::reg(R0)}); // service code
    a.instr(op::CASEL, {Op::reg(R0), Op::lit(0), Op::lit(5)});
    a.caseTable({"svc_exit", "svc_wait", "svc_puts", "svc_gets",
                 "svc_time", "svc_disk"});
    a.instr(op::REI); // unknown service: ignore

    a.label("svc_exit");
    // Restart the process image: rewrite the saved PC.
    a.instr(op::MOVL, {Op::rel("curproc"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::disp(abi::ptEntry, R1), Op::reg(R2)});
    a.instr(op::MOVL, {Op::reg(R2), Op::regDef(SP)});
    a.instr(op::REI);

    a.label("svc_wait");
    a.instr(op::MOVL, {Op::rel("curproc"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(abi::stateWaiting),
                       Op::disp(abi::ptState, R1)});
    a.instr(op::MTPR,
            {Op::imm(abi::iplResched), Op::imm(pr::SIRR)});
    a.instr(op::REI);

    a.label("svc_puts");
    // R1 = user buffer, R2 = length (clamped to the staging buffer).
    a.instr(op::CMPL, {Op::reg(R2), Op::imm(64)});
    a.instr(op::BLEQ, {Op::branch("puts_ok")});
    a.instr(op::MOVL, {Op::imm(64), Op::reg(R2)});
    a.label("puts_ok");
    a.instr(op::PUSHL, {Op::reg(R2)});
    a.instr(op::MOVC3, {Op::reg(R2), Op::regDef(R1),
                        Op::rel("staging")});
    a.instr(op::MOVL, {Op::autoInc(SP), Op::reg(R2)});
    a.instr(op::LOCC, {Op::lit(36), Op::reg(R2), Op::rel("staging")});
    a.instr(op::MOVL, {Op::reg(R0), Op::absolute(notify)});
    a.instr(op::REI);

    a.label("svc_gets");
    a.instr(op::MOVC3, {Op::imm(abi::getsLineBytes),
                        Op::rel("canned"), Op::regDef(R1)});
    a.instr(op::MOVL, {Op::imm(abi::getsLineBytes), Op::reg(R0)});
    a.instr(op::REI);

    a.label("svc_time");
    a.instr(op::MOVL, {Op::rel("ticks"), Op::reg(R0)});
    a.instr(op::REI);

    // Start a disk transfer: mark the process disk-waiting, tell the
    // controller which process asked (its table index), and yield.
    a.label("svc_disk");
    a.instr(op::MOVL, {Op::rel("curproc"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(abi::stateWaitingDisk),
                       Op::disp(abi::ptState, R1)});
    a.instr(op::SUBL3, {Op::immAddr("proctab"), Op::reg(R1),
                        Op::reg(R2)});
    a.instr(op::ASHL, {Op::imm(-5), Op::reg(R2), Op::reg(R2)});
    a.instr(op::MOVL, {Op::reg(R2), Op::absolute(diskreq)});
    a.instr(op::MTPR,
            {Op::imm(abi::iplResched), Op::imm(pr::SIRR)});
    a.instr(op::REI);

    // ================= Null process =================
    a.label("null_proc");
    a.instr(op::BRB, {Op::branch("null_proc")});

    // ================= kernel data =================
    a.align(4);
    a.label("runq_f");
    a.lword(0);
    a.label("runq_b");
    a.lword(0);
    a.label("curproc");
    a.lword(0);
    a.label("ticks");
    a.lword(0);
    a.label("quantum");
    a.lword(cfg_.quantumTicks);
    a.label("forks");
    a.lword(0);
    a.label("proctab");
    for (unsigned p = 0; p < nproc; ++p) {
        a.lword(0); // queue flink
        a.lword(0); // queue blink
        a.lword(pcbBasePa_ + p * pcbStride);
        a.lword(abi::stateRunnable);
        a.lword(programs_[p].terminalId);
        a.lword(programs_[p].entry);
        a.lword(0);
        a.lword(0);
    }
    a.label("null_entry");
    a.lword(0);
    a.lword(0);
    a.lword(null_pcb);
    a.lword(abi::stateNull);
    a.lword(0xFFFFFFFF);
    a.lword(0);
    a.lword(0);
    a.lword(0);
    a.label("canned");
    a.ascii("run analysis 7\r\n"); // abi::getsLineBytes bytes
    a.label("staging");
    a.space(80);

    // ================= machine-check handler ====================
    // Deliberately last: with fault injection off this code is never
    // reached, and keeping it past every pre-existing label leaves
    // the fault-free image layout -- and so the fault-free cache/TB
    // reference stream -- untouched.
    //
    // The MCHK microcode pushes (cause, PC, PSL); pop the cause into
    // kernel data, count the check, and resume the interrupted
    // instruction stream -- the hardware layer has already recovered
    // (line invalidated / entry dropped / fill retried).
    a.label("mcheck_isr");
    a.instr(op::MOVL, {Op::autoInc(SP), Op::rel("mcheck_last")});
    a.instr(op::INCL, {Op::rel("mchecks")});
    a.instr(op::REI);
    a.label("mchecks");
    a.lword(0);
    a.label("mcheck_last");
    a.lword(0);

    bootVa_ = a.addrOf("boot");
    ticksPa_ = kernelPa_ + (a.addrOf("ticks") - kernelVa_);
    mchecksPa_ = kernelPa_ + (a.addrOf("mchecks") - kernelVa_);

    // Patch the Null PCB now that the label exists.
    phys.write(null_pcb + pcbPc, a.addrOf("null_proc"), 4);
    phys.write(null_pcb + pcbPsl, 0, 4); // kernel, IPL 0

    // SCB vectors.
    phys.write(scbPa_ + 4 * abi::iplTimer, a.addrOf("timer_isr"), 4);
    phys.write(scbPa_ + 4 * abi::iplTerminal, a.addrOf("term_isr"), 4);
    phys.write(scbPa_ + 4 * abi::iplDisk, a.addrOf("term_isr"), 4);
    phys.write(scbPa_ + 4 * abi::iplResched,
               a.addrOf("resched_isr"), 4);
    phys.write(scbPa_ + 4 * abi::iplFork, a.addrOf("fork_isr"), 4);
    phys.write(scbPa_ + 4 * 32, a.addrOf("chmk_handler"), 4);
    phys.write(scbPa_ + 4 * abi::vecMachineCheck,
               a.addrOf("mcheck_isr"), 4);

    auto image = a.finish();
    if (kernelPa_ + image.size() > arenaBasePa_)
        fatal("VMS-lite: kernel image too large");
    phys.load(kernelPa_, image);
}

void
VmsLite::save(snap::Serializer &s) const
{
    // Everything the kernel mutates lives in guest physical memory,
    // which the machine snapshot carries; the host members here are a
    // deterministic function of boot().  What must be verified is
    // that the restoring harness rebuilt the SAME kernel: layout,
    // scheduler parameters and process population.
    s.beginSection("os");
    s.putBool(booted_);
    s.putU32(cfg_.quantumTicks);
    s.putU32(cfg_.timerIntervalCycles);
    s.putU32(cfg_.userP0Pages);
    s.putU32(static_cast<uint32_t>(programs_.size()));
    s.putU32(kernelPa_);
    s.putU32(kernelVa_);
    s.putU32(bootVa_);
    s.putU32(ticksPa_);
    s.putU32(mchecksPa_);
    s.putU32(mmioPa_);
    s.putU32(mbxPa_);
    s.endSection();
}

void
VmsLite::restore(snap::Deserializer &d)
{
    d.beginSection("os");
    bool wasBooted = d.getBool();
    if (wasBooted != booted_)
        throw snap::SnapshotError(
            "snapshot: OS boot state differs (restore into a machine "
            "prepared the same way as the saved one)");
    d.expectU32(cfg_.quantumTicks, "scheduler quantum");
    d.expectU32(cfg_.timerIntervalCycles, "timer interval");
    d.expectU32(cfg_.userP0Pages, "user P0 pages");
    d.expectU32(static_cast<uint32_t>(programs_.size()),
                "process count");
    d.expectU32(kernelPa_, "kernel PA");
    d.expectU32(kernelVa_, "kernel VA");
    d.expectU32(bootVa_, "boot VA");
    d.expectU32(ticksPa_, "ticks PA");
    d.expectU32(mchecksPa_, "mchecks PA");
    d.expectU32(mmioPa_, "monitor CSR PA");
    d.expectU32(mbxPa_, "mailbox PA");
    d.endSection();
}

} // namespace vax
