#include "analysis/ujson.hh"

#include <cstdarg>
#include <cstdio>

namespace vax
{
namespace ujson
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
appendf(std::string *out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    *out += buf;
}

} // namespace ujson
} // namespace vax
