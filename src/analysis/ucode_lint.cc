/**
 * @file
 * ucode_lint: lint the production microcode ROM from the command line.
 *
 *   ucode_lint          text diagnostics, exit 1 when any are found
 *   ucode_lint --json   machine-readable report on stdout
 *
 * The same verifier runs as a ctest entry and (in strict mode) at
 * Cpu780 construction; this binary is the developer's front door.
 */

#include <cstdio>
#include <cstring>

#include "analysis/ulint.hh"
#include "ucode/rom.hh"

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: %s [--json]\n"
                        "Statically verify the assembled microcode "
                        "ROM; exit 1 on diagnostics.\n",
                        argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         argv[i]);
            return 2;
        }
    }

    vax::ControlStore cs;
    vax::buildMicrocodeRom(cs);
    vax::LintReport rep = vax::lintControlStore(cs);

    if (json) {
        std::fputs(rep.json().c_str(), stdout);
    } else if (rep.clean()) {
        std::printf("ucode_lint: clean: %zu microwords, %zu "
                    "reachable, %zu reserved\n",
                    rep.words, rep.reachable, rep.reserved);
    } else {
        std::fputs(rep.text().c_str(), stdout);
    }
    return rep.clean() ? 0 : 1;
}
