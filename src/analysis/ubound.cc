#include "analysis/ubound.hh"

#include "analysis/ujson.hh"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "support/stats.hh"

namespace vax
{

const char *
uboundCheckName(UBoundCheck c)
{
    switch (c) {
      case UBoundCheck::UnboundedLoop: return "unbounded-loop";
      case UBoundCheck::NoExit:        return "no-exit";
      case UBoundCheck::CallCycle:     return "call-cycle";
      case UBoundCheck::Baseline:      return "baseline";
      default:                         return "?";
    }
}

namespace
{

const char *
specClassName(SpecAccClass c)
{
    switch (c) {
      case SpecAccClass::Read:   return "Read";
      case SpecAccClass::Write:  return "Write";
      case SpecAccClass::Modify: return "Modify";
      case SpecAccClass::Addr:   return "Addr";
      default:                   return "?";
    }
}

/** True when executing this word can leave the flow (exit the path
 *  the bound is being computed over). */
bool
exitsFlow(const UFlow &f)
{
    return f.end || f.stop || f.dispatch || f.spec26 || f.ret ||
        f.trapRet;
}

constexpr uint64_t kNoDist = std::numeric_limits<uint64_t>::max();

} // anonymous namespace

size_t
UBoundReport::countFor(UBoundCheck c) const
{
    size_t k = 0;
    for (const UBoundDiag &d : diags)
        if (d.check == c)
            ++k;
    return k;
}

uint64_t
UBoundAnalysis::wordLoCost(UAddr a) const
{
    (void)a;
    return 1; // stall-free floor: one microcycle per word
}

uint64_t
UBoundAnalysis::wordHiCost(UAddr a, bool allowTrapCeil) const
{
    const UAnnotation &ann = cs_.annotation(a);
    uint64_t stall = 0;
    if (ann.mem == UMemKind::Read)
        stall = params_.readStallCeil;
    else if (ann.mem == UMemKind::Write)
        stall = params_.writeStallCeil;

    uint64_t hi = 1 + stall;
    if (ann.ibRequest)
        hi += params_.ibStallCeil;

    if (allowTrapCeil && ann.mem != UMemKind::None &&
        params_.alignTraps) {
        // Alignment microtrap ceiling: the abort cycle, the service
        // flow (which satisfies the reference itself), the resumed
        // cycle, and a second stall allowance for the service's
        // split accesses already counted in svc.hi -- the re-issued
        // reference's own stall rides on the resume.
        const Range &svc = ann.mem == UMemKind::Read ? alignReadSvc_
                                                     : alignWriteSvc_;
        if (svc.valid)
            hi += 1 + svc.hi + 1 + stall;
    }
    if (allowTrapCeil && !params_.assumeUnmapped &&
        (ann.mem != UMemKind::None || ann.ibRequest)) {
        if (tbMissSvc_.valid)
            hi += 1 + tbMissSvc_.hi + 1 + stall;
    }
    return hi;
}

UBoundAnalysis::Range
UBoundAnalysis::cachedFlow(UAddr entry, const std::string &rootName,
                           bool allowTrapCeil,
                           std::vector<UAddr> &callStack)
{
    auto it = ranges_.find(entry);
    if (it != ranges_.end())
        return it->second;
    if (std::find(callStack.begin(), callStack.end(), entry) !=
        callStack.end()) {
        UBoundDiag d;
        d.check = UBoundCheck::CallCycle;
        d.addr = entry;
        d.where = rootName;
        d.message = "recursive micro-subroutine call chain through "
            "address " + std::to_string(static_cast<unsigned>(entry));
        report_.diags.push_back(std::move(d));
        return Range{};
    }
    callStack.push_back(entry);
    UFlowBound fb;
    Range r = computeFlow(entry, rootName, allowTrapCeil, callStack,
                          &fb);
    callStack.pop_back();
    ranges_.emplace(entry, r);
    return r;
}

UBoundAnalysis::Range
UBoundAnalysis::computeFlow(UAddr entry, const std::string &rootName,
                            bool allowTrapCeil,
                            std::vector<UAddr> &callStack,
                            UFlowBound *fb)
{
    const size_t n = cs_.size();
    fb->entry = entry;
    if (entry == kInvalidUAddr || entry >= n) {
        fb->bounded = false;
        return Range{};
    }

    // ---- Local reachability: fall/branch edges and the fall-through
    // continuation of micro-subroutine calls.  Calls are folded into
    // the call word's cost, not traversed as edges, so a flow's word
    // set is its own routine only.
    std::vector<UAddr> nodes;
    std::vector<int32_t> local(n, -1);
    auto visit = [&](UAddr a) {
        if (a < n && local[a] < 0) {
            local[a] = static_cast<int32_t>(nodes.size());
            nodes.push_back(a);
        }
    };
    visit(entry);
    for (size_t i = 0; i < nodes.size(); ++i) {
        const UAddr a = nodes[i];
        const UFlow &f = cs_.flow(a);
        if (f.fall && a + 1u < n)
            visit(static_cast<UAddr>(a + 1));
        for (ULabel l : f.targets) {
            int32_t b = cs_.labelBinding(l);
            if (b >= 0 && static_cast<size_t>(b) < n)
                visit(static_cast<UAddr>(b));
        }
        for (UAddr t : f.rawTargets)
            visit(t);
        // A call word continues at call-site + 1 once the callee
        // returns (uRet).
        if (!f.calls.empty() && a + 1u < n)
            visit(static_cast<UAddr>(a + 1));
    }
    const size_t m = nodes.size();
    fb->words = static_cast<uint32_t>(m);

    bool bounded = true;

    // ---- Per-word costs (callee ranges folded in) and local edges.
    std::vector<uint64_t> locost(m), hicost(m);
    std::vector<char> isExit(m, 0), selfLoop(m, 0);
    std::vector<std::vector<uint32_t>> succ(m);
    for (size_t i = 0; i < m; ++i) {
        const UAddr a = nodes[i];
        const UFlow &f = cs_.flow(a);
        locost[i] = wordLoCost(a);
        hicost[i] = wordHiCost(a, allowTrapCeil);
        for (ULabel l : f.calls) {
            int32_t b = cs_.labelBinding(l);
            if (b < 0 || static_cast<size_t>(b) >= n)
                continue; // ulint reports dangling labels
            Range c = cachedFlow(static_cast<UAddr>(b), rootName,
                                 allowTrapCeil, callStack);
            if (!c.valid)
                bounded = false;
            locost[i] += c.lo;
            hicost[i] += c.hi;
        }
        if (exitsFlow(f))
            isExit[i] = 1;
        globalReach_[a] = true;

        auto edge = [&](UAddr t) {
            if (t < n && local[t] >= 0) {
                succ[i].push_back(static_cast<uint32_t>(local[t]));
                if (static_cast<size_t>(local[t]) == i)
                    selfLoop[i] = 1;
            }
        };
        if (f.fall && a + 1u < n)
            edge(static_cast<UAddr>(a + 1));
        for (ULabel l : f.targets) {
            int32_t b = cs_.labelBinding(l);
            if (b >= 0 && static_cast<size_t>(b) < n)
                edge(static_cast<UAddr>(b));
        }
        for (UAddr t : f.rawTargets)
            edge(t);
        if (!f.calls.empty() && a + 1u < n)
            edge(static_cast<UAddr>(a + 1));
        std::sort(succ[i].begin(), succ[i].end());
        succ[i].erase(std::unique(succ[i].begin(), succ[i].end()),
                      succ[i].end());
    }

    bool anyExit = false;
    for (size_t i = 0; i < m; ++i)
        anyExit |= isExit[i] != 0;
    if (!anyExit) {
        UBoundDiag d;
        d.check = UBoundCheck::NoExit;
        d.addr = entry;
        d.where = rootName;
        d.message = std::string("no flow-terminating word (end/stop/"
                                "dispatch/ret/trap-ret) is reachable "
                                "from this root; entry word is ") +
            cs_.annotation(entry).name;
        report_.diags.push_back(std::move(d));
        fb->bounded = false;
        fb->lo = fb->hi = 0;
        return Range{};
    }

    // ---- Best case: Dijkstra over node weights (weights differ only
    // where a word folds in a micro-subroutine).
    std::vector<uint64_t> dist(m, kNoDist);
    using QE = std::pair<uint64_t, uint32_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
    dist[0] = 0;
    pq.push({0, 0});
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        uint64_t through = d + locost[v];
        for (uint32_t t : succ[v]) {
            if (through < dist[t]) {
                dist[t] = through;
                pq.push({through, t});
            }
        }
    }
    uint64_t lo = kNoDist;
    for (size_t i = 0; i < m; ++i)
        if (isExit[i] && dist[i] != kNoDist)
            lo = std::min(lo, dist[i] + locost[i]);
    if (lo == kNoDist) {
        // Exits exist but none is reachable -- cannot happen with the
        // reachability above; defend anyway.
        bounded = false;
        lo = 0;
    }

    // ---- Worst case: SCC condensation, loop SCCs expanded to their
    // annotated bound, then the longest path over the DAG.
    //
    // Iterative Tarjan rooted at the entry (every node is reachable
    // from it, so one DFS covers the graph and the entry's component
    // gets the highest id; successors always have smaller ids).
    std::vector<int> comp(m, -1), index(m, -1), low(m, 0);
    std::vector<char> onStack(m, 0);
    std::vector<uint32_t> stack;
    int nextIndex = 0, compCount = 0;
    struct Frame
    {
        uint32_t v;
        size_t child;
    };
    std::vector<Frame> dfs;
    for (size_t root = 0; root < m; ++root) {
        if (index[root] >= 0)
            continue;
        dfs.push_back({static_cast<uint32_t>(root), 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            uint32_t v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = nextIndex++;
                stack.push_back(v);
                onStack[v] = 1;
            }
            if (f.child < succ[v].size()) {
                uint32_t w = succ[v][f.child++];
                if (index[w] < 0) {
                    dfs.push_back({w, 0});
                } else if (onStack[w]) {
                    low[v] = std::min(low[v], index[w]);
                }
                continue;
            }
            if (low[v] == index[v]) {
                uint32_t w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = 0;
                    comp[w] = compCount;
                } while (w != v);
                ++compCount;
            }
            dfs.pop_back();
            if (!dfs.empty()) {
                uint32_t p = dfs.back().v;
                low[p] = std::min(low[p], low[v]);
            }
        }
    }

    std::vector<char> cyclic(compCount, 0), compExit(compCount, 0);
    std::vector<uint64_t> compSum(compCount, 0);
    std::vector<uint32_t> compBound(compCount, 0);
    std::vector<int> compSize(compCount, 0);
    std::vector<UAddr> compFirst(compCount, kInvalidUAddr);
    for (size_t i = m; i-- > 0;) {
        int c = comp[i];
        ++compSize[c];
        compFirst[c] = nodes[i];
        compSum[c] += hicost[i];
        compBound[c] =
            std::max(compBound[c], cs_.flow(nodes[i]).loopBound);
        if (isExit[i])
            compExit[c] = 1;
        if (selfLoop[i])
            cyclic[c] = 1;
    }
    uint32_t loopSccs = 0;
    std::vector<uint64_t> compCost(compCount, 0);
    for (int c = 0; c < compCount; ++c) {
        if (compSize[c] > 1)
            cyclic[c] = 1;
        if (!cyclic[c]) {
            compCost[c] = compSum[c];
            continue;
        }
        ++loopSccs;
        uint32_t bound = compBound[c];
        if (bound == 0) {
            bounded = false;
            std::string members;
            int listed = 0;
            for (size_t i = 0; i < m && listed < 4; ++i) {
                if (comp[i] != c)
                    continue;
                if (listed)
                    members += ", ";
                members +=
                    std::to_string(static_cast<unsigned>(nodes[i]));
                members += " (";
                members += cs_.annotation(nodes[i]).name;
                members += ")";
                ++listed;
            }
            if (compSize[c] > listed)
                members += ", ...";
            UBoundDiag d;
            d.check = UBoundCheck::UnboundedLoop;
            d.addr = compFirst[c];
            d.where = rootName;
            d.message = std::to_string(compSize[c]) +
                "-word micro-loop with no loopBound annotation: " +
                members;
            report_.diags.push_back(std::move(d));
            bound = 1; // keep analyzing; the flow stays unbounded
        }
        compCost[c] = static_cast<uint64_t>(bound) * compSum[c];
    }
    fb->loopSccs = loopSccs;

    // Longest path over the condensation: entry's component has the
    // highest id, successors strictly smaller, so one descending scan
    // relaxes every edge in topological order.
    std::vector<uint64_t> best(compCount, 0);
    std::vector<char> seen(compCount, 0);
    int entryComp = comp[0];
    best[entryComp] = compCost[entryComp];
    seen[entryComp] = 1;
    for (int c = compCount; c-- > 0;) {
        if (!seen[c])
            continue;
        for (size_t i = 0; i < m; ++i) {
            if (comp[i] != c)
                continue;
            for (uint32_t t : succ[i]) {
                int ct = comp[t];
                if (ct == c)
                    continue;
                uint64_t cand = best[c] + compCost[ct];
                if (!seen[ct] || cand > best[ct]) {
                    seen[ct] = 1;
                    best[ct] = cand;
                }
            }
        }
    }
    uint64_t hi = 0;
    for (int c = 0; c < compCount; ++c)
        if (seen[c] && compExit[c])
            hi = std::max(hi, best[c]);

    fb->lo = lo;
    fb->hi = hi;
    fb->bounded = bounded;

    Range r;
    r.lo = lo;
    r.hi = hi;
    r.valid = bounded;
    return r;
}

UBoundAnalysis::UBoundAnalysis(const ControlStore &cs,
                               const UBoundParams &p)
    : cs_(cs), params_(p)
{
    report_.params = p;
    globalReach_.assign(cs.size(), false);

    const EntryPoints &ep = cs.entries;

    // Bound cache keyed by entry address: dispatch slots alias (many
    // spec-table classes share one routine), and each named root of an
    // aliased address must report identical numbers.
    std::map<UAddr, UFlowBound> boundCache;

    // Microtrap services first, trap ceilings off (a service cannot
    // itself take the trap it services in this model), so the ordinary
    // flows below can fold service ceilings into their memory words.
    auto service = [&](const char *name, UAddr a) -> Range {
        UFlowBound fb;
        fb.name = name;
        std::vector<UAddr> stack;
        if (a != kInvalidUAddr)
            stack.push_back(a);
        Range r = computeFlow(a, name, false, stack, &fb);
        boundCache.emplace(a, fb);
        report_.flows.push_back(std::move(fb));
        return r;
    };

    auto analyze = [&](const std::string &name, UAddr a) {
        auto it = boundCache.find(a);
        if (it != boundCache.end()) {
            UFlowBound fb = it->second;
            fb.name = name;
            report_.flows.push_back(std::move(fb));
            return;
        }
        UFlowBound fb;
        fb.name = name;
        std::vector<UAddr> stack;
        if (a != kInvalidUAddr)
            stack.push_back(a);
        Range r = computeFlow(a, name, true, stack, &fb);
        ranges_.emplace(a, r);
        boundCache.emplace(a, fb);
        report_.flows.push_back(std::move(fb));
    };

    tbMissSvc_ = Range{};
    {
        Range d = service("tbmiss.d", ep.tbMissD);
        Range i = service("tbmiss.i", ep.tbMissI);
        if (d.valid && i.valid) {
            tbMissSvc_.lo = std::min(d.lo, i.lo);
            tbMissSvc_.hi = std::max(d.hi, i.hi);
            tbMissSvc_.valid = true;
        }
    }
    alignReadSvc_ = service("align.read", ep.alignRead);
    alignWriteSvc_ = service("align.write", ep.alignWrite);

    // Hardware-selected dispatch roots.  EntryPoints.abort and
    // .exception are flowReserved() guard words (the abort slot only
    // names the histogram count location), so they are not roots.
    analyze("iid", ep.iid);
    analyze("specwait1", ep.specWait[0]);
    analyze("specwait26", ep.specWait[1]);
    analyze("index1", ep.indexPrefix[0]);
    analyze("index26", ep.indexPrefix[1]);
    analyze("interrupt", ep.interrupt);
    analyze("mcheck", ep.machineCheck);

    for (size_t mo = 0; mo < static_cast<size_t>(AddrMode::NumModes);
         ++mo) {
        for (unsigned pos = 0; pos < 2; ++pos) {
            for (size_t c = 0;
                 c < static_cast<size_t>(SpecAccClass::NumClasses);
                 ++c) {
                UAddr a = ep.spec[mo][pos][c];
                if (a == kInvalidUAddr)
                    continue;
                std::string name = std::string("spec:") +
                    addrModeName(static_cast<AddrMode>(mo)) + "/" +
                    (pos == 0 ? "1" : "26") + "/" +
                    specClassName(static_cast<SpecAccClass>(c));
                analyze(name, a);
            }
        }
    }

    for (size_t f = 1; f < static_cast<size_t>(ExecFlow::NumFlows);
         ++f) {
        UAddr a = ep.exec[f];
        if (a == kInvalidUAddr)
            continue;
        analyze(std::string("exec:") +
                    execFlowName(static_cast<ExecFlow>(f)),
                a);
    }

    // ---- Static Table 8 attribution over the union of every root's
    // reachable word set (callee routines included).
    for (size_t a = 0; a < globalReach_.size(); ++a) {
        if (!globalReach_[a])
            continue;
        const UAnnotation &ann = cs_.annotation(static_cast<UAddr>(a));
        size_t row = static_cast<size_t>(ann.row);
        if (row >= static_cast<size_t>(Row::NumRows))
            continue; // ulint reports the bad classification
        URowCost &rc = report_.rows[row];
        ++rc.words;
        if (ann.mem == UMemKind::Read) {
            ++rc.readWords;
            rc.hiStall += params_.readStallCeil;
        } else if (ann.mem == UMemKind::Write) {
            ++rc.writeWords;
            rc.hiStall += params_.writeStallCeil;
        }
        if (ann.ibRequest) {
            ++rc.ibWords;
            rc.hiStall += params_.ibStallCeil;
        }
    }
}

UBoundAnalysis::Range
UBoundAnalysis::flowRange(UAddr entry) const
{
    auto it = ranges_.find(entry);
    if (it == ranges_.end())
        return Range{};
    return it->second;
}

UBoundAnalysis::Range
UBoundAnalysis::instrRange(uint8_t opcode,
                           const std::vector<SpecUse> &specs) const
{
    const OpcodeInfo &info = opcodeInfo(opcode);
    if (!info.valid || info.flow == ExecFlow::None)
        return Range{};

    const EntryPoints &ep = cs_.entries;
    auto add = [](Range a, Range b) {
        Range r;
        r.valid = a.valid && b.valid;
        r.lo = a.lo + b.lo;
        r.hi = a.hi + b.hi;
        return r;
    };

    Range r = flowRange(ep.iid);
    if (specs.size() != info.numSpecifiers)
        return Range{};
    for (size_t i = 0; i < specs.size(); ++i) {
        const OperandDef &def = info.operands[i];
        if (def.access == Access::Branch)
            return Range{}; // branch disp is not a specifier
        SpecAccClass cls = specAccClass(def.access);
        size_t pos = i == 0 ? 0 : 1;
        const SpecUse &u = specs[i];
        size_t mo = static_cast<size_t>(u.mode);
        if (mo >= static_cast<size_t>(AddrMode::NumModes))
            return Range{};
        Range s;
        if (u.indexed) {
            // Index prefix at this position, then the base mode's
            // SPEC2-6 routine copy (the microcode sharing the paper
            // reports).
            s = add(flowRange(ep.indexPrefix[pos]),
                    flowRange(ep.spec[mo][1][static_cast<size_t>(
                        cls)]));
        } else {
            s = flowRange(
                ep.spec[mo][pos][static_cast<size_t>(cls)]);
        }
        // Ceiling slack for an IB-starved specifier decode: the
        // hardware parks at the spec-wait word until bytes arrive.
        s.hi += params_.ibStallCeil;
        r = add(r, s);
    }
    if (info.bdispBytes > 0)
        r.hi += params_.ibStallCeil; // branch-displacement fetch slack
    r = add(r, flowRange(ep.exec[static_cast<size_t>(info.flow)]));
    return r;
}

UBoundReport
uboundAnalyze(const ControlStore &cs, const UBoundParams &p)
{
    return UBoundAnalysis(cs, p).report();
}

bool
uboundCheckMeasured(const std::string &rowName, uint64_t measured,
                    uint64_t lo, uint64_t hi,
                    std::vector<UBoundDiag> *diags)
{
    if (measured >= lo && measured <= hi)
        return true;
    UBoundDiag d;
    d.check = UBoundCheck::Baseline;
    d.addr = kInvalidUAddr;
    d.where = rowName;
    d.message = "measured " + std::to_string(measured) +
        " cycles outside static bounds [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]";
    diags->push_back(std::move(d));
    return false;
}

std::string
UBoundReport::text() const
{
    std::string out;
    size_t unbounded = 0;
    for (const UFlowBound &f : flows)
        unbounded += !f.bounded;
    ujson::appendf(&out,
                   "ubound: %zu flows, %zu unbounded, "
                   "%zu diagnostics\n",
                   flows.size(), unbounded, diags.size());
    ujson::appendf(&out,
                   "params: read-ceil=%u write-ceil=%u ib-ceil=%u "
                   "align-traps=%d unmapped=%d\n",
                   params.readStallCeil, params.writeStallCeil,
                   params.ibStallCeil, params.alignTraps ? 1 : 0,
                   params.assumeUnmapped ? 1 : 0);
    for (const UBoundDiag &d : diags) {
        out += "ubound:";
        out += d.addr == kInvalidUAddr
            ? std::string("-")
            : std::to_string(static_cast<unsigned>(d.addr));
        out += ": error: [";
        out += uboundCheckName(d.check);
        out += "] ";
        if (!d.where.empty()) {
            out += d.where;
            out += ": ";
        }
        out += d.message;
        out += "\n";
    }
    out += "flow bounds:\n";
    for (const UFlowBound &f : flows) {
        ujson::appendf(&out,
                       "  %-36s entry=%5u lo=%-6llu hi=%-10llu "
                       "words=%-4u loops=%u%s\n",
                       f.name.c_str(), static_cast<unsigned>(f.entry),
                       static_cast<unsigned long long>(f.lo),
                       static_cast<unsigned long long>(f.hi), f.words,
                       f.loopSccs, f.bounded ? "" : " UNBOUNDED");
    }
    out += "row attribution (reachable words):\n";
    for (size_t r = 0; r < rows.size(); ++r) {
        const URowCost &rc = rows[r];
        if (!rc.words)
            continue;
        ujson::appendf(&out,
                       "  %-12s words=%-4u reads=%-3u writes=%-3u "
                       "ib=%-3u stall-ceil=%llu\n",
                       rowName(static_cast<Row>(r)), rc.words,
                       rc.readWords, rc.writeWords, rc.ibWords,
                       static_cast<unsigned long long>(rc.hiStall));
    }
    return out;
}

std::string
UBoundReport::csv() const
{
    std::string out = "flow,entry,lo,hi,words,loops,bounded\n";
    for (const UFlowBound &f : flows) {
        ujson::appendf(&out, "%s,%u,%llu,%llu,%u,%u,%d\n",
                       f.name.c_str(), static_cast<unsigned>(f.entry),
                       static_cast<unsigned long long>(f.lo),
                       static_cast<unsigned long long>(f.hi), f.words,
                       f.loopSccs, f.bounded ? 1 : 0);
    }
    return out;
}

std::string
UBoundReport::json() const
{
    std::string out = "{\n";
    ujson::appendf(&out,
                   "  \"params\": {\"read_stall_ceil\": %u, "
                   "\"write_stall_ceil\": %u, \"ib_stall_ceil\": %u, "
                   "\"align_traps\": %s, \"assume_unmapped\": %s},\n",
                   params.readStallCeil, params.writeStallCeil,
                   params.ibStallCeil,
                   params.alignTraps ? "true" : "false",
                   params.assumeUnmapped ? "true" : "false");
    out += std::string("  \"clean\": ") +
        (clean() ? "true" : "false") + ",\n";
    out += "  \"counts\": {";
    for (size_t c = 0; c < static_cast<size_t>(UBoundCheck::NumChecks);
         ++c) {
        if (c)
            out += ", ";
        out += std::string("\"") +
            uboundCheckName(static_cast<UBoundCheck>(c)) + "\": " +
            std::to_string(countFor(static_cast<UBoundCheck>(c)));
    }
    out += "},\n";
    out += "  \"flows\": [";
    for (size_t i = 0; i < flows.size(); ++i) {
        const UFlowBound &f = flows[i];
        out += i ? ",\n    " : "\n    ";
        ujson::appendf(&out,
                       "{\"name\": \"%s\", \"entry\": %u, "
                       "\"lo\": %llu, \"hi\": %llu, \"words\": %u, "
                       "\"loops\": %u, \"bounded\": %s}",
                       ujson::escape(f.name).c_str(),
                       static_cast<unsigned>(f.entry),
                       static_cast<unsigned long long>(f.lo),
                       static_cast<unsigned long long>(f.hi), f.words,
                       f.loopSccs, f.bounded ? "true" : "false");
    }
    out += flows.empty() ? "],\n" : "\n  ],\n";
    out += "  \"rows\": {";
    bool firstRow = true;
    for (size_t r = 0; r < rows.size(); ++r) {
        const URowCost &rc = rows[r];
        if (!rc.words)
            continue;
        if (!firstRow)
            out += ",";
        firstRow = false;
        ujson::appendf(&out,
                       "\n    \"%s\": {\"words\": %u, \"reads\": %u, "
                       "\"writes\": %u, \"ib\": %u, "
                       "\"stall_ceil\": %llu}",
                       rowName(static_cast<Row>(r)), rc.words,
                       rc.readWords, rc.writeWords, rc.ibWords,
                       static_cast<unsigned long long>(rc.hiStall));
    }
    out += firstRow ? "},\n" : "\n  },\n";
    out += "  \"diags\": [";
    for (size_t i = 0; i < diags.size(); ++i) {
        const UBoundDiag &d = diags[i];
        out += i ? ",\n    " : "\n    ";
        out += std::string("{\"check\": \"") +
            uboundCheckName(d.check) + "\", \"addr\": ";
        out += d.addr == kInvalidUAddr
            ? std::string("null")
            : std::to_string(static_cast<unsigned>(d.addr));
        out += ", \"where\": \"" + ujson::escape(d.where) +
            "\", \"message\": \"" + ujson::escape(d.message) + "\"}";
    }
    out += diags.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
regUBoundStats(const UBoundReport &rep, stats::Registry &r,
               const std::string &prefix)
{
    size_t flows = rep.flows.size(), unbounded = 0;
    for (const UFlowBound &f : rep.flows)
        unbounded += !f.bounded;
    r.addScalar(prefix + ".flows",
                "dispatch roots analyzed by the static bound pass",
                [flows] { return static_cast<uint64_t>(flows); });
    r.addScalar(prefix + ".unbounded",
                "flows with no provable worst-case cycle bound",
                [unbounded] {
                    return static_cast<uint64_t>(unbounded);
                });
    if (rep.clean())
        return;
    size_t total = rep.diags.size();
    r.addScalar(prefix + ".diags", "static bound analyzer diagnostics",
                [total] { return static_cast<uint64_t>(total); });
    for (size_t c = 0; c < static_cast<size_t>(UBoundCheck::NumChecks);
         ++c) {
        UBoundCheck check = static_cast<UBoundCheck>(c);
        size_t k = rep.countFor(check);
        r.addScalar(prefix + "." + uboundCheckName(check),
                    std::string("diagnostics from the ") +
                        uboundCheckName(check) + " check",
                    [k] { return static_cast<uint64_t>(k); });
    }
}

} // namespace vax
