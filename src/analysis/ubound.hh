/**
 * @file
 * ubound: static cycle-bound analysis of the micro-CFG.
 *
 * ulint (see ulint.hh) proves the declared micro-CFG is structurally
 * sound; ucharacterize measures what the microcode actually costs.
 * Nothing connected the two: a mis-annotated microword or an
 * accidentally lengthened flow was only caught if a dynamic benchmark
 * happened to execute it.  This pass closes the loop the way Emer &
 * Clark could by reading DEC's listings: for every dispatch root it
 * derives a best-case cycle count (bcc: the shortest declared path,
 * stall-free) and a worst-case cycle count (wcc: the longest declared
 * path with every stall ceiling applied and every micro-loop expanded
 * to its annotated bound), and the consistency gate then requires
 * every dynamically measured per-opcode cycle count to satisfy
 * bcc <= measured <= wcc.
 *
 * Path model:
 *  - every executed microword costs one cycle (the 11/780 microcycle);
 *  - a word annotated UMemKind::Read/Write may add up to
 *    readStallCeil/writeStallCeil stalled cycles (cache miss, write
 *    buffer drain, longword-crossing double access);
 *  - a word with an IB request may burn up to ibStallCeil cycles
 *    re-executing while the instruction buffer refills;
 *  - a memory-referencing word may take an alignment microtrap: one
 *    abort cycle, the alignment service flow, and the resumed cycle
 *    (TB-miss services are excluded under assumeUnmapped, matching
 *    the characterization harness which runs with mapping off);
 *  - a micro-loop (cyclic SCC of the declared successor graph) must
 *    carry a UFlow::loopBound annotation on at least one member word;
 *    its wcc contribution is bound x (sum of member worst costs).
 *    An unannotated reachable cycle is an UnboundedLoop diagnostic,
 *    extending ulint's micro-loop check with a progress proof.
 *
 * Every quantity is a deterministic integer: reports are byte-stable
 * across runs and job counts.
 */

#ifndef UPC780_ANALYSIS_UBOUND_HH
#define UPC780_ANALYSIS_UBOUND_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "ucode/control_store.hh"

namespace vax
{

namespace stats { class Registry; }

/** Stall-ceiling assumptions of the worst-case model (cycles). */
struct UBoundParams
{
    /**
     * Per-read stall ceiling: two cache misses (an unaligned access
     * crossing a longword costs two) plus one SBI retry margin at the
     * default readMissPenalty of 6.
     */
    uint32_t readStallCeil = 18;
    /** Per-write ceiling: full write-buffer drain, twice, plus margin
     *  (default writeDrainCycles 6). */
    uint32_t writeStallCeil = 18;
    /** Per-IB-request ceiling: up to five buffer refills at the
     *  default ibFillPenalty of 6 (a redirect empties the IB and a
     *  long instruction can need several fills). */
    uint32_t ibStallCeil = 30;
    /** Include the alignment-microtrap ceiling on memory words. */
    bool alignTraps = true;
    /** Harness runs with mapping off: no TB-miss service ceilings. */
    bool assumeUnmapped = true;
};

/** Diagnostic classes of the bound analyzer. */
enum class UBoundCheck : uint8_t {
    UnboundedLoop, ///< reachable cycle with no loopBound annotation
    NoExit,        ///< no flow-terminating word reachable from a root
    CallCycle,     ///< recursive micro-subroutine call chain
    Baseline,      ///< measured row outside [bcc, wcc]
    NumChecks,
};

const char *uboundCheckName(UBoundCheck c);

struct UBoundDiag
{
    UBoundCheck check;
    UAddr addr = kInvalidUAddr; ///< anchor word (or kInvalidUAddr)
    std::string where;          ///< flow/root or baseline row name
    std::string message;
};

/** Static cycle bounds of one dispatch root. */
struct UFlowBound
{
    std::string name;  ///< deterministic root name ("exec:MOVx", ...)
    UAddr entry = kInvalidUAddr;
    uint64_t lo = 0;   ///< bcc: stall-free shortest declared path
    uint64_t hi = 0;   ///< wcc: ceiling path (0 when unbounded)
    uint32_t words = 0;    ///< words reachable inside the flow
    uint32_t loopSccs = 0; ///< cyclic SCCs among them
    bool bounded = true;   ///< exit reachable, every loop annotated
};

/** Static Table 8 attribution of one activity row. */
struct URowCost
{
    uint32_t words = 0;      ///< reachable control-store words
    uint32_t readWords = 0;  ///< of them, UMemKind::Read
    uint32_t writeWords = 0; ///< of them, UMemKind::Write
    uint32_t ibWords = 0;    ///< of them, IB-requesting
    uint64_t hiStall = 0;    ///< summed per-word stall ceilings
};

struct UBoundReport
{
    UBoundParams params;
    std::vector<UFlowBound> flows; ///< deterministic root order
    std::array<URowCost, static_cast<size_t>(Row::NumRows)> rows{};
    std::vector<UBoundDiag> diags;

    bool clean() const { return diags.empty(); }
    size_t countFor(UBoundCheck c) const;

    std::string text() const;
    std::string csv() const;
    std::string json() const;
};

/**
 * The analysis object: runs at construction, keeps per-entry ranges
 * so instruction-level bounds can be composed from the corpus's
 * specifier profiles.
 */
class UBoundAnalysis
{
  public:
    explicit UBoundAnalysis(const ControlStore &cs,
                            const UBoundParams &p = UBoundParams());

    const UBoundReport &report() const { return report_; }

    /** A [lo, hi] cycle range; valid=false when the flow is missing
     *  or unbounded. */
    struct Range
    {
        uint64_t lo = 0;
        uint64_t hi = 0;
        bool valid = false;
    };

    /** Bounds of the flow rooted at a dispatch entry address. */
    Range flowRange(UAddr entry) const;

    /** One operand specifier as the corpus profile records it. */
    struct SpecUse
    {
        AddrMode mode = AddrMode::Register;
        bool indexed = false;
    };

    /**
     * Cycle bounds of one dynamic instruction: the IID cycle, each
     * operand specifier flow (index prefix + SPEC2-6 base copy for
     * indexed operands), the execute flow, and per-request IB slack
     * in the ceiling.  specs must have opcodeInfo(opcode)
     * .numSpecifiers entries.  Returns valid=false for unimplemented
     * opcodes or unbounded component flows.
     */
    Range instrRange(uint8_t opcode,
                     const std::vector<SpecUse> &specs) const;

  private:
    struct FlowSolve; // internal per-root solver state

    Range computeFlow(UAddr entry, const std::string &rootName,
                      bool allowTrapCeil, std::vector<UAddr> &callStack,
                      UFlowBound *fb);
    Range cachedFlow(UAddr entry, const std::string &rootName,
                     bool allowTrapCeil, std::vector<UAddr> &callStack);
    uint64_t wordLoCost(UAddr a) const;
    uint64_t wordHiCost(UAddr a, bool allowTrapCeil) const;

    const ControlStore &cs_;
    UBoundParams params_;
    UBoundReport report_;
    std::map<UAddr, Range> ranges_;   ///< memoized per-entry ranges
    Range alignReadSvc_, alignWriteSvc_, tbMissSvc_;
    std::vector<bool> globalReach_;   ///< union across all roots
};

/** Convenience: analyze and return the report. */
UBoundReport uboundAnalyze(const ControlStore &cs,
                           const UBoundParams &p = UBoundParams());

/**
 * Baseline consistency helper: record `measured` against [lo, hi],
 * appending a named Baseline diagnostic to *diags on breach.
 * @return True when the measurement is inside the bounds.
 */
bool uboundCheckMeasured(const std::string &rowName, uint64_t measured,
                         uint64_t lo, uint64_t hi,
                         std::vector<UBoundDiag> *diags);

/** Deterministic scalars under `<prefix>.*` (counts and totals). */
void regUBoundStats(const UBoundReport &rep, stats::Registry &r,
                    const std::string &prefix = "ubound");

} // namespace vax

#endif // UPC780_ANALYSIS_UBOUND_HH
