/**
 * @file
 * ulint: a static verifier for the assembled control store.
 *
 * The UPC monitor's whole methodology rests on the microcode being a
 * closed, fully classified object: every histogram bucket must map to
 * exactly one Table 8 cell, every dispatch must land on real
 * microcode, and the machine must never be able to wedge in a
 * micro-loop the histogram cannot attribute.  Emer & Clark got that
 * assurance from DEC's microcode listings; we get it from this linter,
 * which walks the declared micro-CFG (UFlow successor declarations,
 * EntryPoints dispatch tables, the decode-ROM spec entries and the
 * implicit microtrap edges) and reports anything that breaks the
 * closure.
 *
 * Six checks:
 *   1. bad-target      -- every branch/dispatch/fall edge resolves to
 *                         a defined microword (no dangling labels, no
 *                         out-of-range absolute targets).
 *   2. classification  -- every reachable word carries a Table 8 Row
 *                         consistent with the dispatch slot(s) that
 *                         reach it, so row/column conservation holds
 *                         by construction.
 *   3. mem-annotation  -- UMemKind/IB annotations agree with the
 *                         microtrap service paths: every service entry
 *                         reaches a trap-return, every trap-return is
 *                         on a service path, reserved words claim no
 *                         memory behaviour.
 *   4. entry-point     -- every EntryPoints slot the decode hardware
 *                         can select is explicitly set (the spec table
 *                         legality matrix exempts the short-literal
 *                         and immediate write/modify/address slots,
 *                         which fault at decode instead).
 *   5. micro-loop      -- no reachable cycle of microwords lacks both
 *                         an exit edge and a progress-guaranteeing
 *                         memory/IB interaction.
 *   6. unreachable     -- no non-reserved word is unreachable from
 *                         every dispatch root; no label is allocated
 *                         but never bound or referenced.
 *
 * The same report is consumed three ways: the ucode_lint CLI (text or
 * --json), a ctest entry linting the production ROM, and an opt-in
 * assertion at Cpu780 construction (strict mode).
 */

#ifndef UPC780_ANALYSIS_ULINT_HH
#define UPC780_ANALYSIS_ULINT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "ucode/control_store.hh"

namespace vax
{

namespace stats { class Registry; }

/** The six lint checks (stable names for text/JSON output). */
enum class LintCheck : uint8_t {
    BadTarget,
    Classification,
    MemAnnotation,
    EntryPoint,
    MicroLoop,
    Unreachable,
    NumChecks,
};

/** Stable kebab-case name of a check (diagnostic tag). */
const char *lintCheckName(LintCheck c);

/** One diagnostic. */
struct LintDiag
{
    LintCheck check;
    /** Offending micro-address, or kInvalidUAddr for table-level
     *  diagnostics (unset entry slots, orphan labels). */
    UAddr addr = kInvalidUAddr;
    /** Annotation name of the word at addr ("" for table-level). */
    std::string word;
    std::string message;
};

/** Result of linting one control store. */
struct LintReport
{
    std::vector<LintDiag> diags;
    size_t words = 0;     ///< control-store size
    size_t reachable = 0; ///< words reachable from a dispatch root
    size_t reserved = 0;  ///< words declared flowReserved()

    bool clean() const { return diags.empty(); }
    size_t countFor(LintCheck c) const;

    /** Render as "ucode:<addr>: error: [<check>] ..." lines plus a
     *  one-line summary; "" when clean. */
    std::string text() const;

    /** Render the whole report as a JSON object. */
    std::string json() const;
};

/**
 * Lint an assembled control store.  The store must be complete (all
 * routines emitted, all entry slots registered); resolveFlows() need
 * not have run -- the linter builds its own edge set from the raw
 * declarations so that unbound labels are reportable rather than
 * silently dropped.
 */
LintReport lintControlStore(const ControlStore &cs);

/**
 * Register the lint findings under "<prefix>." in a stats registry
 * (counts are captured by value).  Registers nothing when the report
 * is clean, so the ".lint" section appears in a dump exactly when
 * static diagnostics exist.
 */
void regLintStats(const LintReport &rep, stats::Registry &r,
                  const std::string &prefix = "lint");

} // namespace vax

#endif // UPC780_ANALYSIS_ULINT_HH
