/**
 * @file
 * Tiny shared JSON-writing helpers for the static-analysis reports.
 *
 * Both `ucode_lint --json` and `ucode_bounds --json` emit reports
 * that CI diffs mechanically, so the escaping must be exact: every
 * control character as a well-formed \u00XX sequence (the char must
 * be widened *unsigned*; a raw char promotes negative on most ABIs
 * and snprintf would print ￿ff9b), plus the usual quote and
 * backslash escapes.
 */

#ifndef UPC780_ANALYSIS_UJSON_HH
#define UPC780_ANALYSIS_UJSON_HH

#include <string>

namespace vax
{
namespace ujson
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string escape(const std::string &s);

/** printf-append to a std::string. */
void appendf(std::string *out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace ujson
} // namespace vax

#endif // UPC780_ANALYSIS_UJSON_HH
