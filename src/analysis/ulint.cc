#include "analysis/ulint.hh"

#include "analysis/ujson.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifiers.hh"
#include "support/stats.hh"

namespace vax
{

const char *
lintCheckName(LintCheck c)
{
    switch (c) {
      case LintCheck::BadTarget:      return "bad-target";
      case LintCheck::Classification: return "classification";
      case LintCheck::MemAnnotation:  return "mem-annotation";
      case LintCheck::EntryPoint:     return "entry-point";
      case LintCheck::MicroLoop:      return "micro-loop";
      case LintCheck::Unreachable:    return "unreachable";
      default:                        return "?";
    }
}

namespace
{

const char *
specClassName(SpecAccClass c)
{
    switch (c) {
      case SpecAccClass::Read:   return "Read";
      case SpecAccClass::Write:  return "Write";
      case SpecAccClass::Modify: return "Modify";
      case SpecAccClass::Addr:   return "Addr";
      default:                   return "?";
    }
}

std::string
addrStr(UAddr a)
{
    return std::to_string(static_cast<unsigned>(a));
}

/** One EntryPoints slot as the linter sees it. */
struct Slot
{
    std::string name; ///< "EntryPoints.<slot>" suffix
    UAddr addr;
    bool required;
    int expectRow; ///< Row the word at addr must carry, or -1
};

/**
 * Enumerate every dispatch slot with its legality/row expectation.
 *
 * The spec-table legality matrix mirrors rom_spec.cc: short-literal
 * and immediate specifiers exist only with read access (write/modify/
 * address uses fault at decode, before any dispatch), so only their
 * Read slots are required.  Every other mode sets all four classes.
 * Execute slots are required exactly for the flows some implemented
 * opcode names.
 */
std::vector<Slot>
enumerateSlots(const EntryPoints &ep)
{
    std::vector<Slot> slots;
    auto add = [&](std::string name, UAddr a, bool req, int row) {
        slots.push_back(Slot{std::move(name), a, req, row});
    };

    add("iid", ep.iid, true, static_cast<int>(Row::Decode));
    add("specWait[0]", ep.specWait[0], true,
        static_cast<int>(Row::Spec1));
    add("specWait[1]", ep.specWait[1], true,
        static_cast<int>(Row::Spec26));
    add("abort", ep.abort, true, static_cast<int>(Row::Abort));
    add("tbMissD", ep.tbMissD, true, static_cast<int>(Row::MemMgmt));
    add("tbMissI", ep.tbMissI, true, static_cast<int>(Row::MemMgmt));
    add("alignRead", ep.alignRead, true,
        static_cast<int>(Row::MemMgmt));
    add("alignWrite", ep.alignWrite, true,
        static_cast<int>(Row::MemMgmt));
    add("interrupt", ep.interrupt, true,
        static_cast<int>(Row::IntExcept));
    add("exception", ep.exception, true,
        static_cast<int>(Row::IntExcept));
    add("machineCheck", ep.machineCheck, true,
        static_cast<int>(Row::IntExcept));
    add("indexPrefix[0]", ep.indexPrefix[0], true,
        static_cast<int>(Row::Spec1));
    add("indexPrefix[1]", ep.indexPrefix[1], true,
        static_cast<int>(Row::Spec26));

    for (size_t m = 0; m < static_cast<size_t>(AddrMode::NumModes);
         ++m) {
        AddrMode mode = static_cast<AddrMode>(m);
        bool read_only = mode == AddrMode::ShortLiteral ||
            mode == AddrMode::Immediate;
        for (unsigned pos = 0; pos < 2; ++pos) {
            for (size_t c = 0;
                 c < static_cast<size_t>(SpecAccClass::NumClasses);
                 ++c) {
                SpecAccClass cls = static_cast<SpecAccClass>(c);
                bool req = !read_only || cls == SpecAccClass::Read;
                std::string name = std::string("spec[") +
                    addrModeName(mode) + "][" +
                    std::to_string(pos) + "][" + specClassName(cls) +
                    "]";
                add(std::move(name), ep.spec[m][pos][c], req,
                    static_cast<int>(pos == 0 ? Row::Spec1
                                              : Row::Spec26));
            }
        }
    }

    // Expected row per execute flow, derived from the opcode table
    // (execRowFor of the owning group); -1 for flows no opcode uses.
    std::array<int, static_cast<size_t>(ExecFlow::NumFlows)> flow_row;
    flow_row.fill(-1);
    for (unsigned i = 0; i < 256; ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(i));
        if (!info.valid || info.flow == ExecFlow::None)
            continue;
        flow_row[static_cast<size_t>(info.flow)] =
            static_cast<int>(execRowFor(info.group));
    }
    for (size_t f = 1; f < static_cast<size_t>(ExecFlow::NumFlows);
         ++f) {
        bool used = flow_row[f] >= 0;
        add(std::string("exec[") +
                execFlowName(static_cast<ExecFlow>(f)) + "]",
            ep.exec[f], used, flow_row[f]);
    }
    return slots;
}

/** Iterative Tarjan SCC; returns the component id of each node. */
struct SccResult
{
    std::vector<int> comp;
    int count = 0;
};

SccResult
tarjanScc(const std::vector<std::vector<UAddr>> &succ)
{
    const size_t n = succ.size();
    SccResult r;
    r.comp.assign(n, -1);
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<uint32_t> stack;
    int next_index = 0;

    struct Frame
    {
        uint32_t v;
        size_t child;
    };
    std::vector<Frame> dfs;

    for (size_t root = 0; root < n; ++root) {
        if (index[root] >= 0)
            continue;
        dfs.push_back({static_cast<uint32_t>(root), 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            uint32_t v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = 1;
            }
            if (f.child < succ[v].size()) {
                uint32_t w = succ[v][f.child++];
                if (index[w] < 0) {
                    dfs.push_back({w, 0});
                } else if (on_stack[w]) {
                    low[v] = std::min(low[v], index[w]);
                }
                continue;
            }
            if (low[v] == index[v]) {
                uint32_t w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    r.comp[w] = r.count;
                } while (w != v);
                ++r.count;
            }
            dfs.pop_back();
            if (!dfs.empty()) {
                uint32_t p = dfs.back().v;
                low[p] = std::min(low[p], low[v]);
            }
        }
    }
    return r;
}

} // anonymous namespace

size_t
LintReport::countFor(LintCheck c) const
{
    size_t k = 0;
    for (const LintDiag &d : diags)
        if (d.check == c)
            ++k;
    return k;
}

std::string
LintReport::text() const
{
    if (diags.empty())
        return "";
    std::string out;
    for (const LintDiag &d : diags) {
        out += "ucode:";
        out += d.addr == kInvalidUAddr ? std::string("-")
                                       : addrStr(d.addr);
        out += ": error: [";
        out += lintCheckName(d.check);
        out += "] ";
        if (!d.word.empty()) {
            out += d.word;
            out += ": ";
        }
        out += d.message;
        out += "\n";
    }
    out += std::to_string(diags.size()) +
        (diags.size() == 1 ? " diagnostic in " : " diagnostics in ") +
        std::to_string(words) + " microwords (" +
        std::to_string(reachable) + " reachable, " +
        std::to_string(reserved) + " reserved)\n";
    return out;
}

std::string
LintReport::json() const
{
    std::string out = "{\n";
    out += "  \"words\": " + std::to_string(words) + ",\n";
    out += "  \"reachable\": " + std::to_string(reachable) + ",\n";
    out += "  \"reserved\": " + std::to_string(reserved) + ",\n";
    out += std::string("  \"clean\": ") +
        (clean() ? "true" : "false") + ",\n";
    out += "  \"counts\": {";
    for (size_t c = 0; c < static_cast<size_t>(LintCheck::NumChecks);
         ++c) {
        if (c)
            out += ", ";
        out += std::string("\"") +
            lintCheckName(static_cast<LintCheck>(c)) + "\": " +
            std::to_string(countFor(static_cast<LintCheck>(c)));
    }
    out += "},\n";
    out += "  \"diags\": [";
    for (size_t i = 0; i < diags.size(); ++i) {
        const LintDiag &d = diags[i];
        out += i ? ",\n    " : "\n    ";
        out += std::string("{\"check\": \"") + lintCheckName(d.check) +
            "\", \"addr\": ";
        out += d.addr == kInvalidUAddr
            ? std::string("null")
            : std::to_string(static_cast<unsigned>(d.addr));
        out += ", \"word\": \"" + ujson::escape(d.word) +
            "\", \"message\": \"" + ujson::escape(d.message) + "\"}";
    }
    out += diags.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
regLintStats(const LintReport &rep, stats::Registry &r,
             const std::string &prefix)
{
    if (rep.clean())
        return;
    size_t total = rep.diags.size();
    r.addScalar(prefix + ".diags",
                "static microcode verifier diagnostics",
                [total] { return static_cast<uint64_t>(total); });
    for (size_t c = 0; c < static_cast<size_t>(LintCheck::NumChecks);
         ++c) {
        LintCheck check = static_cast<LintCheck>(c);
        size_t k = rep.countFor(check);
        r.addScalar(prefix + "." + lintCheckName(check),
                    std::string("diagnostics from the ") +
                        lintCheckName(check) + " check",
                    [k] { return static_cast<uint64_t>(k); });
    }
}

LintReport
lintControlStore(const ControlStore &cs)
{
    LintReport rep;
    const size_t n = cs.size();
    rep.words = n;

    auto diag = [&](LintCheck c, UAddr a, std::string msg) {
        LintDiag d;
        d.check = c;
        d.addr = a;
        if (a != kInvalidUAddr && a < n)
            d.word = cs.annotation(a).name;
        d.message = std::move(msg);
        rep.diags.push_back(std::move(d));
    };

    // ---- Check 4 (entry-point) and slot-level check 1 --------------
    const EntryPoints &ep = cs.entries;
    std::vector<Slot> slots = enumerateSlots(ep);
    for (const Slot &s : slots) {
        if (s.addr == kInvalidUAddr) {
            if (s.required)
                diag(LintCheck::EntryPoint, kInvalidUAddr,
                     "EntryPoints." + s.name +
                         " is unset: the decode hardware can select "
                         "this slot");
        } else if (s.addr >= n) {
            diag(LintCheck::BadTarget, kInvalidUAddr,
                 "EntryPoints." + s.name + " = " + addrStr(s.addr) +
                     ", outside the " + std::to_string(n) +
                     "-word control store");
        }
    }

    // ---- Build the linter's own micro-CFG --------------------------
    // Raw declarations, not resolveFlows(): unbound labels must be
    // reported, not silently dropped.
    auto valid = [&](UAddr a) { return a != kInvalidUAddr && a < n; };

    std::vector<UAddr> dispatch_set, spec26_set, end_set, ret_set,
        trap_set;
    auto push = [&](std::vector<UAddr> &v, UAddr a) {
        if (valid(a))
            v.push_back(a);
    };
    push(dispatch_set, ep.specWait[0]);
    push(dispatch_set, ep.specWait[1]);
    push(dispatch_set, ep.indexPrefix[0]);
    push(dispatch_set, ep.indexPrefix[1]);
    for (const auto &mode : ep.spec)
        for (const auto &pos : mode)
            for (UAddr cls : pos)
                push(dispatch_set, cls);
    for (UAddr e : ep.exec)
        push(dispatch_set, e);
    for (const auto &mode : ep.spec)
        for (UAddr cls : mode[1])
            push(spec26_set, cls);
    push(end_set, ep.iid);
    push(end_set, ep.interrupt);
    push(end_set, ep.machineCheck);
    // Microtrap service entries: the EBOX enters these directly when
    // a memory reference or IB request traps (abort is only the count
    // location).
    push(trap_set, ep.tbMissD);
    push(trap_set, ep.tbMissI);
    push(trap_set, ep.alignRead);
    push(trap_set, ep.alignWrite);
    for (size_t a = 0; a < n; ++a)
        if (!cs.flow(static_cast<UAddr>(a)).calls.empty() && a + 1 < n)
            ret_set.push_back(static_cast<UAddr>(a + 1));

    std::vector<std::vector<UAddr>> succ(n);
    /**
     * Local edges only (fall/branch/call/return): the region a
     * routine can cover without ending the instruction, dispatching
     * or microtrapping.  The service-path checks walk this graph, so
     * "the TB-miss service reaches a trap-return" cannot be satisfied
     * by leaving the service routine entirely.
     */
    std::vector<std::vector<UAddr>> local_succ(n);
    std::vector<char> exit_edge(n, 0); ///< trapRet/stop leave the CFG
    std::vector<char> referenced(cs.labelCount(), 0);

    for (size_t a = 0; a < n; ++a) {
        const UAddr ua = static_cast<UAddr>(a);
        const UFlow &f = cs.flow(ua);
        const UAnnotation &ann = cs.annotation(ua);
        std::vector<UAddr> &s = succ[a];

        if (f.fall) {
            if (a + 1 < n)
                s.push_back(static_cast<UAddr>(a + 1));
            else
                diag(LintCheck::BadTarget, ua,
                     "declares fall-through past the end of the "
                     "control store");
        }
        auto label_edge = [&](ULabel l, const char *verb) {
            if (l < referenced.size())
                referenced[l] = 1;
            int32_t b = cs.labelBinding(l);
            if (b < 0)
                diag(LintCheck::BadTarget, ua,
                     std::string(verb) + " label " + std::to_string(l) +
                         ", which is never bound (dangling)");
            else if (static_cast<size_t>(b) >= n)
                diag(LintCheck::BadTarget, ua,
                     std::string(verb) + " label " + std::to_string(l) +
                         " bound outside the store");
            else
                s.push_back(static_cast<UAddr>(b));
        };
        for (ULabel l : f.targets)
            label_edge(l, "branches to");
        for (ULabel l : f.calls)
            label_edge(l, "calls");
        for (UAddr t : f.rawTargets) {
            if (t < n)
                s.push_back(t);
            else
                diag(LintCheck::BadTarget, ua,
                     "jumps to absolute micro-address " + addrStr(t) +
                         ", outside the " + std::to_string(n) +
                         "-word control store");
        }
        if (f.end)
            s.insert(s.end(), end_set.begin(), end_set.end());
        if (f.dispatch)
            s.insert(s.end(), dispatch_set.begin(), dispatch_set.end());
        if (f.spec26)
            s.insert(s.end(), spec26_set.begin(), spec26_set.end());
        if (f.ret)
            s.insert(s.end(), ret_set.begin(), ret_set.end());
        if (f.trapRet || f.stop)
            exit_edge[a] = 1;
        // Implicit microtrap edges: any word that references memory
        // or requests IB bytes may trap into the service microcode.
        if (!f.reserved &&
            (ann.mem != UMemKind::None || ann.ibRequest))
            s.insert(s.end(), trap_set.begin(), trap_set.end());

        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());

        std::vector<UAddr> &ls = local_succ[a];
        if (f.fall && a + 1 < n)
            ls.push_back(static_cast<UAddr>(a + 1));
        for (ULabel l : f.targets) {
            int32_t b = cs.labelBinding(l);
            if (b >= 0 && static_cast<size_t>(b) < n)
                ls.push_back(static_cast<UAddr>(b));
        }
        for (ULabel l : f.calls) {
            int32_t b = cs.labelBinding(l);
            if (b >= 0 && static_cast<size_t>(b) < n)
                ls.push_back(static_cast<UAddr>(b));
        }
        for (UAddr t : f.rawTargets)
            if (t < n)
                ls.push_back(t);
        if (f.ret)
            ls.insert(ls.end(), ret_set.begin(), ret_set.end());
        std::sort(ls.begin(), ls.end());
        ls.erase(std::unique(ls.begin(), ls.end()), ls.end());

        if (f.reserved)
            ++rep.reserved;
    }

    // ---- Reachability from the dispatch roots ----------------------
    // Roots are the slots the hardware itself selects; the microtrap
    // service entries are reached through the implicit edges above.
    std::vector<char> reached(n, 0);
    std::vector<UAddr> work;
    auto root = [&](UAddr a) {
        if (valid(a) && !reached[a]) {
            reached[a] = 1;
            work.push_back(a);
        }
    };
    root(ep.iid);
    root(ep.interrupt);
    root(ep.machineCheck);
    root(ep.exception);
    root(ep.specWait[0]);
    root(ep.specWait[1]);
    root(ep.indexPrefix[0]);
    root(ep.indexPrefix[1]);
    for (const auto &mode : ep.spec)
        for (const auto &pos : mode)
            for (UAddr cls : pos)
                root(cls);
    for (UAddr e : ep.exec)
        root(e);
    while (!work.empty()) {
        UAddr a = work.back();
        work.pop_back();
        for (UAddr t : succ[a]) {
            if (!reached[t]) {
                reached[t] = 1;
                work.push_back(t);
            }
        }
    }
    for (size_t a = 0; a < n; ++a)
        rep.reachable += reached[a];

    // ---- Check 2 (classification) ----------------------------------
    for (const Slot &s : slots) {
        if (!valid(s.addr) || s.expectRow < 0)
            continue;
        const UAnnotation &ann = cs.annotation(s.addr);
        if (static_cast<int>(ann.row) != s.expectRow)
            diag(LintCheck::Classification, s.addr,
                 "dispatched from EntryPoints." + s.name +
                     " but classified in row " + rowName(ann.row) +
                     " (expected " +
                     rowName(static_cast<Row>(s.expectRow)) + ")");
    }
    for (size_t a = 0; a < n; ++a) {
        if (!reached[a])
            continue;
        const UAnnotation &ann = cs.annotation(static_cast<UAddr>(a));
        if (static_cast<size_t>(ann.row) >=
            static_cast<size_t>(Row::NumRows))
            diag(LintCheck::Classification, static_cast<UAddr>(a),
                 "row value " +
                     std::to_string(static_cast<unsigned>(ann.row)) +
                     " is not a Table 8 row");
    }

    // ---- Check 3 (mem-annotation) ----------------------------------
    for (size_t a = 0; a < n; ++a) {
        const UFlow &f = cs.flow(static_cast<UAddr>(a));
        const UAnnotation &ann = cs.annotation(static_cast<UAddr>(a));
        if (f.reserved &&
            (ann.mem != UMemKind::None || ann.ibRequest))
            diag(LintCheck::MemAnnotation, static_cast<UAddr>(a),
                 "reserved (never-executed) word claims memory/IB "
                 "behaviour");
    }
    // Every service entry must reach a trap-return within its own
    // routine (local edges only), and every trap-return must lie on
    // such a service path: that is what makes the UMemKind stall
    // attribution of trapped references sound.
    std::vector<char> service(n, 0);
    for (UAddr h : trap_set) {
        std::vector<UAddr> q{h};
        std::vector<char> seen(n, 0);
        seen[h] = 1;
        bool found_ret = false;
        while (!q.empty()) {
            UAddr a = q.back();
            q.pop_back();
            service[a] = 1;
            if (cs.flow(a).trapRet)
                found_ret = true;
            for (UAddr t : local_succ[a]) {
                if (!seen[t]) {
                    seen[t] = 1;
                    q.push_back(t);
                }
            }
        }
        if (!found_ret)
            diag(LintCheck::MemAnnotation, h,
                 "microtrap service entry never reaches a "
                 "trap-return word");
    }
    for (size_t a = 0; a < n; ++a) {
        if (cs.flow(static_cast<UAddr>(a)).trapRet && !service[a])
            diag(LintCheck::MemAnnotation, static_cast<UAddr>(a),
                 "trap-return word is not on any microtrap service "
                 "path");
    }

    // ---- Check 5 (micro-loop) --------------------------------------
    SccResult scc = tarjanScc(succ);
    std::vector<char> cyclic(scc.count, 0), has_exit(scc.count, 0),
        progress(scc.count, 0), scc_reached(scc.count, 0);
    std::vector<int> size(scc.count, 0);
    std::vector<UAddr> first(scc.count, 0);
    for (size_t a = n; a-- > 0;) {
        int c = scc.comp[a];
        ++size[c];
        first[c] = static_cast<UAddr>(a);
        if (reached[a])
            scc_reached[c] = 1;
        if (exit_edge[a])
            has_exit[c] = 1;
        const UAnnotation &ann = cs.annotation(static_cast<UAddr>(a));
        if (ann.mem != UMemKind::None || ann.ibRequest)
            progress[c] = 1;
        for (UAddr t : succ[a]) {
            if (scc.comp[t] != c)
                has_exit[c] = 1;
            else if (t == a)
                cyclic[c] = 1; // self-loop
        }
    }
    for (int c = 0; c < scc.count; ++c) {
        if (size[c] > 1)
            cyclic[c] = 1;
        if (!cyclic[c] || !scc_reached[c] || has_exit[c] ||
            progress[c])
            continue;
        std::string members;
        int listed = 0;
        for (size_t a = first[c]; a < n && listed < 4; ++a) {
            if (scc.comp[a] != c)
                continue;
            if (listed)
                members += ", ";
            members += addrStr(static_cast<UAddr>(a));
            members += " (";
            members += cs.annotation(static_cast<UAddr>(a)).name;
            members += ")";
            ++listed;
        }
        if (size[c] > listed)
            members += ", ...";
        diag(LintCheck::MicroLoop, first[c],
             std::to_string(size[c]) +
                 "-word micro-loop with no exit edge and no "
                 "memory/IB interaction: " +
                 members);
    }

    // ---- Check 6 (unreachable + orphan labels) ---------------------
    for (size_t a = 0; a < n; ++a) {
        if (!reached[a] && !cs.flow(static_cast<UAddr>(a)).reserved)
            diag(LintCheck::Unreachable, static_cast<UAddr>(a),
                 "unreachable from every dispatch root (and not "
                 "declared reserved)");
    }
    for (size_t l = 0; l < cs.labelCount(); ++l) {
        if (cs.labelBinding(static_cast<ULabel>(l)) < 0 &&
            !referenced[l])
            diag(LintCheck::Unreachable, kInvalidUAddr,
                 "label " + std::to_string(l) +
                     " allocated but never bound or referenced "
                     "(orphan)");
    }

    return rep;
}

} // namespace vax
