/**
 * @file
 * What-if study the paper's data enables: re-run the measurement with
 * different cache and translation-buffer geometries and watch the
 * per-instruction timing respond.  (The 1984 authors fed their
 * measured flush intervals into exactly this kind of simulation --
 * §3.4 and reference [3].)
 *
 * Usage: memory_sweep [--jobs N] [cycles]
 *   The variants run concurrently on a SimPool; --jobs (or
 *   UPC780_JOBS) caps the worker count, default one per core.
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

namespace
{

struct Variant
{
    const char *name;
    uint32_t cacheBytes;
    uint32_t tbEntries; ///< per half
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    uint64_t cycles = argc > 1 ? strtoull(argv[1], nullptr, 0)
                               : 1'000'000;
    static const Variant variants[] = {
        {"2 KB cache / 32-entry TB", 2 << 10, 32},
        {"4 KB cache / 64-entry TB", 4 << 10, 64},
        {"8 KB cache / 64-entry TB (the 11/780)", 8 << 10, 64},
        {"16 KB cache / 128-entry TB", 16 << 10, 128},
        {"64 KB cache / 256-entry TB", 64 << 10, 256},
    };

    WorkloadProfile prof = timesharingHeavyProfile();
    SimPool pool(jobs);
    std::printf("sweeping memory geometry under '%s' "
                "(%llu cycles each, %u worker threads)\n\n",
                prof.name.c_str(), (unsigned long long)cycles,
                pool.workers());

    // Each geometry is one independent job; the pool runs them on
    // all cores and returns results in variant order.
    std::vector<SimJob> sweep;
    for (const auto &v : variants) {
        SimConfig sim;
        sim.mem.cacheBytes = v.cacheBytes;
        sim.mem.tbProcessEntries = v.tbEntries;
        sim.mem.tbSystemEntries = v.tbEntries;
        sim.seed = prof.seed;
        sweep.push_back(SimJob::forProfile(prof, cycles, sim));
    }
    std::vector<ExperimentResult> results = pool.run(sweep);

    TextTable t("CPI sensitivity to the memory system");
    t.addRow({"Configuration", "CPI", "R-Stall/instr", "IB-Stall",
              "TB miss/instr", "TB svc cyc"});
    Cpu780 ref;
    for (size_t i = 0; i < sweep.size(); ++i) {
        HistogramAnalyzer an(ref.controlStore(), results[i].hist);
        t.addRow({variants[i].name,
                  TextTable::num(an.cyclesPerInstruction(), 2),
                  TextTable::num(an.colTotal(TimeCol::RStall), 3),
                  TextTable::num(an.colTotal(TimeCol::IbStall), 3),
                  TextTable::num(an.tbMissPerInstr(), 4),
                  TextTable::num(an.tbServiceCyclesPerMiss(), 1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Expected shape: stalls and TB misses shrink "
                "monotonically as the memory system grows;\n"
                "the 11/780 point should reproduce the composite "
                "numbers of the benches.\n");
    return 0;
}
