/**
 * @file
 * One-shot paper reproduction: run the five-workload composite once
 * and print every table the paper reports, from the same histogram --
 * the "general resource" workflow of the paper's conclusion.
 *
 * Usage: full_report [--jobs N] [--trace LIST] [--stats-json PATH]
 *                    [--faults SPEC] [--strict] [--selfcheck]
 *                    [--checkpoint-dir D] [--resume]
 *                    [cycles-per-experiment]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/ulint.hh"
#include "cpu/cpu.hh"
#include "driver/checkpoint.hh"
#include "driver/sim_pool.hh"
#include "support/faultinject.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "upc/analyzer.hh"
#include "upc/selfcheck.hh"
#include "workload/experiments.hh"

using namespace vax;

namespace
{

void
usage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [options] [cycles-per-experiment]\n"
        "  --jobs N           worker threads, 0 = one per core"
        " (also UPC780_JOBS)\n"
        "  --trace LIST       trace channels, e.g. cache,fault"
        " (also UPC780_TRACE)\n"
        "  --stats-json PATH  write the composite stats registry as"
        " JSON\n"
        "  --faults SPEC      deterministic fault injection"
        " (also UPC780_FAULTS)\n"
        "  --strict           fail fast on the first job error"
        " (also UPC780_STRICT)\n"
        "  --selfcheck        verify accounting identities after the"
        " run\n"
        "  --checkpoint-dir D rolling per-job checkpoints in D\n"
        "  --checkpoint-interval N\n"
        "                     cycles between checkpoints (default"
        " 250000)\n"
        "  --resume           continue an interrupted run from"
        " --checkpoint-dir\n"
        "  --watchdog-cycles N\n"
        "                     forward-progress watchdog window per"
        " job\n"
        "  --job-timeout S    wall-clock budget per job in seconds\n"
        "  --help             this message\n",
        prog);
}

void
printTable1(const HistogramAnalyzer &an)
{
    std::printf("--- Table 1: opcode group frequency ---\n");
    for (unsigned g = 0; g < static_cast<unsigned>(Group::NumGroups);
         ++g) {
        std::printf("  %-10s %6.2f%%\n",
                    groupName(static_cast<Group>(g)),
                    100.0 * an.groupFraction(static_cast<Group>(g)));
    }
}

void
printTable2(const HistogramAnalyzer &an)
{
    std::printf("--- Table 2: PC-changing instructions ---\n");
    double tot_f = 0, tot_a = 0;
    for (unsigned k = 1;
         k < static_cast<unsigned>(PcChangeKind::NumKinds); ++k) {
        PcChangeKind kind = static_cast<PcChangeKind>(k);
        double f = 100.0 * an.pcChangeFraction(kind);
        double t = 100.0 * an.takenFraction(kind);
        tot_f += f;
        tot_a += f * t / 100.0;
        std::printf("  %-24s %5.1f%%  taken %3.0f%%\n",
                    pcChangeKindName(kind), f, t);
    }
    std::printf("  %-24s %5.1f%%  actual branches %4.1f%%\n", "TOTAL",
                tot_f, tot_a);
}

void
printTable3(const HistogramAnalyzer &an)
{
    std::printf("--- Table 3: specifiers per instruction ---\n");
    std::printf("  first %.3f   other %.3f   branch disp %.3f\n",
                an.spec1PerInstr(), an.spec26PerInstr(),
                an.bdispPerInstr());
}

void
printTable4(const HistogramAnalyzer &an)
{
    std::printf("--- Table 4: specifier distribution (total) ---\n");
    for (unsigned c = 0;
         c < static_cast<unsigned>(SpecCategory::NumCategories);
         ++c) {
        SpecCategory cat = static_cast<SpecCategory>(c);
        std::printf("  %-26s %5.1f%%\n", specCategoryName(cat),
                    100.0 * an.specCategoryFraction(cat, 2));
    }
    std::printf("  %-26s %5.1f%%\n", "percent indexed",
                100.0 * an.indexedFraction(2));
}

void
printTables57(const HistogramAnalyzer &an)
{
    std::printf("--- Table 5: memory operations ---\n");
    std::printf("  reads %.3f/instr, writes %.3f/instr "
                "(ratio %.2f:1), unaligned %.4f\n",
                an.totalReadsPerInstr(), an.totalWritesPerInstr(),
                an.totalReadsPerInstr() /
                    (an.totalWritesPerInstr() > 0
                         ? an.totalWritesPerInstr() : 1.0),
                an.unalignedPerInstr());
    std::printf("--- Table 7: headways ---\n");
    std::printf("  sw-int requests 1/%.0f, interrupts 1/%.0f, "
                "context switches 1/%.0f\n",
                an.headwaySwIntRequests(), an.headwayInterrupts(),
                an.headwayContextSwitches());
}

void
printTable8(const HistogramAnalyzer &an)
{
    std::printf("--- Table 8: cycles per average instruction ---\n");
    std::printf("  %-12s", "");
    for (unsigned c = 0;
         c < static_cast<unsigned>(TimeCol::NumCols); ++c)
        std::printf("%9s", timeColName(static_cast<TimeCol>(c)));
    std::printf("%9s\n", "Total");
    for (unsigned r = 0; r < static_cast<unsigned>(Row::NumRows);
         ++r) {
        Row row = static_cast<Row>(r);
        std::printf("  %-12s", rowName(row));
        for (unsigned c = 0;
             c < static_cast<unsigned>(TimeCol::NumCols); ++c)
            std::printf("%9.3f",
                        an.cell(row, static_cast<TimeCol>(c)));
        std::printf("%9.3f\n", an.rowTotal(row));
    }
    std::printf("  %-12s", "TOTAL");
    for (unsigned c = 0;
         c < static_cast<unsigned>(TimeCol::NumCols); ++c)
        std::printf("%9.3f", an.colTotal(static_cast<TimeCol>(c)));
    std::printf("%9.3f\n", an.cyclesPerInstruction());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (parseBoolFlag(&argc, argv, "help")) {
        usage(argv[0], stdout);
        return 0;
    }
    trace::parseTraceFlag(&argc, argv);
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    std::string stats_path = stats::parseStatsJsonFlag(&argc, argv);
    FaultConfig faults = FaultConfig::parseFlag(&argc, argv);
    CheckpointConfig ckpt = CheckpointConfig::parseFlags(&argc, argv);
    RunLimits limits = parseLimitsFlags(&argc, argv);
    bool strict = parseBoolFlag(&argc, argv, "strict");
    bool selfcheck = parseBoolFlag(&argc, argv, "selfcheck");

    // One optional positional operand: the cycle budget.  Anything
    // else is a typo -- refuse to guess.
    uint64_t cycles = 2'000'000;
    if (argc > 2) {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n",
                     argv[0], argv[2]);
        usage(argv[0], stderr);
        return 2;
    }
    if (argc == 2) {
        char *end = nullptr;
        cycles = strtoull(argv[1], &end, 0);
        if (end == argv[1] || *end != '\0' || cycles == 0) {
            std::fprintf(stderr,
                         "%s: bad cycle count '%s'\n\n", argv[0],
                         argv[1]);
            usage(argv[0], stderr);
            return 2;
        }
    }
    std::printf("upc780 full paper reproduction "
                "(%llu cycles per experiment)\n\n",
                (unsigned long long)cycles);

    interrupt::install();
    SimPool pool(jobs);
    if (strict)
        pool.setStrict(true);
    pool.setCheckpoint(ckpt);
    std::vector<SimJob> job_list = compositeJobs(cycles);
    for (SimJob &j : job_list) {
        if (faults.enabled())
            j.sim.mem.faults = faults;
        if (limits.watchdogCycles)
            j.limits.watchdogCycles = limits.watchdogCycles;
        if (limits.timeoutSeconds > 0.0)
            j.limits.timeoutSeconds = limits.timeoutSeconds;
    }
    CompositeResult comp = pool.runComposite(job_list);
    if (interrupt::requested()) {
        // The tables below would be computed from a partial merge;
        // print the loud marker and the resumable-state hint instead
        // of numbers that look like a finished reproduction.
        PoolTelemetry tele = computeTelemetry(comp.parts);
        std::printf("pool: %s\n", tele.summary().c_str());
        return interrupt::reportInterrupted("report abandoned",
                                            tele.interruptedJobs,
                                            ckpt.enabled());
    }
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), comp.hist);

    std::printf("composite: %llu instructions, %.2f cycles/instr, "
                "%.2f simulated seconds\n\n",
                (unsigned long long)an.instructions(),
                an.cyclesPerInstruction(),
                5.0 * cycles * 200e-9);

    printTable1(an);
    printTable2(an);
    printTable3(an);
    printTable4(an);
    printTables57(an);
    printTable8(an);

    std::printf("\n--- Section 4: implementation events ---\n");
    double instr = static_cast<double>(an.instructions());
    std::printf("  TB misses %.4f/instr (%.1f cycles each, %.1f "
                "stall); cache read misses %.3f/instr;\n"
                "  IB refs %.2f/instr\n",
                an.tbMissPerInstr(), an.tbServiceCyclesPerMiss(),
                an.tbServiceStallPerMiss(),
                (comp.hw.cache.readMissesI +
                 comp.hw.cache.readMissesD) / instr,
                comp.hw.ibLongwordFetches / instr);

    // The static verifier runs over the same control store the
    // analyzer classifies with; its findings ride along in the
    // selfcheck output and (when any exist) the stats dump.
    LintReport lint = lintControlStore(ref.controlStore());

    if (selfcheck) {
        SelfCheckReport rep = selfCheckComposite(ref.controlStore(),
                                                 comp);
        std::printf("\n%s\n", rep.summary().c_str());
        if (lint.clean()) {
            std::printf("static verifier: clean (%zu microwords, "
                        "%zu reachable)\n",
                        lint.words, lint.reachable);
        } else {
            std::printf("static verifier: %zu diagnostic(s)\n%s",
                        lint.diags.size(), lint.text().c_str());
        }
        if (!rep.ok() || !lint.clean())
            return 1;
    }

    if (!stats_path.empty()) {
        stats::Registry reg;
        registerCompositeStats(reg, comp);
        regLintStats(lint, reg);
        if (!reg.saveJson(stats_path)) {
            std::fprintf(stderr,
                         "error: cannot write stats JSON to '%s'\n",
                         stats_path.c_str());
            return 1;
        }
        std::printf("\nstats: wrote %zu stats to %s\n", reg.size(),
                    stats_path.c_str());
    }
    return 0;
}
