/**
 * @file
 * The paper's experiment in miniature: boot VMS-lite with a
 * timesharing workload, let the RTE drive the terminals, and print
 * the Table 8 timing decomposition -- for one workload, or for the
 * full five-workload composite run in parallel on a SimPool.
 *
 * Usage: timesharing_characterization [--jobs N] [cycles]
 *                                     [profile 0-4 | all]
 *   "all" runs the paper's five-workload composite, one job per
 *   workload, on up to N worker threads (default: one per core;
 *   UPC780_JOBS also sets it).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

namespace
{

void
printTable8(const HistogramAnalyzer &an)
{
    TextTable t("Cycles per average instruction");
    t.addRow({"Activity", "Compute", "Read", "R-Stall", "Write",
              "W-Stall", "IB-Stall", "Total"});
    for (unsigned i = 0; i < static_cast<unsigned>(Row::NumRows);
         ++i) {
        Row row = static_cast<Row>(i);
        std::vector<std::string> line{rowName(row)};
        for (unsigned c = 0;
             c < static_cast<unsigned>(TimeCol::NumCols); ++c) {
            line.push_back(TextTable::num(
                an.cell(row, static_cast<TimeCol>(c)), 3));
        }
        line.push_back(TextTable::num(an.rowTotal(row), 3));
        t.addRow(line);
    }
    t.rule();
    std::vector<std::string> total{"TOTAL"};
    for (unsigned c = 0; c < static_cast<unsigned>(TimeCol::NumCols);
         ++c) {
        total.push_back(TextTable::num(
            an.colTotal(static_cast<TimeCol>(c)), 3));
    }
    total.push_back(TextTable::num(an.cyclesPerInstruction(), 3));
    t.addRow(total);
    std::printf("%s\n", t.str().c_str());

    std::printf("group mix: ");
    for (unsigned g = 0; g < static_cast<unsigned>(Group::NumGroups);
         ++g) {
        std::printf("%s %.1f%%  ", groupName(static_cast<Group>(g)),
                    100.0 * an.groupFraction(static_cast<Group>(g)));
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    uint64_t cycles = argc > 1 ? strtoull(argv[1], nullptr, 0)
                               : 2'000'000;
    const char *which_arg = argc > 2 ? argv[2] : "0";
    Cpu780 ref;

    if (std::strcmp(which_arg, "all") == 0) {
        SimPool pool(jobs);
        std::printf("characterizing the five-workload composite "
                    "(%llu cycles each, %u worker threads)\n\n",
                    (unsigned long long)cycles, pool.workers());
        CompositeResult comp =
            pool.runComposite(compositeJobs(cycles));
        for (const auto &part : comp.parts) {
            std::printf("  %-22s lines in/out %llu/%llu   "
                        "%6.2fs wall\n",
                        part.name.c_str(),
                        (unsigned long long)part.hw.terminalLinesIn,
                        (unsigned long long)part.hw.terminalLinesOut,
                        part.wallSeconds);
        }
        HistogramAnalyzer an(ref.controlStore(), comp.hist);
        std::printf("\ninstructions: %llu  cycles/instruction: "
                    "%.2f\n\n",
                    (unsigned long long)an.instructions(),
                    an.cyclesPerInstruction());
        printTable8(an);
        return 0;
    }

    unsigned which = static_cast<unsigned>(atoi(which_arg));
    auto profiles = allProfiles();
    if (which >= profiles.size()) {
        std::fprintf(stderr, "profile must be 0-%zu or 'all'\n",
                     profiles.size() - 1);
        return 1;
    }
    const WorkloadProfile &prof = profiles[which];

    std::printf("characterizing '%s' (%u simulated users, "
                "%llu cycles = %.2f simulated seconds)\n\n",
                prof.name.c_str(), prof.numUsers,
                (unsigned long long)cycles, cycles * 200e-9);

    ExperimentResult r = runJob(SimJob::forProfile(prof, cycles));
    HistogramAnalyzer an(ref.controlStore(), r.hist);

    std::printf("instructions: %llu  cycles/instruction: %.2f  "
                "(%.2fs wall)\n",
                (unsigned long long)an.instructions(),
                an.cyclesPerInstruction(), r.wallSeconds);
    std::printf("terminal lines in/out: %llu / %llu\n\n",
                (unsigned long long)r.hw.terminalLinesIn,
                (unsigned long long)r.hw.terminalLinesOut);

    printTable8(an);
    return 0;
}
