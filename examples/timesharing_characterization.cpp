/**
 * @file
 * The paper's experiment in miniature: boot VMS-lite with a
 * timesharing workload, let the RTE drive the terminals, and print
 * the Table 8 timing decomposition for that single workload.
 *
 * Usage: timesharing_characterization [cycles] [profile 0-4]
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    uint64_t cycles = argc > 1 ? strtoull(argv[1], nullptr, 0)
                               : 2'000'000;
    unsigned which = argc > 2 ? atoi(argv[2]) : 0;
    auto profiles = allProfiles();
    if (which >= profiles.size()) {
        std::fprintf(stderr, "profile must be 0-%zu\n",
                     profiles.size() - 1);
        return 1;
    }
    const WorkloadProfile &prof = profiles[which];

    std::printf("characterizing '%s' (%u simulated users, "
                "%llu cycles = %.2f simulated seconds)\n\n",
                prof.name.c_str(), prof.numUsers,
                (unsigned long long)cycles, cycles * 200e-9);

    ExperimentResult r = runExperiment(prof, cycles);
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), r.hist);

    std::printf("instructions: %llu  cycles/instruction: %.2f\n",
                (unsigned long long)an.instructions(),
                an.cyclesPerInstruction());
    std::printf("terminal lines in/out: %llu / %llu\n\n",
                (unsigned long long)r.hw.terminalLinesIn,
                (unsigned long long)r.hw.terminalLinesOut);

    TextTable t("Cycles per average instruction");
    t.addRow({"Activity", "Compute", "Read", "R-Stall", "Write",
              "W-Stall", "IB-Stall", "Total"});
    for (unsigned i = 0; i < static_cast<unsigned>(Row::NumRows);
         ++i) {
        Row row = static_cast<Row>(i);
        std::vector<std::string> line{rowName(row)};
        for (unsigned c = 0;
             c < static_cast<unsigned>(TimeCol::NumCols); ++c) {
            line.push_back(TextTable::num(
                an.cell(row, static_cast<TimeCol>(c)), 3));
        }
        line.push_back(TextTable::num(an.rowTotal(row), 3));
        t.addRow(line);
    }
    t.rule();
    std::vector<std::string> total{"TOTAL"};
    for (unsigned c = 0; c < static_cast<unsigned>(TimeCol::NumCols);
         ++c) {
        total.push_back(TextTable::num(
            an.colTotal(static_cast<TimeCol>(c)), 3));
    }
    total.push_back(TextTable::num(an.cyclesPerInstruction(), 3));
    t.addRow(total);
    std::printf("%s\n", t.str().c_str());

    std::printf("group mix: ");
    for (unsigned g = 0; g < static_cast<unsigned>(Group::NumGroups);
         ++g) {
        std::printf("%s %.1f%%  ", groupName(static_cast<Group>(g)),
                    100.0 * an.groupFraction(static_cast<Group>(g)));
    }
    std::printf("\n");
    return 0;
}
