/**
 * @file
 * The histogram as a database (the paper's concluding point): collect
 * once, save the raw counts, and answer new questions later without
 * re-running the workload.
 *
 * Usage: histogram_database [cycles] [csv-path]
 *   With an existing CSV produced earlier, analyses it instead of
 *   running a new measurement.
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "upc/hist_io.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    uint64_t cycles = argc > 1 ? strtoull(argv[1], nullptr, 0)
                               : 1'000'000;
    const char *path = argc > 2 ? argv[2] : "upc780_histogram.csv";

    Cpu780 ref; // annotations (the ROM build is deterministic)
    Histogram hist;

    if (argc > 2 && loadHistogramCsv(path, &hist) && hist.cycles()) {
        std::printf("loaded existing histogram '%s' (%llu cycles)\n",
                    path, (unsigned long long)hist.cycles());
    } else {
        std::printf("measuring 'commercial' for %llu cycles...\n",
                    (unsigned long long)cycles);
        ExperimentResult r = runExperiment(commercialProfile(),
                                           cycles);
        hist = r.hist;
        if (saveHistogramCsv(path, hist, ref.controlStore()))
            std::printf("saved raw histogram to '%s'\n", path);
    }

    // "Additional interpretation of the raw histogram data": three
    // different questions against the same counts.
    HistogramAnalyzer an(ref.controlStore(), hist);

    std::printf("\nQ1: how fast is the machine?\n");
    std::printf("    %.2f cycles/instruction over %llu "
                "instructions\n",
                an.cyclesPerInstruction(),
                (unsigned long long)an.instructions());

    std::printf("\nQ2: where does decimal arithmetic spend time?\n");
    double f = an.groupFraction(Group::Decimal);
    if (f > 0) {
        std::printf("    %.2f%% of instructions, %.0f cycles per "
                    "member (%.1f%% of all time)\n",
                    100.0 * f,
                    an.rowTotal(Row::ExecDecimal) / f,
                    100.0 * an.rowTotal(Row::ExecDecimal) /
                        an.cyclesPerInstruction());
    }

    std::printf("\nQ3: what would a perfect TB buy?\n");
    double mm = an.rowTotal(Row::MemMgmt);
    std::printf("    TB-miss service costs %.3f cycles/instr; "
                "removing it entirely -> %.2f CPI (%.1f%% faster)\n",
                mm, an.cyclesPerInstruction() - mm,
                100.0 * mm / (an.cyclesPerInstruction() - mm));

    // Round-trip integrity check.
    Histogram reloaded;
    if (saveHistogramCsv(path, hist, ref.controlStore()) &&
        loadHistogramCsv(path, &reloaded)) {
        HistogramAnalyzer an2(ref.controlStore(), reloaded);
        std::printf("\nCSV round trip: %llu cycles preserved (%s)\n",
                    (unsigned long long)reloaded.cycles(),
                    reloaded.cycles() == hist.cycles() ? "ok"
                                                       : "MISMATCH");
    }
    return 0;
}
