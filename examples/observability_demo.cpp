/**
 * @file
 * Observability tour: the three instruments this repo layers over the
 * simulator, on one composite run.
 *
 *  1. The stats registry: every component's counters under one
 *     hierarchical namespace, dumped as text/CSV/JSON.  Same seed in,
 *     byte-identical dump out -- serial or pooled.
 *  2. Cycle-stamped trace channels: TRACE(...) lines gated per
 *     channel at run time (--trace LIST or UPC780_TRACE), free when
 *     off.
 *  3. Pool telemetry: per-job and aggregate wall-clock/throughput,
 *     plus a Chrome-trace-event timeline loadable in Perfetto.
 *
 * Usage: observability_demo [--jobs N] [--trace LIST]
 *                           [--stats-json PATH] [--perfetto PATH]
 *                           [--checkpoint-dir D] [--resume]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "cpu/cpu.hh"
#include "driver/checkpoint.hh"
#include "driver/sim_pool.hh"
#include "support/interrupt.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "workload/experiments.hh"

using namespace vax;

namespace
{

std::string
parsePerfettoFlag(int *argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--perfetto") == 0 && i + 1 < *argc) {
            path = argv[++i];
        } else if (std::strncmp(arg, "--perfetto=", 11) == 0) {
            path = arg + 11;
        } else {
            argv[out++] = argv[i];
        }
    }
    argv[out] = nullptr;
    *argc = out;
    return path;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    trace::parseTraceFlag(&argc, argv);
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    std::string stats_path = stats::parseStatsJsonFlag(&argc, argv);
    std::string perfetto_path = parsePerfettoFlag(&argc, argv);
    CheckpointConfig ckpt = CheckpointConfig::parseFlags(&argc, argv);

    uint64_t cycles = benchCycles(500'000);
    std::printf("upc780 observability demo "
                "(%llu cycles per experiment)\n\n",
                (unsigned long long)cycles);

    // ---- 1+3. A pooled composite with telemetry. ----
    interrupt::install();
    SimPool pool(jobs);
    pool.setProgress(true); // heartbeat on stderr as jobs finish
    pool.setCheckpoint(ckpt);
    std::vector<SimJob> job_list = compositeJobs(cycles);
    std::vector<ExperimentResult> results = pool.run(job_list);

    PoolTelemetry tele = computeTelemetry(results);
    std::printf("pool (%u workers): %s\n", pool.workers(),
                tele.summary().c_str());
    for (const auto &j : tele.jobs) {
        std::printf("  %-22s worker %u  +%6.2fs  %6.2fs wall  "
                    "%6.1f kIPS%s\n",
                    j.name.c_str(), j.worker, j.startSeconds,
                    j.wallSeconds,
                    j.wallSeconds > 0
                        ? j.instructions / j.wallSeconds / 1e3
                        : 0.0,
                    j.failed          ? "  FAILED"
                    : j.interrupted ? "  INTERRUPTED"
                                    : "");
    }
    if (interrupt::requested())
        return interrupt::reportInterrupted(
            "telemetry above is partial", tele.interruptedJobs,
            ckpt.enabled());

    CompositeResult comp;
    for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].failed && !results[i].interrupted) {
            comp.hist.merge(results[i].hist, job_list[i].weight);
            comp.hw.add(results[i].hw, job_list[i].weight);
        }
        comp.parts.push_back(std::move(results[i]));
    }

    // ---- 2. The registry over the composite. ----
    stats::Registry reg;
    registerCompositeStats(reg, comp);
    std::printf("\nregistry: %zu stats; a few of them:\n",
                reg.size());
    for (const char *name :
         {"composite.cycles", "composite.instructions",
          "composite.cache.readMissesD", "composite.tb.missesD",
          "composite.upc.stallFraction"}) {
        const auto *s = reg.find(name);
        if (s)
            std::printf("  %-32s %s\n", name,
                        stats::formatValue(*s).c_str());
    }

    // A demo that claims to have written a file the caller cannot
    // find is worse than one that fails loudly: I/O failures here
    // propagate to a non-zero exit.
    if (!stats_path.empty()) {
        if (!reg.saveJson(stats_path)) {
            std::fprintf(stderr,
                         "error: cannot write stats JSON to '%s'\n",
                         stats_path.c_str());
            return 1;
        }
        std::printf("wrote stats JSON: %s\n", stats_path.c_str());
    }
    if (!perfetto_path.empty()) {
        if (!writeChromeTrace(perfetto_path, comp.parts)) {
            std::fprintf(stderr,
                         "error: cannot write Perfetto trace to "
                         "'%s'\n",
                         perfetto_path.c_str());
            return 1;
        }
        std::printf("wrote Perfetto timeline: %s "
                    "(load at ui.perfetto.dev)\n",
                    perfetto_path.c_str());
    }

    // ---- A taste of the trace channels, self-enabled. ----
    if (!trace::anyEnabled()) {
        std::printf("\ntrace channels (first lines of 'cache,tb' on "
                    "a fresh machine; use --trace to pick your "
                    "own):\n");
        trace::BufferSink buf;
        {
            trace::ScopedSink scoped(&buf);
            trace::enableList("cache,tb");
            ExperimentResult r =
                runExperiment(allProfiles()[0], 20'000);
            trace::disableAll();
        }
        // Print the first few captured lines.
        const std::string &text = buf.text();
        size_t pos = 0;
        for (int line = 0; line < 8 && pos < text.size(); ++line) {
            size_t nl = text.find('\n', pos);
            if (nl == std::string::npos)
                break;
            std::printf("  %.*s\n", int(nl - pos), text.c_str() + pos);
            pos = nl + 1;
        }
    }
    return 0;
}
