/**
 * @file
 * Quickstart: assemble a small VAX program, run it on the simulated
 * 11/780 with the UPC histogram monitor attached, and derive timing
 * the way the paper does -- from micro-PC counts alone.
 */

#include <cstdio>

#include "arch/assembler.hh"
#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"

using namespace vax;
using Op = Operand;

int
main()
{
    // 1. A machine and a monitor (the passive histogram board).
    Cpu780 cpu;
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);
    cpu.mem().setMapEnable(false); // flat physical addressing

    // 2. Assemble a program: sum an array, then a string move.
    Assembler a(0x1000);
    a.instr(op::MOVAB, {Op::rel("array"), Op::reg(R2)});
    a.instr(op::CLRL, {Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(16), Op::reg(R3)});
    a.label("loop");
    a.instr(op::ADDL2, {Op::autoInc(R2), Op::reg(R1)});
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("loop")});
    // MOVC3 clobbers R0-R5 (it leaves the string pointers there),
    // so park the sum in R6 first.
    a.instr(op::MOVL, {Op::reg(R1), Op::reg(R6)});
    a.instr(op::MOVC3,
            {Op::imm(16), Op::rel("src"), Op::rel("dst")});
    a.instr(op::HALT);
    a.align(4);
    a.label("array");
    for (uint32_t i = 1; i <= 16; ++i)
        a.lword(i);
    a.label("src");
    a.ascii("hello, VAX-11!!!");
    a.label("dst");
    a.space(16);

    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    // 3. Run to HALT.
    if (!cpu.run(100000)) {
        std::fprintf(stderr, "did not halt\n");
        return 1;
    }
    std::printf("sum of 1..16 = %u (expected 136)\n",
                cpu.ebox().gpr(R6));

    // 4. Analyze: everything below comes from the histogram only.
    HistogramAnalyzer an(cpu.controlStore(), monitor.histogram());
    std::printf("instructions executed : %llu\n",
                (unsigned long long)an.instructions());
    std::printf("total cycles          : %llu\n",
                (unsigned long long)an.totalCycles());
    std::printf("cycles/instruction    : %.2f\n",
                an.cyclesPerInstruction());
    std::printf("reads per instruction : %.2f\n",
                an.totalReadsPerInstr());
    std::printf("writes per instruction: %.2f\n",
                an.totalWritesPerInstr());
    std::printf("\nhottest microcode locations:\n");
    for (const auto &h : an.hottest(8)) {
        std::printf("  upc %4u  %-18s %6llu cycles\n", h.addr,
                    h.name, (unsigned long long)h.cycles);
    }
    return 0;
}
