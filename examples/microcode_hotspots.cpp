/**
 * @file
 * The "general resource" use of the UPC histogram the paper's
 * conclusion advertises: the same raw histogram answers many
 * questions.  This example profiles a workload and prints the
 * hottest control-store locations, their activity rows, and how the
 * time at each splits between useful cycles and stalls.
 *
 * Usage: microcode_hotspots [cycles] [profile 0-4] [topN]
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    uint64_t cycles = argc > 1 ? strtoull(argv[1], nullptr, 0)
                               : 1'000'000;
    unsigned which = argc > 2 ? atoi(argv[2]) : 2; // educational
    size_t topn = argc > 3 ? strtoul(argv[3], nullptr, 0) : 24;

    auto profiles = allProfiles();
    const WorkloadProfile &prof = profiles[which % profiles.size()];
    std::printf("profiling '%s' for %llu cycles...\n\n",
                prof.name.c_str(), (unsigned long long)cycles);

    ExperimentResult r = runExperiment(prof, cycles);
    Cpu780 ref;
    const ControlStore &cs = ref.controlStore();
    HistogramAnalyzer an(cs, r.hist);

    uint64_t total = an.totalCycles();
    std::printf("%-5s %-20s %-10s %9s %9s %6s\n", "uPC", "microword",
                "row", "cycles", "stalled", "%time");
    double cum = 0.0;
    for (const auto &h : an.hottest(topn)) {
        const UAnnotation &ann = cs.annotation(h.addr);
        uint64_t stalled = r.hist.stalled[h.addr];
        double pct = 100.0 * h.cycles / total;
        cum += pct;
        std::printf("%-5u %-20s %-10s %9llu %9llu %5.1f%%\n", h.addr,
                    h.name, rowName(ann.row),
                    (unsigned long long)h.cycles,
                    (unsigned long long)stalled, pct);
    }
    std::printf("\ntop %zu locations cover %.1f%% of all cycles "
                "(control store holds %u microwords).\n",
                topn, cum, cs.size());

    std::printf("\ninterpretation hints (as the paper's analysts "
                "had):\n"
                "  IID is the once-per-instruction decode cycle; its "
                "stalled count is Decode-row IB stall.\n"
                "  SPECn.* words are operand-specifier flows; their "
                "stalled counts are operand read stalls.\n"
                "  MM.* words are the TB-miss service; their entry "
                "counts are the TB miss rate.\n");
    return 0;
}
