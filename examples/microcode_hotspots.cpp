/**
 * @file
 * The "general resource" use of the UPC histogram the paper's
 * conclusion advertises: the same raw histogram answers many
 * questions.  This example profiles a workload and prints the
 * hottest control-store locations, their activity rows, and how the
 * time at each splits between useful cycles and stalls.
 *
 * Usage: microcode_hotspots [cycles] [profile 0-4] [topN]
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

namespace
{

void
printUsage(const char *prog, std::FILE *out, size_t nprofiles)
{
    std::fprintf(out,
                 "usage: %s [cycles] [profile 0-%zu] [topN]\n"
                 "  cycles   simulated cycles to profile (default "
                 "1000000)\n"
                 "  profile  workload profile index (default 2)\n"
                 "  topN     hottest locations to print (default "
                 "24)\n",
                 prog, nprofiles - 1);
}

/** Strict non-negative decimal parse; usage + exit(2) on garbage. */
uint64_t
parseCount(const char *prog, const char *what, const char *s,
           size_t nprofiles)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(s, &end, 10);
    if (*s == '\0' || *end != '\0' || *s == '-') {
        std::fprintf(stderr, "%s: bad %s '%s' (non-negative "
                             "integer expected)\n\n",
                     prog, what, s);
        printUsage(prog, stderr, nprofiles);
        std::exit(2);
    }
    return v;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    auto profiles = allProfiles();

    if (argc > 4) {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n",
                     argv[0], argv[4]);
        printUsage(argv[0], stderr, profiles.size());
        return 2;
    }

    uint64_t cycles = argc > 1
        ? parseCount(argv[0], "cycles", argv[1], profiles.size())
        : 1'000'000;
    uint64_t which = argc > 2
        ? parseCount(argv[0], "profile", argv[2], profiles.size())
        : 2; // educational
    size_t topn = argc > 3
        ? static_cast<size_t>(
              parseCount(argv[0], "topN", argv[3], profiles.size()))
        : 24;

    if (cycles == 0 || topn == 0) {
        std::fprintf(stderr, "%s: cycles and topN must be "
                             "positive\n\n", argv[0]);
        printUsage(argv[0], stderr, profiles.size());
        return 2;
    }
    if (which >= profiles.size()) {
        std::fprintf(stderr, "%s: profile %llu out of range "
                             "(0-%zu)\n\n",
                     argv[0], (unsigned long long)which,
                     profiles.size() - 1);
        printUsage(argv[0], stderr, profiles.size());
        return 2;
    }

    const WorkloadProfile &prof = profiles[which];
    std::printf("profiling '%s' for %llu cycles...\n\n",
                prof.name.c_str(), (unsigned long long)cycles);

    ExperimentResult r = runExperiment(prof, cycles);
    Cpu780 ref;
    const ControlStore &cs = ref.controlStore();
    HistogramAnalyzer an(cs, r.hist);

    uint64_t total = an.totalCycles();
    std::printf("%-5s %-20s %-10s %9s %9s %6s\n", "uPC", "microword",
                "row", "cycles", "stalled", "%time");
    double cum = 0.0;
    for (const auto &h : an.hottest(topn)) {
        const UAnnotation &ann = cs.annotation(h.addr);
        uint64_t stalled = r.hist.stalled[h.addr];
        double pct = 100.0 * h.cycles / total;
        cum += pct;
        std::printf("%-5u %-20s %-10s %9llu %9llu %5.1f%%\n", h.addr,
                    h.name, rowName(ann.row),
                    (unsigned long long)h.cycles,
                    (unsigned long long)stalled, pct);
    }
    std::printf("\ntop %zu locations cover %.1f%% of all cycles "
                "(control store holds %u microwords).\n",
                topn, cum, cs.size());

    std::printf("\ninterpretation hints (as the paper's analysts "
                "had):\n"
                "  IID is the once-per-instruction decode cycle; its "
                "stalled count is Decode-row IB stall.\n"
                "  SPECn.* words are operand-specifier flows; their "
                "stalled counts are operand read stalls.\n"
                "  MM.* words are the TB-miss service; their entry "
                "counts are the TB miss rate.\n");
    return 0;
}
