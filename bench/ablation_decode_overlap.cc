/**
 * @file
 * Ablation: the non-overlapped decode cycle.
 *
 * Table 8's Decode row shows exactly one compute cycle per
 * instruction -- the 11/780's I-Decode cannot start an instruction
 * until the previous one completes.  The paper points out that
 * "saving the non-overlapped I-Decode cycle could save one cycle on
 * each non-PC-changing instruction. (The later VAX model 11/750 did
 * exactly this.)"  This bench performs that arithmetic on the
 * measured composite, the same way the paper's authors did.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Ablation -- overlapping the decode cycle "
                          "(the 11/750 change)");

    double cpi = r.an().cyclesPerInstruction();
    double pc_changing = 0.0;
    for (unsigned k = 1;
         k < static_cast<unsigned>(PcChangeKind::NumKinds); ++k) {
        pc_changing +=
            r.an().pcChangeFraction(static_cast<PcChangeKind>(k));
    }
    double non_pc = 1.0 - pc_changing;
    double saved = non_pc * 1.0; // one decode cycle each
    double new_cpi = cpi - saved;

    TextTable t("Estimated effect of overlapped decode");
    t.addRow({"Quantity", "Value"});
    t.addRow({"Measured cycles/instr", TextTable::num(cpi, 3)});
    t.addRow({"PC-changing fraction",
              TextTable::pct(100.0 * pc_changing, 1)});
    t.addRow({"Non-PC-changing fraction",
              TextTable::pct(100.0 * non_pc, 1)});
    t.addRow({"Decode cycles saved/instr", TextTable::num(saved, 3)});
    t.addRow({"Projected cycles/instr", TextTable::num(new_cpi, 3)});
    t.addRow({"Projected speedup",
              TextTable::pct(100.0 * (cpi / new_cpi - 1.0), 1)});
    std::printf("%s\n", t.str().c_str());

    std::printf(
        "The paper's analogous arithmetic on its own data: 1 cycle on "
        "~61.5%% of instructions out of\n10.6 cycles -> ~6%% "
        "improvement.  The same reasoning also bounds other "
        "optimizations: e.g.\noptimizing FIELD memory writes is worth "
        "at most %.3f cycles/instr here (paper: 0.007, i.e.\n\"only "
        "about 0.07 percent of total performance\").\n",
        r.an().cell(Row::ExecField, TimeCol::Write) +
            r.an().cell(Row::ExecField, TimeCol::WStall));
    return 0;
}
