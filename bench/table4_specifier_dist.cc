/**
 * @file
 * Table 4: operand specifier distribution (percent), by position
 * class, from per-mode routine entry counts.  Cells the paper's
 * surviving text does not give legibly are shown as "-".
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 4 -- Operand Specifier Distribution");

    struct RowDef
    {
        SpecCategory cat;
        const char *p1;  ///< paper SPEC1 (or "-")
        const char *p26;
        const char *pt;
    };
    static const RowDef rows[] = {
        {SpecCategory::Register, "28.7", "52.6", "41.0"},
        {SpecCategory::ShortLiteral, "21.1", "10.8", "15.8"},
        {SpecCategory::Immediate, "3.2", "1.7", "2.4"},
        {SpecCategory::Displacement, "25.0", "-", "-"},
        {SpecCategory::RegDeferred, "-", "-", "-"},
        {SpecCategory::AutoIncDec, "-", "-", "-"},
        {SpecCategory::DispDeferred, "-", "-", "-"},
        {SpecCategory::Absolute, "-", "-", "-"},
        {SpecCategory::AutoIncDef, "-", "-", "-"},
    };

    TextTable t("Specifier distribution, percent "
                "(paper | measured per position class)");
    t.addRow({"Mode", "P SPEC1", "M SPEC1", "P SPEC2-6", "M SPEC2-6",
              "P Total", "M Total"});
    for (const auto &row : rows) {
        t.addRow({specCategoryName(row.cat), row.p1,
                  TextTable::num(
                      100.0 * r.an().specCategoryFraction(row.cat, 0),
                      1),
                  row.p26,
                  TextTable::num(
                      100.0 * r.an().specCategoryFraction(row.cat, 1),
                      1),
                  row.pt,
                  TextTable::num(
                      100.0 * r.an().specCategoryFraction(row.cat, 2),
                      1)});
    }
    t.rule();
    t.addRow({"Percent indexed", "8.5",
              TextTable::num(100.0 * r.an().indexedFraction(0), 1),
              "4.2",
              TextTable::num(100.0 * r.an().indexedFraction(1), 1),
              "6.3",
              TextTable::num(100.0 * r.an().indexedFraction(2), 1)});
    std::printf("%s\n", t.str().c_str());
    std::printf("Paper: register mode dominates after the first "
                "specifier (results stored in registers); short\n"
                "literals supply most I-stream constants; "
                "displacement is the most common memory mode.\n");
    return 0;
}
