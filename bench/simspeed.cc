/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: raw
 * machine-cycle throughput in several regimes, histogram analysis
 * cost, workload generation cost, and the five-workload composite in
 * both serial and SimPool-parallel form.
 *
 * Usage: simspeed [--jobs N] [google-benchmark flags]
 *   --jobs (or UPC780_JOBS) sets the pool worker count for the
 *   BM_CompositePool benchmark; default is one per hardware core.
 *   UPC780_CYCLES sets the composite's cycles per experiment
 *   (default 250000 here, to keep iterations short).
 *
 * Machine-readable output: pass the standard google-benchmark flags
 *   --benchmark_out=FILE.json --benchmark_out_format=json
 * to write a JSON report.  The committed baseline lives in
 * BENCH_simspeed.json at the repo root; compare a fresh run against
 * it with tools/bench_compare (the CI perf-smoke job does exactly
 * that and fails on a >30% throughput regression).
 */

#include <benchmark/benchmark.h>

#include "arch/assembler.hh"
#include "driver/sim_pool.hh"
#include "ucode/rom.hh"
#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"
#include "workload/codegen.hh"
#include "workload/experiments.hh"

namespace
{

using namespace vax;

/** Pool worker count from --jobs / UPC780_JOBS (0 = all cores). */
unsigned g_jobs = 0;

/** Tight register-only loop: peak interpreter speed. */
void
BM_CycleThroughputRegisters(benchmark::State &state)
{
    Cpu780 cpu;
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.instr(op::ADDL2, {Operand::lit(1), Operand::reg(R1)});
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputRegisters);

/** Memory-heavy loop: cache/TB path cost. */
void
BM_CycleThroughputMemory(benchmark::State &state)
{
    Cpu780 cpu;
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.instr(op::MOVL, {Operand::imm(0x40000), Operand::reg(R2)});
    a.label("loop");
    for (int i = 0; i < 8; ++i) {
        a.instr(op::MOVL, {Operand::disp(4 * i, R2),
                           Operand::reg(R1)});
        a.instr(op::MOVL, {Operand::reg(R1),
                           Operand::disp(4 * i + 64, R2)});
    }
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputMemory);

/** Legacy type-erased dispatch, for in-file before/after A-B runs. */
void
BM_CycleThroughputLegacy(benchmark::State &state)
{
    SimConfig cfg;
    cfg.legacyDispatch = true;
    Cpu780 cpu(cfg);
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.instr(op::ADDL2, {Operand::lit(1), Operand::reg(R1)});
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputLegacy);

/**
 * Cycle cost with the UPC monitor attached (should be ~free).  The
 * monitor must actually observe every iterated cycle -- otherwise the
 * benchmark would be timing a disconnected fast path and the "~free"
 * claim would be vacuous -- so the count is asserted afterwards.
 */
void
BM_CycleThroughputMonitored(benchmark::State &state)
{
    Cpu780 cpu;
    UpcMonitor mon;
    cpu.setCycleSink(&mon);
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.instr(op::ADDL2, {Operand::lit(1), Operand::reg(R1)});
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);
    uint64_t before = mon.histogram().cycles();

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }

    uint64_t counted = mon.histogram().cycles() - before;
    if (counted != static_cast<uint64_t>(state.iterations()))
        state.SkipWithError("monitor lost cycles");
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputMonitored);

/** Full ROM construction (per-CPU startup cost). */
void
BM_RomBuild(benchmark::State &state)
{
    for (auto _ : state) {
        ControlStore cs;
        buildMicrocodeRom(cs);
        benchmark::DoNotOptimize(cs.size());
    }
}
BENCHMARK(BM_RomBuild);

/** Workload program generation. */
void
BM_CodeGeneration(benchmark::State &state)
{
    WorkloadProfile prof = educationalProfile();
    uint64_t seed = 1;
    for (auto _ : state) {
        CodeGenerator gen(prof, seed++);
        UserProgram prog = gen.generate(0);
        benchmark::DoNotOptimize(prog.image.size());
    }
}
BENCHMARK(BM_CodeGeneration);

/**
 * The populated histogram that BM_HistogramAnalysis chews on.  Built
 * here, in a helper the benchmark calls before its timing loop, so
 * the 200k-cycle experiment can never leak into a timed region (the
 * old function-local static initialised mid-benchmark, inflating the
 * first sample the iteration-count estimator sees).
 */
const ExperimentResult &
analysisInput()
{
    static const ExperimentResult result =
        runExperiment(timesharingLightProfile(), 200000);
    return result;
}

/** Histogram analysis over a populated histogram. */
void
BM_HistogramAnalysis(benchmark::State &state)
{
    const ExperimentResult &result = analysisInput();
    Cpu780 ref;
    for (auto _ : state) {
        HistogramAnalyzer an(ref.controlStore(), result.hist);
        benchmark::DoNotOptimize(an.cyclesPerInstruction());
    }
}
BENCHMARK(BM_HistogramAnalysis);

/**
 * The five-workload composite (the Table 8 scenario) on a SimPool.
 * Items processed = simulated machine cycles, so items/s is the
 * aggregate simulation rate; per-job wall-clock and simulated
 * cycles-per-second are reported as counters (job0..job4, in
 * allProfiles() order).
 */
void
compositeBench(benchmark::State &state, unsigned workers)
{
    uint64_t cycles = benchCycles(250'000);
    SimPool pool(workers);
    std::vector<SimJob> jobs = compositeJobs(cycles);
    uint64_t total_sim_cycles = 0;
    std::vector<ExperimentResult> last;
    for (auto _ : state) {
        last = pool.run(jobs);
        // Sum the cycles each experiment actually retired.  The old
        // `cycles * jobs.size()` assumed every job stops exactly on
        // its budget, but a job can halt early or overshoot to an
        // instruction boundary, so the assumption miscounts the
        // aggregate rate.
        for (const ExperimentResult &r : last)
            total_sim_cycles += r.hw.counters.cycles;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(total_sim_cycles));
    state.counters["workers"] =
        static_cast<double>(pool.workers());
    for (size_t i = 0; i < last.size(); ++i) {
        std::string tag = "job" + std::to_string(i);
        state.counters[tag + "_wall_s"] = last[i].wallSeconds;
        state.counters[tag + "_Msimcyc_per_s"] =
            last[i].wallSeconds > 0
                ? cycles / last[i].wallSeconds * 1e-6
                : 0.0;
    }
}

void
BM_CompositeSerial(benchmark::State &state)
{
    compositeBench(state, 1);
}
BENCHMARK(BM_CompositeSerial)->Unit(benchmark::kMillisecond);

void
BM_CompositePool(benchmark::State &state)
{
    compositeBench(state, g_jobs);
}
BENCHMARK(BM_CompositePool)->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    g_jobs = parseJobsFlag(&argc, argv, envJobs());
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
